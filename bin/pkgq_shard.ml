(* pkgq_shard: coordinate package queries across a pkgq_server fleet.

   Examples:
     # spawn a local fleet of 4 shards, each with a replica
     pkgq_shard --data galaxy.csv --attrs a,b --spawn 4 --replicas 1

     # front an already-running fleet (shared storage: same table!)
     pkgq_shard --data galaxy.csv --attrs a,b \
       --shard 127.0.0.1:7071+127.0.0.1:7072@/var/pkgq/s0/wal/wal.log \
       --shard 127.0.0.1:7081+127.0.0.1:7082@/var/pkgq/s1/wal/wal.log *)

open Cmdliner

let exit_data_error = 3
let exit_usage_error = 6

let die code msg =
  prerr_endline ("pkgq_shard: " ^ msg);
  exit code

(* HOST:PORT[+HOST:PORT][@WALPATH] — primary, optional replica,
   optional path to the primary's on-disk WAL log. *)
let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> failwith (Printf.sprintf "--shard: %S is not HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when p > 0 && host <> "" ->
      { Service.Coordinator.ep_host = host; ep_port = p }
    | _ -> failwith (Printf.sprintf "--shard: %S is not HOST:PORT" s))

let parse_shard_spec s =
  let nodes, wal =
    match String.index_opt s '@' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let primary, replica =
    match String.index_opt nodes '+' with
    | None -> (parse_endpoint nodes, None)
    | Some i ->
      ( parse_endpoint (String.sub nodes 0 i),
        Some
          (parse_endpoint
             (String.sub nodes (i + 1) (String.length nodes - i - 1))) )
  in
  { Service.Coordinator.primary; replica; wal }

let int_env name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default)

let run_inner data host port shards spawn replicas fleet_dir server_exe
    method_ attrs tau epsilon max_seconds max_nodes request_seconds
    connect_timeout rpc_seconds retries hedge_ms breaker_trips lease_ms
    epoch_dir faults verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.App));
  (match faults with
  | None -> ()
  | Some s -> (
    match Pkg.Faults.parse s with
    | Ok spec -> Pkg.Faults.install spec
    | Error msg -> die exit_usage_error ("--faults: " ^ msg)));
  if attrs = [] then
    die exit_usage_error "--attrs is required (fleet partitioning config)";
  let rel =
    if Filename.check_suffix data ".seg" then Store.Segment.read data
    else Relalg.Csv.read data
  in
  let defaults = Service.Coordinator.default_config () in
  let cfg =
    {
      defaults with
      Service.Coordinator.host;
      port;
      method_;
      attrs;
      tau;
      epsilon;
      limits = { Ilp.Branch_bound.default_limits with max_nodes; max_seconds };
      request_seconds;
      connect_timeout;
      rpc_seconds;
      retries;
      hedge_ms =
        (match hedge_ms with Some h -> h | None -> defaults.hedge_ms);
      breaker_trips =
        (match breaker_trips with
        | Some b -> max 1 b
        | None -> defaults.breaker_trips);
      lease_ms =
        (* None falls through to PKGQ_LEASE_MS inside the coordinator *)
        (match lease_ms with Some m -> Some (max 1 m) | None -> None);
      epoch_dir;
    }
  in
  (* either front an existing fleet (--shard ...) or spawn a local one
     (--spawn; the fleet inherits the identical partitioning config) *)
  let fleet, specs =
    match shards with
    | _ :: _ ->
      if spawn <> None then
        die exit_usage_error "--shard and --spawn are mutually exclusive";
      ([], List.map parse_shard_spec shards)
    | [] ->
      let n =
        match spawn with Some n -> n | None -> int_env "PKGQ_SHARDS" 2
      in
      let r =
        match replicas with Some r -> r | None -> int_env "PKGQ_REPLICAS" 0
      in
      if n < 1 then die exit_usage_error "--spawn: need at least one shard";
      let exe =
        match server_exe with
        | Some e -> e
        | None ->
          (* dune installs the binary bare, but builds it as .exe *)
          let dir = Filename.dirname Sys.executable_name in
          let bare = Filename.concat dir "pkgq_server" in
          if Sys.file_exists bare then bare else bare ^ ".exe"
      in
      let dir =
        match fleet_dir with
        | Some d -> d
        | None ->
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "pkgq_fleet_%d" (Unix.getpid ()))
      in
      let extra_args =
        [ "--attrs"; String.concat "," attrs ]
        @ (match method_ with
          | `Progressive -> [ "--method"; "progressive" ]
          | `Sketch_refine -> [])
        @ (match tau with
          | Some t -> [ "--tau"; string_of_int t ]
          | None -> [])
        @
        match epsilon with
        | Some e -> [ "--epsilon"; Printf.sprintf "%h" e ]
        | None -> []
      in
      let fleet =
        Service.Chaos.start_fleet ~exe ~dir ~base:rel ~shards:n ~replicas:r
          ~extra_args ()
      in
      Printf.printf "pkgq_shard: spawned %d shard(s) (%d replica(s)) in %s\n%!"
        n (r * n) dir;
      (fleet, Service.Chaos.fleet_specs fleet)
  in
  let t =
    try Service.Coordinator.start cfg specs rel
    with e ->
      Service.Chaos.stop_fleet fleet;
      raise e
  in
  Printf.printf "pkgq_shard: coordinating %d shard(s) over %d rows on %s:%d\n%!"
    (List.length specs) (Relalg.Relation.cardinality rel) host
    (Service.Coordinator.port t);
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  while not (Atomic.get stop_requested) do
    Thread.delay 0.1
  done;
  prerr_endline "pkgq_shard: shutting down";
  Service.Coordinator.stop t;
  Service.Chaos.stop_fleet fleet;
  print_endline (Service.Metrics.summary_line (Service.Coordinator.metrics t))

let run data host port shards spawn replicas fleet_dir server_exe method_
    attrs tau epsilon max_seconds max_nodes request_seconds connect_timeout
    rpc_seconds retries hedge_ms breaker_trips lease_ms epoch_dir faults
    verbose =
  match
    run_inner data host port shards spawn replicas fleet_dir server_exe
      method_ attrs tau epsilon max_seconds max_nodes request_seconds
      connect_timeout rpc_seconds retries hedge_ms breaker_trips lease_ms
      epoch_dir faults verbose
  with
  | () -> ()
  | exception Relalg.Csv.Error (line, msg) ->
    die exit_data_error (Printf.sprintf "csv error at line %d: %s" line msg)
  | exception Store.Segment.Error msg -> die exit_data_error ("store: " ^ msg)
  | exception Service.Chaos.Harness_error msg ->
    die exit_data_error ("fleet: " ^ msg)
  | exception Sys_error msg -> die exit_data_error msg
  | exception Unix.Unix_error (e, fn, _) ->
    die exit_data_error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> die exit_usage_error msg

let data =
  Arg.(
    required
    & opt (some file) None
    & info [ "data"; "d" ] ~docv:"FILE"
        ~doc:
          "The fleet's shared table: CSV with a name:type header, or a .seg \
           segment. Every shard must serve the same bytes.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")

let port =
  Arg.(
    value & opt int 0
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"Port to bind (default 0: pick an ephemeral port and print it).")

let shards =
  Arg.(
    value & opt_all string []
    & info [ "shard" ] ~docv:"SPEC"
        ~doc:
          "One shard: $(b,HOST:PORT)[$(b,+HOST:PORT)][$(b,@WALPATH)] — \
           primary, optional read replica, optional path to the primary's \
           on-disk WAL log (enables shipping and failover promotion). \
           Repeatable; mutually exclusive with $(b,--spawn).")

let spawn =
  Arg.(
    value
    & opt (some int) None
    & info [ "spawn" ] ~docv:"N"
        ~doc:
          "Spawn a local fleet of N $(b,pkgq_server) shards instead of \
           fronting an existing one (default when no $(b,--shard) is given: \
           $(b,PKGQ_SHARDS) or 2).")

let replicas =
  Arg.(
    value
    & opt (some int) None
    & info [ "replicas" ] ~docv:"R"
        ~doc:
          "With a spawned fleet: pair each primary with R replicas (0 or 1; \
           default $(b,PKGQ_REPLICAS) or 0).")

let fleet_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "fleet-dir" ] ~docv:"DIR"
        ~doc:
          "Scratch directory for a spawned fleet (recreated; default under \
           the system temp directory).")

let server_exe =
  Arg.(
    value
    & opt (some string) None
    & info [ "server-exe" ] ~docv:"PATH"
        ~doc:
          "The $(b,pkgq_server) binary for spawned fleets (default: next to \
           this executable).")

let method_ =
  let method_conv =
    Arg.enum [ ("sketchrefine", `Sketch_refine); ("progressive", `Progressive) ]
  in
  Arg.(
    value & opt method_conv `Sketch_refine
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:
          "Distributed evaluation method: $(b,sketchrefine) (flat \
           scatter/gather) or $(b,progressive) (DLV hierarchy leaf layout \
           with a local coarse-to-fine shading descent before the \
           distributed refine). A fronted fleet must be launched with the \
           identical method; spawned fleets inherit it.")

let attrs =
  Arg.(
    value
    & opt (list string) []
    & info [ "attrs" ] ~docv:"A,B,..."
        ~doc:
          "Partitioning attributes — required, and the fleet must be \
           launched with the identical value or ASSIGN reports divergence.")

let tau =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau" ] ~docv:"N"
        ~doc:"Partition size threshold (default: 10% of the table).")

let epsilon =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"E" ~doc:"Theorem 3 radius limit parameter.")

let max_seconds =
  Arg.(
    value & opt float 3600.
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Wall-clock budget per ILP solve.")

let max_nodes =
  Arg.(
    value & opt int 200_000
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Branch-and-bound node budget.")

let request_seconds =
  Arg.(
    value & opt float 60.
    & info [ "request-seconds" ] ~docv:"S"
        ~doc:
          "Per-query wall budget; every shard RPC deadline is carved from \
           it, so a query answers (possibly $(b,degraded)) instead of \
           hanging.")

let connect_timeout =
  Arg.(
    value & opt float 1.
    & info [ "connect-timeout" ] ~docv:"S"
        ~doc:"TCP connect timeout for shard connections.")

let rpc_seconds =
  Arg.(
    value & opt float 2.
    & info [ "rpc-seconds" ] ~docv:"S"
        ~doc:
          "Cap on scatter-phase (ASSIGN/SKETCH) read timeouts: a stalled \
           shard is detected this fast, not at the query deadline.")

let retries =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Primary attempts per exchange (capped backoff) before failing \
           over to the replica. Timeouts are never retried.")

let hedge_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "hedge-ms" ] ~docv:"MS"
        ~doc:
          "Hedge refine RPCs against the replica after MS without a primary \
           answer; first answer wins. 0 disables (default: \
           $(b,PKGQ_HEDGE_MS) or 50).")

let breaker_trips =
  Arg.(
    value
    & opt (some int) None
    & info [ "breaker-trips" ] ~docv:"N"
        ~doc:
          "Consecutive primary failures that trip a shard's circuit breaker \
           (default: $(b,PKGQ_BREAKER_TRIPS) or 3).")

let lease_ms =
  Arg.(
    value
    & opt (some int) None
    & info [ "lease-ms" ] ~docv:"MS"
        ~doc:
          "Write-lease duration for replica-bearing shards. The primary \
           self-demotes read-only at 90% of this after its last renewal; a \
           fencing promotion waits out the full duration before bumping the \
           epoch (default: $(b,PKGQ_LEASE_MS) or 1500).")

let epoch_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "epoch-dir" ] ~docv:"DIR"
        ~doc:
          "Persist per-shard fencing epochs under DIR ($(b,epochs.bin)) so \
           they survive coordinator restarts (default: $(b,PKGQ_EPOCH_DIR), \
           else coordinator-local).")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault-injection directives (PKGQ_FAULTS grammar), \
           e.g. $(b,'shard=1:crash') or $(b,'repl=lag:2').")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Chatty logging.")

let cmd =
  let doc = "coordinate PaQL package queries across a pkgq_server fleet" in
  let term =
    Term.(
      const run $ data $ host $ port $ shards $ spawn $ replicas $ fleet_dir
      $ server_exe $ method_ $ attrs $ tau $ epsilon $ max_seconds
      $ max_nodes $ request_seconds $ connect_timeout $ rpc_seconds $ retries
      $ hedge_ms $ breaker_trips $ lease_ms $ epoch_dir $ faults $ verbose)
  in
  Cmd.v (Cmd.info "pkgq_shard" ~doc) term

let () = match Cmd.eval_value cmd with Ok _ -> () | Error _ -> exit 124
