(* paql_repl: an interactive shell for package queries.

     $ dune exec bin/paql_repl.exe -- recipes.csv
     paql> \method sketchrefine
     paql> \partition kcal,saturated_fat tau=500
     paql> SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0
        ->   SUCH THAT COUNT of P = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5
        ->   MINIMIZE SUM(P.saturated_fat);

   Statements end with ';'. Meta commands start with '\'. *)

type state = {
  mutable rel : Relalg.Relation.t;
  mutable part : Pkg.Partition.t option;
  mutable hier : (string list * Pkg.Hierarchy.t) option;
      (* progressive-shading hierarchy, cached per attribute set *)
  mutable method_ : [ `Direct | `Sketch_refine | `Progressive | `Stochastic ];
  mutable limits : Ilp.Branch_bound.limits;
  mutable show_package : bool;
  mutable store : Store.Catalog.t option;
  mutable fingerprint : string option;
}

let fingerprint_of st =
  match st.fingerprint with
  | Some fp -> fp
  | None ->
    let fp = Store.Segment.fingerprint st.rel in
    st.fingerprint <- Some fp;
    fp

let help_text =
  {|Meta commands:
  \help                         this message
  \schema                       show the relation's schema and size
  \method direct|sketchrefine|progressive|stochastic
                                choose the evaluation method (queries with
                                WITH PROBABILITY / EXPECTED always use the
                                stochastic driver)
  \partition a,b,... [tau=N] [epsilon=E min|max]
                                build an offline partitioning
  \load FILE                    load a saved partitioning
  \save FILE                    save the current partitioning
  \limits nodes=N seconds=S     per-ILP solver budget
  \faults SPEC|off              install fault-injection directives
                                (PKGQ_FAULTS grammar, e.g. ilp=1:raise)
  \store [DIR|off]              show / set / disable the persistent store
                                (partitionings built with \partition are
                                cached there and reused across sessions)
  \partitions                   list the store's partition catalog
  \show on|off                  print packages after evaluation
  \quit                         exit
Any other input is PaQL; end statements with ';'.|}

let print_package st spec p =
  let m = Pkg.Package.materialize p in
  if st.show_package then Format.printf "%a@." Relalg.Relation.pp m;
  Format.printf "(%d tuple(s), objective %g)@."
    (Pkg.Package.cardinality p)
    (Pkg.Package.objective spec p)

let run_query st text =
  let schema = Relalg.Relation.schema st.rel in
  match Paql.Parser.parse text with
  | Error msg -> Format.printf "error: %s@." msg
  | Ok ast -> (
    match Paql.Analyze.check schema ast with
    | Error errs ->
      List.iter (fun e -> Format.printf "error: %s@." e) errs
    | Ok () ->
      match Paql.Translate.compile_exn schema ast with
      | exception Failure msg -> Format.printf "error: %s@." msg
      | spec ->
      let numeric_attrs () =
        List.filter
          (fun a ->
            match Relalg.Schema.index_of_opt schema a with
            | Some i -> (
              match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
              | Relalg.Value.TInt | Relalg.Value.TFloat -> true
              | _ -> false)
            | None -> false)
          (Paql.Ast.all_attrs ast)
      in
      let stochastic () =
        let options =
          { (Pkg.Stochastic.default_options ()) with limits = st.limits }
        in
        let report, stats = Pkg.Stochastic.run ~options spec st.rel in
        if stats.Pkg.Stochastic.st_scenarios > 0 then
          Format.printf
            "stochastic: %d scenario(s) (+%d held out), %d summarie(s), %d \
             round(s), validated probability %.3f@."
            stats.Pkg.Stochastic.st_scenarios
            stats.Pkg.Stochastic.st_validation
            stats.Pkg.Stochastic.st_summaries stats.Pkg.Stochastic.st_rounds
            stats.Pkg.Stochastic.st_validated;
        report
      in
      let report =
        if Paql.Translate.is_stochastic spec then stochastic ()
        else
        match st.method_ with
        | `Stochastic -> stochastic ()
        | `Direct -> Pkg.Direct.run ~limits:st.limits spec st.rel
        | `Progressive -> (
          let attrs = numeric_attrs () in
          if attrs = [] then begin
            Format.printf "error: no numeric attributes to partition on@.";
            Pkg.Direct.run ~limits:st.limits spec st.rel
          end
          else
            let hier =
              match st.hier with
              | Some (cached, h) when cached = List.sort compare attrs ->
                Ok h
              | _ -> (
                try
                  let h =
                    match st.store with
                    | Some cat ->
                      fst
                        (Store.Catalog.lookup_or_build_hierarchy cat
                           ~fingerprint:(fingerprint_of st) ~attrs st.rel)
                    | None -> Pkg.Hierarchy.build ~attrs st.rel
                  in
                  st.hier <- Some (List.sort compare attrs, h);
                  Format.printf "hierarchy: %s group(s) per level@."
                    (String.concat "/"
                       (Array.to_list
                          (Array.map
                             (fun p ->
                               string_of_int (Pkg.Partition.num_groups p))
                             h.Pkg.Hierarchy.levels)));
                  Ok h
                with Pkg.Faults.Injected msg -> Error msg)
            in
            match hier with
            | Error msg ->
              Pkg.Eval.report
                ~status:
                  (Pkg.Eval.failed ~stage:Pkg.Eval.Progressive
                     (Pkg.Eval.Solver_error msg))
                ~package:None ~objective:None ~wall_time:0.
                ~counters:(Pkg.Eval.fresh_counters ())
            | Ok hier ->
              fst
                (Pkg.Progressive.run
                   ~options:
                     { Pkg.Progressive.default_options with
                       limits = st.limits
                     }
                   spec st.rel hier))
        | `Sketch_refine -> (
          match st.part with
          | Some part ->
            Pkg.Sketch_refine.run
              ~options:
                { Pkg.Sketch_refine.default_options with limits = st.limits }
              spec st.rel part
          | None ->
            Format.printf
              "note: no partitioning yet — building one on the query's \
               attributes (see \\partition)@.";
            let attrs = numeric_attrs () in
            if attrs = [] then begin
              Format.printf "error: no numeric attributes to partition on@.";
              Pkg.Direct.run ~limits:st.limits spec st.rel
            end
            else begin
              let tau = max 1 (Relalg.Relation.cardinality st.rel / 10) in
              let part = Pkg.Partition.create ~tau ~attrs st.rel in
              st.part <- Some part;
              Pkg.Sketch_refine.run
                ~options:
                  { Pkg.Sketch_refine.default_options with limits = st.limits }
                spec st.rel part
            end)
      in
      Format.printf "%a@." Pkg.Eval.pp_report report;
      Option.iter (print_package st spec) report.Pkg.Eval.package)

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let parse_kv words =
  List.filter_map
    (fun w ->
      match String.index_opt w '=' with
      | Some i ->
        Some
          ( String.sub w 0 i,
            String.sub w (i + 1) (String.length w - i - 1) )
      | None -> None)
    words

let meta st line =
  match split_words line with
  | [ "\\help" ] -> print_endline help_text
  | [ "\\quit" ] | [ "\\q" ] -> raise Exit
  | [ "\\schema" ] ->
    Format.printf "%a — %d tuple(s)@." Relalg.Schema.pp
      (Relalg.Relation.schema st.rel)
      (Relalg.Relation.cardinality st.rel)
  | [ "\\method"; "direct" ] -> st.method_ <- `Direct
  | [ "\\method"; "sketchrefine" ] -> st.method_ <- `Sketch_refine
  | [ "\\method"; "progressive" ] -> st.method_ <- `Progressive
  | [ "\\method"; "stochastic" ] -> st.method_ <- `Stochastic
  | "\\partition" :: attrs_word :: rest -> (
    let attrs = String.split_on_char ',' attrs_word in
    let kvs = parse_kv rest in
    let tau =
      match List.assoc_opt "tau" kvs with
      | Some v -> int_of_string v
      | None -> max 1 (Relalg.Relation.cardinality st.rel / 10)
    in
    let radius =
      match List.assoc_opt "epsilon" kvs with
      | Some e ->
        let maximize = not (List.exists (fun w -> w = "min") rest) in
        Pkg.Partition.Theorem { epsilon = float_of_string e; maximize }
      | None -> Pkg.Partition.No_radius
    in
    let build () = Pkg.Partition.create ~radius ~tau ~attrs st.rel in
    match
      match st.store with
      | Some cat ->
        let key =
          { Store.Catalog.fingerprint = fingerprint_of st; attrs; tau; radius;
            level = None }
        in
        Store.Catalog.lookup_or_build cat key ~build
      | None -> (build (), `Built)
    with
    | part, status ->
      st.part <- Some part;
      Format.printf "%s: %d group(s)@."
        (match status with
        | `Hit -> "catalog hit"
        | `Built -> "partitioned")
        (Pkg.Partition.num_groups part)
    | exception Invalid_argument msg -> Format.printf "error: %s@." msg
    | exception Store.Segment.Error msg ->
      Format.printf "error: store: %s@." msg)
  | [ "\\load"; path ] -> (
    match Pkg.Partition.load path st.rel with
    | part ->
      st.part <- Some part;
      Format.printf "loaded %d group(s)@." (Pkg.Partition.num_groups part)
    | exception e -> Format.printf "error: %s@." (Printexc.to_string e))
  | [ "\\save"; path ] -> (
    match st.part with
    | Some part ->
      Pkg.Partition.save path part;
      Format.printf "saved to %s@." path
    | None -> Format.printf "error: nothing to save@.")
  | "\\limits" :: rest ->
    let kvs = parse_kv rest in
    let limits =
      {
        st.limits with
        Ilp.Branch_bound.max_nodes =
          (match List.assoc_opt "nodes" kvs with
          | Some v -> int_of_string v
          | None -> st.limits.Ilp.Branch_bound.max_nodes);
        max_seconds =
          (match List.assoc_opt "seconds" kvs with
          | Some v -> float_of_string v
          | None -> st.limits.Ilp.Branch_bound.max_seconds);
      }
    in
    st.limits <- limits
  | [ "\\faults"; "off" ] ->
    Pkg.Faults.clear ();
    print_endline "faults cleared."
  | "\\faults" :: rest -> (
    match Pkg.Faults.parse (String.concat " " rest) with
    | Ok spec ->
      Pkg.Faults.install spec;
      print_endline "faults installed (call counter reset)."
    | Error msg -> Format.printf "error: %s@." msg)
  | [ "\\store" ] -> (
    match st.store with
    | Some cat -> Format.printf "store: %s@." (Store.Catalog.dir cat)
    | None -> Format.printf "store: off@.")
  | [ "\\store"; "off" ] ->
    st.store <- None;
    print_endline "store disabled."
  | [ "\\store"; dir ] -> (
    match Store.Catalog.open_dir dir with
    | cat ->
      st.store <- Some cat;
      Format.printf "store: %s@." dir
    | exception Sys_error msg -> Format.printf "error: %s@." msg)
  | [ "\\partitions" ] -> (
    match st.store with
    | None -> Format.printf "store: off (use \\store DIR)@."
    | Some cat ->
      let es = Store.Catalog.entries cat in
      if es = [] then Format.printf "no stored partitionings.@."
      else
        List.iter
          (fun (e : Store.Catalog.entry) ->
            Format.printf
              "%s  attrs=%s tau=%d radius=%s  %d group(s) / %d row(s), %d \
               bytes, age %.0fs@."
              e.id
              (String.concat "," e.entry_key.Store.Catalog.attrs)
              e.entry_key.Store.Catalog.tau
              (Store.Catalog.radius_string e.entry_key.Store.Catalog.radius)
              e.groups e.rows e.bytes e.age)
          es)
  | [ "\\show"; "on" ] -> st.show_package <- true
  | [ "\\show"; "off" ] -> st.show_package <- false
  | _ -> Format.printf "unknown command; try \\help@."

(* ------------------------------------------------------------------ *)
(* Remote mode (--connect HOST:PORT)                                  *)
(* ------------------------------------------------------------------ *)

let remote_help_text =
  {|Meta commands (remote mode):
  \help            this message
  \ping            liveness probe
  \stats           server metrics snapshot
  \append FILE     append the CSV file's rows to the served table
  \show on|off     print packages after evaluation
  \quit            exit
Any other input is PaQL, evaluated by the server; end statements with ';'.|}

let remote_query client show text =
  match Service.Client.query client text with
  | Service.Protocol.Resp_err (code, msg) ->
    Format.printf "error (%s): %s@." (Service.Protocol.code_name code) msg
  | Service.Protocol.Resp_ok body -> (
    match Service.Protocol.parse_result body with
    | Error msg -> Format.printf "error: bad response: %s@." msg
    | Ok (status, wall, csv) ->
      if !show && csv <> "" then
        (match Relalg.Csv.of_string csv with
        | rel -> Format.printf "%a@." Relalg.Relation.pp rel
        | exception Relalg.Csv.Error _ -> print_string csv);
      Format.printf "%s, %.3fs (remote)@." status wall)

let remote_meta client show line =
  match split_words line with
  | [ "\\help" ] -> print_endline remote_help_text
  | [ "\\quit" ] | [ "\\q" ] -> raise Exit
  | [ "\\ping" ] -> (
    match Service.Client.ping client with
    | Service.Protocol.Resp_ok body -> Format.printf "%s@." body
    | Service.Protocol.Resp_err (_, msg) -> Format.printf "error: %s@." msg)
  | [ "\\stats" ] -> (
    match Service.Client.stats client with
    | Service.Protocol.Resp_ok body -> print_string body
    | Service.Protocol.Resp_err (_, msg) -> Format.printf "error: %s@." msg)
  | [ "\\append"; path ] -> (
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | exception Sys_error msg -> Format.printf "error: %s@." msg
    | csv -> (
      match Service.Client.append client ~csv with
      | Service.Protocol.Resp_ok body -> Format.printf "%s@." body
      | Service.Protocol.Resp_err (code, msg) ->
        Format.printf "error (%s): %s@." (Service.Protocol.code_name code) msg))
  | [ "\\show"; "on" ] -> show := true
  | [ "\\show"; "off" ] -> show := false
  | _ -> Format.printf "unknown command; try \\help@."

let remote_repl client =
  let show = ref true in
  let buffer = Buffer.create 256 in
  let prompt () =
    if Buffer.length buffer = 0 then print_string "paql@remote> "
    else print_string "         -> ";
    flush stdout
  in
  try
    while true do
      prompt ();
      match input_line stdin with
      | exception End_of_file -> raise Exit
      | line ->
        let trimmed = String.trim line in
        if Buffer.length buffer = 0 && String.length trimmed > 0
           && trimmed.[0] = '\\'
        then (
          try remote_meta client show trimmed with
          | Exit -> raise Exit
          | Service.Protocol.Protocol_error msg ->
            Format.printf "error: %s@." msg)
        else begin
          Buffer.add_string buffer line;
          Buffer.add_char buffer ' ';
          let text = String.trim (Buffer.contents buffer) in
          if String.length text > 0 && text.[String.length text - 1] = ';'
          then begin
            Buffer.clear buffer;
            match
              remote_query client show
                (String.sub text 0 (String.length text - 1))
            with
            | () -> ()
            | exception Service.Protocol.Protocol_error msg ->
              Format.printf "error: %s@." msg
          end
        end
    done
  with Exit ->
    Service.Client.close client;
    print_endline "bye."

let repl st =
  let buffer = Buffer.create 256 in
  let prompt () =
    if Buffer.length buffer = 0 then print_string "paql> "
    else print_string "   -> ";
    flush stdout
  in
  try
    while true do
      prompt ();
      match input_line stdin with
      | exception End_of_file -> raise Exit
      | line ->
        let trimmed = String.trim line in
        if Buffer.length buffer = 0 && String.length trimmed > 0
           && trimmed.[0] = '\\'
        then (try meta st trimmed with
          | Exit -> raise Exit
          | Failure msg -> Format.printf "error: %s@." msg)
        else begin
          Buffer.add_string buffer line;
          Buffer.add_char buffer ' ';
          let text = String.trim (Buffer.contents buffer) in
          if String.length text > 0 && text.[String.length text - 1] = ';'
          then begin
            Buffer.clear buffer;
            run_query st (String.sub text 0 (String.length text - 1))
          end
        end
    done
  with Exit -> print_endline "bye."

let () =
  match Sys.argv with
  | [| _; "--connect"; endpoint |] | [| _; "-c"; endpoint |] -> (
    match Service.Client.parse_endpoint endpoint with
    | Error msg ->
      Printf.eprintf "paql_repl: --connect: %s\n" msg;
      exit 2
    | Ok (host, port) -> (
      match Service.Client.connect ~host ~port () with
      | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "paql_repl: connect %s: %s\n" endpoint
          (Unix.error_message e);
        exit 3
      | exception Failure msg ->
        Printf.eprintf "paql_repl: %s\n" msg;
        exit 3
      | client ->
        Format.printf "connected to %s. \\help for commands.@." endpoint;
        remote_repl client))
  | [| _; path |] ->
    let store = Store.Catalog.from_env () in
    let rel, fingerprint =
      match
        match store with
        | Some cat ->
          let rel, fp = Store.Catalog.load_table cat path in
          (rel, Some fp)
        | None ->
          if Filename.check_suffix path ".seg" then
            (Store.Segment.read path, Some (Store.Segment.fingerprint_file path))
          else (Relalg.Csv.read path, None)
      with
      | v -> v
      | exception Relalg.Csv.Error (line, msg) ->
        Printf.eprintf "paql_repl: csv error at line %d: %s\n" line msg;
        exit 3
      | exception Store.Segment.Error msg ->
        Printf.eprintf "paql_repl: store: %s\n" msg;
        exit 3
      | exception Sys_error msg ->
        Printf.eprintf "paql_repl: %s\n" msg;
        exit 3
    in
    Format.printf "loaded %s: %d tuple(s). \\help for commands.@." path
      (Relalg.Relation.cardinality rel);
    Option.iter
      (fun cat -> Format.printf "store: %s@." (Store.Catalog.dir cat))
      store;
    repl
      {
        rel;
        part = None;
        hier = None;
        method_ = `Direct;
        limits = Ilp.Branch_bound.default_limits;
        show_package = true;
        store;
        fingerprint;
      }
  | _ ->
    prerr_endline "usage: paql_repl DATA.csv | paql_repl --connect HOST:PORT";
    exit 2
