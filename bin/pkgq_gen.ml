(* pkgq_gen: emit the synthetic benchmark datasets (Galaxy / TPC-H
   pre-joined) as CSV, for use with the paql CLI or external tools.

   Examples:
     pkgq_gen galaxy -n 100000 -o galaxy.csv
     pkgq_gen tpch -n 200000 --seed 7 -o tpch.csv
     pkgq_gen queries galaxy -n 10000      # print the workload queries *)

open Cmdliner

type format = Csv | Bin

let write_or_print format out rel =
  match format, out with
  | Csv, Some path ->
    Relalg.Csv.write path rel;
    Printf.printf "wrote %d tuples to %s\n"
      (Relalg.Relation.cardinality rel)
      path
  | Csv, None -> print_string (Relalg.Csv.to_string rel)
  | Bin, Some path ->
    Store.Segment.write path rel;
    Printf.printf "wrote %d tuples to %s (binary segment)\n"
      (Relalg.Relation.cardinality rel)
      path
  | Bin, None ->
    prerr_endline "pkgq_gen: --format bin requires an output file (-o)";
    exit 6

(* --noise: emit Monte-Carlo realizations of the table instead of the
   base relation. One scenario goes wherever the base would have; K > 1
   scenarios fan out to FILE.s<i><ext> so each realization is a
   loadable table. Scenario i is bitwise-identical however many are
   emitted (per-scenario derived seeds). *)
let emit_with_noise noise scenarios noise_seed format out rel =
  match noise with
  | None -> write_or_print format out rel
  | Some spec_str -> (
    if scenarios < 1 then begin
      prerr_endline "pkgq_gen: --scenarios must be >= 1";
      exit 6
    end;
    match Datagen.Scenario.parse_specs spec_str with
    | Error msg ->
      prerr_endline ("pkgq_gen: --noise: " ^ msg);
      exit 6
    | Ok specs -> (
      match Datagen.Scenario.generate ~seed:noise_seed ~scenarios specs rel with
      | Error msg ->
        prerr_endline ("pkgq_gen: --noise: " ^ msg);
        exit 3
      | Ok t ->
        if scenarios = 1 then
          write_or_print format out (Datagen.Scenario.realize t 0)
        else (
          match out with
          | None ->
            prerr_endline
              "pkgq_gen: --scenarios > 1 requires an output file (-o); one \
               file per scenario is written";
            exit 6
          | Some path ->
            let ext = Filename.extension path in
            let base = Filename.remove_extension path in
            for s = 0 to scenarios - 1 do
              write_or_print format
                (Some (Printf.sprintf "%s.s%d%s" base s ext))
                (Datagen.Scenario.realize t s)
            done)))

let gen_galaxy n seed skew noise scenarios noise_seed format out =
  if skew < 0. then begin
    prerr_endline "pkgq_gen: --skew must be >= 0";
    exit 6
  end;
  emit_with_noise noise scenarios noise_seed format out
    (Datagen.Galaxy.generate ~seed ~skew n)

let gen_tpch n seed skew noise scenarios noise_seed format out =
  if skew < 0. then begin
    prerr_endline "pkgq_gen: --skew must be >= 0";
    exit 6
  end;
  emit_with_noise noise scenarios noise_seed format out
    (Datagen.Tpch.generate ~seed ~skew n)

let show_queries dataset n seed =
  let defs =
    match dataset with
    | "galaxy" ->
      Datagen.Workload.galaxy_queries (Datagen.Galaxy.generate ~seed n)
    | "tpch" -> Datagen.Workload.tpch_queries (Datagen.Tpch.generate ~seed n)
    | d ->
      prerr_endline ("pkgq_gen: unknown dataset " ^ d ^ " (galaxy or tpch)");
      exit 3
  in
  List.iter
    (fun (d : Datagen.Workload.def) ->
      Printf.printf "-- %s (attrs: %s)\n%s\n\n" d.name
        (String.concat ", " d.attrs)
        d.paql)
    defs

let gen_workload dataset count repeat stochastic appends n seed out =
  let rel, ds =
    match dataset with
    | "galaxy" -> (Datagen.Galaxy.generate ~seed n, `Galaxy)
    | "tpch" -> (Datagen.Tpch.generate ~seed n, `Tpch)
    | d ->
      prerr_endline ("pkgq_gen: unknown dataset " ^ d ^ " (galaxy or tpch)");
      exit 3
  in
  if not (repeat >= 0. && repeat <= 1.) then begin
    prerr_endline "pkgq_gen: --repeat must be in [0,1]";
    exit 6
  end;
  if appends < 0 then begin
    prerr_endline "pkgq_gen: --appends must be >= 0";
    exit 6
  end;
  if not (stochastic >= 0. && stochastic <= 1.) then begin
    prerr_endline "pkgq_gen: --stochastic must be in [0,1]";
    exit 6
  end;
  let text, entries =
    if appends = 0 then
      let defs =
        Datagen.Workload.mixed ~seed ~repeat_rate:repeat
          ~stochastic_rate:stochastic ~dataset:ds ~n:count rel
      in
      (Datagen.Workload.render_workload defs, List.length defs)
    else
      let ops =
        Datagen.Workload.mixed_ops ~seed ~repeat_rate:repeat
          ~stochastic_rate:stochastic ~appends ~dataset:ds ~n:count rel
      in
      (Datagen.Workload.render_ops ops, List.length ops)
  in
  match out with
  | Some path ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc text);
    Printf.printf "wrote %d entries to %s\n" entries path
  | None -> print_string text

let n_arg =
  Arg.(
    value & opt int 10_000
    & info [ "n" ] ~docv:"N" ~doc:"Number of tuples to generate.")

let seed_arg =
  Arg.(
    value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc:"Deterministic seed.")

let skew_arg =
  Arg.(
    value & opt float 0.
    & info [ "skew" ] ~docv:"K"
        ~doc:
          "Concentration knob (>= 0, default 0): larger values pile \
           attribute mass near the low end with heavy tails — the regime \
           where DLV variance-driven partitioning beats equal-width cells. \
           0 reproduces the historical distributions byte-for-byte.")

let noise_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "noise" ] ~docv:"SPEC"
        ~doc:
          "Emit Monte-Carlo realizations of the table instead of the base \
           relation: additive gaussian noise on the named float columns, \
           comma-separated $(b,attr:sigma) entries with an optional \
           $(b,\\@corr) correlated-component weight in [0,1] (default 0.5), \
           e.g. $(b,'u:0.3,r:0.1\\@0.8'). The stochastic solver derives the \
           same model internally; this surface materializes the scenarios \
           for external tools.")

let scenarios_arg =
  Arg.(
    value & opt int 1
    & info [ "scenarios" ] ~docv:"K"
        ~doc:
          "With $(b,--noise): number of scenario realizations. 1 (default) \
           writes the single realization to $(b,-o)/stdout; K > 1 writes \
           $(b,FILE.s<i><ext>) per scenario. Scenario i is identical \
           whatever K is.")

let noise_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "noise-seed" ] ~docv:"S"
        ~doc:
          "Seed for the scenario noise streams (independent of $(b,--seed), \
           which shapes the base relation).")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")

let format_arg =
  let format_conv = Arg.enum [ ("csv", Csv); ("bin", Bin) ] in
  Arg.(
    value & opt format_conv Csv
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Output format: $(b,csv) (default) or $(b,bin), the store's binary \
           columnar segment ($(b,bin) requires $(b,-o)). Segments load \
           directly into the engine's column cache — no CSV parse.")

let galaxy_cmd =
  Cmd.v
    (Cmd.info "galaxy" ~doc:"generate the synthetic SDSS Galaxy stand-in")
    Term.(
      const gen_galaxy $ n_arg $ seed_arg $ skew_arg $ noise_arg
      $ scenarios_arg $ noise_seed_arg $ format_arg $ out_arg)

let tpch_cmd =
  Cmd.v
    (Cmd.info "tpch" ~doc:"generate the pre-joined TPC-H stand-in")
    Term.(
      const gen_tpch $ n_arg $ seed_arg $ skew_arg $ noise_arg $ scenarios_arg
      $ noise_seed_arg $ format_arg $ out_arg)

let queries_cmd =
  let dataset =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DATASET" ~doc:"galaxy or tpch")
  in
  Cmd.v
    (Cmd.info "queries"
       ~doc:"print the benchmark PaQL workload, instantiated on a sample")
    Term.(const show_queries $ dataset $ n_arg $ seed_arg)

let workload_cmd =
  let dataset =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DATASET" ~doc:"galaxy or tpch")
  in
  let count =
    Arg.(
      value & opt int 20
      & info [ "workload" ] ~docv:"N"
          ~doc:"Number of workload entries to emit.")
  in
  let repeat =
    Arg.(
      value & opt float 0.5
      & info [ "repeat" ] ~docv:"R"
          ~doc:
            "Expected fraction of entries that repeat an earlier query \
             verbatim (in [0,1]); repeats are what exercise a server's plan \
             and result caches.")
  in
  let stochastic =
    Arg.(
      value & opt float 0.
      & info [ "stochastic" ] ~docv:"R"
          ~doc:
            "Expected fraction of fresh entries synthesized as stochastic \
             queries (WITH PROBABILITY constraint + EXPECTED objective), in \
             [0,1]. 0 (the default) reproduces the historical streams \
             byte-for-byte.")
  in
  let appends =
    Arg.(
      value & opt int 0
      & info [ "appends" ] ~docv:"K"
          ~doc:
            "Interleave K append ops (NAME<TAB>@APPEND rows=R seed=S lines) \
             evenly through the query stream — the mutation mix the \
             durability benches replay. 0 (the default) emits a pure query \
             stream in the classic format.")
  in
  Cmd.v
    (Cmd.info "workload"
       ~doc:
         "emit a reproducible mixed query stream (NAME<TAB>QUERY lines) for \
          the service layer, instantiated on a generated sample")
    Term.(const gen_workload $ dataset $ count $ repeat $ stochastic
          $ appends $ n_arg $ seed_arg $ out_arg)

let () =
  let doc = "generate the package-query benchmark datasets" in
  let group =
    Cmd.group
      (Cmd.info "pkgq_gen" ~doc)
      [ galaxy_cmd; tpch_cmd; queries_cmd; workload_cmd ]
  in
  let die msg =
    prerr_endline ("pkgq_gen: " ^ msg);
    exit 3
  in
  match Cmd.eval group with
  | code -> exit code
  | exception Sys_error msg -> die msg
  | exception Relalg.Csv.Error (line, msg) ->
    die (Printf.sprintf "csv error at line %d: %s" line msg)
  | exception Failure msg -> die msg
