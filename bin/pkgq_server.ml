(* pkgq_server: serve package queries over TCP.

   Examples:
     pkgq_server --data galaxy.csv
     pkgq_server --data galaxy.csv --port 7070 --method sketchrefine \
       --workers 8 --queue 64 --store .pkgq-store
     paql --connect 127.0.0.1:7070 --query "SELECT PACKAGE(G) ..." *)

open Cmdliner

let exit_data_error = 3
let exit_usage_error = 6

let die code msg =
  prerr_endline ("pkgq_server: " ^ msg);
  exit code

let run_inner data host port workers queue result_cache method_ tau attrs
    epsilon max_seconds max_nodes request_seconds log_every faults store_dir
    no_store wal_dir wal_checkpoint verbose =
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end
  else begin
    (* the periodic metrics line logs at App level *)
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.App)
  end;
  (match faults with
  | None -> ()
  | Some s -> (
    match Pkg.Faults.parse s with
    | Ok spec -> Pkg.Faults.install spec
    | Error msg -> die exit_usage_error ("--faults: " ^ msg)));
  let catalog =
    if no_store then None
    else
      match store_dir with
      | Some d -> Some (Store.Catalog.open_dir d)
      | None -> Store.Catalog.from_env ()
  in
  let rel =
    match catalog with
    | Some cat -> fst (Store.Catalog.load_table cat data)
    | None ->
      if Filename.check_suffix data ".seg" then Store.Segment.read data
      else Relalg.Csv.read data
  in
  let defaults = Service.Server.default_config () in
  let cfg =
    {
      defaults with
      Service.Server.host;
      port;
      workers = (match workers with Some w -> max 1 w | None -> defaults.workers);
      queue = (match queue with Some q -> max 1 q | None -> defaults.queue);
      result_cache =
        (match result_cache with
        | Some c -> max 0 c
        | None -> defaults.result_cache);
      method_ =
        (match method_ with
        | `Direct -> Service.Server.Direct
        | `Sketch_refine -> Service.Server.Sketch_refine
        | `Parallel -> Service.Server.Parallel_refine
        | `Progressive -> Service.Server.Progressive
        | `Stochastic -> Service.Server.Stochastic);
      tau;
      attrs;
      epsilon;
      limits = { Ilp.Branch_bound.default_limits with max_nodes; max_seconds };
      request_seconds;
      log_every;
      wal_dir;
      wal_checkpoint =
        (match wal_checkpoint with
        | Some n -> max 0 n
        | None -> defaults.wal_checkpoint);
    }
  in
  let t = Service.Server.start ?catalog cfg rel in
  (match Service.Server.last_recovery t with
  | None -> ()
  | Some stats ->
    Printf.printf "pkgq_server: recovered %s\n%!"
      (Format.asprintf "%a" Store.Recovery.pp_stats stats));
  Printf.printf "pkgq_server: serving %d rows from %s on %s:%d\n%!"
    (Service.Server.table_rows t) data host (Service.Server.port t);
  let stop_requested = Atomic.make false in
  let request_stop _ = Atomic.set stop_requested true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  (* poll rather than joining in the signal handler: handlers must not
     block on the locks stop takes *)
  while not (Atomic.get stop_requested) do
    Thread.delay 0.1
  done;
  prerr_endline "pkgq_server: shutting down";
  Service.Server.stop t;
  print_endline (Service.Metrics.summary_line (Service.Server.metrics t))

let run data host port workers queue result_cache method_ tau attrs epsilon
    max_seconds max_nodes request_seconds log_every faults store_dir no_store
    wal_dir wal_checkpoint verbose =
  match
    run_inner data host port workers queue result_cache method_ tau attrs
      epsilon max_seconds max_nodes request_seconds log_every faults store_dir
      no_store wal_dir wal_checkpoint verbose
  with
  | () -> ()
  | exception Relalg.Csv.Error (line, msg) ->
    die exit_data_error (Printf.sprintf "csv error at line %d: %s" line msg)
  | exception Store.Segment.Error msg -> die exit_data_error ("store: " ^ msg)
  | exception Store.Wire.Error msg -> die exit_data_error ("wal: " ^ msg)
  | exception Sys_error msg -> die exit_data_error msg
  | exception Unix.Unix_error (e, fn, _) ->
    die exit_data_error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | exception Failure msg -> die exit_usage_error msg

let data =
  Arg.(
    required
    & opt (some file) None
    & info [ "data"; "d" ] ~docv:"FILE"
        ~doc:"Table to serve: CSV with a name:type header, or a .seg segment.")

let host =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")

let port =
  Arg.(
    value & opt int 0
    & info [ "port"; "p" ] ~docv:"PORT"
        ~doc:"Port to bind (default 0: pick an ephemeral port and print it).")

let workers =
  Arg.(
    value
    & opt (some int) None
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker pool size (default: $(b,PKGQ_SERVE_WORKERS) or 4).")

let queue =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue" ] ~docv:"N"
        ~doc:
          "Admission queue capacity; requests beyond it are shed with a \
           typed $(b,rejected) failure (default: $(b,PKGQ_SERVE_QUEUE) or \
           32).")

let result_cache =
  Arg.(
    value
    & opt (some int) None
    & info [ "result-cache" ] ~docv:"N"
        ~doc:
          "Result cache capacity; 0 disables (default: \
           $(b,PKGQ_RESULT_CACHE) or 256).")

let method_ =
  let method_conv =
    Arg.enum
      [ ("direct", `Direct); ("sketchrefine", `Sketch_refine);
        ("parallel", `Parallel); ("progressive", `Progressive);
        ("stochastic", `Stochastic) ]
  in
  Arg.(
    value & opt method_conv `Direct
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:
          "Evaluation method: $(b,direct), $(b,sketchrefine), \
           $(b,parallel) (sketchrefine with parallel refinement), \
           $(b,progressive) (coarse-to-fine DLV hierarchy shading; \
           $(b,--tau) sets the leaf threshold, $(b,PKGQ_HIER_LEVELS) \
           the level count) or $(b,stochastic) (SummarySearch over \
           Monte-Carlo scenarios; knobs $(b,PKGQ_SCENARIOS), \
           $(b,PKGQ_VALIDATE), $(b,PKGQ_SUMMARIES)). Queries using \
           WITH PROBABILITY or EXPECTED always take the stochastic \
           path, whatever the configured method.")

let tau =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau" ] ~docv:"N"
        ~doc:"Partition size threshold (default: 10% of the table).")

let attrs =
  Arg.(
    value
    & opt (list string) []
    & info [ "attrs" ] ~docv:"A,B,..."
        ~doc:
          "Partitioning attributes (default: each query's numeric \
           attributes).")

let epsilon =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"E" ~doc:"Theorem 3 radius limit parameter.")

let max_seconds =
  Arg.(
    value & opt float 3600.
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Wall-clock budget per ILP solve.")

let max_nodes =
  Arg.(
    value & opt int 200_000
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Branch-and-bound node budget.")

let request_seconds =
  Arg.(
    value & opt float 60.
    & info [ "request-seconds" ] ~docv:"S"
        ~doc:
          "Per-request wall budget, queue wait included; an expired request \
           answers $(b,deadline) instead of running over.")

let log_every =
  Arg.(
    value & opt float 10.
    & info [ "log-every" ] ~docv:"S"
        ~doc:"Seconds between metrics summary log lines (0 disables).")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault-injection directives (PKGQ_FAULTS grammar), \
           e.g. $(b,'queue=full') or $(b,'net=accept:fail').")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Store directory for the table segment cache and partition \
           catalog. Defaults to $(b,PKGQ_STORE_DIR) when set.")

let no_store =
  Arg.(
    value & flag
    & info [ "no-store" ] ~doc:"Ignore the store ($(b,PKGQ_STORE_DIR)).")

let wal_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"DIR"
        ~doc:
          "Durability directory (write-ahead log + checkpoint). On boot the \
           served state is recovered from it — checkpoint plus replayed log, \
           torn tails truncated — and $(b,--data) only seeds a directory \
           that has never checkpointed. Every APPEND/DELETE is logged \
           durably before it is acknowledged ($(b,PKGQ_WAL_SYNC) controls \
           the fsync).")

let wal_checkpoint =
  Arg.(
    value
    & opt (some int) None
    & info [ "wal-checkpoint" ] ~docv:"N"
        ~doc:
          "Fold the log into a fresh checkpoint every N records; 0 never \
           checkpoints (default: $(b,PKGQ_WAL_CHECKPOINT) or 64).")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Chatty logging.")

let cmd =
  let doc = "serve PaQL package queries over TCP" in
  let term =
    Term.(
      const run $ data $ host $ port $ workers $ queue $ result_cache
      $ method_ $ tau $ attrs $ epsilon $ max_seconds $ max_nodes
      $ request_seconds $ log_every $ faults $ store_dir $ no_store $ wal_dir
      $ wal_checkpoint $ verbose)
  in
  Cmd.v (Cmd.info "pkgq_server" ~doc) term

let () = match Cmd.eval_value cmd with Ok _ -> () | Error _ -> exit 124
