(* paql: run PaQL package queries against CSV data from the command
   line, with DIRECT or SKETCHREFINE evaluation.

   Examples:
     paql --data recipes.csv --query-file q.paql
     paql --data recipes.csv --query "SELECT PACKAGE(R) ..." \
          --method sketchrefine --tau 1000 --attrs kcal,fat
     paql --data big.csv --query-file q.paql --method sketchrefine \
          --epsilon 0.5 --out package.csv *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type method_ = Direct | Sketch_refine | Progressive | Stochastic

(* Distinct exit codes so scripts can tell failure modes apart:
   1 infeasible, 2 no package (solver failure), 3 data/IO error,
   4 PaQL parse error, 5 analysis/translation error, 6 usage error,
   124 command-line error. *)
let exit_data_error = 3
let exit_parse_error = 4
let exit_analysis_error = 5
let exit_usage_error = 6

let die code msg =
  prerr_endline ("paql: " ^ msg);
  exit code

(* Remote mode: ship the query to a pkgq_server and relay its answer.
   The OK body carries the package as CSV, so --out writes exactly the
   bytes a local run would; a remote failure exits with the same code
   taxonomy (plus 7 for an admission-control rejection). *)
let run_remote endpoint retries connect_timeout query out =
  let host, port =
    match Service.Client.parse_endpoint endpoint with
    | Ok hp -> hp
    | Error msg -> die exit_usage_error ("--connect: " ^ msg)
  in
  let client =
    try Service.Client.connect ~retries ?connect_timeout ~host ~port () with
    | Unix.Unix_error (e, _, _) ->
      die exit_data_error
        (Printf.sprintf "connect %s: %s" endpoint (Unix.error_message e))
    | Service.Client.Gave_up { attempts; last } ->
      die exit_data_error
        (Printf.sprintf "connect %s: gave up after %d attempts (%s)" endpoint
           attempts (Printexc.to_string last))
    | Service.Client.Timed_out { seconds; _ } ->
      die exit_data_error
        (Printf.sprintf "connect %s: timed out after %.3fs" endpoint seconds)
    | Failure msg -> die exit_data_error msg
  in
  Fun.protect
    ~finally:(fun () -> Service.Client.close client)
    (fun () ->
      match Service.Client.query client query with
      | exception Service.Protocol.Protocol_error msg ->
        die exit_data_error ("remote: " ^ msg)
      | exception Service.Client.Gave_up { attempts; last } ->
        die exit_data_error
          (Printf.sprintf "remote: gave up after %d attempts (%s)" attempts
             (Printexc.to_string last))
      | Service.Protocol.Resp_err (code, msg) ->
        prerr_endline ("paql: remote: " ^ msg);
        exit (Service.Protocol.exit_code code)
      | Service.Protocol.Resp_ok body -> (
        match Service.Protocol.parse_result body with
        | Error msg -> die exit_data_error ("remote: " ^ msg)
        | Ok (status, wall, csv) -> (
          Format.printf "%s, %.3fs (remote)@." status wall;
          match out with
          | Some path ->
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc csv);
            Format.printf "package written to %s@." path
          | None -> print_string csv)))

let run_inner connect retries connect_timeout data query_text query_file
    method_ tau attrs epsilon max_seconds max_nodes faults out verbose explain
    mps_out partition_file save_partition parallel store_dir no_store =
  let query =
    match query_text, query_file with
    | Some q, None -> q
    | None, Some f -> read_file f
    | Some _, Some _ ->
      die exit_usage_error "pass either --query or --query-file, not both"
    | None, None ->
      die exit_usage_error "a query is required (--query or --query-file)"
  in
  match connect with
  | Some endpoint -> run_remote endpoint retries connect_timeout query out
  | None ->
  let data =
    match data with
    | Some d -> d
    | None -> die exit_usage_error "--data is required (unless --connect)"
  in
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  (match faults with
  | None -> ()
  | Some s -> (
    match Pkg.Faults.parse s with
    | Ok spec -> Pkg.Faults.install spec
    | Error msg -> die exit_usage_error ("--faults: " ^ msg)));
  let catalog =
    if no_store then None
    else
      match store_dir with
      | Some d -> Some (Store.Catalog.open_dir d)
      | None -> Store.Catalog.from_env ()
  in
  let rel, fingerprint =
    match catalog with
    | Some cat ->
      let rel, fp = Store.Catalog.load_table cat data in
      (rel, Some fp)
    | None ->
      if Filename.check_suffix data ".seg" then (Store.Segment.read data, None)
      else (Relalg.Csv.read data, None)
  in
  let schema = Relalg.Relation.schema rel in
  let ast =
    match Paql.Parser.parse query with
    | Ok ast -> ast
    | Error msg -> die exit_parse_error ("parse error: " ^ msg)
  in
  (match Paql.Analyze.check schema ast with
  | Ok () -> ()
  | Error errs -> die exit_analysis_error (String.concat "\n" errs));
  let spec =
    try Paql.Translate.compile_exn schema ast
    with Failure msg -> die exit_analysis_error msg
  in
  if verbose then
    Format.printf "Parsed query:@.%a@.@." Paql.Pretty.pp_query ast;
  if explain then begin
    print_string (Paql.Translate.describe spec rel);
    exit 0
  end;
  (match mps_out with
  | Some path ->
    let candidates = Paql.Translate.base_candidates spec rel in
    let problem = Paql.Translate.to_problem spec rel ~candidates in
    Lp.Mps.write path problem;
    Format.printf "ILP written to %s (%d vars, %d rows)@." path
      (Lp.Problem.nvars problem) (Lp.Problem.nrows problem)
  | None -> ());
  let limits =
    { Ilp.Branch_bound.default_limits with max_nodes; max_seconds }
  in
  (* shared by sketchrefine and progressive *)
  let partition_attrs () =
    match attrs with
    | [] ->
      (* default: the query's own numeric attributes *)
      let qattrs = Paql.Ast.all_attrs ast in
      let numeric =
        List.filter
          (fun a ->
            match Relalg.Schema.index_of_opt schema a with
            | Some i -> (
              match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
              | Relalg.Value.TInt | Relalg.Value.TFloat -> true
              | Relalg.Value.TStr | Relalg.Value.TBool -> false)
            | None -> false)
          qattrs
      in
      if numeric = [] then
        die exit_usage_error
          "partitioning needs numeric attributes (--attrs)";
      numeric
    | attrs -> attrs
  in
  let radius_of_epsilon () =
    match epsilon with
    | None -> Pkg.Partition.No_radius
    | Some epsilon ->
      let maximize =
        match Paql.Translate.objective_sense spec with
        | Lp.Problem.Maximize -> true
        | Lp.Problem.Minimize -> false
      in
      Pkg.Partition.Theorem { epsilon; maximize }
  in
  let report =
    (* Stochastic queries always route to the stochastic driver — the
       deterministic methods would silently ignore WITH PROBABILITY
       constraints. [--method stochastic] on a deterministic query
       delegates to DIRECT inside the driver. *)
    if Paql.Translate.is_stochastic spec || method_ = Stochastic then begin
      let options =
        { (Pkg.Stochastic.default_options ()) with limits; max_seconds }
      in
      let report, stats = Pkg.Stochastic.run ~options spec rel in
      if verbose && stats.Pkg.Stochastic.st_scenarios > 0 then
        Format.printf
          "stochastic: %d scenario(s) (+%d held out), %d summarie(s), %d \
           round(s), validated probability %.3f@."
          stats.Pkg.Stochastic.st_scenarios stats.Pkg.Stochastic.st_validation
          stats.Pkg.Stochastic.st_summaries stats.Pkg.Stochastic.st_rounds
          stats.Pkg.Stochastic.st_validated;
      report
    end
    else
    match method_ with
    | Stochastic -> assert false (* handled above *)
    | Direct -> Pkg.Direct.run ~limits spec rel
    | Progressive ->
      let attrs = partition_attrs () in
      let radius = radius_of_epsilon () in
      let t0 = Unix.gettimeofday () in
      (* --tau overrides the leaf threshold (PKGQ_DLV_LEAF / card/100
         default); level count comes from PKGQ_HIER_LEVELS *)
      let hier_result =
        match catalog, fingerprint with
        | Some cat, Some fp ->
          Ok
            (Store.Catalog.lookup_or_build_hierarchy cat ~fingerprint:fp
               ~radius ?leaf_tau:tau ~attrs rel)
        | _ -> (
          try Ok (Pkg.Hierarchy.build ~radius ?leaf_tau:tau ~attrs rel, `Built)
          with Pkg.Faults.Injected msg -> Error msg)
      in
      (match hier_result with
      | Error msg ->
        Pkg.Eval.report
          ~status:
            (Pkg.Eval.failed ~stage:Pkg.Eval.Progressive
               (Pkg.Eval.Solver_error msg))
          ~package:None ~objective:None
          ~wall_time:(Unix.gettimeofday () -. t0)
          ~counters:(Pkg.Eval.fresh_counters ())
      | Ok (hier, status) ->
        if verbose then
          Format.printf "Hierarchy %s: %d levels (%s groups) in %.3fs@."
            (match status with `Hit -> "catalog hit" | `Built -> "built")
            (Pkg.Hierarchy.num_levels hier)
            (String.concat "/"
               (Array.to_list
                  (Array.map
                     (fun p -> string_of_int (Pkg.Partition.num_groups p))
                     hier.Pkg.Hierarchy.levels)))
            (Unix.gettimeofday () -. t0);
        let options =
          { Pkg.Progressive.default_options with limits; max_seconds }
        in
        let report, level_stats = Pkg.Progressive.run ~options spec rel hier in
        if verbose then
          List.iter
            (fun s ->
              Format.printf
                "level %d: %d groups with variables, %d active, %.3fs%s@."
                s.Pkg.Progressive.ls_level s.Pkg.Progressive.ls_groups
                s.Pkg.Progressive.ls_active s.Pkg.Progressive.ls_seconds
                (if s.Pkg.Progressive.ls_widened then " (widened)" else ""))
            level_stats;
        report)
    | Sketch_refine ->
      let attrs = partition_attrs () in
      let tau =
        match tau with
        | Some t -> t
        | None -> max 1 (Relalg.Relation.cardinality rel / 10)
      in
      let persisted =
        Option.map (fun path -> Pkg.Partition.load path rel) partition_file
      in
      let radius = radius_of_epsilon () in
      let t0 = Unix.gettimeofday () in
      let build () = Pkg.Partition.create ~radius ~tau ~attrs rel in
      let part =
        match persisted with
        | Some p ->
          if verbose then
            Format.printf "Loaded partitioning: %d groups@."
              (Pkg.Partition.num_groups p);
          p
        | None -> (
          match catalog, fingerprint with
          | Some cat, Some fp ->
            let key = { Store.Catalog.fingerprint = fp; attrs; tau; radius;
                        level = None } in
            let p, status = Store.Catalog.lookup_or_build cat key ~build in
            if verbose then
              Format.printf "Partition catalog %s (%s): %d groups in %.3fs@."
                (match status with `Hit -> "hit" | `Built -> "miss, built")
                (Store.Catalog.key_id key)
                (Pkg.Partition.num_groups p)
                (Unix.gettimeofday () -. t0);
            p
          | _ ->
            let p = build () in
            if verbose then
              Format.printf "Partitioned %d tuples into %d groups in %.3fs@."
                (Relalg.Relation.cardinality rel)
                (Pkg.Partition.num_groups p)
                (Unix.gettimeofday () -. t0);
            p)
      in
      Option.iter
        (fun path ->
          Pkg.Partition.save path part;
          if verbose then Format.printf "Partitioning saved to %s@." path)
        save_partition;
      let options =
        { Pkg.Sketch_refine.default_options with limits; max_seconds }
      in
      if parallel then Pkg.Parallel.run ~options spec rel part
      else Pkg.Sketch_refine.run ~options spec rel part
  in
  Format.printf "%a@." Pkg.Eval.pp_report report;
  match report.Pkg.Eval.package with
  | None -> if report.Pkg.Eval.status = Pkg.Eval.Infeasible then exit 1 else exit 2
  | Some p ->
    let materialized = Pkg.Package.materialize p in
    (match out with
    | Some path ->
      Relalg.Csv.write path materialized;
      Format.printf "package written to %s (%d rows)@." path
        (Relalg.Relation.cardinality materialized)
    | None ->
      Format.printf "@.%a@." Relalg.Relation.pp materialized)

(* Cmdliner traps exceptions escaping the term (reporting them as an
   internal error, exit 124), so failure-mode exit codes must be
   assigned here, inside the term body. *)
let run connect retries connect_timeout data query_text query_file method_
    tau attrs epsilon max_seconds max_nodes faults out verbose explain mps_out
    partition_file save_partition parallel store_dir no_store =
  match
    run_inner connect retries connect_timeout data query_text query_file
      method_ tau attrs epsilon max_seconds max_nodes faults out verbose
      explain mps_out partition_file save_partition parallel store_dir no_store
  with
  | () -> ()
  | exception Relalg.Csv.Error (line, msg) ->
    die exit_data_error (Printf.sprintf "csv error at line %d: %s" line msg)
  | exception Store.Segment.Error msg ->
    die exit_data_error ("store: " ^ msg)
  | exception Sys_error msg -> die exit_data_error msg
  | exception Paql.Lexer.Lex_error (msg, pos) ->
    die exit_parse_error (Printf.sprintf "lex error at offset %d: %s" pos msg)
  | exception Paql.Parser.Parse_error (msg, pos) ->
    die exit_parse_error (Printf.sprintf "parse error at offset %d: %s" pos msg)
  | exception Failure msg -> die exit_usage_error msg

let connect =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect"; "c" ] ~docv:"HOST:PORT"
        ~doc:
          "Evaluate against a running $(b,pkgq_server) instead of local \
           data: the query is shipped over the wire and the package comes \
           back as CSV (so $(b,--out) is byte-identical to a local run). \
           Local-evaluation flags are ignored; a rejected (shed) request \
           exits 7.")

let retries =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "With $(b,--connect): retry connection establishment and \
           idempotent requests up to N times with capped exponential \
           backoff and jitter, riding out a server restart window. \
           APPENDs are never resent.")

let connect_timeout =
  Arg.(
    value
    & opt (some float) None
    & info [ "connect-timeout" ] ~docv:"SECONDS"
        ~doc:
          "With $(b,--connect): bound each TCP connection attempt; a hung \
           or stopped server yields a typed timeout error instead of an \
           indefinitely blocked client. Unset = block (legacy behaviour).")

let data =
  Arg.(
    value
    & opt (some file) None
    & info [ "data"; "d" ] ~docv:"CSV"
        ~doc:
          "Input relation as CSV with a name:type header (required unless \
           $(b,--connect)).")

let query_text =
  Arg.(
    value
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"PAQL" ~doc:"PaQL query text.")

let query_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "query-file"; "f" ] ~docv:"FILE" ~doc:"File holding the PaQL query.")

let method_ =
  let method_conv =
    Arg.enum
      [ ("direct", Direct); ("sketchrefine", Sketch_refine);
        ("progressive", Progressive); ("stochastic", Stochastic) ]
  in
  Arg.(
    value & opt method_conv Direct
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:
          "Evaluation method: $(b,direct), $(b,sketchrefine), \
           $(b,progressive) (coarse-to-fine shading over a DLV hierarchy; \
           $(b,--tau) sets the leaf threshold, levels come from \
           $(b,PKGQ_HIER_LEVELS)), or $(b,stochastic) (SummarySearch over \
           Monte-Carlo scenarios; knobs $(b,PKGQ_SCENARIOS), \
           $(b,PKGQ_SUMMARIES), $(b,PKGQ_VALIDATE)). Queries with \
           $(b,WITH PROBABILITY) or $(b,EXPECTED) always use the \
           stochastic driver, whatever this flag says.")

let tau =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau" ] ~docv:"N"
        ~doc:"Partition size threshold (default: 10% of the input).")

let attrs =
  Arg.(
    value
    & opt (list string) []
    & info [ "attrs" ] ~docv:"A,B,..."
        ~doc:"Partitioning attributes (default: the query's numeric attributes).")

let epsilon =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"E"
        ~doc:
          "Approximation parameter: partition with the Theorem 3 radius \
           limit for a (1+/-E)^6 objective guarantee.")

let max_seconds =
  Arg.(
    value & opt float 3600.
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Wall-clock budget per solve.")

let max_nodes =
  Arg.(
    value & opt int 200_000
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Branch-and-bound node budget.")

let faults =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Install deterministic fault-injection directives (same grammar \
           as the PKGQ_FAULTS environment variable), e.g. \
           $(b,'ilp=3:limit; stage=sketch:infeasible; worker=0:crash').")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"CSV" ~doc:"Write the package to a CSV file.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Chatty output.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the ILP translation summary instead of solving.")

let mps_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "mps-out" ] ~docv:"FILE"
        ~doc:"Also dump the translated ILP in MPS format.")

let partition_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "partition-file" ] ~docv:"FILE"
        ~doc:
          "Reuse a partitioning saved with $(b,--save-partition) instead of \
           partitioning at query time (sketchrefine only).")

let save_partition =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-partition" ] ~docv:"FILE"
        ~doc:"Persist the partitioning for reuse (sketchrefine only).")

let parallel =
  Arg.(
    value & flag
    & info [ "parallel" ]
        ~doc:"Use the parallel refinement driver (sketchrefine only).")

let store_dir =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Store directory: imported tables are cached as binary segments \
           and sketchrefine partitionings are persisted and reused across \
           runs. Defaults to $(b,PKGQ_STORE_DIR) when set.")

let no_store =
  Arg.(
    value & flag
    & info [ "no-store" ]
        ~doc:"Ignore the store (and $(b,PKGQ_STORE_DIR)) for this run.")

let cmd =
  let doc = "evaluate PaQL package queries over CSV data" in
  let term =
    Term.(
      const run $ connect $ retries $ connect_timeout $ data $ query_text
      $ query_file
      $ method_ $ tau
      $ attrs $ epsilon $ max_seconds $ max_nodes $ faults $ out $ verbose
      $ explain $ mps_out $ partition_file $ save_partition $ parallel
      $ store_dir $ no_store)
  in
  Cmd.v (Cmd.info "paql" ~doc) term

let () =
  match Cmd.eval_value cmd with Ok _ -> () | Error _ -> exit 124
