(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 5) at laptop scale.

     fig1   naive SQL self-join formulation vs ILP (Figure 1)
     fig3   per-query non-NULL TPC-H table sizes (Figure 3)
     fig4   offline partitioning time (Figure 4)
     fig5   scalability on Galaxy: Direct vs SketchRefine (Figure 5)
     fig6   scalability on TPC-H (Figure 6)
     fig7   partition size threshold sweep, Galaxy (Figure 7)
     fig8   partition size threshold sweep, TPC-H (Figure 8)
     fig9   partitioning coverage sweep (Figure 9)
     radius radius-limited partitioning repairs TPC-H Q2 (Section 5.2.1)
     ablation partitioner / fan-out / cuts / presolve design choices
     scan   row path vs vectorized columnar scans
     robust deadline propagation overshoot
     store  binary segments, partition catalog, incremental maintenance
     serve  service layer: cached throughput, latency, admission control
     solver warm-started dual simplex vs cold primal; basis-cache stream
     progressive tight-constraint matrix: coarse-to-fine vs flat sketch
     micro  bechamel micro-benchmarks of the solver substrate

   Dataset sizes are scaled down from the paper's 5.5M/17.5M tuples;
   `--scale` multiplies the defaults. Shapes (who wins, by what factor,
   where the sweet spots fall), not absolute seconds, are the
   reproduction target — see EXPERIMENTS.md. *)

(* Laptop-scale stand-ins for the paper's 5.5M / 17.5M tuples; chosen
   so the full suite finishes in well under an hour on one core.
   PKGQ_SCALE or --scale multiplies both. *)
let galaxy_base = 20_000
let tpch_base = 30_000

(* Solver budget per ILP call: the analogue of the paper's CPLEX
   configuration (1-hour cap, killed on memory exhaustion). A Direct
   run that exhausts this budget without an incumbent is reported as a
   failure, like the missing data points in Figures 5-8. *)
let bench_limits =
  { Ilp.Branch_bound.default_limits with max_nodes = 40_000; max_seconds = 20. }

let sr_options =
  { Pkg.Sketch_refine.default_options with limits = bench_limits;
    max_seconds = 60. }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let ratio ~maximize ~direct ~sr =
  match direct, sr with
  | Some od, Some os when Float.abs (if maximize then os else od) > 1e-12 ->
    Some (if maximize then od /. os else os /. od)
  | _ -> None

let mean_median xs =
  match xs with
  | [] -> None
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
    let median =
      if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.
    in
    Some (mean, median)

let pp_time ppf = function
  | Some t -> Format.fprintf ppf "%8.3f" t
  | None -> Format.fprintf ppf "%8s" "fail"

let status_cell (r : Pkg.Eval.report) t =
  match r.Pkg.Eval.status with
  | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> Some t
  | Pkg.Eval.Infeasible | Pkg.Eval.Failed _ | Pkg.Eval.Degraded _ -> None

(* A Direct run only counts as successful when the solver effectively
   finished: the paper's CPLEX either proves (near-)optimality within
   its budget or dies on memory. A run that burnt the whole budget and
   still has a >2% optimality gap is the budget-death analogue. *)
let direct_cell (r : Pkg.Eval.report) t =
  match r.Pkg.Eval.status with
  | Pkg.Eval.Optimal -> Some t
  | Pkg.Eval.Feasible gap when gap <= 0.02 -> Some t
  | Pkg.Eval.Feasible _ | Pkg.Eval.Infeasible | Pkg.Eval.Failed _
  | Pkg.Eval.Degraded _ ->
    None

(* ------------------------------------------------------------------ *)
(* Figure 1                                                           *)
(* ------------------------------------------------------------------ *)

let fig1 ~scale () =
  let n = max 10 (int_of_float (40. *. scale)) in
  Format.printf
    "@.== Figure 1: SQL formulation vs ILP formulation (n=%d tuples) ==@." n;
  Format.printf
    "  (paper: 100 SDSS tuples, SQL hits ~24h at cardinality 7)@.";
  let rel = Datagen.Galaxy.generate ~seed:7 n in
  let schema = Relalg.Relation.schema rel in
  let mu =
    Relalg.Value.to_float
      (Relalg.Aggregate.over rel (Relalg.Aggregate.Avg "redshift"))
  in
  Format.printf "  card   sql(s)      ilp(s)@.";
  for k = 1 to 7 do
    let text =
      Printf.sprintf
        "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) \
         = %d AND SUM(P.redshift) <= %g MAXIMIZE SUM(P.petro_rad)"
        k
        (float_of_int k *. mu *. 1.5)
    in
    let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn text) in
    let sql_report, sql_t =
      time (fun () -> Pkg.Naive_sql.run spec rel ~cardinality:k)
    in
    let ilp_report, ilp_t =
      time (fun () -> Pkg.Direct.run ~limits:bench_limits spec rel)
    in
    Format.printf "  %4d %a    %a@." k pp_time
      (status_cell sql_report sql_t)
      pp_time
      (status_cell ilp_report ilp_t)
  done

(* ------------------------------------------------------------------ *)
(* Figure 3                                                           *)
(* ------------------------------------------------------------------ *)

let fig3 ~scale () =
  let n = int_of_float (float_of_int tpch_base *. scale) in
  Format.printf
    "@.== Figure 3: TPC-H per-query non-NULL table sizes (pre-joined n=%d) \
     ==@."
    n;
  let rel = Datagen.Tpch.generate ~seed:2 n in
  let queries = Datagen.Workload.tpch_queries rel in
  Format.printf "  query   tuples    (share of pre-joined table)@.";
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let sub = Datagen.Workload.query_relation ~dataset:`Tpch rel d in
      let c = Relalg.Relation.cardinality sub in
      Format.printf "  %-6s %8d    (%.1f%%)@." d.name c
        (100. *. float_of_int c /. float_of_int n))
    queries

(* ------------------------------------------------------------------ *)
(* Figure 4                                                           *)
(* ------------------------------------------------------------------ *)

let fig4 ~scale () =
  Format.printf
    "@.== Figure 4: offline partitioning time (workload attributes, tau=10%%, \
     no radius) ==@.";
  let one name rel attrs =
    let n = Relalg.Relation.cardinality rel in
    let tau = max 1 (n / 10) in
    let part, t = time (fun () -> Pkg.Partition.create ~tau ~attrs rel) in
    Format.printf "  %-8s %8d tuples  tau=%-7d %4d groups  %7.3f s@." name n
      tau
      (Pkg.Partition.num_groups part)
      t
  in
  let g =
    Datagen.Galaxy.generate ~seed:1
      (int_of_float (float_of_int galaxy_base *. scale))
  in
  one "Galaxy" g
    (Datagen.Workload.workload_attrs (Datagen.Workload.galaxy_queries g));
  let t =
    Datagen.Tpch.generate ~seed:2
      (int_of_float (float_of_int tpch_base *. scale))
  in
  one "TPC-H" t
    (Datagen.Workload.workload_attrs (Datagen.Workload.tpch_queries t))

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: scalability                                       *)
(* ------------------------------------------------------------------ *)

let scalability ~label ~dataset rel queries =
  Format.printf
    "@.== %s: Direct vs SketchRefine, dataset size sweep (tau=10%%, workload \
     attrs, no radius) ==@."
    label;
  let wattrs = Datagen.Workload.workload_attrs queries in
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let qrel = Datagen.Workload.query_relation ~dataset rel d in
      let nq = Relalg.Relation.cardinality qrel in
      let tau = max 1 (nq / 10) in
      let part = Pkg.Partition.create ~tau ~attrs:wattrs qrel in
      Format.printf "@.%s (table: %d tuples):@." d.name nq;
      Format.printf "   size     n      direct(s)  sketchref(s)  ratio@.";
      let ratios = ref [] in
      List.iter
        (fun pct ->
          let n = max 1 (nq * pct / 100) in
          let sub = Relalg.Relation.prefix qrel n in
          let subpart = Pkg.Partition.restrict_prefix part sub n in
          let spec = Datagen.Workload.compile sub d in
          let rd, td =
            time (fun () -> Pkg.Direct.run ~limits:bench_limits spec sub)
          in
          let rs, ts =
            time (fun () ->
                Pkg.Sketch_refine.run ~options:sr_options spec sub subpart)
          in
          let r =
            ratio ~maximize:d.maximize
              ~direct:(direct_cell rd rd.Pkg.Eval.objective |> Option.join)
              ~sr:(status_cell rs rs.Pkg.Eval.objective |> Option.join)
          in
          Option.iter (fun r -> ratios := r :: !ratios) r;
          Format.printf "   %3d%%  %7d  %a   %a    %s@." pct n pp_time
            (direct_cell rd td) pp_time (status_cell rs ts)
            (match r with Some r -> Printf.sprintf "%.2f" r | None -> "-"))
        [ 10; 40; 70; 100 ];
      match mean_median !ratios with
      | Some (mean, median) ->
        Format.printf "   approximation ratio: mean %.2f, median %.2f@." mean
          median
      | None -> Format.printf "   approximation ratio: - (Direct failed)@.")
    queries

let fig5 ~scale () =
  let n = int_of_float (float_of_int galaxy_base *. scale) in
  let rel = Datagen.Galaxy.generate ~seed:1 n in
  scalability ~label:"Figure 5 (Galaxy)" ~dataset:`Galaxy rel
    (Datagen.Workload.galaxy_queries rel)

let fig6 ~scale () =
  let n = int_of_float (float_of_int tpch_base *. scale) in
  let rel = Datagen.Tpch.generate ~seed:2 n in
  scalability ~label:"Figure 6 (TPC-H)" ~dataset:`Tpch rel
    (Datagen.Workload.tpch_queries rel)

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: partition size threshold sweep                    *)
(* ------------------------------------------------------------------ *)

let tau_sweep ~label ~dataset ~fraction rel queries =
  Format.printf
    "@.== %s: partition size threshold sweep (%d%% of data, workload attrs, \
     no radius) ==@."
    label
    (int_of_float (fraction *. 100.));
  let wattrs = Datagen.Workload.workload_attrs queries in
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let qrel = Datagen.Workload.query_relation ~dataset rel d in
      let n =
        max 1 (int_of_float (float_of_int (Relalg.Relation.cardinality qrel)
                             *. fraction))
      in
      let sub = Relalg.Relation.prefix qrel n in
      let spec = Datagen.Workload.compile sub d in
      let rd, td =
        time (fun () -> Pkg.Direct.run ~limits:bench_limits spec sub)
      in
      Format.printf "@.%s (n=%d, direct: %a s):@." d.name n pp_time
        (direct_cell rd td);
      Format.printf "   tau      groups  sketchref(s)  ratio@.";
      let ratios = ref [] in
      let tau = ref (max 1 (n / 2)) in
      while !tau >= 25 do
        let part = Pkg.Partition.create ~tau:!tau ~attrs:wattrs sub in
        let rs, ts =
          time (fun () ->
              Pkg.Sketch_refine.run ~options:sr_options spec sub part)
        in
        let r =
          ratio ~maximize:d.maximize
            ~direct:(direct_cell rd rd.Pkg.Eval.objective |> Option.join)
            ~sr:(status_cell rs rs.Pkg.Eval.objective |> Option.join)
        in
        Option.iter (fun r -> ratios := r :: !ratios) r;
        Format.printf "   %-8d %5d   %a    %s@." !tau
          (Pkg.Partition.num_groups part)
          pp_time (status_cell rs ts)
          (match r with Some r -> Printf.sprintf "%.2f" r | None -> "-");
        tau := !tau / 4
      done;
      match mean_median !ratios with
      | Some (mean, median) ->
        Format.printf "   approximation ratio: mean %.2f, median %.2f@." mean
          median
      | None -> Format.printf "   approximation ratio: - (Direct failed)@.")
    queries

let fig7 ~scale () =
  let n = int_of_float (float_of_int galaxy_base *. scale) in
  let rel = Datagen.Galaxy.generate ~seed:1 n in
  tau_sweep ~label:"Figure 7 (Galaxy)" ~dataset:`Galaxy ~fraction:0.3 rel
    (Datagen.Workload.galaxy_queries rel)

let fig8 ~scale () =
  let n = int_of_float (float_of_int tpch_base *. scale) in
  let rel = Datagen.Tpch.generate ~seed:2 n in
  tau_sweep ~label:"Figure 8 (TPC-H)" ~dataset:`Tpch ~fraction:1.0 rel
    (Datagen.Workload.tpch_queries rel)

(* ------------------------------------------------------------------ *)
(* Figure 9: partitioning coverage                                    *)
(* ------------------------------------------------------------------ *)

let coverage_sweep ~label ~dataset ~numeric_attrs rel queries =
  Format.printf
    "@.== %s: partitioning coverage sweep (tau=10%%, no radius) ==@." label;
  Format.printf
    "   coverage = |partitioning attrs| / |query attrs|; time ratio is \
     relative to coverage 1@.";
  (* bucket -> (time ratio list, absolute time list) *)
  let buckets : (float, float list ref * float list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let record cov tr abs_t =
    let trs, ats =
      match Hashtbl.find_opt buckets cov with
      | Some x -> x
      | None ->
        let x = (ref [], ref []) in
        Hashtbl.add buckets cov x;
        x
    in
    Option.iter (fun t -> trs := t :: !trs) tr;
    ats := abs_t :: !ats
  in
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let qrel = Datagen.Workload.query_relation ~dataset rel d in
      let n = Relalg.Relation.cardinality qrel in
      let tau = max 1 (n / 10) in
      let spec = Datagen.Workload.compile qrel d in
      let k = List.length d.attrs in
      let extras =
        List.filter (fun a -> not (List.mem a d.attrs)) numeric_attrs
      in
      let attr_sets =
        (* proper subsets, the exact set, and growing supersets *)
        List.init (k - 1) (fun i ->
            (List.filteri (fun j _ -> j <= i) d.attrs,
             float_of_int (i + 1) /. float_of_int k))
        @ [ (d.attrs, 1.) ]
        @ List.init (List.length extras) (fun i ->
              ( d.attrs @ List.filteri (fun j _ -> j <= i) extras,
                float_of_int (k + i + 1) /. float_of_int k ))
      in
      let base_time = ref None in
      List.iter
        (fun (attrs, cov) ->
          let part = Pkg.Partition.create ~tau ~attrs qrel in
          let rs, ts =
            time (fun () ->
                Pkg.Sketch_refine.run ~options:sr_options spec qrel part)
          in
          (match rs.Pkg.Eval.status with
          | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ ->
            if cov = 1. then base_time := Some ts
          | _ -> ());
          match !base_time, rs.Pkg.Eval.status with
          | Some bt, (Pkg.Eval.Optimal | Pkg.Eval.Feasible _) ->
            (* ratios over millisecond baselines are noise; keep the
               absolute time in any case *)
            let ratio = if bt >= 0.02 then Some (ts /. bt) else None in
            record cov ratio ts
          | _ -> ())
        (* evaluate coverage 1 first so the base time exists *)
        (List.stable_sort
           (fun (_, c1) (_, c2) ->
             compare (Float.abs (c1 -. 1.)) (Float.abs (c2 -. 1.)))
           attr_sets))
    queries;
  let rows =
    Hashtbl.fold (fun cov (trs, ats) acc -> (cov, !trs, !ats) :: acc) buckets []
    |> List.sort compare
  in
  Format.printf "   coverage   mean time ratio   mean time(s)   runs@.";
  List.iter
    (fun (cov, trs, ats) ->
      let tr_text =
        match mean_median trs with
        | Some (mean, _) -> Printf.sprintf "%10.2f" mean
        | None -> Printf.sprintf "%10s" "-"
      in
      match mean_median ats with
      | Some (mean_t, _) ->
        Format.printf "   %6.2f     %s   %10.3f     %d@." cov tr_text mean_t
          (List.length ats)
      | None -> ())
    rows

let fig9 ~scale () =
  let gn = int_of_float (float_of_int galaxy_base *. scale *. 0.5) in
  let g = Datagen.Galaxy.generate ~seed:1 gn in
  coverage_sweep ~label:"Figure 9 (Galaxy)" ~dataset:`Galaxy
    ~numeric_attrs:Datagen.Galaxy.numeric_attrs g
    (Datagen.Workload.galaxy_queries g);
  let tn = int_of_float (float_of_int tpch_base *. scale *. 0.5) in
  let t = Datagen.Tpch.generate ~seed:2 tn in
  coverage_sweep ~label:"Figure 9 (TPC-H)" ~dataset:`Tpch
    ~numeric_attrs:Datagen.Tpch.numeric_attrs t
    (Datagen.Workload.tpch_queries t)

(* ------------------------------------------------------------------ *)
(* Radius-limited partitioning (Section 5.2.1's Q2 note)              *)
(* ------------------------------------------------------------------ *)

let radius ~scale () =
  Format.printf
    "@.== Radius-limited partitioning: TPC-H Q2 with epsilon = 1.0 (Section \
     5.2.1) ==@.";
  let n = int_of_float (float_of_int tpch_base *. scale *. 0.4) in
  let rel = Datagen.Tpch.generate ~seed:2 n in
  let queries = Datagen.Workload.tpch_queries rel in
  let d = List.nth queries 1 (* Q2, the minimization query *) in
  let qrel = Datagen.Workload.query_relation ~dataset:`Tpch rel d in
  let nq = Relalg.Relation.cardinality qrel in
  let spec = Datagen.Workload.compile qrel d in
  let rd, td = time (fun () -> Pkg.Direct.run ~limits:bench_limits spec qrel) in
  Format.printf "  direct: %a (%.3fs)@." Pkg.Eval.pp_status rd.Pkg.Eval.status
    td;
  let run_with name radius_spec =
    let part, pt =
      time (fun () ->
          Pkg.Partition.create ?radius:radius_spec ~tau:(max 1 (nq / 10))
            ~attrs:d.attrs qrel)
    in
    let rs, ts =
      time (fun () -> Pkg.Sketch_refine.run ~options:sr_options spec qrel part)
    in
    let r =
      ratio ~maximize:d.maximize
        ~direct:(direct_cell rd rd.Pkg.Eval.objective |> Option.join)
        ~sr:(status_cell rs rs.Pkg.Eval.objective |> Option.join)
    in
    Format.printf
      "  %-22s %5d groups (partitioned in %.2fs)  time %a  ratio %s@." name
      (Pkg.Partition.num_groups part)
      pt pp_time (status_cell rs ts)
      (match r with Some r -> Printf.sprintf "%.3f" r | None -> "-")
  in
  run_with "no radius" None;
  run_with "theorem radius (e=1)"
    (Some (Pkg.Partition.Theorem { epsilon = 1.0; maximize = false }))

(* ------------------------------------------------------------------ *)
(* Ablations: design choices called out in DESIGN.md                  *)
(* ------------------------------------------------------------------ *)

let ablation ~scale () =
  Format.printf "@.== Ablations ==@.";
  let n = max 2000 (int_of_float (float_of_int galaxy_base *. scale *. 0.5)) in
  let rel = Datagen.Galaxy.generate ~seed:1 n in
  let queries = Datagen.Workload.galaxy_queries rel in
  let d = List.hd queries (* Q1 *) in
  let spec = Datagen.Workload.compile rel d in
  let tau = max 1 (n / 10) in
  let attrs = d.Datagen.Workload.attrs in
  let rd = Pkg.Direct.run ~limits:bench_limits spec rel in
  let sr_with part =
    time (fun () -> Pkg.Sketch_refine.run ~options:sr_options spec rel part)
  in
  let report name build =
    let part, pt = time build in
    let rs, ts = sr_with part in
    let r =
      ratio ~maximize:d.Datagen.Workload.maximize
        ~direct:(direct_cell rd rd.Pkg.Eval.objective |> Option.join)
        ~sr:(status_cell rs rs.Pkg.Eval.objective |> Option.join)
    in
    Format.printf "  %-28s %4d groups  partition %6.3fs  sr %a  ratio %s@."
      name
      (Pkg.Partition.num_groups part)
      pt pp_time (status_cell rs ts)
      (match r with Some r -> Printf.sprintf "%.2f" r | None -> "-")
  in
  Format.printf "@.-- partitioner choice (Galaxy Q1, n=%d, tau=%d) --@." n tau;
  report "quad-tree (static)" (fun () ->
      Pkg.Partition.create ~tau ~attrs rel);
  report "k-means (+ tau chunking)" (fun () ->
      Pkg.Kmeans.create ~k:(max 2 (n / tau)) ~tau ~attrs rel);
  let tree = ref None in
  report "dynamic quad-tree cut" (fun () ->
      let t = Pkg.Quad_tree.build ~leaf_size:(max 1 (tau / 4)) ~attrs rel in
      tree := Some t;
      Pkg.Quad_tree.cut ~tau t rel);
  Format.printf "@.-- parallel refine (Section 4.5, optimistic + repair) --@.";
  let part = Pkg.Partition.create ~tau ~attrs rel in
  let rs_seq, ts_seq = sr_with part in
  let rs_par, ts_par =
    time (fun () -> Pkg.Parallel.run ~options:sr_options spec rel part)
  in
  Format.printf "  sequential: %a s (%a)@." pp_time (status_cell rs_seq ts_seq)
    Pkg.Eval.pp_status rs_seq.Pkg.Eval.status;
  Format.printf "  parallel:   %a s (%a)@." pp_time (status_cell rs_par ts_par)
    Pkg.Eval.pp_status rs_par.Pkg.Eval.status;
  Format.printf "@.-- split fan-out (2^d sub-quadrants per violating group) --@.";
  List.iter
    (fun dims ->
      report
        (Printf.sprintf "max_fanout_dims = %d" dims)
        (fun () -> Pkg.Partition.create ~max_fanout_dims:dims ~tau ~attrs rel))
    [ 1; 2; 3 ];
  Format.printf
    "@.-- root cover cuts in branch-and-bound (Galaxy Q7-style ILP) --@.";
  let d7 = List.nth queries 6 in
  let spec7 = Datagen.Workload.compile rel d7 in
  let candidates = Paql.Translate.base_candidates spec7 rel in
  let problem = Paql.Translate.to_problem spec7 rel ~candidates in
  List.iter
    (fun rounds ->
      let r, t =
        time (fun () ->
            Ilp.Branch_bound.solve ~limits:bench_limits ~cut_rounds:rounds
              problem)
      in
      let stats = Ilp.Branch_bound.stats_of r in
      Format.printf "  cut_rounds = %d: %7.3fs, %6d nodes@." rounds t
        stats.Ilp.Branch_bound.nodes)
    [ 0; 4 ];
  Format.printf "@.-- presolve on the workload ILP (base predicates baked) --@.";
  let r, t = time (fun () -> Lp.Presolve.run problem) in
  (match r with
  | Lp.Presolve.Reduced red ->
    Format.printf
      "  %d vars / %d rows -> %d vars / %d rows in %.3fs@."
      (Lp.Problem.nvars problem) (Lp.Problem.nrows problem)
      (Lp.Problem.nvars red.Lp.Presolve.problem)
      (Lp.Problem.nrows red.Lp.Presolve.problem)
      t
  | Lp.Presolve.Proven_infeasible msg ->
    Format.printf "  presolve proved infeasibility: %s@." msg)

(* ------------------------------------------------------------------ *)
(* Columnar scan layer microbenchmarks                                *)
(* ------------------------------------------------------------------ *)

(* Best-of-k wall time: small enough workloads that min beats mean as a
   noise filter. *)
let best_of k f =
  let best = ref infinity in
  for _ = 1 to k do
    let _, t = time f in
    if t < !best then best := t
  done;
  !best

(* The seed's row-path selection: interpret the predicate AST against a
   boxed tuple per row. Kept here verbatim as the baseline the
   vectorized path is measured against. *)
let interp_select_indices rel pred =
  let schema = Relalg.Relation.schema rel in
  let out = ref [] in
  for i = Relalg.Relation.cardinality rel - 1 downto 0 do
    if Relalg.Expr.eval_bool schema (Relalg.Relation.row rel i) pred then
      out := i :: !out
  done;
  Array.of_list !out

(* The seed's partitioner column extraction: one fresh boxed-value
   traversal per attribute, then a NaN-to-zero map. *)
let boxed_numeric_columns rel attrs =
  let schema = Relalg.Relation.schema rel in
  let n = Relalg.Relation.cardinality rel in
  List.map
    (fun a ->
      let i = Relalg.Schema.index_of schema a in
      Array.init n (fun row ->
          match Relalg.Value.to_float_opt
                  (Relalg.Tuple.get (Relalg.Relation.row rel row) i)
          with
          | Some v -> v
          | None -> 0.))
    attrs
  |> Array.of_list

let scan_json : (string * string) list ref = ref []

let scan ~scale () =
  let n = max 2_000 (int_of_float (60_000. *. scale)) in
  let seed = 1 in
  Format.printf
    "@.== Columnar scan layer: row path vs vectorized (Galaxy n=%d, seed %d) \
     ==@."
    n seed;
  let rel = Datagen.Galaxy.generate ~seed n in
  let v f = Relalg.Expr.Const (Relalg.Value.Float f) in
  let pred =
    Relalg.Expr.(
      And
        ( Between (Attr "redshift", v 0.02, v 0.35),
          Or (Cmp (Gt, Attr "petro_rad", v 1.2), Cmp (Le, Attr "u", v 18.)) ))
  in
  let reps = 7 in
  (* selection *)
  let matches = Array.length (interp_select_indices rel pred) in
  let t_interp = best_of reps (fun () -> interp_select_indices rel pred) in
  let t_vec =
    best_of reps (fun () -> Relalg.Scan.select_indices ~workers:1 rel pred)
  in
  assert (Array.length (Relalg.Scan.select_indices rel pred) = matches);
  let sel_speedup = t_interp /. t_vec in
  Format.printf
    "  selection (%d/%d rows):      interpreted %8.4fs   vectorized %8.4fs   \
     speedup %.1fx@."
    matches n t_interp t_vec sel_speedup;
  (* aggregation *)
  let agg = Relalg.Aggregate.Sum "petro_rad" in
  let all_rows () =
    Array.to_seq (Array.init n (Relalg.Relation.row rel))
  in
  let t_agg_interp =
    best_of reps (fun () ->
        Relalg.Aggregate.over_rows (Relalg.Relation.schema rel) (all_rows ())
          agg)
  in
  let t_agg_vec =
    best_of reps (fun () -> Relalg.Aggregate.over ~workers:1 rel agg)
  in
  let agg_speedup = t_agg_interp /. t_agg_vec in
  Format.printf
    "  aggregate SUM(petro_rad):    interpreted %8.4fs   vectorized %8.4fs   \
     speedup %.1fx@."
    t_agg_interp t_agg_vec agg_speedup;
  (* partitioner column extraction *)
  let attrs = [ "ra"; "dec"; "redshift" ] in
  let t_boxed = best_of reps (fun () -> boxed_numeric_columns rel attrs) in
  (* cache hits are far below timer resolution: time an inner loop *)
  let cached_iters = 1000 in
  let t_cached =
    best_of reps (fun () ->
        for _ = 1 to cached_iters do
          ignore (Pkg.Partition.numeric_columns rel attrs)
        done)
    /. float_of_int cached_iters
  in
  let ext_speedup = t_boxed /. t_cached in
  Format.printf
    "  column extraction (3 attrs): boxed       %8.4fs   cached     %8.4fs   \
     speedup %.1fx@."
    t_boxed t_cached ext_speedup;
  let tau = max 1 (n / 10) in
  let _, t_part = time (fun () -> Pkg.Partition.create ~tau ~attrs rel) in
  Format.printf "  Partition.create (tau=%d):  %8.4fs@." tau t_part;
  (* end-to-end SketchRefine on Galaxy Q1 *)
  let d = List.hd (Datagen.Workload.galaxy_queries rel) in
  let spec = Datagen.Workload.compile rel d in
  let wattrs = d.Datagen.Workload.attrs in
  let part = Pkg.Partition.create ~tau ~attrs:wattrs rel in
  let rs, t_sr =
    time (fun () -> Pkg.Sketch_refine.run ~options:sr_options spec rel part)
  in
  Format.printf "  SketchRefine %s end-to-end: %8.4fs (%a)@."
    d.Datagen.Workload.name t_sr Pkg.Eval.pp_status rs.Pkg.Eval.status;
  let num v = Printf.sprintf "%.6f" v in
  scan_json :=
    [
      ("scale", Printf.sprintf "%g" scale);
      ("seed", string_of_int seed);
      ("rows", string_of_int n);
      ("selection_matches", string_of_int matches);
      ("selection_interpreted_s", num t_interp);
      ("selection_vectorized_s", num t_vec);
      ("selection_speedup", Printf.sprintf "%.2f" sel_speedup);
      ("aggregate_interpreted_s", num t_agg_interp);
      ("aggregate_vectorized_s", num t_agg_vec);
      ("aggregate_speedup", Printf.sprintf "%.2f" agg_speedup);
      ("extract_boxed_s", num t_boxed);
      ("extract_cached_s", num t_cached);
      ("extract_speedup", Printf.sprintf "%.2f" ext_speedup);
      ("partition_create_s", num t_part);
      ("sketchrefine_query", Printf.sprintf "%S" d.Datagen.Workload.name);
      ("sketchrefine_wall_s", num t_sr);
      ( "sketchrefine_status",
        Printf.sprintf "%S"
          (Format.asprintf "%a" Pkg.Eval.pp_status rs.Pkg.Eval.status) );
    ]

let write_json path kvs =
  let oc = open_out path in
  output_string oc "{\n";
  let rec emit = function
    | [] -> ()
    | (k, v) :: rest ->
      Printf.fprintf oc "  %S: %s%s\n" k v (if rest = [] then "" else ",");
      emit rest
  in
  emit kvs;
  output_string oc "}\n";
  close_out oc;
  Format.printf "  wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Resilience: wall-time overshoot vs the global budget               *)
(* ------------------------------------------------------------------ *)

let robust_json : (string * string) list ref = ref []

(* How far past its wall-clock budget an evaluation runs, with the
   legacy between-steps deadline polling vs full deadline propagation
   into every ILP call (and the Phase-1 workers). The legacy mode's
   overshoot is bounded only by the static per-ILP limit; propagation
   keeps it within scheduling noise of the budget. *)
let robust ~scale () =
  let budget = 0.5 in
  let n = max 4_000 (int_of_float (float_of_int galaxy_base *. scale)) in
  Format.printf
    "@.== Resilience: deadline propagation, budget %.2fs (Galaxy Q7, n=%d) \
     ==@."
    budget n;
  let rel = Datagen.Galaxy.generate ~seed:1 n in
  let queries = Datagen.Workload.galaxy_queries rel in
  let d = List.nth queries 6 (* Q7: the hardest Galaxy query *) in
  let qrel = Datagen.Workload.query_relation ~dataset:`Galaxy rel d in
  let spec = Datagen.Workload.compile qrel d in
  let part =
    Pkg.Partition.create ~tau:(max 1 (Relalg.Relation.cardinality qrel / 10))
      ~attrs:d.Datagen.Workload.attrs qrel
  in
  let options propagate =
    {
      Pkg.Sketch_refine.default_options with
      (* generous static per-ILP cap: without propagation a single ILP
         can burn all of it *)
      limits = { Ilp.Branch_bound.default_limits with max_seconds = 10. };
      max_seconds = budget;
      propagate_deadline = propagate;
    }
  in
  Format.printf "   driver        propagate   wall(s)  overshoot  status@.";
  let one name run propagate =
    let r, t = time (fun () -> run (options propagate)) in
    let overshoot = t /. budget in
    Format.printf "   %-12s  %-9b %8.3f   %6.2fx   %a@." name propagate t
      overshoot Pkg.Eval.pp_status r.Pkg.Eval.status;
    let key suffix =
      Printf.sprintf "%s_%s_%s" name
        (if propagate then "propagated" else "legacy")
        suffix
    in
    robust_json :=
      !robust_json
      @ [
          (key "wall_s", Printf.sprintf "%.6f" t);
          (key "overshoot", Printf.sprintf "%.3f" overshoot);
          ( key "status",
            Printf.sprintf "%S"
              (Format.asprintf "%a" Pkg.Eval.pp_status r.Pkg.Eval.status) );
        ]
  in
  robust_json :=
    [
      ("budget_s", Printf.sprintf "%.3f" budget);
      ("rows", string_of_int (Relalg.Relation.cardinality qrel));
      ("query", Printf.sprintf "%S" d.Datagen.Workload.name);
    ];
  let sr o = Pkg.Sketch_refine.run ~options:o spec qrel part in
  let par o = Pkg.Parallel.run ~options:o spec qrel part in
  one "sketchrefine" sr false;
  one "sketchrefine" sr true;
  one "parallel" par false;
  one "parallel" par true

(* ------------------------------------------------------------------ *)
(* Store: binary segments, partition catalog, incremental maintenance *)
(* ------------------------------------------------------------------ *)

let store_json : (string * string) list ref = ref []

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun f -> remove_tree (Filename.concat path f))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* The three store claims, measured: (1) a binary segment loads far
   faster than re-parsing the CSV it was built from; (2) a warm run —
   segment + catalog hit — beats the cold run end to end; (3) an
   append that overflows one group re-splits only that group's
   subtree, far cheaper than repartitioning from scratch. *)
let store_bench ~scale () =
  let n = max 5_000 (int_of_float (float_of_int galaxy_base *. scale)) in
  Format.printf
    "@.== Store: binary segments & partition catalog (Galaxy n=%d) ==@." n;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkgq-bench-store-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then remove_tree dir;
  let cat = Store.Catalog.open_dir dir in
  let rel = Datagen.Galaxy.generate ~seed:1 n in
  let csv_path = Filename.concat dir "galaxy.csv" in
  Relalg.Csv.write csv_path rel;
  let d = List.hd (Datagen.Workload.galaxy_queries rel) in
  let attrs = d.Datagen.Workload.attrs in
  let tau = max 1 (n / 10) in
  (* -- cold end to end: parse CSV, partition, query -- *)
  let (report_cold, part_cold), t_cold =
    time (fun () ->
        let rel = Relalg.Csv.read csv_path in
        let part = Pkg.Partition.create ~tau ~attrs rel in
        let spec = Datagen.Workload.compile rel d in
        (Pkg.Sketch_refine.run ~options:sr_options spec rel part, part))
  in
  (* populate the store like a first --store run would *)
  let _, fp = Store.Catalog.load_table cat csv_path in
  let key = { Store.Catalog.fingerprint = fp; attrs; tau;
              radius = Pkg.Partition.No_radius; level = None } in
  Store.Catalog.store cat key part_cold;
  (* -- load path: CSV parse vs binary segment -- *)
  let reps = 5 in
  let seg_path =
    Filename.concat (Filename.concat dir "tables") (fp ^ ".seg")
  in
  let t_csv = best_of reps (fun () -> Relalg.Csv.read csv_path) in
  let t_seg = best_of reps (fun () -> Store.Segment.read seg_path) in
  let load_speedup = t_csv /. t_seg in
  Format.printf
    "  table load:     csv %8.4fs   segment %8.4fs   speedup %.1fx@." t_csv
    t_seg load_speedup;
  (* -- warm end to end: segment load, catalog hit, query -- *)
  let report_warm, t_warm =
    time (fun () ->
        let rel, fp = Store.Catalog.load_table cat csv_path in
        let key = { key with Store.Catalog.fingerprint = fp } in
        let part, status =
          Store.Catalog.lookup_or_build cat key ~build:(fun () ->
              Pkg.Partition.create ~tau ~attrs rel)
        in
        assert (status = `Hit);
        let spec = Datagen.Workload.compile rel d in
        Pkg.Sketch_refine.run ~options:sr_options spec rel part)
  in
  Format.printf
    "  %s end-to-end:  cold %8.4fs (%a)   warm %8.4fs (%a)   warm/cold %.2f@."
    d.Datagen.Workload.name t_cold Pkg.Eval.pp_status
    report_cold.Pkg.Eval.status t_warm Pkg.Eval.pp_status
    report_warm.Pkg.Eval.status (t_warm /. t_cold);
  (* -- incremental maintenance: overflow one group -- *)
  let p = part_cold in
  let gid = ref 0 in
  Array.iteri
    (fun i (g : Pkg.Partition.group) ->
      if
        Array.length g.Pkg.Partition.members
        > Array.length p.Pkg.Partition.groups.(!gid).Pkg.Partition.members
      then gid := i)
    p.Pkg.Partition.groups;
  let g = p.Pkg.Partition.groups.(!gid) in
  let size = Array.length g.Pkg.Partition.members in
  let copies = (tau / max 1 size) + 1 in
  let extra_ids =
    Array.concat (List.init copies (fun _ -> g.Pkg.Partition.members))
  in
  let extra = Relalg.Relation.take rel extra_ids in
  let (_, _, stats), t_append =
    time (fun () ->
        Store.Maintain.append ~tau ~radius:Pkg.Partition.No_radius p rel extra)
  in
  let _, t_scratch =
    time (fun () ->
        let rows =
          Array.init
            (n + Array.length extra_ids)
            (fun i ->
              if i < n then Relalg.Relation.row rel i
              else Relalg.Relation.row extra (i - n))
        in
        let combined =
          Relalg.Relation.of_array (Relalg.Relation.schema rel) rows
        in
        Pkg.Partition.create ~tau ~attrs combined)
  in
  Format.printf
    "  append %d rows: incremental %8.4fs (%a)   from-scratch %8.4fs@."
    (Array.length extra_ids) t_append Store.Maintain.pp_stats stats t_scratch;
  remove_tree dir;
  let num v = Printf.sprintf "%.6f" v in
  store_json :=
    [
      ("scale", Printf.sprintf "%g" scale);
      ("rows", string_of_int n);
      ("csv_load_s", num t_csv);
      ("segment_load_s", num t_seg);
      ("load_speedup", Printf.sprintf "%.2f" load_speedup);
      ("cold_e2e_s", num t_cold);
      ("warm_e2e_s", num t_warm);
      ("warm_over_cold", Printf.sprintf "%.3f" (t_warm /. t_cold));
      ("append_rows", string_of_int (Array.length extra_ids));
      ("append_incremental_s", num t_append);
      ("append_from_scratch_s", num t_scratch);
      ("groups_before", string_of_int stats.Store.Maintain.groups_before);
      ("groups_after", string_of_int stats.Store.Maintain.groups_after);
      ("groups_touched", string_of_int stats.Store.Maintain.groups_touched);
      ("groups_resplit", string_of_int stats.Store.Maintain.groups_resplit);
    ]

(* ------------------------------------------------------------------ *)
(* Service layer: throughput, latency, caches, admission control      *)
(* ------------------------------------------------------------------ *)

let serve_json : (string * string) list ref = ref []

let percentile xs q =
  match xs with
  | [] -> nan
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

(* Play [stream] against the server on [port] from [clients] concurrent
   connections (round-robin split), one request at a time per
   connection. Returns (per-request latencies, total wall, errors). *)
let play_stream ~port ~clients stream =
  let stream = Array.of_list stream in
  let lats = Array.make (Array.length stream) 0. in
  let errors = Atomic.make 0 in
  let run ci =
    let c = Service.Client.connect ~host:"127.0.0.1" ~port () in
    Fun.protect
      ~finally:(fun () -> Service.Client.close c)
      (fun () ->
        Array.iteri
          (fun i q ->
            if i mod clients = ci then begin
              let t0 = Unix.gettimeofday () in
              (match Service.Client.query c q with
              | Service.Protocol.Resp_ok _ -> ()
              | Service.Protocol.Resp_err _ -> Atomic.incr errors);
              lats.(i) <- Unix.gettimeofday () -. t0
            end)
          stream)
  in
  let t0 = Unix.gettimeofday () in
  let ths = List.init clients (fun ci -> Thread.create run ci) in
  List.iter Thread.join ths;
  (Array.to_list lats, Unix.gettimeofday () -. t0, Atomic.get errors)

(* The service-layer claims, measured end to end over TCP: a repeated
   query answered from the result cache beats re-solving by >=3x, and
   under overload admission control sheds with a typed [rejected]
   answer instead of queueing without bound. Both phases play the same
   repeat stream, so cache-off vs cache-on is the only variable. *)
let serve ~scale () =
  let n = max 1_500 (int_of_float (4_000. *. scale)) in
  let clients = 8 in
  let distinct = 6 in
  let repeats = max 12 (int_of_float (48. *. scale)) in
  Format.printf
    "@.== Service layer: repeated-query throughput & admission control \
     (Galaxy n=%d, %d clients) ==@."
    n clients;
  let rel = Datagen.Galaxy.generate ~seed:5 n in
  let defs =
    Datagen.Workload.mixed ~seed:11 ~repeat_rate:0. ~dataset:`Galaxy
      ~n:distinct rel
  in
  let qarr =
    Array.of_list (List.map (fun (d : Datagen.Workload.def) -> d.paql) defs)
  in
  let warm = Array.to_list qarr in
  let repeat_stream =
    List.init repeats (fun i -> qarr.(i mod Array.length qarr))
  in
  let cfg ~result_cache ~workers ~queue =
    {
      (Service.Server.default_config ()) with
      Service.Server.workers;
      queue;
      result_cache;
      plan_cache = 64;
      method_ = Service.Server.Direct;
      limits = bench_limits;
      request_seconds = 300.;
      log_every = 0.;
    }
  in
  let with_server cfg f =
    let srv = Service.Server.start cfg rel in
    Fun.protect ~finally:(fun () -> Service.Server.stop srv) (fun () -> f srv)
  in
  (* -- repeated-query throughput: result cache off vs on -- *)
  let phase label result_cache =
    with_server (cfg ~result_cache ~workers:4 ~queue:64) (fun srv ->
        let port = Service.Server.port srv in
        (* untimed warm-up: populates the plan cache on both servers and
           the result cache on the cache-on one, so the timed stream
           compares pure re-solve against pure cache hit *)
        ignore (play_stream ~port ~clients:1 warm);
        let lats, wall, errs = play_stream ~port ~clients repeat_stream in
        let qps = float_of_int repeats /. wall in
        let p50 = percentile lats 0.5 and p99 = percentile lats 0.99 in
        let hits =
          Service.Metrics.get (Service.Server.metrics srv) "result_hits"
        in
        Format.printf
          "  %-16s %3d req  wall %7.3fs  %8.1f q/s  p50 %7.2fms  p99 \
           %7.2fms  solves %d  hits %d%s@."
          label repeats wall qps (p50 *. 1e3) (p99 *. 1e3)
          (Service.Server.solve_count srv)
          hits
          (if errs > 0 then Printf.sprintf "  (%d errors)" errs else "");
        (wall, qps, p50, p99, errs))
  in
  let off_wall, off_qps, off_p50, off_p99, off_errs =
    phase "cache off" 0
  in
  let on_wall, on_qps, on_p50, on_p99, on_errs = phase "cache on" 256 in
  let speedup = on_qps /. off_qps in
  Format.printf "  cached repeated-query throughput: %.1fx cache-off%s@."
    speedup
    (if speedup >= 3. then "" else "  (below the 3x target)");
  (* -- overload: more simultaneous requests than workers + queue -- *)
  let overload_clients = 16 in
  let shed, rejected, answered =
    with_server (cfg ~result_cache:0 ~workers:1 ~queue:2) (fun srv ->
        let port = Service.Server.port srv in
        let ready = Atomic.make 0 in
        let go = Atomic.make false in
        let rejected = Atomic.make 0 in
        let answered = Atomic.make 0 in
        let one i =
          let c = Service.Client.connect ~host:"127.0.0.1" ~port () in
          Fun.protect
            ~finally:(fun () -> Service.Client.close c)
            (fun () ->
              Atomic.incr ready;
              while not (Atomic.get go) do
                Thread.yield ()
              done;
              (match
                 Service.Client.query c qarr.(i mod Array.length qarr)
               with
              | Service.Protocol.Resp_err (Service.Protocol.Rejected, _) ->
                Atomic.incr rejected
              | _ -> ());
              Atomic.incr answered)
        in
        let ths = List.init overload_clients (fun i -> Thread.create one i) in
        while Atomic.get ready < overload_clients do
          Thread.yield ()
        done;
        Atomic.set go true;
        List.iter Thread.join ths;
        ( Service.Metrics.get (Service.Server.metrics srv) "shed",
          Atomic.get rejected,
          Atomic.get answered ))
  in
  Format.printf
    "  overload (%d simultaneous, workers=1 queue=2): shed %d, rejected \
     replies %d, answered %d/%d@."
    overload_clients shed rejected answered overload_clients;
  let num v = Printf.sprintf "%.6f" v in
  serve_json :=
    [
      ("scale", Printf.sprintf "%g" scale);
      ("rows", string_of_int n);
      ("clients", string_of_int clients);
      ("distinct_queries", string_of_int distinct);
      ("repeat_requests", string_of_int repeats);
      ("cacheoff_wall_s", num off_wall);
      ("cacheoff_qps", Printf.sprintf "%.2f" off_qps);
      ("cacheoff_p50_ms", Printf.sprintf "%.3f" (off_p50 *. 1e3));
      ("cacheoff_p99_ms", Printf.sprintf "%.3f" (off_p99 *. 1e3));
      ("cacheoff_errors", string_of_int off_errs);
      ("cacheon_wall_s", num on_wall);
      ("cacheon_qps", Printf.sprintf "%.2f" on_qps);
      ("cacheon_p50_ms", Printf.sprintf "%.3f" (on_p50 *. 1e3));
      ("cacheon_p99_ms", Printf.sprintf "%.3f" (on_p99 *. 1e3));
      ("cacheon_errors", string_of_int on_errs);
      ("cached_speedup", Printf.sprintf "%.2f" speedup);
      ("overload_clients", string_of_int overload_clients);
      ("overload_shed", string_of_int shed);
      ("overload_rejected_replies", string_of_int rejected);
      ("overload_answered", string_of_int answered);
    ]

(* ------------------------------------------------------------------ *)
(* Durability: chaos crash matrix + recovery time + WAL sync overhead *)
(* ------------------------------------------------------------------ *)

let durability_json : (string * string) list ref = ref []

(* The crash matrix kills a real [pkgq_server] child at every injected
   point — mid-frame (torn tail), post-fsync/pre-ack (in-doubt), and
   post-ack (external SIGKILL), with and without checkpoints in the
   window — restarts it, and verifies the recovered table is
   byte-identical to a reference prefix: zero acknowledged-write loss,
   zero phantoms. Then the WAL's fsync cost is measured directly,
   Always vs Never, records/sec. *)
let durability ~scale () =
  let module Ch = Service.Chaos in
  let exe =
    let p =
      match Sys.getenv_opt "PKGQ_SERVER_EXE" with
      | Some p -> p
      | None ->
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/pkgq_server.exe"
    in
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  if not (Sys.file_exists exe) then begin
    Format.printf
      "@.== Durability: skipped (no server binary at %s; set \
       PKGQ_SERVER_EXE) ==@."
      exe;
    durability_json := [ ("skipped", "true") ]
  end
  else begin
    let n = max 500 (int_of_float (float_of_int galaxy_base *. scale *. 0.2)) in
    let batches_n = 10 in
    let batch_rows = max 5 (int_of_float (40. *. scale)) in
    Format.printf
      "@.== Durability: chaos crash matrix (Galaxy n=%d, %d append batches \
       of %d rows) ==@."
      n batches_n batch_rows;
    let base = Datagen.Galaxy.generate ~seed:21 n in
    let batches =
      List.init batches_n (fun k ->
          Datagen.Workload.append_batch ~dataset:`Galaxy ~rows:batch_rows
            ~seed:(3000 + k))
    in
    let scratch =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pkgq-bench-dur-%d" (Unix.getpid ()))
    in
    (* the matrix: torn mid-frame, durable-but-unacked, and post-ack
       kills; a second block replays a slice of it with checkpointing
       active so recovery also exercises checkpoint + partial log *)
    let points =
      List.map (fun k -> (Printf.sprintf "torn%d" k, Ch.Torn k, None))
        [ 1; 2; 3; 4; 5; 6; 7 ]
      @ List.map (fun k -> (Printf.sprintf "crash%d" k, Ch.Crash k, None))
          [ 1; 2; 3; 4; 5; 6; 7 ]
      @ List.map
          (fun k -> (Printf.sprintf "kill%d" k, Ch.Kill_after k, None))
          [ 1; 4; 7; 10 ]
      @ [
          ("torn5-ckpt", Ch.Torn 5, Some 3);
          ("crash5-ckpt", Ch.Crash 5, Some 3);
          ("kill10-ckpt", Ch.Kill_after 10, Some 3);
        ]
    in
    (* never-crashed control: the live server's bytes equal the local
       reference fold *)
    let ref_run =
      Ch.run_reference ~exe ~dir:(Filename.concat scratch "ref") ~base
        ~batches ()
    in
    let ref_fp, _ = ref_run.Ch.refs.(Array.length ref_run.Ch.refs - 1) in
    let reference_equal = ref_run.Ch.recovered_fp = ref_fp in
    Format.printf "  reference run: %d appends, live state %s reference@."
      ref_run.Ch.acked
      (if reference_equal then "==" else "<> (VIOLATION)");
    let violations = ref 0 in
    let recovery_times = ref [] in
    let total, t_matrix =
      time (fun () ->
          List.iter
            (fun (name, point, checkpoint) ->
              let r =
                Ch.run_crash ~exe
                  ~dir:(Filename.concat scratch name)
                  ~base ~batches ~point ?checkpoint ()
              in
              recovery_times := r.Ch.recovery_seconds :: !recovery_times;
              match Ch.check r with
              | Ok i ->
                Format.printf
                  "  %-12s acked %2d, recovered prefix %2d (%d rows) in \
                   %.3fs  ok@."
                  name r.Ch.acked i r.Ch.recovered_rows r.Ch.recovery_seconds
              | Error msg ->
                incr violations;
                Format.printf "  %-12s VIOLATION: %s@." name msg)
            points;
          List.length points)
    in
    let rec_mean =
      List.fold_left ( +. ) 0. !recovery_times
      /. float_of_int (List.length !recovery_times)
    in
    let rec_max = List.fold_left Float.max 0. !recovery_times in
    Format.printf
      "  %d crash points in %.1fs: %d violation(s); recovery mean %.3fs, \
       max %.3fs@."
      total t_matrix !violations rec_mean rec_max;
    (* WAL sync overhead: seconds per record, fsync-per-commit vs
       leaving flushing to the kernel (PKGQ_WAL_SYNC=off) *)
    let sync_records = max 40 (int_of_float (150. *. scale)) in
    let small = Datagen.Galaxy.generate ~seed:33 8 in
    let time_wal sync =
      let path = Filename.concat scratch "sync-probe.log" in
      if Sys.file_exists path then Sys.remove path;
      let wal, _ = Store.Wal.open_log ~sync path in
      let (), t =
        time (fun () ->
            for _ = 1 to sync_records do
              ignore (Store.Wal.append wal (Store.Wal.Append small))
            done)
      in
      Store.Wal.close wal;
      t /. float_of_int sync_records
    in
    let per_rec_on = time_wal Store.Wal.Always in
    let per_rec_off = time_wal Store.Wal.Never in
    let overhead = per_rec_on /. Float.max 1e-9 per_rec_off in
    Format.printf
      "  wal append: %.0f us/record fsync-on vs %.0f us/record off \
       (overhead %.1fx over %d records)@."
      (per_rec_on *. 1e6) (per_rec_off *. 1e6) overhead sync_records;
    durability_json :=
      [
        ("table_rows", string_of_int n);
        ("append_batches", string_of_int batches_n);
        ("batch_rows", string_of_int batch_rows);
        ("crash_points", string_of_int total);
        ("violations", string_of_int !violations);
        ("reference_equal", if reference_equal then "true" else "false");
        ("recovery_mean_s", Printf.sprintf "%.6f" rec_mean);
        ("recovery_max_s", Printf.sprintf "%.6f" rec_max);
        ("matrix_wall_s", Printf.sprintf "%.3f" t_matrix);
        ("wal_sync_records", string_of_int sync_records);
        ("wal_sync_on_s_per_record", Printf.sprintf "%.6f" per_rec_on);
        ("wal_sync_off_s_per_record", Printf.sprintf "%.6f" per_rec_off);
        ("wal_sync_overhead_x", Printf.sprintf "%.2f" overhead);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Progressive shading: tight constraints, coarse-to-fine vs flat     *)
(* ------------------------------------------------------------------ *)

let progressive_json : (string * string) list ref = ref []

(* The claim progressive shading reproduces (arXiv:2307.02860 §5):
   tight constraints defeat a flat sketch because coarse group means
   smooth away the tail tuples the query needs, while the hierarchy
   buys fine leaves only where the solution lives. The matrix crosses
   three tightness classes with two dataset scales (1x / 10x) on
   heavily concentrated Galaxy data; class budgets are derived from the
   partitionings themselves: [tight] sits between the finest and the
   coarsest representative floor, so the flat sketch is infeasible by
   construction and has to survive on its fallback ladder, while the
   progressive leaf expresses it directly. *)
let progressive_bench ~scale () =
  let attrs = [ "redshift"; "petro_rad" ] in
  let k = 10 in
  let deadline_s = Float.max 5. (30. *. scale) in
  let run_size size_label n =
    let rel = Datagen.Galaxy.generate ~seed:3 ~skew:1.5 n in
    Format.printf
      "@.== Progressive shading: tight-constraint matrix (Galaxy n=%d, \
       skew 1.5, %s) ==@."
      n size_label;
    let flat_tau = max 1 (n / 10) in
    let leaf_tau = max 1 (n / 100) in
    let part, t_flat =
      time (fun () -> Pkg.Partition.create ~tau:flat_tau ~attrs rel)
    in
    let hier, t_hier =
      time (fun () ->
          Pkg.Hierarchy.build ~levels:3 ~leaf_tau ~attrs rel)
    in
    Format.printf
      "   partitioning: flat tau=%d (%d groups, %.3fs)  hierarchy \
       leaf_tau=%d (%s groups, %.3fs)@."
      flat_tau
      (Pkg.Partition.num_groups part)
      t_flat leaf_tau
      (String.concat "/"
         (List.init (Pkg.Hierarchy.num_levels hier) (fun l ->
              string_of_int
                (Pkg.Partition.num_groups (Pkg.Hierarchy.level hier l)))))
      t_hier;
    (* the lowest representative mean at each granularity bounds what a
       sketch ILP can promise for SUM(redshift) over k tuples *)
    let min_rep p =
      let reps = p.Pkg.Partition.reps in
      Array.fold_left Float.min infinity
        (Relalg.Relation.column_float reps "redshift")
    in
    let mn_flat = min_rep part in
    let mn_leaf = min_rep (Pkg.Hierarchy.leaf hier) in
    let classes =
      [
        ("loose", float_of_int k *. mn_flat *. 2.);
        ("medium", float_of_int k *. mn_flat *. 1.05);
        ("tight", float_of_int k *. (mn_leaf +. mn_flat) /. 2.);
      ]
    in
    Format.printf
      "   class     budget    sketchrefine              progressive@.";
    List.iter
      (fun (cname, budget) ->
        let spec =
          Paql.Translate.compile_exn
            (Relalg.Relation.schema rel)
            (Paql.Parser.parse_exn
               (Printf.sprintf
                  "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
                   COUNT(P.*) = %d AND SUM(P.redshift) <= %.6f MAXIMIZE \
                   SUM(P.petro_rad)"
                  k budget))
        in
        let sr_opts =
          {
            Pkg.Sketch_refine.default_options with
            limits = bench_limits;
            max_seconds = deadline_s;
          }
        in
        let rs, ts =
          time (fun () -> Pkg.Sketch_refine.run ~options:sr_opts spec rel part)
        in
        let p_opts =
          {
            Pkg.Progressive.default_options with
            limits = bench_limits;
            max_seconds = deadline_s;
          }
        in
        let (rp, _), tp =
          time (fun () -> Pkg.Progressive.run ~options:p_opts spec rel hier)
        in
        let solved (r : Pkg.Eval.report) =
          match r.Pkg.Eval.status with
          | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> r.Pkg.Eval.package <> None
          | Pkg.Eval.Degraded _ -> r.Pkg.Eval.package <> None
          | Pkg.Eval.Infeasible | Pkg.Eval.Failed _ -> false
        in
        let cell (r : Pkg.Eval.report) =
          Format.asprintf "%a" Pkg.Eval.pp_status r.Pkg.Eval.status
        in
        Format.printf "   %-8s %8.4f  %-16s %6.2fs  %-16s %6.2fs@." cname
          budget (cell rs) ts (cell rp) tp;
        let key s = Printf.sprintf "%s_%s_%s" size_label cname s in
        progressive_json :=
          !progressive_json
          @ [
              (key "budget", Printf.sprintf "%.6f" budget);
              ( key "sketchrefine_status",
                Printf.sprintf "%S"
                  (Format.asprintf "%a" Pkg.Eval.pp_status rs.Pkg.Eval.status)
              );
              (key "sketchrefine_wall_s", Printf.sprintf "%.6f" ts);
              ( key "sketchrefine_overshoot",
                Printf.sprintf "%.3f" (ts /. deadline_s) );
              (key "sketchrefine_solved", string_of_bool (solved rs));
              ( key "progressive_status",
                Printf.sprintf "%S"
                  (Format.asprintf "%a" Pkg.Eval.pp_status rp.Pkg.Eval.status)
              );
              (key "progressive_wall_s", Printf.sprintf "%.6f" tp);
              ( key "progressive_overshoot",
                Printf.sprintf "%.3f" (tp /. deadline_s) );
              (key "progressive_solved", string_of_bool (solved rp));
              ( key "progressive_rescues",
                string_of_bool
                  ((not (solved rs) || ts > deadline_s *. 1.2) && solved rp)
              );
            ])
      classes
  in
  let n1 = max 1_000 (int_of_float (float_of_int galaxy_base *. scale)) in
  progressive_json :=
    [
      ("k", string_of_int k);
      ("deadline_s", Printf.sprintf "%.3f" deadline_s);
      ("skew", "1.5");
    ];
  run_size "x1" n1;
  run_size "x10" (10 * n1)

(* ------------------------------------------------------------------ *)
(* Sharded serving: QPS scaling, failover recovery, chaos matrix      *)
(* ------------------------------------------------------------------ *)

let shard_json : (string * string) list ref = ref []

(* Scatter/gather over real [pkgq_server] fleets: (1) overload QPS at
   1/2/4 shards — the shards carry the refine ILPs, so process-level
   parallelism should show up directly; (2) failover recovery time,
   primary SIGKILLed mid-stream; (3) a kill/stall/fault matrix where
   every point must end in the exact single-node reference package or a
   typed degraded/failed answer within the budget — never a hang, never
   a silently wrong answer. *)
let shard_bench ~scale () =
  let module Ch = Service.Chaos in
  let module Co = Service.Coordinator in
  let exe =
    let p =
      match Sys.getenv_opt "PKGQ_SERVER_EXE" with
      | Some p -> p
      | None ->
        Filename.concat
          (Filename.dirname Sys.executable_name)
          "../bin/pkgq_server.exe"
    in
    if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p
  in
  if not (Sys.file_exists exe) then begin
    Format.printf
      "@.== Sharding: skipped (no server binary at %s; set PKGQ_SERVER_EXE) \
       ==@."
      exe;
    shard_json := [ ("skipped", "true") ]
  end
  else begin
    let n = max 600 (int_of_float (float_of_int galaxy_base *. scale *. 0.3)) in
    (* partition spatially, objective over brightness: the top-objective
       rows scatter across groups, so refines spread across shards; the
       large tau keeps each per-group refine ILP big enough that solver
       work (not RPC latency) dominates a request *)
    let attrs = [ "ra"; "dec" ] in
    let tau = max 48 (n / 12) in
    let base = Datagen.Galaxy.generate ~seed:9 n in
    Format.printf
      "@.== Sharded serving: scatter/gather over pkgq_server fleets (Galaxy \
       n=%d, tau=%d) ==@."
      n tau;
    let scratch =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "pkgq-bench-shard-%d" (Unix.getpid ()))
    in
    let fleet_args =
      [ "--attrs"; String.concat "," attrs; "--tau"; string_of_int tau ]
    in
    let coord_cfg () =
      {
        (Co.default_config ()) with
        Co.attrs;
        tau = Some tau;
        limits = bench_limits;
        request_seconds = 30.;
        connect_timeout = 1.;
        rpc_seconds = 1.;
        retries = 1;
        hedge_ms = 30;
        breaker_probe_seconds = 0.25;
        ship_every = 0.02;
      }
    in
    let with_fleet name ~shards ~replicas f =
      let fleet =
        Ch.start_fleet ~exe
          ~dir:(Filename.concat scratch name)
          ~base ~shards ~replicas ~extra_args:fleet_args ()
      in
      Fun.protect
        ~finally:(fun () -> Ch.stop_fleet fleet)
        (fun () ->
          let t = Co.start (coord_cfg ()) (Ch.fleet_specs fleet) base in
          Fun.protect ~finally:(fun () -> Co.stop t) (fun () -> f fleet t))
    in
    let mu_r =
      let col = Relalg.Relation.column_float base "r" in
      Array.fold_left ( +. ) 0. col /. float_of_int (Array.length col)
    in
    let queries =
      (* calibrate binding side constraints from the data (same idiom as
         Datagen.Workload): a thin window on total r-band brightness
         makes the refine LPs fractional, so the shards spend real
         branch-and-bound time on every request instead of answering
         from one integral LP relaxation *)
      List.init 4 (fun i ->
          let k = 10 + (2 * i) in
          let kf = float_of_int k in
          Printf.sprintf
            "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = %d \
             AND SUM(P.r) BETWEEN %g AND %g MAXIMIZE SUM(P.petro_rad)"
            k
            (0.99 *. kf *. mu_r)
            (1.01 *. kf *. mu_r))
    in
    let nth_query i = List.nth queries (i mod List.length queries) in
    let essence = function
      | Service.Protocol.Resp_ok body -> (
        match Service.Protocol.parse_result body with
        | Ok (status, _wall, csv) -> `Ok (status, csv)
        | Error e -> `Bad e)
      | Service.Protocol.Resp_err (code, msg) ->
        `Err (Service.Protocol.code_name code, msg)
    in
    (* ground truth: one in-process sketchrefine server, same config *)
    let reference =
      let cfg =
        {
          (Service.Server.default_config ()) with
          Service.Server.method_ = Service.Server.Sketch_refine;
          attrs;
          tau = Some tau;
          workers = 2;
          queue = 32;
          result_cache = 0;
          limits = bench_limits;
          request_seconds = 30.;
          log_every = 0.;
        }
      in
      let srv = Service.Server.start cfg base in
      Fun.protect
        ~finally:(fun () -> Service.Server.stop srv)
        (fun () ->
          let c =
            Service.Client.connect ~host:"127.0.0.1"
              ~port:(Service.Server.port srv) ()
          in
          Fun.protect
            ~finally:(fun () -> try Service.Client.close c with _ -> ())
            (fun () ->
              List.map (fun q -> (q, essence (Service.Client.query c q)))
                queries))
    in
    (* -- QPS scaling at overload client counts -- *)
    let requests = max 16 (int_of_float (64. *. scale)) in
    let clients = 8 in
    (* every request is a semantically distinct query (perturbed size and
       window, as in Workload.mixed) so the stream measures sustained
       sketch/refine work, not plan- and warm-start-cache hits *)
    let stream =
      List.init requests (fun j ->
          let k = 8 + (j mod 7) in
          let kf = float_of_int k in
          let center = kf *. mu_r *. (1. +. (0.003 *. float_of_int (j mod 13))) in
          Printf.sprintf
            "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = %d \
             AND SUM(P.r) BETWEEN %g AND %g MAXIMIZE SUM(P.petro_rad)"
            k (0.99 *. center) (1.01 *. center))
    in
    let qps_for shards =
      with_fleet (Printf.sprintf "qps%d" shards) ~shards ~replicas:0
        (fun _fleet t ->
          let port = Co.port t in
          (* untimed warm-up: plan cache, layouts, shard assignments *)
          ignore (play_stream ~port ~clients:1 queries);
          let _, wall, errs = play_stream ~port ~clients stream in
          let qps = float_of_int requests /. wall in
          Format.printf
            "  %d shard(s): %3d req from %d clients  wall %7.3fs  %7.2f q/s%s@."
            shards requests clients wall qps
            (if errs > 0 then Printf.sprintf "  (%d errors)" errs else "");
          (qps, errs))
    in
    let qps1, err1 = qps_for 1 in
    let qps2, err2 = qps_for 2 in
    let qps4, err4 = qps_for 4 in
    let scaling = qps4 /. Float.max 1e-9 qps1 in
    let cores =
      (* shard processes are the unit of parallelism, so QPS scaling is
         bounded by the machine's core count; record it so the scaling
         figure is interpretable *)
      try
        let ic = open_in "/proc/cpuinfo" in
        let n = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.length line >= 9 && String.sub line 0 9 = "processor"
             then incr n
           done
         with End_of_file -> ());
        close_in ic;
        max 1 !n
      with _ -> 1
    in
    Format.printf "  scaling 4 shards vs 1: %.2fx on %d core(s)%s@." scaling
      cores
      (if scaling >= 3. then ""
       else if cores < 4 then
         Printf.sprintf
           "  (CPU-bound: %d core(s) cap process-parallel scaling at %d.0x)"
           cores cores
       else "  (below the 3x target)");
    (* -- failover recovery: primary SIGKILLed between queries -- *)
    let failover_mean_ms, failovers =
      with_fleet "failover" ~shards:2 ~replicas:1 (fun fleet t ->
          ignore (Co.eval t (nth_query 0));
          Ch.kill_server (List.nth fleet 0).Ch.fm_primary;
          ignore (Co.eval t (nth_query 0));
          ignore (Co.eval t (nth_query 1));
          let m = Co.metrics t in
          ( (match Service.Metrics.mean m "failover" with
            | Some s -> s *. 1000.
            | None -> 0.),
            Service.Metrics.get m "shard_failovers" ))
    in
    Format.printf "  failover recovery: %d failover(s), mean %.1fms%s@."
      failovers failover_mean_ms
      (if failover_mean_ms < 500. then "" else "  (above the 500ms target)");
    (* -- the chaos matrix -- *)
    let points = ref 0 in
    let exact = ref 0 in
    let typed_degraded = ref 0 in
    let wrong = ref 0 in
    let over_budget = ref 0 in
    let install spec =
      match Pkg.Faults.parse spec with
      | Ok s -> Pkg.Faults.install s
      | Error msg -> failwith ("bad bench fault spec: " ^ msg)
    in
    let t_matrix_0 = Unix.gettimeofday () in
    let run_round round =
      with_fleet
        (Printf.sprintf "matrix%d" round)
        ~shards:4 ~replicas:1
        (fun fleet t ->
          let prim k = (List.nth fleet k).Ch.fm_primary in
          let repl k = Option.get (List.nth fleet k).Ch.fm_replica in
          let point label prep cleanup qi =
            prep ();
            let q = nth_query qi in
            let t0 = Unix.gettimeofday () in
            let e = essence (Co.eval t q) in
            let wall = Unix.gettimeofday () -. t0 in
            cleanup ();
            incr points;
            if wall > 2. *. (coord_cfg ()).Co.request_seconds then
              incr over_budget;
            match e with
            | `Ok _ when e = List.assoc q reference -> incr exact
            | `Ok _ ->
              incr wrong;
              Format.printf "  WRONG ANSWER at point %S@." label
            | `Err ("degraded", _) | `Err ("failed", _)
            | `Err ("deadline", _)
            (* a query landing in a fencing promotion window answers the
               typed fence, never a hang or a wrong package *)
            | `Err ("fenced", _) ->
              incr typed_degraded
            | `Err (c, m) ->
              incr wrong;
              Format.printf "  unsanctioned outcome at %S: %s: %s@." label c m
            | `Bad m ->
              incr wrong;
              Format.printf "  malformed reply at %S: %s@." label m
          in
          let nop () = () in
          point "healthy" nop nop round;
          point "inject crash shard0"
            (fun () -> install "shard=0:crash")
            Pkg.Faults.clear (round + 1);
          point "inject drop shard1"
            (fun () -> install "shard=1:drop")
            Pkg.Faults.clear (round + 2);
          point "inject stall shard2"
            (fun () -> install "shard=2:stall:100")
            Pkg.Faults.clear (round + 3);
          point "SIGSTOP primary3"
            (fun () -> Ch.pause (prim 3))
            (fun () -> Ch.resume (prim 3))
            round;
          point "SIGKILL primary0"
            (fun () -> Ch.kill_server (prim 0))
            nop (round + 1);
          point "SIGKILL primary1"
            (fun () -> Ch.kill_server (prim 1))
            nop (round + 2);
          point "SIGSTOP primary2"
            (fun () -> Ch.pause (prim 2))
            (fun () -> Ch.resume (prim 2))
            (round + 3);
          point "SIGKILL replica0 (shard0 dark)"
            (fun () -> Ch.kill_server (repl 0))
            nop round;
          point "SIGKILL primary2 for good"
            (fun () -> Ch.kill_server (prim 2))
            nop (round + 1);
          point "SIGKILL primary3+replica3 (shard3 dark)"
            (fun () ->
              Ch.kill_server (prim 3);
              Ch.kill_server (repl 3))
            nop (round + 2);
          point "aftermath" nop nop (round + 3))
    in
    run_round 0;
    run_round 1;
    let t_matrix = Unix.gettimeofday () -. t_matrix_0 in
    Format.printf
      "  chaos matrix: %d points, %d exact-reference, %d typed-degraded, %d \
       wrong, %d over budget (%.1fs)%s@."
      !points !exact !typed_degraded !wrong !over_budget t_matrix
      (if !wrong = 0 && !over_budget = 0 then "" else "  (VIOLATIONS)");
    (* -- the zombie split-brain matrix -- *)
    (* A SIGSTOPped primary is deposed and promoted past while it still
       holds open sockets and a warm table; on SIGCONT it is driven with
       writes at both the zombie and the fleet. The membership
       invariants under test: the resumed zombie acks nothing (0
       dual-primary acks), every write it refuses is the typed fenced
       error, the fleet loses no acknowledged write across the
       promotion, and a stale epoch stamp is refused at the new
       primary. *)
    let z_rounds = ref 0 in
    let z_dual = ref 0 in
    let z_lost = ref 0 in
    let z_fenced = ref 0 in
    let z_fenced_expected = ref 0 in
    let z_untyped = ref 0 in
    let z_harness = ref 0 in
    let t_zombie_0 = Unix.gettimeofday () in
    let zombie_round round ~lease_ms =
      let batch seed =
        Datagen.Workload.append_batch ~dataset:`Galaxy ~rows:3 ~seed
      in
      let seed0 = 100 * (round + 1) in
      let pre = [ batch seed0; batch (seed0 + 1) ] in
      let during = [ batch (seed0 + 2); batch (seed0 + 3) ] in
      let post = [ batch (seed0 + 4); batch (seed0 + 5) ] in
      incr z_rounds;
      z_fenced_expected := !z_fenced_expected + List.length post;
      match
        Ch.run_zombie ~exe
          ~dir:(Filename.concat scratch (Printf.sprintf "zombie%d" round))
          ~base ~pre ~during ~post ~lease_ms ~attrs ~tau ()
      with
      | r ->
        z_dual := !z_dual + r.Ch.z_dual_acks;
        z_lost := !z_lost + r.Ch.z_lost_acks;
        z_fenced := !z_fenced + r.Ch.z_zombie_fenced;
        z_untyped :=
          !z_untyped + r.Ch.z_zombie_other
          + (if r.Ch.z_stale_fenced then 0 else 1);
        if r.Ch.z_dual_acks > 0 then
          Format.printf "  SPLIT BRAIN at zombie round %d: %d dual ack(s)@."
            round r.Ch.z_dual_acks;
        if r.Ch.z_lost_acks > 0 then
          Format.printf
            "  ACKED-WRITE LOSS at zombie round %d: %d batch(es) (%d acked, \
             standby at %d rows)@."
            round r.Ch.z_lost_acks r.Ch.z_acked r.Ch.z_recovered_rows
      | exception Ch.Harness_error msg ->
        incr z_harness;
        Format.printf "  zombie round %d harness error: %s@." round msg
    in
    zombie_round 0 ~lease_ms:300;
    zombie_round 1 ~lease_ms:500;
    let t_zombie = Unix.gettimeofday () -. t_zombie_0 in
    Format.printf
      "  zombie matrix: %d round(s), %d dual-primary ack(s), %d acked-write \
       loss(es), %d/%d typed-fenced, %d untyped (%.1fs)%s@."
      !z_rounds !z_dual !z_lost !z_fenced !z_fenced_expected !z_untyped
      t_zombie
      (if
         !z_dual = 0 && !z_lost = 0 && !z_untyped = 0 && !z_harness = 0
         && !z_fenced = !z_fenced_expected
       then ""
       else "  (VIOLATIONS)");
    shard_json :=
      [
        ("scale", Printf.sprintf "%g" scale);
        ("rows", string_of_int n);
        ("tau", string_of_int tau);
        ("clients", string_of_int clients);
        ("requests", string_of_int requests);
        ("cores", string_of_int cores);
        ("qps_1shard", Printf.sprintf "%.2f" qps1);
        ("qps_2shard", Printf.sprintf "%.2f" qps2);
        ("qps_4shard", Printf.sprintf "%.2f" qps4);
        ("qps_scaling_4v1", Printf.sprintf "%.2f" scaling);
        ("qps_errors", string_of_int (err1 + err2 + err4));
        ("failovers", string_of_int failovers);
        ("failover_mean_ms", Printf.sprintf "%.1f" failover_mean_ms);
        ("matrix_points", string_of_int !points);
        ("matrix_exact_reference", string_of_int !exact);
        ("matrix_typed_degraded", string_of_int !typed_degraded);
        ("matrix_wrong", string_of_int !wrong);
        ("matrix_over_budget", string_of_int !over_budget);
        ("matrix_wall_s", Printf.sprintf "%.3f" t_matrix);
        ("zombie_rounds", string_of_int !z_rounds);
        ("zombie_dual_primary_acks", string_of_int !z_dual);
        ("zombie_acked_write_losses", string_of_int !z_lost);
        ("zombie_fenced_typed", string_of_int !z_fenced);
        ("zombie_fenced_expected", string_of_int !z_fenced_expected);
        ("zombie_untyped", string_of_int !z_untyped);
        ("zombie_harness_errors", string_of_int !z_harness);
        ("zombie_wall_s", Printf.sprintf "%.3f" t_zombie);
      ]
  end

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (bechamel)                                        *)
(* ------------------------------------------------------------------ *)

let micro () =
  Format.printf "@.== Micro-benchmarks (bechamel): solver substrate ==@.";
  let open Bechamel in
  let rng = Datagen.Prng.create 99 in
  let knapsack n =
    let vars =
      List.init n (fun _ ->
          Lp.Problem.var ~integer:true ~hi:1. (Datagen.Prng.uniform rng 1. 10.))
    in
    let coeffs = List.init n (fun i -> (i, Datagen.Prng.uniform rng 1. 10.)) in
    Lp.Problem.make ~sense:Lp.Problem.Maximize ~vars
      ~rows:[ Lp.Problem.row coeffs ~lo:neg_infinity ~hi:(float_of_int n) ]
  in
  let lp_200 = knapsack 200 in
  let lp_2000 = knapsack 2000 in
  let galaxy_5k = Datagen.Galaxy.generate ~seed:3 5000 in
  let tests =
    [
      Test.make ~name:"simplex n=200"
        (Staged.stage (fun () -> ignore (Lp.Simplex.solve lp_200)));
      Test.make ~name:"simplex n=2000"
        (Staged.stage (fun () -> ignore (Lp.Simplex.solve lp_2000)));
      Test.make ~name:"branch&bound knapsack n=200"
        (Staged.stage (fun () ->
             ignore (Ilp.Branch_bound.solve lp_200)));
      Test.make ~name:"quad-tree partition 5k x 3attrs"
        (Staged.stage (fun () ->
             ignore
               (Pkg.Partition.create ~tau:500
                  ~attrs:[ "ra"; "dec"; "redshift" ] galaxy_5k)));
      Test.make ~name:"paql parse+compile"
        (Staged.stage (fun () ->
             let q =
               "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
                COUNT(P.*) = 5 AND SUM(P.redshift) <= 1.0 MAXIMIZE SUM(P.u)"
             in
             ignore
               (Paql.Translate.compile_exn
                  (Relalg.Relation.schema galaxy_5k)
                  (Paql.Parser.parse_exn q))));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Format.printf "  %-32s %12.1f ns/run@." name est
          | _ -> Format.printf "  %-32s (no estimate)@." name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Solver: warm-started dual simplex vs cold primal                   *)
(* ------------------------------------------------------------------ *)

let solver_json : (string * string) list ref = ref []

(* The three warm-start claims, measured: (1) a refine-style re-solve
   ladder — the same LP re-solved after one bound tightening per rung,
   exactly the shape of B&B children and refine rungs — runs >=5x
   faster warm (dual simplex from the saved basis) than cold from
   scratch, with identical objectives; (2) the speedup survives end to
   end in a SketchRefine run (PKGQ_WARM off vs on); (3) a
   parameter-tweaked query stream through the server finds its saved
   basis (structure-fingerprint cache) and the warm attempts succeed
   >80% of the time. *)
let solver_bench ~scale () =
  Lp.Simplex.set_warm_enabled true;
  let n = max 400 (int_of_float (4_000. *. scale)) in
  let rungs = max 20 (int_of_float (120. *. scale)) in
  Format.printf
    "@.== Solver: warm-started dual simplex (ladder n=%d vars, %d rungs) ==@."
    n rungs;
  (* -- (1) the re-solve ladder -- *)
  let rng = Datagen.Prng.create 42 in
  let obj = Array.init n (fun _ -> Datagen.Prng.uniform rng 1. 10.) in
  let res = Array.init 3 (fun _ ->
      Array.init n (fun _ -> Datagen.Prng.uniform rng 0. 5.)) in
  (* a large package cardinality: the cold solve pays ~k primal pivots
     per rung, the warm re-solve only the one or two dual pivots the
     pinned variable forces *)
  let k = Float.of_int (max 10 (n / 50)) in
  let base_problem () =
    let vars = List.init n (fun j -> Lp.Problem.var ~lo:0. ~hi:1. obj.(j)) in
    let count_row =
      Lp.Problem.row (List.init n (fun j -> (j, 1.))) ~lo:k ~hi:k
    in
    let res_rows =
      List.map
        (fun a ->
          Lp.Problem.row
            (List.init n (fun j -> (j, a.(j))))
            ~lo:neg_infinity
            ~hi:(Array.fold_left ( +. ) 0. a /. float_of_int n *. k *. 2.))
        (Array.to_list res)
    in
    Lp.Problem.make ~sense:Lp.Problem.Maximize ~vars
      ~rows:(count_row :: res_rows)
  in
  let pin p j =
    let vars' = Array.copy p.Lp.Problem.vars in
    vars'.(j) <- { vars'.(j) with Lp.Problem.hi = 0. };
    { p with Lp.Problem.vars = vars' }
  in
  let argmax x =
    let best = ref 0 in
    Array.iteri (fun j v -> if v > x.(!best) then best := j) x;
    !best
  in
  (* Warm chain: each rung pins the currently most-selected variable
     (what a B&B branch or refine rung does) and re-solves from the
     previous optimal basis. The pin sequence is recorded so the cold
     chain replays the exact same problems. *)
  let sol0 =
    match Lp.Simplex.solve (base_problem ()) with
    | Lp.Simplex.Optimal s -> s
    | r ->
      Format.printf "  ladder root not optimal: %a@." Lp.Simplex.pp_result r;
      exit 2
  in
  let problems = Array.make rungs (base_problem ()) in
  let warm_objs = Array.make rungs 0. in
  let (), warm_t =
    time (fun () ->
        let p = ref (base_problem ())
        and b = ref sol0.Lp.Simplex.basis
        and x = ref sol0.Lp.Simplex.x in
        for i = 0 to rungs - 1 do
          p := pin !p (argmax !x);
          problems.(i) <- !p;
          match Lp.Simplex.resolve ?basis:!b !p with
          | Lp.Simplex.Optimal s ->
            warm_objs.(i) <- s.Lp.Simplex.obj;
            b := s.Lp.Simplex.basis;
            x := s.Lp.Simplex.x
          | r ->
            Format.printf "  warm rung %d not optimal: %a@." i
              Lp.Simplex.pp_result r;
            exit 2
        done)
  in
  let cold_objs = Array.make rungs 0. in
  let (), cold_t =
    time (fun () ->
        Array.iteri
          (fun i p ->
            match Lp.Simplex.solve p with
            | Lp.Simplex.Optimal s -> cold_objs.(i) <- s.Lp.Simplex.obj
            | r ->
              Format.printf "  cold rung %d not optimal: %a@." i
                Lp.Simplex.pp_result r;
              exit 2)
          problems)
  in
  let max_diff = ref 0. in
  for i = 0 to rungs - 1 do
    let d =
      Float.abs (warm_objs.(i) -. cold_objs.(i))
      /. Float.max 1. (Float.abs cold_objs.(i))
    in
    if d > !max_diff then max_diff := d
  done;
  let ladder_speedup = cold_t /. Float.max 1e-9 warm_t in
  Format.printf
    "  ladder: cold %7.3fs  warm %7.3fs  speedup %6.1fx  max obj diff %g%s@."
    cold_t warm_t ladder_speedup !max_diff
    (if ladder_speedup >= 5. then "" else "  (below the 5x target)");
  (* -- (2) end to end: SketchRefine with warm starts off vs on -- *)
  let e2e_n = max 2_000 (int_of_float (float_of_int galaxy_base *. scale)) in
  let rel = Datagen.Galaxy.generate ~seed:1 e2e_n in
  let d = List.nth (Datagen.Workload.galaxy_queries rel) 6 in
  let qrel = Datagen.Workload.query_relation ~dataset:`Galaxy rel d in
  let spec = Datagen.Workload.compile qrel d in
  let part =
    Pkg.Partition.create ~tau:(max 1 (Relalg.Relation.cardinality qrel / 10))
      ~attrs:d.Datagen.Workload.attrs qrel
  in
  let sr warm =
    Lp.Simplex.set_warm_enabled warm;
    let r, t =
      time (fun () -> Pkg.Sketch_refine.run ~options:sr_options spec qrel part)
    in
    Lp.Simplex.set_warm_enabled true;
    Format.printf "  sketchrefine warm=%-5b wall %7.3fs  %a@." warm t
      Pkg.Eval.pp_status r.Pkg.Eval.status;
    (r, t)
  in
  let _r_cold, sr_cold_t = sr false in
  let _r_warm, sr_warm_t = sr true in
  (* -- (3) parameter-tweaked stream through the server basis cache -- *)
  let stream_len = 30 in
  let srel = Datagen.Galaxy.generate ~seed:5 (max 800 (e2e_n / 4)) in
  let mu =
    Relalg.Value.to_float
      (Relalg.Aggregate.over srel (Relalg.Aggregate.Avg "redshift"))
  in
  let queries =
    List.init stream_len (fun i ->
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) \
           = 8 AND SUM(P.redshift) <= %.6f MAXIMIZE SUM(P.petro_rad)"
          (8. *. mu *. (1.2 +. (0.02 *. float_of_int i))))
  in
  let cfg =
    {
      (Service.Server.default_config ()) with
      Service.Server.workers = 1;
      (* result cache off: every request must reach the solver, so the
         basis cache is the only reuse in play *)
      result_cache = 0;
      method_ = Service.Server.Direct;
      limits = bench_limits;
      request_seconds = 300.;
      log_every = 0.;
    }
  in
  let srv = Service.Server.start cfg srel in
  let c0 = Lp.Simplex.counters () in
  let bhits, bmisses, stream_t =
    Fun.protect
      ~finally:(fun () -> Service.Server.stop srv)
      (fun () ->
        let port = Service.Server.port srv in
        let _, wall, errs = play_stream ~port ~clients:1 queries in
        if errs > 0 then Format.printf "  stream: %d errors@." errs;
        let m = Service.Server.metrics srv in
        (Service.Metrics.get m "basis_hits",
         Service.Metrics.get m "basis_misses",
         wall))
  in
  let c1 = Lp.Simplex.counters () in
  let attempts = c1.Lp.Simplex.warm_attempts - c0.Lp.Simplex.warm_attempts in
  let hits = c1.Lp.Simplex.warm_hits - c0.Lp.Simplex.warm_hits in
  let warm_rate =
    if attempts = 0 then 0. else float_of_int hits /. float_of_int attempts
  in
  let basis_rate = float_of_int bhits /. float_of_int (max 1 (bhits + bmisses)) in
  Format.printf
    "  server stream: %d tweaked queries in %.3fs; basis cache %d/%d hits \
     (%.0f%%), warm attempts %d, warm hits %d (%.0f%%)%s@."
    stream_len stream_t bhits (bhits + bmisses) (basis_rate *. 100.) attempts
    hits (warm_rate *. 100.)
    (if warm_rate > 0.8 then "" else "  (below the 80% target)");
  let num v = Printf.sprintf "%.6f" v in
  solver_json :=
    [
      ("scale", Printf.sprintf "%g" scale);
      ("ladder_vars", string_of_int n);
      ("ladder_rungs", string_of_int rungs);
      ("ladder_cold_s", num cold_t);
      ("ladder_warm_s", num warm_t);
      ("refine_warm_speedup", Printf.sprintf "%.2f" ladder_speedup);
      ("ladder_max_obj_diff", Printf.sprintf "%g" !max_diff);
      ("sketchrefine_cold_wall_s", num sr_cold_t);
      ("sketchrefine_warm_wall_s", num sr_warm_t);
      ( "sketchrefine_warm_speedup",
        Printf.sprintf "%.2f" (sr_cold_t /. Float.max 1e-9 sr_warm_t) );
      ("server_stream_queries", string_of_int stream_len);
      ("server_stream_wall_s", num stream_t);
      ("server_basis_hits", string_of_int bhits);
      ("server_basis_misses", string_of_int bmisses);
      ("server_basis_hit_rate", Printf.sprintf "%.3f" basis_rate);
      ("server_warm_attempts", string_of_int attempts);
      ("server_warm_hits", string_of_int hits);
      ("server_warm_hit_rate", Printf.sprintf "%.3f" warm_rate);
    ]

(* ------------------------------------------------------------------ *)
(* Stochastic package queries: SummarySearch vs the naive expansion   *)
(* ------------------------------------------------------------------ *)

let stoch_json : (string * string) list ref = ref []

(* The SummarySearch claim (arXiv:2103.06784): the scenario-expanded
   ILP carries one big-M indicator per (constraint, scenario) and its
   solve time dies with the scenario count, while conservative
   summaries compress the covered scenarios into a handful of rows —
   the same validated probability at a near-constant cost. The sweep
   crosses scenario counts S = 24..192 on a fixed relation; both
   solvers draw the identical scenario realizations (per-index derived
   seeds) and both are validated out-of-sample on a fresh 200-scenario
   holdout, so the only difference measured is the formulation. The
   third point is the typed unsatisfiable-p outcome: a probability no
   package can meet must come back Infeasible within the deadline,
   never a hang. *)
let stoch_bench ~scale () =
  let n = max 300 (int_of_float (float_of_int galaxy_base *. scale *. 0.1)) in
  let rel = Datagen.Galaxy.generate ~seed:3 n in
  let deadline_s = Float.max 10. (60. *. scale) in
  let opts scenarios =
    {
      (Pkg.Stochastic.default_options ()) with
      Pkg.Stochastic.limits = bench_limits;
      max_seconds = deadline_s;
      scenarios;
      validation = 200;
      summaries = 2;
      seed = 42;
    }
  in
  let compile q =
    Paql.Translate.compile_exn
      (Relalg.Relation.schema rel)
      (Paql.Parser.parse_exn q)
  in
  let spec =
    compile
      "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = \
       3 AND SUM(P.u) >= 45 WITH PROBABILITY 0.9 MAXIMIZE SUM(P.r)"
  in
  Format.printf
    "@.== Stochastic: SummarySearch vs scenario expansion (Galaxy n=%d, \
     validation=200, p=0.9) ==@."
    n;
  Format.printf "   S      summary                      naive@.";
  let status_str (r : Pkg.Eval.report) =
    Format.asprintf "%a" Pkg.Eval.pp_status r.Pkg.Eval.status
  in
  let obj_str (r : Pkg.Eval.report) =
    match r.Pkg.Eval.objective with
    | Some v -> Printf.sprintf "%.4f" v
    | None -> "-"
  in
  let sweep = [ 24; 48; 96; 192 ] in
  let num v = Printf.sprintf "%.6f" v in
  let headline = ref [] in
  List.iter
    (fun s ->
      let o = opts s in
      let (rs, ss), ts = time (fun () -> Pkg.Stochastic.run ~options:o spec rel) in
      let (rn, sn), tn =
        time (fun () -> Pkg.Stochastic.run_naive ~options:o spec rel)
      in
      let speedup = tn /. Float.max 1e-9 ts in
      Format.printf
        "   %-5d  %-10s val=%.3f %6.3fs   %-10s val=%.3f %6.3fs  (%.1fx)@." s
        (status_str rs) ss.Pkg.Stochastic.st_validated ts (status_str rn)
        sn.Pkg.Stochastic.st_validated tn speedup;
      let key k = Printf.sprintf "s%d_%s" s k in
      stoch_json :=
        !stoch_json
        @ [
            (key "summary_status", Printf.sprintf "%S" (status_str rs));
            (key "summary_wall_s", num ts);
            ( key "summary_validated",
              Printf.sprintf "%.4f" ss.Pkg.Stochastic.st_validated );
            (key "summary_obj", obj_str rs);
            (key "naive_status", Printf.sprintf "%S" (status_str rn));
            (key "naive_wall_s", num tn);
            ( key "naive_validated",
              Printf.sprintf "%.4f" sn.Pkg.Stochastic.st_validated );
            (key "naive_obj", obj_str rn);
            (key "speedup", Printf.sprintf "%.2f" speedup);
          ];
      (* the headline acceptance numbers come from the largest sweep
         point: validated probability met, and the summary speedup *)
      headline :=
        [
          ("summary_meets_p",
           string_of_bool (ss.Pkg.Stochastic.st_validated >= 0.9));
          ("summary_rounds", string_of_int ss.Pkg.Stochastic.st_rounds);
          ("summary_speedup", Printf.sprintf "%.2f" speedup);
          ("obj_agrees", string_of_bool (obj_str rs = obj_str rn));
        ])
    sweep;
  (* unsatisfiable probability: typed, within the deadline *)
  let unsat_spec =
    compile
      "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = \
       3 AND SUM(P.u) >= 1000 WITH PROBABILITY 0.95 MAXIMIZE SUM(P.r)"
  in
  let (ru, _), tu =
    time (fun () -> Pkg.Stochastic.run ~options:(opts 48) unsat_spec rel)
  in
  Format.printf "   unsat-p: %-12s within deadline: %b  %6.3fs@."
    (status_str ru)
    (tu <= deadline_s *. 1.2)
    tu;
  stoch_json :=
    [
      ("n", string_of_int n);
      ("validation", "200");
      ("probability", "0.9");
      ("deadline_s", Printf.sprintf "%.3f" deadline_s);
    ]
    @ !stoch_json @ !headline
    @ [
        ("unsat_status", Printf.sprintf "%S" (status_str ru));
        ("unsat_wall_s", num tu);
        ("unsat_within_deadline", string_of_bool (tu <= deadline_s *. 1.2));
      ]

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let all_experiments =
  [
    ("fig1", fun ~scale () -> fig1 ~scale ());
    ("fig3", fun ~scale () -> fig3 ~scale ());
    ("fig4", fun ~scale () -> fig4 ~scale ());
    ("fig5", fun ~scale () -> fig5 ~scale ());
    ("fig6", fun ~scale () -> fig6 ~scale ());
    ("fig7", fun ~scale () -> fig7 ~scale ());
    ("fig8", fun ~scale () -> fig8 ~scale ());
    ("fig9", fun ~scale () -> fig9 ~scale ());
    ("radius", fun ~scale () -> radius ~scale ());
    ("ablation", fun ~scale () -> ablation ~scale ());
    ("scan", fun ~scale () -> scan ~scale ());
    ("robust", fun ~scale () -> robust ~scale ());
    ("store", fun ~scale () -> store_bench ~scale ());
    ("serve", fun ~scale () -> serve ~scale ());
    ("durability", fun ~scale () -> durability ~scale ());
    ("solver", fun ~scale () -> solver_bench ~scale ());
    ("progressive", fun ~scale () -> progressive_bench ~scale ());
    ("shard", fun ~scale () -> shard_bench ~scale ());
    ("stoch", fun ~scale () -> stoch_bench ~scale ());
    ("micro", fun ~scale () -> ignore scale; micro ());
  ]

let () =
  let scale =
    match Sys.getenv_opt "PKGQ_SCALE" with
    | Some s -> (try float_of_string s with _ -> 1.0)
    | None -> 1.0
  in
  let args = Array.to_list Sys.argv |> List.tl in
  let json = ref false in
  let scale, selected =
    let rec go scale sel = function
      | [] -> (scale, List.rev sel)
      | "--scale" :: v :: rest -> go (float_of_string v) sel rest
      | "--json" :: rest ->
        json := true;
        go scale sel rest
      | x :: rest -> go scale (x :: sel) rest
    in
    go scale [] args
  in
  let to_run =
    match selected with
    | [] -> all_experiments
    | names ->
      List.map
        (fun n ->
          match List.assoc_opt n all_experiments with
          | Some f -> (n, f)
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n" n
              (String.concat ", " (List.map fst all_experiments));
            exit 2)
        names
  in
  Format.printf "package-query benchmarks (scale %g)@." scale;
  List.iter (fun (_, f) -> f ~scale ()) to_run;
  if !json && !scan_json <> [] then write_json "BENCH_scan.json" !scan_json;
  if !json && !robust_json <> [] then
    write_json "BENCH_robust.json" !robust_json;
  if !json && !store_json <> [] then write_json "BENCH_store.json" !store_json;
  if !json && !serve_json <> [] then write_json "BENCH_serve.json" !serve_json;
  if !json && !durability_json <> [] then
    write_json "BENCH_durability.json" !durability_json;
  if !json && !solver_json <> [] then
    write_json "BENCH_solver.json" !solver_json;
  if !json && !shard_json <> [] then write_json "BENCH_shard.json" !shard_json;
  if !json && !progressive_json <> [] then
    write_json "BENCH_progressive.json" !progressive_json;
  if !json && !stoch_json <> [] then write_json "BENCH_stoch.json" !stoch_json;
  Format.printf "@.done.@."
