(* Service-layer tests: the TCP server end to end (concurrent clients
   agree byte-for-byte with cold single-shot evaluation), the plan and
   result caches (hits skip the solver, appends invalidate), admission
   control (typed rejected, never a hang), deadline expiry, the
   queue/net fault directives, query fingerprints, and the scheduler /
   LRU / metrics building blocks. *)

module W = Datagen.Workload
module Srv = Service.Server
module Cl = Service.Client
module Pr = Service.Protocol

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let galaxy = Datagen.Galaxy.generate ~seed:3 400

(* repeat-heavy stream exercising both caches *)
let defs = W.mixed ~seed:7 ~repeat_rate:0.5 ~dataset:`Galaxy ~n:12 galaxy
let queries = List.map (fun (d : W.def) -> d.paql) defs

let distinct_queries =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun q ->
      if Hashtbl.mem seen q then false
      else begin
        Hashtbl.replace seen q ();
        true
      end)
    queries

let base_cfg () =
  (* explicit capacities so the suite ignores PKGQ_SERVE_* env *)
  {
    (Srv.default_config ()) with
    Srv.workers = 4;
    queue = 32;
    result_cache = 256;
    plan_cache = 64;
    request_seconds = 60.;
    log_every = 0.;
  }

let with_server cfg rel f =
  let t = Srv.start cfg rel in
  Fun.protect ~finally:(fun () -> Srv.stop t) (fun () -> f t)

let with_client t f =
  let c = Cl.connect ~host:"127.0.0.1" ~port:(Srv.port t) () in
  Fun.protect ~finally:(fun () -> Cl.close c) (fun () -> f c)

(* Response modulo the wall-time line (the only nondeterministic
   byte): status, package CSV, or the typed error. *)
let essence = function
  | Pr.Resp_ok body -> (
    match Pr.parse_result body with
    | Ok (status, _wall, csv) -> `Ok (status, csv)
    | Error e -> `Bad e)
  | Pr.Resp_err (code, msg) -> `Err (Pr.code_name code, msg)

(* ------------------------------------------------------------------ *)
(* End-to-end: concurrency, caches, appends                           *)
(* ------------------------------------------------------------------ *)

let test_concurrent_matches_cold () =
  (* cold reference: caches off, one client, each distinct query once *)
  let reference = Hashtbl.create 16 in
  with_server
    { (base_cfg ()) with Srv.result_cache = 0; plan_cache = 0 }
    galaxy
    (fun t ->
      with_client t (fun c ->
          List.iter
            (fun q -> Hashtbl.replace reference q (essence (Cl.query c q)))
            distinct_queries));
  (* 8 concurrent clients, caches on, repeats included *)
  with_server (base_cfg ()) galaxy (fun t ->
      let clients = 8 in
      let results = Array.make clients [] in
      let threads =
        List.init clients (fun i ->
            Thread.create
              (fun () ->
                with_client t (fun c ->
                    results.(i) <-
                      List.map (fun q -> essence (Cl.query c q)) queries))
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i rs ->
          List.iter2
            (fun q r ->
              checkb
                (Printf.sprintf "client %d agrees with cold single-shot" i)
                true
                (r = Hashtbl.find reference q))
            queries rs)
        results;
      checkb "every distinct query got an OK answer" true
        (List.for_all
           (fun q ->
             match Hashtbl.find reference q with `Ok _ -> true | _ -> false)
           distinct_queries))

let test_cache_hits_skip_solver () =
  with_server (base_cfg ()) galaxy (fun t ->
      with_client t (fun c ->
          List.iter (fun q -> ignore (Cl.query c q)) queries;
          let distinct = List.length distinct_queries in
          checki "one solve per distinct query" distinct (Srv.solve_count t);
          (* a full second pass is all result-cache hits *)
          List.iter (fun q -> ignore (Cl.query c q)) queries;
          checki "replay solves nothing" distinct (Srv.solve_count t);
          checkb "result hits recorded" true
            (Service.Metrics.get (Srv.metrics t) "result_hits"
             >= List.length queries)))

let test_append_invalidates_results () =
  with_server (base_cfg ()) galaxy (fun t ->
      with_client t (fun c ->
          let q = List.hd distinct_queries in
          let r1 = essence (Cl.query c q) in
          checkb "first answer is OK" true
            (match r1 with `Ok _ -> true | _ -> false);
          ignore (Cl.query c q);
          checki "repeat served from cache" 1 (Srv.solve_count t);
          let fp0 = Srv.table_fingerprint t in
          let extra = Datagen.Galaxy.generate ~seed:99 20 in
          (match Cl.append c ~csv:(Relalg.Csv.to_string extra) with
          | Pr.Resp_ok _ -> ()
          | Pr.Resp_err (_, msg) -> Alcotest.fail ("append failed: " ^ msg));
          checkb "fingerprint changed" true (Srv.table_fingerprint t <> fp0);
          checkb "stale results invalidated" true
            (Service.Metrics.get (Srv.metrics t) "result_invalidated" >= 1);
          ignore (Cl.query c q);
          checki "same query re-solves on the new table" 2 (Srv.solve_count t)))

let test_append_bad_schema () =
  with_server (base_cfg ()) galaxy (fun t ->
      with_client t (fun c ->
          match Cl.append c ~csv:"x:int\n1\n" with
          | Pr.Resp_err (Pr.Data_error, _) -> ()
          | r ->
            Alcotest.fail
              (Printf.sprintf "expected data error, got %s"
                 (match essence r with
                 | `Ok _ -> "OK"
                 | `Err (c, _) -> c
                 | `Bad e -> e))))

(* ------------------------------------------------------------------ *)
(* Admission control and deadlines                                    *)
(* ------------------------------------------------------------------ *)

let test_queue_full_fault_rejects () =
  (match Pkg.Faults.parse "queue=full" with
  | Ok spec -> Pkg.Faults.install spec
  | Error msg -> Alcotest.fail ("queue=full should parse: " ^ msg));
  Fun.protect ~finally:Pkg.Faults.clear (fun () ->
      with_server (base_cfg ()) galaxy (fun t ->
          with_client t (fun c ->
              match Cl.query c (List.hd distinct_queries) with
              | Pr.Resp_err (Pr.Rejected, msg) ->
                checkb "names the queue" true
                  (String.length msg >= 5 (* "rejected: queue full ..." *));
                checki "rejected maps to exit code 7" 7
                  (Pr.exit_code Pr.Rejected);
                checkb "typed, not silent" true
                  (Service.Metrics.get (Srv.metrics t) "shed" >= 1)
              | r ->
                Alcotest.fail
                  (match essence r with
                  | `Ok _ -> "expected rejection, got OK"
                  | `Err (c, m) -> "expected rejected, got " ^ c ^ ": " ^ m
                  | `Bad e -> e))))

let test_overload_never_hangs () =
  (* 1 worker, queue of 1, 12 concurrent distinct queries: every
     request must complete — OK or typed rejected — and joining all
     clients is the no-hang proof *)
  let stream =
    W.mixed ~seed:21 ~repeat_rate:0. ~dataset:`Galaxy ~n:12 galaxy
  in
  with_server
    { (base_cfg ()) with Srv.workers = 1; queue = 1 }
    galaxy
    (fun t ->
      let outcomes = Array.make (List.length stream) `Pending in
      let threads =
        List.mapi
          (fun i (d : W.def) ->
            Thread.create
              (fun () ->
                with_client t (fun c ->
                    outcomes.(i) <- essence (Cl.query c d.paql)))
              ())
          stream
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i o ->
          match o with
          | `Ok _ | `Err ("rejected", _) -> ()
          | `Pending -> Alcotest.fail (Printf.sprintf "request %d hung" i)
          | `Err (c, m) ->
            Alcotest.fail (Printf.sprintf "request %d: %s: %s" i c m)
          | `Bad e -> Alcotest.fail e)
        outcomes;
      checki "shed counter matches rejected answers"
        (Array.to_list outcomes
        |> List.filter (function `Err ("rejected", _) -> true | _ -> false)
        |> List.length)
        (Service.Metrics.get (Srv.metrics t) "shed"))

let test_deadline_expired () =
  with_server
    { (base_cfg ()) with Srv.request_seconds = 0. }
    galaxy
    (fun t ->
      with_client t (fun c ->
          match Cl.query c (List.hd distinct_queries) with
          | Pr.Resp_err (Pr.Deadline, msg) ->
            checkb "says deadline" true
              (String.length msg > 0);
            checki "no solver work for an expired request" 0
              (Srv.solve_count t)
          | r ->
            Alcotest.fail
              (match essence r with
              | `Ok _ -> "expected deadline error, got OK"
              | `Err (c, m) -> "expected deadline, got " ^ c ^ ": " ^ m
              | `Bad e -> e)))

(* ------------------------------------------------------------------ *)
(* Net fault directives                                               *)
(* ------------------------------------------------------------------ *)

let test_net_accept_fault () =
  (match Pkg.Faults.parse "net=accept:fail" with
  | Ok spec -> Pkg.Faults.install spec
  | Error msg -> Alcotest.fail ("net=accept:fail should parse: " ^ msg));
  Fun.protect ~finally:Pkg.Faults.clear (fun () ->
      with_server (base_cfg ()) galaxy (fun t ->
          (* first connection is accepted then dropped by the fault *)
          let dropped =
            match
              with_client t (fun c -> Cl.ping c)
            with
            | Pr.Resp_ok _ -> false
            | Pr.Resp_err _ -> true
            | exception Pr.Protocol_error _ -> true
            | exception Unix.Unix_error _ -> true
            | exception Sys_error _ -> true
          in
          checkb "first connection dropped" true dropped;
          checkb "net error counted" true
            (Service.Metrics.get (Srv.metrics t) "net_errors" >= 1);
          (* the fault is one-shot: the server recovered *)
          with_client t (fun c ->
              match Cl.ping c with
              | Pr.Resp_ok body -> checks "server recovered" "pong" body
              | Pr.Resp_err (_, m) -> Alcotest.fail m)))

let test_net_read_fault () =
  (match Pkg.Faults.parse "net=read:fail" with
  | Ok spec -> Pkg.Faults.install spec
  | Error msg -> Alcotest.fail ("net=read:fail should parse: " ^ msg));
  Fun.protect ~finally:Pkg.Faults.clear (fun () ->
      with_server (base_cfg ()) galaxy (fun t ->
          let dropped =
            match with_client t (fun c -> Cl.ping c) with
            | Pr.Resp_ok _ -> false
            | Pr.Resp_err _ -> true
            | exception Pr.Protocol_error _ -> true
            | exception Unix.Unix_error _ -> true
            | exception Sys_error _ -> true
          in
          checkb "read faulted" true dropped;
          with_client t (fun c ->
              match Cl.ping c with
              | Pr.Resp_ok body -> checks "server recovered" "pong" body
              | Pr.Resp_err (_, m) -> Alcotest.fail m)))

let test_fault_grammar () =
  (match Pkg.Faults.parse "queue=full; net=accept:fail; net=read:fail" with
  | Ok spec -> checki "three directives" 3 (List.length spec)
  | Error msg -> Alcotest.fail msg);
  (match Pkg.Faults.parse "net=elsewhere:fail" with
  | Ok _ -> Alcotest.fail "net=elsewhere:fail should not parse"
  | Error _ -> ());
  match Pkg.Faults.parse "queue=almost" with
  | Ok _ -> Alcotest.fail "queue=almost should not parse"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Query fingerprints                                                 *)
(* ------------------------------------------------------------------ *)

let test_fingerprint_normalizes () =
  let fp = Paql.Fingerprint.of_query in
  let q = List.hd distinct_queries in
  checks "whitespace-insensitive" (fp q)
    (fp (String.concat "  \n  " (String.split_on_char ' ' q)));
  (* keywords are case-insensitive in the lexer; identifiers are not *)
  checks "keyword-case-insensitive" (fp "SELECT PACKAGE(G) AS P FROM Galaxy G")
    (fp "select package(G) as P from Galaxy G");
  checkb "semantic changes change the fingerprint" true
    (fp "COUNT(P.*) = 3" <> fp "COUNT(P.*) = 4");
  checkb "malformed text still fingerprints" true
    (String.length (fp "SELECT \"unterminated") = 16)

(* ------------------------------------------------------------------ *)
(* Building blocks: LRU cache, scheduler, metrics, protocol           *)
(* ------------------------------------------------------------------ *)

let test_lru_cache () =
  let c = Service.Cache.create ~capacity:2 in
  Service.Cache.add c "a" 1;
  Service.Cache.add c "b" 2;
  ignore (Service.Cache.find_opt c "a");
  (* a is now most recent *)
  Service.Cache.add c "c" 3;
  (* b evicted *)
  checkb "lru evicted" true (Service.Cache.find_opt c "b" = None);
  checkb "recent kept" true (Service.Cache.find_opt c "a" = Some 1);
  checki "bounded" 2 (Service.Cache.length c);
  checki "remove_if drops matches" 1
    (Service.Cache.remove_if c (fun k -> k = "a"));
  let off = Service.Cache.create ~capacity:0 in
  Service.Cache.add off "x" 1;
  checkb "capacity 0 disables" true (Service.Cache.find_opt off "x" = None)

let test_scheduler_sheds_deterministically () =
  let metrics = Service.Metrics.create () in
  let s = Service.Scheduler.create ~workers:1 ~capacity:2 ~metrics in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let started = ref false in
  let release = ref false in
  let ran = Atomic.make 0 in
  let gate () =
    Mutex.protect mu (fun () ->
        started := true;
        Condition.signal cv;
        while not !release do
          Condition.wait cv mu
        done)
  in
  checkb "gate admitted" true (Service.Scheduler.submit s gate = `Accepted);
  Mutex.protect mu (fun () ->
      while not !started do
        Condition.wait cv mu
      done);
  (* worker busy, queue empty: capacity admits exactly two more *)
  let noop () = Atomic.incr ran in
  checkb "1st queued" true (Service.Scheduler.submit s noop = `Accepted);
  checkb "2nd queued" true (Service.Scheduler.submit s noop = `Accepted);
  checkb "3rd shed" true (Service.Scheduler.submit s noop = `Rejected);
  checki "shed counted" 1 (Service.Metrics.get metrics "shed");
  Mutex.protect mu (fun () ->
      release := true;
      Condition.broadcast cv);
  Service.Scheduler.shutdown s;
  checki "admitted jobs drained before shutdown" 2 (Atomic.get ran)

let test_metrics_render () =
  let m = Service.Metrics.create () in
  Service.Metrics.incr m "requests";
  Service.Metrics.incr ~by:3 m "requests";
  Service.Metrics.set_gauge m "queue_depth" 5;
  Service.Metrics.observe m "solve" 0.010;
  Service.Metrics.observe m "solve" 0.020;
  checki "counter" 4 (Service.Metrics.get m "requests");
  checki "gauge" 5 (Service.Metrics.get_gauge m "queue_depth");
  checki "stage count" 2 (Service.Metrics.stage_count m "solve");
  (match Service.Metrics.quantile m "solve" 0.5 with
  | Some q -> checkb "p50 in range" true (q >= 0.009 && q <= 0.025)
  | None -> Alcotest.fail "expected a quantile");
  let rendered = Service.Metrics.render m in
  let contains needle =
    let nl = String.length needle and hl = String.length rendered in
    let rec scan i =
      i + nl <= hl && (String.sub rendered i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle -> checkb (needle ^ " rendered") true (contains needle))
    [ "requests 4"; "gauge queue_depth 5"; "stage solve count 2" ]

let test_protocol_roundtrip () =
  let body =
    Pr.render_result ~status_line:"optimal, obj=42" ~wall:0.125
      ~csv:"a:int\n1\n2\n"
  in
  (match Pr.parse_result body with
  | Ok (status, wall, csv) ->
    checks "status" "optimal, obj=42" status;
    checkb "wall" true (Float.abs (wall -. 0.125) < 1e-9);
    checks "csv" "a:int\n1\n2\n" csv
  | Error e -> Alcotest.fail e);
  (match Cl.parse_endpoint "127.0.0.1:7070" with
  | Ok (h, p) ->
    checks "host" "127.0.0.1" h;
    checki "port" 7070 p
  | Error e -> Alcotest.fail e);
  match Cl.parse_endpoint "no-port" with
  | Ok _ -> Alcotest.fail "endpoint without port should not parse"
  | Error _ -> ()

let () =
  Alcotest.run "service"
    [
      ( "server",
        [
          Alcotest.test_case "concurrent clients match cold single-shot"
            `Slow test_concurrent_matches_cold;
          Alcotest.test_case "result cache hits skip the solver" `Quick
            test_cache_hits_skip_solver;
          Alcotest.test_case "append invalidates cached results" `Quick
            test_append_invalidates_results;
          Alcotest.test_case "append with a foreign schema is a data error"
            `Quick test_append_bad_schema;
        ] );
      ( "admission",
        [
          Alcotest.test_case "queue=full fault sheds with typed rejected"
            `Quick test_queue_full_fault_rejects;
          Alcotest.test_case "overload completes every request" `Slow
            test_overload_never_hangs;
          Alcotest.test_case "expired deadline answers without solving" `Quick
            test_deadline_expired;
        ] );
      ( "faults",
        [
          Alcotest.test_case "net=accept:fail drops one connection" `Quick
            test_net_accept_fault;
          Alcotest.test_case "net=read:fail drops one read" `Quick
            test_net_read_fault;
          Alcotest.test_case "grammar accepts/rejects the new directives"
            `Quick test_fault_grammar;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "token-normalized, semantics-sensitive" `Quick
            test_fingerprint_normalizes;
        ] );
      ( "components",
        [
          Alcotest.test_case "bounded LRU cache" `Quick test_lru_cache;
          Alcotest.test_case "scheduler sheds past capacity" `Quick
            test_scheduler_sheds_deterministically;
          Alcotest.test_case "metrics counters and histograms" `Quick
            test_metrics_render;
          Alcotest.test_case "protocol bodies and endpoints round-trip" `Quick
            test_protocol_roundtrip;
        ] );
    ]
