(* Sharded-serving tests: the coordinator's scatter/gather agrees
   byte-for-byte with a single-node sketchrefine server, failover to a
   caught-up replica returns the identical package, hedged refines are
   deterministic whichever side wins, the per-shard circuit breaker
   trips/probes/closes, and a query over dead groups degrades into the
   typed [degraded] error instead of hanging or lying.

   The "smoke" group is the bounded (<10s) end-to-end proof and runs
   under the @shard-smoke alias; the "shard" group adds the slower
   scenarios (stalls, stale replicas, the kill/stall matrix); the
   "fence" group (@fence-smoke, also <10s) proves the membership
   fencing: lease installs/expiry/self-demotion, the fence fault
   directives, and the zombie split-brain experiment. *)

module R = Relalg.Relation
module Srv = Service.Server
module Cl = Service.Client
module Pr = Service.Protocol
module Ch = Service.Chaos
module Co = Service.Coordinator

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkgq-test-shard-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let server_exe =
  let p =
    match Sys.getenv_opt "PKGQ_SERVER_EXE" with
    | Some p -> p
    | None -> Filename.concat ".." "bin/pkgq_server.exe"
  in
  if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let galaxy = Datagen.Galaxy.generate ~seed:5 64
let attrs = [ "redshift" ]
let tau = 12

let q_max =
  "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 MAXIMIZE \
   SUM(P.redshift)"

let q_min =
  "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 2 AND \
   SUM(P.redshift) <= 1.5 MINIMIZE SUM(P.petro_rad)"

let queries = [ q_max; q_min ]

(* Response modulo the wall-time line (the only nondeterministic
   byte): status, package CSV, or the typed error. *)
let essence = function
  | Pr.Resp_ok body -> (
    match Pr.parse_result body with
    | Ok (status, _wall, csv) -> `Ok (status, csv)
    | Error e -> `Bad e)
  | Pr.Resp_err (code, msg) -> `Err (Pr.code_name code, msg)

(* ------------------------------------------------------------------ *)
(* Single-node reference                                              *)
(* ------------------------------------------------------------------ *)

(* The ground truth: an in-process sketchrefine server over the same
   table and partitioning config. Caches off so every answer is a real
   solve. *)
let reference_essences =
  lazy
    (let cfg =
       {
         (Srv.default_config ()) with
         Srv.method_ = Srv.Sketch_refine;
         attrs;
         tau = Some tau;
         workers = 2;
         queue = 16;
         result_cache = 0;
         plan_cache = 0;
         log_every = 0.;
       }
     in
     let t = Srv.start cfg galaxy in
     Fun.protect
       ~finally:(fun () -> Srv.stop t)
       (fun () ->
         let c = Cl.connect ~host:"127.0.0.1" ~port:(Srv.port t) () in
         Fun.protect
           ~finally:(fun () -> try Cl.close c with _ -> ())
           (fun () ->
             List.map (fun q -> (q, essence (Cl.query c q))) queries)))

let reference q = List.assoc q (Lazy.force reference_essences)

let check_ok_reference name q e =
  checkb (name ^ ": matches single-node sketchrefine") true
    (e = reference q);
  checkb (name ^ ": reference is a package") true
    (match e with `Ok _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fleet scaffolding                                                  *)
(* ------------------------------------------------------------------ *)

let fleet_args =
  [ "--attrs"; String.concat "," attrs; "--tau"; string_of_int tau ]

let coord_cfg () =
  {
    (Co.default_config ()) with
    Co.attrs;
    tau = Some tau;
    request_seconds = 20.;
    connect_timeout = 0.5;
    rpc_seconds = 0.5;
    retries = 1;
    hedge_ms = 40;
    breaker_probe_seconds = 0.2;
    ship_every = 0.02;
  }

let with_fleet name ~shards ~replicas ?(cfg = coord_cfg ()) f =
  let fleet =
    Ch.start_fleet ~exe:server_exe
      ~dir:(Filename.concat tmp_dir name)
      ~base:galaxy ~shards ~replicas ~extra_args:fleet_args ()
  in
  Fun.protect
    ~finally:(fun () -> Ch.stop_fleet fleet)
    (fun () ->
      let t = Co.start cfg (Ch.fleet_specs fleet) galaxy in
      Fun.protect ~finally:(fun () -> Co.stop t) (fun () -> f fleet t))

let with_faults spec f =
  (match Pkg.Faults.parse spec with
  | Ok s -> Pkg.Faults.install s
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Pkg.Faults.clear f

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let counter t k = Service.Metrics.get (Co.metrics t) k
let gauge t k = Service.Metrics.get_gauge (Co.metrics t) k

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else String.sub haystack i n = needle || go (i + 1)
  in
  go 0

(* ------------------------------------------------------------------ *)
(* smoke: equivalence, failover, breaker, injected faults             *)
(* ------------------------------------------------------------------ *)

let test_equivalence () =
  with_fleet "equiv" ~shards:2 ~replicas:0 (fun _fleet t ->
      (* in-process path *)
      List.iter
        (fun q -> check_ok_reference "eval" q (essence (Co.eval t q)))
        queries;
      (* and through the TCP front end *)
      let c = Cl.connect ~host:"127.0.0.1" ~port:(Co.port t) () in
      Fun.protect
        ~finally:(fun () -> try Cl.close c with _ -> ())
        (fun () ->
          List.iter
            (fun q -> check_ok_reference "front-end" q (essence (Cl.query c q)))
            queries);
      checkb "no failovers on a healthy fleet" true
        (counter t "shard_failovers" = 0))

let test_failover_equivalence () =
  with_fleet "failover" ~shards:2 ~replicas:1 (fun fleet t ->
      (* warm run, then kill shard 0's primary outright *)
      check_ok_reference "healthy" q_max (essence (Co.eval t q_max));
      Ch.kill_server (List.nth fleet 0).Ch.fm_primary;
      (* the replica is byte-identical (no writes ever happened), so
         failover must return the exact single-node package, not a
         degraded one *)
      check_ok_reference "after primary kill" q_max (essence (Co.eval t q_max));
      checkb "failover counted" true (counter t "shard_failovers" >= 1);
      check_ok_reference "again (routed around the corpse)" q_min
        (essence (Co.eval t q_min)))

let test_breaker_trip_probe_close () =
  let port = free_port () in
  let spec =
    {
      Co.primary = { Co.ep_host = "127.0.0.1"; ep_port = port };
      replica = None;
      wal = None;
    }
  in
  let cfg = { (coord_cfg ()) with Co.retries = 0; breaker_trips = 3 } in
  let t = Co.start cfg [ spec ] galaxy in
  Fun.protect
    ~finally:(fun () -> Co.stop t)
    (fun () ->
      (* nobody listens on the port: every eval burns one primary
         failure; the third trips the breaker *)
      for _ = 1 to 3 do
        match Co.eval t q_max with
        | Pr.Resp_err _ -> ()
        | Pr.Resp_ok _ -> Alcotest.fail "eval against a dead fleet succeeded"
      done;
      checki "breaker open" 1 (gauge t "shard0_breaker");
      checki "one trip counted" 1 (counter t "shard_breaker_trips");
      (* denied while open: no connection attempts, still a typed error *)
      (match Co.eval t q_max with
      | Pr.Resp_err _ -> ()
      | Pr.Resp_ok _ -> Alcotest.fail "open breaker must not answer ok");
      (* resurrect the shard on the very same port, wait out the probe
         window: the next eval probes, closes, and answers *)
      let scfg =
        {
          (Srv.default_config ()) with
          Srv.port;
          attrs;
          tau = Some tau;
          workers = 2;
          queue = 16;
          log_every = 0.;
        }
      in
      let srv = Srv.start scfg galaxy in
      Fun.protect
        ~finally:(fun () -> Srv.stop srv)
        (fun () ->
          Thread.delay (cfg.Co.breaker_probe_seconds +. 0.05);
          check_ok_reference "after probe readmission" q_max
            (essence (Co.eval t q_max));
          checki "breaker closed" 0 (gauge t "shard0_breaker");
          checkb "probe counted" true (counter t "shard_probes" >= 1);
          checkb "close counted" true (counter t "shard_breaker_closes" >= 1)))

let test_injected_crash_retries () =
  with_fleet "inj-crash" ~shards:1 ~replicas:0 (fun _fleet t ->
      with_faults "shard=0:crash" (fun () ->
          (* the one-shot injected crash fails the first attempt; the
             retry must recover to the exact answer *)
          check_ok_reference "after injected crash" q_max
            (essence (Co.eval t q_max));
          checkb "retry counted" true (counter t "shard_retries" >= 1)))

let test_injected_drop_reconnects () =
  with_fleet "inj-drop" ~shards:1 ~replicas:0 (fun _fleet t ->
      check_ok_reference "warm" q_max (essence (Co.eval t q_max));
      with_faults "shard=0:drop" (fun () ->
          check_ok_reference "after connection drop" q_max
            (essence (Co.eval t q_max))))

let test_stochastic_rejected_typed () =
  with_fleet "stoch-reject" ~shards:1 ~replicas:0 (fun _fleet t ->
      (* the coordinator cannot scatter scenario matrices: stochastic
         queries must be refused with a typed rejection that points at
         the single-node surfaces, never a crash or a wrong answer *)
      let q =
        "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 2 SUCH THAT COUNT(P.*) \
         = 2 AND SUM(P.redshift) >= 0.5 WITH PROBABILITY 0.9 MAXIMIZE \
         EXPECTED SUM(P.redshift)"
      in
      (match essence (Co.eval t q) with
      | `Err ("rejected", msg) ->
        checkb "rejection names the alternative" true
          (contains msg "stochastic" && contains msg "pkgq_server")
      | `Err (c, m) ->
        Alcotest.failf "expected rejected, got %s: %s" c m
      | `Ok _ -> Alcotest.fail "coordinator answered a stochastic query"
      | `Bad m -> Alcotest.failf "bad result: %s" m);
      (* and the same coordinator keeps answering deterministic queries *)
      check_ok_reference "after rejection" q_max (essence (Co.eval t q_max)))

(* ------------------------------------------------------------------ *)
(* shard: degradation, hedging, stale replicas, the kill matrix       *)
(* ------------------------------------------------------------------ *)

let test_degraded_omitted () =
  with_fleet "omit" ~shards:2 ~replicas:0 (fun fleet t ->
      check_ok_reference "healthy" q_max (essence (Co.eval t q_max));
      (* no replica to fail over to: shard 1's groups must be omitted
         and the answer typed degraded, never silently partial *)
      Ch.kill_server (List.nth fleet 1).Ch.fm_primary;
      (match Co.eval t q_max with
      | Pr.Resp_err (Pr.Degraded, msg) ->
        checkb "names omitted groups" true (contains msg "omitted")
      | Pr.Resp_err (c, m) ->
        Alcotest.failf "expected degraded, got %s: %s" (Pr.code_name c) m
      | Pr.Resp_ok _ ->
        Alcotest.fail "half-dead fleet answered ok without degradation");
      checkb "omissions counted" true
        (counter t "shard_failovers" >= 1 || counter t "shard_retries" >= 0))

let test_hedging_deterministic () =
  with_fleet "hedge" ~shards:1 ~replicas:1 (fun fleet t ->
      (* healthy: the primary wins the race *)
      check_ok_reference "primary wins" q_max (essence (Co.eval t q_max));
      (* SIGSTOP the primary: connections open, nothing answers — the
         sketch times out to the replica and every refine hedge fires;
         the replica's cold solves must produce the identical bytes *)
      let primary = (List.nth fleet 0).Ch.fm_primary in
      Ch.pause primary;
      Fun.protect
        ~finally:(fun () -> Ch.resume primary)
        (fun () ->
          check_ok_reference "replica wins under SIGSTOP" q_max
            (essence (Co.eval t q_max)));
      checkb "hedges fired or failover took over" true
        (counter t "shard_hedges" >= 1 || counter t "shard_failovers" >= 1);
      (* back to life: the same bytes once more *)
      Thread.delay 0.05;
      check_ok_reference "after resume" q_max (essence (Co.eval t q_max)))

let test_stale_replica_degrades () =
  with_fleet "stale" ~shards:1 ~replicas:1 (fun fleet t ->
      with_faults "repl=lag:1" (fun () ->
          (* write through the coordinator: the shipper forwards the
             record to the replica but withholds the newest ack, so the
             lag gauge shows 1 while the data is actually identical *)
          let extra =
            Datagen.Workload.append_batch ~dataset:`Galaxy ~rows:3 ~seed:77
          in
          let c = Cl.connect ~host:"127.0.0.1" ~port:(Co.port t) () in
          Fun.protect
            ~finally:(fun () -> try Cl.close c with _ -> ())
            (fun () ->
              match Cl.append c ~csv:(Relalg.Csv.to_string extra) with
              | Pr.Resp_ok _ -> ()
              | Pr.Resp_err (_, m) -> Alcotest.failf "append refused: %s" m);
          (* wait for the shipper to forward the record *)
          let deadline = Unix.gettimeofday () +. 5. in
          while
            counter t "shard_shipped" < 1 && Unix.gettimeofday () < deadline
          do
            Thread.delay 0.02
          done;
          checkb "record shipped" true (counter t "shard_shipped" >= 1);
          checki "lag gauge holds at one" 1 (gauge t "shard0_repl_lag");
          (* kill the primary: the replica serves, but its unacked tail
             means the answer is typed stale, not silently fresh *)
          Ch.kill_server (List.nth fleet 0).Ch.fm_primary;
          match Co.eval t q_max with
          | Pr.Resp_err (Pr.Degraded, msg) ->
            checkb "names stale groups" true (contains msg "stale")
          | Pr.Resp_err (code, m) ->
            Alcotest.failf "expected degraded, got %s: %s"
              (Pr.code_name code) m
          | Pr.Resp_ok _ ->
            Alcotest.fail "lagging replica must not answer as fresh"))

let test_injected_stall_hedges () =
  with_fleet "inj-stall" ~shards:1 ~replicas:1 (fun _fleet t ->
      check_ok_reference "warm" q_max (essence (Co.eval t q_max));
      with_faults "shard=0:stall:300" (fun () ->
          (* one exchange is held 300ms — far past the hedge delay; the
             answer must be byte-identical whichever side produced it *)
          check_ok_reference "under stall" q_max (essence (Co.eval t q_max))))

(* A bounded kill/stall matrix: every point must end in one of the
   sanctioned outcomes — the exact reference package, or a typed
   degraded/failed answer — within the query budget. Never a hang,
   never an unexplained wrong answer. *)
let test_kill_stall_matrix () =
  let scenarios =
    [ `Kill_primary 0; `Kill_primary 1; `Pause_primary 0; `Pause_primary 1 ]
  in
  List.iteri
    (fun i scenario ->
      with_fleet
        (Printf.sprintf "matrix-%d" i)
        ~shards:2 ~replicas:1
        (fun fleet t ->
          check_ok_reference "healthy point" q_max (essence (Co.eval t q_max));
          let target k = (List.nth fleet k).Ch.fm_primary in
          let cleanup =
            match scenario with
            | `Kill_primary k ->
              Ch.kill_server (target k);
              fun () -> ()
            | `Pause_primary k ->
              Ch.pause (target k);
              fun () -> Ch.resume (target k)
          in
          Fun.protect ~finally:cleanup (fun () ->
              let t0 = Unix.gettimeofday () in
              let e = essence (Co.eval t q_max) in
              let wall = Unix.gettimeofday () -. t0 in
              checkb
                (Printf.sprintf "point %d answers within 2x budget" i)
                true
                (wall <= 2. *. (coord_cfg ()).Co.request_seconds);
              match e with
              | `Ok _ ->
                checkb
                  (Printf.sprintf "point %d package is the reference" i)
                  true
                  (e = reference q_max)
              | `Err ("degraded", _) | `Err ("failed", _)
              | `Err ("deadline", _) ->
                ()
              | `Err (c, m) ->
                Alcotest.failf "point %d: unsanctioned outcome %s: %s" i c m
              | `Bad m -> Alcotest.failf "point %d: bad result: %s" i m)))
    scenarios

(* ------------------------------------------------------------------ *)
(* fence: leases, epochs, self-demotion, the zombie                   *)
(* ------------------------------------------------------------------ *)

let with_server f =
  let cfg =
    {
      (Srv.default_config ()) with
      Srv.attrs;
      tau = Some tau;
      workers = 2;
      queue = 16;
      result_cache = 0;
      plan_cache = 0;
      log_every = 0.;
    }
  in
  let t = Srv.start cfg galaxy in
  Fun.protect ~finally:(fun () -> Srv.stop t) @@ fun () ->
  let c = Cl.connect ~host:"127.0.0.1" ~port:(Srv.port t) () in
  Fun.protect ~finally:(fun () -> try Cl.close c with _ -> ()) @@ fun () ->
  f t c

let batch seed = Datagen.Workload.append_batch ~dataset:`Galaxy ~rows:3 ~seed

let scount t k = Service.Metrics.get (Srv.metrics t) k

let expect_fenced what = function
  | Pr.Resp_err (Pr.Fenced, _) -> ()
  | Pr.Resp_err (cd, m) ->
    Alcotest.failf "%s: expected fenced, got %s: %s" what (Pr.code_name cd) m
  | Pr.Resp_ok _ -> Alcotest.failf "%s: acked instead of fenced" what

let expect_ok what = function
  | Pr.Resp_ok _ -> ()
  | Pr.Resp_err (_, m) -> Alcotest.failf "%s: refused: %s" what m

let test_lease_protocol () =
  with_server (fun t c ->
      checki "fresh server at epoch 0" 0 (Srv.current_epoch t);
      expect_ok "grant" (Cl.lease c ~epoch:5 ~ttl_ms:60_000);
      checki "epoch installed" 5 (Srv.current_epoch t);
      (* regressing grants are refused typed, and change nothing *)
      expect_fenced "stale grant" (Cl.lease c ~epoch:3 ~ttl_ms:60_000);
      checki "epoch unchanged" 5 (Srv.current_epoch t);
      (* stale-stamped writes are refused typed; fresh stamps ack *)
      expect_fenced "stale stamp"
        (Cl.append ~epoch:3 c ~csv:(Relalg.Csv.to_string (batch 11)));
      expect_ok "fresh stamp"
        (Cl.append ~epoch:5 c ~csv:(Relalg.Csv.to_string (batch 12)));
      checkb "fence rejections counted" true (scount t "fence_rejections" >= 2))

let test_lease_expiry_demotes () =
  with_server (fun t c ->
      expect_ok "short grant" (Cl.lease c ~epoch:1 ~ttl_ms:1);
      Thread.delay 0.05;
      (* the lease ran out: the server self-demoted read-only *)
      (match Cl.append c ~csv:(Relalg.Csv.to_string (batch 21)) with
      | Pr.Resp_err (Pr.Fenced, msg) ->
        checkb "refusal names the lease" true (contains msg "lease")
      | Pr.Resp_err (cd, m) ->
        Alcotest.failf "expected fenced, got %s: %s" (Pr.code_name cd) m
      | Pr.Resp_ok _ -> Alcotest.fail "expired lease still acks");
      checkb "demotion counted" true (scount t "demotions" >= 1);
      (* a fresh grant restores writability *)
      expect_ok "regrant" (Cl.lease c ~epoch:2 ~ttl_ms:60_000);
      expect_ok "append after regrant"
        (Cl.append c ~csv:(Relalg.Csv.to_string (batch 22))))

let test_fence_fault_directives () =
  with_server (fun _t c ->
      with_faults "fence=lease:expire" (fun () ->
          expect_fenced "under fence=lease:expire"
            (Cl.append c ~csv:(Relalg.Csv.to_string (batch 31))));
      with_faults "fence=epoch:stale" (fun () ->
          expect_fenced "under fence=epoch:stale"
            (Cl.append c ~csv:(Relalg.Csv.to_string (batch 32))));
      (* cleared: the same write acks *)
      expect_ok "after clearing faults"
        (Cl.append c ~csv:(Relalg.Csv.to_string (batch 33))))

let test_lease_regime_renewals () =
  let cfg = { (coord_cfg ()) with Co.lease_ms = Some 300 } in
  with_fleet "lease-renew" ~shards:1 ~replicas:1 ~cfg (fun _fleet t ->
      (* renewals ride the shipper thread at lease/3 *)
      let deadline = Unix.gettimeofday () +. 5. in
      while counter t "lease_renewals" < 1 && Unix.gettimeofday () < deadline do
        Thread.delay 0.02
      done;
      checkb "leases renewed" true (counter t "lease_renewals" >= 1);
      checkb "epoch gauge exported" true (gauge t "shard0_epoch" >= 1);
      checki "primary still active" 0 (gauge t "shard0_active");
      (* writes ack normally under the lease regime *)
      let c = Cl.connect ~host:"127.0.0.1" ~port:(Co.port t) () in
      Fun.protect ~finally:(fun () -> try Cl.close c with _ -> ()) @@ fun () ->
      expect_ok "append under lease regime"
        (Cl.append c ~csv:(Relalg.Csv.to_string (batch 41))))

let test_zombie_split_brain () =
  let pre = [ batch 51; batch 52 ] in
  let during = [ batch 53; batch 54 ] in
  let post = [ batch 55; batch 56 ] in
  let r =
    Ch.run_zombie ~exe:server_exe
      ~dir:(Filename.concat tmp_dir "zombie")
      ~base:galaxy ~pre ~during ~post ~lease_ms:300 ~attrs ~tau ()
  in
  checki "no dual-primary acks" 0 r.Ch.z_dual_acks;
  checki "no acked-write loss" 0 r.Ch.z_lost_acks;
  checki "every zombie write answered the typed fence" (List.length post)
    r.Ch.z_zombie_fenced;
  checki "no untyped zombie refusals" 0 r.Ch.z_zombie_other;
  checkb "stale stamp fenced at the new primary" true r.Ch.z_stale_fenced;
  checkb "promotion happened" true (r.Ch.z_promotions >= 1);
  checkb "epoch advanced" true (r.Ch.z_epoch >= 2);
  checki "failover acks" (List.length during) r.Ch.z_failover_acks;
  checki "all phases acked" (List.length (pre @ during @ post)) r.Ch.z_acked

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "shard"
    [
      ( "smoke",
        [
          Alcotest.test_case "scatter/gather equals single-node" `Quick
            test_equivalence;
          Alcotest.test_case "failover to replica is byte-identical" `Quick
            test_failover_equivalence;
          Alcotest.test_case "breaker trips, probes, closes" `Quick
            test_breaker_trip_probe_close;
          Alcotest.test_case "injected crash is retried" `Quick
            test_injected_crash_retries;
          Alcotest.test_case "injected drop reconnects" `Quick
            test_injected_drop_reconnects;
          Alcotest.test_case "stochastic queries rejected typed" `Quick
            test_stochastic_rejected_typed;
        ] );
      ( "shard",
        [
          Alcotest.test_case "dead groups degrade typed" `Quick
            test_degraded_omitted;
          Alcotest.test_case "hedged refines are deterministic" `Quick
            test_hedging_deterministic;
          Alcotest.test_case "stale replica answers degraded" `Quick
            test_stale_replica_degrades;
          Alcotest.test_case "injected stall rides the hedge" `Quick
            test_injected_stall_hedges;
          Alcotest.test_case "kill/stall matrix" `Quick test_kill_stall_matrix;
        ] );
      ( "fence",
        [
          Alcotest.test_case "lease protocol installs and fences epochs"
            `Quick test_lease_protocol;
          Alcotest.test_case "expired lease self-demotes read-only" `Quick
            test_lease_expiry_demotes;
          Alcotest.test_case "fence fault directives fire typed" `Quick
            test_fence_fault_directives;
          Alcotest.test_case "lease regime renews and stays writable" `Quick
            test_lease_regime_renewals;
          Alcotest.test_case "zombie primary cannot split the brain" `Quick
            test_zombie_split_brain;
        ] );
    ]
