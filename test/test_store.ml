(* Store-layer tests: the binary segment format (round-trips, direct
   column-cache seeding, corruption -> typed errors), the partition
   catalog (hit/miss keying, zero rebuild on hit), and incremental
   maintenance (local re-splits, delete compaction, agreement with
   from-scratch repartitioning). *)

module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation
module P = Pkg.Partition

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkgq-test-store-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let tmp_path name = Filename.concat tmp_dir name

let rel_equal a b =
  S.equal (R.schema a) (R.schema b)
  && R.cardinality a = R.cardinality b
  && begin
       let ok = ref true in
       for i = 0 to R.cardinality a - 1 do
         if R.row a i <> R.row b i then ok := false
       done;
       !ok
     end

(* ------------------------------------------------------------------ *)
(* Random relations for the round-trip properties                     *)
(* ------------------------------------------------------------------ *)

(* Strings cover the CSV corner cases: quotes, commas, newlines,
   leading/trailing spaces, empties. *)
let tricky_strings =
  [|
    "plain"; ""; "with,comma"; "with \"quotes\""; "multi\nline"; " padded ";
    "comma,\"and\nquote\""; "0.5"; "NULL";
  |]

let gen_relation =
  QCheck.Gen.(
    pair (int_range 0 120) (int_range 0 9999) >|= fun (n, seed) ->
    let rng = Datagen.Prng.create (seed + 31) in
    let schema =
      S.make
        [
          { S.name = "i"; ty = V.TInt };
          { S.name = "f"; ty = V.TFloat };
          { S.name = "s"; ty = V.TStr };
          { S.name = "b"; ty = V.TBool };
        ]
    in
    let cell_null () = Datagen.Prng.uniform rng 0. 1. < 0.15 in
    R.of_rows schema
      (List.init n (fun _ ->
           [|
             (if cell_null () then V.Null
              else V.Int (int_of_float (Datagen.Prng.uniform rng (-1e6) 1e6)));
             (if cell_null () then V.Null
              else V.Float (Datagen.Prng.uniform rng (-1e9) 1e9));
             (if cell_null () then V.Null
              else
                V.Str
                  tricky_strings.(int_of_float
                                    (Datagen.Prng.uniform rng 0.
                                       (float_of_int
                                          (Array.length tricky_strings)))
                                  mod Array.length tricky_strings));
             (if cell_null () then V.Null
              else V.Bool (Datagen.Prng.uniform rng 0. 1. < 0.5));
           |])))

(* Segment round-trip: bit-exact relation recovery, via both the
   string image and the file path. *)
let segment_roundtrip_prop =
  QCheck.Test.make ~count:60 ~name:"segment round-trip is exact"
    (QCheck.make gen_relation)
    (fun rel ->
      let image = Store.Segment.to_string rel in
      let back = Store.Segment.of_string image in
      let path = tmp_path "roundtrip.seg" in
      Store.Segment.write path rel;
      let from_file = Store.Segment.read path in
      rel_equal rel back && rel_equal rel from_file
      && Store.Segment.fingerprint rel = Store.Segment.fingerprint back)

(* CSV -> binary -> CSV: what survives a CSV round-trip survives a
   segment round-trip of the same data unchanged. *)
let csv_segment_roundtrip_prop =
  QCheck.Test.make ~count:60 ~name:"csv and segment round-trips agree"
    (QCheck.make gen_relation)
    (fun rel ->
      let via_csv = Relalg.Csv.of_string (Relalg.Csv.to_string rel) in
      let via_seg = Store.Segment.of_string (Store.Segment.to_string rel) in
      (* CSV cannot represent every float bit pattern textually, but it
         does round-trip the values it prints; compare via a second CSV
         pass so both sides saw the same serialization. *)
      let seg_then_csv = Relalg.Csv.of_string (Relalg.Csv.to_string via_seg) in
      rel_equal via_csv seg_then_csv)

(* The numeric columns a loaded segment carries are pre-seeded into the
   relation's column cache and match a fresh extraction. *)
let test_segment_seeds_columns () =
  let rel = Datagen.Galaxy.generate ~seed:5 500 in
  let back = Store.Segment.of_string (Store.Segment.to_string rel) in
  List.iter
    (fun name ->
      let a = R.column_float rel name in
      let b = R.column_float back name in
      checkb (name ^ " column matches") true (a = b);
      (* cached access agrees with the fresh extraction *)
      let c = R.column_exn back name in
      checki (name ^ " cached length") (Array.length a)
        (Array.length (Relalg.Column.data c)))
    [ "ra"; "dec"; "redshift"; "petro_rad" ]

let test_csv_error_still_typed () =
  (* the store does not swallow the CSV layer's typed errors *)
  match Relalg.Csv.of_string "a:int\n1\nnot-an-int\n" with
  | exception Relalg.Csv.Error (3, _) -> ()
  | exception e ->
    Alcotest.failf "expected Csv.Error at line 3, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "malformed CSV accepted"

(* ------------------------------------------------------------------ *)
(* Corruption -> typed errors, never a backtrace                      *)
(* ------------------------------------------------------------------ *)

let expect_store_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: corrupt input accepted" name
  | exception Store.Segment.Error _ -> ()
  | exception e ->
    Alcotest.failf "%s: expected Segment.Error, got %s" name
      (Printexc.to_string e)

let test_corrupt_segment () =
  let rel = Datagen.Galaxy.generate ~seed:3 200 in
  let image = Store.Segment.to_string rel in
  let len = String.length image in
  (* truncations at every region: header, body, checksum *)
  List.iter
    (fun keep ->
      expect_store_error
        (Printf.sprintf "truncated to %d bytes" keep)
        (fun () -> Store.Segment.of_string (String.sub image 0 keep)))
    [ 0; 4; 12; 19; len / 2; len - 1 ];
  (* single flipped byte anywhere breaks the checksum *)
  List.iter
    (fun pos ->
      let b = Bytes.of_string image in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      expect_store_error
        (Printf.sprintf "flipped byte at %d" pos)
        (fun () -> Store.Segment.of_string (Bytes.to_string b)))
    [ 0; 9; 30; len / 2; len - 3 ];
  (* version and magic mismatches are reported before the checksum *)
  (match
     Store.Segment.of_string
       ("WRONGMAG" ^ String.sub image 8 (String.length image - 8))
   with
  | exception Store.Segment.Error msg ->
    checkb "magic named in error" true
      (String.length msg >= 9 && String.sub msg 0 9 = "bad magic")
  | _ -> Alcotest.fail "bad magic accepted");
  let b = Bytes.of_string image in
  Bytes.set b 8 '\255';
  match Store.Segment.of_string (Bytes.to_string b) with
  | exception Store.Segment.Error msg ->
    checkb "version named in error" true
      (String.length msg >= 11 && String.sub msg 0 11 = "unsupported")
  | _ -> Alcotest.fail "bad version accepted"

let test_corrupt_catalog_entry () =
  let dir = tmp_path "corrupt-cat" in
  let cat = Store.Catalog.open_dir dir in
  let rel = Datagen.Galaxy.generate ~seed:4 300 in
  let part = P.create ~tau:50 ~attrs:[ "ra"; "dec" ] rel in
  let key =
    {
      Store.Catalog.fingerprint = Store.Segment.fingerprint rel;
      attrs = [ "ra"; "dec" ];
      tau = 50;
      radius = P.No_radius;
      level = None;
    }
  in
  Store.Catalog.store cat key part;
  let path =
    Filename.concat (Filename.concat dir "partitions")
      (Store.Catalog.key_id key ^ ".part")
  in
  (* flip one byte in the stored entry *)
  let ic = open_in_bin path in
  let image = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string image in
  Bytes.set b (Bytes.length b / 2)
    (Char.chr (Char.code (Bytes.get b (Bytes.length b / 2)) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  expect_store_error "corrupt catalog entry" (fun () ->
      Store.Catalog.find cat key);
  (* listing skips the corrupt entry instead of failing *)
  checki "corrupt entry skipped in listing" 0
    (List.length (Store.Catalog.entries cat))

(* Injected store faults surface as the same typed error. *)
let with_faults spec f =
  (match Pkg.Faults.parse spec with
  | Ok s -> Pkg.Faults.install s
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Pkg.Faults.clear f

let test_store_faults_typed () =
  let rel = Datagen.Galaxy.generate ~seed:6 100 in
  let image = Store.Segment.to_string rel in
  with_faults "store=read:fail" (fun () ->
      expect_store_error "injected read fault" (fun () ->
          Store.Segment.of_string image));
  with_faults "store=checksum:fail" (fun () ->
      match Store.Segment.of_string image with
      | exception Store.Segment.Error msg ->
        checkb "fault flows through checksum verification" true
          (String.length msg >= 8 && String.sub msg 0 8 = "checksum")
      | _ -> Alcotest.fail "checksum fault ignored");
  (* cleared faults leave the path healthy *)
  checkb "clean read after clearing faults" true
    (rel_equal rel (Store.Segment.of_string image))

(* ------------------------------------------------------------------ *)
(* Partition.of_groups invariants (property)                          *)
(* ------------------------------------------------------------------ *)

let of_groups_invariants_prop =
  QCheck.Test.make ~count:60 ~name:"of_groups invariants on random assignments"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 200) (int_range 1 8) (int_range 0 9999)))
    (fun (n, k, seed) ->
      let rng = Datagen.Prng.create (seed + 7) in
      let schema =
        S.make
          [
            { S.name = "x"; ty = V.TFloat };
            { S.name = "y"; ty = V.TFloat };
            { S.name = "tag"; ty = V.TStr };
          ]
      in
      let rel =
        R.of_rows schema
          (List.init n (fun _ ->
               [|
                 V.Float (Datagen.Prng.uniform rng (-50.) 50.);
                 V.Float (Datagen.Prng.uniform rng (-50.) 50.);
                 V.Str "t";
               |]))
      in
      (* random assignment of every row to one of k buckets *)
      let buckets = Array.make k [] in
      for row = n - 1 downto 0 do
        let b = int_of_float (Datagen.Prng.uniform rng 0. (float_of_int k)) in
        let b = min b (k - 1) in
        buckets.(b) <- row :: buckets.(b)
      done;
      let member_sets =
        Array.to_list buckets
        |> List.filter (fun l -> l <> [])
        |> List.map Array.of_list
      in
      QCheck.assume (member_sets <> []);
      let attrs = [ "x"; "y" ] in
      let p = P.of_groups ~attrs rel member_sets in
      let cols = P.numeric_columns rel attrs in
      (* every row in exactly one group, and gid_of_row agrees *)
      let covered = Array.make n 0 in
      Array.iteri
        (fun gid (g : P.group) ->
          Array.iter
            (fun row ->
              covered.(row) <- covered.(row) + 1;
              if p.P.gid_of_row.(row) <> gid then
                QCheck.Test.fail_reportf "gid_of_row(%d)=%d, member of %d" row
                  p.P.gid_of_row.(row) gid)
            g.P.members)
        p.P.groups;
      Array.iteri
        (fun row c ->
          if c <> 1 then
            QCheck.Test.fail_reportf "row %d covered %d times" row c)
        covered;
      (* reps row j holds group j's centroid on the partitioning attrs,
         and centroid/radius match a recomputation *)
      Array.iteri
        (fun gid (g : P.group) ->
          let centroid, radius = P.centroid_radius cols g.P.members in
          if centroid <> g.P.centroid then
            QCheck.Test.fail_reportf "group %d centroid mismatch" gid;
          if Float.abs (radius -. g.P.radius) > 1e-9 then
            QCheck.Test.fail_reportf "group %d radius mismatch" gid;
          let rep = R.row p.P.reps gid in
          List.iteri
            (fun dim attr ->
              let i = S.index_of schema attr in
              match V.to_float_opt (Relalg.Tuple.get rep i) with
              | Some v ->
                if Float.abs (v -. centroid.(dim)) > 1e-9 then
                  QCheck.Test.fail_reportf
                    "group %d rep.%s=%g but centroid=%g" gid attr v
                    centroid.(dim)
              | None ->
                (* NULL rep cell only when every member is NULL there;
                   impossible here — the generator never emits NULLs *)
                QCheck.Test.fail_reportf "group %d rep.%s is NULL" gid attr)
            attrs)
        p.P.groups;
      P.check p rel = Ok ())

(* ------------------------------------------------------------------ *)
(* Catalog                                                            *)
(* ------------------------------------------------------------------ *)

let test_catalog_hit_no_rebuild () =
  let dir = tmp_path "cat-hit" in
  let cat = Store.Catalog.open_dir dir in
  let rel = Datagen.Galaxy.generate ~seed:9 800 in
  let attrs = [ "ra"; "redshift" ] in
  let tau = 100 in
  let key =
    {
      Store.Catalog.fingerprint = Store.Segment.fingerprint rel;
      attrs;
      tau;
      radius = P.No_radius;
      level = None;
    }
  in
  checkb "cold miss" true (Store.Catalog.find cat key = None);
  let built = ref 0 in
  let p1, s1 =
    Store.Catalog.lookup_or_build cat key ~build:(fun () ->
        incr built;
        P.create ~tau ~attrs rel)
  in
  checkb "first call builds" true (s1 = `Built && !built = 1);
  (* warm path: the build thunk must never run *)
  let p2, s2 =
    Store.Catalog.lookup_or_build cat key ~build:(fun () ->
        Alcotest.fail "catalog hit must not rebuild")
  in
  checkb "second call hits" true (s2 = `Hit);
  checkb "identical assignment" true
    (p2.P.gid_of_row = p1.P.gid_of_row);
  checkb "identical groups" true
    (Array.for_all2
       (fun (a : P.group) (b : P.group) ->
         a.P.members = b.P.members && a.P.centroid = b.P.centroid
         && a.P.radius = b.P.radius)
       p1.P.groups p2.P.groups);
  checkb "reps carried over" true (rel_equal p1.P.reps p2.P.reps);
  (match P.check ~tau p2 rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* a different tau is a different key -> miss, not a wrong hit *)
  let other = { key with Store.Catalog.tau = tau + 1 } in
  checkb "different tau misses" true (Store.Catalog.find cat other = None);
  let other = { key with Store.Catalog.fingerprint = "0000000000000000" } in
  checkb "different fingerprint misses" true
    (Store.Catalog.find cat other = None);
  (* the entry is listed with its key *)
  match Store.Catalog.entries cat with
  | [ e ] ->
    checks "entry id" (Store.Catalog.key_id key) e.Store.Catalog.id;
    checki "entry groups" (P.num_groups p1) e.Store.Catalog.groups;
    checki "entry rows" (R.cardinality rel) e.Store.Catalog.rows;
    checkb "entry bytes positive" true (e.Store.Catalog.bytes > 0)
  | es -> Alcotest.failf "expected 1 catalog entry, got %d" (List.length es)

let test_catalog_table_cache () =
  let dir = tmp_path "cat-table" in
  let cat = Store.Catalog.open_dir dir in
  let rel = Datagen.Galaxy.generate ~seed:10 400 in
  let csv = tmp_path "table.csv" in
  Relalg.Csv.write csv rel;
  checkb "not cached yet" false (Store.Catalog.table_cached cat csv);
  let r1, fp1 = Store.Catalog.load_table cat csv in
  checkb "cached after first load" true (Store.Catalog.table_cached cat csv);
  let r2, fp2 = Store.Catalog.load_table cat csv in
  checks "stable fingerprint" fp1 fp2;
  checkb "csv and segment loads agree" true (rel_equal r1 r2);
  (* .seg paths load directly *)
  let seg = tmp_path "direct.seg" in
  Store.Segment.write seg rel;
  let r3, _ = Store.Catalog.load_table cat seg in
  checkb "direct segment load" true (rel_equal rel r3)

(* ------------------------------------------------------------------ *)
(* Incremental maintenance                                            *)
(* ------------------------------------------------------------------ *)

let cluster_schema =
  S.make [ { S.name = "x"; ty = V.TFloat }; { S.name = "y"; ty = V.TFloat } ]

(* Two tight, well-separated clusters: appends aimed at one of them
   cannot leak into the other. *)
let cluster_rel ~per_cluster =
  let rng = Datagen.Prng.create 41 in
  let row cx cy =
    [|
      V.Float (cx +. Datagen.Prng.uniform rng (-1.) 1.);
      V.Float (cy +. Datagen.Prng.uniform rng (-1.) 1.);
    |]
  in
  R.of_rows cluster_schema
    (List.init per_cluster (fun _ -> row 0. 0.)
    @ List.init per_cluster (fun _ -> row 100. 100.))

let test_append_local_resplit () =
  let per = 40 in
  let tau = 50 in
  let rel = cluster_rel ~per_cluster:per in
  let p = P.create ~tau ~attrs:[ "x"; "y" ] rel in
  checki "one group per cluster" 2 (P.num_groups p);
  (* remember the far cluster's group physically *)
  let far_gid = p.P.gid_of_row.(2 * per - 1) in
  let far_group = p.P.groups.(far_gid) in
  let near_gid = 1 - far_gid in
  (* a batch landing inside the near cluster, overflowing it past tau *)
  let rng = Datagen.Prng.create 43 in
  let extra =
    R.of_rows cluster_schema
      (List.init (tau - per + 5) (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng (-1.) 1.);
             V.Float (Datagen.Prng.uniform rng (-1.) 1.);
           |]))
  in
  let rel', p', stats =
    Store.Maintain.append ~tau ~radius:P.No_radius p rel extra
  in
  checki "rows appended" (R.cardinality rel)
    (R.cardinality rel' - R.cardinality extra);
  checki "one group touched" 1 stats.Store.Maintain.groups_touched;
  checki "one group re-split" 1 stats.Store.Maintain.groups_resplit;
  checkb "group count grew" true
    (stats.Store.Maintain.groups_after > stats.Store.Maintain.groups_before);
  (* the untouched group's member array is carried over physically *)
  checkb "untouched group shared" true
    (Array.exists (fun (g : P.group) -> g.P.members == far_group.P.members)
       p'.P.groups);
  (* near-cluster rows stayed in near-cluster groups *)
  let near_members = ref 0 in
  Array.iter
    (fun (g : P.group) ->
      if g.P.members != far_group.P.members then
        near_members := !near_members + Array.length g.P.members)
    p'.P.groups;
  checki "near cluster holds the batch" (per + (tau - per + 5)) !near_members;
  ignore near_gid;
  match P.check ~tau p' rel' with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("maintained partition invalid: " ^ m)

let test_append_empty_and_mismatch () =
  let rel = cluster_rel ~per_cluster:10 in
  let p = P.create ~tau:15 ~attrs:[ "x"; "y" ] rel in
  let empty = R.of_rows cluster_schema [] in
  let rel', p', stats = Store.Maintain.append ~tau:15 ~radius:P.No_radius p rel empty in
  checkb "no-op append" true
    (rel' == rel && p' == p && stats.Store.Maintain.groups_touched = 0);
  let other = R.of_rows (S.make [ { S.name = "z"; ty = V.TFloat } ]) [] in
  checkb "schema mismatch rejected" true
    (try
       ignore (Store.Maintain.append ~tau:15 ~radius:P.No_radius p rel other);
       false
     with Invalid_argument _ -> true)

let test_delete_shrinks_in_place () =
  let per = 40 in
  let tau = 50 in
  let rel = cluster_rel ~per_cluster:per in
  let p = P.create ~tau ~attrs:[ "x"; "y" ] rel in
  let far_gid = p.P.gid_of_row.(2 * per - 1) in
  (* delete a third of the near cluster (row ids 0..per-1), with a
     duplicate id to exercise dedup *)
  let dead = Array.init (per / 3) (fun i -> 3 * i) in
  let dead = Array.append dead [| 0 |] in
  let rel', p', stats = Store.Maintain.delete p rel dead in
  checki "rows deleted" (per / 3) stats.Store.Maintain.rows_deleted;
  checki "cardinality shrank" (2 * per - per / 3) (R.cardinality rel');
  checki "only the near group touched" 1 stats.Store.Maintain.groups_touched;
  checki "no re-split on delete" 0 stats.Store.Maintain.groups_resplit;
  checki "group count stable" (P.num_groups p) (P.num_groups p');
  (* far group kept its geometry *)
  let far' =
    p'.P.groups.(p'.P.gid_of_row.(R.cardinality rel' - 1))
  in
  checkb "far centroid unchanged" true
    (far'.P.centroid = p.P.groups.(far_gid).P.centroid
    && far'.P.radius = p.P.groups.(far_gid).P.radius);
  (match P.check ~tau p' rel' with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("partition invalid after delete: " ^ m));
  (* deleting everything yields an empty, valid partitioning *)
  let all = Array.init (R.cardinality rel') (fun i -> i) in
  let rel'', p'', _ = Store.Maintain.delete p' rel' all in
  checki "empty relation" 0 (R.cardinality rel'');
  checki "no groups left" 0 (P.num_groups p'')

(* A maintained catalog answers like a from-scratch repartition: same
   feasibility, objective within the approximation regime. *)
let test_maintained_matches_scratch () =
  let n = 1200 in
  let rel = Datagen.Galaxy.generate ~seed:12 n in
  let d = List.hd (Datagen.Workload.galaxy_queries rel) in
  let attrs = d.Datagen.Workload.attrs in
  let tau = max 1 (n / 10) in
  let p = P.create ~tau ~attrs rel in
  let extra =
    (* fresh rows from the same distribution *)
    Datagen.Galaxy.generate ~seed:13 (n / 4)
  in
  let rel', p', _ = Store.Maintain.append ~tau ~radius:P.No_radius p rel extra in
  (match P.check ~tau p' rel' with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let scratch = P.create ~tau ~attrs rel' in
  let spec = Datagen.Workload.compile rel' d in
  let options =
    {
      Pkg.Sketch_refine.default_options with
      limits =
        { Ilp.Branch_bound.default_limits with max_seconds = 20. };
    }
  in
  let run part = Pkg.Sketch_refine.run ~options spec rel' part in
  let rm = run p' and rs = run scratch in
  let feasible (r : Pkg.Eval.report) =
    match r.Pkg.Eval.status with
    | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> true
    | _ -> false
  in
  checkb "maintained partition solves" true (feasible rm);
  checkb "scratch partition solves" true (feasible rs);
  match rm.Pkg.Eval.objective, rs.Pkg.Eval.objective with
  | Some om, Some os ->
    (* same approximation regime, not bit equality: both are
       SketchRefine answers over valid partitionings of the same data *)
    let lo, hi = (min om os, max om os) in
    checkb "objectives within 2x" true
      (hi <= 2. *. Float.abs lo +. 1e-9 || Float.abs (hi -. lo) < 1e-6)
  | _ -> Alcotest.fail "missing objective"

(* After Maintain.append, a *fresh* catalog handle on the same
   directory (a cold process) must serve the maintained partitioning
   and the appended table bytes — nothing lives only in the memory of
   the process that did the append. *)
let test_append_survives_cold_reload () =
  let dir = tmp_path "cold-reload" in
  let rel = cluster_rel ~per_cluster:60 in
  let tau = 40 in
  let attrs = [ "x"; "y" ] in
  let key fp =
    { Store.Catalog.fingerprint = fp; attrs; tau; radius = P.No_radius;
      level = None }
  in
  let cat = Store.Catalog.open_dir dir in
  let p = P.create ~tau ~attrs rel in
  Store.Catalog.store cat (key (Store.Segment.fingerprint rel)) p;
  let extra =
    let rng = Datagen.Prng.create 47 in
    R.of_rows cluster_schema
      (List.init 7 (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng (-1.) 1.);
             V.Float (Datagen.Prng.uniform rng (-1.) 1.);
           |]))
  in
  let rel', p', _ = Store.Maintain.append ~tau ~radius:P.No_radius p rel extra in
  let fp' = Store.Segment.fingerprint rel' in
  Store.Catalog.store cat (key fp') p';
  Store.Segment.write (Filename.concat dir "table.seg") rel';
  (* cold handle: no shared memory with [cat] *)
  let cold = Store.Catalog.open_dir dir in
  let reloaded, _raw_fp =
    Store.Catalog.load_table cold (Filename.concat dir "table.seg")
  in
  checkb "table bytes survive reload" true (rel_equal rel' reloaded);
  checks "fingerprint stable across processes" fp'
    (Store.Segment.fingerprint reloaded);
  (match Store.Catalog.find cold (key fp') with
  | None -> Alcotest.fail "maintained partitioning missing after reload"
  | Some q ->
    checkb "same assignment" true (q.P.gid_of_row = p'.P.gid_of_row);
    checkb "same reps" true (rel_equal q.P.reps p'.P.reps);
    (match P.check ~tau q reloaded with
    | Ok () -> ()
    | Error m -> Alcotest.fail m));
  (* the pre-append entry is still there, under the old fingerprint *)
  checkb "old entry intact" true
    (Store.Catalog.find cold (key (Store.Segment.fingerprint rel)) <> None)

(* Publishes go through tempfile+fsync+rename: a finished store leaves
   no temp droppings, and leftovers from a crashed writer are swept on
   the next open, never loaded. *)
let test_catalog_sweeps_stale_tmp () =
  let dir = tmp_path "cat-sweep" in
  let cat = Store.Catalog.open_dir dir in
  let rel = Datagen.Galaxy.generate ~seed:12 300 in
  let key =
    {
      Store.Catalog.fingerprint = Store.Segment.fingerprint rel;
      attrs = [ "ra" ];
      tau = 60;
      radius = P.No_radius;
      level = None;
    }
  in
  Store.Catalog.store cat key (P.create ~tau:60 ~attrs:[ "ra" ] rel);
  let no_tmp sub =
    Sys.readdir (Filename.concat dir sub)
    |> Array.for_all (fun f ->
           Filename.extension f <> ".tmp"
           && Filename.extension (Filename.remove_extension f) <> ".tmp")
  in
  checkb "no temp droppings in partitions/" true (no_tmp "partitions");
  checkb "no temp droppings in tables/" true (no_tmp "tables");
  (* plant crashed-writer leftovers, both tmp-name shapes *)
  let plant sub name =
    let path = Filename.concat (Filename.concat dir sub) name in
    let oc = open_out path in
    output_string oc "half-written garbage";
    close_out oc;
    path
  in
  let stale =
    [
      plant "partitions" "deadbeef.part.tmp.123";
      plant "partitions" "cafe.part.tmp";
      plant "tables" "0123.seg.tmp.9";
    ]
  in
  let cold = Store.Catalog.open_dir dir in
  List.iter
    (fun p -> checkb ("swept " ^ Filename.basename p) false (Sys.file_exists p))
    stale;
  (* and the real entry still loads *)
  checkb "entry survives the sweep" true
    (Store.Catalog.find cold key <> None)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "store"
    [
      ( "segment",
        [
          QCheck_alcotest.to_alcotest segment_roundtrip_prop;
          QCheck_alcotest.to_alcotest csv_segment_roundtrip_prop;
          Alcotest.test_case "seeds column cache" `Quick
            test_segment_seeds_columns;
          Alcotest.test_case "csv errors stay typed" `Quick
            test_csv_error_still_typed;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "corrupt segment" `Quick test_corrupt_segment;
          Alcotest.test_case "corrupt catalog entry" `Quick
            test_corrupt_catalog_entry;
          Alcotest.test_case "injected store faults" `Quick
            test_store_faults_typed;
        ] );
      ( "partition invariants",
        [ QCheck_alcotest.to_alcotest of_groups_invariants_prop ] );
      ( "catalog",
        [
          Alcotest.test_case "hit does not rebuild" `Quick
            test_catalog_hit_no_rebuild;
          Alcotest.test_case "table cache" `Quick test_catalog_table_cache;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "append re-splits locally" `Quick
            test_append_local_resplit;
          Alcotest.test_case "append edge cases" `Quick
            test_append_empty_and_mismatch;
          Alcotest.test_case "delete shrinks in place" `Quick
            test_delete_shrinks_in_place;
          Alcotest.test_case "maintained matches scratch" `Quick
            test_maintained_matches_scratch;
        ] );
      ( "durability",
        [
          Alcotest.test_case "append survives cold reload" `Quick
            test_append_survives_cold_reload;
          Alcotest.test_case "atomic publish, stale tmp swept" `Quick
            test_catalog_sweeps_stale_tmp;
        ] );
    ]
