(* End-to-end integration tests: PaQL text in, packages out, across the
   whole stack (parser -> analyzer -> translation -> solver -> package
   validation), plus CSV persistence and the full SketchRefine
   pipeline on the synthetic datasets. *)

module V = Relalg.Value
module R = Relalg.Relation

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

let compile rel q =
  Paql.Translate.compile_exn (R.schema rel) (Paql.Parser.parse_exn q)

(* The paper's running example, end to end, checked against the known
   optimum for a hand-built table. *)
let test_meal_planner_end_to_end () =
  let schema =
    Relalg.Schema.make
      [
        { Relalg.Schema.name = "gluten"; ty = V.TStr };
        { Relalg.Schema.name = "kcal"; ty = V.TFloat };
        { Relalg.Schema.name = "saturated_fat"; ty = V.TFloat };
      ]
  in
  let rel =
    R.of_rows schema
      [
        [| V.Str "free"; V.Float 0.7; V.Float 1.8 |];
        [| V.Str "full"; V.Float 0.6; V.Float 0.1 |];
        [| V.Str "free"; V.Float 0.9; V.Float 1.5 |];
        [| V.Str "free"; V.Float 0.4; V.Float 0.3 |];
        [| V.Str "free"; V.Float 1.2; V.Float 9.0 |];
        [| V.Str "free"; V.Float 0.3; V.Float 0.2 |];
      ]
  in
  let q =
    {|SELECT PACKAGE(R) AS P
      FROM Recipes R REPEAT 0
      WHERE R.gluten = 'free'
      SUCH THAT COUNT(P.*) = 3 AND SUM(P.kcal) BETWEEN 2.0 AND 2.5
      MINIMIZE SUM(P.saturated_fat)|}
  in
  let spec = compile rel q in
  let r = Pkg.Direct.run spec rel in
  let p = Option.get r.Pkg.Eval.package in
  (* feasible triples (gluten-free, kcal in [2, 2.5]):
     {0,2,3} kcal 2.0 fat 3.6 | {0,2,5} kcal 1.9 no | {0,4,5} 2.2 fat 11 |
     {2,4,5} 2.4 fat 10.7 | {0,2,3} ... optimum is {0,2,3} with 3.6 *)
  checkf "optimal fat" 3.6 (Option.get r.Pkg.Eval.objective);
  Alcotest.(check (list (pair int int))) "chosen meals" [ (0, 1); (2, 1); (3, 1) ]
    (Pkg.Package.entries p)

(* Example 1 variant exercising every PaQL feature at once. *)
let test_full_feature_query () =
  let rng = Datagen.Prng.create 31 in
  let schema =
    Relalg.Schema.make
      [
        { Relalg.Schema.name = "kcal"; ty = V.TFloat };
        { Relalg.Schema.name = "protein"; ty = V.TFloat };
        { Relalg.Schema.name = "carbs"; ty = V.TFloat };
      ]
  in
  let rel =
    R.of_rows schema
      (List.init 400 (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng 0.2 1.2);
             V.Float (Datagen.Prng.uniform rng 0. 40.);
             V.Float (Datagen.Prng.uniform rng 0. 80.);
           |]))
  in
  let q =
    {|SELECT PACKAGE(R) AS P FROM Meals R REPEAT 1
      WHERE R.kcal <= 1.0
      SUCH THAT COUNT(P.*) = 6 AND
                SUM(P.kcal) BETWEEN 3.0 AND 4.5 AND
                AVG(P.carbs) <= 45 AND
                (SELECT COUNT(*) FROM P WHERE protein > 20) >=
                (SELECT COUNT(*) FROM P WHERE protein <= 20)
      MINIMIZE SUM(P.carbs)|}
  in
  let spec = compile rel q in
  let d = Pkg.Direct.run spec rel in
  let p = Option.get d.Pkg.Eval.package in
  checkb "feasible" true (Pkg.Package.feasible spec p);
  checki "cardinality six" 6 (Pkg.Package.cardinality p);
  (* validate the conditional-count constraint on the materialized
     package with independent aggregate machinery *)
  let m = Pkg.Package.materialize p in
  let hi =
    match
      Relalg.Aggregate.over
        ~where:(Relalg.Expr.Cmp (Relalg.Expr.Gt, Relalg.Expr.Attr "protein",
                                 Relalg.Expr.Const (V.Float 20.)))
        m Relalg.Aggregate.Count_star
    with
    | V.Int i -> i
    | _ -> -1
  in
  checkb "conditional count holds" true (hi >= 6 - hi)

(* CSV persistence: write the dataset out, read it back, get the same
   package. *)
let test_csv_query_roundtrip () =
  let rel = Datagen.Galaxy.generate ~seed:21 300 in
  let q =
    "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) = 4 \
     AND SUM(P.redshift) <= 1.0 MAXIMIZE SUM(P.petro_rad)"
  in
  let spec = compile rel q in
  let r1 = Pkg.Direct.run spec rel in
  let path = Filename.temp_file "pkgq" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Relalg.Csv.write path rel;
      let rel2 = Relalg.Csv.read path in
      let spec2 = compile rel2 q in
      let r2 = Pkg.Direct.run spec2 rel2 in
      checkf "same objective after csv round-trip"
        (Option.get r1.Pkg.Eval.objective)
        (Option.get r2.Pkg.Eval.objective))

(* Full pipeline on both synthetic datasets: Direct vs SketchRefine on
   one workload query each, checking feasibility and ratio sanity. *)
let run_pipeline ~dataset rel (d : Datagen.Workload.def) =
  let qrel = Datagen.Workload.query_relation ~dataset rel d in
  let spec = Datagen.Workload.compile qrel d in
  let limits = { Ilp.Branch_bound.default_limits with max_nodes = 30_000; max_seconds = 15. } in
  let direct = Pkg.Direct.run ~limits spec qrel in
  let tau = max 1 (R.cardinality qrel / 10) in
  let part = Pkg.Partition.create ~tau ~attrs:d.attrs qrel in
  let sr =
    Pkg.Sketch_refine.run
      ~options:{ Pkg.Sketch_refine.default_options with limits }
      spec qrel part
  in
  (match sr.Pkg.Eval.package with
  | Some p -> checkb (d.name ^ " sr feasible") true (Pkg.Package.feasible spec p)
  | None -> Alcotest.fail (d.name ^ ": SketchRefine produced no package"));
  match direct.Pkg.Eval.objective, sr.Pkg.Eval.objective with
  | Some od, Some os ->
    let ratio = if d.maximize then od /. os else os /. od in
    checkb (d.name ^ " ratio >= ~1") true (ratio > 0.99)
  | _ -> ()

let test_galaxy_pipeline () =
  let rel = Datagen.Galaxy.generate ~seed:1 3000 in
  let qs = Datagen.Workload.galaxy_queries rel in
  run_pipeline ~dataset:`Galaxy rel (List.nth qs 0);
  run_pipeline ~dataset:`Galaxy rel (List.nth qs 4)

let test_tpch_pipeline () =
  let rel = Datagen.Tpch.generate ~seed:2 4000 in
  let qs = Datagen.Workload.tpch_queries rel in
  run_pipeline ~dataset:`Tpch rel (List.nth qs 0);
  run_pipeline ~dataset:`Tpch rel (List.nth qs 4)

(* The Theorem 3 radius machinery end to end: an epsilon-radius
   partitioning yields a near-perfect ratio on a minimization query
   that is noticeably approximate without it. *)
let test_radius_improves_minimization () =
  let rng = Datagen.Prng.create 77 in
  let schema =
    Relalg.Schema.make
      [
        { Relalg.Schema.name = "cost"; ty = V.TFloat };
        { Relalg.Schema.name = "weight"; ty = V.TFloat };
      ]
  in
  let rel =
    R.of_rows schema
      (List.init 400 (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng 10. 100.);
             V.Float (Datagen.Prng.uniform rng 10. 100.);
           |]))
  in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 6 AND \
     SUM(P.weight) >= 300 MINIMIZE SUM(P.cost)"
  in
  let spec = compile rel q in
  let d = Pkg.Direct.run spec rel in
  let od = Option.get d.Pkg.Eval.objective in
  let epsilon = 0.2 in
  let part =
    Pkg.Partition.create
      ~radius:(Pkg.Partition.Theorem { epsilon; maximize = false })
      ~tau:50 ~attrs:[ "cost"; "weight" ] rel
  in
  let s = Pkg.Sketch_refine.run spec rel part in
  match s.Pkg.Eval.objective with
  | Some os ->
    (* Theorem 3, minimization: os <= (1 + eps)^6 od *)
    checkb "within (1+eps)^6" true (os <= (((1. +. epsilon) ** 6.) *. od) +. 1e-6)
  | None -> Alcotest.fail "radius-limited SketchRefine found nothing"

(* PaQL error surface: a malformed query must fail cleanly, not crash. *)
let test_error_paths () =
  let rel = Datagen.Galaxy.generate ~seed:1 50 in
  checkb "parse error surfaces" true
    (Result.is_error (Paql.Parser.parse "SELECT PACKAGE FROM"));
  let bad_attr =
    "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT SUM(P.nonexistent) <= 1"
  in
  checkb "analysis error surfaces" true
    (match Paql.Parser.parse bad_attr with
    | Ok ast -> Result.is_error (Paql.Analyze.check (R.schema rel) ast)
    | Error _ -> false)

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "meal planner optimum" `Quick
            test_meal_planner_end_to_end;
          Alcotest.test_case "all PaQL features" `Quick
            test_full_feature_query;
          Alcotest.test_case "csv round-trip query" `Quick
            test_csv_query_roundtrip;
          Alcotest.test_case "error paths" `Quick test_error_paths;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "galaxy" `Slow test_galaxy_pipeline;
          Alcotest.test_case "tpch" `Slow test_tpch_pipeline;
          Alcotest.test_case "radius bound (minimize)" `Slow
            test_radius_improves_minimization;
        ] );
    ]
