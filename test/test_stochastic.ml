(* Stochastic package queries: the WITH PROBABILITY / EXPECTED grammar
   layer, the Monte-Carlo scenario generator (round-trips, per-index
   determinism), the SummarySearch driver (validated probability,
   typed unsatisfiable-p outcome, worker-count determinism, agreement
   with DIRECT on deterministic queries, the naive scenario-expanded
   baseline), and the server surface (auto-routing, STATS gauges, the
   knob-aware result-cache key).

   The "smoke" group is the bounded (<10s) proof and runs under the
   @stoch-smoke alias; the "stoch" group adds the slower scenarios. *)

module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation
module E = Pkg.Eval
module Sc = Datagen.Scenario
module St = Pkg.Stochastic
module T = Paql.Translate
module W = Datagen.Workload
module Srv = Service.Server
module Cl = Service.Client
module Pr = Service.Protocol

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let galaxy = Datagen.Galaxy.generate ~seed:3 300

let compile rel q =
  T.compile_exn (R.schema rel) (Paql.Parser.parse_exn q)

let package_rows p = List.sort compare (Pkg.Package.entries p)

(* fast, deterministic solver options: no env reads, small scenario
   sets, a bounded wall budget *)
let opts ?(scenarios = 24) ?(validation = 100) ?(summaries = 2) ?(seed = 42)
    ?noise () =
  {
    (St.default_options ()) with
    St.scenarios;
    validation;
    summaries;
    max_summaries = 16;
    seed;
    noise;
    max_seconds = 20.;
  }

let q_feasible =
  "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = 3 \
   AND SUM(P.u) >= 45 WITH PROBABILITY 0.9 MAXIMIZE SUM(P.r)"

let q_expected =
  "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = 3 \
   AND SUM(P.u) >= 45 WITH PROBABILITY 0.9 MAXIMIZE EXPECTED SUM(P.r)"

let q_unsat =
  "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = 3 \
   AND SUM(P.u) >= 1000 WITH PROBABILITY 0.95 MAXIMIZE SUM(P.r)"

let q_deterministic =
  "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) = 4 \
   AND SUM(P.redshift) <= 1.5 MAXIMIZE SUM(P.petro_rad)"

(* ------------------------------------------------------------------ *)
(* Grammar / translate layer                                          *)
(* ------------------------------------------------------------------ *)

let test_grammar_compiles () =
  let spec = compile galaxy q_feasible in
  checkb "is_stochastic" true (T.is_stochastic spec);
  checki "one stochastic constraint" 1 (List.length spec.T.stochastic);
  let c = List.hd spec.T.stochastic in
  checkb "probability carried" true (c.T.sprob = 0.9);
  checkb "lower bound carried" true (c.T.slo = 45.);
  checkb "upper side open" true (c.T.shi = infinity);
  checks "attr recorded" "u" (String.concat "," c.T.sattrs);
  (* the deterministic constraint set is untouched: COUNT only *)
  checki "count constraint stays deterministic" 1
    (List.length spec.T.constraints);
  checkb "plain objective" true (not spec.T.expected_objective);
  let spec2 = compile galaxy q_expected in
  checkb "EXPECTED objective flagged" true spec2.T.expected_objective;
  let det = compile galaxy q_deterministic in
  checkb "deterministic query is not stochastic" false (T.is_stochastic det)

let test_grammar_pretty_roundtrip () =
  List.iter
    (fun q ->
      let ast = Paql.Parser.parse_exn q in
      let printed = Paql.Pretty.to_string ast in
      let ast' = Paql.Parser.parse_exn printed in
      checks
        ("pretty round-trip: " ^ q)
        (Paql.Pretty.to_string ast)
        (Paql.Pretty.to_string ast');
      checks "fingerprint stable under pretty"
        (Paql.Fingerprint.of_query q)
        (Paql.Fingerprint.of_query printed))
    [ q_feasible; q_expected; q_unsat ]

let test_grammar_analyze_rejects () =
  let errors q =
    match Paql.Analyze.check (R.schema galaxy) (Paql.Parser.parse_exn q) with
    | Ok () -> []
    | Error errs -> errs
  in
  let rejects q = errors q <> [] in
  checkb "p > 1 rejected" true
    (rejects
       "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 AND \
        SUM(P.u) >= 45 WITH PROBABILITY 1.5 MAXIMIZE SUM(P.r)");
  checkb "p = 0 rejected" true
    (rejects
       "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 AND \
        SUM(P.u) >= 45 WITH PROBABILITY 0 MAXIMIZE SUM(P.r)");
  checkb "equality with probability rejected" true
    (rejects
       "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 AND \
        SUM(P.u) = 45 WITH PROBABILITY 0.9 MAXIMIZE SUM(P.r)");
  checkb "valid stochastic query accepted" false (rejects q_feasible);
  checkb "p = 1 accepted" false
    (rejects
       "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 AND \
        SUM(P.u) >= 45 WITH PROBABILITY 1 MAXIMIZE SUM(P.r)")

(* ------------------------------------------------------------------ *)
(* Scenario generator                                                 *)
(* ------------------------------------------------------------------ *)

let test_scenario_parse_render () =
  (match Sc.parse_specs "u:0.3,r:0.1@0.8" with
  | Error e -> Alcotest.fail e
  | Ok specs ->
    checki "two specs" 2 (List.length specs);
    let u = List.hd specs and r = List.nth specs 1 in
    checks "first attr" "u" u.Sc.attr;
    checkb "default corr" true (u.Sc.corr = Sc.default_corr);
    checkb "explicit corr" true (r.Sc.corr = 0.8);
    checks "render round-trip" "u:0.3,r:0.1@0.8" (Sc.render_specs specs));
  let bad s =
    match Sc.parse_specs s with Ok _ -> false | Error _ -> true
  in
  checkb "empty rejected" true (bad "");
  checkb "missing sigma rejected" true (bad "u");
  checkb "negative sigma rejected" true (bad "u:-1");
  checkb "corr > 1 rejected" true (bad "u:0.3@1.5");
  checkb "duplicate attr rejected" true (bad "u:0.3,u:0.2")

let scenario_spec_arb =
  (* valid spec lists over distinct galaxy float attrs *)
  let attr_pool = [ "u"; "g"; "r"; "i"; "z"; "redshift" ] in
  QCheck.make
    ~print:(fun specs -> Sc.render_specs specs)
    QCheck.Gen.(
      let* n = int_range 1 (List.length attr_pool) in
      let* sigmas = list_size (return n) (float_bound_exclusive 2.0) in
      let* corrs = list_size (return n) (float_bound_inclusive 1.0) in
      return
        (List.mapi
           (fun i (sigma, corr) ->
             {
               Sc.attr = List.nth attr_pool i;
               sigma = Float.abs sigma;
               corr;
             })
           (List.combine sigmas corrs)))

let scenario_roundtrip_prop =
  QCheck.Test.make ~count:100 ~name:"scenario spec render/parse round-trip"
    scenario_spec_arb (fun specs ->
      (* rendering truncates to %g precision, so the property is
         idempotence after one normalization pass: parse(render(-))
         is the identity on anything that already went through it *)
      match Sc.parse_specs (Sc.render_specs specs) with
      | Error _ -> false
      | Ok normal -> (
        match Sc.parse_specs (Sc.render_specs normal) with
        | Error _ -> false
        | Ok normal' -> normal = normal'))

let test_scenario_determinism () =
  let specs =
    match Sc.parse_specs "u:0.3,r:0.1@0.8" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let small = Sc.generate_exn ~seed:7 ~scenarios:4 specs galaxy in
  let large = Sc.generate_exn ~seed:7 ~scenarios:16 specs galaxy in
  List.iter
    (fun attr ->
      let ds = Option.get (Sc.deltas small attr) in
      let dl = Option.get (Sc.deltas large attr) in
      for s = 0 to 3 do
        checkb
          (Printf.sprintf "%s scenario %d bitwise identical" attr s)
          true
          (ds.(s) = dl.(s))
      done)
    [ "u"; "r" ];
  (* a different seed moves every matrix *)
  let other = Sc.generate_exn ~seed:8 ~scenarios:4 specs galaxy in
  checkb "seed changes the stream" false
    (Option.get (Sc.deltas small "u")
    = Option.get (Sc.deltas other "u"))

let test_scenario_realize () =
  let specs =
    match Sc.parse_specs "u:0.5" with Ok s -> s | Error e -> Alcotest.fail e
  in
  let t = Sc.generate_exn ~seed:7 ~scenarios:2 specs galaxy in
  let real = Sc.realize t 0 in
  checkb "schema preserved" true (S.equal (R.schema real) (R.schema galaxy));
  checki "cardinality preserved" (R.cardinality galaxy) (R.cardinality real);
  let col rel a = R.column rel a in
  checkb "noisy column perturbed" false (col real "u" = col galaxy "u");
  checkb "other columns untouched" true (col real "r" = col galaxy "r");
  (* non-float noise attrs are a typed error, not a crash *)
  checkb "int column rejected" true
    (match Sc.generate ~seed:1 ~scenarios:2 [ { Sc.attr = "objid"; sigma = 1.; corr = 0.5 } ] galaxy with
    | Error _ -> true
    | Ok _ -> false)

(* ------------------------------------------------------------------ *)
(* SummarySearch driver                                               *)
(* ------------------------------------------------------------------ *)

let test_summary_meets_probability () =
  let spec = compile galaxy q_feasible in
  let report, stats = St.run ~options:(opts ()) spec galaxy in
  checkb "solved" true
    (match report.E.status with
    | E.Optimal | E.Feasible _ -> true
    | _ -> false);
  let pkg = Option.get report.E.package in
  checki "package count" 3
    (List.fold_left (fun a (_, c) -> a + c) 0 (Pkg.Package.entries pkg));
  checkb "validated out of sample >= p" true (stats.St.st_validated >= 0.9);
  checkb "scenario stats populated" true
    (stats.St.st_scenarios = 24 && stats.St.st_validation = 100);
  checkb "at least one round" true (stats.St.st_rounds >= 1)

let test_expected_objective_solves () =
  let spec = compile galaxy q_expected in
  let report, stats = St.run ~options:(opts ()) spec galaxy in
  checkb "solved with EXPECTED objective" true
    (match report.E.status with
    | E.Optimal | E.Feasible _ -> true
    | _ -> false);
  checkb "validated >= p" true (stats.St.st_validated >= 0.9)

let test_unsatisfiable_p_is_typed () =
  let spec = compile galaxy q_unsat in
  let t0 = Unix.gettimeofday () in
  let report, _ = St.run ~options:(opts ()) spec galaxy in
  let dt = Unix.gettimeofday () -. t0 in
  checkb "typed infeasible (never a hang)" true
    (match report.E.status with
    | E.Infeasible | E.Failed _ -> true
    | _ -> false);
  checkb "well within deadline" true (dt < 20.)

let test_deterministic_query_delegates () =
  let spec = compile galaxy q_deterministic in
  let direct = Pkg.Direct.run spec galaxy in
  let report, stats = St.run ~options:(opts ()) spec galaxy in
  checkb "same status" true (direct.E.status = report.E.status);
  checkb "same package" true
    (match (direct.E.package, report.E.package) with
    | Some a, Some b -> package_rows a = package_rows b
    | _ -> false);
  checki "no scenarios drawn" 0 stats.St.st_scenarios

let test_naive_baseline_agrees () =
  let spec = compile galaxy q_feasible in
  let options = opts ~scenarios:12 ~validation:100 () in
  let naive, nstats = St.run_naive ~options spec galaxy in
  checkb "naive solved" true
    (match naive.E.status with
    | E.Optimal | E.Feasible _ -> true
    | _ -> false);
  checkb "naive validated >= p (generous bound)" true
    (nstats.St.st_validated >= 0.9);
  let summary, sstats = St.run ~options spec galaxy in
  checkb "summary solved too" true
    (match summary.E.status with
    | E.Optimal | E.Feasible _ -> true
    | _ -> false);
  (* the summary answer is conservative: never better than the exact
     scenario-expanded optimum (maximization, small tolerance) *)
  (match (naive.E.objective, summary.E.objective) with
  | Some n, Some s -> checkb "summary is conservative" true (s <= n +. 1e-6)
  | _ -> Alcotest.fail "missing objective");
  checkb "summary stats populated" true (sstats.St.st_summaries >= 1)

let test_naive_needs_finite_repeat () =
  let q =
    "SELECT PACKAGE(G) AS P FROM Galaxy G SUCH THAT COUNT(P.*) = 3 AND \
     SUM(P.u) >= 45 WITH PROBABILITY 0.9 MAXIMIZE SUM(P.r)"
  in
  let spec = compile galaxy q in
  let report, _ = St.run_naive ~options:(opts ()) spec galaxy in
  checkb "typed data error without REPEAT" true
    (match report.E.status with
    | E.Failed { E.kind = E.Data_error _; _ } -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Determinism across worker counts                                   *)
(* ------------------------------------------------------------------ *)

let with_workers ~scan ~price f =
  let old_price = Lp.Simplex.price_workers () in
  Unix.putenv "PKGQ_SCAN_WORKERS" (string_of_int scan);
  Lp.Simplex.set_price_workers price;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PKGQ_SCAN_WORKERS" "";
      Lp.Simplex.set_price_workers old_price)
    f

let test_determinism_across_workers () =
  let spec = compile galaxy q_feasible in
  let specs =
    match Sc.parse_specs "u:0.4" with Ok s -> s | Error e -> Alcotest.fail e
  in
  let run ~scan ~price =
    with_workers ~scan ~price (fun () ->
        let matrix =
          Option.get
            (Sc.deltas (Sc.generate_exn ~seed:42 ~scenarios:8 specs galaxy) "u")
        in
        let report, stats = St.run ~options:(opts ()) spec galaxy in
        match (report.E.package, report.E.objective) with
        | Some p, Some obj ->
          (matrix, package_rows p, Int64.bits_of_float obj,
           Int64.bits_of_float stats.St.st_validated)
        | _ -> Alcotest.fail "no package")
  in
  let base = run ~scan:1 ~price:1 in
  List.iter
    (fun (scan, price) ->
      checkb
        (Printf.sprintf "scan=%d price=%d bitwise identical" scan price)
        true
        (run ~scan ~price = base))
    [ (4, 1); (1, 3); (8, 2) ]

(* ------------------------------------------------------------------ *)
(* Workload round-trip                                                *)
(* ------------------------------------------------------------------ *)

let test_workload_stochastic_roundtrip () =
  let defs =
    W.mixed ~seed:11 ~repeat_rate:0.3 ~stochastic_rate:0.6 ~dataset:`Galaxy
      ~n:20 galaxy
  in
  let stochastic =
    List.filter
      (fun (d : W.def) -> T.is_stochastic (compile galaxy d.W.paql))
      defs
  in
  checkb "stream contains stochastic queries" true (stochastic <> []);
  checkb "stream still contains deterministic queries" true
    (List.length stochastic < List.length defs);
  (* every entry parses, analyzes, and survives the file format *)
  let parsed = W.parse_workload (W.render_workload defs) in
  checki "render/parse preserves count" (List.length defs)
    (List.length parsed);
  List.iter2
    (fun (d : W.def) (name, paql) ->
      checks "name preserved" d.W.name name;
      checks "text preserved" d.W.paql paql;
      match Paql.Analyze.check (R.schema galaxy) (Paql.Parser.parse_exn paql) with
      | Ok () -> ()
      | Error errs -> Alcotest.failf "%s: %s" name (String.concat "; " errs))
    defs parsed;
  (* rate 0 reproduces the historical stream byte-for-byte *)
  let plain = W.mixed ~seed:11 ~repeat_rate:0.3 ~dataset:`Galaxy ~n:20 galaxy in
  let plain' =
    W.mixed ~seed:11 ~repeat_rate:0.3 ~stochastic_rate:0. ~dataset:`Galaxy
      ~n:20 galaxy
  in
  checkb "rate 0 is the historical stream" true
    (W.render_workload plain = W.render_workload plain')

let workload_stochastic_prop =
  QCheck.Test.make ~count:20
    ~name:"stochastic workload entries always parse and analyze"
    QCheck.(pair (int_range 1 1000) (int_range 1 15))
    (fun (seed, n) ->
      let defs =
        W.mixed ~seed ~repeat_rate:0.4 ~stochastic_rate:0.5 ~dataset:`Galaxy
          ~n galaxy
      in
      let rendered = W.render_workload defs in
      let parsed = W.parse_workload rendered in
      List.length parsed = List.length defs
      && List.for_all
           (fun (_, paql) ->
             match Paql.Parser.parse paql with
             | Error _ -> false
             | Ok ast -> (
               match Paql.Analyze.check (R.schema galaxy) ast with
               | Ok () -> true
               | Error _ -> false))
           parsed)

(* ------------------------------------------------------------------ *)
(* Server surface: auto-routing, gauges, knob-aware result cache      *)
(* ------------------------------------------------------------------ *)

let base_cfg () =
  {
    (Srv.default_config ()) with
    Srv.workers = 2;
    queue = 16;
    result_cache = 64;
    plan_cache = 16;
    request_seconds = 30.;
    log_every = 0.;
  }

let with_server cfg rel f =
  let t = Srv.start cfg rel in
  Fun.protect ~finally:(fun () -> Srv.stop t) (fun () -> f t)

let with_client t f =
  let c = Cl.connect ~host:"127.0.0.1" ~port:(Srv.port t) () in
  Fun.protect ~finally:(fun () -> Cl.close c) (fun () -> f c)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv name (match old with Some v -> v | None -> ""))
    f

let test_server_routes_and_caches () =
  (* default method is DIRECT: the stochastic query must auto-route *)
  with_env "PKGQ_SCENARIOS" "16" (fun () ->
      with_env "PKGQ_VALIDATE" "80" (fun () ->
          with_server (base_cfg ()) galaxy (fun t ->
              with_client t (fun c ->
                  (match Cl.query c q_feasible with
                  | Pr.Resp_ok _ -> ()
                  | Pr.Resp_err (code, msg) ->
                    Alcotest.failf "stochastic query failed: %s %s"
                      (Pr.code_name code) msg);
                  checki "one solve" 1 (Srv.solve_count t);
                  let m = Srv.metrics t in
                  checki "scenario gauge" 16
                    (Service.Metrics.get_gauge m "stoch_scenarios");
                  checki "validation gauge" 80
                    (Service.Metrics.get_gauge m "stoch_validation");
                  checkb "rounds gauge set" true
                    (Service.Metrics.get_gauge m "stoch_rounds" >= 1);
                  checkb "validated gauge sane" true
                    (let pm =
                       Service.Metrics.get_gauge m "stoch_validated_pm"
                     in
                     pm >= 900 && pm <= 1000);
                  (* identical knobs: served from the result cache *)
                  ignore (Cl.query c q_feasible);
                  checki "cache hit (no second solve)" 1 (Srv.solve_count t);
                  (* re-tuned scenario knob: different key, fresh solve —
                     the regression the knob-aware key exists for *)
                  with_env "PKGQ_SCENARIOS" "24" (fun () ->
                      ignore (Cl.query c q_feasible);
                      checki "knob change misses the cache" 2
                        (Srv.solve_count t));
                  (* deterministic queries keep their historical key *)
                  ignore (Cl.query c q_deterministic);
                  ignore (Cl.query c q_deterministic);
                  checki "deterministic query cached" 3 (Srv.solve_count t)))))

let test_server_stochastic_method () =
  (* --method stochastic also accepts deterministic queries *)
  let cfg = { (base_cfg ()) with Srv.method_ = Srv.Stochastic } in
  with_server cfg galaxy (fun t ->
      with_client t (fun c ->
          match Cl.query c q_deterministic with
          | Pr.Resp_ok _ -> ()
          | Pr.Resp_err (code, msg) ->
            Alcotest.failf "deterministic under stochastic method: %s %s"
              (Pr.code_name code) msg))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "stochastic"
    [
      ( "smoke",
        [
          Alcotest.test_case "grammar compiles" `Quick test_grammar_compiles;
          Alcotest.test_case "pretty round-trip" `Quick
            test_grammar_pretty_roundtrip;
          Alcotest.test_case "analyze rejects bad probabilities" `Quick
            test_grammar_analyze_rejects;
          Alcotest.test_case "scenario parse/render" `Quick
            test_scenario_parse_render;
          Alcotest.test_case "scenario per-index determinism" `Quick
            test_scenario_determinism;
          Alcotest.test_case "scenario realize" `Quick test_scenario_realize;
          Alcotest.test_case "summary meets probability" `Quick
            test_summary_meets_probability;
          Alcotest.test_case "unsatisfiable p is typed" `Quick
            test_unsatisfiable_p_is_typed;
          Alcotest.test_case "deterministic query delegates" `Quick
            test_deterministic_query_delegates;
        ] );
      ( "stoch",
        [
          Alcotest.test_case "EXPECTED objective solves" `Quick
            test_expected_objective_solves;
          Alcotest.test_case "naive baseline agrees" `Quick
            test_naive_baseline_agrees;
          Alcotest.test_case "naive needs finite REPEAT" `Quick
            test_naive_needs_finite_repeat;
          Alcotest.test_case "deterministic across workers" `Quick
            test_determinism_across_workers;
          Alcotest.test_case "workload stochastic round-trip" `Quick
            test_workload_stochastic_roundtrip;
          Alcotest.test_case "server routes, gauges, knob-aware cache" `Quick
            test_server_routes_and_caches;
          Alcotest.test_case "server stochastic method" `Quick
            test_server_stochastic_method;
          QCheck_alcotest.to_alcotest scenario_roundtrip_prop;
          QCheck_alcotest.to_alcotest workload_stochastic_prop;
        ] );
    ]
