(* Resilience-layer tests: the fault-injection grammar, typed CSV
   errors, deadline propagation, the failure taxonomy, and — driven by
   deterministic faults — every rung of the Section 4.4 fallback ladder
   plus the Section 4.5 worker-crash/repair path.

   Every test that installs faults clears them on the way out;
   [Faults.install] resets the global ILP call counter, so each case is
   deterministic in isolation and in sequence. *)

module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation
module B = Ilp.Branch_bound
module E = Pkg.Eval

let checkb = Alcotest.check Alcotest.bool

let with_faults spec f =
  (match Pkg.Faults.parse spec with
  | Ok s -> Pkg.Faults.install s
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg);
  Fun.protect ~finally:Pkg.Faults.clear f

let compile rel q =
  Paql.Translate.compile_exn (R.schema rel) (Paql.Parser.parse_exn q)

let kind_of (r : E.report) =
  match r.E.status with E.Failed f -> Some f.E.kind | _ -> None

(* ------------------------------------------------------------------ *)
(* Fault-spec grammar                                                 *)
(* ------------------------------------------------------------------ *)

let test_faults_parse () =
  let ok s = match Pkg.Faults.parse s with Ok _ -> true | Error _ -> false in
  checkb "single ilp directive" true (ok "ilp=3:limit");
  checkb "stage directive" true (ok "stage=sketch:infeasible");
  checkb "conjunction" true (ok "stage=refine,group=2:raise");
  checkb "multiple directives" true
    (ok "ilp=1:limit; stage=hybrid:infeasible; worker=0:crash");
  checkb "spaces tolerated" true (ok " ilp=1 : raise ");
  checkb "empty spec rejected" false (ok "");
  checkb "unknown action rejected" false (ok "ilp=1:explode");
  checkb "unknown key rejected" false (ok "cpu=1:limit");
  checkb "missing action rejected" false (ok "ilp=1");
  checkb "non-numeric call rejected" false (ok "ilp=x:limit");
  checkb "crash needs worker" false (ok "ilp=1:crash");
  checkb "worker only crashes" false (ok "worker=0:limit");
  checkb "store read fault" true (ok "store=read:fail");
  checkb "store checksum fault" true (ok "store=checksum:fail");
  checkb "store alongside others" true (ok "store=read:fail; ilp=1:limit");
  checkb "unknown store selector rejected" false (ok "store=x:fail");
  checkb "store only fails" false (ok "store=read:limit");
  checkb "store cannot combine" false (ok "store=read,group=1:fail");
  checkb "lp warm fault" true (ok "lp=warm:reject");
  checkb "lp singular fault" true (ok "lp=singular:reject");
  checkb "lp alongside others" true (ok "lp=warm:reject; ilp=1:limit");
  checkb "unknown lp selector rejected" false (ok "lp=x:reject");
  checkb "lp only rejects" false (ok "lp=warm:limit");
  checkb "lp cannot combine" false (ok "lp=warm,group=1:reject");
  checkb "shard crash" true (ok "shard=1:crash");
  checkb "shard drop" true (ok "shard=0:drop");
  checkb "shard stall with ms" true (ok "shard=2:stall:300");
  checkb "repl lag" true (ok "repl=lag:2");
  checkb "shard alongside others" true (ok "shard=0:crash; repl=lag:1");
  checkb "shard needs index" false (ok "shard=x:crash");
  checkb "shard unknown action rejected" false (ok "shard=1:bogus");
  checkb "shard stall needs ms" false (ok "shard=1:stall");
  checkb "shard stall ms numeric" false (ok "shard=1:stall:soon");
  checkb "repl lag numeric" false (ok "repl=lag:x");
  checkb "repl lag non-negative" false (ok "repl=lag:-1");
  checkb "shard cannot combine" false (ok "shard=1,group=2:crash");
  checkb "partition build fault" true (ok "partition=build:fail");
  checkb "partition level fault" true (ok "partition=level:2");
  checkb "partition level zero" true (ok "partition=level:0");
  checkb "partition alongside others" true
    (ok "partition=level:1; ilp=1:limit");
  checkb "partition level negative rejected" false (ok "partition=level:-1");
  checkb "partition level non-numeric rejected" false (ok "partition=level:x");
  checkb "partition unknown selector rejected" false (ok "partition=x:fail");
  checkb "partition build only fails" false (ok "partition=build:limit");
  checkb "partition cannot combine" false (ok "partition=build,group=1:fail");
  checkb "stoch scenario fault" true (ok "stoch=scenario:fail");
  checkb "stoch validate fault" true (ok "stoch=validate:fail");
  checkb "stoch alongside others" true (ok "stoch=scenario:fail; ilp=1:limit");
  checkb "stoch unknown selector rejected" false (ok "stoch=x:fail");
  checkb "stoch only fails" false (ok "stoch=scenario:limit");
  checkb "stoch cannot combine" false (ok "stoch=scenario,group=1:fail");
  checkb "summary stage directive" true (ok "stage=summary:limit");
  checkb "scenario stage name known" true (ok "stage=scenario:raise");
  checkb "validate stage name known" true (ok "stage=validate:raise");
  checkb "fence lease expiry fault" true (ok "fence=lease:expire");
  checkb "fence stale epoch fault" true (ok "fence=epoch:stale");
  checkb "fence alongside others" true (ok "fence=lease:expire; ilp=1:limit");
  checkb "fence unknown selector rejected" false (ok "fence=x:expire");
  checkb "fence lease only expires" false (ok "fence=lease:stale");
  checkb "fence epoch only stales" false (ok "fence=epoch:expire");
  checkb "fence cannot combine" false (ok "fence=lease,group=1:expire")

let test_faults_selector_semantics () =
  with_faults "ilp=2:infeasible" (fun () ->
      checkb "active" true (Pkg.Faults.active ());
      let p =
        Lp.Problem.make ~sense:Lp.Problem.Maximize
          ~vars:[ Lp.Problem.var ~integer:true ~hi:1. 1. ]
          ~rows:[ Lp.Problem.row [ (0, 1.) ] ~lo:neg_infinity ~hi:1. ]
      in
      (match Pkg.Faults.solve ~stage:E.Direct p with
      | B.Optimal _ -> ()
      | r -> Alcotest.failf "call 1 should be clean, got %a" B.pp_result r);
      match Pkg.Faults.solve ~stage:E.Direct p with
      | B.Infeasible _ -> ()
      | r -> Alcotest.failf "call 2 should be forced infeasible, got %a"
               B.pp_result r);
  checkb "cleared" false (Pkg.Faults.active ())

(* The fence accessors are standing while installed (no call budget to
   spend) and independent of each other: lease expiry must not imply a
   stale epoch, and vice versa. *)
let test_faults_fence_accessors () =
  checkb "lease accessor idle" false (Pkg.Faults.fence_lease_expires ());
  checkb "epoch accessor idle" false (Pkg.Faults.fence_epoch_stale ());
  with_faults "fence=lease:expire" (fun () ->
      checkb "lease expiry standing" true (Pkg.Faults.fence_lease_expires ());
      checkb "lease expiry repeats" true (Pkg.Faults.fence_lease_expires ());
      checkb "lease does not stale epochs" false
        (Pkg.Faults.fence_epoch_stale ()));
  with_faults "fence=epoch:stale" (fun () ->
      checkb "stale epoch standing" true (Pkg.Faults.fence_epoch_stale ());
      checkb "stale does not expire leases" false
        (Pkg.Faults.fence_lease_expires ()));
  with_faults "fence=lease:expire; fence=epoch:stale" (fun () ->
      checkb "both standing together" true
        (Pkg.Faults.fence_lease_expires () && Pkg.Faults.fence_epoch_stale ()));
  checkb "cleared after uninstall" false
    (Pkg.Faults.fence_lease_expires () || Pkg.Faults.fence_epoch_stale ())

(* ------------------------------------------------------------------ *)
(* Typed CSV errors                                                   *)
(* ------------------------------------------------------------------ *)

let test_csv_error_lines () =
  let err s =
    match Relalg.Csv.of_string s with
    | exception Relalg.Csv.Error (line, msg) -> Some (line, msg)
    | _ -> None
  in
  (match err "a:int,b:int\n1,2\n3,4\n5\n" with
  | Some (4, msg) ->
    checkb "arity message" true
      (msg = "row has 1 field(s), header has 2")
  | other -> Alcotest.failf "arity error not at line 4: %s"
               (match other with
               | Some (l, m) -> Printf.sprintf "line %d: %s" l m
               | None -> "no error"))
  ;
  (match err "a:int\n1\nnope\n" with
  | Some (3, msg) ->
    checkb "value message names column and type" true
      (msg = "cannot parse \"nope\" as int (column a)")
  | _ -> Alcotest.fail "bad int not reported at line 3");
  (match err "a:str\nok\n\"open\n" with
  | Some (3, "unterminated quoted field") -> ()
  | _ -> Alcotest.fail "unterminated quote not reported at its open line");
  (match err "a:widget\n1\n" with
  | Some (1, _) -> ()
  | _ -> Alcotest.fail "bad header type not reported at line 1");
  (* newlines inside quoted fields still advance the line counter *)
  match err "a:str,b:int\n\"multi\nline\",1\noops\n" with
  | Some (4, _) -> ()
  | Some (l, m) -> Alcotest.failf "expected line 4, got %d: %s" l m
  | None -> Alcotest.fail "arity error after quoted newline not raised"

(* ------------------------------------------------------------------ *)
(* Taxonomy: limits map to typed failure kinds                        *)
(* ------------------------------------------------------------------ *)

let galaxy_rel = Datagen.Galaxy.generate ~seed:11 400

let galaxy_spec rel =
  compile rel
    "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) = 5 \
     AND SUM(P.redshift) <= 1.5 MAXIMIZE SUM(P.petro_rad)"

let test_direct_node_limit () =
  (* a narrow SUM window makes the root LP fractional and defeats the
     rounding heuristic, so a zero node budget yields Limit without an
     incumbent *)
  let spec =
    compile galaxy_rel
      "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) = 5 \
       AND SUM(P.redshift) BETWEEN 0.8 AND 0.80001 MAXIMIZE SUM(P.petro_rad)"
  in
  let limits = { B.default_limits with max_nodes = 0 } in
  let r = Pkg.Direct.run ~limits spec galaxy_rel in
  match r.E.status with
  | E.Failed f ->
    checkb "node limit kind" true (f.E.kind = E.Node_limit);
    checkb "direct stage" true (f.E.stage = Some E.Direct)
  | E.Feasible _ -> () (* the rounding heuristic may find an incumbent *)
  | s -> Alcotest.failf "expected node-limit failure, got %a" E.pp_status s

let test_direct_iteration_limit () =
  let spec = galaxy_spec galaxy_rel in
  let limits = { B.default_limits with max_simplex_iters = 1 } in
  let r = Pkg.Direct.run ~limits spec galaxy_rel in
  match kind_of r with
  | Some E.Iteration_limit -> ()
  | _ -> Alcotest.failf "expected iteration-limit failure, got %a" E.pp_status
           r.E.status

let test_simplex_iter_budget () =
  let p =
    Lp.Problem.make ~sense:Lp.Problem.Maximize
      ~vars:(List.init 20 (fun i -> Lp.Problem.var ~hi:1. (float_of_int i)))
      ~rows:
        [ Lp.Problem.row (List.init 20 (fun i -> (i, 1.))) ~lo:neg_infinity
            ~hi:3. ]
  in
  (match Lp.Simplex.solve ~max_iters:1 p with
  | Lp.Simplex.Iter_limit -> ()
  | r -> Alcotest.failf "expected Iter_limit, got %a" Lp.Simplex.pp_result r);
  let iters = ref 0 in
  (match Lp.Simplex.solve ~iterations:iters p with
  | Lp.Simplex.Optimal _ -> ()
  | r -> Alcotest.failf "expected Optimal, got %a" Lp.Simplex.pp_result r);
  checkb "pivot count recorded" true (!iters > 0)

let test_stop_reason_recorded () =
  (* LP optimum 2.5 is fractional, so the search must branch *)
  let problem =
    Lp.Problem.make ~sense:Lp.Problem.Maximize
      ~vars:(List.init 3 (fun _ -> Lp.Problem.var ~integer:true ~hi:1. 1.))
      ~rows:
        [ Lp.Problem.row [ (0, 1.); (1, 1.); (2, 1.) ] ~lo:neg_infinity
            ~hi:2.5 ]
  in
  let r = B.solve ~limits:{ B.default_limits with max_nodes = 0 } problem in
  let st = B.stats_of r in
  checkb "stopped by nodes" true (st.B.stopped = Some B.Stop_nodes);
  let r2 =
    B.solve ~limits:{ B.default_limits with max_simplex_iters = 1 } problem
  in
  checkb "stopped by iterations" true
    ((B.stats_of r2).B.stopped = Some B.Stop_iterations);
  let clean = B.solve problem in
  checkb "natural completion has no stop reason" true
    ((B.stats_of clean).B.stopped = None)

(* ------------------------------------------------------------------ *)
(* Injection containment                                              *)
(* ------------------------------------------------------------------ *)

let sr_run ?(fallbacks = Pkg.Sketch_refine.default_options.fallbacks)
    ?(max_seconds = 60.) ?options rel spec part =
  let options =
    match options with
    | Some o -> o
    | None ->
      { Pkg.Sketch_refine.default_options with fallbacks; max_seconds }
  in
  Pkg.Sketch_refine.run ~options spec rel part

let galaxy_part rel = Pkg.Partition.create ~tau:100 ~attrs:[ "redshift" ] rel

let test_injected_raise_contained () =
  let spec = galaxy_spec galaxy_rel in
  with_faults "ilp=1:raise" (fun () ->
      let r = Pkg.Direct.run spec galaxy_rel in
      match kind_of r with
      | Some (E.Solver_error _) -> ()
      | _ -> Alcotest.failf "direct should contain the injected raise, got %a"
               E.pp_status r.E.status);
  with_faults "ilp=1:raise" (fun () ->
      let part = galaxy_part galaxy_rel in
      let r = sr_run galaxy_rel spec part in
      match kind_of r with
      | Some (E.Solver_error _) -> ()
      | _ ->
        Alcotest.failf "sketchrefine should contain the injected raise, got %a"
          E.pp_status r.E.status)

let test_injected_limit_direct () =
  let spec = galaxy_spec galaxy_rel in
  with_faults "ilp=1:limit" (fun () ->
      let r = Pkg.Direct.run spec galaxy_rel in
      checkb "forced limit becomes node-limit failure" true
        (kind_of r = Some E.Node_limit))

(* store=read|checksum faults abort segment reads with the typed store
   error — the CLI maps it to the data-error exit code, never a
   backtrace. *)
let test_injected_store_fault () =
  let image = Store.Segment.to_string galaxy_rel in
  let typed spec =
    with_faults spec (fun () ->
        match Store.Segment.of_string image with
        | exception Store.Segment.Error _ -> true
        | exception _ -> false
        | _ -> false)
  in
  checkb "read fault typed" true (typed "store=read:fail");
  checkb "checksum fault typed" true (typed "store=checksum:fail");
  match Store.Segment.of_string image with
  | _ -> () (* healthy again once faults are cleared *)
  | exception e ->
    Alcotest.failf "clean read failed after clearing faults: %s"
      (Printexc.to_string e)

(* lp= faults sabotage the warm-start basis on its way into the solver;
   the contract is that the answer never changes — a dropped basis
   solves cold, a singular one is rejected and solves cold. *)
let test_injected_lp_fault_preserves_answer () =
  let spec = galaxy_spec galaxy_rel in
  let basis_out = ref None in
  let clean = Pkg.Direct.run ~basis_out spec galaxy_rel in
  checkb "clean run saved a basis" true (!basis_out <> None);
  let warm_basis = !basis_out in
  let objective (r : E.report) =
    match (r.E.status, r.E.objective) with
    | E.Optimal, Some o -> o
    | _ -> Alcotest.failf "run not optimal: %a" E.pp_status r.E.status
  in
  let reference = objective clean in
  let under fault =
    with_faults fault (fun () ->
        checkb
          (fault ^ " registered")
          true
          (Pkg.Faults.lp_fault
             (if fault = "lp=warm:reject" then Pkg.Faults.Lp_warm_drop
              else Pkg.Faults.Lp_singular));
        objective (Pkg.Direct.run ?warm_basis spec galaxy_rel))
  in
  Alcotest.check (Alcotest.float 1e-6) "warm-drop fault preserves objective"
    reference
    (under "lp=warm:reject");
  Alcotest.check (Alcotest.float 1e-6) "singular fault preserves objective"
    reference
    (under "lp=singular:reject");
  (* and the clean warm path agrees too, once faults are gone *)
  Alcotest.check (Alcotest.float 1e-6) "clean warm run agrees" reference
    (objective (Pkg.Direct.run ?warm_basis spec galaxy_rel))

(* ------------------------------------------------------------------ *)
(* Fallback ladder under injected faults                              *)
(* ------------------------------------------------------------------ *)

(* Merge_groups must recurse all the way down to a single group (where
   the sketch is the original problem) and only then report
   infeasibility, when every sketch and hybrid attempt is faulted. *)
let test_merge_groups_bottoms_out () =
  let rel = Datagen.Galaxy.generate ~seed:3 200 in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:50 ~attrs:[ "redshift" ] rel in
  checkb "starts with several groups" true (Pkg.Partition.num_groups part > 1);
  with_faults "stage=sketch:infeasible; stage=hybrid:infeasible" (fun () ->
      let r = sr_run ~fallbacks:[ Pkg.Sketch_refine.Merge_groups ] rel spec part in
      (match r.E.status with
      | E.Infeasible -> ()
      | s -> Alcotest.failf "expected clean infeasible, got %a" E.pp_status s);
      (* one faulted sketch per merge level down to a single group *)
      checkb "recursion attempted several sketches" true
        (r.E.counters.E.ilp_calls >= 3))

let test_hybrid_exhaustion () =
  let rel = Datagen.Galaxy.generate ~seed:3 200 in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:50 ~attrs:[ "redshift" ] rel in
  with_faults "stage=sketch:infeasible; stage=hybrid:infeasible" (fun () ->
      let r = sr_run ~fallbacks:[ Pkg.Sketch_refine.Hybrid_sketch ] rel spec part in
      match r.E.status with
      | E.Infeasible -> ()
      | s ->
        Alcotest.failf "hybrid exhaustion should report infeasible, got %a"
          E.pp_status s)

(* A genuinely false-infeasible sketch: group centroids average the
   extreme z values away (z alternates 0/20, so every representative
   has z = 10), making SUM(P.z) >= 30 unreachable over representatives
   while two z=20 originals satisfy it easily. Drop_attributes must
   extract a non-empty IIS, drop z, re-partition and succeed. *)
let false_infeasible_case () =
  let schema =
    S.make [ { S.name = "y"; ty = V.TFloat }; { S.name = "z"; ty = V.TFloat } ]
  in
  let rel =
    R.of_rows schema
      (List.init 8 (fun i ->
           [| V.Float (float_of_int i *. 10.);
              V.Float (if i mod 2 = 0 then 0. else 20.) |]))
  in
  let spec =
    compile rel
      "SELECT PACKAGE(T) AS P FROM T T REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
       SUM(P.z) >= 30.0 MAXIMIZE SUM(P.z)"
  in
  let part =
    Pkg.Partition.create ~max_fanout_dims:1 ~tau:4 ~attrs:[ "y"; "z" ] rel
  in
  (rel, spec, part)

let test_drop_attributes_rescues () =
  let rel, spec, part = false_infeasible_case () in
  let r =
    sr_run ~fallbacks:[ Pkg.Sketch_refine.Drop_attributes ] rel spec part
  in
  (match r.E.status with
  | E.Optimal | E.Feasible _ -> ()
  | s -> Alcotest.failf "drop-attributes should rescue, got %a" E.pp_status s);
  match r.E.objective with
  | Some obj -> Alcotest.check (Alcotest.float 1e-6) "objective" 40. obj
  | None -> Alcotest.fail "no objective"

let test_fallback_order_drop_then_hybrid () =
  let rel, spec, part = false_infeasible_case () in
  let r =
    sr_run
      ~fallbacks:
        [ Pkg.Sketch_refine.Drop_attributes; Pkg.Sketch_refine.Hybrid_sketch ]
      rel spec part
  in
  checkb "ladder with both rungs still rescues" true
    (match r.E.status with E.Optimal | E.Feasible _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parallel refine: worker crash containment                          *)
(* ------------------------------------------------------------------ *)

let test_worker_crash_repaired () =
  let rel = Datagen.Galaxy.generate ~seed:5 600 in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:100 ~attrs:[ "redshift" ] rel in
  let clean = Pkg.Parallel.run ~domains:2 spec rel part in
  (match clean.E.status with
  | E.Optimal | E.Feasible _ -> ()
  | s -> Alcotest.failf "clean parallel run should succeed, got %a"
           E.pp_status s);
  with_faults "worker=0:crash" (fun () ->
      let r = Pkg.Parallel.run ~domains:2 spec rel part in
      (match r.E.status with
      | E.Optimal | E.Feasible _ -> ()
      | s ->
        Alcotest.failf "crashed worker should be repaired, got %a" E.pp_status
          s);
      match r.E.package with
      | Some p -> checkb "repaired package feasible" true
                    (Pkg.Package.feasible spec p)
      | None -> Alcotest.fail "no package after repair")

let test_all_workers_crash_contained () =
  let rel = Datagen.Galaxy.generate ~seed:5 600 in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:100 ~attrs:[ "redshift" ] rel in
  with_faults "worker=0:crash; worker=1:crash" (fun () ->
      let r = Pkg.Parallel.run ~domains:2 spec rel part in
      (* everything lands in Phase-3 repair / sequential fallback; any
         terminal report without an escaped exception is the contract *)
      match r.E.status with
      | E.Optimal | E.Feasible _ | E.Infeasible | E.Failed _ | E.Degraded _ ->
        ())

(* ------------------------------------------------------------------ *)
(* Deadline propagation                                               *)
(* ------------------------------------------------------------------ *)

let big_galaxy = lazy (Datagen.Galaxy.generate ~seed:9 6000)

let deadline_options budget =
  {
    Pkg.Sketch_refine.default_options with
    limits = { B.default_limits with max_seconds = 30. };
    max_seconds = budget;
  }

let test_deadline_zero_budget () =
  let rel = Lazy.force big_galaxy in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:600 ~attrs:[ "redshift" ] rel in
  let r = sr_run ~options:(deadline_options 0.) rel spec part in
  (match kind_of r with
  | Some E.Deadline_exceeded -> ()
  | _ -> Alcotest.failf "zero budget should be deadline_exceeded, got %a"
           E.pp_status r.E.status);
  let rp =
    Pkg.Parallel.run ~options:(deadline_options 0.) ~domains:2 spec rel part
  in
  match kind_of rp with
  | Some E.Deadline_exceeded -> ()
  | _ -> Alcotest.failf "parallel zero budget should be deadline_exceeded, \
                         got %a" E.pp_status rp.E.status

(* The acceptance criterion: with a budget far below the work required
   and generous per-ILP limits, the propagated deadline keeps the total
   wall time within a small factor of the budget — the per-call clamp is
   doing the work, not the 30s static limit. *)
let test_deadline_overshoot_bounded () =
  let rel = Lazy.force big_galaxy in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:600 ~attrs:[ "redshift" ] rel in
  let budget = 0.4 in
  let check_run name run =
    let t0 = Unix.gettimeofday () in
    let r = run () in
    let wall = Unix.gettimeofday () -. t0 in
    checkb (name ^ " within ~1.2x budget (+scheduling slack)") true
      (wall <= (budget *. 1.2) +. 0.35);
    match r.E.status with
    | E.Optimal | E.Feasible _ | E.Infeasible | E.Failed _ | E.Degraded _ -> ()
  in
  check_run "sketchrefine" (fun () ->
      sr_run ~options:(deadline_options budget) rel spec part);
  check_run "parallel" (fun () ->
      Pkg.Parallel.run ~options:(deadline_options budget) ~domains:2 spec rel
        part)

let test_sequential_fallback_keeps_budget () =
  (* crash every worker so Parallel falls back to Sketch_refine; the
     fallback must inherit only the remaining budget *)
  let rel = Lazy.force big_galaxy in
  let spec = galaxy_spec rel in
  let part = Pkg.Partition.create ~tau:600 ~attrs:[ "redshift" ] rel in
  with_faults "worker=0:crash; worker=1:crash" (fun () ->
      let budget = 0.4 in
      let t0 = Unix.gettimeofday () in
      let r =
        Pkg.Parallel.run ~options:(deadline_options budget) ~domains:2 spec rel
          part
      in
      let wall = Unix.gettimeofday () -. t0 in
      checkb "fallback does not restart the clock" true
        (wall <= (budget *. 1.2) +. 0.35);
      match r.E.status with
      | E.Optimal | E.Feasible _ | E.Infeasible | E.Failed _ | E.Degraded _ ->
        ())

(* ------------------------------------------------------------------ *)
(* Progressive descent under partition faults: always typed, never a  *)
(* hang or an escaped exception                                       *)
(* ------------------------------------------------------------------ *)

let galaxy_hier () =
  Pkg.Hierarchy.build ~levels:3 ~leaf_tau:10
    ~attrs:[ "redshift"; "petro_rad" ]
    galaxy_rel

let test_progressive_build_fault_typed () =
  with_faults "partition=build:fail" (fun () ->
      (* the build itself raises Injected... *)
      (match galaxy_hier () with
      | exception Pkg.Faults.Injected _ -> ()
      | _ -> Alcotest.fail "build under partition=build:fail did not raise");
      (* ...and every caller (CLI, REPL, server) contains it into a
         typed Failed report at the Progressive stage *)
      let report =
        match galaxy_hier () with
        | exception Pkg.Faults.Injected msg ->
          E.report
            ~status:(E.failed ~stage:E.Progressive (E.Solver_error msg))
            ~package:None ~objective:None ~wall_time:0.
            ~counters:(E.fresh_counters ())
        | hier -> fst (Pkg.Progressive.run (galaxy_spec galaxy_rel) galaxy_rel hier)
      in
      match report.E.status with
      | E.Failed f ->
        checkb "stage progressive" true (f.E.stage = Some E.Progressive);
        checkb "solver error kind" true
          (match f.E.kind with E.Solver_error _ -> true | _ -> false)
      | _ -> Alcotest.fail "build fault did not surface as typed Failed");
  (* cleared faults: the same build succeeds *)
  checkb "build recovers once cleared" true
    (Pkg.Hierarchy.num_levels (galaxy_hier ()) = 3)

let test_progressive_level_fault_degrades () =
  let hier = galaxy_hier () in
  let spec = galaxy_spec galaxy_rel in
  with_faults "partition=level:1" (fun () ->
      let r, stats = Pkg.Progressive.run spec galaxy_rel hier in
      (* the injected level-1 failure is retried widened; the answer
         arrives flagged Degraded, with the widened solve on record *)
      (match r.E.status with
      | E.Degraded d ->
        checkb "detail names the level" true
          (let has_sub s sub =
             let n = String.length sub in
             let rec go i =
               i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
             in
             go 0
           in
           has_sub d.E.detail "level 1")
      | other ->
        Alcotest.failf "expected Degraded, got %a" E.pp_status other);
      checkb "package produced" true (r.E.package <> None);
      checkb "level 1 recorded as widened" true
        (List.exists
           (fun (s : Pkg.Progressive.level_stat) ->
             s.Pkg.Progressive.ls_level = 1 && s.Pkg.Progressive.ls_widened)
           stats))

let test_progressive_stage_infeasible_typed () =
  let hier = galaxy_hier () in
  let spec = galaxy_spec galaxy_rel in
  with_faults "stage=progressive:infeasible" (fun () ->
      (* every descent sketch forced infeasible: the driver descends
         unshaded level by level and reports the leaf's verdict —
         typed Infeasible, not a loop and not an exception *)
      let t0 = Unix.gettimeofday () in
      let r, _ = Pkg.Progressive.run spec galaxy_rel hier in
      checkb "typed infeasible" true (r.E.status = E.Infeasible);
      checkb "terminates promptly" true (Unix.gettimeofday () -. t0 < 30.))

let test_progressive_deadline_zero () =
  let hier = galaxy_hier () in
  let spec = galaxy_spec galaxy_rel in
  let options = { Pkg.Progressive.default_options with max_seconds = 0. } in
  let r, _ = Pkg.Progressive.run ~options spec galaxy_rel hier in
  match r.E.status with
  | E.Failed f ->
    checkb "deadline kind" true (f.E.kind = E.Deadline_exceeded);
    checkb "progressive stage" true (f.E.stage = Some E.Progressive)
  | other -> Alcotest.failf "expected Failed, got %a" E.pp_status other

(* ------------------------------------------------------------------ *)
(* Stochastic driver: injected faults land as typed reports           *)
(* ------------------------------------------------------------------ *)

let stoch_spec () =
  compile galaxy_rel
    "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 3 SUCH THAT COUNT(P.*) = 3 \
     AND SUM(P.u) >= 40 WITH PROBABILITY 0.9 MAXIMIZE SUM(P.r)"

let stoch_options () =
  {
    (Pkg.Stochastic.default_options ()) with
    Pkg.Stochastic.scenarios = 12;
    validation = 50;
    max_seconds = 20.;
  }

let stoch_run () =
  Pkg.Stochastic.run ~options:(stoch_options ()) (stoch_spec ()) galaxy_rel

let test_stoch_scenario_fault_typed () =
  with_faults "stoch=scenario:fail" (fun () ->
      let r, _ = stoch_run () in
      match r.E.status with
      | E.Failed f ->
        checkb "scenario stage" true (f.E.stage = Some E.Scenario);
        checkb "solver error kind" true
          (match f.E.kind with E.Solver_error _ -> true | _ -> false)
      | other -> Alcotest.failf "expected Failed, got %a" E.pp_status other);
  (* cleared faults: the same query solves and validates *)
  let r, stats = stoch_run () in
  checkb "recovers once cleared" true
    (match r.E.status with E.Optimal | E.Feasible _ -> true | _ -> false);
  checkb "validated once cleared" true
    (stats.Pkg.Stochastic.st_validated >= 0.9)

let test_stoch_validate_fault_typed () =
  with_faults "stoch=validate:fail" (fun () ->
      let r, _ = stoch_run () in
      match r.E.status with
      | E.Failed f ->
        checkb "validate stage" true (f.E.stage = Some E.Validate);
        checkb "solver error kind" true
          (match f.E.kind with E.Solver_error _ -> true | _ -> false)
      | other -> Alcotest.failf "expected Failed, got %a" E.pp_status other)

let test_stoch_summary_stage_faults () =
  (* the generic stage= directives hit the summary ILPs too *)
  with_faults "stage=summary:limit" (fun () ->
      let r, _ = stoch_run () in
      match r.E.status with
      | E.Failed f -> checkb "summary stage" true (f.E.stage = Some E.Summary)
      | other -> Alcotest.failf "expected Failed, got %a" E.pp_status other);
  with_faults "stage=summary:infeasible" (fun () ->
      (* every summary ILP forced infeasible: the m-doubling ladder
         bottoms out in a typed Infeasible, never a loop *)
      let t0 = Unix.gettimeofday () in
      let r, _ = stoch_run () in
      checkb "typed infeasible" true (r.E.status = E.Infeasible);
      checkb "terminates promptly" true (Unix.gettimeofday () -. t0 < 20.))

let () =
  Alcotest.run "robustness"
    [
      ( "faults",
        [
          Alcotest.test_case "grammar" `Quick test_faults_parse;
          Alcotest.test_case "selector semantics" `Quick
            test_faults_selector_semantics;
          Alcotest.test_case "fence accessors" `Quick
            test_faults_fence_accessors;
        ] );
      ( "csv errors",
        [ Alcotest.test_case "line numbers" `Quick test_csv_error_lines ] );
      ( "taxonomy",
        [
          Alcotest.test_case "direct node limit" `Quick test_direct_node_limit;
          Alcotest.test_case "direct iteration limit" `Quick
            test_direct_iteration_limit;
          Alcotest.test_case "simplex iteration budget" `Quick
            test_simplex_iter_budget;
          Alcotest.test_case "stop reason recorded" `Quick
            test_stop_reason_recorded;
        ] );
      ( "injection",
        [
          Alcotest.test_case "raise contained" `Quick
            test_injected_raise_contained;
          Alcotest.test_case "forced limit typed" `Quick
            test_injected_limit_direct;
          Alcotest.test_case "store faults typed" `Quick
            test_injected_store_fault;
          Alcotest.test_case "lp faults preserve answers" `Quick
            test_injected_lp_fault_preserves_answer;
        ] );
      ( "fallback ladder",
        [
          Alcotest.test_case "merge groups bottoms out" `Quick
            test_merge_groups_bottoms_out;
          Alcotest.test_case "hybrid exhaustion" `Quick test_hybrid_exhaustion;
          Alcotest.test_case "drop attributes rescues" `Quick
            test_drop_attributes_rescues;
          Alcotest.test_case "drop then hybrid" `Quick
            test_fallback_order_drop_then_hybrid;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "worker crash repaired" `Quick
            test_worker_crash_repaired;
          Alcotest.test_case "all workers crash" `Quick
            test_all_workers_crash_contained;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "zero budget" `Quick test_deadline_zero_budget;
          Alcotest.test_case "overshoot bounded" `Quick
            test_deadline_overshoot_bounded;
          Alcotest.test_case "sequential fallback budget" `Quick
            test_sequential_fallback_keeps_budget;
        ] );
      ( "progressive",
        [
          Alcotest.test_case "build fault typed" `Quick
            test_progressive_build_fault_typed;
          Alcotest.test_case "level fault degrades" `Quick
            test_progressive_level_fault_degrades;
          Alcotest.test_case "stage infeasible typed" `Quick
            test_progressive_stage_infeasible_typed;
          Alcotest.test_case "deadline zero" `Quick
            test_progressive_deadline_zero;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "scenario fault typed" `Quick
            test_stoch_scenario_fault_typed;
          Alcotest.test_case "validate fault typed" `Quick
            test_stoch_validate_fault_typed;
          Alcotest.test_case "summary stage faults" `Quick
            test_stoch_summary_stage_faults;
        ] );
    ]
