(* Tests for branch-and-bound integer programming and IIS extraction. *)

module P = Lp.Problem
module B = Ilp.Branch_bound

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-6)

let solve_optimal p =
  match B.solve p with
  | B.Optimal (s, _) -> s
  | r -> Alcotest.failf "expected optimal, got %a" B.pp_result r

let knapsack ~vals ~wts ~cap =
  let vars = Array.to_list (Array.map (fun v -> P.var ~integer:true ~hi:1. v) vals) in
  let coeffs = Array.to_list (Array.mapi (fun i w -> (i, w)) wts) in
  P.make ~sense:P.Maximize ~vars
    ~rows:[ P.row coeffs ~lo:neg_infinity ~hi:cap ]

let test_knapsack () =
  let s =
    solve_optimal
      (knapsack ~vals:[| 6.; 5.; 4.; 3. |] ~wts:[| 5.; 4.; 3.; 2. |] ~cap:10.)
  in
  checkf "objective" 13. s.B.obj;
  checkf "item 0" 1. s.B.x.(0);
  checkf "item 1" 0. s.B.x.(1)

let test_equality_cardinality () =
  (* pick exactly 3 of 6 with a sum window — a mini package query *)
  let costs = [| 9.; 1.; 8.; 2.; 7.; 3. |] and w = [| 5.; 4.; 3.; 6.; 2.; 4. |] in
  let vars = Array.to_list (Array.map (fun c -> P.var ~integer:true ~hi:1. c) costs) in
  let p =
    P.make ~sense:P.Minimize ~vars
      ~rows:
        [
          P.row (List.init 6 (fun i -> (i, 1.))) ~lo:3. ~hi:3.;
          P.row (Array.to_list (Array.mapi (fun i wi -> (i, wi)) w)) ~lo:10.
            ~hi:12.;
        ]
  in
  let s = solve_optimal p in
  checkf "objective" 10. s.B.obj

let test_integer_rounding_matters () =
  (* LP relaxation is fractional; ILP optimum differs from rounded LP *)
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~integer:true ~hi:10. 1.; P.var ~integer:true ~hi:10. 1. ]
      ~rows:[ P.row [ (0, 2.); (1, 2.) ] ~lo:neg_infinity ~hi:7. ]
  in
  let s = solve_optimal p in
  checkf "objective" 3. s.B.obj;
  checkb "integral" true
    (Array.for_all (fun x -> Float.abs (x -. Float.round x) < 1e-9) s.B.x)

let test_infeasible_ilp () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~integer:true ~hi:10. 1. ]
      ~rows:
        [
          P.row [ (0, 1.) ] ~lo:5. ~hi:infinity;
          P.row [ (0, 1.) ] ~lo:neg_infinity ~hi:3.;
        ]
  in
  checkb "infeasible" true
    (match B.solve p with B.Infeasible _ -> true | _ -> false)

let test_integer_gap_infeasible () =
  (* LP relaxation feasible (x = 2.5) but no integer point: 2x in [4.6, 5.4] *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~integer:true ~hi:10. 1. ]
      ~rows:[ P.row [ (0, 2.) ] ~lo:4.6 ~hi:5.4 ]
  in
  checkb "integer-infeasible" true
    (match B.solve p with B.Infeasible _ -> true | _ -> false)

let test_unbounded_ilp () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~integer:true 1. ]
      ~rows:[ P.row [ (0, 1.) ] ~lo:0. ~hi:infinity ]
  in
  checkb "unbounded" true
    (match B.solve p with B.Unbounded _ -> true | _ -> false)

let test_mixed_integer () =
  (* one integer, one continuous variable *)
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~integer:true ~hi:10. 3.; P.var ~hi:10. 1. ]
      ~rows:[ P.row [ (0, 2.); (1, 1.) ] ~lo:neg_infinity ~hi:7.5 ]
  in
  let s = solve_optimal p in
  checkf "objective" 10.5 s.B.obj;
  checkf "integer part" 3. s.B.x.(0);
  checkf "continuous part" 1.5 s.B.x.(1)

let test_repetition_bounds () =
  (* variables bounded above by K+1, the REPEAT translation *)
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~integer:true ~hi:3. 5.; P.var ~integer:true ~hi:3. 4. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:4. ~hi:4. ]
  in
  let s = solve_optimal p in
  checkf "objective" 19. s.B.obj;
  checkf "repeated tuple" 3. s.B.x.(0)

let test_node_limit () =
  (* a subset-sum-ish instance with a tiny node budget: must terminate
     with a definite status, never loop *)
  let n = 30 in
  let rng = Random.State.make [| 5 |] in
  let vals = Array.init n (fun _ -> 1. +. Random.State.float rng 10.) in
  let wts = Array.init n (fun _ -> 1. +. Random.State.float rng 10.) in
  let vars = Array.to_list (Array.map (fun v -> P.var ~integer:true ~hi:1. v) vals) in
  let coeffs = Array.to_list (Array.mapi (fun i w -> (i, w)) wts) in
  let p =
    P.make ~sense:P.Maximize ~vars ~rows:[ P.row coeffs ~lo:49.9 ~hi:50.1 ]
  in
  match B.solve ~limits:{ B.default_limits with max_nodes = 3; max_seconds = 10. } p with
  | B.Optimal _ | B.Feasible _ | B.Limit _ | B.Infeasible _ -> ()
  | B.Unbounded _ -> Alcotest.fail "unexpected unbounded"

let test_stats_and_accessors () =
  let p = knapsack ~vals:[| 2.; 3. |] ~wts:[| 1.; 1. |] ~cap:1. in
  let r = B.solve p in
  let st = B.stats_of r in
  checkb "nodes counted" true (st.B.nodes >= 0);
  checkb "solution_of" true
    (match B.solution_of r with Some s -> s.B.obj = 3. | None -> false)

(* ------------------------------------------------------------------ *)
(* IIS                                                                *)
(* ------------------------------------------------------------------ *)

let test_iis_feasible () =
  let p = knapsack ~vals:[| 1. |] ~wts:[| 1. |] ~cap:1. in
  checkb "feasible -> None" true (Ilp.Iis.rows p = None)

let test_iis_minimal () =
  (* rows 0 and 1 conflict; row 2 is irrelevant *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~hi:10. 1. ]
      ~rows:
        [
          P.row [ (0, 1.) ] ~lo:5. ~hi:infinity;
          P.row [ (0, 1.) ] ~lo:neg_infinity ~hi:3.;
          P.row [ (0, 2.) ] ~lo:0. ~hi:100.;
        ]
  in
  match Ilp.Iis.rows p with
  | Some rows ->
    Alcotest.(check (list int)) "conflicting rows" [ 0; 1 ] rows;
    List.iter
      (fun drop ->
        let remaining =
          List.filteri (fun i _ -> i <> drop) (Array.to_list p.P.rows)
        in
        let p' = { p with P.rows = Array.of_list remaining } in
        checkb "subset feasible" true (Ilp.Iis.rows p' = None))
      rows
  | None -> Alcotest.fail "expected infeasible"

let test_iis_bound_conflict () =
  (* infeasibility caused by variable bounds vs a single row *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~lo:0. ~hi:1. 1. ]
      ~rows:[ P.row [ (0, 1.) ] ~lo:5. ~hi:infinity ]
  in
  match Ilp.Iis.rows p with
  | Some [ 0 ] -> ()
  | Some other ->
    Alcotest.failf "unexpected IIS %s"
      (String.concat "," (List.map string_of_int other))
  | None -> Alcotest.fail "expected infeasible"

(* ------------------------------------------------------------------ *)
(* Properties: B&B vs exhaustive enumeration                           *)
(* ------------------------------------------------------------------ *)

let random_ilp_gen =
  QCheck.Gen.(
    let coeff = map (fun i -> float_of_int i) (int_range (-5) 9) in
    int_range 2 9 >>= fun n ->
    list_size (return n) coeff >>= fun costs ->
    list_size (int_range 1 3) (list_size (return n) coeff) >>= fun rows ->
    list_size (return (List.length rows)) (int_range 2 25) >>= fun caps ->
    return (costs, rows, List.map float_of_int caps))

let ilp_of (costs, row_coeffs, caps) =
  let vars = List.map (fun c -> P.var ~integer:true ~lo:0. ~hi:1. c) costs in
  let rows =
    List.map2
      (fun coeffs cap ->
        P.row (List.mapi (fun i c -> (i, c)) coeffs) ~lo:neg_infinity ~hi:cap)
      row_coeffs caps
  in
  P.make ~sense:P.Maximize ~vars ~rows

(* exhaustive optimum over binary assignments *)
let brute_force p =
  let n = P.nvars p in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.) in
    if P.feasible p x then begin
      let obj = P.objective p x in
      match !best with
      | Some b when b >= obj -> ()
      | _ -> best := Some obj
    end
  done;
  !best

let prop_bb_matches_brute_force =
  QCheck.Test.make ~count:300 ~name:"branch&bound matches exhaustive search"
    (QCheck.make random_ilp_gen)
    (fun input ->
      let p = ilp_of input in
      match brute_force p, B.solve p with
      | Some opt, B.Optimal (s, _) -> Float.abs (opt -. s.B.obj) < 1e-6
      | None, B.Infeasible _ -> true
      | Some _, B.Infeasible _ | None, B.Optimal _ -> false
      | _, (B.Feasible _ | B.Limit _ | B.Unbounded _) -> false)

let prop_bb_pseudo_cost_matches =
  QCheck.Test.make ~count:200
    ~name:"pseudo-cost branching finds the same optimum"
    (QCheck.make random_ilp_gen)
    (fun input ->
      let p = ilp_of input in
      match B.solve p, B.solve ~branching:B.Pseudo_cost p with
      | B.Optimal (a, _), B.Optimal (b, _) ->
        Float.abs (a.B.obj -. b.B.obj) < 1e-6
      | B.Infeasible _, B.Infeasible _ -> true
      | _ -> false)

let prop_bb_rel_gap_within_tolerance =
  QCheck.Test.make ~count:200 ~name:"rel_gap solutions are within the gap"
    (QCheck.make random_ilp_gen)
    (fun input ->
      let p = ilp_of input in
      let gap = 0.05 in
      match B.solve p, B.solve ~rel_gap:gap p with
      | B.Optimal (exact, _), B.Optimal (approx, _) ->
        (* maximization: the gap-stopped incumbent may be below the
           exact optimum by at most rel_gap * |approx| (plus epsilon) *)
        exact.B.obj -. approx.B.obj
        <= (gap *. Float.max 1e-9 (Float.abs approx.B.obj)) +. 1e-6
      | B.Infeasible _, B.Infeasible _ -> true
      | _ -> false)

let prop_bb_diving_matches =
  QCheck.Test.make ~count:200 ~name:"diving heuristic preserves the optimum"
    (QCheck.make random_ilp_gen)
    (fun input ->
      let p = ilp_of input in
      match B.solve p, B.solve ~diving:true p with
      | B.Optimal (a, _), B.Optimal (b, _) ->
        Float.abs (a.B.obj -. b.B.obj) < 1e-6
      | B.Infeasible _, B.Infeasible _ -> true
      | _ -> false)

let test_diving_seeds_incumbent () =
  (* with zero search nodes allowed, only the root heuristics can
     produce an incumbent; diving reliably does on this instance *)
  let n = 20 in
  let vals = Array.init n (fun i -> float_of_int (1 + (i mod 7))) in
  let wts = Array.init n (fun i -> float_of_int (2 + (i mod 5))) in
  let vars =
    Array.to_list (Array.map (fun v -> P.var ~integer:true ~hi:1. v) vals)
  in
  let coeffs = Array.to_list (Array.mapi (fun i w -> (i, w)) wts) in
  let p =
    P.make ~sense:P.Maximize ~vars
      ~rows:[ P.row coeffs ~lo:neg_infinity ~hi:11. ]
  in
  match B.solve ~diving:true ~limits:{ B.default_limits with max_nodes = 0; max_seconds = 10. } p with
  | B.Feasible (s, _, _) | B.Optimal (s, _) ->
    checkb "diving incumbent feasible" true (P.feasible p s.B.x)
  | B.Limit _ -> Alcotest.fail "diving should have produced an incumbent"
  | _ -> Alcotest.fail "unexpected status"

let prop_bb_solution_feasible =
  QCheck.Test.make ~count:200 ~name:"branch&bound solutions are feasible"
    (QCheck.make random_ilp_gen)
    (fun input ->
      let p = ilp_of input in
      match B.solve p with
      | B.Optimal (s, _) | B.Feasible (s, _, _) -> P.feasible p s.B.x
      | B.Infeasible _ | B.Limit _ -> true
      | B.Unbounded _ -> false)

let () =
  Alcotest.run "ilp"
    [
      ( "branch_bound",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "equality cardinality" `Quick
            test_equality_cardinality;
          Alcotest.test_case "fractional LP, integral ILP" `Quick
            test_integer_rounding_matters;
          Alcotest.test_case "infeasible" `Quick test_infeasible_ilp;
          Alcotest.test_case "integer gap infeasible" `Quick
            test_integer_gap_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded_ilp;
          Alcotest.test_case "mixed integer" `Quick test_mixed_integer;
          Alcotest.test_case "repetition bounds" `Quick test_repetition_bounds;
          Alcotest.test_case "node limit" `Quick test_node_limit;
          Alcotest.test_case "stats and accessors" `Quick
            test_stats_and_accessors;
          Alcotest.test_case "diving seeds incumbent" `Quick
            test_diving_seeds_incumbent;
        ] );
      ( "iis",
        [
          Alcotest.test_case "feasible" `Quick test_iis_feasible;
          Alcotest.test_case "minimal conflict" `Quick test_iis_minimal;
          Alcotest.test_case "bound conflict" `Quick test_iis_bound_conflict;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_bb_matches_brute_force;
          QCheck_alcotest.to_alcotest prop_bb_pseudo_cost_matches;
          QCheck_alcotest.to_alcotest prop_bb_rel_gap_within_tolerance;
          QCheck_alcotest.to_alcotest prop_bb_diving_matches;
          QCheck_alcotest.to_alcotest prop_bb_solution_feasible;
        ] );
    ]
