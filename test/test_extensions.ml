(* Tests for the extension modules: LP presolve, cover cuts
   (branch-and-cut), the dynamic quad-tree partitioner, and the
   Section 4.4 false-infeasibility fallback strategies. *)

module P = Lp.Problem
module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

(* ------------------------------------------------------------------ *)
(* Presolve                                                           *)
(* ------------------------------------------------------------------ *)

let test_presolve_fixed_vars () =
  (* y is fixed at 2 and must be substituted out *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~hi:10. 1.; P.var ~lo:2. ~hi:2. 3. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:5. ~hi:infinity ]
  in
  match Lp.Presolve.run p with
  | Lp.Presolve.Proven_infeasible m -> Alcotest.fail m
  | Lp.Presolve.Reduced red ->
    (* the reductions cascade to a complete solve here: y fixed at 2,
       the row folds into x >= 3, and the now-empty column fixes x at
       its preferred bound *)
    checki "fully reduced" 0 (P.nvars red.Lp.Presolve.problem);
    checkf "objective captured in offset" 9. red.Lp.Presolve.obj_offset;
    let full = Lp.Presolve.restore red [||] in
    checkb "restored point feasible" true (P.feasible p full);
    checkf "restored x" 3. full.(0);
    checkf "restored y" 2. full.(1)

let test_presolve_singleton_row () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~integer:true ~hi:10. 1. ]
      ~rows:[ P.row [ (0, 2.) ] ~lo:3. ~hi:9. ]
  in
  match Lp.Presolve.run p with
  | Lp.Presolve.Reduced red ->
    checki "rows folded" 0 (P.nrows red.Lp.Presolve.problem);
    (* integer rounding: 1.5 <= x <= 4.5 becomes [2, 4]; the empty
       column then pins the minimization at the rounded lower bound *)
    let full = Lp.Presolve.restore red (Array.make (P.nvars red.Lp.Presolve.problem) 0.) in
    checkf "pinned at rounded bound" 2. full.(0);
    checkb "restored point feasible" true (P.feasible p full)
  | Lp.Presolve.Proven_infeasible m -> Alcotest.fail m

let test_presolve_detects_infeasibility () =
  let empty_bad =
    P.make ~sense:P.Minimize ~vars:[ P.var 1. ]
      ~rows:[ P.row [] ~lo:1. ~hi:2. ]
  in
  checkb "empty row" true
    (match Lp.Presolve.run empty_bad with
    | Lp.Presolve.Proven_infeasible _ -> true
    | _ -> false);
  let forcing_bad =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~hi:1. 0.; P.var ~hi:1. 0. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:3. ~hi:infinity ]
  in
  checkb "forcing row" true
    (match Lp.Presolve.run forcing_bad with
    | Lp.Presolve.Proven_infeasible _ -> true
    | _ -> false);
  let bound_clash =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~hi:4. 0. ]
      ~rows:[ P.row [ (0, 1.) ] ~lo:5. ~hi:9. ]
  in
  checkb "singleton clash" true
    (match Lp.Presolve.run bound_clash with
    | Lp.Presolve.Proven_infeasible _ -> true
    | _ -> false)

let test_presolve_redundant_rows () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~hi:1. 1.; P.var ~hi:1. 1. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:neg_infinity ~hi:5. ]
  in
  match Lp.Presolve.run p with
  | Lp.Presolve.Reduced red ->
    checki "redundant row dropped" 1 (Lp.Presolve.dropped_rows p red);
    (* with no rows left, vars are fixed at their preferred bound *)
    checki "vars fixed" 2 (Lp.Presolve.dropped_vars p red);
    checkf "objective offset" 2. red.Lp.Presolve.obj_offset
  | Lp.Presolve.Proven_infeasible m -> Alcotest.fail m

(* Property: presolve + solve + restore produces the same objective as
   solving directly, and a feasible point. *)
let presolve_equivalence_prop =
  let gen =
    QCheck.Gen.(
      let coeff = map float_of_int (int_range (-4) 6) in
      int_range 1 6 >>= fun n ->
      list_size (return n) coeff >>= fun costs ->
      list_size (int_range 0 3) (list_size (return n) coeff) >>= fun rows ->
      list_size (return (List.length rows)) (int_range 1 15) >>= fun caps ->
      return (costs, rows, caps))
  in
  QCheck.Test.make ~count:200 ~name:"presolve preserves the optimum"
    (QCheck.make gen)
    (fun (costs, rows, caps) ->
      let vars = List.map (fun c -> P.var ~hi:2. c) costs in
      let rows =
        List.map2
          (fun coeffs cap ->
            P.row (List.mapi (fun i c -> (i, c)) coeffs) ~lo:neg_infinity
              ~hi:(float_of_int cap))
          rows caps
      in
      let p = P.make ~sense:P.Maximize ~vars ~rows in
      match Lp.Simplex.solve p, Lp.Presolve.run p with
      | Lp.Simplex.Optimal direct, Lp.Presolve.Reduced red -> (
        match Lp.Simplex.solve red.Lp.Presolve.problem with
        | Lp.Simplex.Optimal reduced ->
          let total = reduced.Lp.Simplex.obj +. red.Lp.Presolve.obj_offset in
          Float.abs (total -. direct.Lp.Simplex.obj) < 1e-5
          && P.feasible ~tol:1e-5 p
               (Lp.Presolve.restore red reduced.Lp.Simplex.x)
        | _ -> false)
      | Lp.Simplex.Infeasible, Lp.Presolve.Proven_infeasible _ -> true
      | Lp.Simplex.Infeasible, Lp.Presolve.Reduced red -> (
        (* presolve may not prove it; the reduced problem must still be
           infeasible *)
        match Lp.Simplex.solve red.Lp.Presolve.problem with
        | Lp.Simplex.Infeasible -> true
        | _ -> false)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Cover cuts                                                         *)
(* ------------------------------------------------------------------ *)

let knapsack_fractional () =
  (* max 10a + 9b + 8c st 5a + 5b + 5c <= 12, binary: LP picks 2.4
     items' worth; any cover cut must keep all integer points *)
  P.make ~sense:P.Maximize
    ~vars:
      [ P.var ~integer:true ~hi:1. 10.;
        P.var ~integer:true ~hi:1. 9.;
        P.var ~integer:true ~hi:1. 8. ]
    ~rows:[ P.row [ (0, 5.); (1, 5.); (2, 5.) ] ~lo:neg_infinity ~hi:12. ]

let test_cover_cut_found () =
  let p = knapsack_fractional () in
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal s ->
    let cuts = Ilp.Cuts.cover_cuts p s.Lp.Simplex.x in
    checkb "at least one cut" true (cuts <> []);
    (* each cut must be violated by the LP point *)
    List.iter
      (fun (r : P.row) ->
        let v =
          List.fold_left
            (fun acc (j, a) -> acc +. (a *. s.Lp.Simplex.x.(j)))
            0. r.P.coeffs
        in
        checkb "violated at LP point" true (v > r.P.rhi +. 1e-6))
      cuts;
    (* and satisfied by every integer-feasible point *)
    for mask = 0 to 7 do
      let x =
        Array.init 3 (fun i -> if mask land (1 lsl i) <> 0 then 1. else 0.)
      in
      if P.feasible p x then
        List.iter
          (fun (r : P.row) ->
            let v =
              List.fold_left
                (fun acc (j, a) -> acc +. (a *. x.(j)))
                0. r.P.coeffs
            in
            checkb "integer point survives" true (v <= r.P.rhi +. 1e-9))
          cuts
    done
  | _ -> Alcotest.fail "LP should solve"

let test_cuts_skip_nonbinary () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~integer:true ~hi:3. 1.; P.var ~integer:true ~hi:1. 1. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:neg_infinity ~hi:2. ]
  in
  checkb "no cuts on general-integer rows" true
    (Ilp.Cuts.cover_cuts p [| 1.5; 0.5 |] = [])

(* Property: branch-and-bound with cuts matches branch-and-bound
   without cuts on random binary ILPs. *)
let cuts_preserve_optimum_prop =
  let gen =
    QCheck.Gen.(
      let coeff = map float_of_int (int_range 1 9) in
      int_range 3 9 >>= fun n ->
      list_size (return n) coeff >>= fun costs ->
      list_size (int_range 1 2) (list_size (return n) coeff) >>= fun rows ->
      list_size (return (List.length rows)) (int_range 5 20) >>= fun caps ->
      return (costs, rows, caps))
  in
  QCheck.Test.make ~count:200 ~name:"cuts preserve the integer optimum"
    (QCheck.make gen)
    (fun (costs, rows, caps) ->
      let vars = List.map (fun c -> P.var ~integer:true ~hi:1. c) costs in
      let rows =
        List.map2
          (fun coeffs cap ->
            P.row (List.mapi (fun i c -> (i, c)) coeffs) ~lo:neg_infinity
              ~hi:(float_of_int cap))
          rows caps
      in
      let p = P.make ~sense:P.Maximize ~vars ~rows in
      match
        Ilp.Branch_bound.solve p, Ilp.Branch_bound.solve ~cut_rounds:4 p
      with
      | Ilp.Branch_bound.Optimal (a, _), Ilp.Branch_bound.Optimal (b, _) ->
        Float.abs (a.Ilp.Branch_bound.obj -. b.Ilp.Branch_bound.obj) < 1e-6
      | Ilp.Branch_bound.Infeasible _, Ilp.Branch_bound.Infeasible _ -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Dynamic quad-tree partitioning                                     *)
(* ------------------------------------------------------------------ *)

let qt_schema =
  S.make [ { S.name = "a"; ty = V.TFloat }; { S.name = "b"; ty = V.TFloat } ]

let qt_rel n seed =
  let rng = Datagen.Prng.create seed in
  R.of_rows qt_schema
    (List.init n (fun _ ->
         [|
           V.Float (Datagen.Prng.uniform rng 0. 100.);
           V.Float (Datagen.Prng.uniform rng 0. 100.);
         |]))

let test_quad_tree_cut_invariants () =
  let rel = qt_rel 500 5 in
  let tree = Pkg.Quad_tree.build ~leaf_size:20 ~attrs:[ "a"; "b" ] rel in
  checkb "hierarchy retained" true (Pkg.Quad_tree.size tree > 10);
  (* coarse cut: only tau limits *)
  let coarse = Pkg.Quad_tree.cut ~tau:200 tree rel in
  (match Pkg.Partition.check ~tau:200 coarse rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* fine cut via radius *)
  let fine = Pkg.Quad_tree.cut ~radius:(Pkg.Partition.Absolute 20.) tree rel in
  (match Pkg.Partition.check fine rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "radius cut is finer" true
    (Pkg.Partition.num_groups fine >= Pkg.Partition.num_groups coarse);
  (* every non-leaf cut group satisfies the radius; leaves are exempt
     (they cannot be split further) — verify indirectly through check *)
  ()

let test_quad_tree_coarsest_property () =
  (* a looser radius must never produce more groups *)
  let rel = qt_rel 800 9 in
  let tree = Pkg.Quad_tree.build ~leaf_size:25 ~attrs:[ "a"; "b" ] rel in
  let tight = Pkg.Quad_tree.cut ~radius:(Pkg.Partition.Absolute 10.) tree rel in
  let loose = Pkg.Quad_tree.cut ~radius:(Pkg.Partition.Absolute 40.) tree rel in
  checkb "looser radius, coarser cut" true
    (Pkg.Partition.num_groups loose <= Pkg.Partition.num_groups tight)

let test_quad_tree_matches_query () =
  (* a cut partitioning drives SketchRefine end to end *)
  let rel = qt_rel 600 11 in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 5 AND \
     SUM(P.a) <= 250 MAXIMIZE SUM(P.b)"
  in
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn q) in
  let tree = Pkg.Quad_tree.build ~leaf_size:30 ~attrs:[ "a"; "b" ] rel in
  let part = Pkg.Quad_tree.cut ~tau:60 tree rel in
  let r = Pkg.Sketch_refine.run spec rel part in
  match r.Pkg.Eval.package with
  | Some p -> checkb "feasible" true (Pkg.Package.feasible spec p)
  | None -> Alcotest.fail "dynamic-partitioned SketchRefine found nothing"

(* ------------------------------------------------------------------ *)
(* Section 4.4 fallback strategies                                    *)
(* ------------------------------------------------------------------ *)

(* A dataset engineered so that the plain sketch and the hybrid sketch
   both fail, but merging groups (eventually down to one group, i.e.
   the original problem) succeeds: the window needs one tuple from
   each of two groups whose centroids are far off. *)
let tricky_rel =
  R.of_rows qt_schema
    [
      [| V.Float 0.0; V.Float 1. |];
      [| V.Float 10.0; V.Float 2. |];
      [| V.Float 100.0; V.Float 3. |];
      [| V.Float 110.0; V.Float 4. |];
    ]

let tricky_query =
  (* needs exactly rows 1 (a=10) and 2 (a=100): sum in [109.9, 110.1];
     centroids are 5 and 105 -> rep sum 110 is hit by 1+1? 5+105=110!
     shift the window to exclude centroid combinations: [109.5,
     109.95] cannot be made from centroids or within-group pairs *)
  "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
   SUM(P.a) BETWEEN 109.5 AND 110.5 MAXIMIZE SUM(P.b)"

let test_merge_groups_fallback () =
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn tricky_query) in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] tricky_rel in
  checki "two groups" 2 (Pkg.Partition.num_groups part);
  (* no fallbacks: whatever the sketch says, we take it; this query is
     satisfiable only by mixing groups, which the merge ladder finds *)
  let with_merge =
    Pkg.Sketch_refine.run
      ~options:
        { Pkg.Sketch_refine.default_options with
          fallbacks = [ Pkg.Sketch_refine.Merge_groups ] }
      spec tricky_rel part
  in
  match with_merge.Pkg.Eval.package with
  | Some p ->
    checkb "merge fallback feasible" true (Pkg.Package.feasible spec p);
    checkf "finds the mixed pair" 5. (Pkg.Package.objective spec p)
  | None -> Alcotest.fail "merge ladder should reach the original problem"

let test_drop_attributes_fallback () =
  (* partition on two attributes, one of which drives infeasibility of
     the sketch; dropping it merges groups enough to succeed *)
  let rng = Datagen.Prng.create 13 in
  let rel =
    R.of_rows qt_schema
      (List.init 200 (fun i ->
           [|
             V.Float (if i mod 2 = 0 then 0. else 1000.);
             V.Float (Datagen.Prng.uniform rng 0. 10.);
           |]))
  in
  let q =
    (* needs a mix of low and high 'a' values; partitioning on 'a'
       separates them *)
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
     SUM(P.a) BETWEEN 999.9 AND 1000.1 MAXIMIZE SUM(P.b)"
  in
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn q) in
  let part = Pkg.Partition.create ~tau:100 ~attrs:[ "a"; "b" ] rel in
  let r =
    Pkg.Sketch_refine.run
      ~options:
        { Pkg.Sketch_refine.default_options with
          fallbacks =
            [ Pkg.Sketch_refine.Drop_attributes; Pkg.Sketch_refine.Merge_groups ] }
      spec rel part
  in
  match r.Pkg.Eval.package with
  | Some p -> checkb "feasible after fallback" true (Pkg.Package.feasible spec p)
  | None -> Alcotest.fail "fallback ladder should find the package"

let test_no_fallbacks_reports_infeasible () =
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn tricky_query) in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] tricky_rel in
  let bare =
    Pkg.Sketch_refine.run
      ~options:{ Pkg.Sketch_refine.default_options with fallbacks = [] }
      spec tricky_rel part
  in
  (* this is exactly a (known) false infeasibility *)
  checkb "false infeasibility without fallbacks" true
    (bare.Pkg.Eval.status = Pkg.Eval.Infeasible)

(* ------------------------------------------------------------------ *)
(* Parallel SketchRefine                                              *)
(* ------------------------------------------------------------------ *)

let test_parallel_feasible () =
  let rng = Datagen.Prng.create 55 in
  let rel =
    R.of_rows qt_schema
      (List.init 500 (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng 0. 50.);
             V.Float (Datagen.Prng.uniform rng 0. 100.);
           |]))
  in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 8 AND \
     SUM(P.a) <= 150 MAXIMIZE SUM(P.b)"
  in
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn q) in
  let part = Pkg.Partition.create ~tau:50 ~attrs:[ "a"; "b" ] rel in
  let seq = Pkg.Sketch_refine.run spec rel part in
  let par = Pkg.Parallel.run spec rel part in
  (match par.Pkg.Eval.package with
  | Some p -> checkb "parallel result feasible" true (Pkg.Package.feasible spec p)
  | None -> Alcotest.fail "parallel SketchRefine found nothing");
  (* both must agree on feasibility *)
  checkb "same feasibility verdict" true
    (Option.is_some seq.Pkg.Eval.package = Option.is_some par.Pkg.Eval.package)

let test_parallel_repair_path () =
  (* the tricky two-group instance forces every optimistic answer to be
     rejected; parallel must still deliver via repair + fallback *)
  let spec =
    Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn tricky_query)
  in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] tricky_rel in
  let par =
    Pkg.Parallel.run
      ~options:
        { Pkg.Sketch_refine.default_options with
          fallbacks = [ Pkg.Sketch_refine.Merge_groups ] }
      spec tricky_rel part
  in
  match par.Pkg.Eval.package with
  | Some p -> checkb "repair path feasible" true (Pkg.Package.feasible spec p)
  | None -> Alcotest.fail "parallel repair should reach the answer"

let test_parallel_infeasible () =
  let spec =
    Paql.Translate.compile_exn qt_schema
      (Paql.Parser.parse_exn
         "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 \
          AND SUM(P.a) >= 100000")
  in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] tricky_rel in
  checkb "infeasible detected" true
    ((Pkg.Parallel.run spec tricky_rel part).Pkg.Eval.status
    = Pkg.Eval.Infeasible)

(* ------------------------------------------------------------------ *)
(* Odds and ends                                                      *)
(* ------------------------------------------------------------------ *)

let test_mps_error_paths () =
  let bad docs =
    List.iter
      (fun doc ->
        checkb "rejected" true
          (try
             ignore (Lp.Mps.of_string doc);
             false
           with Invalid_argument _ -> true))
      docs
  in
  bad
    [
      "ROWS\n Z  c0\nENDATA\n";            (* unknown row kind *)
      "ROWS\n N  OBJ\nCOLUMNS\n    x  nosuchrow  1\nENDATA\n";
      "ROWS\n N  OBJ\nBOUNDS\n QQ BND x 1\nENDATA\n";
      "WHATSECTION\nENDATA\n";
    ]

let test_kmeans_degenerate () =
  let rel = qt_rel 5 3 in
  (* k larger than n clamps *)
  let part = Pkg.Kmeans.create ~k:50 ~attrs:[ "a"; "b" ] rel in
  checkb "clamped" true (Pkg.Partition.num_groups part <= 5);
  checkb "valid" true (Pkg.Partition.check part rel = Ok ())

let test_quad_tree_theorem_radius_cut () =
  (* a Theorem-radius cut yields a partition whose groups all satisfy
     the epsilon condition (away-from-zero data so the bound is real) *)
  let rng = Datagen.Prng.create 21 in
  let rel =
    R.of_rows qt_schema
      (List.init 400 (fun _ ->
           [|
             V.Float (Datagen.Prng.uniform rng 50. 100.);
             V.Float (Datagen.Prng.uniform rng 50. 100.);
           |]))
  in
  let spec = Pkg.Partition.Theorem { epsilon = 0.4; maximize = true } in
  let tree = Pkg.Quad_tree.build ~leaf_size:4 ~attrs:[ "a"; "b" ] rel in
  let part = Pkg.Quad_tree.cut ~radius:spec tree rel in
  (* leaves are size <= 4; on this data every non-leaf kept node passed
     the radius test, so the whole partition should verify *)
  match Pkg.Partition.check ~radius:spec part rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_csv_bad_arity () =
  checkb "row arity mismatch rejected" true
    (try
       ignore (Relalg.Csv.of_string "a:int,b:int\n1,2\n3\n");
       false
     with Relalg.Csv.Error (3, _) -> true);
  checkb "empty input rejected" true
    (try
       ignore (Relalg.Csv.of_string "");
       false
     with Relalg.Csv.Error (1, _) -> true)

let test_mps_objsense_default_min () =
  let doc =
    "NAME T\nROWS\n N  OBJ\n G  c0\nCOLUMNS\n    x  OBJ  1\n    x  c0  \
     1\nRHS\n    RHS  c0  2\nBOUNDS\n UP BND  x  9\nENDATA\n"
  in
  let p = Lp.Mps.of_string doc in
  checkb "defaults to minimize" true (p.P.sense = P.Minimize);
  match Lp.Simplex.solve p with
  | Lp.Simplex.Optimal s -> checkf "min at the row bound" 2. s.Lp.Simplex.obj
  | _ -> Alcotest.fail "should solve"

let test_refine_deadline () =
  (* an already-expired deadline must surface as a clean failure *)
  let rel = qt_rel 200 31 in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 5 \
     MAXIMIZE SUM(P.b)"
  in
  let spec = Paql.Translate.compile_exn qt_schema (Paql.Parser.parse_exn q) in
  let part = Pkg.Partition.create ~tau:20 ~attrs:[ "a" ] rel in
  let r =
    Pkg.Sketch_refine.run
      ~options:{ Pkg.Sketch_refine.default_options with max_seconds = -1. }
      spec rel part
  in
  checkb "clean failure" true
    (match r.Pkg.Eval.status with
    | Pkg.Eval.Failed _ -> true
    | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ ->
      (* the sketch may finish before the first deadline check; any
         terminal status without a crash is acceptable *)
      true
    | Pkg.Eval.Infeasible | Pkg.Eval.Degraded _ -> false)

let test_eval_pretty_printers () =
  let to_s pp v = Format.asprintf "%a" pp v in
  checkb "optimal" true (to_s Pkg.Eval.pp_status Pkg.Eval.Optimal = "optimal");
  checkb "gap" true
    (to_s Pkg.Eval.pp_status (Pkg.Eval.Feasible 0.125) = "feasible (gap 12.50%)");
  checkb "failed" true
    (to_s Pkg.Eval.pp_status
       (Pkg.Eval.Failed (Pkg.Eval.failure (Pkg.Eval.Solver_error "x")))
    = "failed: solver error: x");
  checkb "failed with context" true
    (to_s Pkg.Eval.pp_status
       (Pkg.Eval.Failed
          (Pkg.Eval.failure ~stage:Pkg.Eval.Refine ~group:3
             Pkg.Eval.Deadline_exceeded))
    = "failed: deadline exceeded [stage=refine, group=3]")

let () =
  Alcotest.run "extensions"
    [
      ( "presolve",
        [
          Alcotest.test_case "fixed variables" `Quick test_presolve_fixed_vars;
          Alcotest.test_case "singleton rows" `Quick
            test_presolve_singleton_row;
          Alcotest.test_case "infeasibility detection" `Quick
            test_presolve_detects_infeasibility;
          Alcotest.test_case "redundant rows" `Quick
            test_presolve_redundant_rows;
          QCheck_alcotest.to_alcotest presolve_equivalence_prop;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "cover cut found and valid" `Quick
            test_cover_cut_found;
          Alcotest.test_case "non-binary rows skipped" `Quick
            test_cuts_skip_nonbinary;
          QCheck_alcotest.to_alcotest cuts_preserve_optimum_prop;
        ] );
      ( "quad_tree",
        [
          Alcotest.test_case "cut invariants" `Quick
            test_quad_tree_cut_invariants;
          Alcotest.test_case "coarsest property" `Quick
            test_quad_tree_coarsest_property;
          Alcotest.test_case "drives SketchRefine" `Quick
            test_quad_tree_matches_query;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "feasible results" `Quick test_parallel_feasible;
          Alcotest.test_case "repair path" `Quick test_parallel_repair_path;
          Alcotest.test_case "infeasible query" `Quick
            test_parallel_infeasible;
        ] );
      ( "odds-and-ends",
        [
          Alcotest.test_case "mps error paths" `Quick test_mps_error_paths;
          Alcotest.test_case "kmeans degenerate" `Quick test_kmeans_degenerate;
          Alcotest.test_case "eval printers" `Quick test_eval_pretty_printers;
          Alcotest.test_case "theorem radius cut" `Quick
            test_quad_tree_theorem_radius_cut;
          Alcotest.test_case "csv bad arity" `Quick test_csv_bad_arity;
          Alcotest.test_case "mps objsense default" `Quick
            test_mps_objsense_default_min;
          Alcotest.test_case "refine deadline" `Quick test_refine_deadline;
        ] );
      ( "fallbacks",
        [
          Alcotest.test_case "merge groups ladder" `Quick
            test_merge_groups_fallback;
          Alcotest.test_case "drop attributes" `Quick
            test_drop_attributes_fallback;
          Alcotest.test_case "bare infeasibility" `Quick
            test_no_fallbacks_reports_infeasible;
        ] );
    ]
