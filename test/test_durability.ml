(* Durability tests: the WAL record format (round-trips, torn tails,
   fsync-failure rollback, sequence continuity across checkpoints),
   startup recovery (checkpoint + replay, the crash-between-publish-
   and-truncate window, stale tempfiles, torn tails), the client retry
   budget (backoff across a server restart, non-idempotent verbs never
   resent), and the chaos kill/restart smoke — real [pkgq_server]
   children crashed at injected points and recovered byte-identically
   to the acknowledged prefix. *)

module R = Relalg.Relation
module Wal = Store.Wal
module Rec = Store.Recovery
module Seg = Store.Segment
module Srv = Service.Server
module Cl = Service.Client
module Pr = Service.Protocol
module Ch = Service.Chaos
module W = Datagen.Workload

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkgq-test-durability-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let tmp_path name =
  let d = Filename.concat tmp_dir name in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let fp = Seg.fingerprint

let galaxy n seed = Datagen.Galaxy.generate ~seed n

let batch rows seed = W.append_batch ~dataset:`Galaxy ~rows ~seed

let read_bytes path = In_channel.with_open_bin path In_channel.input_all

let write_bytes path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let file_size path = (Unix.stat path).Unix.st_size

(* ------------------------------------------------------------------ *)
(* WAL records                                                        *)
(* ------------------------------------------------------------------ *)

let test_wal_roundtrip () =
  let dir = tmp_path "wal-rt" in
  let path = Filename.concat dir "wal.log" in
  let b1 = batch 4 11 and b2 = batch 3 12 in
  let wal, rp0 = Wal.open_log ~sync:Wal.Always path in
  checki "fresh log is empty" 0 (List.length rp0.Wal.ops);
  checki "seq 1" 1 (Wal.append wal (Wal.Append b1));
  checki "seq 2" 2 (Wal.append wal (Wal.Delete [ 0; 2 ]));
  checki "seq 3" 3 (Wal.append wal (Wal.Append b2));
  checki "records counted" 3 (Wal.records wal);
  Wal.close wal;
  let rp = Wal.replay path in
  checki "three records back" 3 (List.length rp.Wal.ops);
  checki "no torn tail" 0 rp.Wal.torn_bytes;
  checki "last seq" 3 rp.Wal.replay_last_seq;
  (match rp.Wal.ops with
  | [ { Wal.seq = 1; epoch = 0; op = Wal.Append a };
      { Wal.seq = 2; epoch = 0; op = Wal.Delete ids };
      { Wal.seq = 3; epoch = 0; op = Wal.Append b } ] ->
    checks "append 1 bytes" (fp b1) (fp a);
    checkb "delete ids" true (ids = [ 0; 2 ]);
    checks "append 2 bytes" (fp b2) (fp b)
  | _ -> Alcotest.fail "unexpected replay shape");
  (* reopening appends after the valid prefix, seq continues *)
  let wal2, rp2 = Wal.open_log ~sync:Wal.Always path in
  checki "reopen sees all" 3 (List.length rp2.Wal.ops);
  checki "seq continues" 4 (Wal.append wal2 (Wal.Delete [ 1 ]));
  Wal.close wal2

let test_wal_torn_tail () =
  let dir = tmp_path "wal-torn" in
  let path = Filename.concat dir "wal.log" in
  let b1 = batch 5 21 in
  let wal, _ = Wal.open_log ~sync:Wal.Always path in
  ignore (Wal.append wal (Wal.Append b1));
  ignore (Wal.append wal (Wal.Delete [ 0 ]));
  Wal.close wal;
  let intact = read_bytes path in
  (* cut the last frame short: a crash mid-write *)
  let torn_prefix = String.sub intact 0 (String.length intact - 3) in
  write_bytes path torn_prefix;
  let rp = Wal.replay path in
  checki "only the intact record" 1 (List.length rp.Wal.ops);
  checkb "torn bytes reported" true (rp.Wal.torn_bytes > 0);
  checkb "file untouched without ~truncate" true
    (file_size path = String.length torn_prefix);
  let rp' = Wal.replay ~truncate:true path in
  checki "still one record" 1 (List.length rp'.Wal.ops);
  checki "tail cut off on disk" rp'.Wal.valid_bytes (file_size path);
  checki "clean after truncation" 0 (Wal.replay path).Wal.torn_bytes;
  (* garbage appended to a valid log is also a torn tail *)
  write_bytes path (read_bytes path ^ "\x20\x00\x00\x00junk");
  let rp'' = Wal.replay path in
  checki "garbage does not decode" 1 (List.length rp''.Wal.ops);
  checkb "garbage reported torn" true (rp''.Wal.torn_bytes > 0)

let test_wal_fsync_fail () =
  let dir = tmp_path "wal-fsync" in
  let path = Filename.concat dir "wal.log" in
  let wal, _ = Wal.open_log ~sync:Wal.Always path in
  ignore (Wal.append wal (Wal.Append (batch 3 31)));
  let size_before = file_size path in
  (match Pkg.Faults.parse "wal=fsync:fail" with
  | Ok spec -> Pkg.Faults.install spec
  | Error msg -> Alcotest.fail ("wal=fsync:fail should parse: " ^ msg));
  Fun.protect ~finally:Pkg.Faults.clear (fun () ->
      match Wal.append wal (Wal.Append (batch 2 32)) with
      | _ -> Alcotest.fail "append must raise under wal=fsync:fail"
      | exception Wal.Sync_failed _ -> ());
  (* the failed record was rolled back out of the log *)
  checki "log unchanged" size_before (file_size path);
  checki "seq not consumed durably" 1 (Wal.replay path).Wal.replay_last_seq;
  (* and the log still works once the fault clears *)
  checki "next record" 2 (Wal.append wal (Wal.Delete [ 0 ]));
  Wal.close wal;
  checki "both records valid" 2 (List.length (Wal.replay path).Wal.ops)

let test_wal_fault_grammar () =
  let ok s = match Pkg.Faults.parse s with Ok _ -> true | Error _ -> false in
  checkb "torn:2 parses" true (ok "wal=torn:2");
  checkb "crash:5 parses" true (ok "wal=crash:5");
  checkb "fsync:fail parses" true (ok "wal=fsync:fail");
  checkb "torn:0 rejected" false (ok "wal=torn:0");
  checkb "bogus selector rejected" false (ok "wal=bogus:1");
  checkb "fsync needs fail" false (ok "wal=fsync:3")

let test_wal_sync_env () =
  Unix.putenv Wal.sync_env_var "off";
  checkb "off selects Never" true (Wal.sync_from_env () = Wal.Never);
  Unix.putenv Wal.sync_env_var "always";
  checkb "always selects Always" true (Wal.sync_from_env () = Wal.Always);
  Unix.putenv Wal.sync_env_var ""

(* ------------------------------------------------------------------ *)
(* Epoch stamps (fencing)                                              *)
(* ------------------------------------------------------------------ *)

(* One on-disk frame: [length (i32 LE) | record image]. *)
let frame image =
  let hdr = Bytes.create 4 in
  Bytes.set_int32_le hdr 0 (Int32.of_int (String.length image));
  Bytes.to_string hdr ^ image

(* A version-1 record image, as every log wrote before the epoch field
   existed: [seq | tag | payload], no epoch. *)
let encode_record_v1 ~seq op =
  let b = Buffer.create 256 in
  Store.Wire.put_i64 b seq;
  (match op with
  | Wal.Append rel ->
    Store.Wire.put_u8 b 0;
    Store.Wire.put_str b (Store.Segment.to_string rel)
  | Wal.Delete ids ->
    Store.Wire.put_u8 b 1;
    Store.Wire.put_i32 b (List.length ids);
    List.iter (Store.Wire.put_i32 b) ids);
  Store.Wire.seal ~magic:"PKGQWAL1" ~version:1 b

let gen_wal_case =
  QCheck.Gen.(
    triple (int_range 1 1_000_000) (int_range 0 1_000_000)
      (oneof
         [ map
             (fun (rows, seed) -> Wal.Append (batch rows seed))
             (pair (int_range 1 6) (int_range 0 999));
           map (fun ids -> Wal.Delete ids)
             (list_size (int_range 0 8) (int_range 0 500)) ]))

let print_wal_case (seq, epoch, op) =
  Printf.sprintf "seq=%d epoch=%d %s" seq epoch
    (match op with
    | Wal.Append rel ->
      Printf.sprintf "append(%d rows)" (R.cardinality rel)
    | Wal.Delete ids ->
      Printf.sprintf "delete[%s]"
        (String.concat ";" (List.map string_of_int ids)))

let record_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"epoch-stamped record image round-trips"
    (QCheck.make ~print:print_wal_case gen_wal_case)
    (fun (seq, epoch, op) ->
      let r = Wal.decode_record (Wal.encode_record ~seq ~epoch op) in
      r.Wal.seq = seq && r.Wal.epoch = epoch
      &&
      match (r.Wal.op, op) with
      | Wal.Append a, Wal.Append b -> fp a = fp b
      | Wal.Delete a, Wal.Delete b -> a = b
      | _ -> false)

let test_wal_v1_compat () =
  let b1 = batch 3 111 in
  (* a lone v1 image decodes as epoch 0 *)
  let r = Wal.decode_record (encode_record_v1 ~seq:7 (Wal.Append b1)) in
  checki "v1 seq" 7 r.Wal.seq;
  checki "v1 decodes as epoch 0" 0 r.Wal.epoch;
  (match r.Wal.op with
  | Wal.Append a -> checks "v1 payload intact" (fp b1) (fp a)
  | Wal.Delete _ -> Alcotest.fail "v1 op tag");
  (* a whole v1 log replays, and a reopened one accepts v2 appends *)
  let dir = tmp_path "wal-v1" in
  let path = Filename.concat dir "wal.log" in
  write_bytes path
    (frame (encode_record_v1 ~seq:1 (Wal.Append b1))
    ^ frame (encode_record_v1 ~seq:2 (Wal.Delete [ 0 ])));
  let rp = Wal.replay path in
  checki "v1 log replays" 2 (List.length rp.Wal.ops);
  checki "v1 log is epoch 0" 0 rp.Wal.replay_last_epoch;
  checki "no torn bytes" 0 rp.Wal.torn_bytes;
  let wal, _ = Wal.open_log ~sync:Wal.Always path in
  checki "seq continues past v1 records" 3
    (Wal.append ~epoch:4 wal (Wal.Delete [ 1 ]));
  Wal.close wal;
  let rp' = Wal.replay path in
  checki "mixed-version log replays" 3 (List.length rp'.Wal.ops);
  checki "v2 epoch recorded" 4 rp'.Wal.replay_last_epoch

let test_wal_fenced_suffix () =
  let dir = tmp_path "wal-fence" in
  let path = Filename.concat dir "wal.log" in
  let wal, _ = Wal.open_log ~sync:Wal.Always path in
  ignore (Wal.append ~epoch:1 wal (Wal.Append (batch 3 121)));
  ignore (Wal.append ~epoch:2 wal (Wal.Append (batch 2 122)));
  Wal.close wal;
  (* a deposed primary's write lands after the epoch moved on: the
     regressing suffix is discarded, apart from torn accounting *)
  write_bytes path
    (read_bytes path ^ frame (Wal.encode_record ~seq:3 ~epoch:1 (Wal.Delete [ 0 ])));
  let rp = Wal.replay path in
  checki "fenced suffix dropped" 2 (List.length rp.Wal.ops);
  checkb "fenced bytes counted" true (rp.Wal.fenced_bytes > 0);
  checki "not confused with torn bytes" 0 rp.Wal.torn_bytes;
  checki "prefix epoch stands" 2 rp.Wal.replay_last_epoch;
  (* truncation cuts the fenced suffix on disk, preserving monotonicity *)
  let rp' = Wal.replay ~truncate:true path in
  checki "fenced tail cut on disk" rp'.Wal.valid_bytes (file_size path);
  checki "clean after truncation" 0 (Wal.replay path).Wal.fenced_bytes;
  (* a live appender clamps a stale stamp up to the log's maximum, so
     one log's epochs never regress in the first place *)
  let wal2, rp2 = Wal.open_log ~sync:Wal.Always path in
  checki "open seeds epoch from replay" 2 rp2.Wal.replay_last_epoch;
  ignore (Wal.append ~epoch:1 wal2 (Wal.Delete [ 0 ]));
  checki "append clamped the stamp" 2 (Wal.last_epoch wal2);
  Wal.close wal2;
  checki "on-disk epoch monotone" 2 (Wal.replay path).Wal.replay_last_epoch

let test_recover_truncates_fenced_suffix () =
  let dir = tmp_path "rec-fence" in
  let base = galaxy 10 131 in
  let b1 = batch 3 132 in
  let rel, wal, _ = Rec.recover ~dir ~base:(fun () -> base) () in
  ignore (Wal.append ~epoch:3 wal (Wal.Append b1));
  Wal.close wal;
  let expect = Rec.apply rel (Wal.Append b1) in
  write_bytes (Rec.wal_path dir)
    (read_bytes (Rec.wal_path dir)
    ^ frame (Wal.encode_record ~seq:2 ~epoch:1 (Wal.Delete [ 0 ])));
  let rel', wal', stats = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal')
    (fun () ->
      checks "fenced write never applied" (fp expect) (fp rel');
      checkb "fenced bytes surfaced" true (stats.Rec.fenced_bytes > 0);
      checki "epoch surfaced" 3 stats.Rec.last_epoch;
      checki "only the legitimate record" 1 stats.Rec.records_replayed)

(* ------------------------------------------------------------------ *)
(* Recovery                                                           *)
(* ------------------------------------------------------------------ *)

let test_recover_fresh_dir () =
  let dir = Filename.concat tmp_dir "rec-fresh/nested" in
  let base = galaxy 20 41 in
  let rel, wal, stats = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal)
    (fun () ->
      checks "base served" (fp base) (fp rel);
      checkb "no checkpoint yet" true (stats.Rec.checkpoint_rows = None);
      checki "nothing replayed" 0 stats.Rec.records_replayed)

let test_recover_replays_log () =
  let dir = tmp_path "rec-replay" in
  let base = galaxy 25 42 in
  let b1 = batch 4 43 and b2 = batch 2 44 in
  let rel, wal, _ = Rec.recover ~dir ~base:(fun () -> base) () in
  ignore (Wal.append wal (Wal.Append b1));
  ignore (Wal.append wal (Wal.Append b2));
  ignore (Wal.append wal (Wal.Delete [ 0; 26 ]));
  let expect =
    List.fold_left Rec.apply rel
      [ Wal.Append b1; Wal.Append b2; Wal.Delete [ 0; 26 ] ]
  in
  Wal.close wal;
  let rel', wal', stats = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal')
    (fun () ->
      checks "replayed state" (fp expect) (fp rel');
      checki "three records replayed" 3 stats.Rec.records_replayed;
      checki "rows appended" 6 stats.Rec.rows_appended;
      checki "rows deleted" 2 stats.Rec.rows_deleted;
      checki "none skipped" 0 stats.Rec.records_skipped)

let test_checkpoint_skip_guard () =
  (* A crash *between* checkpoint publish and log truncation leaves
     both the fresh checkpoint and the records it absorbed on disk;
     the sequence-number guard must not apply them twice. *)
  let dir = tmp_path "rec-skip" in
  let base = galaxy 15 51 in
  let b1 = batch 3 52 and b2 = batch 4 53 in
  let rel, wal, _ = Rec.recover ~dir ~base:(fun () -> base) () in
  ignore (Wal.append wal (Wal.Append b1));
  ignore (Wal.append wal (Wal.Append b2));
  let rel2 = List.fold_left Rec.apply rel [ Wal.Append b1; Wal.Append b2 ] in
  let pre_ckpt_log = read_bytes (Rec.wal_path dir) in
  Rec.checkpoint ~dir wal rel2;
  checki "checkpoint truncated the log" 0 (file_size (Rec.wal_path dir));
  Wal.close wal;
  (* resurrect the pre-checkpoint log: the simulated crash window *)
  write_bytes (Rec.wal_path dir) pre_ckpt_log;
  let rel', wal', stats = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal')
    (fun () ->
      checks "nothing applied twice" (fp rel2) (fp rel');
      checki "both records skipped" 2 stats.Rec.records_skipped;
      checki "none replayed" 0 stats.Rec.records_replayed;
      checkb "checkpoint loaded" true
        (stats.Rec.checkpoint_rows = Some (R.cardinality rel2));
      (* new writes keep numbering above the absorbed records *)
      checki "seq above checkpoint" 3 (Wal.append wal' (Wal.Delete [ 0 ])))

let test_recover_sweeps_stale_tmp () =
  let dir = tmp_path "rec-tmp" in
  let base = galaxy 10 61 in
  let stale = Rec.checkpoint_path dir ^ ".tmp.4242" in
  write_bytes stale "half-written checkpoint from a dead process";
  let rel, wal, _ = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal)
    (fun () ->
      checks "stale tmp ignored" (fp base) (fp rel);
      checkb "stale tmp swept" false (Sys.file_exists stale))

let test_recover_truncates_torn_tail () =
  let dir = tmp_path "rec-torn" in
  let base = galaxy 12 71 in
  let b1 = batch 3 72 in
  let rel, wal, _ = Rec.recover ~dir ~base:(fun () -> base) () in
  ignore (Wal.append wal (Wal.Append b1));
  Wal.close wal;
  let expect = Rec.apply rel (Wal.Append b1) in
  let intact = read_bytes (Rec.wal_path dir) in
  write_bytes (Rec.wal_path dir)
    (intact ^ String.sub intact 0 (String.length intact / 2));
  let rel', wal', stats = Rec.recover ~dir ~base:(fun () -> base) () in
  Fun.protect
    ~finally:(fun () -> Wal.close wal')
    (fun () ->
      checks "valid prefix recovered" (fp expect) (fp rel');
      checkb "torn bytes counted" true (stats.Rec.torn_bytes > 0);
      checki "tail truncated on disk" (String.length intact)
        (file_size (Rec.wal_path dir)))

let test_apply_matches_live_semantics () =
  let base = galaxy 30 81 in
  let extra = batch 5 82 in
  let appended = Rec.apply base (Wal.Append extra) in
  checki "rows concatenated" 35 (R.cardinality appended);
  checkb "appended rows in order" true
    (R.row appended 30 = R.row extra 0 && R.row appended 34 = R.row extra 4);
  let deleted = Rec.apply appended (Wal.Delete [ 0; 34; 17; 17 ]) in
  checki "delete compacts, duplicates allowed" 32 (R.cardinality deleted);
  checkb "survivors keep order" true
    (R.row deleted 0 = R.row appended 1 && R.row deleted 31 = R.row appended 33);
  (match Rec.apply appended (Wal.Delete [ 99 ]) with
  | _ -> Alcotest.fail "out-of-range delete must raise"
  | exception Store.Wire.Error _ -> ());
  match
    Rec.apply base (Wal.Append (Relalg.Relation.of_rows (R.schema extra) []))
  with
  | r -> checki "empty append is identity" 30 (R.cardinality r)
  | exception _ -> Alcotest.fail "empty append must not raise"

(* ------------------------------------------------------------------ *)
(* Client retries                                                     *)
(* ------------------------------------------------------------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  Unix.close fd;
  port

let base_cfg () =
  {
    (Srv.default_config ()) with
    Srv.workers = 2;
    queue = 8;
    log_every = 0.;
  }

let test_retry_gives_up () =
  let port = free_port () in
  (* retries off (the default): the raw connection error surfaces *)
  (match Cl.connect ~host:"127.0.0.1" ~port () with
  | c ->
    Cl.close c;
    Alcotest.fail "connect to a dead port must fail"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  (* with a budget: typed give-up carrying the attempt count *)
  match Cl.connect ~retries:2 ~host:"127.0.0.1" ~port () with
  | c ->
    Cl.close c;
    Alcotest.fail "connect to a dead port must give up"
  | exception Cl.Gave_up { attempts; last } ->
    checki "attempts counted" 3 attempts;
    checkb "last error is the connection error" true
      (match last with Unix.Unix_error _ -> true | _ -> false)

let test_retry_survives_restart () =
  let port = free_port () in
  let galaxy = galaxy 50 91 in
  let cfg = { (base_cfg ()) with Srv.port } in
  let t1 = Srv.start cfg galaxy in
  let t2 = ref None in
  let c = Cl.connect ~retries:6 ~host:"127.0.0.1" ~port () in
  Fun.protect
    ~finally:(fun () ->
      Cl.close c;
      Option.iter Srv.stop !t2)
    (fun () ->
      (match Cl.ping c with
      | Pr.Resp_ok _ -> ()
      | _ -> Alcotest.fail "first ping");
      Srv.stop t1;
      (* restart on the same port while the client is mid-backoff *)
      let restarter =
        Thread.create
          (fun () ->
            Thread.delay 0.25;
            t2 := Some (Srv.start cfg galaxy))
          ()
      in
      let resp = Cl.ping c in
      Thread.join restarter;
      match resp with
      | Pr.Resp_ok _ -> ()
      | _ -> Alcotest.fail "ping must survive the restart window")

let test_append_never_resent () =
  let galaxy = galaxy 40 92 in
  let t = Srv.start (base_cfg ()) galaxy in
  let c = Cl.connect ~retries:5 ~host:"127.0.0.1" ~port:(Srv.port t) () in
  Fun.protect
    ~finally:(fun () -> Cl.close c)
    (fun () ->
      (match Cl.ping c with
      | Pr.Resp_ok _ -> ()
      | _ -> Alcotest.fail "ping");
      Srv.stop t;
      (* non-idempotent: the connection error must surface immediately,
         never a transparent reconnect-and-resend *)
      match Cl.append c ~csv:(Relalg.Csv.to_string (batch 2 93)) with
      | Pr.Resp_ok _ -> Alcotest.fail "append must not succeed after stop"
      | Pr.Resp_err _ -> Alcotest.fail "append must not reach a server"
      | exception Cl.Gave_up _ ->
        Alcotest.fail "append must not be retried to give-up"
      | exception e ->
        checkb "connection error surfaces" true
          (match e with
          | Unix.Unix_error _ | Sys_error _ | End_of_file
          | Pr.Protocol_error _ ->
            true
          | _ -> false))

(* ------------------------------------------------------------------ *)
(* Chaos kill/restart smoke                                           *)
(* ------------------------------------------------------------------ *)

let server_exe =
  let p =
    match Sys.getenv_opt "PKGQ_SERVER_EXE" with
    | Some p -> p
    | None -> Filename.concat ".." "bin/pkgq_server.exe"
  in
  if Filename.is_relative p then Filename.concat (Sys.getcwd ()) p else p

let chaos_base = lazy (galaxy 60 101)

let chaos_batches = List.map (fun k -> batch (2 + (k mod 3)) (200 + k)) [ 1; 2; 3; 4 ]

let run_point ?checkpoint name point =
  let r =
    Ch.run_crash ~exe:server_exe
      ~dir:(Filename.concat tmp_dir ("chaos-" ^ name))
      ~base:(Lazy.force chaos_base) ~batches:chaos_batches ~point ?checkpoint
      ()
  in
  (match Ch.check r with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  r

let test_chaos_reference () =
  let r =
    Ch.run_reference ~exe:server_exe
      ~dir:(Filename.concat tmp_dir "chaos-ref")
      ~base:(Lazy.force chaos_base) ~batches:chaos_batches ()
  in
  let expect_fp, expect_rows = r.Ch.refs.(Array.length r.Ch.refs - 1) in
  checks "live server matches local reference" expect_fp r.Ch.recovered_fp;
  checki "row count matches" expect_rows r.Ch.recovered_rows

let test_chaos_torn () =
  let r = run_point "torn" (Ch.Torn 2) in
  checkb "server died at the injected point" true r.Ch.died;
  checki "one append acknowledged" 1 r.Ch.acked;
  checks "recovered = acknowledged prefix" (fst r.Ch.refs.(1)) r.Ch.recovered_fp

let test_chaos_crash_pre_ack () =
  let r = run_point "crash" (Ch.Crash 2) in
  checkb "server died at the injected point" true r.Ch.died;
  checki "ack was lost" 1 r.Ch.acked;
  (* the in-doubt record was durable, so replaying it is the one
     permitted outcome beyond the acknowledged prefix *)
  checks "in-doubt write replayed" (fst r.Ch.refs.(2)) r.Ch.recovered_fp

let test_chaos_kill_with_checkpoint () =
  let r = run_point ~checkpoint:2 "kill-ckpt" (Ch.Kill_after 3) in
  checkb "killed after three acks" true r.Ch.died;
  checki "three acknowledged" 3 r.Ch.acked;
  checks "checkpoint + replay = acknowledged state" (fst r.Ch.refs.(3))
    r.Ch.recovered_fp;
  checkb "recovery was timed" true (r.Ch.recovery_seconds > 0.)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "durability"
    [
      ( "wal",
        [
          Alcotest.test_case "record round-trip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail detected and truncated" `Quick
            test_wal_torn_tail;
          Alcotest.test_case "fsync failure rolls back" `Quick
            test_wal_fsync_fail;
          Alcotest.test_case "fault grammar" `Quick test_wal_fault_grammar;
          Alcotest.test_case "sync knob from env" `Quick test_wal_sync_env;
        ] );
      ( "epoch",
        [
          QCheck_alcotest.to_alcotest record_roundtrip_prop;
          Alcotest.test_case "v1 records decode as epoch 0" `Quick
            test_wal_v1_compat;
          Alcotest.test_case "epoch-regressing suffix fenced off" `Quick
            test_wal_fenced_suffix;
          Alcotest.test_case "recovery truncates fenced suffix" `Quick
            test_recover_truncates_fenced_suffix;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "fresh dir serves base" `Quick
            test_recover_fresh_dir;
          Alcotest.test_case "replays the log" `Quick test_recover_replays_log;
          Alcotest.test_case "checkpoint skip guard" `Quick
            test_checkpoint_skip_guard;
          Alcotest.test_case "sweeps stale checkpoint tmp" `Quick
            test_recover_sweeps_stale_tmp;
          Alcotest.test_case "truncates torn tail" `Quick
            test_recover_truncates_torn_tail;
          Alcotest.test_case "apply matches live semantics" `Quick
            test_apply_matches_live_semantics;
        ] );
      ( "retry",
        [
          Alcotest.test_case "typed give-up" `Quick test_retry_gives_up;
          Alcotest.test_case "idempotent request survives restart" `Quick
            test_retry_survives_restart;
          Alcotest.test_case "append never resent" `Quick
            test_append_never_resent;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "never-crashed reference" `Quick
            test_chaos_reference;
          Alcotest.test_case "torn tail crash" `Quick test_chaos_torn;
          Alcotest.test_case "crash before ack" `Quick
            test_chaos_crash_pre_ack;
          Alcotest.test_case "kill after checkpoint" `Quick
            test_chaos_kill_with_checkpoint;
        ] );
    ]
