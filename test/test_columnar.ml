(* Equivalence and determinism tests for the columnar scan layer.

   The vectorized path (Expr.compile / Scan / Aggregate.over) must
   agree with the interpreted reference (Expr.eval / Aggregate.over_rows)
   on every input, including NULLs under SQL three-valued logic; and
   parallel scans must return bitwise-identical results for any worker
   count. Generators keep numeric magnitudes small and division
   denominators at nonzero constants so int and float arithmetic stay
   exact and no NaN arises from the arithmetic itself (NaN-as-NULL is
   the columnar encoding, not a value the interpreted path produces). *)

module V = Relalg.Value
module S = Relalg.Schema
module T = Relalg.Tuple
module E = Relalg.Expr
module R = Relalg.Relation
module A = Relalg.Aggregate
module C = Relalg.Column
module Scan = Relalg.Scan

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let schema =
  S.make
    [
      { S.name = "a"; ty = V.TInt };
      { S.name = "b"; ty = V.TFloat };
      { S.name = "c"; ty = V.TFloat };
      { S.name = "s"; ty = V.TStr };
    ]

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let gen_cell_int =
  QCheck.Gen.(
    frequency
      [ (1, return V.Null); (6, map (fun k -> V.Int k) (int_range (-20) 20)) ])

(* floats on a quarter grid: exact in double precision through the
   bounded products the expression generator can build *)
let gen_cell_float =
  QCheck.Gen.(
    frequency
      [
        (1, return V.Null);
        (6, map (fun k -> V.Float (0.25 *. float_of_int k)) (int_range (-80) 80));
      ])

let gen_cell_str =
  QCheck.Gen.(
    frequency
      [ (1, return V.Null); (3, map (fun s -> V.Str s) (oneofl [ "x"; "y"; "z" ])) ])

let gen_row =
  QCheck.Gen.(
    gen_cell_int >>= fun a ->
    gen_cell_float >>= fun b ->
    gen_cell_float >>= fun c ->
    gen_cell_str >>= fun s -> return (T.make [ a; b; c; s ]))

let gen_rows = QCheck.Gen.(list_size (int_range 0 120) gen_row)

(* Nonzero constant denominators: the vectorized path reads 0/0 = nan
   as NULL while the interpreted path treats it as an ordinary float,
   so division by a value that could be zero is out of scope (see
   DESIGN.md). *)
let gen_denom =
  QCheck.Gen.(
    oneof
      [
        map (fun k -> E.Const (V.Int k)) (oneofl [ 1; 2; 3; -2 ]);
        map (fun f -> E.Const (V.Float f)) (oneofl [ 0.5; 1.25; 2.; 4.; -3. ]);
      ])

let rec gen_num depth =
  QCheck.Gen.(
    let leaf =
      frequency
        [
          (3, map (fun n -> E.Attr n) (oneofl [ "a"; "b"; "c" ]));
          (2, map (fun k -> E.Const (V.Int k)) (int_range (-20) 20));
          ( 2,
            map
              (fun k -> E.Const (V.Float (0.25 *. float_of_int k)))
              (int_range (-80) 80) );
          (1, return (E.Const V.Null));
        ]
    in
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          ( 3,
            oneofl [ E.Add; E.Sub; E.Mul ] >>= fun op ->
            gen_num (depth - 1) >>= fun x ->
            gen_num (depth - 1) >>= fun y -> return (E.Binop (op, x, y)) );
          ( 1,
            gen_num (depth - 1) >>= fun x ->
            gen_denom >>= fun d -> return (E.Binop (E.Div, x, d)) );
          (1, map (fun x -> E.Neg x) (gen_num (depth - 1)));
        ])

let gen_cmp = QCheck.Gen.oneofl [ E.Eq; E.Neq; E.Lt; E.Le; E.Gt; E.Ge ]

let rec gen_bool depth =
  QCheck.Gen.(
    let leaf =
      frequency
        [
          ( 5,
            gen_cmp >>= fun c ->
            gen_num 2 >>= fun x ->
            gen_num 2 >>= fun y -> return (E.Cmp (c, x, y)) );
          ( 1,
            gen_num 2 >>= fun x ->
            gen_num 1 >>= fun lo ->
            gen_num 1 >>= fun hi -> return (E.Between (x, lo, hi)) );
          (1, map (fun x -> E.IsNull x) (gen_num 2));
          (1, map (fun x -> E.IsNotNull x) (gen_num 2));
          (1, map (fun b -> E.Const (V.Bool b)) bool);
        ]
    in
    if depth = 0 then leaf
    else
      frequency
        [
          (3, leaf);
          ( 2,
            gen_bool (depth - 1) >>= fun x ->
            gen_bool (depth - 1) >>= fun y -> return (E.And (x, y)) );
          ( 2,
            gen_bool (depth - 1) >>= fun x ->
            gen_bool (depth - 1) >>= fun y -> return (E.Or (x, y)) );
          (1, map (fun x -> E.Not x) (gen_bool (depth - 1)));
        ])

let gen_case =
  QCheck.Gen.(
    gen_rows >>= fun rows ->
    gen_bool 3 >>= fun pred -> return (rows, pred))

let print_case (rows, pred) =
  Format.asprintf "%d rows, pred = %a" (List.length rows) E.pp pred

let relation rows = R.of_rows schema rows

let tri_of_value = function
  | V.Bool true -> E.tri_true
  | V.Bool false -> E.tri_false
  | V.Null -> E.tri_null
  | v -> Alcotest.failf "predicate evaluated to %s" (V.to_string v)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

(* Expr.compile agrees with Expr.eval row by row, including the NULL
   tri-state — not just the WHERE-clause collapse of NULL to false. *)
let compile_matches_eval_prop =
  QCheck.Test.make ~count:500 ~name:"Expr.compile matches Expr.eval"
    (QCheck.make ~print:print_case gen_case)
    (fun (rows, pred) ->
      let r = relation rows in
      match R.compile_pred r pred with
      | None -> QCheck.Test.fail_report "numeric predicate did not compile"
      | Some f ->
        List.iteri
          (fun i t ->
            let expected = tri_of_value (E.eval schema t pred) in
            if f i <> expected then
              QCheck.Test.fail_reportf "row %d: compiled %d, eval %d" i (f i)
                expected)
          rows;
        true)

(* Vectorized selection (Relation.select / Scan) returns exactly the
   rows the interpreted predicate accepts, in order. *)
let select_matches_eval_prop =
  QCheck.Test.make ~count:300 ~name:"vectorized select matches eval filter"
    (QCheck.make ~print:print_case gen_case)
    (fun (rows, pred) ->
      let r = relation rows in
      let expected =
        List.filteri (fun _ t -> E.eval_bool schema t pred) rows
      in
      let via_select = R.to_list (R.select r pred) in
      let via_scan = R.to_list (Scan.select ~workers:1 r pred) in
      let idx = R.select_indices r pred in
      let idx_scan = Scan.select_indices ~workers:1 r pred in
      via_select = expected && via_scan = expected && idx = idx_scan
      && Array.length idx = List.length expected)

(* Aggregate.over (Scan.float_stats path) agrees with the interpreted
   Aggregate.over_rows reference, with and without a WHERE filter. *)
let aggregate_matches_interp_prop =
  QCheck.Test.make ~count:300 ~name:"vectorized aggregates match over_rows"
    (QCheck.make ~print:print_case gen_case)
    (fun (rows, pred) ->
      let r = relation rows in
      let filtered =
        List.to_seq (List.filter (fun t -> E.eval_bool schema t pred) rows)
      in
      let agree f =
        let reference = A.over_rows schema filtered f in
        let fast = A.over ~where:pred r f in
        match (reference, fast) with
        | V.Float x, V.Float y ->
          Float.abs (x -. y) <= 1e-9 *. (1. +. Float.abs x)
        | a, b -> a = b
      in
      List.for_all agree
        [
          A.Count_star;
          A.Count "a";
          A.Count "s";
          A.Sum "a";
          A.Sum "b";
          A.Avg "b";
          A.Min "c";
          A.Max "c";
        ])

(* Scans are deterministic in the worker count: same mask, indices and
   statistics for 1..4 workers, even with a tiny chunk size forcing
   many chunks. *)
let scan_determinism_prop =
  QCheck.Test.make ~count:100 ~name:"parallel scan is worker-count invariant"
    (QCheck.make ~print:print_case gen_case)
    (fun (rows, pred) ->
      Unix.putenv "PKGQ_SCAN_CHUNK" "7";
      Fun.protect
        ~finally:(fun () -> Unix.putenv "PKGQ_SCAN_CHUNK" "")
        (fun () ->
          let r = relation rows in
          let reference_mask = Scan.mask ~workers:1 r pred in
          let reference_idx = Scan.select_indices ~workers:1 r pred in
          let reference_stats = Scan.float_stats ~workers:1 ~where:pred r "b" in
          List.for_all
            (fun w ->
              Scan.mask ~workers:w r pred = reference_mask
              && Scan.select_indices ~workers:w r pred = reference_idx
              && Scan.float_stats ~workers:w ~where:pred r "b"
                 = reference_stats)
            [ 2; 3; 4 ]))

(* ------------------------------------------------------------------ *)
(* Unit tests: 3VL corners, fallback paths, Column internals          *)
(* ------------------------------------------------------------------ *)

let null_rel () =
  relation
    [
      T.make [ V.Int 1; V.Float 2.; V.Null; V.Str "x" ];
      T.make [ V.Null; V.Float 0.5; V.Float 3.; V.Null ];
      T.make [ V.Int (-2); V.Null; V.Float 1.; V.Str "y" ];
    ]

let compiled r pred =
  match R.compile_pred r pred with
  | Some f -> f
  | None -> Alcotest.fail "expected predicate to compile"

let test_three_valued_corners () =
  let r = null_rel () in
  let tri pred row = compiled r pred row in
  (* NULL = NULL is NULL, not true *)
  checki "null = null" E.tri_null
    (tri (E.Cmp (E.Eq, E.Const V.Null, E.Const V.Null)) 0);
  (* a is NULL on row 1 *)
  checki "null attr cmp" E.tri_null
    (tri (E.Cmp (E.Gt, E.Attr "a", E.Const (V.Int 0))) 1);
  (* NULL AND false = false; NULL OR true = true; NOT NULL = NULL *)
  let null_cmp = E.Cmp (E.Eq, E.Attr "a", E.Const (V.Int 1)) in
  checki "null and false" E.tri_false
    (tri (E.And (null_cmp, E.Const (V.Bool false))) 1);
  checki "null or true" E.tri_true
    (tri (E.Or (null_cmp, E.Const (V.Bool true))) 1);
  checki "not null" E.tri_null (tri (E.Not null_cmp) 1);
  (* arithmetic with NULL is NULL; IS NULL sees through it *)
  checki "null arith" E.tri_true
    (tri (E.IsNull (E.Binop (E.Add, E.Attr "a", E.Attr "c"))) 0);
  checki "is not null" E.tri_false
    (tri (E.IsNotNull (E.Binop (E.Mul, E.Attr "b", E.Const (V.Int 2)))) 2);
  (* BETWEEN with a definite miss short-circuits NULL bounds to false *)
  checki "between false beats null" E.tri_false
    (tri (E.Between (E.Const (V.Int 5), E.Const (V.Int 7), E.Attr "c")) 0);
  checki "between null bound" E.tri_null
    (tri (E.Between (E.Const (V.Int 8), E.Const (V.Int 7), E.Attr "c")) 0)

let test_string_predicate_falls_back () =
  let r = null_rel () in
  let pred = E.Cmp (E.Eq, E.Attr "s", E.Const (V.Str "x")) in
  checkb "string pred does not compile" true (R.compile_pred r pred = None);
  (* interpreted fallback still drives select and Scan *)
  checki "select falls back" 1 (R.cardinality (R.select r pred));
  checki "scan falls back" 1 (Scan.count r pred);
  let mixed = E.And (pred, E.Cmp (E.Gt, E.Attr "b", E.Const (V.Float 1.))) in
  checki "mixed pred" 1 (Scan.count r mixed)

let test_column_internals () =
  let r = null_rel () in
  let col = R.column_exn r "a" in
  checki "length" 3 (C.length col);
  checki "n_nulls" 1 (C.n_nulls col);
  checkb "null bit" true (C.is_null col 1);
  checkb "nan encoding" true (Float.is_nan (C.data col).(1));
  checkb "zeroed" true ((C.zeroed col).(1) = 0.);
  checkb "zeroed keeps values" true ((C.zeroed col).(2) = -2.);
  (* memoized: same array on repeated access *)
  checkb "cache hit" true (C.data (R.column_exn r "a") == C.data col);
  checkb "non-numeric" true (R.column r "s" = None);
  checkb "unknown" true (R.column r "zzz" = None)

let test_scan_stats () =
  let r = null_rel () in
  match Scan.float_stats r "b" with
  | None -> Alcotest.fail "expected stats for b"
  | Some s ->
    checki "non-null count" 2 s.Scan.n;
    checki "rows scanned" 3 s.Scan.rows;
    Alcotest.check (Alcotest.float 1e-9) "sum" 2.5 s.Scan.sum;
    Alcotest.check (Alcotest.float 1e-9) "min" 0.5 s.Scan.mn;
    Alcotest.check (Alcotest.float 1e-9) "max" 2. s.Scan.mx

let () =
  Alcotest.run "columnar"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest compile_matches_eval_prop;
          QCheck_alcotest.to_alcotest select_matches_eval_prop;
          QCheck_alcotest.to_alcotest aggregate_matches_interp_prop;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest scan_determinism_prop ] );
      ( "corners",
        [
          Alcotest.test_case "three-valued logic" `Quick
            test_three_valued_corners;
          Alcotest.test_case "string fallback" `Quick
            test_string_predicate_falls_back;
          Alcotest.test_case "column internals" `Quick test_column_internals;
          Alcotest.test_case "scan stats" `Quick test_scan_stats;
        ] );
    ]
