(* Solver warm-start tests: the correctness contract of the dual
   simplex is that a warm re-solve agrees with a cold solve on every
   problem — a stale, corrupt, or merely unhelpful basis may cost time
   but never change an answer. Exercised here with qcheck-random LPs
   under random bound perturbations, branch-and-bound searches with and
   without basis reuse, a deliberately corrupted basis, and the
   parallel-pricing determinism matrix (1 worker vs N must be
   bit-identical). *)

module P = Lp.Problem
module S = Lp.Simplex
module B = Ilp.Branch_bound

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* Every variable is boxed in [0, hi] with hi finite, so no random
   problem is unbounded: statuses can only be Optimal or Infeasible,
   which both paths must agree on. *)
let gen_lp =
  QCheck.Gen.(
    int_range 2 10 >>= fun n ->
    int_range 1 4 >>= fun m ->
    list_repeat n (float_range (-5.) 5.) >>= fun objs ->
    list_repeat n (float_range 0.5 5.) >>= fun his ->
    list_repeat m
      (pair
         (list_repeat n (float_range (-3.) 3.))
         (pair (float_range 1. 10.) bool))
    >>= fun rows ->
    return
      (P.make ~sense:P.Maximize
         ~vars:(List.map2 (fun o h -> P.var ~lo:0. ~hi:h o) objs his)
         ~rows:
           (List.map
              (fun (coeffs, (rhs, ranged)) ->
                P.row
                  (List.filteri (fun _ _ -> true) coeffs
                  |> List.mapi (fun j a -> (j, a)))
                  ~lo:(if ranged then -.rhs else neg_infinity)
                  ~hi:rhs)
              rows)))

(* A bound perturbation of the kind refine rungs and B&B children
   apply: pick a variable, pin it to zero or relax its cap. *)
let gen_perturb =
  QCheck.Gen.(
    pair (int_range 0 1000) (oneofl [ `Pin; `Relax; `Tighten_row ]))

let perturb p (jseed, kind) =
  let n = Array.length p.P.vars in
  let j = jseed mod n in
  match kind with
  | `Pin ->
    let vars' = Array.copy p.P.vars in
    vars'.(j) <- { vars'.(j) with P.hi = 0. };
    { p with P.vars = vars' }
  | `Relax ->
    let vars' = Array.copy p.P.vars in
    vars'.(j) <- { vars'.(j) with P.hi = vars'.(j).P.hi *. 2. };
    { p with P.vars = vars' }
  | `Tighten_row ->
    let m = Array.length p.P.rows in
    if m = 0 then p
    else begin
      let rows' = Array.copy p.P.rows in
      let r = jseed mod m in
      rows'.(r) <- { rows'.(r) with P.rhi = rows'.(r).P.rhi *. 0.5 };
      { p with P.rows = rows' }
    end

let agree name cold warm =
  match (cold, warm) with
  | S.Optimal c, S.Optimal w ->
    if
      Float.abs (c.S.obj -. w.S.obj)
      > 1e-5 *. Float.max 1. (Float.abs c.S.obj)
    then
      QCheck.Test.fail_reportf "%s: warm obj %.9g <> cold obj %.9g" name
        w.S.obj c.S.obj
    else true
  | S.Infeasible, S.Infeasible -> true
  | c, w ->
    QCheck.Test.fail_reportf "%s: cold %a, warm %a" name S.pp_result c
      S.pp_result w

(* warm resolve from the parent's basis == cold solve, over random LPs
   and random bound flips *)
let warm_cold_agreement_prop =
  QCheck.Test.make ~count:300 ~name:"warm resolve agrees with cold solve"
    (QCheck.make (QCheck.Gen.pair gen_lp gen_perturb))
    (fun (p0, pr) ->
      match S.solve p0 with
      | S.Optimal sol ->
        let p1 = perturb p0 pr in
        let cold = S.solve p1 in
        let warm = S.resolve ?basis:sol.S.basis p1 in
        agree "perturbed" cold warm
      | _ -> QCheck.assume_fail ())

(* branch-and-bound with cross-node basis reuse finds the same answer
   as with warm starts disabled entirely *)
let bb_warm_agreement_prop =
  QCheck.Test.make ~count:60 ~name:"B&B agrees with warm starts off"
    (QCheck.make gen_lp) (fun p ->
      let integerize p =
        {
          p with
          P.vars =
            Array.map
              (fun v -> { v with P.integer = true; P.hi = Float.round v.P.hi })
              p.P.vars;
        }
      in
      let p = integerize p in
      S.set_warm_enabled false;
      let cold = B.solve p in
      S.set_warm_enabled true;
      let warm = B.solve p in
      match (cold, warm) with
      | B.Optimal (c, _), B.Optimal (w, _) ->
        if Float.abs (c.B.obj -. w.B.obj) > 1e-5 *. Float.max 1. (Float.abs c.B.obj)
        then
          QCheck.Test.fail_reportf "B&B warm obj %.9g <> cold obj %.9g" w.B.obj
            c.B.obj
        else true
      | B.Infeasible _, B.Infeasible _ -> true
      | c, w ->
        QCheck.Test.fail_reportf "B&B: cold %a, warm %a" B.pp_result c
          B.pp_result w)

(* re-solving with the saved root basis (the server's basis-cache path)
   agrees with the cold search and registers as a warm attempt *)
let test_bb_basis_roundtrip () =
  let rng = Datagen.Prng.create 7 in
  let n = 60 in
  let vars =
    List.init n (fun _ ->
        P.var ~integer:true ~hi:1. (Datagen.Prng.uniform rng 1. 10.))
  in
  let coeffs = List.init n (fun j -> (j, Datagen.Prng.uniform rng 1. 5.)) in
  let p =
    P.make ~sense:P.Maximize ~vars
      ~rows:[ P.row coeffs ~lo:neg_infinity ~hi:40. ]
  in
  let basis_out = ref None in
  let r1 = B.solve ~basis_out p in
  checkb "first search saved a root basis" true (!basis_out <> None);
  let c0 = S.counters () in
  let r2 = B.solve ?warm_start:!basis_out p in
  let c1 = S.counters () in
  checkb "warm attempts grew" true (c1.S.warm_attempts > c0.S.warm_attempts);
  match (r1, r2) with
  | B.Optimal (s1, _), B.Optimal (s2, _) ->
    Alcotest.check (Alcotest.float 1e-6) "objectives equal" s1.B.obj s2.B.obj
  | _ -> Alcotest.fail "both searches should be optimal"

(* a corrupted (singular) basis must fall back to a cold solve with the
   right answer, and must not count as a warm hit *)
let test_corrupt_basis_falls_cold () =
  let rng = Datagen.Prng.create 3 in
  let n = 40 in
  let vars =
    List.init n (fun _ -> P.var ~hi:1. (Datagen.Prng.uniform rng 1. 10.))
  in
  (* two rows: [corrupt] duplicates a basis row, which is only a real
     corruption when the basis has more than one *)
  let coeffs = List.init n (fun j -> (j, 1.)) in
  let weights =
    List.init n (fun j -> (j, Datagen.Prng.uniform rng 0.5 2.))
  in
  let p =
    P.make ~sense:P.Maximize ~vars
      ~rows:
        [
          P.row coeffs ~lo:5. ~hi:5.;
          P.row weights ~lo:neg_infinity ~hi:8.;
        ]
  in
  match S.solve p with
  | S.Optimal sol -> (
    let b =
      match sol.S.basis with
      | Some b -> S.Basis.corrupt b
      | None -> Alcotest.fail "no basis exported"
    in
    let c0 = S.counters () in
    match S.resolve ~basis:b p with
    | S.Optimal sol' ->
      let c1 = S.counters () in
      Alcotest.check (Alcotest.float 1e-6) "objective preserved" sol.S.obj
        sol'.S.obj;
      checki "counted as an attempt" (c0.S.warm_attempts + 1)
        c1.S.warm_attempts;
      checki "not counted as a hit" c0.S.warm_hits c1.S.warm_hits;
      checkb "fell back to a cold solve" true
        (c1.S.cold_solves > c0.S.cold_solves)
    | r -> Alcotest.failf "corrupt-basis resolve: %a" S.pp_result r)
  | r -> Alcotest.failf "seed solve: %a" S.pp_result r

(* disabled warm starts (PKGQ_WARM=off) never touch the warm path *)
let test_warm_disabled_is_cold () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var ~hi:1. 1.; P.var ~hi:1. 2. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:neg_infinity ~hi:1. ]
  in
  match S.solve p with
  | S.Optimal sol ->
    S.set_warm_enabled false;
    let c0 = S.counters () in
    let r = S.resolve ?basis:sol.S.basis p in
    let c1 = S.counters () in
    S.set_warm_enabled true;
    checki "no warm attempt" c0.S.warm_attempts c1.S.warm_attempts;
    (match r with
    | S.Optimal sol' ->
      Alcotest.check (Alcotest.float 1e-9) "same objective" sol.S.obj
        sol'.S.obj
    | r -> Alcotest.failf "disabled resolve: %a" S.pp_result r)
  | r -> Alcotest.failf "seed solve: %a" S.pp_result r

(* ------------------------------------------------------------------ *)
(* Parallel pricing determinism                                       *)
(* ------------------------------------------------------------------ *)

(* Large enough to cross the parallel-pricing threshold (8192 columns),
   so the multi-worker path really runs. *)
let big_lp () =
  let rng = Datagen.Prng.create 17 in
  let n = 9_000 in
  let vars =
    List.init n (fun _ -> P.var ~hi:1. (Datagen.Prng.uniform rng 1. 10.))
  in
  let count_row = P.row (List.init n (fun j -> (j, 1.))) ~lo:80. ~hi:80. in
  let res_rows =
    List.init 3 (fun _ ->
        P.row
          (List.init n (fun j -> (j, Datagen.Prng.uniform rng 0. 5.)))
          ~lo:neg_infinity ~hi:450.)
  in
  P.make ~sense:P.Maximize ~vars ~rows:(count_row :: res_rows)

let bits x = Array.map Int64.bits_of_float x

let test_parallel_pricing_deterministic () =
  let p = big_lp () in
  let solve_with w =
    S.set_price_workers w;
    Fun.protect
      ~finally:(fun () -> S.set_price_workers 1)
      (fun () ->
        match S.solve p with
        | S.Optimal sol -> sol
        | r -> Alcotest.failf "workers=%d: %a" w S.pp_result r)
  in
  let s1 = solve_with 1 in
  let s4 = solve_with 4 in
  checki "same pivot count" s1.S.iterations s4.S.iterations;
  checkb "objective bit-identical" true
    (Int64.bits_of_float s1.S.obj = Int64.bits_of_float s4.S.obj);
  checkb "solution vector bit-identical" true (bits s1.S.x = bits s4.S.x)

let test_parallel_warm_deterministic () =
  let p = big_lp () in
  let root =
    match S.solve p with
    | S.Optimal sol -> sol
    | r -> Alcotest.failf "root: %a" S.pp_result r
  in
  (* pin the most-selected column, then warm re-solve at 1 vs 4 workers *)
  let j = ref 0 in
  Array.iteri (fun i v -> if v > root.S.x.(!j) then j := i) root.S.x;
  let vars' = Array.copy p.P.vars in
  vars'.(!j) <- { vars'.(!j) with P.hi = 0. };
  let p' = { p with P.vars = vars' } in
  let resolve_with w =
    S.set_price_workers w;
    Fun.protect
      ~finally:(fun () -> S.set_price_workers 1)
      (fun () ->
        match S.resolve ?basis:root.S.basis p' with
        | S.Optimal sol -> sol
        | r -> Alcotest.failf "warm workers=%d: %a" w S.pp_result r)
  in
  let s1 = resolve_with 1 in
  let s4 = resolve_with 4 in
  checki "same pivot count" s1.S.iterations s4.S.iterations;
  checkb "warm solution bit-identical" true (bits s1.S.x = bits s4.S.x)

let () =
  Alcotest.run "solver"
    [
      ( "warm vs cold",
        [
          QCheck_alcotest.to_alcotest warm_cold_agreement_prop;
          QCheck_alcotest.to_alcotest bb_warm_agreement_prop;
          Alcotest.test_case "B&B basis roundtrip" `Quick
            test_bb_basis_roundtrip;
          Alcotest.test_case "corrupt basis falls cold" `Quick
            test_corrupt_basis_falls_cold;
          Alcotest.test_case "warm disabled is cold" `Quick
            test_warm_disabled_is_cold;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cold pricing 1 vs 4 workers" `Quick
            test_parallel_pricing_deterministic;
          Alcotest.test_case "warm pricing 1 vs 4 workers" `Quick
            test_parallel_warm_deterministic;
        ] );
    ]
