(* Progressive-shading tests: DLV / hierarchy structural properties
   (qcheck), coarse-to-fine vs flat SketchRefine agreement, bitwise
   determinism across worker counts, and the catalog's level-extended
   keys (attribute-order canonicalization + pre-v2 format compat).

   The "smoke" group is the bounded (<10s) end-to-end proof and runs
   under the @progressive-smoke alias; the qcheck property group rides
   only in the full @progressive / default-runtest pass. *)

module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation
module P = Pkg.Partition
module H = Pkg.Hierarchy
module E = Pkg.Eval

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp_dir =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pkgq-test-progressive-%d" (Unix.getpid ()))
  in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

(* Concentrated data: the regime the DLV splits are built for. *)
let skewed ?(skew = 1.5) ~seed n = Datagen.Galaxy.generate ~seed ~skew n

let hier_attrs = [ "redshift"; "petro_rad" ]

let compile rel q =
  Paql.Translate.compile_exn (R.schema rel) (Paql.Parser.parse_exn q)

let galaxy_query rel budget =
  compile rel
    (Printf.sprintf
       "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT COUNT(P.*) = \
        5 AND SUM(P.redshift) <= %g MAXIMIZE SUM(P.petro_rad)"
       budget)

let package_rows p =
  List.sort compare (Pkg.Package.entries p)

(* ------------------------------------------------------------------ *)
(* qcheck structural properties                                       *)
(* ------------------------------------------------------------------ *)

(* Every tuple lands in exactly one group of every level, and each
   finer group refines exactly one parent — [H.check] verifies both
   per-level partition invariants and the refinement property. *)
let hierarchy_invariants_prop =
  QCheck.Test.make ~count:30 ~name:"hierarchy invariants on skewed data"
    (QCheck.make
       QCheck.Gen.(triple (int_range 30 400) (int_range 2 4) (int_range 0 999)))
    (fun (n, levels, seed) ->
      let rel = skewed ~seed n in
      let hier = H.build ~levels ~leaf_tau:8 ~attrs:hier_attrs rel in
      (match H.check hier rel with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariants: %s" msg);
      H.num_levels hier >= 1 && H.num_levels hier <= levels)

(* [children] and [parent_gid] are inverse views of the same refinement
   map, and the tau ladder is non-increasing down to the leaf. *)
let hierarchy_refinement_prop =
  QCheck.Test.make ~count:30 ~name:"children/parent agree; taus descend"
    (QCheck.make
       QCheck.Gen.(triple (int_range 30 400) (int_range 2 4) (int_range 0 999)))
    (fun (n, levels, seed) ->
      let rel = skewed ~seed:(seed + 1000) n in
      let leaf_tau = 8 in
      let hier = H.build ~levels ~leaf_tau ~attrs:hier_attrs rel in
      let nl = H.num_levels hier in
      for l = 0 to nl - 2 do
        let kids = H.children hier l in
        Array.iteri
          (fun g cs ->
            List.iter
              (fun c ->
                if H.parent_gid hier ~level:(l + 1) c <> g then
                  QCheck.Test.fail_reportf
                    "level %d group %d: child %d maps back to %d" l g c
                    (H.parent_gid hier ~level:(l + 1) c))
              cs)
          kids;
        (* every finer group is someone's child *)
        let covered = Array.make (P.num_groups (H.level hier (l + 1))) false in
        Array.iter (List.iter (fun c -> covered.(c) <- true)) kids;
        if not (Array.for_all Fun.id covered) then
          QCheck.Test.fail_reportf "level %d: uncovered child group" (l + 1)
      done;
      let taus = H.plan_taus ~n ~leaf_tau ~levels in
      Array.length taus = levels
      && taus.(levels - 1) = leaf_tau
      && Array.for_all2 (fun a b -> a >= b) (Array.sub taus 0 (levels - 1))
           (Array.sub taus 1 (levels - 1)))

(* DLV vs quad-tree at equal group budget on the knob-concentrated
   attributes (rowc, exp_ab — a power map piles the mass near the low
   end). Per-instance strict dominance is false — equal-width cells
   sometimes win by isolating tail outliers into near-empty cells — so
   the comparison is batched over a small tau grid per instance: the
   batch never loses by more than 1.5x (qcheck, any seed) and wins
   outright in aggregate (the deterministic case below). *)
let concentrated_attrs = [ [ "rowc" ]; [ "exp_ab" ] ]
let budget_taus = [ 8; 16; 32 ]

(* Sum of variance costs over the (attrs, tau) grid for one relation,
   giving DLV the same group budget the quad-tree spent. *)
let variance_batch rel =
  let n = R.cardinality rel in
  let sum_d = ref 0. and sum_q = ref 0. in
  List.iter
    (fun attrs ->
      let cols = P.numeric_columns rel attrs in
      List.iter
        (fun tau ->
          let qt = P.create ~tau ~attrs rel in
          let gq = P.num_groups qt in
          let budget_tau = max 1 ((n + gq - 1) / gq) in
          let dlv = Pkg.Dlv.create ~tau:budget_tau ~attrs rel in
          sum_q := !sum_q +. Pkg.Dlv.variance_cost cols qt;
          sum_d := !sum_d +. Pkg.Dlv.variance_cost cols dlv)
        budget_taus)
    concentrated_attrs;
  (!sum_d, !sum_q)

let dlv_variance_bounded_prop =
  QCheck.Test.make ~count:25
    ~name:"DLV variance within 1.5x of quad-tree on concentrated data"
    (QCheck.make QCheck.Gen.(pair (int_range 150 800) (int_range 0 999)))
    (fun (n, seed) ->
      let rel = skewed ~seed:(seed + 2000) n in
      let vd, vq = variance_batch rel in
      if vd > (vq *. 1.5) +. 1e-9 then
        QCheck.Test.fail_reportf "DLV %.6f > 1.5 * quad-tree %.6f (n=%d)" vd
          vq n;
      true)

let test_dlv_variance_wins_aggregate () =
  let sum_d = ref 0. and sum_q = ref 0. in
  for seed = 0 to 19 do
    let rel = skewed ~seed:(seed + 100) (150 + (seed * 137)) in
    let vd, vq = variance_batch rel in
    sum_d := !sum_d +. vd;
    sum_q := !sum_q +. vq
  done;
  (* observed ratio ~0.72; assert a comfortable strict win *)
  checkb
    (Printf.sprintf "aggregate DLV %.6f < 0.9 * quad-tree %.6f" !sum_d !sum_q)
    true
    (!sum_d < 0.9 *. !sum_q)

(* ------------------------------------------------------------------ *)
(* Progressive vs SketchRefine                                        *)
(* ------------------------------------------------------------------ *)

(* A one-level hierarchy collapses the descent to exactly flat
   SketchRefine's sketch-then-refine: same partitioning, same package. *)
let test_one_level_equals_sketchrefine () =
  let rel = skewed ~seed:5 600 in
  let spec = galaxy_query rel 1.2 in
  let tau = 40 in
  let hier = H.build ~levels:1 ~leaf_tau:tau ~attrs:hier_attrs rel in
  checki "one level" 1 (H.num_levels hier);
  let prog, stats = Pkg.Progressive.run spec rel hier in
  let flat = Pkg.Sketch_refine.run spec rel (H.leaf hier) in
  (match (prog.E.status, flat.E.status) with
  | E.Optimal, E.Optimal -> ()
  | a, b ->
    Alcotest.failf "statuses differ: progressive %a, flat %a" E.pp_status a
      E.pp_status b);
  (match (prog.E.package, flat.E.package) with
  | Some p, Some q ->
    checkb "identical package" true (package_rows p = package_rows q)
  | _ -> Alcotest.fail "missing package");
  checki "one stat entry" 1 (List.length stats)

(* Multi-level descent on a feasible query: a typed solved answer whose
   package satisfies every constraint, never worse than useless — and
   the per-level telemetry covers each level once when nothing widens. *)
let test_progressive_solves_feasible () =
  let rel = skewed ~seed:7 800 in
  let spec = galaxy_query rel 1.2 in
  let hier = H.build ~levels:3 ~leaf_tau:10 ~attrs:hier_attrs rel in
  let r, stats = Pkg.Progressive.run spec rel hier in
  (match r.E.status with
  | E.Optimal | E.Degraded _ -> ()
  | other -> Alcotest.failf "expected solved, got %a" E.pp_status other);
  (match r.E.package with
  | Some p ->
    checkb "package feasible" true (Pkg.Package.feasible spec p);
    checki "cardinality" 5 (Pkg.Package.cardinality p)
  | None -> Alcotest.fail "no package");
  List.iteri
    (fun i (s : Pkg.Progressive.level_stat) ->
      checki (Printf.sprintf "stat %d level" i) i s.Pkg.Progressive.ls_level;
      checkb
        (Printf.sprintf "stat %d groups > 0" i)
        true
        (s.Pkg.Progressive.ls_groups > 0))
    stats

(* ------------------------------------------------------------------ *)
(* Determinism across worker counts                                   *)
(* ------------------------------------------------------------------ *)

let with_workers ~scan ~price f =
  let old_price = Lp.Simplex.price_workers () in
  Unix.putenv "PKGQ_SCAN_WORKERS" (string_of_int scan);
  Lp.Simplex.set_price_workers price;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "PKGQ_SCAN_WORKERS" "";
      Lp.Simplex.set_price_workers old_price)
    f

let test_determinism_across_workers () =
  let run ~scan ~price =
    with_workers ~scan ~price (fun () ->
        let rel = skewed ~seed:9 700 in
        let spec = galaxy_query rel 1.2 in
        let hier = H.build ~levels:3 ~leaf_tau:10 ~attrs:hier_attrs rel in
        let r, _ = Pkg.Progressive.run spec rel hier in
        match (r.E.package, r.E.objective) with
        | Some p, Some obj -> (package_rows p, Int64.bits_of_float obj)
        | _ -> Alcotest.fail "progressive produced no package")
  in
  let base = run ~scan:1 ~price:1 in
  List.iter
    (fun (scan, price) ->
      checkb
        (Printf.sprintf "scan=%d price=%d bitwise identical" scan price)
        true
        (run ~scan ~price = base))
    [ (3, 1); (8, 1); (1, 3); (4, 2) ]

(* ------------------------------------------------------------------ *)
(* Catalog: canonical attrs order + pre-v2 format compatibility       *)
(* ------------------------------------------------------------------ *)

let test_catalog_attrs_order () =
  let dir = Filename.concat tmp_dir "cat-order" in
  let cat = Store.Catalog.open_dir dir in
  let rel = skewed ~seed:11 300 in
  let fp = Store.Segment.fingerprint rel in
  let builds = ref 0 in
  let key attrs =
    { Store.Catalog.fingerprint = fp; attrs; tau = 50;
      radius = P.No_radius; level = None }
  in
  let build attrs () =
    incr builds;
    P.create ~tau:50 ~attrs rel
  in
  let attrs = [ "redshift"; "exp_ab" ] in
  let permuted = [ "exp_ab"; "redshift" ] in
  Alcotest.check Alcotest.string "permutation has the same id"
    (Store.Catalog.key_id (key attrs))
    (Store.Catalog.key_id (key permuted));
  let _, o1 = Store.Catalog.lookup_or_build cat (key attrs)
      ~build:(build attrs) in
  checkb "first is a build" true (o1 = `Built);
  (* the regression: a permuted attribute list used to produce a fresh
     key id and silently repartition the table *)
  let p2, o2 = Store.Catalog.lookup_or_build cat (key permuted)
      ~build:(build permuted) in
  checkb "permuted order hits" true (o2 = `Hit);
  checki "exactly one build" 1 !builds;
  checkb "hit is a valid partition" true
    (P.check ~tau:50 p2 rel = Ok ())

(* Hand-write a v1 (pre-hierarchy, order-sensitive id, no level field)
   catalog entry with raw [Store.Wire] puts and prove today's [find]
   still loads it — under the canonicalized key, via the legacy-id
   fallback. *)
let test_catalog_v1_compat () =
  let dir = Filename.concat tmp_dir "cat-v1" in
  let cat = Store.Catalog.open_dir dir in
  let rel = skewed ~seed:13 200 in
  let fp = Store.Segment.fingerprint rel in
  (* deliberately NOT in canonical (sorted) order, so the v1 id differs
     from today's canonical id and the fallback path is what loads it *)
  let attrs = [ "redshift"; "exp_ab" ] in
  let tau = 40 in
  let p = P.create ~tau ~attrs rel in
  let b = Buffer.create 4096 in
  let module W = Store.Wire in
  W.put_str b fp;
  W.put_i32 b (List.length attrs);
  List.iter (W.put_str b) attrs;
  W.put_i64 b tau;
  W.put_u8 b 0 (* No_radius *);
  (* v1 ends the key here: no level byte *)
  W.put_i32 b (Array.length p.P.gid_of_row);
  W.put_i32 b (Array.length p.P.groups);
  Array.iter
    (fun (g : P.group) ->
      W.put_i32 b (Array.length g.P.members);
      Array.iter (W.put_i32 b) g.P.members;
      Array.iter (W.put_f64 b) g.P.centroid;
      W.put_f64 b g.P.radius)
    p.P.groups;
  W.put_str b (Store.Segment.to_string p.P.reps);
  let legacy_id =
    W.hex64
      (W.hash64
         (Printf.sprintf "%s|%s|tau=%d|radius=none" fp
            (String.concat "," attrs) tau))
  in
  let path =
    Filename.concat (Filename.concat dir "partitions") (legacy_id ^ ".part")
  in
  W.write_file path ~magic:"PKGQPART" ~version:1 b;
  let key =
    { Store.Catalog.fingerprint = fp; attrs; tau; radius = P.No_radius;
      level = None }
  in
  checkb "canonical id differs from v1 id" true
    (Store.Catalog.key_id key <> legacy_id);
  (match Store.Catalog.find cat key with
  | Some q ->
    checki "groups survive" (P.num_groups p) (P.num_groups q);
    checkb "membership survives" true (q.P.gid_of_row = p.P.gid_of_row);
    checkb "loaded entry is valid" true (P.check ~tau q rel = Ok ())
  | None -> Alcotest.fail "v1 entry not found under canonicalized key");
  (* a hierarchy (level-carrying) key must NOT fall back to flat v1
     entries: levels are distinct partitionings *)
  checkb "level key does not alias v1" true
    (Store.Catalog.find cat { key with Store.Catalog.level = Some 0 } = None)

(* Per-level persistence: second resolve does zero partitioning work,
   and coarser levels are shared across differing radii (only the leaf
   key carries the bound). *)
let test_catalog_hierarchy_roundtrip () =
  let dir = Filename.concat tmp_dir "cat-hier" in
  let cat = Store.Catalog.open_dir dir in
  let rel = skewed ~seed:17 300 in
  let fp = Store.Segment.fingerprint rel in
  let resolve radius =
    Store.Catalog.lookup_or_build_hierarchy cat ~fingerprint:fp ~radius
      ~levels:3 ~leaf_tau:10 ~attrs:hier_attrs rel
  in
  let h1, o1 = resolve P.No_radius in
  checkb "cold build" true (o1 = `Built);
  let h2, o2 = resolve P.No_radius in
  checkb "warm hit" true (o2 = `Hit);
  checki "same level count" (H.num_levels h1) (H.num_levels h2);
  for l = 0 to H.num_levels h1 - 1 do
    checkb
      (Printf.sprintf "level %d membership identical" l)
      true
      ((H.level h1 l).P.gid_of_row = (H.level h2 l).P.gid_of_row)
  done;
  checkb "hit hierarchy checks out" true (H.check h2 rel = Ok ());
  (* a different epsilon changes only the leaf key: 3 + 1 entries *)
  let _, o3 =
    resolve (P.Theorem { epsilon = 0.1; maximize = true })
  in
  checkb "new radius rebuilds (leaf differs)" true (o3 = `Built);
  let n_entries = List.length (Store.Catalog.entries cat) in
  checkb "coarse levels shared across radii" true (n_entries <= 7)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "progressive"
    [
      ( "smoke",
        [
          Alcotest.test_case "one-level equals sketchrefine" `Quick
            test_one_level_equals_sketchrefine;
          Alcotest.test_case "solves feasible multi-level" `Quick
            test_progressive_solves_feasible;
          Alcotest.test_case "deterministic across workers" `Quick
            test_determinism_across_workers;
          Alcotest.test_case "catalog canonical attrs order" `Quick
            test_catalog_attrs_order;
          Alcotest.test_case "catalog v1 format compat" `Quick
            test_catalog_v1_compat;
          Alcotest.test_case "catalog hierarchy roundtrip" `Quick
            test_catalog_hierarchy_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest hierarchy_invariants_prop;
          QCheck_alcotest.to_alcotest hierarchy_refinement_prop;
          QCheck_alcotest.to_alcotest dlv_variance_bounded_prop;
          Alcotest.test_case "DLV variance wins in aggregate" `Quick
            test_dlv_variance_wins_aggregate;
        ] );
    ]
