(* Tests for the deterministic PRNG, the synthetic Galaxy and TPC-H
   generators, and the benchmark workload definitions. *)

module V = Relalg.Value
module R = Relalg.Relation

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_determinism () =
  let a = Datagen.Prng.create 42 and b = Datagen.Prng.create 42 in
  for _ = 1 to 100 do
    checkf "same stream" (Datagen.Prng.float a) (Datagen.Prng.float b)
  done;
  let c = Datagen.Prng.create 43 in
  checkb "different seed differs" true
    (Datagen.Prng.float (Datagen.Prng.create 42) <> Datagen.Prng.float c)

let test_prng_ranges () =
  let rng = Datagen.Prng.create 7 in
  for _ = 1 to 1000 do
    let f = Datagen.Prng.float rng in
    checkb "float in [0,1)" true (f >= 0. && f < 1.);
    let u = Datagen.Prng.uniform rng 5. 10. in
    checkb "uniform in range" true (u >= 5. && u < 10.);
    let i = Datagen.Prng.int rng 7 in
    checkb "int in range" true (i >= 0 && i < 7);
    let p = Datagen.Prng.pareto rng ~xm:2. ~alpha:1.5 in
    checkb "pareto above scale" true (p >= 2.);
    let e = Datagen.Prng.exponential rng ~rate:3. in
    checkb "exponential nonneg" true (e >= 0.)
  done;
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Datagen.Prng.int rng 0))

let test_prng_moments () =
  (* sanity: empirical mean/stddev of the gaussian *)
  let rng = Datagen.Prng.create 11 in
  let n = 20_000 in
  let sum = ref 0. and sumsq = ref 0. in
  for _ = 1 to n do
    let g = Datagen.Prng.gaussian rng in
    sum := !sum +. g;
    sumsq := !sumsq +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  checkb "gaussian mean ~ 0" true (Float.abs mean < 0.05);
  checkb "gaussian var ~ 1" true (Float.abs (var -. 1.) < 0.1)

(* ------------------------------------------------------------------ *)
(* Galaxy                                                             *)
(* ------------------------------------------------------------------ *)

let test_galaxy_shape () =
  let rel = Datagen.Galaxy.generate ~seed:9 500 in
  checki "cardinality" 500 (R.cardinality rel);
  let schema = R.schema rel in
  List.iter
    (fun a -> checkb ("has " ^ a) true (Relalg.Schema.mem schema a))
    Datagen.Galaxy.numeric_attrs;
  (* determinism *)
  let rel2 = Datagen.Galaxy.generate ~seed:9 500 in
  checkb "deterministic" true
    (Relalg.Tuple.equal (R.row rel 123) (R.row rel2 123));
  let rel3 = Datagen.Galaxy.generate ~seed:10 500 in
  checkb "seed matters" false
    (Relalg.Tuple.equal (R.row rel 123) (R.row rel3 123))

let test_galaxy_distributions () =
  let rel = Datagen.Galaxy.generate ~seed:9 5000 in
  let mean a =
    V.to_float (Relalg.Aggregate.over rel (Relalg.Aggregate.Avg a))
  in
  (* ra in [0, 360), redshift small and positive, magnitudes ~ 18 *)
  let ra = R.column_float rel "ra" in
  checkb "ra range" true (Array.for_all (fun v -> v >= 0. && v < 360.) ra);
  checkb "redshift small" true (mean "redshift" > 0.01 && mean "redshift" < 0.5);
  checkb "r magnitude plausible" true (mean "r" > 10. && mean "r" < 26.);
  (* the five bands are correlated via the shared base brightness *)
  let u = R.column_float rel "u" and g = R.column_float rel "g" in
  let n = Array.length u in
  let mu_u = mean "u" and mu_g = mean "g" in
  let cov = ref 0. and vu = ref 0. and vg = ref 0. in
  for i = 0 to n - 1 do
    cov := !cov +. ((u.(i) -. mu_u) *. (g.(i) -. mu_g));
    vu := !vu +. ((u.(i) -. mu_u) ** 2.);
    vg := !vg +. ((g.(i) -. mu_g) ** 2.)
  done;
  let corr = !cov /. sqrt (!vu *. !vg) in
  checkb "bands correlated" true (corr > 0.5)

(* ------------------------------------------------------------------ *)
(* TPC-H                                                              *)
(* ------------------------------------------------------------------ *)

let test_tpch_shape () =
  let rel = Datagen.Tpch.generate ~seed:4 2000 in
  checki "cardinality" 2000 (R.cardinality rel);
  let schema = R.schema rel in
  List.iter
    (fun a -> checkb ("has " ^ a) true (Relalg.Schema.mem schema a))
    Datagen.Tpch.numeric_attrs;
  (* lineitem block never NULL *)
  let qty = R.column_float rel "l_quantity" in
  checkb "lineitem present" true
    (Array.for_all (fun v -> not (Float.is_nan v)) qty);
  checkb "quantity range" true (Array.for_all (fun v -> v >= 1. && v <= 50.) qty)

let test_tpch_null_blocks () =
  let rel = Datagen.Tpch.generate ~seed:4 5000 in
  let null_share a =
    let col = R.column_float rel a in
    float_of_int
      (Array.fold_left (fun acc v -> if Float.is_nan v then acc + 1 else acc) 0 col)
    /. float_of_int (Array.length col)
  in
  (* optional blocks are NULL around 66% of the time *)
  checkb "ps block nulls" true
    (null_share "p_retailprice" > 0.5 && null_share "p_retailprice" < 0.8);
  checkb "oc block nulls" true
    (null_share "o_totalprice" > 0.5 && null_share "o_totalprice" < 0.8);
  (* block coherence: p_size is NULL exactly when p_retailprice is *)
  let a = R.column_float rel "p_retailprice" in
  let b = R.column_float rel "p_size" in
  checkb "block coherence" true
    (Array.for_all2 (fun x y -> Float.is_nan x = Float.is_nan y) a b)

let test_tpch_subset_extraction () =
  let rel = Datagen.Tpch.generate ~seed:4 5000 in
  let sub = Datagen.Tpch.non_null_subset rel [ "p_retailprice"; "o_totalprice" ] in
  checkb "subset smaller" true (R.cardinality sub < R.cardinality rel);
  let pr = R.column_float sub "p_retailprice" in
  checkb "no nulls in subset" true
    (Array.for_all (fun v -> not (Float.is_nan v)) pr);
  (* the intersection of two independent ~34% blocks: ~11.5% *)
  let share = float_of_int (R.cardinality sub) /. 5000. in
  checkb "share plausible" true (share > 0.05 && share < 0.2)

(* ------------------------------------------------------------------ *)
(* Workload                                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_galaxy () =
  let rel = Datagen.Galaxy.generate ~seed:1 2000 in
  let qs = Datagen.Workload.galaxy_queries rel in
  checki "seven queries" 7 (List.length qs);
  List.iter
    (fun (d : Datagen.Workload.def) ->
      (* every query parses, analyzes and compiles *)
      let spec = Datagen.Workload.compile rel d in
      checkb (d.name ^ " has constraints") true
        (spec.Paql.Translate.constraints <> []);
      (* declared attrs cover the query's actual attrs *)
      let actual = Paql.Ast.all_attrs spec.Paql.Translate.query in
      List.iter
        (fun a ->
          checkb
            (Printf.sprintf "%s declares %s" d.name a)
            true (List.mem a d.attrs))
        actual)
    qs;
  checkb "workload attrs union" true
    (List.length (Datagen.Workload.workload_attrs qs) >= 5)

let test_workload_tpch () =
  let rel = Datagen.Tpch.generate ~seed:2 3000 in
  let qs = Datagen.Workload.tpch_queries rel in
  checki "seven queries" 7 (List.length qs);
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let sub = Datagen.Workload.query_relation ~dataset:`Tpch rel d in
      checkb (d.name ^ " subset non-empty") true (R.cardinality sub > 0);
      (* compiling against the subset must succeed *)
      ignore (Datagen.Workload.compile sub d))
    qs

let test_workload_feasible_small () =
  (* Every workload query is feasible (the property the bound synthesis
     aims for). Direct is the first witness; when Direct blows its
     budget without an answer — by design it does on the hard Q2 —
     SketchRefine serves as the witness instead. *)
  let limits = { Ilp.Branch_bound.default_limits with max_nodes = 30_000; max_seconds = 15. } in
  let witness name rel (d : Datagen.Workload.def) =
    let spec = Datagen.Workload.compile rel d in
    let direct_ok =
      match (Pkg.Direct.run ~limits spec rel).Pkg.Eval.status with
      | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> true
      | Pkg.Eval.Infeasible -> false
      | Pkg.Eval.Failed _ | Pkg.Eval.Degraded _ -> false
    in
    let ok =
      direct_ok
      ||
      let part =
        Pkg.Partition.create
          ~tau:(max 1 (R.cardinality rel / 10))
          ~attrs:d.attrs rel
      in
      let sr =
        Pkg.Sketch_refine.run
          ~options:{ Pkg.Sketch_refine.default_options with limits }
          spec rel part
      in
      match sr.Pkg.Eval.package with
      | Some p -> Pkg.Package.feasible spec p
      | None -> false
    in
    checkb (name ^ " " ^ d.name ^ " feasible") true ok
  in
  let g = Datagen.Galaxy.generate ~seed:1 1500 in
  List.iter (witness "galaxy" g) (Datagen.Workload.galaxy_queries g);
  let t = Datagen.Tpch.generate ~seed:2 3000 in
  List.iter
    (fun (d : Datagen.Workload.def) ->
      let sub = Datagen.Workload.query_relation ~dataset:`Tpch t d in
      witness "tpch" sub d)
    (Datagen.Workload.tpch_queries t)

let () =
  Alcotest.run "datagen"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "moments" `Quick test_prng_moments;
        ] );
      ( "galaxy",
        [
          Alcotest.test_case "shape" `Quick test_galaxy_shape;
          Alcotest.test_case "distributions" `Quick test_galaxy_distributions;
        ] );
      ( "tpch",
        [
          Alcotest.test_case "shape" `Quick test_tpch_shape;
          Alcotest.test_case "null blocks" `Quick test_tpch_null_blocks;
          Alcotest.test_case "subset extraction" `Quick
            test_tpch_subset_extraction;
        ] );
      ( "workload",
        [
          Alcotest.test_case "galaxy queries" `Quick test_workload_galaxy;
          Alcotest.test_case "tpch queries" `Quick test_workload_tpch;
          Alcotest.test_case "feasibility" `Slow test_workload_feasible_small;
        ] );
    ]
