(* Team formation — another of the paper's motivating domains ([2],
   [21] in its introduction): assemble a project team (a package of
   engineers) under a salary budget, with minimum coverage of each
   required skill expressed as conditional COUNT constraints, a
   seniority mix, and maximal past-performance score.

   Also demonstrates saving/loading the offline partitioning — the
   paper's partition-once, query-many workflow — and the IIS-guided
   fallback ladder on an over-constrained variant. *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "person_id"; ty = Relalg.Value.TInt };
      { Relalg.Schema.name = "salary"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "perf_score"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "seniority"; ty = Relalg.Value.TFloat };
      (* per-skill proficiency in [0, 1]; a person "has" the skill
         above 0.6 *)
      { Relalg.Schema.name = "skill_backend"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "skill_frontend"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "skill_ml"; ty = Relalg.Value.TFloat };
    ]

let directory n =
  let rng = Datagen.Prng.create 99 in
  let b = Relalg.Relation.builder schema in
  for person_id = 0 to n - 1 do
    let seniority = float_of_int (1 + Datagen.Prng.int rng 5) in
    let skill () =
      (* bimodal: most people either have a skill or don't *)
      if Datagen.Prng.bool rng ~p:0.35 then Datagen.Prng.uniform rng 0.6 1.0
      else Datagen.Prng.uniform rng 0.0 0.5
    in
    let backend = skill () and frontend = skill () and ml = skill () in
    let breadth = backend +. frontend +. ml in
    let salary =
      30_000. +. (seniority *. 18_000.) +. (breadth *. 15_000.)
      +. Datagen.Prng.normal rng ~mean:0. ~stddev:6_000.
    in
    let perf_score =
      Float.max 0.
        ((seniority *. 0.8) +. breadth +. Datagen.Prng.gaussian rng)
    in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int person_id;
        Relalg.Value.Float salary;
        Relalg.Value.Float perf_score;
        Relalg.Value.Float seniority;
        Relalg.Value.Float backend;
        Relalg.Value.Float frontend;
        Relalg.Value.Float ml;
      |]
  done;
  Relalg.Relation.seal b

let team_query =
  {|SELECT PACKAGE(E) AS P FROM Engineers E REPEAT 0
    SUCH THAT COUNT(P.*) = 6 AND
              SUM(P.salary) <= 700000 AND
              (SELECT COUNT(*) FROM P WHERE skill_backend > 0.6) >= 2 AND
              (SELECT COUNT(*) FROM P WHERE skill_frontend > 0.6) >= 2 AND
              (SELECT COUNT(*) FROM P WHERE skill_ml > 0.6) >= 1 AND
              (SELECT COUNT(*) FROM P WHERE seniority >= 4) >= 2 AND
              AVG(P.seniority) BETWEEN 2.5 AND 4.5
    MAXIMIZE SUM(P.perf_score)|}

(* The same team with an impossible budget: exercises the fallback
   ladder before reporting honest infeasibility. *)
let impossible_query =
  {|SELECT PACKAGE(E) AS P FROM Engineers E REPEAT 0
    SUCH THAT COUNT(P.*) = 6 AND
              SUM(P.salary) <= 150000 AND
              (SELECT COUNT(*) FROM P WHERE seniority >= 4) >= 4
    MAXIMIZE SUM(P.perf_score)|}

let () =
  let n = 6000 in
  let rel = directory n in
  Format.printf "Engineer directory: %d people@.@." n;
  let attrs = [ "salary"; "perf_score"; "seniority" ] in
  let limits = { Ilp.Branch_bound.default_limits with max_nodes = 30_000; max_seconds = 20. } in

  (* offline partitioning, persisted for the whole workload *)
  let part_path = Filename.temp_file "team" ".part" in
  let part = Pkg.Partition.create ~tau:(n / 10) ~attrs rel in
  Pkg.Partition.save part_path part;
  let part = Pkg.Partition.load part_path rel in
  Format.printf "Partitioning: %d groups (saved to and reloaded from %s)@.@."
    (Pkg.Partition.num_groups part)
    (Filename.basename part_path);

  let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn team_query) in
  let direct = Pkg.Direct.run ~limits spec rel in
  Format.printf "direct:       %a@." Pkg.Eval.pp_report direct;
  let options =
    {
      Pkg.Sketch_refine.default_options with
      limits;
      fallbacks =
        [
          Pkg.Sketch_refine.Hybrid_sketch;
          Pkg.Sketch_refine.Drop_attributes;
          Pkg.Sketch_refine.Merge_groups;
        ];
    }
  in
  let sr = Pkg.Sketch_refine.run ~options spec rel part in
  Format.printf "sketchrefine: %a@.@." Pkg.Eval.pp_report sr;

  (match sr.Pkg.Eval.package with
  | Some p ->
    print_endline "Team:";
    let schema = Relalg.Relation.schema rel in
    Seq.iter
      (fun t ->
        let f a = Relalg.Tuple.float_field schema t a in
        Format.printf
          "  person %-5s salary %7.0f  perf %4.1f  seniority %1.0f  \
           skills[b/f/m] %.1f/%.1f/%.1f@."
          (Relalg.Value.to_string (Relalg.Tuple.field schema t "person_id"))
          (f "salary") (f "perf_score") (f "seniority") (f "skill_backend")
          (f "skill_frontend") (f "skill_ml"))
      (Pkg.Package.tuples p);
    let m = Pkg.Package.materialize p in
    Format.printf "  total salary %.0f, total perf %.1f@."
      (Relalg.Value.to_float
         (Relalg.Aggregate.over m (Relalg.Aggregate.Sum "salary")))
      (Pkg.Package.objective spec p)
  | None -> print_endline "No feasible team.");

  print_endline "";
  print_endline "-- impossible budget (honest infeasibility) --";
  let spec2 =
    Paql.Translate.compile_exn schema (Paql.Parser.parse_exn impossible_query)
  in
  let sr2 = Pkg.Sketch_refine.run ~options spec2 rel part in
  Format.printf "sketchrefine: %a@." Pkg.Eval.pp_report sr2;
  Sys.remove part_path
