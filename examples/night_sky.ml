(* The paper's Example 2: an astrophysicist looks for collections of
   sky objects that may contain unseen quasars — total redshift within
   parameters, ranked by a likelihood score. Uses the synthetic Galaxy
   dataset and SKETCHREFINE over an offline partitioning. *)

let () =
  let n = 20_000 in
  let rel = Datagen.Galaxy.generate ~seed:5 n in
  let schema = Relalg.Relation.schema rel in
  Format.printf "Sky catalogue: %d objects@.@." n;

  (* Likelihood proxy: high redshift and compact radius score higher.
     We precompute it as a derived column, the way an astronomer would
     materialize a score before querying. *)
  let score =
    Array.init n (fun i ->
        let t = Relalg.Relation.row rel i in
        let redshift = Relalg.Tuple.float_field schema t "redshift" in
        let radius = Relalg.Tuple.float_field schema t "petro_rad" in
        Relalg.Value.Float (redshift *. 10. /. (1. +. radius)))
  in
  let rel =
    Relalg.Relation.append_column rel
      { Relalg.Schema.name = "quasar_score"; ty = Relalg.Value.TFloat }
      score
  in
  let schema = Relalg.Relation.schema rel in

  let query =
    {|SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0
      SUCH THAT COUNT(P.*) = 25 AND
                SUM(P.redshift) BETWEEN 2.5 AND 4.0 AND
                AVG(P.petro_rad) <= 3.0
      MAXIMIZE SUM(P.quasar_score)|}
  in
  let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn query) in

  let attrs = [ "redshift"; "petro_rad"; "quasar_score" ] in
  let t0 = Unix.gettimeofday () in
  let part = Pkg.Partition.create ~tau:(n / 10) ~attrs rel in
  Format.printf "Offline partitioning: %d groups in %.3fs@.@."
    (Pkg.Partition.num_groups part)
    (Unix.gettimeofday () -. t0);

  (* Give the solver the same kind of budget the paper gives CPLEX: a
     hard cap, beyond which Direct counts as failed. *)
  let limits = { Ilp.Branch_bound.default_limits with max_nodes = 30_000; max_seconds = 20. } in
  let direct = Pkg.Direct.run ~limits spec rel in
  Format.printf "direct:       %a@." Pkg.Eval.pp_report direct;
  let sr =
    Pkg.Sketch_refine.run
      ~options:{ Pkg.Sketch_refine.default_options with limits }
      spec rel part
  in
  Format.printf "sketchrefine: %a@.@." Pkg.Eval.pp_report sr;

  match sr.Pkg.Eval.package with
  | None -> print_endline "No candidate region found."
  | Some p ->
    print_endline "Top objects in the candidate package:";
    let shown = ref 0 in
    Seq.iter
      (fun t ->
        if !shown < 8 then begin
          incr shown;
          Format.printf
            "  obj %-6s ra=%6.2f dec=%6.2f redshift=%5.3f score=%5.2f@."
            (Relalg.Value.to_string (Relalg.Tuple.field schema t "objid"))
            (Relalg.Tuple.float_field schema t "ra")
            (Relalg.Tuple.float_field schema t "dec")
            (Relalg.Tuple.float_field schema t "redshift")
            (Relalg.Tuple.float_field schema t "quasar_score")
        end)
      (Pkg.Package.tuples p);
    Format.printf "  ... %d objects total, combined score %g@."
      (Pkg.Package.cardinality p)
      (Pkg.Package.objective spec p)
