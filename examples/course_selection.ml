(* Course selection — the CourseRank-style scenario the paper cites
   [25]: a student assembles a semester schedule (a package of
   courses) under credit-hour bounds, a workload cap, a breadth
   requirement expressed with conditional counts, and REPEAT 0 (no
   course twice), maximizing predicted enjoyment. Also demonstrates
   the dynamic quad-tree partitioner: one offline tree serves two
   queries with different epsilon requirements. *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "course_id"; ty = Relalg.Value.TInt };
      { Relalg.Schema.name = "credits"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "weekly_hours"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "rating"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "is_stem"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "level"; ty = Relalg.Value.TFloat };
    ]

let catalogue n =
  let rng = Datagen.Prng.create 42 in
  let b = Relalg.Relation.builder schema in
  for course_id = 0 to n - 1 do
    let stem = if Datagen.Prng.bool rng ~p:0.45 then 1.0 else 0.0 in
    let credits = float_of_int (2 + Datagen.Prng.int rng 3) in
    let level = float_of_int (100 * (1 + Datagen.Prng.int rng 4)) in
    (* higher-level and STEM courses cost more hours *)
    let weekly_hours =
      (credits *. 2.)
      +. (level /. 100.) +. (stem *. 2.)
      +. Datagen.Prng.uniform rng 0. 4.
    in
    let rating =
      Float.min 5. (Float.max 1. (Datagen.Prng.normal rng ~mean:3.6 ~stddev:0.8))
    in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int course_id;
        Relalg.Value.Float credits;
        Relalg.Value.Float weekly_hours;
        Relalg.Value.Float rating;
        Relalg.Value.Float stem;
        Relalg.Value.Float level;
      |]
  done;
  Relalg.Relation.seal b

let semester_query =
  {|SELECT PACKAGE(C) AS P FROM Courses C REPEAT 0
    SUCH THAT SUM(P.credits) BETWEEN 15 AND 18 AND
              SUM(P.weekly_hours) <= 55 AND
              (SELECT COUNT(*) FROM P WHERE is_stem = 1.0) >= 2 AND
              (SELECT COUNT(*) FROM P WHERE is_stem = 0.0) >= 1 AND
              AVG(P.level) <= 300
    MAXIMIZE SUM(P.rating)|}

let light_semester_query =
  {|SELECT PACKAGE(C) AS P FROM Courses C REPEAT 0
    SUCH THAT SUM(P.credits) BETWEEN 12 AND 14 AND
              SUM(P.weekly_hours) <= 38
    MAXIMIZE SUM(P.rating)|}

let () =
  let n = 8000 in
  let rel = catalogue n in
  Format.printf "Course catalogue: %d courses@.@." n;
  let attrs = [ "credits"; "weekly_hours"; "rating"; "is_stem"; "level" ] in

  (* Dynamic partitioning: build the hierarchy once offline... *)
  let t0 = Unix.gettimeofday () in
  let tree = Pkg.Quad_tree.build ~leaf_size:(n / 50) ~attrs rel in
  Format.printf "Quad-tree: %d nodes in %.3fs@.@." (Pkg.Quad_tree.size tree)
    (Unix.gettimeofday () -. t0);

  let limits = { Ilp.Branch_bound.default_limits with max_nodes = 30_000; max_seconds = 20. } in
  let run_query label text =
    Format.printf "== %s ==@." label;
    let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn text) in
    (* ...and cut it at query time for this query's sense/epsilon. *)
    let maximize =
      Paql.Translate.objective_sense spec = Lp.Problem.Maximize
    in
    let part =
      Pkg.Quad_tree.cut ~tau:(n / 10)
        ~radius:(Pkg.Partition.Theorem { epsilon = 0.5; maximize })
        tree rel
    in
    Format.printf "  query-time cut: %d groups@."
      (Pkg.Partition.num_groups part);
    let direct = Pkg.Direct.run ~limits spec rel in
    Format.printf "  direct:       %a@." Pkg.Eval.pp_report direct;
    let sr =
      Pkg.Sketch_refine.run
        ~options:{ Pkg.Sketch_refine.default_options with limits }
        spec rel part
    in
    Format.printf "  sketchrefine: %a@." Pkg.Eval.pp_report sr;
    (match sr.Pkg.Eval.package with
    | Some p ->
      let m = Pkg.Package.materialize p in
      let agg a = Relalg.Value.to_float (Relalg.Aggregate.over m a) in
      Format.printf
        "  schedule: %d courses, %g credits, %.1f h/week, avg rating %.2f@."
        (Pkg.Package.cardinality p)
        (agg (Relalg.Aggregate.Sum "credits"))
        (agg (Relalg.Aggregate.Sum "weekly_hours"))
        (agg (Relalg.Aggregate.Avg "rating"))
    | None -> Format.printf "  no feasible schedule@.");
    Format.printf "@."
  in
  run_query "full semester (breadth + level constraints)" semester_query;
  run_query "light semester" light_semester_query
