bin/paql_repl.mli:
