bin/pkgq_gen.ml: Arg Cmd Cmdliner Datagen List Printf Relalg String Term
