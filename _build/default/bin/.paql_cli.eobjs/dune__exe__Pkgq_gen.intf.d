bin/pkgq_gen.mli:
