bin/paql_cli.mli:
