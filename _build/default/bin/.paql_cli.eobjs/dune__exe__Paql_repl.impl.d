bin/paql_repl.ml: Buffer Format Ilp List Option Paql Pkg Printexc Relalg String Sys
