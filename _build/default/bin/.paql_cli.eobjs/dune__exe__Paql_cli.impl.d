bin/paql_cli.ml: Arg Cmd Cmdliner Format Fun Ilp List Logs Lp Option Paql Pkg Relalg String Term Unix
