(* paql: run PaQL package queries against CSV data from the command
   line, with DIRECT or SKETCHREFINE evaluation.

   Examples:
     paql --data recipes.csv --query-file q.paql
     paql --data recipes.csv --query "SELECT PACKAGE(R) ..." \
          --method sketchrefine --tau 1000 --attrs kcal,fat
     paql --data big.csv --query-file q.paql --method sketchrefine \
          --epsilon 0.5 --out package.csv *)

open Cmdliner

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

type method_ = Direct | Sketch_refine

let run data query_text query_file method_ tau attrs epsilon max_seconds
    max_nodes out verbose explain mps_out partition_file save_partition
    parallel =
  let query =
    match query_text, query_file with
    | Some q, None -> q
    | None, Some f -> read_file f
    | Some _, Some _ -> failwith "pass either --query or --query-file, not both"
    | None, None -> failwith "a query is required (--query or --query-file)"
  in
  if verbose then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info)
  end;
  let rel = Relalg.Csv.read data in
  let schema = Relalg.Relation.schema rel in
  let ast =
    match Paql.Parser.parse query with
    | Ok ast -> ast
    | Error msg -> failwith msg
  in
  (match Paql.Analyze.check schema ast with
  | Ok () -> ()
  | Error errs -> failwith (String.concat "\n" errs));
  let spec = Paql.Translate.compile_exn schema ast in
  if verbose then
    Format.printf "Parsed query:@.%a@.@." Paql.Pretty.pp_query ast;
  if explain then begin
    print_string (Paql.Translate.describe spec rel);
    exit 0
  end;
  (match mps_out with
  | Some path ->
    let candidates = Paql.Translate.base_candidates spec rel in
    let problem = Paql.Translate.to_problem spec rel ~candidates in
    Lp.Mps.write path problem;
    Format.printf "ILP written to %s (%d vars, %d rows)@." path
      (Lp.Problem.nvars problem) (Lp.Problem.nrows problem)
  | None -> ());
  let limits = { Ilp.Branch_bound.max_nodes; max_seconds } in
  let report =
    match method_ with
    | Direct -> Pkg.Direct.run ~limits spec rel
    | Sketch_refine ->
      let attrs =
        match attrs with
        | [] ->
          (* default: the query's own numeric attributes *)
          let qattrs = Paql.Ast.all_attrs ast in
          List.filter
            (fun a ->
              match Relalg.Schema.index_of_opt schema a with
              | Some i -> (
                match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
                | Relalg.Value.TInt | Relalg.Value.TFloat -> true
                | Relalg.Value.TStr | Relalg.Value.TBool -> false)
              | None -> false)
            qattrs
        | attrs -> attrs
      in
      if attrs = [] then
        failwith "sketchrefine needs numeric partitioning attributes (--attrs)";
      let tau =
        match tau with
        | Some t -> t
        | None -> max 1 (Relalg.Relation.cardinality rel / 10)
      in
      let persisted =
        Option.map (fun path -> Pkg.Partition.load path rel) partition_file
      in
      let radius =
        match epsilon with
        | None -> Pkg.Partition.No_radius
        | Some epsilon ->
          let maximize =
            match Paql.Translate.objective_sense spec with
            | Lp.Problem.Maximize -> true
            | Lp.Problem.Minimize -> false
          in
          Pkg.Partition.Theorem { epsilon; maximize }
      in
      let t0 = Unix.gettimeofday () in
      let part =
        match persisted with
        | Some p ->
          if verbose then
            Format.printf "Loaded partitioning: %d groups@."
              (Pkg.Partition.num_groups p);
          p
        | None ->
          let p = Pkg.Partition.create ~radius ~tau ~attrs rel in
          if verbose then
            Format.printf "Partitioned %d tuples into %d groups in %.3fs@."
              (Relalg.Relation.cardinality rel)
              (Pkg.Partition.num_groups p)
              (Unix.gettimeofday () -. t0);
          p
      in
      Option.iter
        (fun path ->
          Pkg.Partition.save path part;
          if verbose then Format.printf "Partitioning saved to %s@." path)
        save_partition;
      let options =
        { Pkg.Sketch_refine.default_options with limits; max_seconds }
      in
      if parallel then Pkg.Parallel.run ~options spec rel part
      else Pkg.Sketch_refine.run ~options spec rel part
  in
  Format.printf "%a@." Pkg.Eval.pp_report report;
  match report.Pkg.Eval.package with
  | None -> if report.Pkg.Eval.status = Pkg.Eval.Infeasible then exit 1 else exit 2
  | Some p ->
    let materialized = Pkg.Package.materialize p in
    (match out with
    | Some path ->
      Relalg.Csv.write path materialized;
      Format.printf "package written to %s (%d rows)@." path
        (Relalg.Relation.cardinality materialized)
    | None ->
      Format.printf "@.%a@." Relalg.Relation.pp materialized)

let data =
  Arg.(
    required
    & opt (some file) None
    & info [ "data"; "d" ] ~docv:"CSV"
        ~doc:"Input relation as CSV with a name:type header.")

let query_text =
  Arg.(
    value
    & opt (some string) None
    & info [ "query"; "q" ] ~docv:"PAQL" ~doc:"PaQL query text.")

let query_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "query-file"; "f" ] ~docv:"FILE" ~doc:"File holding the PaQL query.")

let method_ =
  let method_conv =
    Arg.enum [ ("direct", Direct); ("sketchrefine", Sketch_refine) ]
  in
  Arg.(
    value & opt method_conv Direct
    & info [ "method"; "m" ] ~docv:"METHOD"
        ~doc:"Evaluation method: $(b,direct) or $(b,sketchrefine).")

let tau =
  Arg.(
    value
    & opt (some int) None
    & info [ "tau" ] ~docv:"N"
        ~doc:"Partition size threshold (default: 10% of the input).")

let attrs =
  Arg.(
    value
    & opt (list string) []
    & info [ "attrs" ] ~docv:"A,B,..."
        ~doc:"Partitioning attributes (default: the query's numeric attributes).")

let epsilon =
  Arg.(
    value
    & opt (some float) None
    & info [ "epsilon" ] ~docv:"E"
        ~doc:
          "Approximation parameter: partition with the Theorem 3 radius \
           limit for a (1+/-E)^6 objective guarantee.")

let max_seconds =
  Arg.(
    value & opt float 3600.
    & info [ "max-seconds" ] ~docv:"S" ~doc:"Wall-clock budget per solve.")

let max_nodes =
  Arg.(
    value & opt int 200_000
    & info [ "max-nodes" ] ~docv:"N" ~doc:"Branch-and-bound node budget.")

let out =
  Arg.(
    value
    & opt (some string) None
    & info [ "out"; "o" ] ~docv:"CSV" ~doc:"Write the package to a CSV file.")

let verbose =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Chatty output.")

let explain =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:"Print the ILP translation summary instead of solving.")

let mps_out =
  Arg.(
    value
    & opt (some string) None
    & info [ "mps-out" ] ~docv:"FILE"
        ~doc:"Also dump the translated ILP in MPS format.")

let partition_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "partition-file" ] ~docv:"FILE"
        ~doc:
          "Reuse a partitioning saved with $(b,--save-partition) instead of \
           partitioning at query time (sketchrefine only).")

let save_partition =
  Arg.(
    value
    & opt (some string) None
    & info [ "save-partition" ] ~docv:"FILE"
        ~doc:"Persist the partitioning for reuse (sketchrefine only).")

let parallel =
  Arg.(
    value & flag
    & info [ "parallel" ]
        ~doc:"Use the parallel refinement driver (sketchrefine only).")

let cmd =
  let doc = "evaluate PaQL package queries over CSV data" in
  let term =
    Term.(
      const run $ data $ query_text $ query_file $ method_ $ tau $ attrs
      $ epsilon $ max_seconds $ max_nodes $ out $ verbose $ explain
      $ mps_out $ partition_file $ save_partition $ parallel)
  in
  Cmd.v (Cmd.info "paql" ~doc) term

let () =
  match Cmd.eval_value cmd with
  | Ok _ -> ()
  | Error _ -> exit 124
