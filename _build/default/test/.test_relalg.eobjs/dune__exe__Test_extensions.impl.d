test/test_extensions.ml: Alcotest Array Datagen Float Format Ilp List Lp Option Paql Pkg QCheck QCheck_alcotest Relalg
