test/test_paql.ml: Alcotest Array Gen List Lp Option Paql Printf QCheck QCheck_alcotest Relalg Result String
