test/test_lp.ml: Alcotest Array Filename Float Fun Hashtbl Ilp List Lp QCheck QCheck_alcotest Random Result Sys
