test/test_relalg.ml: Alcotest Array Filename Float Fun Gen List Printf QCheck QCheck_alcotest Relalg Result Sys
