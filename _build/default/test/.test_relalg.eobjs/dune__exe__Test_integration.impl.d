test/test_integration.ml: Alcotest Datagen Filename Fun Ilp List Option Paql Pkg Relalg Result Sys
