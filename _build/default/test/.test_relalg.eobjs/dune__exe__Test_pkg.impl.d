test/test_pkg.ml: Alcotest Array Datagen Filename Float Format Fun List Option Paql Pkg Printf QCheck QCheck_alcotest Relalg Seq Sys
