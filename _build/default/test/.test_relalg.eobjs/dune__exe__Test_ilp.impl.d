test/test_ilp.ml: Alcotest Array Float Ilp List Lp QCheck QCheck_alcotest Random String
