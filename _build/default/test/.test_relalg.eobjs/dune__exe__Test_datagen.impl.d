test/test_datagen.ml: Alcotest Array Datagen Float Ilp List Paql Pkg Printf Relalg
