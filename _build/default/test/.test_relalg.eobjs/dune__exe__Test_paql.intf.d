test/test_paql.mli:
