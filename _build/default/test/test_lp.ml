(* Tests for the bounded-variable two-phase revised simplex. *)

module P = Lp.Problem
module Sx = Lp.Simplex

let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-6)

let solve_optimal p =
  match Sx.solve p with
  | Sx.Optimal s -> s
  | r -> Alcotest.failf "expected optimal, got %a" Sx.pp_result r

(* Classic textbook maximization. *)
let test_textbook_max () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var 3.; P.var 5. ]
      ~rows:
        [
          P.row [ (0, 1.) ] ~lo:neg_infinity ~hi:4.;
          P.row [ (1, 2.) ] ~lo:neg_infinity ~hi:12.;
          P.row [ (0, 3.); (1, 2.) ] ~lo:neg_infinity ~hi:18.;
        ]
  in
  let s = solve_optimal p in
  checkf "objective" 36. s.Sx.obj;
  checkf "x" 2. s.Sx.x.(0);
  checkf "y" 6. s.Sx.x.(1)

let test_minimization_with_phase1 () =
  (* min x + y, x + y = 10, 2 <= x - y <= 4: optimum 10 at (6,4) *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var 1.; P.var 1. ]
      ~rows:
        [
          P.row [ (0, 1.); (1, 1.) ] ~lo:10. ~hi:10.;
          P.row [ (0, 1.); (1, -1.) ] ~lo:2. ~hi:4.;
        ]
  in
  let s = solve_optimal p in
  checkf "objective" 10. s.Sx.obj;
  checkf "x" 6. s.Sx.x.(0)

let test_infeasible () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var 1. ]
      ~rows:
        [
          P.row [ (0, 1.) ] ~lo:5. ~hi:infinity;
          P.row [ (0, 1.) ] ~lo:neg_infinity ~hi:3.;
        ]
  in
  checkb "infeasible" true (Sx.solve p = Sx.Infeasible)

let test_unbounded () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var 1. ]
      ~rows:[ P.row [ (0, 1.) ] ~lo:1. ~hi:infinity ]
  in
  checkb "unbounded" true (Sx.solve p = Sx.Unbounded)

let test_bounded_variables () =
  (* fractional knapsack via upper-bounded variables *)
  let vals = [| 6.; 5.; 4.; 3. |] and wts = [| 5.; 4.; 3.; 2. |] in
  let vars = Array.to_list (Array.map (fun v -> P.var ~hi:1. v) vals) in
  let coeffs = Array.to_list (Array.mapi (fun i w -> (i, w)) wts) in
  let p =
    P.make ~sense:P.Maximize ~vars
      ~rows:[ P.row coeffs ~lo:neg_infinity ~hi:10. ]
  in
  let s = solve_optimal p in
  checkf "objective" 13.2 s.Sx.obj;
  checkf "fractional item" 0.2 s.Sx.x.(0)

let test_fixed_and_free_variables () =
  (* y is fixed at 2; z is free (appears with negative cost) *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:
        [
          P.var 1.;
          P.var ~lo:2. ~hi:2. 5.;
          P.var ~lo:neg_infinity ~hi:infinity 1.;
        ]
      ~rows:
        [
          P.row [ (0, 1.); (1, 1.); (2, 1.) ] ~lo:5. ~hi:5.;
          P.row [ (2, 1.) ] ~lo:(-3.) ~hi:infinity;
        ]
  in
  let s = solve_optimal p in
  checkf "fixed var" 2. s.Sx.x.(1);
  (* x and z share a cost, so any split of x + z = 3 with z >= -3 is
     optimal; only the objective is pinned *)
  checkf "objective" 13. s.Sx.obj;
  checkb "free var within row bound" true (s.Sx.x.(2) >= -3. -. 1e-9)

let test_equality_row () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var 2.; P.var 1. ]
      ~rows:[ P.row [ (0, 1.); (1, 1.) ] ~lo:7. ~hi:7. ]
  in
  let s = solve_optimal p in
  checkf "obj" 14. s.Sx.obj;
  checkf "x takes all" 7. s.Sx.x.(0)

let test_empty_row_feasibility () =
  (* a row with no coefficients is feasible iff 0 lies in its range *)
  let feasible_p =
    P.make ~sense:P.Minimize ~vars:[ P.var 1. ]
      ~rows:[ P.row [] ~lo:(-1.) ~hi:1. ]
  in
  (match Sx.solve feasible_p with
  | Sx.Optimal _ -> ()
  | r -> Alcotest.failf "expected optimal, got %a" Sx.pp_result r);
  let infeasible_p =
    P.make ~sense:P.Minimize ~vars:[ P.var 1. ]
      ~rows:[ P.row [] ~lo:3. ~hi:4. ]
  in
  checkb "empty row infeasible" true (Sx.solve infeasible_p = Sx.Infeasible)

let test_degenerate () =
  (* many redundant constraints through the optimum *)
  let p =
    P.make ~sense:P.Maximize
      ~vars:[ P.var 1.; P.var 1. ]
      ~rows:
        [
          P.row [ (0, 1.); (1, 1.) ] ~lo:neg_infinity ~hi:10.;
          P.row [ (0, 2.); (1, 2.) ] ~lo:neg_infinity ~hi:20.;
          P.row [ (0, 1.) ] ~lo:neg_infinity ~hi:10.;
          P.row [ (1, 1.) ] ~lo:neg_infinity ~hi:10.;
          P.row [ (0, 3.); (1, 3.) ] ~lo:neg_infinity ~hi:30.;
        ]
  in
  let s = solve_optimal p in
  checkf "objective" 10. s.Sx.obj

let test_negative_bounds () =
  (* min x with x in [-5, -1] and x >= -3 via a row *)
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~lo:(-5.) ~hi:(-1.) 1. ]
      ~rows:[ P.row [ (0, 1.) ] ~lo:(-3.) ~hi:infinity ]
  in
  let s = solve_optimal p in
  checkf "objective" (-3.) s.Sx.obj

let test_no_rows () =
  (* pure bound problem: min -x with x <= 9 *)
  let p = P.make ~sense:P.Maximize ~vars:[ P.var ~hi:9. 1. ] ~rows:[] in
  let s = solve_optimal p in
  checkf "objective" 9. s.Sx.obj

let test_validate () =
  let bad_var = P.make ~sense:P.Minimize ~vars:[ P.var ~lo:2. ~hi:1. 0. ] ~rows:[] in
  checkb "lo>hi var" true (Result.is_error (P.validate bad_var));
  let bad_row =
    P.make ~sense:P.Minimize ~vars:[ P.var 0. ]
      ~rows:[ P.row [ (5, 1.) ] ~lo:0. ~hi:1. ]
  in
  checkb "bad index" true (Result.is_error (P.validate bad_row));
  Alcotest.check_raises "solve rejects invalid"
    (Invalid_argument "Simplex.solve: row 0 references variable 5") (fun () ->
      ignore (Sx.solve bad_row))

let test_feasible_predicate () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~integer:true ~hi:5. 1. ]
      ~rows:[ P.row [ (0, 2.) ] ~lo:2. ~hi:6. ]
  in
  checkb "feasible point" true (P.feasible p [| 2. |]);
  checkb "violates row" false (P.feasible p [| 5. |]);
  checkb "violates integrality" false (P.feasible p [| 1.5 |]);
  checkf "objective eval" 2. (P.objective p [| 2. |])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Generate random LPs with box-bounded variables (always feasible by
   construction of bounds) and random <=-rows made loose enough to stay
   feasible; check optimality against random feasible sampling. *)
let random_lp_gen =
  QCheck.Gen.(
    let small_float = map (fun i -> float_of_int i /. 4.) (int_range (-20) 20) in
    let nvars = int_range 1 6 in
    nvars >>= fun n ->
    list_size (return n) small_float >>= fun costs ->
    list_size (int_range 0 3)
      (list_size (return n) small_float)
    >>= fun row_coeffs ->
    return (n, costs, row_coeffs))

let lp_of (n, costs, row_coeffs) =
  let vars = List.map (fun c -> P.var ~lo:0. ~hi:1. c) costs in
  let rows =
    List.map
      (fun coeffs ->
        let indexed = List.mapi (fun i c -> (i, c)) coeffs in
        (* loose bound: sum of positive coefficients, so x = 0 is
           always feasible and the row can still bind *)
        let hi =
          List.fold_left (fun acc c -> acc +. Float.max 0. c) 0. coeffs /. 2.
        in
        P.row indexed ~lo:neg_infinity ~hi)
      row_coeffs
  in
  ignore n;
  P.make ~sense:P.Maximize ~vars ~rows

let prop_simplex_feasible_and_dominant =
  QCheck.Test.make ~count:300
    ~name:"simplex result is feasible and dominates random feasible points"
    (QCheck.make random_lp_gen)
    (fun input ->
      let p = lp_of input in
      match Sx.solve p with
      | Sx.Optimal s ->
        if not (P.feasible ~tol:1e-5 p s.Sx.x) then false
        else begin
          (* sample random points; keep feasible ones *)
          let n = P.nvars p in
          let rng = Random.State.make [| Hashtbl.hash input |] in
          let dominated = ref true in
          for _ = 1 to 50 do
            let x =
              Array.init n (fun _ -> Random.State.float rng 1.0)
            in
            if P.feasible ~tol:0. p x then
              if P.objective p x > s.Sx.obj +. 1e-5 then dominated := false
          done;
          !dominated
        end
      | Sx.Infeasible -> false (* x = 0 is always feasible here *)
      | Sx.Unbounded -> false (* variables are boxed *)
      | Sx.Iter_limit -> false)

(* Scaling invariance: multiplying the objective by a positive constant
   scales the optimum. *)
let prop_objective_scaling =
  QCheck.Test.make ~count:100 ~name:"objective scaling"
    (QCheck.make random_lp_gen)
    (fun input ->
      let p = lp_of input in
      let scaled =
        {
          p with
          P.vars =
            Array.map (fun v -> { v with P.obj = 3. *. v.P.obj }) p.P.vars;
        }
      in
      match Sx.solve p, Sx.solve scaled with
      | Sx.Optimal a, Sx.Optimal b -> Float.abs ((3. *. a.Sx.obj) -. b.Sx.obj) < 1e-5
      | _ -> false)

let test_iteration_limit () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var 1.; P.var 1. ]
      ~rows:
        [
          P.row [ (0, 1.); (1, 1.) ] ~lo:10. ~hi:10.;
          P.row [ (0, 1.); (1, -1.) ] ~lo:2. ~hi:4.;
        ]
  in
  checkb "iteration limit surfaces" true
    (Sx.solve ~max_iters:1 p = Sx.Iter_limit)

(* max c.x equals -min (-c).x *)
let prop_sense_symmetry =
  QCheck.Test.make ~count:100 ~name:"maximize/minimize symmetry"
    (QCheck.make random_lp_gen)
    (fun input ->
      let p = lp_of input in
      let negated =
        {
          p with
          P.sense = P.Minimize;
          vars = Array.map (fun v -> { v with P.obj = -.v.P.obj }) p.P.vars;
        }
      in
      match Sx.solve p, Sx.solve negated with
      | Sx.Optimal a, Sx.Optimal b -> Float.abs (a.Sx.obj +. b.Sx.obj) < 1e-6
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* MPS round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let test_mps_roundtrip_shapes () =
  let p =
    P.make ~sense:P.Maximize
      ~vars:
        [
          P.var ~name:"buy" ~integer:true ~hi:3. 5.;
          P.var ~name:"hold" ~lo:(-2.) ~hi:2. (-1.);
          P.var ~lo:neg_infinity ~hi:infinity 0.5;
          P.var ~lo:1. ~hi:1. 2.;
        ]
      ~rows:
        [
          P.row ~name:"cap" [ (0, 2.); (1, 1.) ] ~lo:neg_infinity ~hi:7.;
          P.row ~name:"floor" [ (1, 1.); (2, 1.) ] ~lo:(-4.) ~hi:infinity;
          P.row ~name:"win" [ (0, 1.); (2, 2.) ] ~lo:1. ~hi:5.;
          P.row ~name:"exact" [ (3, 1.); (0, 1.) ] ~lo:2. ~hi:2.;
        ]
  in
  let p2 = Lp.Mps.of_string (Lp.Mps.to_string p) in
  checkb "sense" true (p2.P.sense = P.Maximize);
  checkb "nvars" true (P.nvars p2 = P.nvars p);
  checkb "nrows" true (P.nrows p2 = P.nrows p);
  (* semantics: same optimum *)
  (match Sx.solve p, Sx.solve p2 with
  | Sx.Optimal a, Sx.Optimal b -> checkf "same optimum" a.Sx.obj b.Sx.obj
  | ra, rb ->
    Alcotest.failf "solve mismatch: %a vs %a" Sx.pp_result ra Sx.pp_result rb);
  (* integrality survives *)
  checkb "integer flag" true p2.P.vars.(0).P.integer;
  checkb "continuous flag" false p2.P.vars.(1).P.integer

let test_mps_file_io () =
  let p =
    P.make ~sense:P.Minimize
      ~vars:[ P.var ~integer:true ~hi:4. 1. ]
      ~rows:[ P.row [ (0, 2.) ] ~lo:3. ~hi:9. ]
  in
  let path = Filename.temp_file "pkgq" ".mps" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lp.Mps.write path p;
      let p2 = Lp.Mps.read path in
      match Ilp.Branch_bound.solve p2 with
      | Ilp.Branch_bound.Optimal (s, _) ->
        checkf "optimum through file" 2. s.Ilp.Branch_bound.obj
      | _ -> Alcotest.fail "should solve")

let test_mps_classic_integer_default () =
  (* third-party MPS: integer column with no bounds defaults to [0,1] *)
  let doc =
    "NAME T\nROWS\n N  OBJ\n L  c0\nCOLUMNS\n    MARKER 'MARKER' \
     'INTORG'\n    x  OBJ  1\n    x  c0  1\n    MARKER 'MARKER' \
     'INTEND'\nRHS\n    RHS  c0  10\nENDATA\n"
  in
  let p = Lp.Mps.of_string doc in
  checkf "default hi 1" 1. p.P.vars.(0).P.hi

let prop_mps_roundtrip =
  QCheck.Test.make ~count:200 ~name:"mps round-trip preserves the LP optimum"
    (QCheck.make random_lp_gen)
    (fun input ->
      let p = lp_of input in
      let p2 = Lp.Mps.of_string (Lp.Mps.to_string p) in
      match Sx.solve p, Sx.solve p2 with
      | Sx.Optimal a, Sx.Optimal b -> Float.abs (a.Sx.obj -. b.Sx.obj) < 1e-9
      | Sx.Infeasible, Sx.Infeasible -> true
      | Sx.Unbounded, Sx.Unbounded -> true
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "phase-1 minimization" `Quick
            test_minimization_with_phase1;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "bounded variables" `Quick test_bounded_variables;
          Alcotest.test_case "fixed and free variables" `Quick
            test_fixed_and_free_variables;
          Alcotest.test_case "equality row" `Quick test_equality_row;
          Alcotest.test_case "empty rows" `Quick test_empty_row_feasibility;
          Alcotest.test_case "degenerate constraints" `Quick test_degenerate;
          Alcotest.test_case "negative bounds" `Quick test_negative_bounds;
          Alcotest.test_case "no rows" `Quick test_no_rows;
          Alcotest.test_case "iteration limit" `Quick test_iteration_limit;
        ] );
      ( "problem",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "feasible/objective" `Quick
            test_feasible_predicate;
        ] );
      ( "mps",
        [
          Alcotest.test_case "round-trip shapes" `Quick
            test_mps_roundtrip_shapes;
          Alcotest.test_case "file io" `Quick test_mps_file_io;
          Alcotest.test_case "classic integer default" `Quick
            test_mps_classic_integer_default;
          QCheck_alcotest.to_alcotest prop_mps_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_simplex_feasible_and_dominant;
          QCheck_alcotest.to_alcotest prop_objective_scaling;
          QCheck_alcotest.to_alcotest prop_sense_symmetry;
        ] );
    ]
