(* Unit and property tests for the relational engine substrate. *)

module V = Relalg.Value
module S = Relalg.Schema
module T = Relalg.Tuple
module E = Relalg.Expr
module R = Relalg.Relation
module A = Relalg.Aggregate

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Value                                                              *)
(* ------------------------------------------------------------------ *)

let test_value_compare () =
  checkb "int eq" true (V.compare_sql (V.Int 3) (V.Int 3) = Some 0);
  checkb "int lt" true (V.compare_sql (V.Int 2) (V.Int 3) = Some (-1));
  checkb "mixed numeric" true (V.compare_sql (V.Int 3) (V.Float 3.0) = Some 0);
  checkb "float gt" true
    (match V.compare_sql (V.Float 3.5) (V.Int 3) with
    | Some c -> c > 0
    | None -> false);
  checkb "null left" true (V.compare_sql V.Null (V.Int 1) = None);
  checkb "null right" true (V.compare_sql (V.Str "a") V.Null = None);
  checkb "strings" true (V.compare_sql (V.Str "a") (V.Str "b") = Some (-1));
  checkb "bools" true (V.compare_sql (V.Bool false) (V.Bool true) = Some (-1));
  Alcotest.check_raises "str vs int" (Invalid_argument
    "Value.compare_sql: incompatible types") (fun () ->
      ignore (V.compare_sql (V.Str "a") (V.Int 1)))

let test_value_conversions () =
  checkf "int to float" 3. (V.to_float (V.Int 3));
  checkb "null to_float_opt" true (V.to_float_opt V.Null = None);
  checkb "of_string empty is null" true (V.of_string V.TFloat "" = V.Null);
  checkb "of_string int" true (V.of_string V.TInt "42" = V.Int 42);
  checkb "of_string float" true (V.of_string V.TFloat "1.5" = V.Float 1.5);
  checkb "of_string bool" true (V.of_string V.TBool "true" = V.Bool true);
  checks "to_string" "NULL" (V.to_string V.Null);
  checkb "type_of" true (V.type_of (V.Str "x") = Some V.TStr);
  checkb "type_of null" true (V.type_of V.Null = None)

(* ------------------------------------------------------------------ *)
(* Schema                                                             *)
(* ------------------------------------------------------------------ *)

let mk_schema () =
  S.make
    [
      { S.name = "a"; ty = V.TInt };
      { S.name = "b"; ty = V.TFloat };
      { S.name = "c"; ty = V.TStr };
    ]

let test_schema_basics () =
  let s = mk_schema () in
  checki "arity" 3 (S.arity s);
  checki "index_of b" 1 (S.index_of s "b");
  checkb "mem" true (S.mem s "c");
  checkb "not mem" false (S.mem s "z");
  checkb "ty_of" true (S.ty_of s "a" = V.TInt);
  checkb "index_of_opt none" true (S.index_of_opt s "z" = None);
  Alcotest.check_raises "duplicate" (Invalid_argument
    "Schema.make: duplicate attribute a") (fun () ->
      ignore (S.make [ { S.name = "a"; ty = V.TInt };
                       { S.name = "a"; ty = V.TStr } ]))

let test_schema_project_extend () =
  let s = mk_schema () in
  let p = S.project s [ "c"; "a" ] in
  checki "projected arity" 2 (S.arity p);
  checki "projected order" 0 (S.index_of p "c");
  let e = S.extend s { S.name = "gid"; ty = V.TInt } in
  checki "extended arity" 4 (S.arity e);
  checki "extended index" 3 (S.index_of e "gid");
  checkb "equal self" true (S.equal s (mk_schema ()));
  checkb "not equal" false (S.equal s p)

(* ------------------------------------------------------------------ *)
(* Expr                                                               *)
(* ------------------------------------------------------------------ *)

let expr_schema =
  S.make
    [
      { S.name = "x"; ty = V.TFloat };
      { S.name = "y"; ty = V.TFloat };
      { S.name = "s"; ty = V.TStr };
    ]

let tup x y s = [| V.Float x; V.Float y; V.Str s |]

let test_expr_arith () =
  let t = tup 3. 4. "hi" in
  let ev e = E.eval expr_schema t e in
  checkb "add" true (ev (E.Binop (E.Add, E.Attr "x", E.Attr "y")) = V.Float 7.);
  checkb "mul" true
    (ev (E.Binop (E.Mul, E.Attr "x", E.Const (V.Float 2.))) = V.Float 6.);
  checkb "div" true
    (ev (E.Binop (E.Div, E.Attr "y", E.Attr "x")) = V.Float (4. /. 3.));
  checkb "neg" true (ev (E.Neg (E.Attr "x")) = V.Float (-3.));
  checkb "null propagates" true
    (ev (E.Binop (E.Add, E.Attr "x", E.Const V.Null)) = V.Null);
  checkb "int division yields float" true
    (E.eval expr_schema [| V.Float 1.; V.Float 1.; V.Str "" |]
       (E.Binop (E.Div, E.Const (V.Int 1), E.Const (V.Int 2)))
    = V.Float 0.5)

let test_expr_three_valued_logic () =
  let t = tup 1. 2. "a" in
  let ev e = E.eval expr_schema t e in
  let null_cmp = E.Cmp (E.Eq, E.Attr "x", E.Const V.Null) in
  checkb "null cmp is null" true (ev null_cmp = V.Null);
  checkb "false AND null = false" true
    (ev (E.And (E.Cmp (E.Gt, E.Attr "x", E.Attr "y"), null_cmp)) = V.Bool false);
  checkb "true AND null = null" true
    (ev (E.And (E.Cmp (E.Lt, E.Attr "x", E.Attr "y"), null_cmp)) = V.Null);
  checkb "true OR null = true" true
    (ev (E.Or (E.Cmp (E.Lt, E.Attr "x", E.Attr "y"), null_cmp)) = V.Bool true);
  checkb "false OR null = null" true
    (ev (E.Or (E.Cmp (E.Gt, E.Attr "x", E.Attr "y"), null_cmp)) = V.Null);
  checkb "not null = null" true (ev (E.Not null_cmp) = V.Null);
  checkb "eval_bool treats null as false" false
    (E.eval_bool expr_schema t null_cmp);
  checkb "is null" true (ev (E.IsNull (E.Const V.Null)) = V.Bool true);
  checkb "is not null" true (ev (E.IsNotNull (E.Attr "x")) = V.Bool true)

let test_expr_between_and_strings () =
  let t = tup 5. 0. "free" in
  let ev e = E.eval expr_schema t e in
  checkb "between inside" true
    (ev (E.Between (E.Attr "x", E.Const (V.Float 1.), E.Const (V.Float 9.)))
    = V.Bool true);
  checkb "between boundary" true
    (ev (E.Between (E.Attr "x", E.Const (V.Float 5.), E.Const (V.Float 9.)))
    = V.Bool true);
  checkb "between outside" true
    (ev (E.Between (E.Attr "x", E.Const (V.Float 6.), E.Const (V.Float 9.)))
    = V.Bool false);
  checkb "string eq" true
    (ev (E.Cmp (E.Eq, E.Attr "s", E.Const (V.Str "free"))) = V.Bool true);
  checkb "string neq" true
    (ev (E.Cmp (E.Neq, E.Attr "s", E.Const (V.Str "full"))) = V.Bool true)

let test_expr_check () =
  let ok e = checkb "check ok" true (E.check expr_schema e = Ok ()) in
  ok (E.Cmp (E.Le, E.Attr "x", E.Const (V.Float 1.)));
  ok (E.And (E.Cmp (E.Eq, E.Attr "s", E.Const (V.Str "a")),
             E.Cmp (E.Gt, E.Attr "y", E.Attr "x")));
  let bad e = checkb "check err" true (Result.is_error (E.check expr_schema e)) in
  bad (E.Attr "nope");
  bad (E.Binop (E.Add, E.Attr "s", E.Attr "x"));
  bad (E.Cmp (E.Eq, E.Attr "s", E.Attr "x"));
  bad (E.And (E.Attr "x", E.Attr "y"));
  bad (E.Not (E.Attr "x"));
  bad (E.Between (E.Attr "s", E.Const (V.Float 0.), E.Const (V.Float 1.)))

let test_expr_attrs () =
  let e =
    E.And
      ( E.Cmp (E.Le, E.Attr "x", E.Attr "y"),
        E.Between (E.Attr "x", E.Const (V.Float 0.), E.Attr "y") )
  in
  Alcotest.(check (list string)) "attrs dedup ordered" [ "x"; "y" ] (E.attrs e)

(* ------------------------------------------------------------------ *)
(* Relation                                                           *)
(* ------------------------------------------------------------------ *)

let small_rel () =
  R.of_rows expr_schema
    [ tup 1. 10. "a"; tup 2. 20. "b"; tup 3. 30. "a"; tup 4. 40. "c" ]

let test_relation_basics () =
  let r = small_rel () in
  checki "cardinality" 4 (R.cardinality r);
  checkb "row access" true (T.equal (R.row r 2) (tup 3. 30. "a"));
  Alcotest.check_raises "row out of range"
    (Invalid_argument "Relation.row: index 9 out of range") (fun () ->
      ignore (R.row r 9));
  let b = R.builder expr_schema in
  R.add b (tup 9. 9. "z");
  R.add b (tup 8. 8. "w");
  let r2 = R.seal b in
  checki "builder preserves order" 2 (R.cardinality r2);
  checkb "builder row 0" true (T.equal (R.row r2 0) (tup 9. 9. "z"))

let test_relation_select_project () =
  let r = small_rel () in
  let is_a = E.Cmp (E.Eq, E.Attr "s", E.Const (V.Str "a")) in
  checki "select" 2 (R.cardinality (R.select r is_a));
  Alcotest.(check (array int)) "select_indices" [| 0; 2 |]
    (R.select_indices r is_a);
  let p = R.project r [ "y" ] in
  checki "project arity" 1 (S.arity (R.schema p));
  checkf "project value" 30. (V.to_float (T.get (R.row p 2) 0));
  let t = R.take r [| 3; 1; 3 |] in
  checki "take multiplicity" 3 (R.cardinality t);
  checkb "take order" true (T.equal (R.row t 0) (tup 4. 40. "c"));
  checki "prefix" 2 (R.cardinality (R.prefix r 2));
  checki "prefix over" 4 (R.cardinality (R.prefix r 10))

let test_relation_columns () =
  let r = small_rel () in
  Alcotest.(check (array (float 1e-9))) "column_float" [| 10.; 20.; 30.; 40. |]
    (R.column_float r "y");
  let withnull =
    R.of_rows expr_schema [ tup 1. 1. "a"; [| V.Null; V.Float 2.; V.Str "b" |] ]
  in
  let col = R.column_float withnull "x" in
  checkb "null becomes nan" true (Float.is_nan col.(1));
  let extended =
    R.append_column r { S.name = "gid"; ty = V.TInt }
      [| V.Int 0; V.Int 0; V.Int 1; V.Int 1 |]
  in
  checki "appended arity" 4 (S.arity (R.schema extended));
  checkb "appended value" true (T.field (R.schema extended) (R.row extended 2) "gid" = V.Int 1);
  Alcotest.check_raises "append arity mismatch"
    (Invalid_argument "Relation.append_column: wrong number of values")
    (fun () ->
      ignore (R.append_column r { S.name = "g"; ty = V.TInt } [| V.Int 1 |]))

(* ------------------------------------------------------------------ *)
(* Aggregate                                                          *)
(* ------------------------------------------------------------------ *)

let test_aggregates () =
  let r = small_rel () in
  checkb "count star" true (A.over r A.Count_star = V.Int 4);
  checkf "sum" 100. (V.to_float (A.over r (A.Sum "y")));
  checkf "avg" 25. (V.to_float (A.over r (A.Avg "y")));
  checkf "min" 10. (V.to_float (A.over r (A.Min "y")));
  checkf "max" 40. (V.to_float (A.over r (A.Max "y")));
  let filt = E.Cmp (E.Eq, E.Attr "s", E.Const (V.Str "a")) in
  checkf "filtered sum" 40. (V.to_float (A.over ~where:filt r (A.Sum "y")));
  checkb "filtered count" true (A.over ~where:filt r A.Count_star = V.Int 2)

let test_aggregates_nulls () =
  let r =
    R.of_rows expr_schema
      [ tup 1. 1. "a"; [| V.Float 2.; V.Null; V.Str "b" |] ]
  in
  checkb "count attr skips null" true (A.over r (A.Count "y") = V.Int 1);
  checkf "sum skips null" 1. (V.to_float (A.over r (A.Sum "y")));
  checkf "avg skips null" 1. (V.to_float (A.over r (A.Avg "y")));
  let empty = R.of_rows expr_schema [] in
  checkb "sum of empty is null" true (A.over empty (A.Sum "y") = V.Null);
  checkb "count of empty" true (A.over empty A.Count_star = V.Int 0);
  checkf "sum_or_zero" 0. (A.sum_or_zero V.Null)

(* ------------------------------------------------------------------ *)
(* Group_by                                                           *)
(* ------------------------------------------------------------------ *)

let test_group_by () =
  let r = small_rel () in
  let groups =
    Relalg.Group_by.by_key r (fun i _ -> i mod 2)
  in
  checki "two groups" 2 (List.length groups);
  let g0 = List.nth groups 0 in
  Alcotest.(check (array int)) "members" [| 0; 2 |] g0.Relalg.Group_by.members;
  let centroid = Relalg.Group_by.centroid r [ "x"; "y" ] g0.Relalg.Group_by.members in
  checkf "centroid x" 2. centroid.(0);
  checkf "centroid y" 20. centroid.(1);
  let radius = Relalg.Group_by.radius r [ "x"; "y" ] g0.Relalg.Group_by.members centroid in
  checkf "radius" 10. radius

(* ------------------------------------------------------------------ *)
(* CSV                                                                *)
(* ------------------------------------------------------------------ *)

let test_csv_roundtrip () =
  let schema =
    S.make
      [
        { S.name = "i"; ty = V.TInt };
        { S.name = "f"; ty = V.TFloat };
        { S.name = "s"; ty = V.TStr };
        { S.name = "b"; ty = V.TBool };
      ]
  in
  let rows =
    [
      [| V.Int 1; V.Float 1.5; V.Str "plain"; V.Bool true |];
      [| V.Null; V.Null; V.Str "with,comma"; V.Bool false |];
      [| V.Int (-7); V.Float 0.25; V.Str "has \"quotes\""; V.Null |];
      [| V.Int 0; V.Float 1e10; V.Str "line\nbreak"; V.Bool true |];
    ]
  in
  let r = R.of_rows schema rows in
  let r2 = Relalg.Csv.of_string (Relalg.Csv.to_string r) in
  checkb "schema survives" true (S.equal (R.schema r) (R.schema r2));
  checki "rows survive" (R.cardinality r) (R.cardinality r2);
  List.iteri
    (fun i expected ->
      checkb (Printf.sprintf "row %d" i) true (T.equal expected (R.row r2 i)))
    rows

let test_csv_file_io () =
  let r = small_rel () in
  let path = Filename.temp_file "pkgq_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Relalg.Csv.write path r;
      let r2 = Relalg.Csv.read path in
      checki "rows" (R.cardinality r) (R.cardinality r2))

(* Property: random relations survive a CSV round-trip. *)
let csv_roundtrip_prop =
  let gen =
    QCheck.Gen.(
      let int_value =
        oneof
          [ return V.Null; map (fun i -> V.Int i) (int_range (-1000) 1000) ]
      in
      let float_value =
        oneof
          [
            return V.Null;
            map (fun f -> V.Float f)
              (map (fun i -> float_of_int i /. 16.) (int_range (-10000) 10000));
          ]
      in
      let str_value =
        oneof
          [
            return V.Null;
            (* empty strings intentionally round-trip as NULL *)
            map (fun s -> V.Str s) (string_size ~gen:printable (int_range 1 12));
          ]
      in
      list_size (int_range 0 30)
        (map3 (fun a b c -> (a, b, c)) int_value float_value str_value))
  in
  QCheck.Test.make ~count:100 ~name:"csv round-trip (random relations)"
    (QCheck.make gen)
    (fun rows ->
      let schema =
        S.make
          [
            { S.name = "a"; ty = V.TInt };
            { S.name = "b"; ty = V.TFloat };
            { S.name = "c"; ty = V.TStr };
          ]
      in
      let r =
        R.of_rows schema (List.map (fun (a, b, c) -> [| a; b; c |]) rows)
      in
      let r2 = Relalg.Csv.of_string (Relalg.Csv.to_string r) in
      R.cardinality r = R.cardinality r2
      && List.for_all
           (fun i -> T.equal (R.row r i) (R.row r2 i))
           (List.init (R.cardinality r) Fun.id))

(* Property: select splits the relation (selected + complement = all). *)
let select_partition_prop =
  QCheck.Test.make ~count:100 ~name:"select + NOT select covers relation"
    QCheck.(make Gen.(list_size (int_range 0 50) (pair (float_bound_exclusive 100.) (float_bound_exclusive 100.))))
    (fun rows ->
      let schema =
        S.make [ { S.name = "x"; ty = V.TFloat }; { S.name = "y"; ty = V.TFloat } ]
      in
      let r =
        R.of_rows schema
          (List.map (fun (x, y) -> [| V.Float x; V.Float y |]) rows)
      in
      let pred = E.Cmp (E.Lt, E.Attr "x", E.Attr "y") in
      let a = R.cardinality (R.select r pred) in
      let b = R.cardinality (R.select r (E.Not pred)) in
      a + b = R.cardinality r)

let test_misc_errors () =
  let r = small_rel () in
  checkb "project unknown attr" true
    (try ignore (R.project r [ "zzz" ]); false with Not_found -> true);
  checkb "take out of range" true
    (try ignore (R.take r [| 99 |]); false with Invalid_argument _ -> true);
  checkb "float_field on string" true
    (try ignore (T.float_field expr_schema (R.row r 0) "s"); false
     with Invalid_argument _ -> true);
  (* float division by zero follows IEEE, not SQL NULL *)
  checkb "division by zero is inf" true
    (E.eval expr_schema (R.row r 0)
       (E.Binop (E.Div, E.Attr "x", E.Const (V.Float 0.)))
    = V.Float infinity);
  checkb "value of_string garbage" true
    (try ignore (V.of_string V.TInt "abc"); false with Failure _ -> true)

(* Random well-typed expressions: evaluation is total (no exceptions)
   and boolean-kinded nodes always produce Bool or Null. *)
let expr_total_prop =
  let open QCheck.Gen in
  let leaf_num =
    oneof
      [
        map (fun f -> E.Const (V.Float f)) (float_bound_exclusive 100.);
        return (E.Const V.Null);
        oneofl [ E.Attr "x"; E.Attr "y" ];
      ]
  in
  let rec num_expr depth =
    if depth = 0 then leaf_num
    else
      frequency
        [
          (2, leaf_num);
          ( 3,
            map2
              (fun op (a, b) -> E.Binop (op, a, b))
              (oneofl [ E.Add; E.Sub; E.Mul; E.Div ])
              (pair (num_expr (depth - 1)) (num_expr (depth - 1))) );
          (1, map (fun a -> E.Neg a) (num_expr (depth - 1)));
        ]
  in
  let rec bool_expr depth =
    if depth = 0 then
      map2
        (fun c (a, b) -> E.Cmp (c, a, b))
        (oneofl [ E.Eq; E.Neq; E.Lt; E.Le; E.Gt; E.Ge ])
        (pair leaf_num leaf_num)
    else
      frequency
        [
          ( 3,
            map2
              (fun c (a, b) -> E.Cmp (c, a, b))
              (oneofl [ E.Eq; E.Neq; E.Lt; E.Le; E.Gt; E.Ge ])
              (pair (num_expr (depth - 1)) (num_expr (depth - 1))) );
          ( 2,
            map2
              (fun c (a, b) -> c a b)
              (oneofl [ (fun a b -> E.And (a, b)); (fun a b -> E.Or (a, b)) ])
              (pair (bool_expr (depth - 1)) (bool_expr (depth - 1))) );
          (1, map (fun a -> E.Not a) (bool_expr (depth - 1)));
          ( 1,
            map3
              (fun e lo hi -> E.Between (e, lo, hi))
              (num_expr (depth - 1)) leaf_num leaf_num );
          (1, map (fun a -> E.IsNull a) (num_expr (depth - 1)));
        ]
  in
  QCheck.Test.make ~count:300 ~name:"well-typed expressions evaluate totally"
    (QCheck.make (pair (bool_expr 4) (pair (float_bound_exclusive 10.) (float_bound_exclusive 10.))))
    (fun (e, (x, y)) ->
      let t = [| V.Float x; V.Float y; V.Str "s" |] in
      match E.check expr_schema e with
      | Error _ -> false (* the generator only builds well-typed exprs *)
      | Ok () -> (
        match E.eval expr_schema t e with
        | V.Bool _ | V.Null -> true
        | V.Int _ | V.Float _ | V.Str _ -> false))

let () =
  Alcotest.run "relalg"
    [
      ( "value",
        [
          Alcotest.test_case "compare_sql" `Quick test_value_compare;
          Alcotest.test_case "conversions" `Quick test_value_conversions;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "project/extend" `Quick test_schema_project_extend;
        ] );
      ( "expr",
        [
          Alcotest.test_case "arithmetic" `Quick test_expr_arith;
          Alcotest.test_case "three-valued logic" `Quick
            test_expr_three_valued_logic;
          Alcotest.test_case "between and strings" `Quick
            test_expr_between_and_strings;
          Alcotest.test_case "type checking" `Quick test_expr_check;
          Alcotest.test_case "attrs" `Quick test_expr_attrs;
        ] );
      ( "relation",
        [
          Alcotest.test_case "basics" `Quick test_relation_basics;
          Alcotest.test_case "select/project/take" `Quick
            test_relation_select_project;
          Alcotest.test_case "columns" `Quick test_relation_columns;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "plain and filtered" `Quick test_aggregates;
          Alcotest.test_case "null handling" `Quick test_aggregates_nulls;
        ] );
      ( "group_by", [ Alcotest.test_case "by_key" `Quick test_group_by ] );
      ( "csv",
        [
          Alcotest.test_case "round-trip" `Quick test_csv_roundtrip;
          Alcotest.test_case "file io" `Quick test_csv_file_io;
          QCheck_alcotest.to_alcotest csv_roundtrip_prop;
          QCheck_alcotest.to_alcotest select_partition_prop;
        ] );
      ( "misc",
        [ Alcotest.test_case "errors and edges" `Quick test_misc_errors ] );
      ( "expr-properties",
        [ QCheck_alcotest.to_alcotest expr_total_prop ] );
    ]
