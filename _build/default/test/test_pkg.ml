(* Tests for the package-query engine: packages, partitioning, DIRECT,
   SKETCH/REFINE/SKETCHREFINE, the naive SQL baseline and the k-means
   alternative partitioner. *)

module V = Relalg.Value
module S = Relalg.Schema
module R = Relalg.Relation

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

let schema =
  S.make
    [
      { S.name = "a"; ty = V.TFloat };
      { S.name = "b"; ty = V.TFloat };
      { S.name = "tag"; ty = V.TStr };
    ]

let mkrel rows =
  R.of_rows schema
    (List.map (fun (a, b, t) -> [| V.Float a; V.Float b; V.Str t |]) rows)

let rel6 =
  mkrel
    [
      (1., 10., "x"); (2., 20., "y"); (3., 30., "x");
      (4., 40., "y"); (5., 50., "x"); (6., 60., "y");
    ]

let compile rel q =
  Paql.Translate.compile_exn (R.schema rel) (Paql.Parser.parse_exn q)

(* ------------------------------------------------------------------ *)
(* Package                                                            *)
(* ------------------------------------------------------------------ *)

let test_package_basics () =
  let p = Pkg.Package.make rel6 [ (0, 2); (3, 1); (0, 1) ] in
  Alcotest.(check (list (pair int int))) "entries merge" [ (0, 3); (3, 1) ]
    (Pkg.Package.entries p);
  checki "cardinality" 4 (Pkg.Package.cardinality p);
  checkb "not empty" false (Pkg.Package.is_empty p);
  checki "materialized rows" 4 (R.cardinality (Pkg.Package.materialize p));
  checki "tuple stream" 4 (Seq.length (Pkg.Package.tuples p));
  Alcotest.check_raises "bad id"
    (Invalid_argument "Package.make: row id 77 out of range") (fun () ->
      ignore (Pkg.Package.make rel6 [ (77, 1) ]));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Package.make: negative multiplicity") (fun () ->
      ignore (Pkg.Package.make rel6 [ (0, -1) ]))

let test_package_of_solution () =
  let p =
    Pkg.Package.of_solution rel6 ~candidates:[| 1; 3; 5 |] [| 0.; 2.0001; 1. |]
  in
  Alcotest.(check (list (pair int int))) "rounded entries" [ (3, 2); (5, 1) ]
    (Pkg.Package.entries p)

let test_package_objective_feasible () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 WHERE R.tag = 'x' SUCH THAT \
     COUNT(P.*) = 2 AND SUM(P.b) <= 45 MINIMIZE SUM(P.a)"
  in
  let spec = compile rel6 q in
  let good = Pkg.Package.make rel6 [ (0, 1); (2, 1) ] in
  checkb "feasible" true (Pkg.Package.feasible spec good);
  checkf "objective" 4. (Pkg.Package.objective spec good);
  Alcotest.(check (array (float 1e-9))) "constraint values" [| 2.; 40. |]
    (Pkg.Package.constraint_values spec good);
  checkb "base violation" false
    (Pkg.Package.feasible spec (Pkg.Package.make rel6 [ (0, 1); (1, 1) ]));
  checkb "count violation" false
    (Pkg.Package.feasible spec (Pkg.Package.make rel6 [ (0, 1) ]));
  checkb "repeat violation" false
    (Pkg.Package.feasible spec (Pkg.Package.make rel6 [ (0, 2) ]));
  checkb "sum violation" false
    (Pkg.Package.feasible spec (Pkg.Package.make rel6 [ (2, 1); (4, 1) ]))

(* ------------------------------------------------------------------ *)
(* Partition                                                          *)
(* ------------------------------------------------------------------ *)

let grid_rel n =
  (* n^2 points on an n x n grid *)
  R.of_rows schema
    (List.concat_map
       (fun i ->
         List.init n (fun j ->
             [| V.Float (float_of_int i); V.Float (float_of_int j); V.Str "g" |]))
       (List.init n Fun.id))

let test_partition_invariants () =
  let rel = grid_rel 10 in
  let part = Pkg.Partition.create ~tau:20 ~attrs:[ "a"; "b" ] rel in
  (match Pkg.Partition.check ~tau:20 part rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "several groups" true (Pkg.Partition.num_groups part >= 5);
  checkb "tau respected" true (Pkg.Partition.max_group_size part <= 20);
  checkb "reps schema" true
    (S.equal (R.schema part.Pkg.Partition.reps) (R.schema rel));
  checkb "rep string is null" true
    (V.is_null
       (Relalg.Tuple.field (R.schema rel)
          (R.row part.Pkg.Partition.reps 0)
          "tag"))

let test_partition_radius_absolute () =
  let rel = grid_rel 8 in
  let part =
    Pkg.Partition.create ~radius:(Pkg.Partition.Absolute 1.5) ~tau:64
      ~attrs:[ "a"; "b" ] rel
  in
  match Pkg.Partition.check ~radius:(Pkg.Partition.Absolute 1.5) part rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_partition_identical_points () =
  (* 100 identical tuples cannot be split spatially: chunking must
     still enforce tau *)
  let rel = mkrel (List.init 100 (fun _ -> (1., 1., "s"))) in
  let part = Pkg.Partition.create ~tau:7 ~attrs:[ "a"; "b" ] rel in
  (match Pkg.Partition.check ~tau:7 part rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "chunked" true (Pkg.Partition.num_groups part >= 15)

let test_partition_restrict_prefix () =
  let rel = grid_rel 10 in
  let part = Pkg.Partition.create ~tau:20 ~attrs:[ "a"; "b" ] rel in
  let sub = R.prefix rel 37 in
  let restricted = Pkg.Partition.restrict_prefix part sub 37 in
  (match Pkg.Partition.check restricted sub with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "fewer or equal groups" true
    (Pkg.Partition.num_groups restricted <= Pkg.Partition.num_groups part)

let test_partition_gamma () =
  checkf "gamma max" 0.5 (Pkg.Partition.gamma ~maximize:true ~epsilon:0.5);
  checkf "gamma min" (1. /. 3.)
    (Pkg.Partition.gamma ~maximize:false ~epsilon:0.5)

let test_partition_errors () =
  let rel = grid_rel 3 in
  checkb "bad tau" true
    (try
       ignore (Pkg.Partition.create ~tau:0 ~attrs:[ "a" ] rel);
       false
     with Invalid_argument _ -> true);
  checkb "no attrs" true
    (try
       ignore (Pkg.Partition.create ~tau:5 ~attrs:[] rel);
       false
     with Invalid_argument _ -> true);
  checkb "string attr" true
    (try
       ignore (Pkg.Partition.create ~tau:5 ~attrs:[ "tag" ] rel);
       false
     with Invalid_argument _ -> true)

let test_kmeans_partition () =
  let rel = grid_rel 10 in
  let part = Pkg.Kmeans.create ~seed:3 ~k:6 ~attrs:[ "a"; "b" ] rel in
  (match Pkg.Partition.check part rel with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  checkb "at most k groups" true (Pkg.Partition.num_groups part <= 6);
  let part2 = Pkg.Kmeans.create ~seed:3 ~k:6 ~attrs:[ "a"; "b" ] rel in
  checki "deterministic" (Pkg.Partition.num_groups part)
    (Pkg.Partition.num_groups part2);
  let chunked = Pkg.Kmeans.create ~seed:3 ~k:2 ~tau:9 ~attrs:[ "a"; "b" ] rel in
  checkb "tau respected" true (Pkg.Partition.max_group_size chunked <= 9)

(* ------------------------------------------------------------------ *)
(* Direct                                                             *)
(* ------------------------------------------------------------------ *)

let test_direct_small () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
     SUM(P.a) <= 8 MAXIMIZE SUM(P.b)"
  in
  let spec = compile rel6 q in
  let r = Pkg.Direct.run spec rel6 in
  (match r.Pkg.Eval.status with
  | Pkg.Eval.Optimal -> ()
  | s -> Alcotest.failf "expected optimal, got %a" Pkg.Eval.pp_status s);
  (* best pair: rows 5 (a=6, b=60) and 1 (a=2, b=20) *)
  checkf "objective" 80. (Option.get r.Pkg.Eval.objective);
  checkb "package feasible" true
    (Pkg.Package.feasible spec (Option.get r.Pkg.Eval.package))

let test_direct_infeasible () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 10"
  in
  let spec = compile rel6 q in
  checkb "infeasible" true
    ((Pkg.Direct.run spec rel6).Pkg.Eval.status = Pkg.Eval.Infeasible)

let test_direct_repeat () =
  (* with REPEAT 2 the best tuple can be taken three times *)
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 2 SUCH THAT COUNT(P.*) = 3 \
     MAXIMIZE SUM(P.b)"
  in
  let spec = compile rel6 q in
  let r = Pkg.Direct.run spec rel6 in
  checkf "objective" 180. (Option.get r.Pkg.Eval.objective);
  Alcotest.(check (list (pair int int))) "entries" [ (5, 3) ]
    (Pkg.Package.entries (Option.get r.Pkg.Eval.package))

(* ------------------------------------------------------------------ *)
(* Naive SQL vs Direct                                                *)
(* ------------------------------------------------------------------ *)

let test_naive_sql_matches_direct () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 3 AND \
     SUM(P.a) BETWEEN 6 AND 12 MINIMIZE SUM(P.b)"
  in
  let spec = compile rel6 q in
  let d = Pkg.Direct.run spec rel6 in
  let s = Pkg.Naive_sql.run spec rel6 ~cardinality:3 in
  checkf "same optimum"
    (Option.get d.Pkg.Eval.objective)
    (Option.get s.Pkg.Eval.objective)

let test_naive_sql_limit () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 3"
  in
  let spec = compile rel6 q in
  match
    (Pkg.Naive_sql.run ~max_combinations:5 spec rel6 ~cardinality:3)
      .Pkg.Eval.status
  with
  | Pkg.Eval.Failed _ -> ()
  | s -> Alcotest.failf "expected failure, got %a" Pkg.Eval.pp_status s

(* ------------------------------------------------------------------ *)
(* SketchRefine                                                       *)
(* ------------------------------------------------------------------ *)

let bigger_rel =
  let rng = Datagen.Prng.create 17 in
  R.of_rows schema
    (List.init 600 (fun _ ->
         [|
           V.Float (Datagen.Prng.uniform rng 0. 10.);
           V.Float (Datagen.Prng.uniform rng 0. 100.);
           V.Str (if Datagen.Prng.bool rng ~p:0.5 then "x" else "y");
         |]))

let test_sketch_refine_feasible_and_close () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 8 AND \
     SUM(P.a) <= 30 MAXIMIZE SUM(P.b)"
  in
  let spec = compile bigger_rel q in
  let part = Pkg.Partition.create ~tau:60 ~attrs:[ "a"; "b" ] bigger_rel in
  let d = Pkg.Direct.run spec bigger_rel in
  let s = Pkg.Sketch_refine.run spec bigger_rel part in
  let pd = Option.get d.Pkg.Eval.package in
  let ps = Option.get s.Pkg.Eval.package in
  checkb "direct feasible" true (Pkg.Package.feasible spec pd);
  checkb "sr feasible" true (Pkg.Package.feasible spec ps);
  let ratio =
    Option.get d.Pkg.Eval.objective /. Option.get s.Pkg.Eval.objective
  in
  checkb "ratio sane" true (ratio >= 0.999 && ratio < 3.)

let test_sketch_refine_base_predicate () =
  (* string base predicate: representatives are NULL on tag, so the
     filtering must happen via per-group candidate caps *)
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 WHERE R.tag = 'x' SUCH THAT \
     COUNT(P.*) = 5 MAXIMIZE SUM(P.b)"
  in
  let spec = compile bigger_rel q in
  let part = Pkg.Partition.create ~tau:60 ~attrs:[ "a"; "b" ] bigger_rel in
  let s = Pkg.Sketch_refine.run spec bigger_rel part in
  let ps = Option.get s.Pkg.Eval.package in
  checkb "respects base predicate" true (Pkg.Package.feasible spec ps)

let test_sketch_refine_infeasible_query () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
     SUM(P.a) >= 1000"
  in
  let spec = compile bigger_rel q in
  let part = Pkg.Partition.create ~tau:60 ~attrs:[ "a"; "b" ] bigger_rel in
  checkb "infeasible detected" true
    ((Pkg.Sketch_refine.run spec bigger_rel part).Pkg.Eval.status
    = Pkg.Eval.Infeasible)

let test_hybrid_sketch_rescues () =
  (* A razor-thin SUM window: centroid combinations cannot hit it, so
     the plain sketch is infeasible, but the hybrid sketch (original
     tuples for one group) can. *)
  let rows =
    [ (0.0, 1., "x"); (0.2, 2., "x"); (0.4, 3., "x"); (0.6, 4., "x");
      (100.0, 1., "y"); (100.2, 2., "y"); (100.4, 3., "y"); (100.6, 4., "y") ]
  in
  let rel = mkrel rows in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 1 AND \
     SUM(P.a) BETWEEN 100.55 AND 100.65 MAXIMIZE SUM(P.b)"
  in
  let spec = compile rel q in
  let part = Pkg.Partition.create ~tau:4 ~attrs:[ "a" ] rel in
  let no_hybrid =
    Pkg.Sketch_refine.run
      ~options:{ Pkg.Sketch_refine.default_options with fallbacks = [] }
      spec rel part
  in
  checkb "plain sketch infeasible" true
    (no_hybrid.Pkg.Eval.status = Pkg.Eval.Infeasible);
  let with_hybrid = Pkg.Sketch_refine.run spec rel part in
  checkb "hybrid rescues" true
    (match with_hybrid.Pkg.Eval.status with
    | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> true
    | _ -> false);
  checkb "hybrid package feasible" true
    (Pkg.Package.feasible spec (Option.get with_hybrid.Pkg.Eval.package))

let test_sketch_caps_zero_groups () =
  (* groups whose candidates are all filtered out must get cap 0 *)
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 WHERE R.tag = 'x' SUCH THAT \
     COUNT(P.*) = 1 MAXIMIZE SUM(P.b)"
  in
  let rel =
    mkrel [ (0., 1., "x"); (0.1, 2., "x"); (100., 99., "y"); (100.1, 98., "y") ]
  in
  let spec = compile rel q in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] rel in
  let ctx = Pkg.Sketch.make_ctx spec rel part in
  checkb "some cap is zero" true
    (Array.exists (fun c -> c = 0.) ctx.Pkg.Sketch.caps);
  let s = Pkg.Sketch_refine.run spec rel part in
  checkf "objective avoids filtered groups" 2.
    (Option.get s.Pkg.Eval.objective)

let test_direct_vacuous_objective () =
  (* no objective clause: any feasible package is acceptable *)
  let q = "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 3" in
  let spec = compile rel6 q in
  let r = Pkg.Direct.run spec rel6 in
  let p = Option.get r.Pkg.Eval.package in
  checkb "feasible" true (Pkg.Package.feasible spec p);
  checki "cardinality" 3 (Pkg.Package.cardinality p);
  checkf "objective is zero" 0. (Option.get r.Pkg.Eval.objective)

let test_where_eliminates_everything () =
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 WHERE R.a > 1000 SUCH THAT \
     COUNT(P.*) = 1"
  in
  let spec = compile rel6 q in
  checkb "direct infeasible" true
    ((Pkg.Direct.run spec rel6).Pkg.Eval.status = Pkg.Eval.Infeasible);
  let part = Pkg.Partition.create ~tau:3 ~attrs:[ "a" ] rel6 in
  checkb "sketchrefine infeasible" true
    ((Pkg.Sketch_refine.run spec rel6 part).Pkg.Eval.status
    = Pkg.Eval.Infeasible)

let test_package_pp () =
  let p = Pkg.Package.make rel6 [ (0, 1); (2, 3) ] in
  Alcotest.(check string) "pp" "{0, 2x3}" (Format.asprintf "%a" Pkg.Package.pp p)

let test_sketch_caps_repeat () =
  (* REPEAT 1 doubles the per-group sketch caps *)
  let rel = mkrel [ (0., 1., "x"); (0.1, 2., "x"); (10., 3., "x"); (10.1, 4., "x") ] in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 1 SUCH THAT COUNT(P.*) = 3 \
     MAXIMIZE SUM(P.b)"
  in
  let spec = compile rel q in
  let part = Pkg.Partition.create ~tau:2 ~attrs:[ "a" ] rel in
  let ctx = Pkg.Sketch.make_ctx spec rel part in
  Array.iter (fun c -> checkf "cap = |G|*(K+1)" 4. c) ctx.Pkg.Sketch.caps;
  (* and the final package may repeat a tuple *)
  let r = Pkg.Sketch_refine.run spec rel part in
  checkf "repeated best tuple" 11. (Option.get r.Pkg.Eval.objective)

let test_refine_totals_helpers () =
  let rel = mkrel [ (1., 10., "x"); (2., 20., "x"); (3., 30., "x") ] in
  let q =
    "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 2 AND \
     SUM(P.a) BETWEEN 3 AND 5 MINIMIZE SUM(P.b)"
  in
  let spec = compile rel q in
  let part = Pkg.Partition.create ~tau:3 ~attrs:[ "a" ] rel in
  let ctx = Pkg.Sketch.make_ctx spec rel part in
  let snapshot =
    {
      Pkg.Refine.srep_counts = Array.make (Pkg.Partition.num_groups part) 0.;
      srefined =
        Array.init (Pkg.Partition.num_groups part) (fun g ->
            if g = 0 then Some [ (0, 1); (2, 1) ] else None);
    }
  in
  let totals = Pkg.Refine.totals ctx snapshot in
  checkf "count total" 2. totals.(0);
  checkf "sum total" 4. totals.(1);
  checkb "within bounds" true (Pkg.Refine.within_bounds ctx totals)

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let approx_bound_prop =
  (* Theorem 3: with a radius-limited partitioning, SketchRefine's
     result is within (1-eps)^6 of Direct's for maximization. *)
  let gen = QCheck.Gen.(int_range 0 10_000) in
  QCheck.Test.make ~count:25 ~name:"Theorem 3: (1-eps)^6 bound (maximize)"
    (QCheck.make gen)
    (fun seed ->
      let rng = Datagen.Prng.create (seed + 1) in
      let rel =
        R.of_rows schema
          (List.init 200 (fun _ ->
               [|
                 V.Float (Datagen.Prng.uniform rng 10. 20.);
                 V.Float (Datagen.Prng.uniform rng 10. 20.);
                 V.Str "t";
               |]))
      in
      let q =
        "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 5 \
         AND SUM(P.a) <= 80 MAXIMIZE SUM(P.b)"
      in
      let spec = compile rel q in
      let epsilon = 0.25 in
      let part =
        Pkg.Partition.create
          ~radius:(Pkg.Partition.Theorem { epsilon; maximize = true })
          ~tau:40 ~attrs:[ "a"; "b" ] rel
      in
      let d = Pkg.Direct.run spec rel in
      let s = Pkg.Sketch_refine.run spec rel part in
      match d.Pkg.Eval.objective, s.Pkg.Eval.objective with
      | Some od, Some os ->
        let bound = ((1. -. epsilon) ** 6.) *. od in
        os >= bound -. 1e-6
        && Pkg.Package.feasible spec (Option.get s.Pkg.Eval.package)
      | Some _, None -> false
      | None, _ -> QCheck.assume_fail ())

let sr_always_feasible_prop =
  QCheck.Test.make ~count:25 ~name:"SketchRefine results are always feasible"
    (QCheck.make QCheck.Gen.(pair (int_range 0 1000) (int_range 3 10)))
    (fun (seed, count) ->
      let rng = Datagen.Prng.create (seed + 7) in
      let rel =
        R.of_rows schema
          (List.init 300 (fun _ ->
               [|
                 V.Float (Datagen.Prng.uniform rng 0. 50.);
                 V.Float (Datagen.Prng.uniform rng (-10.) 10.);
                 V.Str "t";
               |]))
      in
      let q =
        Printf.sprintf
          "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = \
           %d AND SUM(P.a) <= %d MINIMIZE SUM(P.b)"
          count (count * 30)
      in
      let spec = compile rel q in
      let part = Pkg.Partition.create ~tau:50 ~attrs:[ "a"; "b" ] rel in
      match (Pkg.Sketch_refine.run spec rel part).Pkg.Eval.package with
      | Some p -> Pkg.Package.feasible spec p
      | None -> true)

let direct_matches_enumeration_prop =
  (* exercised over three query templates: SUM window, AVG constraint,
     and conditional counts — all features of the ILP translation *)
  let templates =
    [|
      "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 4 \
       AND SUM(P.a) BETWEEN 10 AND 25 MAXIMIZE SUM(P.b)";
      "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 4 \
       AND AVG(P.a) <= 6 MINIMIZE SUM(P.b)";
      "SELECT PACKAGE(R) AS P FROM Rel R REPEAT 0 SUCH THAT COUNT(P.*) = 4 \
       AND (SELECT COUNT(*) FROM P WHERE a > 5) >= 2 MAXIMIZE SUM(P.b)";
    |]
  in
  QCheck.Test.make ~count:60 ~name:"Direct matches exhaustive enumeration"
    (QCheck.make QCheck.Gen.(pair (int_range 0 5000) (int_range 0 2)))
    (fun (seed, which) ->
      let rng = Datagen.Prng.create (seed + 3) in
      let rel =
        R.of_rows schema
          (List.init 12 (fun _ ->
               [|
                 V.Float (float_of_int (Datagen.Prng.int rng 10));
                 V.Float (float_of_int (Datagen.Prng.int rng 10));
                 V.Str "t";
               |]))
      in
      let spec = compile rel templates.(which) in
      let d = Pkg.Direct.run spec rel in
      let e = Pkg.Naive_sql.run spec rel ~cardinality:4 in
      match d.Pkg.Eval.objective, e.Pkg.Eval.objective with
      | Some od, Some oe -> Float.abs (od -. oe) < 1e-6
      | None, None -> true
      | _ -> false)

let test_partition_save_load () =
  let rel = grid_rel 9 in
  let part = Pkg.Partition.create ~tau:15 ~attrs:[ "a"; "b" ] rel in
  let path = Filename.temp_file "pkgq" ".part" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pkg.Partition.save path part;
      let loaded = Pkg.Partition.load path rel in
      checki "same group count" (Pkg.Partition.num_groups part)
        (Pkg.Partition.num_groups loaded);
      (match Pkg.Partition.check ~tau:15 loaded rel with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      (* identical assignment *)
      checkb "same gid map" true
        (loaded.Pkg.Partition.gid_of_row = part.Pkg.Partition.gid_of_row);
      (* loading against a smaller relation must fail cleanly *)
      checkb "bad ids rejected" true
        (try
           ignore (Pkg.Partition.load path (R.prefix rel 5));
           false
         with Invalid_argument _ -> true))

(* Partition invariants hold for random datasets and thresholds. *)
let partition_invariants_prop =
  QCheck.Test.make ~count:50 ~name:"partition invariants on random data"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 400) (int_range 1 50) (int_range 0 999)))
    (fun (n, tau, seed) ->
      let rng = Datagen.Prng.create (seed + 101) in
      let rel =
        R.of_rows schema
          (List.init n (fun _ ->
               [|
                 V.Float (Datagen.Prng.uniform rng (-100.) 100.);
                 V.Float (Datagen.Prng.uniform rng 0. 1.);
                 V.Str "t";
               |]))
      in
      let part = Pkg.Partition.create ~tau ~attrs:[ "a"; "b" ] rel in
      Pkg.Partition.check ~tau part rel = Ok ())

(* The dynamic tree's cut also always satisfies the invariants. *)
let quad_tree_cut_prop =
  QCheck.Test.make ~count:50 ~name:"quad-tree cuts are valid partitions"
    (QCheck.make
       QCheck.Gen.(triple (int_range 1 400) (int_range 1 50) (int_range 0 999)))
    (fun (n, leaf, seed) ->
      let rng = Datagen.Prng.create (seed + 77) in
      let rel =
        R.of_rows schema
          (List.init n (fun _ ->
               [|
                 V.Float (Datagen.Prng.uniform rng (-10.) 10.);
                 V.Float (Datagen.Prng.uniform rng (-10.) 10.);
                 V.Str "t";
               |]))
      in
      let tree = Pkg.Quad_tree.build ~leaf_size:leaf ~attrs:[ "a"; "b" ] rel in
      let part =
        Pkg.Quad_tree.cut ~radius:(Pkg.Partition.Absolute 5.) tree rel
      in
      Pkg.Partition.check part rel = Ok ())

let () =
  Alcotest.run "pkg"
    [
      ( "package",
        [
          Alcotest.test_case "basics" `Quick test_package_basics;
          Alcotest.test_case "of_solution" `Quick test_package_of_solution;
          Alcotest.test_case "objective/feasible" `Quick
            test_package_objective_feasible;
        ] );
      ( "partition",
        [
          Alcotest.test_case "invariants" `Quick test_partition_invariants;
          Alcotest.test_case "absolute radius" `Quick
            test_partition_radius_absolute;
          Alcotest.test_case "identical points" `Quick
            test_partition_identical_points;
          Alcotest.test_case "restrict_prefix" `Quick
            test_partition_restrict_prefix;
          Alcotest.test_case "gamma" `Quick test_partition_gamma;
          Alcotest.test_case "errors" `Quick test_partition_errors;
          Alcotest.test_case "kmeans" `Quick test_kmeans_partition;
          Alcotest.test_case "save/load" `Quick test_partition_save_load;
        ] );
      ( "direct",
        [
          Alcotest.test_case "small optimum" `Quick test_direct_small;
          Alcotest.test_case "infeasible" `Quick test_direct_infeasible;
          Alcotest.test_case "repetition" `Quick test_direct_repeat;
          Alcotest.test_case "vacuous objective" `Quick
            test_direct_vacuous_objective;
          Alcotest.test_case "empty candidates" `Quick
            test_where_eliminates_everything;
          Alcotest.test_case "package pp" `Quick test_package_pp;
        ] );
      ( "naive_sql",
        [
          Alcotest.test_case "matches direct" `Quick
            test_naive_sql_matches_direct;
          Alcotest.test_case "combination limit" `Quick test_naive_sql_limit;
        ] );
      ( "sketch_refine",
        [
          Alcotest.test_case "feasible and close" `Quick
            test_sketch_refine_feasible_and_close;
          Alcotest.test_case "base predicate" `Quick
            test_sketch_refine_base_predicate;
          Alcotest.test_case "infeasible query" `Quick
            test_sketch_refine_infeasible_query;
          Alcotest.test_case "hybrid sketch rescues" `Quick
            test_hybrid_sketch_rescues;
          Alcotest.test_case "zero-cap groups" `Quick
            test_sketch_caps_zero_groups;
          Alcotest.test_case "repeat caps" `Quick test_sketch_caps_repeat;
          Alcotest.test_case "refine totals helpers" `Quick
            test_refine_totals_helpers;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest approx_bound_prop;
          QCheck_alcotest.to_alcotest sr_always_feasible_prop;
          QCheck_alcotest.to_alcotest direct_matches_enumeration_prop;
          QCheck_alcotest.to_alcotest partition_invariants_prop;
          QCheck_alcotest.to_alcotest quad_tree_cut_prop;
        ] );
    ]
