(* Tests for the PaQL language pipeline: lexer, parser, pretty-printer,
   analyzer, linear-form normalization and ILP translation. *)

module L = Paql.Lexer
module A = Paql.Ast
module E = Relalg.Expr
module V = Relalg.Value

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)
let checks = Alcotest.check Alcotest.string

let paper_query =
  {|SELECT PACKAGE(R) AS P
    FROM Recipes R REPEAT 0
    WHERE R.gluten = 'free'
    SUCH THAT COUNT(P.*) = 3 AND
              SUM(P.kcal) BETWEEN 2.0 AND 2.5
    MINIMIZE SUM(P.saturated_fat)|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let toks s = Array.to_list (Array.map (fun t -> t.L.tok) (L.tokenize s))

let test_lexer_basics () =
  checkb "keywords case-insensitive" true
    (toks "select PaCkAgE" = [ L.KW "SELECT"; L.KW "PACKAGE"; L.EOF ]);
  checkb "idents keep case" true
    (toks "Recipes" = [ L.IDENT "Recipes"; L.EOF ]);
  checkb "numbers" true (toks "2.5 1e3 7" =
    [ L.NUMBER 2.5; L.NUMBER 1000.; L.NUMBER 7.; L.EOF ]);
  checkb "operators" true
    (toks "<= >= <> < > = + - * / ( ) , ."
    = [ L.LE; L.GE; L.NEQ; L.LT; L.GT; L.EQ; L.PLUS; L.MINUS; L.STAR;
        L.SLASH; L.LPAREN; L.RPAREN; L.COMMA; L.DOT; L.EOF ]);
  checkb "string literal" true (toks "'free'" = [ L.STRING "free"; L.EOF ]);
  checkb "string with escaped quote" true
    (toks "'it''s'" = [ L.STRING "it's"; L.EOF ]);
  checkb "comment skipped" true
    (toks "1 -- a comment\n2" = [ L.NUMBER 1.; L.NUMBER 2.; L.EOF ])

let test_lexer_errors () =
  checkb "unterminated string" true
    (match L.tokenize "'oops" with
    | exception L.Lex_error _ -> true
    | _ -> false);
  checkb "bad char" true
    (match L.tokenize "a # b" with
    | exception L.Lex_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parser                                                             *)
(* ------------------------------------------------------------------ *)

let parse s =
  match Paql.Parser.parse s with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_parse_paper_query () =
  let q = parse paper_query in
  checks "package name" "P" q.A.package_name;
  checks "rel name" "Recipes" q.A.rel_name;
  checks "alias" "R" q.A.rel_alias;
  checkb "repeat 0" true (q.A.repeat = Some 0);
  checkb "where present" true
    (q.A.where = Some (E.Cmp (E.Eq, E.Attr "gluten", E.Const (V.Str "free"))));
  (match q.A.such_that with
  | Some gp ->
    checki "two conjuncts" 2 (List.length (A.conjuncts gp));
    (match A.conjuncts gp with
    | [ A.Gcmp (A.Eq, A.Agg (A.Count_star, None), A.Num 3.); A.Gbetween _ ] ->
      ()
    | _ -> Alcotest.fail "unexpected such-that shape")
  | None -> Alcotest.fail "missing such that");
  match q.A.objective with
  | Some (A.Minimize (A.Agg (A.Sum "saturated_fat", None))) -> ()
  | _ -> Alcotest.fail "unexpected objective"

let test_parse_defaults () =
  let q = parse "SELECT PACKAGE(R) FROM Rel R" in
  checks "default package name" "P" q.A.package_name;
  checkb "no repeat" true (q.A.repeat = None);
  checkb "no where" true (q.A.where = None);
  checkb "no such that" true (q.A.such_that = None);
  checkb "no objective" true (q.A.objective = None);
  (* alias defaults to the relation name *)
  let q2 = parse "SELECT PACKAGE(Rel) FROM Rel" in
  checks "alias = rel" "Rel" q2.A.rel_alias

let test_parse_subquery () =
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT (SELECT COUNT(*) FROM P \
       WHERE carbs > 0) >= (SELECT SUM(protein) FROM P WHERE protein <= 5)"
  in
  match q.A.such_that with
  | Some (A.Gcmp (A.Ge, A.Agg (A.Count_star, Some _), A.Agg (A.Sum "protein", Some _)))
    -> ()
  | _ -> Alcotest.fail "unexpected subquery parse"

let test_parse_arith_and_precedence () =
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT SUM(P.a) + 2 * COUNT(P.*) \
       <= 10 MAXIMIZE 3 * SUM(P.b) - SUM(P.c) / 2"
  in
  (match q.A.such_that with
  | Some
      (A.Gcmp
        (A.Le, A.Add (A.Agg (A.Sum "a", None),
                      A.Mult (A.Num 2., A.Agg (A.Count_star, None))),
         A.Num 10.)) ->
    ()
  | _ -> Alcotest.fail "precedence: * binds tighter than +");
  match q.A.objective with
  | Some (A.Maximize (A.Subtract (A.Mult (A.Num 3., _), A.Divide (_, A.Num 2.))))
    -> ()
  | _ -> Alcotest.fail "objective arithmetic shape"

let test_parse_where_logic () =
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R WHERE NOT (a = 1 OR b < 2) AND c IS \
       NOT NULL"
  in
  match q.A.where with
  | Some (E.And (E.Not (E.Or _), E.IsNotNull (E.Attr "c"))) -> ()
  | _ -> Alcotest.fail "where logic shape"

let parse_err s =
  match Paql.Parser.parse s with
  | Ok _ -> Alcotest.failf "expected parse error for %s" s
  | Error _ -> ()

let test_parse_errors () =
  parse_err "SELECT PACKAGE(R) FROM Rel X";       (* alias mismatch *)
  parse_err "SELECT PACKAGE(R) FROM Rel R REPEAT -1";
  parse_err "SELECT PACKAGE(R) FROM Rel R REPEAT 1.5";
  parse_err "SELECT PACKAGE(R) FROM Rel R SUCH COUNT(P.*) = 1"; (* missing THAT *)
  parse_err "SELECT PACKAGE(R) FROM Rel R SUCH THAT COUNT(Q.*) = 1"; (* bad qualifier *)
  parse_err "SELECT PACKAGE(R) FROM Rel R WHERE Q.a = 1"; (* bad qualifier *)
  parse_err
    "SELECT PACKAGE(R) FROM Rel R SUCH THAT (SELECT COUNT(*) FROM Q) = 1";
  parse_err "SELECT PACKAGE(R) FROM Rel R SUCH THAT SUM() <= 1";
  parse_err "SELECT PACKAGE(R) FROM Rel R trailing";
  parse_err "SELEC PACKAGE(R) FROM Rel R"

(* ------------------------------------------------------------------ *)
(* Pretty-printer round-trip                                          *)
(* ------------------------------------------------------------------ *)

let test_pretty_roundtrip () =
  let cases =
    [
      paper_query;
      "SELECT PACKAGE(R) FROM Rel R";
      "SELECT PACKAGE(R) AS K FROM Rel R REPEAT 3 SUCH THAT AVG(K.x) <= 5 \
       MAXIMIZE SUM(K.y)";
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT (SELECT COUNT(*) FROM P \
       WHERE a > 1 AND b IS NULL) >= 2 AND SUM(P.c) BETWEEN 1 AND 2";
      "SELECT PACKAGE(R) AS P FROM Rel R WHERE a BETWEEN 1 AND 2 OR NOT b = \
       'x' MINIMIZE COUNT(P.*) + 2 * SUM(P.z)";
    ]
  in
  List.iter
    (fun text ->
      let q1 = parse text in
      let printed = Paql.Pretty.to_string q1 in
      let q2 = parse printed in
      checkb ("round-trip: " ^ text) true (q1 = q2))
    cases

(* ------------------------------------------------------------------ *)
(* Analyze                                                            *)
(* ------------------------------------------------------------------ *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "kcal"; ty = V.TFloat };
      { Relalg.Schema.name = "saturated_fat"; ty = V.TFloat };
      { Relalg.Schema.name = "gluten"; ty = V.TStr };
      { Relalg.Schema.name = "servings"; ty = V.TInt };
    ]

let analyze_ok s =
  match Paql.Analyze.check schema (parse s) with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "expected ok, got: %s" (String.concat "; " errs)

let analyze_err substring s =
  match Paql.Analyze.check schema (parse s) with
  | Ok () -> Alcotest.failf "expected analysis error for %s" s
  | Error errs ->
    let combined = String.concat "; " errs in
    checkb
      (Printf.sprintf "error mentions %S (got %S)" substring combined)
      true
      (let n = String.length combined and m = String.length substring in
       let rec go i =
         i + m <= n && (String.sub combined i m = substring || go (i + 1))
       in
       go 0)

let test_analyze () =
  analyze_ok paper_query;
  analyze_ok
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT AVG(P.kcal) <= 2 \
     MINIMIZE SUM(P.servings)";
  analyze_err "unknown attribute"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.nope) <= 1";
  analyze_err "not numeric"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.gluten) <= 1";
  analyze_err "WHERE clause"
    "SELECT PACKAGE(R) AS P FROM Recipes R WHERE missing = 1";
  analyze_err "MIN/MAX"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT MIN(P.kcal) <= 1";
  analyze_err "product of two aggregates"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.kcal) * \
     COUNT(P.*) <= 1";
  analyze_err "division by an aggregate"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT 1 / SUM(P.kcal) <= 1";
  analyze_err "AVG"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT AVG(P.kcal) + \
     SUM(P.kcal) <= 1";
  analyze_err "AVG"
    "SELECT PACKAGE(R) AS P FROM Recipes R MINIMIZE AVG(P.kcal)";
  analyze_err "BETWEEN bounds"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT SUM(P.kcal) BETWEEN \
     COUNT(P.*) AND 5";
  analyze_err "subquery filter"
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT (SELECT COUNT(*) FROM \
     P WHERE bogus > 1) <= 1"

(* ------------------------------------------------------------------ *)
(* Linform normalization                                              *)
(* ------------------------------------------------------------------ *)

let gexpr_of s =
  (* parse a full query to extract its objective expression *)
  let q = parse ("SELECT PACKAGE(R) AS P FROM Rel R MAXIMIZE " ^ s) in
  match q.A.objective with Some (A.Maximize e) -> e | _ -> assert false

let test_linform_normalization () =
  let f =
    Result.get_ok (Paql.Linform.of_gexpr (gexpr_of "2 * SUM(P.a) - 3 + COUNT(P.*) / 2"))
  in
  checkf "const" (-3.) f.Paql.Linform.const;
  checki "terms" 2 (List.length f.Paql.Linform.terms);
  (match f.Paql.Linform.terms with
  | [ t1; t2 ] ->
    checkf "sum coeff" 2. t1.Paql.Linform.coeff;
    checkf "count coeff" 0.5 t2.Paql.Linform.coeff
  | _ -> Alcotest.fail "term shape");
  (* nested negation and parentheses *)
  let g = Result.get_ok (Paql.Linform.of_gexpr (gexpr_of "-(SUM(P.a) - 1)")) in
  checkf "negated const" 1. g.Paql.Linform.const;
  (match g.Paql.Linform.terms with
  | [ t ] -> checkf "negated coeff" (-1.) t.Paql.Linform.coeff
  | _ -> Alcotest.fail "negation shape")

let constraints_of s =
  let q = parse ("SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT " ^ s) in
  match q.A.such_that with
  | Some gp -> Result.get_ok (Paql.Linform.of_gpred gp)
  | None -> assert false

let test_linform_constraints () =
  (* move-everything-left normalization: [SUM(a) + 1 <= COUNT - 2]
     becomes [SUM(a) - COUNT <= -3] *)
  (match constraints_of "SUM(P.a) + 1 <= COUNT(P.*) - 2" with
  | [ c ] ->
    checkf "hi" (-3.) c.Paql.Linform.hi;
    checkb "lo" true (c.Paql.Linform.lo = neg_infinity)
  | _ -> Alcotest.fail "single constraint expected");
  (* equality *)
  (match constraints_of "COUNT(P.*) = 3" with
  | [ c ] ->
    checkf "lo=hi" 3. c.Paql.Linform.lo;
    checkf "hi" 3. c.Paql.Linform.hi
  | _ -> Alcotest.fail "equality shape");
  (* between *)
  (match constraints_of "SUM(P.a) + 1 BETWEEN 2 AND 5" with
  | [ c ] ->
    checkf "lo" 1. c.Paql.Linform.lo;
    checkf "hi" 4. c.Paql.Linform.hi
  | _ -> Alcotest.fail "between shape");
  (* strict comparisons treated as non-strict *)
  (match constraints_of "COUNT(P.*) < 4" with
  | [ c ] -> checkf "strict hi" 4. c.Paql.Linform.hi
  | _ -> Alcotest.fail "strict shape");
  (* conjunctions flatten in order *)
  checki "three conjuncts" 3
    (List.length (constraints_of "COUNT(P.*) = 1 AND SUM(P.a) <= 2 AND SUM(P.b) >= 3"))

let test_linform_avg_rewrite () =
  (* AVG(a) <= v rewrites to SUM(a) - v*COUNT <= 0 *)
  match constraints_of "AVG(P.a) <= 5" with
  | [ c ] ->
    checkf "hi is zero" 0. c.Paql.Linform.hi;
    (match c.Paql.Linform.cterms with
    | [ t1; t2 ] ->
      checkb "sum term" true (t1.Paql.Linform.kind = Paql.Linform.Sum "a");
      checkf "sum coeff" 1. t1.Paql.Linform.coeff;
      checkb "count term" true (t2.Paql.Linform.kind = Paql.Linform.Count_star);
      checkf "count coeff" (-5.) t2.Paql.Linform.coeff
    | _ -> Alcotest.fail "avg rewrite terms")
  | _ -> Alcotest.fail "avg rewrite shape"

let test_linform_avg_between () =
  (* BETWEEN with AVG desugars into two rewritten inequalities *)
  match constraints_of "AVG(P.a) BETWEEN 2 AND 4" with
  | [ c1; c2 ] ->
    checkb "first is >=" true (c1.Paql.Linform.hi = infinity);
    checkb "second is <=" true (c2.Paql.Linform.lo = neg_infinity);
    checkf "both homogeneous lo" 0. c1.Paql.Linform.lo;
    checkf "both homogeneous hi" 0. c2.Paql.Linform.hi
  | _ -> Alcotest.fail "avg between shape"

(* ------------------------------------------------------------------ *)
(* Translate: PaQL -> ILP                                             *)
(* ------------------------------------------------------------------ *)

let recipes =
  Relalg.Relation.of_rows schema
    [
      [| V.Float 0.5; V.Float 2.0; V.Str "free"; V.Int 1 |];
      [| V.Float 1.0; V.Float 4.0; V.Str "full"; V.Int 2 |];
      [| V.Float 0.8; V.Float 1.0; V.Str "free"; V.Int 3 |];
      [| V.Float 0.2; V.Float 0.5; V.Str "free"; V.Int 1 |];
    ]

let compile s = Paql.Translate.compile_exn schema (parse s)

let test_translate_base_predicate () =
  let spec = compile paper_query in
  (* rule 2: tuples failing the base predicate get no variable *)
  Alcotest.(check (array int)) "candidates" [| 0; 2; 3 |]
    (Paql.Translate.base_candidates spec recipes)

let test_translate_repetition () =
  let spec = compile "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2" in
  checkf "REPEAT 2 -> cap 3" 3. spec.Paql.Translate.max_count;
  let unlimited = compile "SELECT PACKAGE(R) AS P FROM Recipes R" in
  checkb "no repeat -> unbounded" true
    (unlimited.Paql.Translate.max_count = infinity);
  let p =
    Paql.Translate.to_problem spec recipes ~candidates:[| 0; 1 |]
  in
  checkb "vars integer with hi=3" true
    (Array.for_all
       (fun v -> v.Lp.Problem.integer && v.Lp.Problem.hi = 3.)
       p.Lp.Problem.vars)

let test_translate_rows () =
  let spec = compile paper_query in
  let candidates = Paql.Translate.base_candidates spec recipes in
  let p = Paql.Translate.to_problem spec recipes ~candidates in
  checki "vars" 3 (Lp.Problem.nvars p);
  checki "rows" 2 (Lp.Problem.nrows p);
  (* cardinality row: all-ones coefficients, [3,3] *)
  let r0 = p.Lp.Problem.rows.(0) in
  checkf "count lo" 3. r0.Lp.Problem.rlo;
  checkb "count coeffs" true
    (List.for_all (fun (_, c) -> c = 1.) r0.Lp.Problem.coeffs);
  (* sum row: kcal coefficients of the surviving candidates *)
  let r1 = p.Lp.Problem.rows.(1) in
  checkb "sum coeffs" true
    (r1.Lp.Problem.coeffs = [ (0, 0.5); (1, 0.8); (2, 0.2) ]);
  checkf "sum lo" 2.0 r1.Lp.Problem.rlo;
  checkf "sum hi" 2.5 r1.Lp.Problem.rhi;
  (* minimize objective: saturated fat coefficients *)
  checkb "sense" true (p.Lp.Problem.sense = Lp.Problem.Minimize);
  checkf "obj coeff" 2.0 p.Lp.Problem.vars.(0).Lp.Problem.obj

let test_translate_conditional_count () =
  let spec =
    compile
      "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT (SELECT COUNT(*) FROM \
       P WHERE kcal > 0.6) >= (SELECT COUNT(*) FROM P WHERE kcal <= 0.6)"
  in
  let p =
    Paql.Translate.to_problem spec recipes ~candidates:[| 0; 1; 2; 3 |]
  in
  (* indicator difference: +1 for kcal > 0.6, -1 otherwise *)
  let r = p.Lp.Problem.rows.(0) in
  checkb "indicator coeffs" true
    (r.Lp.Problem.coeffs = [ (0, -1.); (1, 1.); (2, 1.); (3, -1.) ]);
  checkf "lo" 0. r.Lp.Problem.rlo

let test_translate_offsets_and_caps () =
  let spec = compile paper_query in
  let p =
    Paql.Translate.to_problem ~offsets:[| 1.; 0.7 |]
      ~var_hi:(fun k -> float_of_int (k + 1))
      spec recipes ~candidates:[| 0; 2 |]
  in
  (* offsets shift the refine-query bounds by the partial package *)
  checkf "count lo shifted" 2. p.Lp.Problem.rows.(0).Lp.Problem.rlo;
  checkf "sum lo shifted" 1.3 p.Lp.Problem.rows.(1).Lp.Problem.rlo;
  checkf "sum hi shifted" 1.8 p.Lp.Problem.rows.(1).Lp.Problem.rhi;
  checkf "per-var cap" 2. p.Lp.Problem.vars.(1).Lp.Problem.hi

let test_translate_vacuous_objective () =
  let spec = compile "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(P.*) = 1" in
  checkb "no objective" true (spec.Paql.Translate.objective = None);
  checkb "defaults to minimize" true
    (Paql.Translate.objective_sense spec = Lp.Problem.Minimize);
  let p = Paql.Translate.to_problem spec recipes ~candidates:[| 0 |] in
  checkf "zero cost" 0. p.Lp.Problem.vars.(0).Lp.Problem.obj

let test_translate_objective_constant () =
  let spec =
    compile "SELECT PACKAGE(R) AS P FROM Recipes R MAXIMIZE SUM(P.kcal) + 10"
  in
  match spec.Paql.Translate.objective with
  | Some (Lp.Problem.Maximize, _, const) -> checkf "constant" 10. const
  | _ -> Alcotest.fail "objective shape"

(* Lexer robustness: random printable inputs either tokenize or raise
   Lex_error — never crash or loop. *)
let lexer_total_prop =
  QCheck.Test.make ~count:500 ~name:"lexer total on printable input"
    QCheck.(string_gen_of_size (Gen.int_range 0 40) Gen.printable)
    (fun s ->
      match L.tokenize s with
      | toks -> Array.length toks >= 1
      | exception L.Lex_error _ -> true)

(* Parser robustness: random keyword soup either parses or reports an
   error — never crashes. *)
let parser_total_prop =
  let word =
    QCheck.Gen.oneofl
      [ "SELECT"; "PACKAGE"; "FROM"; "WHERE"; "SUCH"; "THAT"; "AND";
        "MINIMIZE"; "SUM"; "COUNT"; "("; ")"; "*"; "="; "1"; "R"; "P";
        "x"; "BETWEEN"; "REPEAT"; "." ]
  in
  QCheck.Test.make ~count:500 ~name:"parser total on keyword soup"
    (QCheck.make
       QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 25) word)))
    (fun s ->
      match Paql.Parser.parse s with Ok _ | Error _ -> true)

let test_parse_more_shapes () =
  (* deep parentheses in global expressions *)
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT ((SUM(P.a))) + ((2)) <= \
       (((10)))"
  in
  (match q.A.such_that with
  | Some (A.Gcmp (A.Le, A.Add (A.Agg (A.Sum "a", None), A.Num 2.), A.Num 10.))
    -> ()
  | _ -> Alcotest.fail "paren flattening");
  (* BETWEEN inside a subquery filter *)
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT (SELECT COUNT(*) FROM P \
       WHERE a BETWEEN 1 AND 2) >= 1"
  in
  (match q.A.such_that with
  | Some (A.Gcmp (A.Ge, A.Agg (A.Count_star, Some (E.Between _)), A.Num 1.))
    -> ()
  | _ -> Alcotest.fail "between in filter");
  (* COUNT(attr) form and unqualified attrs in aggregates *)
  let q =
    parse "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT COUNT(P.a) >= 1 AND \
           SUM(b) <= 2"
  in
  checki "two conjuncts" 2
    (List.length (A.conjuncts (Option.get q.A.such_that)));
  (* chained boolean precedence in WHERE: OR binds loosest *)
  let q = parse "SELECT PACKAGE(R) AS P FROM Rel R WHERE a = 1 AND b = 2 OR c = 3" in
  (match q.A.where with
  | Some (E.Or (E.And _, E.Cmp (E.Eq, E.Attr "c", _))) -> ()
  | _ -> Alcotest.fail "AND binds tighter than OR")

let test_repeat_variants () =
  checkb "repeat 5" true ((parse "SELECT PACKAGE(R) FROM Rel R REPEAT 5").A.repeat = Some 5);
  parse_err "SELECT PACKAGE(R) FROM Rel R REPEAT";
  parse_err "SELECT PACKAGE(R) FROM Rel R REPEAT x"

let test_analyze_count_on_string () =
  (* COUNT over a non-numeric attribute is legal SQL and legal PaQL *)
  analyze_ok
    "SELECT PACKAGE(R) AS P FROM Recipes R SUCH THAT COUNT(P.gluten) >= 1"

let test_count_attr_null_coefficient () =
  (* COUNT(attr) contributes 0 for NULL attributes, 1 otherwise *)
  let schema2 =
    Relalg.Schema.make
      [ { Relalg.Schema.name = "v"; ty = V.TFloat } ]
  in
  let rel =
    Relalg.Relation.of_rows schema2 [ [| V.Float 1. |]; [| V.Null |] ]
  in
  let spec =
    Paql.Translate.compile_exn schema2
      (parse "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT COUNT(P.v) >= 1")
  in
  let c = List.hd spec.Paql.Translate.constraints in
  checkf "non-null coeff" 1.
    (c.Paql.Translate.coeff (Relalg.Relation.row rel 0));
  checkf "null coeff" 0.
    (c.Paql.Translate.coeff (Relalg.Relation.row rel 1))

let test_package_qualified_filter () =
  (* P.attr qualifiers are accepted inside subquery filters *)
  let q =
    parse
      "SELECT PACKAGE(R) AS P FROM Rel R SUCH THAT (SELECT COUNT(*) FROM P \
       WHERE P.carbs > 0) >= 1"
  in
  match q.A.such_that with
  | Some (A.Gcmp (_, A.Agg (_, Some (E.Cmp (_, E.Attr "carbs", _))), _)) -> ()
  | _ -> Alcotest.fail "qualified filter attr"

(* Random ASTs: pretty-printing then re-parsing is the identity.
   Numeric literals are small non-negative integers (as floats) so the
   comparison is exact and "-3" vs Negate(3) ambiguity never arises. *)
let pretty_parse_roundtrip_prop =
  let open QCheck.Gen in
  let attr = oneofl [ "a"; "b"; "c" ] in
  let lit = map float_of_int (int_range 0 50) in
  let agg_kind =
    oneof
      [
        return A.Count_star;
        map (fun a -> A.Count a) attr;
        map (fun a -> A.Sum a) attr;
        map (fun a -> A.Avg a) attr;
      ]
  in
  let filter =
    oneof
      [
        return None;
        map2
          (fun a k -> Some (E.Cmp (E.Le, E.Attr a, E.Const (V.Float k))))
          attr lit;
        map2
          (fun a (k1, k2) ->
            Some
              (E.And
                 ( E.Cmp (E.Gt, E.Attr a, E.Const (V.Float k1)),
                   E.Cmp (E.Lt, E.Attr a, E.Const (V.Float (k1 +. k2))) )))
          attr (pair lit lit);
      ]
  in
  let rec gexpr depth =
    if depth = 0 then
      oneof [ map (fun f -> A.Num f) lit;
              map2 (fun k f -> A.Agg (k, f)) agg_kind filter ]
    else
      frequency
        [
          (2, map (fun f -> A.Num f) lit);
          (3, map2 (fun k f -> A.Agg (k, f)) agg_kind filter);
          ( 2,
            map2 (fun a b -> A.Add (a, b))
              (gexpr (depth - 1)) (gexpr (depth - 1)) );
          ( 2,
            map2 (fun a b -> A.Subtract (a, b))
              (gexpr (depth - 1)) (gexpr (depth - 1)) );
          (1, map2 (fun k e -> A.Mult (A.Num k, e)) lit (gexpr (depth - 1)));
          ( 1,
            map2 (fun e k -> A.Divide (e, A.Num (k +. 1.)))
              (gexpr (depth - 1)) lit );
        ]
  in
  let gcmp = oneofl [ A.Le; A.Ge; A.Eq; A.Lt; A.Gt ] in
  let conjunct =
    oneof
      [
        map3 (fun c a b -> A.Gcmp (c, a, b)) gcmp (gexpr 2) (gexpr 2);
        map3
          (fun e lo hi -> A.Gbetween (e, A.Num lo, A.Num (lo +. hi)))
          (gexpr 2) lit lit;
      ]
  in
  let gpred =
    (* the parser right-nests AND chains; mirror that *)
    list_size (int_range 1 3) conjunct >>= fun cs ->
    let rec nest = function
      | [ c ] -> c
      | c :: rest -> A.Gand (c, nest rest)
      | [] -> assert false
    in
    return (nest cs)
  in
  let where =
    oneof
      [
        return None;
        map2
          (fun a k -> Some (E.Cmp (E.Ge, E.Attr a, E.Const (V.Float k))))
          attr lit;
        map
          (fun a -> Some (E.IsNotNull (E.Attr a)))
          attr;
      ]
  in
  let query =
    where >>= fun where ->
    opt gpred >>= fun such_that ->
    oneof
      [ return None;
        map (fun e -> Some (A.Minimize e)) (gexpr 2);
        map (fun e -> Some (A.Maximize e)) (gexpr 2) ]
    >>= fun objective ->
    oneofl [ None; Some 0; Some 2 ] >>= fun repeat ->
    return
      {
        A.package_name = "P";
        rel_name = "Rel";
        rel_alias = "R";
        repeat;
        where;
        such_that;
        objective;
      }
  in
  QCheck.Test.make ~count:500 ~name:"pretty . parse round-trip on random ASTs"
    (QCheck.make query)
    (fun q ->
      match Paql.Parser.parse (Paql.Pretty.to_string q) with
      | Ok q2 -> q = q2
      | Error _ -> false)

let test_describe () =
  let spec = compile paper_query in
  let text = Paql.Translate.describe spec recipes in
  let contains needle =
    let n = String.length text and m = String.length needle in
    let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
    go 0
  in
  checkb "mentions elimination" true (contains "1 variable(s) eliminated");
  checkb "mentions cardinality row" true (contains "3 <= sum <= 3");
  checkb "mentions objective" true (contains "minimize")

let () =
  Alcotest.run "paql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "paper query" `Quick test_parse_paper_query;
          Alcotest.test_case "defaults" `Quick test_parse_defaults;
          Alcotest.test_case "subqueries" `Quick test_parse_subquery;
          Alcotest.test_case "arithmetic precedence" `Quick
            test_parse_arith_and_precedence;
          Alcotest.test_case "where logic" `Quick test_parse_where_logic;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "robustness",
        [
          QCheck_alcotest.to_alcotest lexer_total_prop;
          QCheck_alcotest.to_alcotest parser_total_prop;
          QCheck_alcotest.to_alcotest pretty_parse_roundtrip_prop;
          Alcotest.test_case "more shapes" `Quick test_parse_more_shapes;
          Alcotest.test_case "repeat variants" `Quick test_repeat_variants;
        ] );
      ( "pretty",
        [ Alcotest.test_case "round-trip" `Quick test_pretty_roundtrip ] );
      ("analyze", [ Alcotest.test_case "checks" `Quick test_analyze ]);
      ( "linform",
        [
          Alcotest.test_case "normalization" `Quick test_linform_normalization;
          Alcotest.test_case "constraints" `Quick test_linform_constraints;
          Alcotest.test_case "avg rewrite" `Quick test_linform_avg_rewrite;
          Alcotest.test_case "avg between" `Quick test_linform_avg_between;
        ] );
      ( "translate",
        [
          Alcotest.test_case "base predicate" `Quick
            test_translate_base_predicate;
          Alcotest.test_case "repetition" `Quick test_translate_repetition;
          Alcotest.test_case "rows and objective" `Quick test_translate_rows;
          Alcotest.test_case "conditional count" `Quick
            test_translate_conditional_count;
          Alcotest.test_case "offsets and caps" `Quick
            test_translate_offsets_and_caps;
          Alcotest.test_case "vacuous objective" `Quick
            test_translate_vacuous_objective;
          Alcotest.test_case "objective constant" `Quick
            test_translate_objective_constant;
          Alcotest.test_case "describe / explain" `Quick test_describe;
          Alcotest.test_case "count on string attr" `Quick
            test_analyze_count_on_string;
          Alcotest.test_case "count null coefficient" `Quick
            test_count_attr_null_coefficient;
          Alcotest.test_case "package-qualified filter" `Quick
            test_package_qualified_filter;
        ] );
    ]
