(* A richer dietitian scenario on a generated recipe catalogue:
   repetition constraints, AVG constraints, conditional-count
   constraints, and a DIRECT vs SKETCHREFINE comparison. *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "recipe_id"; ty = Relalg.Value.TInt };
      { Relalg.Schema.name = "kcal"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "protein"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "carbs"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "saturated_fat"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "fiber"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "gluten"; ty = Relalg.Value.TStr };
    ]

let catalogue n =
  let rng = Datagen.Prng.create 11 in
  let b = Relalg.Relation.builder schema in
  for recipe_id = 0 to n - 1 do
    let kcal = Datagen.Prng.uniform rng 0.15 1.2 in
    let protein = Datagen.Prng.uniform rng 2. 45. in
    let carbs = Datagen.Prng.uniform rng 5. 90. in
    let fat = Datagen.Prng.uniform rng 0.1 12. in
    let fiber = Datagen.Prng.uniform rng 0. 15. in
    let gluten = if Datagen.Prng.bool rng ~p:0.55 then "free" else "full" in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int recipe_id;
        Relalg.Value.Float kcal;
        Relalg.Value.Float protein;
        Relalg.Value.Float carbs;
        Relalg.Value.Float fat;
        Relalg.Value.Float fiber;
        Relalg.Value.Str gluten;
      |]
  done;
  Relalg.Relation.seal b

let queries =
  [
    ( "weekly plan (repeats allowed twice)",
      {|SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 1
        WHERE R.gluten = 'free'
        SUCH THAT COUNT(P.*) = 21 AND
                  SUM(P.kcal) BETWEEN 13.5 AND 15.0 AND
                  SUM(P.protein) >= 350
        MINIMIZE SUM(P.saturated_fat)|} );
    ( "balanced day (average fat capped)",
      {|SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0
        SUCH THAT COUNT(P.*) = 4 AND
                  SUM(P.kcal) BETWEEN 1.8 AND 2.2 AND
                  AVG(P.saturated_fat) <= 3.5
        MAXIMIZE SUM(P.fiber)|} );
    ( "protein-forward day (conditional counts)",
      {|SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 0
        SUCH THAT COUNT(P.*) = 5 AND
                  SUM(P.kcal) BETWEEN 2.0 AND 2.6 AND
                  (SELECT COUNT(*) FROM P WHERE protein > 25) >=
                  (SELECT COUNT(*) FROM P WHERE carbs > 50)
        MINIMIZE SUM(P.carbs)|} );
  ]

let () =
  let rel = catalogue 4000 in
  Format.printf "Catalogue: %d recipes@.@." (Relalg.Relation.cardinality rel);
  (* Offline partitioning over the nutrition attributes, reused by all
     three queries — the paper's workload-attribute strategy. *)
  let attrs = [ "kcal"; "protein"; "carbs"; "saturated_fat"; "fiber" ] in
  let tau = Relalg.Relation.cardinality rel / 10 in
  let t0 = Unix.gettimeofday () in
  let part = Pkg.Partition.create ~tau ~attrs rel in
  Format.printf "Partitioned into %d groups (tau=%d) in %.3fs@.@."
    (Pkg.Partition.num_groups part) tau
    (Unix.gettimeofday () -. t0);
  List.iter
    (fun (label, text) ->
      Format.printf "== %s ==@." label;
      let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn text) in
      let direct = Pkg.Direct.run spec rel in
      Format.printf "  direct:       %a@." Pkg.Eval.pp_report direct;
      let sr = Pkg.Sketch_refine.run spec rel part in
      Format.printf "  sketchrefine: %a@." Pkg.Eval.pp_report sr;
      (match direct.Pkg.Eval.objective, sr.Pkg.Eval.objective with
      | Some od, Some os when od <> 0. ->
        let ratio =
          match Paql.Translate.objective_sense spec with
          | Lp.Problem.Maximize -> od /. os
          | Lp.Problem.Minimize -> os /. od
        in
        Format.printf "  approximation ratio: %.3f@." ratio
      | _ -> ());
      Format.printf "@.")
    queries
