examples/night_sky.mli:
