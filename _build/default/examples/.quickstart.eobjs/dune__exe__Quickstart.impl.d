examples/quickstart.ml: Format List Paql Pkg Relalg Seq
