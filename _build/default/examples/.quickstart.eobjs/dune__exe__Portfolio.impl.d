examples/portfolio.ml: Datagen Float Format Paql Pkg Relalg
