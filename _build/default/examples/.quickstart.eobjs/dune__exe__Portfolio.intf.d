examples/portfolio.mli:
