examples/quickstart.mli:
