examples/team_formation.ml: Datagen Filename Float Format Ilp Paql Pkg Relalg Seq Sys
