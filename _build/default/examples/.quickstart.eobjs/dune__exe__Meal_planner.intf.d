examples/meal_planner.mli:
