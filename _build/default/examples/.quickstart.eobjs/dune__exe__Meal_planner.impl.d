examples/meal_planner.ml: Datagen Format List Lp Paql Pkg Relalg Unix
