examples/night_sky.ml: Array Datagen Format Ilp Paql Pkg Relalg Seq Unix
