examples/course_selection.ml: Datagen Float Format Ilp Lp Paql Pkg Relalg Unix
