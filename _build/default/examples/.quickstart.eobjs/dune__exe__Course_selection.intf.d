examples/course_selection.mli:
