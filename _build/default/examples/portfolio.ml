(* Investment planning — one of the paper's motivating domains: build
   a portfolio (a package of assets) under a budget, a risk cap, and a
   diversification rule, maximizing expected return. Demonstrates the
   hybrid sketch fallback when an over-tight query makes the plain
   sketch infeasible. *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "asset_id"; ty = Relalg.Value.TInt };
      { Relalg.Schema.name = "price"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "expected_return"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "risk"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "tech_sector"; ty = Relalg.Value.TFloat };
    ]

let market n =
  let rng = Datagen.Prng.create 23 in
  let b = Relalg.Relation.builder schema in
  for asset_id = 0 to n - 1 do
    let tech = if Datagen.Prng.bool rng ~p:0.4 then 1.0 else 0.0 in
    let risk = Datagen.Prng.uniform rng 0.5 (if tech = 1.0 then 9. else 6.) in
    let price = Datagen.Prng.pareto rng ~xm:20. ~alpha:1.8 in
    (* riskier assets promise more, with noise *)
    let expected_return =
      Float.max 0.2 (risk *. 1.8 +. Datagen.Prng.gaussian rng *. 2.0)
    in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int asset_id;
        Relalg.Value.Float price;
        Relalg.Value.Float expected_return;
        Relalg.Value.Float risk;
        Relalg.Value.Float tech;
      |]
  done;
  Relalg.Relation.seal b

let () =
  let n = 10_000 in
  let rel = market n in
  Format.printf "Market: %d assets@.@." n;
  let query =
    (* budget 2000, average risk at most 5, at most 6 of the 15
       positions in tech, maximize expected return *)
    {|SELECT PACKAGE(A) AS P FROM Assets A REPEAT 0
      SUCH THAT COUNT(P.*) = 15 AND
                SUM(P.price) <= 2000 AND
                AVG(P.risk) <= 5.0 AND
                (SELECT COUNT(*) FROM P WHERE tech_sector = 1.0) <= 6
      MAXIMIZE SUM(P.expected_return)|}
  in
  let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn query) in
  let attrs = [ "price"; "expected_return"; "risk"; "tech_sector" ] in
  let part = Pkg.Partition.create ~tau:(n / 10) ~attrs rel in
  Format.printf "Partitioning: %d groups@.@." (Pkg.Partition.num_groups part);

  let direct = Pkg.Direct.run spec rel in
  Format.printf "direct:       %a@." Pkg.Eval.pp_report direct;
  let sr = Pkg.Sketch_refine.run spec rel part in
  Format.printf "sketchrefine: %a@.@." Pkg.Eval.pp_report sr;

  (match sr.Pkg.Eval.package with
  | Some p ->
    let m = Pkg.Package.materialize p in
    let agg a = Relalg.Value.to_float (Relalg.Aggregate.over m a) in
    Format.printf
      "Portfolio: %d assets, cost %.0f, expected return %.1f, avg risk %.2f@."
      (Pkg.Package.cardinality p)
      (agg (Relalg.Aggregate.Sum "price"))
      (agg (Relalg.Aggregate.Sum "expected_return"))
      (agg (Relalg.Aggregate.Avg "risk"))
  | None -> print_endline "No feasible portfolio.");

  (* An over-tight variant: the sketch over centroids cannot satisfy
     the razor-thin budget window, so SketchRefine falls back to the
     hybrid sketch query (Section 4.4). *)
  print_endline "";
  print_endline "-- tight-budget variant (exercises the hybrid sketch) --";
  let tight =
    {|SELECT PACKAGE(A) AS P FROM Assets A REPEAT 0
      SUCH THAT COUNT(P.*) = 10 AND
                SUM(P.price) BETWEEN 999.5 AND 1000.5
      MAXIMIZE SUM(P.expected_return)|}
  in
  let spec = Paql.Translate.compile_exn schema (Paql.Parser.parse_exn tight) in
  let sr = Pkg.Sketch_refine.run spec rel part in
  Format.printf "sketchrefine: %a@." Pkg.Eval.pp_report sr
