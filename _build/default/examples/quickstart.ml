(* Quickstart: the paper's Example 1 (the dietitian's meal planner),
   end to end — build a relation, write the PaQL query from Section
   2.1 verbatim, evaluate it with DIRECT, inspect the package. *)

let schema =
  Relalg.Schema.make
    [
      { Relalg.Schema.name = "name"; ty = Relalg.Value.TStr };
      { Relalg.Schema.name = "gluten"; ty = Relalg.Value.TStr };
      { Relalg.Schema.name = "kcal"; ty = Relalg.Value.TFloat };
      { Relalg.Schema.name = "saturated_fat"; ty = Relalg.Value.TFloat };
    ]

let recipes =
  (* kcal in thousands, as in the paper's query (2.0 .. 2.5) *)
  [
    ("oat porridge", "free", 0.35, 2.1);
    ("lentil soup", "free", 0.55, 1.2);
    ("grilled salmon", "free", 0.80, 4.5);
    ("rye bread sandwich", "full", 0.60, 3.0);
    ("quinoa salad", "free", 0.70, 1.8);
    ("pasta carbonara", "full", 1.10, 9.5);
    ("rice and beans", "free", 0.90, 1.5);
    ("chicken stir fry", "free", 0.75, 2.9);
    ("fruit platter", "free", 0.40, 0.3);
    ("cheese omelette", "free", 0.65, 6.1);
  ]

let relation =
  Relalg.Relation.of_rows schema
    (List.map
       (fun (name, gluten, kcal, fat) ->
         [|
           Relalg.Value.Str name;
           Relalg.Value.Str gluten;
           Relalg.Value.Float kcal;
           Relalg.Value.Float fat;
         |])
       recipes)

let query =
  {|
  SELECT PACKAGE(R) AS P
  FROM Recipes R REPEAT 0
  WHERE R.gluten = 'free'
  SUCH THAT COUNT(P.*) = 3 AND
            SUM(P.kcal) BETWEEN 2.0 AND 2.5
  MINIMIZE SUM(P.saturated_fat)
|}

let () =
  print_endline "-- Example 1: a daily meal plan as a package query --";
  let ast = Paql.Parser.parse_exn query in
  Format.printf "@.Query:@.%a@.@." Paql.Pretty.pp_query ast;
  let spec = Paql.Translate.compile_exn schema ast in
  let report = Pkg.Direct.run spec relation in
  Format.printf "Evaluation: %a@.@." Pkg.Eval.pp_report report;
  match report.Pkg.Eval.package with
  | None -> print_endline "No feasible meal plan."
  | Some p ->
    print_endline "Meal plan:";
    Seq.iter
      (fun t ->
        Format.printf "  - %-20s %5g kcal  %4g g sat. fat@."
          (Relalg.Value.to_string (Relalg.Tuple.field schema t "name"))
          (Relalg.Tuple.float_field schema t "kcal")
          (Relalg.Tuple.float_field schema t "saturated_fat"))
      (Pkg.Package.tuples p);
    Format.printf "  total kcal: %g, total saturated fat: %g@."
      (Relalg.Value.to_float
         (Relalg.Aggregate.over (Pkg.Package.materialize p)
            (Relalg.Aggregate.Sum "kcal")))
      (Pkg.Package.objective spec p)
