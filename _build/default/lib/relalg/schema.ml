type attr = { name : string; ty : Value.ty }

type t = { attrs : attr array; index : (string, int) Hashtbl.t }

let make attr_list =
  let attrs = Array.of_list attr_list in
  let index = Hashtbl.create (Array.length attrs) in
  Array.iteri
    (fun i a ->
      if Hashtbl.mem index a.name then
        invalid_arg ("Schema.make: duplicate attribute " ^ a.name);
      Hashtbl.add index a.name i)
    attrs;
  { attrs; index }

let arity s = Array.length s.attrs
let attrs s = Array.to_list s.attrs
let attr_at s i = s.attrs.(i)

let index_of s name =
  match Hashtbl.find_opt s.index name with
  | Some i -> i
  | None -> raise Not_found

let index_of_opt s name = Hashtbl.find_opt s.index name
let mem s name = Hashtbl.mem s.index name
let ty_of s name = (attr_at s (index_of s name)).ty
let extend s a = make (attrs s @ [ a ])
let project s names = make (List.map (fun n -> attr_at s (index_of s n)) names)

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun x y -> String.equal x.name y.name && x.ty = y.ty)
       (attrs a) (attrs b)

let pp ppf s =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf a -> Format.fprintf ppf "%s:%s" a.name (Value.ty_name a.ty)))
    (attrs s)
