(** Typed scalar values stored in relations.

    Values are dynamically typed at the storage layer; the schema layer
    ({!Schema}) assigns static types to attributes and {!Expr} checks
    expressions against them. [Null] follows SQL semantics: it compares
    as unknown and propagates through arithmetic. *)

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = TInt | TFloat | TStr | TBool

val ty_name : ty -> string

(** [type_of v] is [None] for [Null], otherwise the value's type. *)
val type_of : t -> ty option

val is_null : t -> bool

(** [to_float v] coerces a numeric value to float.
    @raise Invalid_argument on non-numeric or null values. *)
val to_float : t -> float

(** [to_float_opt v] is [Some (to_float v)] on numerics, [None] otherwise. *)
val to_float_opt : t -> float option

(** Three-valued SQL comparison: [None] when either side is null,
    [Some c] with [c < 0], [c = 0], [c > 0] otherwise. Numerics compare
    across [Int]/[Float]. @raise Invalid_argument on incompatible types. *)
val compare_sql : t -> t -> int option

(** Structural equality used by tests (null = null holds here). *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse a CSV field given a target type; empty string becomes [Null]. *)
val of_string : ty -> string -> t
