type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get t i = t.(i)
let field schema t name = t.(Schema.index_of schema name)
let float_field schema t name = Value.to_float (field schema t name)

let equal a b =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t)
