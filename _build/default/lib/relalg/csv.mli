(** Minimal CSV persistence for relations. The first line is a header of
    [name:type] fields (types: int, float, str, bool); empty fields read
    back as NULL (consequently an empty string value also reads back
    as NULL — the one lossy case of this encoding). Fields containing commas/quotes/newlines are quoted. *)

val write : string -> Relation.t -> unit
val read : string -> Relation.t

(** String-based variants used by tests. *)
val to_string : Relation.t -> string
val of_string : string -> Relation.t
