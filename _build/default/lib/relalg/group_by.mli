(** Grouping by an integer key (the partitioner's group id), mirroring
    the SQL [GROUP BY gid] queries the paper's partitioner issues. *)

type group = {
  key : int;
  members : int array;  (** row indices into the grouped relation *)
}

(** [by_key r key_of] groups rows by [key_of row_index tuple]; groups are
    returned sorted by key, member order follows relation order. *)
val by_key : Relation.t -> (int -> Tuple.t -> int) -> group list

(** [centroid r attrs members] averages the given numeric attributes over
    the member rows (NULLs excluded per attribute; all-null yields 0). *)
val centroid : Relation.t -> string list -> int array -> float array

(** [radius r attrs members centroid] is the greatest absolute
    per-attribute distance between the centroid and any member
    (Definition 2 of the paper). *)
val radius : Relation.t -> string list -> int array -> float array -> float
