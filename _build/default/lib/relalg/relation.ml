type t = { schema : Schema.t; rows : Tuple.t array }

let check_arity schema tuple =
  if Tuple.arity tuple <> Schema.arity schema then
    invalid_arg "Relation: tuple arity does not match schema"

let of_array schema rows =
  Array.iter (check_arity schema) rows;
  { schema; rows }

let of_rows schema rows = of_array schema (Array.of_list rows)

type builder = { bschema : Schema.t; mutable acc : Tuple.t list; mutable n : int }

let builder bschema = { bschema; acc = []; n = 0 }

let add b tuple =
  check_arity b.bschema tuple;
  b.acc <- tuple :: b.acc;
  b.n <- b.n + 1

let seal b =
  let rows = Array.make b.n [||] in
  List.iteri (fun i t -> rows.(b.n - 1 - i) <- t) b.acc;
  { schema = b.bschema; rows }

let schema r = r.schema
let cardinality r = Array.length r.rows

let row r i =
  if i < 0 || i >= Array.length r.rows then
    invalid_arg (Printf.sprintf "Relation.row: index %d out of range" i);
  r.rows.(i)

let iter f r = Array.iteri f r.rows

let fold f init r =
  let acc = ref init in
  Array.iteri (fun i t -> acc := f !acc i t) r.rows;
  !acc

let to_list r = Array.to_list r.rows

let select r pred =
  let rows =
    Array.of_seq
      (Seq.filter (fun t -> Expr.eval_bool r.schema t pred)
         (Array.to_seq r.rows))
  in
  { r with rows }

let select_indices r pred =
  let out = ref [] and n = ref 0 in
  Array.iteri
    (fun i t ->
      if Expr.eval_bool r.schema t pred then begin
        out := i :: !out;
        incr n
      end)
    r.rows;
  let a = Array.make !n 0 in
  List.iteri (fun k i -> a.(!n - 1 - k) <- i) !out;
  a

let project r names =
  let idxs = List.map (Schema.index_of r.schema) names in
  let schema = Schema.project r.schema names in
  let rows =
    Array.map (fun t -> Array.of_list (List.map (Tuple.get t) idxs)) r.rows
  in
  { schema; rows }

let take r ids = { r with rows = Array.map (fun i -> row r i) ids }

let prefix r n =
  let n = min n (Array.length r.rows) in
  { r with rows = Array.sub r.rows 0 n }

let column_float r name =
  let i = Schema.index_of r.schema name in
  Array.map
    (fun t ->
      match Value.to_float_opt (Tuple.get t i) with
      | Some f -> f
      | None -> nan)
    r.rows

let append_column r attr values =
  if Array.length values <> Array.length r.rows then
    invalid_arg "Relation.append_column: wrong number of values";
  let schema = Schema.extend r.schema attr in
  let rows =
    Array.mapi (fun i t -> Array.append t [| values.(i) |]) r.rows
  in
  { schema; rows }

let pp ppf r =
  Format.fprintf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    (Format.pp_print_list Tuple.pp)
    (to_list r)
