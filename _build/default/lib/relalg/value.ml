type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type ty = TInt | TFloat | TStr | TBool

let ty_name = function
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "str"
  | TBool -> "bool"

let type_of = function
  | Null -> None
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Bool _ -> Some TBool

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Null -> invalid_arg "Value.to_float: null"
  | Str _ -> invalid_arg "Value.to_float: string"
  | Bool _ -> invalid_arg "Value.to_float: bool"

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Str _ | Bool _ -> None

let compare_sql a b =
  match a, b with
  | Null, _ | _, Null -> None
  | Int x, Int y -> Some (compare x y)
  | (Int _ | Float _), (Int _ | Float _) ->
    Some (compare (to_float a) (to_float b))
  | Str x, Str y -> Some (compare x y)
  | Bool x, Bool y -> Some (compare x y)
  | (Str _ | Bool _), _ | _, (Str _ | Bool _) ->
    invalid_arg "Value.compare_sql: incompatible types"

let equal a b =
  match a, b with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | _, _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "NULL"
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b

let to_string v = Format.asprintf "%a" pp v

let of_string ty s =
  if String.equal s "" then Null
  else
    match ty with
    | TInt -> Int (int_of_string (String.trim s))
    | TFloat -> Float (float_of_string (String.trim s))
    | TStr -> Str s
    | TBool -> Bool (bool_of_string (String.trim s))
