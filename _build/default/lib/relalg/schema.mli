(** Relation schemas: ordered, named, typed attributes. *)

type attr = { name : string; ty : Value.ty }

type t

(** [make attrs] builds a schema. @raise Invalid_argument on duplicates. *)
val make : attr list -> t

val arity : t -> int
val attrs : t -> attr list
val attr_at : t -> int -> attr

(** [index_of s name] is the position of [name].
    @raise Not_found when absent. *)
val index_of : t -> string -> int

val index_of_opt : t -> string -> int option
val mem : t -> string -> bool
val ty_of : t -> string -> Value.ty

(** [extend s attr] appends an attribute (e.g. the partitioner's [gid]). *)
val extend : t -> attr -> t

(** [project s names] keeps the named attributes, in the given order. *)
val project : t -> string list -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
