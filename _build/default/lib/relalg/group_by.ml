type group = { key : int; members : int array }

let by_key r key_of =
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun i t ->
      let k = key_of i t in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := i :: !l
      | None -> Hashtbl.add tbl k (ref [ i ]))
    r;
  Hashtbl.fold
    (fun key l acc ->
      { key; members = Array.of_list (List.rev !l) } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.key b.key)

let centroid r attrs members =
  let schema = Relation.schema r in
  let idxs = Array.of_list (List.map (Schema.index_of schema) attrs) in
  let k = Array.length idxs in
  let sums = Array.make k 0. and counts = Array.make k 0 in
  Array.iter
    (fun row ->
      let t = Relation.row r row in
      Array.iteri
        (fun j col ->
          match Value.to_float_opt (Tuple.get t col) with
          | Some v ->
            sums.(j) <- sums.(j) +. v;
            counts.(j) <- counts.(j) + 1
          | None -> ())
        idxs)
    members;
  Array.init k (fun j ->
      if counts.(j) = 0 then 0. else sums.(j) /. float_of_int counts.(j))

let radius r attrs members centroid =
  let schema = Relation.schema r in
  let idxs = Array.of_list (List.map (Schema.index_of schema) attrs) in
  let worst = ref 0. in
  Array.iter
    (fun row ->
      let t = Relation.row r row in
      Array.iteri
        (fun j col ->
          match Value.to_float_opt (Tuple.get t col) with
          | Some v ->
            let d = Float.abs (centroid.(j) -. v) in
            if d > !worst then worst := d
          | None -> ())
        idxs)
    members;
  !worst
