(** Tuples are immutable-by-convention value arrays positioned by a schema. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t

(** [field schema tuple name] looks a field up by attribute name. *)
val field : Schema.t -> t -> string -> Value.t

(** [float_field schema tuple name] coerces the field to float.
    @raise Invalid_argument on null / non-numeric fields. *)
val float_field : Schema.t -> t -> string -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
