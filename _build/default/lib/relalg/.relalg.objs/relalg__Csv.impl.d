lib/relalg/csv.ml: Array Buffer Fun List Printf Relation Schema String Tuple Value
