lib/relalg/relation.mli: Expr Format Schema Tuple Value
