lib/relalg/group_by.mli: Relation Tuple
