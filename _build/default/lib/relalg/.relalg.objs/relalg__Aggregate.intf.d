lib/relalg/aggregate.mli: Expr Format Relation Schema Seq Tuple Value
