lib/relalg/expr.ml: Format Hashtbl List Printf Result Schema Tuple Value
