lib/relalg/tuple.ml: Array Format Schema Value
