lib/relalg/group_by.ml: Array Float Hashtbl List Relation Schema Tuple Value
