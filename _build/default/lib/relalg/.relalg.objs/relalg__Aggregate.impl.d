lib/relalg/aggregate.ml: Array Expr Format Relation Schema Seq Tuple Value
