lib/relalg/tuple.mli: Format Schema Value
