lib/relalg/relation.ml: Array Expr Format List Printf Schema Seq Tuple Value
