lib/relalg/value.ml: Format String
