(** Dynamic partitioning (Section 4.1, "Dynamic partitioning"): build
    the quad-tree once, retain the whole hierarchy, and at query time
    traverse it to extract the coarsest partitioning that satisfies a
    required radius condition (e.g. the Theorem 3 radius for the
    query's epsilon and sense).

    The static {!Partition.create} discards the hierarchy and bakes one
    tau/radius combination in; this module trades memory for the
    ability to serve per-query radius conditions from one offline
    build. The paper found static partitioning sufficient in practice
    (Section 4.1) — the benchmarks include an ablation comparing the
    two. *)

type t

val attrs : t -> string list

(** Number of nodes retained in the hierarchy. *)
val size : t -> int

(** [build ?max_fanout_dims ~leaf_size ~attrs rel] recursively splits
    down to groups of at most [leaf_size] tuples, keeping every
    internal level. [max_fanout_dims] as in {!Partition.create}. *)
val build :
  ?max_fanout_dims:int -> leaf_size:int -> attrs:string list ->
  Relalg.Relation.t -> t

(** [cut ?tau ?radius tree rel] extracts the coarsest antichain of
    nodes satisfying both conditions: nodes larger than [tau] or
    violating [radius] are replaced by their children; leaves are
    accepted as-is (they satisfy [leaf_size] <= tau by construction
    when [tau >= leaf_size]). The result is an ordinary
    {!Partition.t}, ready for SketchRefine. *)
val cut :
  ?tau:int -> ?radius:Partition.radius_spec -> t -> Relalg.Relation.t ->
  Partition.t
