type t = { rel : Relalg.Relation.t; entries : (int * int) list }

let make rel raw =
  let n = Relalg.Relation.cardinality rel in
  List.iter
    (fun (id, c) ->
      if id < 0 || id >= n then
        invalid_arg (Printf.sprintf "Package.make: row id %d out of range" id);
      if c < 0 then invalid_arg "Package.make: negative multiplicity")
    raw;
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (id, c) ->
      if c > 0 then
        Hashtbl.replace tbl id (c + Option.value ~default:0 (Hashtbl.find_opt tbl id)))
    raw;
  let entries =
    Hashtbl.fold (fun id c acc -> (id, c) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { rel; entries }

let of_solution rel ~candidates x =
  if Array.length x <> Array.length candidates then
    invalid_arg "Package.of_solution: arity mismatch";
  let raw = ref [] in
  Array.iteri
    (fun k id ->
      let c = int_of_float (Float.round x.(k)) in
      if c > 0 then raw := (id, c) :: !raw)
    candidates;
  make rel !raw

let relation p = p.rel
let entries p = p.entries
let cardinality p = List.fold_left (fun acc (_, c) -> acc + c) 0 p.entries
let is_empty p = p.entries = []

let tuples p =
  List.to_seq p.entries
  |> Seq.concat_map (fun (id, c) ->
         Seq.init c (fun _ -> Relalg.Relation.row p.rel id))

let sum_over p f =
  List.fold_left
    (fun acc (id, c) ->
      acc +. (float_of_int c *. f (Relalg.Relation.row p.rel id)))
    0. p.entries

let objective (spec : Paql.Translate.spec) p =
  match spec.Paql.Translate.objective with
  | None -> 0.
  | Some (_, coeff, const) -> sum_over p coeff +. const

let constraint_values (spec : Paql.Translate.spec) p =
  Array.of_list
    (List.map
       (fun (c : Paql.Translate.compiled_constraint) ->
         sum_over p c.Paql.Translate.coeff)
       spec.Paql.Translate.constraints)

let feasible ?(tol = 1e-6) (spec : Paql.Translate.spec) p =
  let schema = Relalg.Relation.schema p.rel in
  let base_ok =
    match spec.Paql.Translate.where with
    | None -> true
    | Some pred ->
      List.for_all
        (fun (id, _) ->
          Relalg.Expr.eval_bool schema (Relalg.Relation.row p.rel id) pred)
        p.entries
  in
  let repeat_ok =
    List.for_all
      (fun (_, c) -> float_of_int c <= spec.Paql.Translate.max_count +. tol)
      p.entries
  in
  let constraints_ok =
    List.for_all
      (fun (c : Paql.Translate.compiled_constraint) ->
        let v = sum_over p c.Paql.Translate.coeff in
        v >= c.Paql.Translate.clo -. tol && v <= c.Paql.Translate.chi +. tol)
      spec.Paql.Translate.constraints
  in
  base_ok && repeat_ok && constraints_ok

let materialize p =
  Relalg.Relation.of_rows (Relalg.Relation.schema p.rel) (List.of_seq (tuples p))

let pp ppf p =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (id, c) ->
         if c = 1 then Format.pp_print_int ppf id
         else Format.fprintf ppf "%dx%d" id c))
    p.entries
