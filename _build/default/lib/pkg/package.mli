(** Packages: multisets of tuples from an input relation, identified by
    row id and multiplicity. The answer objects of package queries. *)

type t

(** [make rel entries] builds a package; entries with zero counts are
    dropped. @raise Invalid_argument on negative counts or bad ids. *)
val make : Relalg.Relation.t -> (int * int) list -> t

(** [of_solution rel ~candidates x] converts an ILP solution vector
    (one entry per candidate row id) into a package, rounding each
    multiplicity to the nearest integer. *)
val of_solution : Relalg.Relation.t -> candidates:int array -> float array -> t

val relation : t -> Relalg.Relation.t

(** (row id, multiplicity) pairs, in increasing row id, counts >= 1. *)
val entries : t -> (int * int) list

val cardinality : t -> int
val is_empty : t -> bool

(** Tuples with multiplicity. *)
val tuples : t -> Relalg.Tuple.t Seq.t

(** [objective spec p] evaluates the query's objective on the package
    (including any constant term); [0.] for queries without an
    objective clause. *)
val objective : Paql.Translate.spec -> t -> float

(** [feasible spec p] checks base predicates, repetition bounds and all
    global constraints. *)
val feasible : ?tol:float -> Paql.Translate.spec -> t -> bool

(** [constraint_values spec p] evaluates each compiled constraint's
    linear form on the package (for diagnostics and tests). *)
val constraint_values : Paql.Translate.spec -> t -> float array

(** Materialize as a relation (one row per multiplicity unit) — the
    paper's representation of a package as a standard relation. *)
val materialize : t -> Relalg.Relation.t

val pp : Format.formatter -> t -> unit
