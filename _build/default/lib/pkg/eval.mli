(** Shared result types and counters for the package evaluation
    methods (DIRECT and SKETCHREFINE). *)

type status =
  | Optimal
      (** every ILP subproblem was solved to proven optimality *)
  | Feasible of float
      (** a solver limit was hit; the payload is the worst relative
          optimality gap observed *)
  | Infeasible
  | Failed of string
      (** the solver gave up with no usable answer — the analogue of
          the paper's CPLEX failures (memory/time kill) *)

type counters = {
  mutable ilp_calls : int;
  mutable nodes : int;
  mutable simplex_iterations : int;
  mutable backtracks : int;
}

val fresh_counters : unit -> counters

(** Accumulate a branch-and-bound run into the counters. *)
val bump : counters -> Ilp.Branch_bound.result -> unit

type report = {
  status : status;
  package : Package.t option;
  objective : float option;  (** objective incl. constant term *)
  wall_time : float;         (** seconds *)
  counters : counters;
}

val report :
  status:status ->
  package:Package.t option ->
  objective:float option ->
  wall_time:float ->
  counters:counters ->
  report

val pp_status : Format.formatter -> status -> unit
val pp_report : Format.formatter -> report -> unit
