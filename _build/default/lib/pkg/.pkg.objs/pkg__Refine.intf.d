lib/pkg/refine.mli: Eval Ilp Package Sketch
