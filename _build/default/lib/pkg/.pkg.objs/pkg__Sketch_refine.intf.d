lib/pkg/sketch_refine.mli: Eval Ilp Paql Partition Relalg
