lib/pkg/package.ml: Array Float Format Hashtbl List Option Paql Printf Relalg Seq
