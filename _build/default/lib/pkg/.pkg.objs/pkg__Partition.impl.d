lib/pkg/partition.ml: Array Float Fun Hashtbl List Printf Relalg String
