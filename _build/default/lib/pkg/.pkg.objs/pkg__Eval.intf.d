lib/pkg/eval.mli: Format Ilp Package
