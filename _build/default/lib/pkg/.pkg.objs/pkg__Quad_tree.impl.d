lib/pkg/quad_tree.ml: Array Float Fun Hashtbl List Partition Relalg
