lib/pkg/package.mli: Format Paql Relalg Seq
