lib/pkg/eval.ml: Format Ilp Option Package
