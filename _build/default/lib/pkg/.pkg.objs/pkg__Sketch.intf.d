lib/pkg/sketch.mli: Eval Ilp Paql Partition Relalg
