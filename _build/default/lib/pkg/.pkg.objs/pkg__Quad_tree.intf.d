lib/pkg/quad_tree.mli: Partition Relalg
