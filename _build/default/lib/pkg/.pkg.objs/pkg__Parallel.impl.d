lib/pkg/parallel.ml: Array Domain Eval Fun List Package Partition Refine Sketch Sketch_refine Unix
