lib/pkg/kmeans.ml: Array Float Hashtbl Int64 List Partition Relalg
