lib/pkg/partition.mli: Relalg
