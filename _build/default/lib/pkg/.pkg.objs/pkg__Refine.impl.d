lib/pkg/refine.ml: Array Eval Float Fun Ilp List Package Paql Partition Relalg Sketch Unix
