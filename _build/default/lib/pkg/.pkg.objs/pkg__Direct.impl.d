lib/pkg/direct.ml: Eval Ilp Package Paql Unix
