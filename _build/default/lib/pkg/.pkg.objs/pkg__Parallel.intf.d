lib/pkg/parallel.mli: Eval Paql Partition Relalg Sketch_refine
