lib/pkg/sketch.ml: Array Eval Fun Ilp List Paql Partition Relalg
