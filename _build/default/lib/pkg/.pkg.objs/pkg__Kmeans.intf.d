lib/pkg/kmeans.mli: Partition Relalg
