lib/pkg/sketch_refine.ml: Array Eval Float Fun Ilp List Logs Lp Package Paql Partition Refine Relalg Sketch Unix
