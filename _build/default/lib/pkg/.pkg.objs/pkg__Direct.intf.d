lib/pkg/direct.mli: Eval Ilp Paql Relalg
