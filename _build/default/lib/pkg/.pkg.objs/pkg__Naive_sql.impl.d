lib/pkg/naive_sql.ml: Array Eval Lp Package Paql Printf Relalg Unix
