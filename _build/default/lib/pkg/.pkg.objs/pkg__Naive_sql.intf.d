lib/pkg/naive_sql.mli: Eval Paql Relalg
