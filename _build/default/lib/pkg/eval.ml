type status =
  | Optimal
  | Feasible of float
  | Infeasible
  | Failed of string

type counters = {
  mutable ilp_calls : int;
  mutable nodes : int;
  mutable simplex_iterations : int;
  mutable backtracks : int;
}

let fresh_counters () =
  { ilp_calls = 0; nodes = 0; simplex_iterations = 0; backtracks = 0 }

let bump c result =
  let stats = Ilp.Branch_bound.stats_of result in
  c.ilp_calls <- c.ilp_calls + 1;
  c.nodes <- c.nodes + stats.Ilp.Branch_bound.nodes;
  c.simplex_iterations <-
    c.simplex_iterations + stats.Ilp.Branch_bound.simplex_iterations

type report = {
  status : status;
  package : Package.t option;
  objective : float option;
  wall_time : float;
  counters : counters;
}

let report ~status ~package ~objective ~wall_time ~counters =
  { status; package; objective; wall_time; counters }

let pp_status ppf = function
  | Optimal -> Format.pp_print_string ppf "optimal"
  | Feasible gap -> Format.fprintf ppf "feasible (gap %.2f%%)" (gap *. 100.)
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Failed msg -> Format.fprintf ppf "failed: %s" msg

let pp_report ppf r =
  Format.fprintf ppf "%a" pp_status r.status;
  Option.iter (fun o -> Format.fprintf ppf ", obj=%g" o) r.objective;
  Format.fprintf ppf ", %.3fs, %d ILP call(s), %d node(s)" r.wall_time
    r.counters.ilp_calls r.counters.nodes;
  if r.counters.backtracks > 0 then
    Format.fprintf ppf ", %d backtrack(s)" r.counters.backtracks
