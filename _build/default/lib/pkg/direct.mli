(** DIRECT package evaluation (Section 3.2): compute base relations,
    translate the whole query to one ILP, hand it to the solver. *)

(** [run ?limits spec rel] evaluates the compiled query over [rel].
    [limits] caps the branch-and-bound search; hitting a limit with no
    incumbent yields [Eval.Failed] — the analogue of the paper's CPLEX
    failures on hard instances. *)
val run :
  ?limits:Ilp.Branch_bound.limits ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  Eval.report
