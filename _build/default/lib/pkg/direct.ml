let run ?limits spec rel =
  let start = Unix.gettimeofday () in
  let counters = Eval.fresh_counters () in
  let candidates = Paql.Translate.base_candidates spec rel in
  let problem = Paql.Translate.to_problem spec rel ~candidates in
  let result = Ilp.Branch_bound.solve ?limits problem in
  Eval.bump counters result;
  let wall_time = Unix.gettimeofday () -. start in
  let finish status package objective =
    Eval.report ~status ~package ~objective ~wall_time ~counters
  in
  let package_of (sol : Ilp.Branch_bound.sol) =
    Package.of_solution rel ~candidates sol.Ilp.Branch_bound.x
  in
  match result with
  | Ilp.Branch_bound.Optimal (sol, _) ->
    let p = package_of sol in
    finish Eval.Optimal (Some p) (Some (Package.objective spec p))
  | Ilp.Branch_bound.Feasible (sol, _, gap) ->
    let p = package_of sol in
    finish (Eval.Feasible gap) (Some p) (Some (Package.objective spec p))
  | Ilp.Branch_bound.Infeasible _ -> finish Eval.Infeasible None None
  | Ilp.Branch_bound.Unbounded _ ->
    finish (Eval.Failed "unbounded objective") None None
  | Ilp.Branch_bound.Limit _ ->
    finish (Eval.Failed "solver limit reached with no incumbent") None None
