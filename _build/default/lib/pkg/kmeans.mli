(** Lloyd's k-means as an alternative offline partitioner.

    The paper (Section 4.1, "Alternative partitioning approaches")
    notes that stock clustering algorithms cannot natively enforce the
    size threshold or the radius limit; this implementation exists to
    demonstrate exactly that in the ablation benchmarks. Oversized
    clusters are optionally re-chunked to honour tau after the fact. *)

(** [create ?seed ?iters ?tau ~k ~attrs rel] clusters on the given
    numeric attributes. [tau], when given, chunks any cluster larger
    than the threshold (losing cluster coherence, as the paper
    predicts). Deterministic for a fixed [seed]. *)
val create :
  ?seed:int ->
  ?iters:int ->
  ?tau:int ->
  k:int ->
  attrs:string list ->
  Relalg.Relation.t ->
  Partition.t
