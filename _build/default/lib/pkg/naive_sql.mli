(** The naive SQL self-join formulation of a strict-cardinality package
    query (Section 2 and Figure 1 of the paper).

    Emulates a relational engine evaluating the k-way self-join
    [R1.pk < R2.pk < ... < Rk.pk] with the global constraints applied
    as post-join predicates and the objective as ORDER BY ... LIMIT 1:
    every increasing k-combination of candidate rows is enumerated and
    checked. Runtime is Theta(C(n, k)) — exponential in the package
    cardinality, which is the point of Figure 1. *)

(** [run ?max_combinations spec rel ~cardinality] enumerates packages
    of exactly [cardinality] distinct tuples. The query's own
    COUNT constraint (if any) is checked as part of the global
    predicates. [max_combinations] (default [200_000_000]) bounds the
    enumeration — exceeding it yields [Eval.Failed], the analogue of
    the paper's aborted 24-hour runs. *)
val run :
  ?max_combinations:int ->
  Paql.Translate.spec ->
  Relalg.Relation.t ->
  cardinality:int ->
  Eval.report
