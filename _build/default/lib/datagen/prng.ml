type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  (* take the top 53 bits *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits /. 9007199254740992.

let uniform t lo hi = lo +. (float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.logand (next t) Int64.max_int)
                  (Int64.of_int bound))

let gaussian t =
  (* Box-Muller; guard against log 0 *)
  let u1 = Float.max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let normal t ~mean ~stddev = mean +. (stddev *. gaussian t)

let exponential t ~rate = -.log (Float.max 1e-12 (1. -. float t)) /. rate

let pareto t ~xm ~alpha = xm /. ((Float.max 1e-12 (1. -. float t)) ** (1. /. alpha))

let bool t ~p = float t < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choice: empty array";
  arr.(int t (Array.length arr))
