lib/datagen/prng.mli:
