lib/datagen/workload.mli: Paql Relalg
