lib/datagen/tpch.mli: Relalg
