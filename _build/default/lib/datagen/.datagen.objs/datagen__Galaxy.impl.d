lib/datagen/galaxy.ml: Array Float List Prng Relalg
