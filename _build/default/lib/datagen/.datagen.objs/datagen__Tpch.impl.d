lib/datagen/tpch.ml: List Prng Relalg
