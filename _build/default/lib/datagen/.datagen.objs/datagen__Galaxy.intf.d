lib/datagen/galaxy.mli: Relalg
