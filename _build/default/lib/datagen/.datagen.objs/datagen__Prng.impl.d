lib/datagen/prng.ml: Array Float Int64
