lib/datagen/workload.ml: Hashtbl List Paql Printf Relalg Tpch
