(** Deterministic SplitMix64 PRNG. Every generator in the benchmark
    suite derives from an explicit seed, so datasets are reproducible
    across runs and machines (no dependence on [Random]'s global
    state). *)

type t

val create : int -> t

(** Uniform in [0, 2^64). *)
val next : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). *)
val uniform : t -> float -> float -> float

(** Uniform int in [0, bound). @raise Invalid_argument if bound <= 0. *)
val int : t -> int -> int

(** Standard normal (Box-Muller). *)
val gaussian : t -> float

(** Normal with the given mean and standard deviation. *)
val normal : t -> mean:float -> stddev:float -> float

(** Exponential with the given rate. *)
val exponential : t -> rate:float -> float

(** Pareto with scale [xm] and shape [alpha] (heavy-tailed). *)
val pareto : t -> xm:float -> alpha:float -> float

(** Bernoulli trial. *)
val bool : t -> p:float -> bool

(** Pick uniformly from a non-empty array. *)
val choice : t -> 'a array -> 'a
