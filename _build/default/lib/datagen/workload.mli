(** The benchmark workloads: seven package queries per dataset, adapted
    the way the paper adapts SDSS sample queries and TPC-H templates —
    aggregates become global predicates or objectives, and global
    constraint bounds are synthesized by multiplying per-tuple
    statistics by the expected package size (Section 5.1), so every
    query stays feasible across dataset scales. *)

type def = {
  name : string;         (** "Q1" .. "Q7" *)
  paql : string;         (** instantiated query text *)
  attrs : string list;   (** numeric query attributes *)
  maximize : bool;       (** objective sense (for ratio reporting) *)
}

(** [galaxy_queries rel] instantiates the Galaxy workload against the
    statistics of [rel]. *)
val galaxy_queries : Relalg.Relation.t -> def list

(** [tpch_queries rel] instantiates the TPC-H workload. *)
val tpch_queries : Relalg.Relation.t -> def list

(** [query_relation ~dataset rel def] is the relation the query runs
    over: the full relation for Galaxy; the non-NULL extraction on the
    query attributes for TPC-H (Figure 3). *)
val query_relation :
  dataset:[ `Galaxy | `Tpch ] -> Relalg.Relation.t -> def -> Relalg.Relation.t

(** Union of all query attributes — the paper's "workload attributes"
    used for offline partitioning. *)
val workload_attrs : def list -> string list

(** Parse+compile a workload query against a relation's schema.
    @raise Invalid_argument on parse/analysis errors (workload queries
    are trusted). *)
val compile : Relalg.Relation.t -> def -> Paql.Translate.spec
