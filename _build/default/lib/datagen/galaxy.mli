(** Synthetic stand-in for the SDSS Galaxy view (data release 12) used
    in the paper's real-world experiments.

    The generator reproduces the structural properties the experiments
    rely on, rather than astronomical fidelity:
    - many numeric attributes (11), enabling high partitioning
      coverage (Figure 9 sweeps up to 13x on Galaxy);
    - spatial clustering: positions drawn from a mixture of Gaussian
      "sky patches", so quad-tree partitions are non-uniform;
    - correlated magnitudes across the five photometric bands
      (u, g, r, i, z), driven by a shared base brightness;
    - skewed, heavy-tailed distributions for redshift and radius.

    Deterministic for a fixed seed. *)

(** Attribute names, in schema order:
    [objid, ra, dec, u, g, r, i, z, redshift, petro_rad, exp_ab, rowc]. *)
val numeric_attrs : string list

(** [generate ?seed n] produces [n] tuples. *)
val generate : ?seed:int -> int -> Relalg.Relation.t
