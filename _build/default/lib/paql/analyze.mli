(** Semantic analysis of PaQL queries against a relation schema.

    Checks performed:
    - the WHERE clause type-checks over the schema;
    - aggregate arguments exist and are numeric (SUM/AVG) or merely
      exist (COUNT);
    - subquery filters type-check;
    - global predicates and objective are linear (MIN/MAX rejected,
      products of aggregates rejected, AVG only in the supported
      rewrite position).

    Note: strict comparisons ([<], [>]) in global predicates are
    accepted and treated as non-strict by the translator, matching the
    paper's restriction of constraints to [<=] / [>=]. *)

(** [check schema q] returns all detected problems (empty = valid). *)
val check : Relalg.Schema.t -> Ast.query -> (unit, string list) result

(** [check_exn schema q] raises [Invalid_argument] with the first
    problem. *)
val check_exn : Relalg.Schema.t -> Ast.query -> unit
