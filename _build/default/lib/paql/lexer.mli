(** Hand-written lexer for PaQL. Keywords are case-insensitive;
    identifiers keep their original case. *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string  (** single-quoted literal, quotes stripped *)
  | KW of string      (** upper-cased keyword, e.g. "SELECT" *)
  | STAR
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

(** Token plus its starting byte offset in the input (for errors). *)
type spanned = { tok : token; pos : int }

exception Lex_error of string * int

(** [tokenize s] lexes the whole input, ending with [EOF].
    @raise Lex_error on invalid characters or unterminated strings. *)
val tokenize : string -> spanned array

val describe : token -> string
