(** Recursive-descent parser for PaQL (grammar of Appendix A.4).

    Attribute qualifiers are resolved during parsing: [R.attr] in the
    WHERE clause must use the FROM alias (or relation name), [P.attr]
    in SUCH THAT / objective clauses must use the package name, and
    subqueries must select FROM the package. Resolved attributes are
    stored unqualified. *)

exception Parse_error of string * int  (** message, byte offset *)

(** [parse input] parses a full PaQL query. *)
val parse : string -> (Ast.query, string) result

(** Exception-raising variant of {!parse}, for tests and internal use.
    @raise Parse_error / Lexer.Lex_error. *)
val parse_exn : string -> Ast.query
