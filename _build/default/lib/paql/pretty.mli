(** Pretty-printing of PaQL ASTs back to concrete syntax. The output
    re-parses to an equivalent AST (round-trip property, tested). *)

val pp_gexpr : pkg:string -> Format.formatter -> Ast.gexpr -> unit
val pp_gpred : pkg:string -> Format.formatter -> Ast.gpred -> unit
val pp_query : Format.formatter -> Ast.query -> unit
val to_string : Ast.query -> string
