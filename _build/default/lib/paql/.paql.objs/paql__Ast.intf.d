lib/paql/ast.mli: Relalg
