lib/paql/translate.mli: Ast Lp Relalg
