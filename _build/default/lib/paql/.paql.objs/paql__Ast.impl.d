lib/paql/ast.ml: Hashtbl List Option Relalg
