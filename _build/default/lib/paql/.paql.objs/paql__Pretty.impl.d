lib/paql/pretty.ml: Ast Format Option Printf Relalg
