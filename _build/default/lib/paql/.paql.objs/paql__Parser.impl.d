lib/paql/parser.ml: Array Ast Lexer List Printf Relalg String
