lib/paql/translate.ml: Analyze Array Ast Buffer Format Fun Linform List Lp Printf Relalg Result String
