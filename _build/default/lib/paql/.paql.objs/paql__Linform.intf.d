lib/paql/linform.mli: Ast Lp Relalg
