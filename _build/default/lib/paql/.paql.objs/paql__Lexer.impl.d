lib/paql/lexer.ml: Array Buffer Hashtbl List Printf String
