lib/paql/lexer.mli:
