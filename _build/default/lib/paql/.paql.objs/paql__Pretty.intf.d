lib/paql/pretty.mli: Ast Format
