lib/paql/linform.ml: Ast Hashtbl List Lp Option Relalg Result
