lib/paql/analyze.mli: Ast Relalg
