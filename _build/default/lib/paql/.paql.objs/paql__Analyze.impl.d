lib/paql/analyze.ml: Ast Linform List Option Printf Relalg
