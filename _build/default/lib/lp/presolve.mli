(** LP/ILP presolve: cheap problem reductions applied before the
    solver, mirroring what commercial solvers do on package ILPs.

    Reductions performed (to a fixed point):
    - {b empty rows}: a row with no coefficients is dropped if [0] lies
      in its range, otherwise the problem is infeasible;
    - {b fixed variables} ([lo = hi]): substituted into every row and
      the objective constant, then removed;
    - {b singleton rows} (one coefficient): converted into a bound on
      their variable and dropped;
    - {b forcing rows}: if the row's activity bounds (from variable
      bounds) already imply the row, it is dropped; if they contradict
      it, the problem is infeasible;
    - {b dominated variables}: a variable whose column is empty moves
      to whichever bound its objective prefers (integer-safely).

    The reduced problem's solutions map back to the original space via
    {!restore}. *)

type result =
  | Reduced of reduction
  | Proven_infeasible of string  (** which reduction proved it *)

and reduction = {
  problem : Problem.t;      (** the reduced problem *)
  var_map : int array;      (** reduced index -> original index *)
  fixed : (int * float) list;  (** original index, pinned value *)
  obj_offset : float;       (** objective constant from substitutions *)
}

(** [run p] applies the reductions. *)
val run : Problem.t -> result

(** [restore reduction x] lifts a reduced-space solution back to the
    original variable space. *)
val restore : reduction -> float array -> float array

(** Statistics for logging/benchmarks. *)
val dropped_rows : Problem.t -> reduction -> int
val dropped_vars : Problem.t -> reduction -> int
