let fpf = Printf.sprintf

let sanitize name =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_'
      then c
      else '_')
    name

(* Unique, MPS-safe names for variables and rows. *)
let make_names prefix raw =
  let seen = Hashtbl.create 16 in
  Array.mapi
    (fun i raw_name ->
      let base =
        if String.equal raw_name "" then fpf "%s%d" prefix i
        else sanitize raw_name
      in
      let name =
        if Hashtbl.mem seen base then fpf "%s_%d" base i else base
      in
      Hashtbl.add seen name ();
      name)
    raw

let num v = fpf "%.17g" v

let to_string (p : Problem.t) =
  let buf = Buffer.create 1024 in
  let line s = Buffer.add_string buf (s ^ "\n") in
  let vnames =
    make_names "x" (Array.map (fun v -> v.Problem.vname) p.Problem.vars)
  in
  let rnames =
    make_names "c" (Array.map (fun r -> r.Problem.rname) p.Problem.rows)
  in
  line "NAME          PKGQ";
  line "OBJSENSE";
  line
    (match p.Problem.sense with
    | Problem.Minimize -> "    MIN"
    | Problem.Maximize -> "    MAX");
  line "ROWS";
  line " N  OBJ";
  Array.iteri
    (fun i (r : Problem.row) ->
      let kind =
        if r.Problem.rlo = r.Problem.rhi then "E"
        else if r.Problem.rlo > neg_infinity && r.Problem.rhi < infinity then
          "L" (* two-sided: L row + RANGES entry *)
        else if r.Problem.rhi < infinity then "L"
        else if r.Problem.rlo > neg_infinity then "G"
        else "L" (* free row; harmless with +inf rhs handled below *)
      in
      line (fpf " %s  %s" kind rnames.(i)))
    p.Problem.rows;
  line "COLUMNS";
  let in_int = ref false in
  let marker on =
    if on then line "    MARKER                 'MARKER'                 'INTORG'"
    else line "    MARKER                 'MARKER'                 'INTEND'"
  in
  (* column-major traversal *)
  let per_col = Array.make (Problem.nvars p) [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      List.iter
        (fun (j, a) -> if a <> 0. then per_col.(j) <- (i, a) :: per_col.(j))
        r.Problem.coeffs)
    p.Problem.rows;
  Array.iteri
    (fun j (v : Problem.var) ->
      if v.Problem.integer && not !in_int then begin
        marker true;
        in_int := true
      end
      else if (not v.Problem.integer) && !in_int then begin
        marker false;
        in_int := false
      end;
      if v.Problem.obj <> 0. then
        line (fpf "    %s  OBJ  %s" vnames.(j) (num v.Problem.obj));
      List.iter
        (fun (i, a) -> line (fpf "    %s  %s  %s" vnames.(j) rnames.(i) (num a)))
        (List.rev per_col.(j));
      (* a column with no entries at all still needs to exist *)
      if v.Problem.obj = 0. && per_col.(j) = [] then
        line (fpf "    %s  OBJ  0" vnames.(j)))
    p.Problem.vars;
  if !in_int then marker false;
  line "RHS";
  Array.iteri
    (fun i (r : Problem.row) ->
      let rhs =
        if r.Problem.rlo = r.Problem.rhi then Some r.Problem.rlo
        else if r.Problem.rhi < infinity then Some r.Problem.rhi
        else if r.Problem.rlo > neg_infinity then Some r.Problem.rlo
        else None
      in
      match rhs with
      | Some v when v <> 0. -> line (fpf "    RHS  %s  %s" rnames.(i) (num v))
      | _ -> ())
    p.Problem.rows;
  line "RANGES";
  Array.iteri
    (fun i (r : Problem.row) ->
      if
        r.Problem.rlo > neg_infinity
        && r.Problem.rhi < infinity
        && r.Problem.rlo < r.Problem.rhi
      then
        (* L row with rhs = hi; range r makes it [hi - r, hi] *)
        line
          (fpf "    RNG  %s  %s" rnames.(i) (num (r.Problem.rhi -. r.Problem.rlo))))
    p.Problem.rows;
  line "BOUNDS";
  Array.iteri
    (fun j (v : Problem.var) ->
      let name = vnames.(j) in
      match v.Problem.lo > neg_infinity, v.Problem.hi < infinity with
      | true, true when v.Problem.lo = v.Problem.hi ->
        line (fpf " FX BND  %s  %s" name (num v.Problem.lo))
      | true, true ->
        line (fpf " LO BND  %s  %s" name (num v.Problem.lo));
        line (fpf " UP BND  %s  %s" name (num v.Problem.hi))
      | true, false ->
        line (fpf " LO BND  %s  %s" name (num v.Problem.lo));
        line (fpf " PL BND  %s" name)
      | false, true ->
        line (fpf " MI BND  %s" name);
        line (fpf " UP BND  %s  %s" name (num v.Problem.hi))
      | false, false -> line (fpf " FR BND  %s" name))
    p.Problem.vars;
  line "ENDATA";
  Buffer.contents buf

let write path p =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

type row_kind = KN | KL | KG | KE

type pending_row = {
  kind : row_kind;
  mutable coeffs : (int * float) list;  (* variable index, coefficient *)
  mutable rhs : float;
  mutable range : float option;
}

type pending_var = {
  mutable obj : float;
  mutable lo : float;
  mutable hi : float;
  mutable lo_set : bool;
  mutable hi_set : bool;
  mutable integer : bool;
  pvname : string;
}

let of_string s =
  let fail msg = invalid_arg ("Mps.of_string: " ^ msg) in
  let lines =
    String.split_on_char '\n' s
    |> List.map (fun l ->
           match String.index_opt l '\r' with
           | Some i -> String.sub l 0 i
           | None -> l)
    |> List.filter (fun l ->
           let t = String.trim l in
           t <> "" && t.[0] <> '*')
  in
  let sense = ref Problem.Minimize in
  let rows : (string, pending_row) Hashtbl.t = Hashtbl.create 16 in
  let row_order = ref [] in
  let vars : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let var_list = ref [] (* reversed pending_var list *) in
  let nvars = ref 0 in
  let obj_row = ref None in
  let var_index name =
    match Hashtbl.find_opt vars name with
    | Some j -> j
    | None ->
      let j = !nvars in
      Hashtbl.add vars name j;
      var_list :=
        { obj = 0.; lo = 0.; hi = infinity; lo_set = false; hi_set = false;
          integer = false; pvname = name }
        :: !var_list;
      incr nvars;
      j
  in
  let nth_var j = List.nth !var_list (!nvars - 1 - j) in
  let section = ref "" in
  let in_int = ref false in
  let float_of tok =
    match float_of_string_opt tok with
    | Some f -> f
    | None -> fail ("bad number " ^ tok)
  in
  List.iter
    (fun l ->
      let is_header = l.[0] <> ' ' && l.[0] <> '\t' in
      let toks =
        String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) l)
        |> List.filter (fun t -> t <> "")
      in
      if is_header then begin
        match toks with
        | "NAME" :: _ -> section := "NAME"
        | [ "OBJSENSE" ] -> section := "OBJSENSE"
        | "OBJSENSE" :: dir :: _ ->
          section := "OBJSENSE";
          sense :=
            (match String.uppercase_ascii dir with
            | "MAX" | "MAXIMIZE" -> Problem.Maximize
            | _ -> Problem.Minimize)
        | [ "ROWS" ] -> section := "ROWS"
        | [ "COLUMNS" ] -> section := "COLUMNS"
        | [ "RHS" ] -> section := "RHS"
        | [ "RANGES" ] -> section := "RANGES"
        | [ "BOUNDS" ] -> section := "BOUNDS"
        | [ "ENDATA" ] -> section := "ENDATA"
        | t :: _ -> fail ("unknown section " ^ t)
        | [] -> ()
      end
      else
        match !section with
        | "OBJSENSE" -> (
          match toks with
          | [ dir ] ->
            sense :=
              (match String.uppercase_ascii dir with
              | "MAX" | "MAXIMIZE" -> Problem.Maximize
              | _ -> Problem.Minimize)
          | _ -> fail "bad OBJSENSE")
        | "ROWS" -> (
          match toks with
          | [ kind; name ] ->
            let kind =
              match String.uppercase_ascii kind with
              | "N" -> KN
              | "L" -> KL
              | "G" -> KG
              | "E" -> KE
              | k -> fail ("unknown row kind " ^ k)
            in
            if kind = KN then begin
              if !obj_row = None then obj_row := Some name
            end
            else begin
              Hashtbl.add rows name
                { kind; coeffs = []; rhs = 0.; range = None };
              row_order := name :: !row_order
            end
          | _ -> fail "bad ROWS line")
        | "COLUMNS" ->
          if List.exists (fun t -> t = "'MARKER'") toks then begin
            if List.exists (fun t -> t = "'INTORG'") toks then in_int := true
            else if List.exists (fun t -> t = "'INTEND'") toks then
              in_int := false
          end
          else begin
            (* col row val [row val] *)
            match toks with
            | col :: rest ->
              let j = var_index col in
              let v = nth_var j in
              if !in_int then v.integer <- true;
              let rec pairs = function
                | rname :: value :: more ->
                  let f = float_of value in
                  (if Some rname = !obj_row then v.obj <- v.obj +. f
                   else
                     match Hashtbl.find_opt rows rname with
                     | Some r -> r.coeffs <- (j, f) :: r.coeffs
                     | None -> fail ("unknown row " ^ rname));
                  pairs more
                | [] -> ()
                | _ -> fail "odd COLUMNS entries"
              in
              pairs rest
            | [] -> ()
          end
        | "RHS" -> (
          match toks with
          | _rhsname :: rest ->
            let rec pairs = function
              | rname :: value :: more ->
                (match Hashtbl.find_opt rows rname with
                | Some r -> r.rhs <- float_of value
                | None -> if Some rname <> !obj_row then fail ("unknown row " ^ rname));
                pairs more
              | [] -> ()
              | _ -> fail "odd RHS entries"
            in
            pairs rest
          | [] -> ())
        | "RANGES" -> (
          match toks with
          | _name :: rest ->
            let rec pairs = function
              | rname :: value :: more ->
                (match Hashtbl.find_opt rows rname with
                | Some r -> r.range <- Some (float_of value)
                | None -> fail ("unknown row " ^ rname));
                pairs more
              | [] -> ()
              | _ -> fail "odd RANGES entries"
            in
            pairs rest
          | [] -> ())
        | "BOUNDS" -> (
          match toks with
          | kind :: _bnd :: col :: rest -> (
            let j = var_index col in
            let v = nth_var j in
            let value () =
              match rest with
              | value :: _ -> float_of value
              | [] -> fail "missing bound value"
            in
            match String.uppercase_ascii kind with
            | "UP" ->
              v.hi <- value ();
              v.hi_set <- true
            | "LO" ->
              v.lo <- value ();
              v.lo_set <- true
            | "FX" ->
              let f = value () in
              v.lo <- f;
              v.hi <- f;
              v.lo_set <- true;
              v.hi_set <- true
            | "FR" ->
              v.lo <- neg_infinity;
              v.hi <- infinity;
              v.lo_set <- true;
              v.hi_set <- true
            | "MI" ->
              v.lo <- neg_infinity;
              v.lo_set <- true
            | "PL" ->
              v.hi <- infinity;
              v.hi_set <- true
            | "BV" ->
              v.integer <- true;
              v.lo <- 0.;
              v.hi <- 1.;
              v.lo_set <- true;
              v.hi_set <- true
            | k -> fail ("unknown bound kind " ^ k))
          | _ -> fail "bad BOUNDS line")
        | "NAME" | "ENDATA" -> ()
        | s -> fail ("data outside a known section: " ^ s))
    lines;
  (* classic MPS: an integer column with no explicit upper bound
     defaults to [0, 1]; we honour that for third-party files (our own
     writer always sets bounds) *)
  let vars =
    List.rev_map
      (fun (v : pending_var) ->
        let hi = if v.integer && not v.hi_set then 1. else v.hi in
        Problem.var ~name:v.pvname ~integer:v.integer ~lo:v.lo ~hi v.obj)
      !var_list
  in
  let rows =
    List.rev_map
      (fun name ->
        let r = Hashtbl.find rows name in
        let lo, hi =
          match r.kind with
          | KE -> (
            match r.range with
            | None -> r.rhs, r.rhs
            | Some rng -> r.rhs, r.rhs +. Float.abs rng)
          | KL -> (
            match r.range with
            | None -> neg_infinity, r.rhs
            | Some rng -> r.rhs -. Float.abs rng, r.rhs)
          | KG -> (
            match r.range with
            | None -> r.rhs, infinity
            | Some rng -> r.rhs, r.rhs +. Float.abs rng)
          | KN -> neg_infinity, infinity
        in
        Problem.row ~name (List.rev r.coeffs) ~lo ~hi)
      !row_order
  in
  Problem.make ~sense:!sense ~vars ~rows

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))
