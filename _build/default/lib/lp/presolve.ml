type reduction = {
  problem : Problem.t;
  var_map : int array;
  fixed : (int * float) list;
  obj_offset : float;
}

type result =
  | Reduced of reduction
  | Proven_infeasible of string

let tol = 1e-9

let run (p : Problem.t) =
  let n = Problem.nvars p and m = Problem.nrows p in
  let vlo = Array.map (fun v -> v.Problem.lo) p.Problem.vars in
  let vhi = Array.map (fun v -> v.Problem.hi) p.Problem.vars in
  let valive = Array.make n true in
  let vfixed = Array.make n nan in
  let ralive = Array.make m true in
  let rlo = Array.map (fun r -> r.Problem.rlo) p.Problem.rows in
  let rhi = Array.map (fun r -> r.Problem.rhi) p.Problem.rows in
  let rcoeffs = Array.map (fun r -> ref r.Problem.coeffs) p.Problem.rows in
  let obj_offset = ref 0. in
  let infeasible = ref None in
  let declare_infeasible msg =
    if !infeasible = None then infeasible := Some msg
  in
  let fix_var j v =
    if valive.(j) then begin
      valive.(j) <- false;
      vfixed.(j) <- v;
      obj_offset := !obj_offset +. (p.Problem.vars.(j).Problem.obj *. v);
      for i = 0 to m - 1 do
        if ralive.(i) then begin
          let coeffs = !(rcoeffs.(i)) in
          match List.assoc_opt j coeffs with
          | None -> ()
          | Some a ->
            rcoeffs.(i) := List.filter (fun (k, _) -> k <> j) coeffs;
            if rlo.(i) > neg_infinity then rlo.(i) <- rlo.(i) -. (a *. v);
            if rhi.(i) < infinity then rhi.(i) <- rhi.(i) -. (a *. v)
        end
      done
    end
  in
  let tighten j lo hi =
    (* intersect, rounding inward for integer variables *)
    let lo, hi =
      if p.Problem.vars.(j).Problem.integer then
        ( (if lo > neg_infinity then Float.round (Float.ceil (lo -. tol)) else lo),
          if hi < infinity then Float.round (Float.floor (hi +. tol)) else hi )
      else lo, hi
    in
    if lo > vlo.(j) then vlo.(j) <- lo;
    if hi < vhi.(j) then vhi.(j) <- hi;
    if vlo.(j) > vhi.(j) +. tol then
      declare_infeasible
        (Printf.sprintf "variable %d has empty domain after tightening" j)
  in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !infeasible = None && !passes < 20 do
    incr passes;
    changed := false;
    (* fixed variables *)
    for j = 0 to n - 1 do
      if valive.(j) && vhi.(j) -. vlo.(j) <= tol then begin
        fix_var j vlo.(j);
        changed := true
      end
    done;
    (* row reductions *)
    for i = 0 to m - 1 do
      if ralive.(i) && !infeasible = None then begin
        let coeffs =
          List.filter (fun (j, a) -> valive.(j) && a <> 0.) !(rcoeffs.(i))
        in
        rcoeffs.(i) := coeffs;
        match coeffs with
        | [] ->
          if rlo.(i) > tol || rhi.(i) < -.tol then
            declare_infeasible
              (Printf.sprintf "row %d is empty with range excluding zero" i)
          else begin
            ralive.(i) <- false;
            changed := true
          end
        | [ (j, a) ] ->
          (* singleton row becomes a variable bound *)
          let b1 = rlo.(i) /. a and b2 = rhi.(i) /. a in
          let lo, hi = if a > 0. then b1, b2 else b2, b1 in
          tighten j lo hi;
          ralive.(i) <- false;
          changed := true
        | coeffs ->
          (* activity bounds from variable bounds *)
          let amin = ref 0. and amax = ref 0. in
          List.iter
            (fun (j, a) ->
              let l = vlo.(j) and h = vhi.(j) in
              if a > 0. then begin
                amin := !amin +. (a *. l);
                amax := !amax +. (a *. h)
              end
              else begin
                amin := !amin +. (a *. h);
                amax := !amax +. (a *. l)
              end)
            coeffs;
          if !amin > rhi.(i) +. tol || !amax < rlo.(i) -. tol then
            declare_infeasible
              (Printf.sprintf "row %d cannot be satisfied within bounds" i)
          else if !amin >= rlo.(i) -. tol && !amax <= rhi.(i) +. tol then begin
            (* redundant: implied by variable bounds *)
            ralive.(i) <- false;
            changed := true
          end
      end
    done;
    (* empty-column variables move to their preferred finite bound *)
    if !infeasible = None then begin
      let appears = Array.make n false in
      for i = 0 to m - 1 do
        if ralive.(i) then
          List.iter
            (fun (j, a) -> if a <> 0. && valive.(j) then appears.(j) <- true)
            !(rcoeffs.(i))
      done;
      for j = 0 to n - 1 do
        if valive.(j) && not appears.(j) then begin
          let c = p.Problem.vars.(j).Problem.obj in
          let sign =
            match p.Problem.sense with
            | Problem.Minimize -> c
            | Problem.Maximize -> -.c
          in
          let target =
            if sign > 0. then vlo.(j)
            else if sign < 0. then vhi.(j)
            else if vlo.(j) > neg_infinity then vlo.(j)
            else if vhi.(j) < infinity then vhi.(j)
            else 0.
          in
          if Float.abs target < infinity then begin
            fix_var j target;
            changed := true
          end
        end
      done
    end
  done;
  match !infeasible with
  | Some msg -> Proven_infeasible msg
  | None ->
    (* renumber surviving variables *)
    let var_map =
      Array.of_list (List.filter (fun j -> valive.(j)) (List.init n Fun.id))
    in
    let new_index = Array.make n (-1) in
    Array.iteri (fun k j -> new_index.(j) <- k) var_map;
    let vars =
      Array.to_list
        (Array.map
           (fun j -> { (p.Problem.vars.(j)) with Problem.lo = vlo.(j); hi = vhi.(j) })
           var_map)
    in
    let rows =
      List.filteri (fun i _ -> ralive.(i)) (List.init m Fun.id)
      |> List.map (fun i ->
             Problem.row
               ~name:p.Problem.rows.(i).Problem.rname
               (List.map (fun (j, a) -> (new_index.(j), a)) !(rcoeffs.(i)))
               ~lo:rlo.(i) ~hi:rhi.(i))
    in
    let fixed =
      List.filter_map
        (fun j -> if valive.(j) then None else Some (j, vfixed.(j)))
        (List.init n Fun.id)
    in
    Reduced
      {
        problem = Problem.make ~sense:p.Problem.sense ~vars ~rows;
        var_map;
        fixed;
        obj_offset = !obj_offset;
      }

let restore red x =
  let n = Array.length red.var_map + List.length red.fixed in
  let full = Array.make n 0. in
  Array.iteri (fun k j -> full.(j) <- x.(k)) red.var_map;
  List.iter (fun (j, v) -> full.(j) <- v) red.fixed;
  full

let dropped_rows p red = Problem.nrows p - Problem.nrows red.problem
let dropped_vars p red = Problem.nvars p - Problem.nvars red.problem
