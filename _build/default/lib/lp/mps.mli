(** MPS file input/output — the industry-standard LP/ILP exchange
    format (what one would feed to or dump from CPLEX). Supports the
    free-format subset needed for package ILPs:

    - [OBJSENSE] (MIN/MAX extension),
    - [ROWS] with N/L/G/E kinds,
    - [COLUMNS] with [INTORG]/[INTEND] integrality markers,
    - [RHS], [RANGES] (for two-sided rows), and
    - [BOUNDS] with UP/LO/FX/FR/MI/PL/BV.

    Bounds are always written explicitly for every variable, so the
    classic "integer columns default to an upper bound of 1" ambiguity
    never arises. Round-trip is exact up to float printing ([%.17g]). *)

(** [to_string p] renders the problem as MPS. Variables are named
    after [vname] when set (sanitized, uniquified), else [x<i>];
    rows likewise ([c<i>]). *)
val to_string : Problem.t -> string

val write : string -> Problem.t -> unit

(** [of_string s] parses an MPS document.
    @raise Invalid_argument on malformed input. *)
val of_string : string -> Problem.t

val read : string -> Problem.t
