lib/lp/simplex.ml: Array Float Format List Problem
