lib/lp/presolve.ml: Array Float Fun List Printf Problem
