lib/lp/problem.ml: Array Float Format List Printf
