lib/lp/mps.ml: Array Buffer Float Fun Hashtbl List Printf Problem String
