type sense = Minimize | Maximize

type var = {
  obj : float;
  lo : float;
  hi : float;
  integer : bool;
  vname : string;
}

type row = {
  coeffs : (int * float) list;
  rlo : float;
  rhi : float;
  rname : string;
}

type t = { sense : sense; vars : var array; rows : row array }

let var ?(name = "") ?(integer = false) ?(lo = 0.) ?(hi = infinity) obj =
  { obj; lo; hi; integer; vname = name }

let row ?(name = "") coeffs ~lo ~hi = { coeffs; rlo = lo; rhi = hi; rname = name }

let make ~sense ~vars ~rows =
  { sense; vars = Array.of_list vars; rows = Array.of_list rows }

let nvars p = Array.length p.vars
let nrows p = Array.length p.rows

let objective p x =
  let acc = ref 0. in
  Array.iteri (fun j v -> acc := !acc +. (v.obj *. x.(j))) p.vars;
  !acc

let row_value r x =
  List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0. r.coeffs

let feasible ?(tol = 1e-6) p x =
  Array.length x = nvars p
  && Array.for_all2
       (fun v xj ->
         xj >= v.lo -. tol && xj <= v.hi +. tol
         && ((not v.integer) || Float.abs (xj -. Float.round xj) <= tol))
       p.vars x
  && Array.for_all
       (fun r ->
         let v = row_value r x in
         v >= r.rlo -. tol && v <= r.rhi +. tol)
       p.rows

let validate p =
  let n = nvars p in
  let bad = ref None in
  Array.iteri
    (fun j v ->
      if !bad = None && v.lo > v.hi then
        bad := Some (Printf.sprintf "variable %d has lo > hi" j))
    p.vars;
  Array.iteri
    (fun i r ->
      if !bad = None then begin
        if r.rlo > r.rhi then
          bad := Some (Printf.sprintf "row %d has lo > hi" i);
        List.iter
          (fun (j, _) ->
            if !bad = None && (j < 0 || j >= n) then
              bad :=
                Some (Printf.sprintf "row %d references variable %d" i j))
          r.coeffs
      end)
    p.rows;
  match !bad with None -> Ok () | Some msg -> Error msg

let pp_bound ppf v =
  if v = infinity then Format.pp_print_string ppf "+inf"
  else if v = neg_infinity then Format.pp_print_string ppf "-inf"
  else Format.fprintf ppf "%g" v

let pp ppf p =
  let sense = match p.sense with Minimize -> "min" | Maximize -> "max" in
  Format.fprintf ppf "@[<v>%s: %d vars, %d rows@," sense (nvars p) (nrows p);
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "row %d [%a, %a]: %a@," i pp_bound r.rlo pp_bound
        r.rhi
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
           (fun ppf (j, a) -> Format.fprintf ppf "%g*x%d" a j))
        r.coeffs)
    p.rows;
  Format.fprintf ppf "@]"
