(** Linear (and integer-linear) program representation.

    A problem is [min/max c.x] subject to ranged rows
    [lo_i <= a_i . x <= hi_i] and variable bounds [lo_j <= x_j <= hi_j].
    Equality rows have [lo = hi]; one-sided rows use
    [neg_infinity] / [infinity]. Integrality is a per-variable flag,
    honoured by {!Ilp.Branch_bound} and ignored by the LP relaxation. *)

type sense = Minimize | Maximize

type var = {
  obj : float;
  lo : float;
  hi : float;
  integer : bool;
  vname : string;
}

type row = {
  coeffs : (int * float) list;  (** sparse (variable index, coefficient) *)
  rlo : float;
  rhi : float;
  rname : string;
}

type t = { sense : sense; vars : var array; rows : row array }

val make : sense:sense -> vars:var list -> rows:row list -> t

(** [var ?name ?integer ?lo ?hi obj] — defaults: continuous, [lo = 0.],
    [hi = infinity], name auto-assigned by position. *)
val var : ?name:string -> ?integer:bool -> ?lo:float -> ?hi:float -> float -> var

(** [row ?name coeffs ~lo ~hi]. *)
val row : ?name:string -> (int * float) list -> lo:float -> hi:float -> row

val nvars : t -> int
val nrows : t -> int

(** [objective p x] evaluates the objective at a point. *)
val objective : t -> float array -> float

(** [feasible ?tol p x] checks bounds, rows and integrality at [x]. *)
val feasible : ?tol:float -> t -> float array -> bool

(** [validate p] checks structural sanity (indices in range, lo <= hi);
    returns a diagnostic on failure. *)
val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
