(** Two-phase revised primal simplex for bounded-variable LPs.

    Designed for the package-query regime: few rows (one per global
    predicate), many columns (one per tuple). The basis is a dense
    [m x m] inverse, refactorized periodically; pricing is Dantzig with
    a Bland fallback after a run of degenerate pivots.

    Each ranged row [lo <= a.x <= hi] becomes [a.x - s = 0] with a slack
    bounded in [lo, hi]; phase 1 drives artificial variables (one per
    initially violated row) to zero. *)

type solution = {
  x : float array;      (** structural variable values *)
  obj : float;          (** objective in the problem's own sense *)
  iterations : int;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit

(** [solve ?max_iters ?tol p] solves the LP relaxation of [p]
    (integrality flags are ignored). [tol] is the feasibility/dual
    tolerance (default [1e-7]). *)
val solve : ?max_iters:int -> ?tol:float -> Problem.t -> result

val pp_result : Format.formatter -> result -> unit
