lib/ilp/branch_bound.ml: Array Cuts Float Format List Lp Problem Simplex Unix
