lib/ilp/iis.mli: Lp
