lib/ilp/cuts.mli: Lp
