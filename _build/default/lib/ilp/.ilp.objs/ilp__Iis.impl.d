lib/ilp/iis.ml: Array List Lp Problem Simplex
