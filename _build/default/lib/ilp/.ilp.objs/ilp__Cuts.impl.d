lib/ilp/cuts.ml: Array List Lp Problem
