(** Approximate irreducible infeasible subsystem (IIS) extraction by
    deletion filtering: drop each row in turn and keep it out whenever
    the LP relaxation stays infeasible. The surviving rows form a
    minimal (not necessarily minimum) infeasible row set.

    The paper (Section 4.4) uses the solver's IIS facility to decide
    which partitioning attributes to drop on false infeasibility. *)

(** [rows p] is the list of row indices forming an IIS of the LP
    relaxation of [p], or [None] when [p] is feasible. *)
val rows : Lp.Problem.t -> int list option
