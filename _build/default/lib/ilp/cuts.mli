(** Knapsack cover cuts — the classic branch-and-cut ingredient (the
    paper's solver, CPLEX, runs branch-and-cut [24]).

    For a row [sum a_j x_j <= b] over binary variables, a cover is a
    set C with [sum_{j in C} a_j > b]; every integer-feasible point
    then satisfies [sum_{j in C} x_j <= |C| - 1]. Separation is the
    standard greedy heuristic on the fractional LP point, after
    complementing negative coefficients; covers are shrunk to minimal
    before emission. Rows containing non-binary variables are skipped
    (no lifting is attempted). Both sides of ranged/equality rows are
    separated. *)

(** [cover_cuts p x] returns violated cover inequalities at the LP
    point [x] (possibly none). Every returned row is valid for all
    integer-feasible points of [p]. *)
val cover_cuts : Lp.Problem.t -> float array -> Lp.Problem.row list
