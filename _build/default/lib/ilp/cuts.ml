open Lp

let tol = 1e-6

let is_binary (v : Problem.var) =
  v.Problem.integer && v.Problem.lo = 0. && v.Problem.hi = 1.

(* Separate one <=-form inequality [sum a_j x_j <= b] over binary
   variables at the fractional point [x]. *)
let separate_le vars x coeffs b =
  (* complement negatives so all working coefficients are positive:
     x_j with a_j < 0 is replaced by y_j = 1 - x_j *)
  let terms =
    List.filter_map
      (fun (j, a) ->
        if a = 0. then None
        else if a > 0. then Some (j, a, false, x.(j))
        else Some (j, -.a, true, 1. -. x.(j)))
      coeffs
  in
  let b' =
    List.fold_left
      (fun acc (j, a) ->
        ignore j;
        if a < 0. then acc -. a else acc)
      b coeffs
  in
  ignore vars;
  let total = List.fold_left (fun acc (_, a, _, _) -> acc +. a) 0. terms in
  if total <= b' +. tol then None (* no cover exists *)
  else begin
    (* greedy cover: take items with y* close to 1 first (cheapest to
       violate), weighted by coefficient *)
    let sorted =
      List.sort
        (fun (_, a1, _, y1) (_, a2, _, y2) ->
          compare ((1. -. y1) /. a1) ((1. -. y2) /. a2))
        terms
    in
    let cover = ref [] and weight = ref 0. in
    (try
       List.iter
         (fun ((_, a, _, _) as t) ->
           cover := t :: !cover;
           weight := !weight +. a;
           if !weight > b' +. 1e-9 then raise Exit)
         sorted
     with Exit -> ());
    if !weight <= b' +. 1e-9 then None
    else begin
      (* shrink to a minimal cover: drop members whose removal keeps
         the cover property, largest coefficients first *)
      let members =
        List.sort (fun (_, a1, _, _) (_, a2, _, _) -> compare a2 a1) !cover
      in
      let kept =
        List.filter
          (fun (_, a, _, _) ->
            if !weight -. a > b' +. 1e-9 then begin
              weight := !weight -. a;
              false
            end
            else true)
          members
      in
      let size = List.length kept in
      (* violation test: sum y*_j > |C| - 1 *)
      let lhs = List.fold_left (fun acc (_, _, _, y) -> acc +. y) 0. kept in
      if lhs <= float_of_int (size - 1) +. tol then None
      else begin
        (* translate back: sum_{pos} x_j + sum_{neg} (1 - x_j) <= |C|-1 *)
        let complemented =
          List.fold_left
            (fun acc (_, _, compl_, _) -> if compl_ then acc + 1 else acc)
            0 kept
        in
        let cut_coeffs =
          List.map
            (fun (j, _, compl_, _) -> (j, if compl_ then -1. else 1.))
            kept
        in
        let rhs = float_of_int (size - 1 - complemented) in
        Some (Problem.row ~name:"cover" cut_coeffs ~lo:neg_infinity ~hi:rhs)
      end
    end
  end

let cover_cuts (p : Problem.t) x =
  let vars = p.Problem.vars in
  let cuts = ref [] in
  Array.iter
    (fun (r : Problem.row) ->
      let all_binary =
        List.for_all (fun (j, a) -> a = 0. || is_binary vars.(j)) r.Problem.coeffs
      in
      if all_binary && r.Problem.coeffs <> [] then begin
        (* <= side *)
        if r.Problem.rhi < infinity then begin
          match separate_le vars x r.Problem.coeffs r.Problem.rhi with
          | Some cut -> cuts := cut :: !cuts
          | None -> ()
        end;
        (* >= side, negated into <= form *)
        if r.Problem.rlo > neg_infinity then begin
          let neg = List.map (fun (j, a) -> (j, -.a)) r.Problem.coeffs in
          match separate_le vars x neg (-.r.Problem.rlo) with
          | Some cut -> cuts := cut :: !cuts
          | None -> ()
        end
      end)
    p.Problem.rows;
  List.rev !cuts
