open Lp

let is_infeasible p =
  match Simplex.solve p with Simplex.Infeasible -> true | _ -> false

let rows (p : Problem.t) =
  if not (is_infeasible p) then None
  else begin
    let m = Problem.nrows p in
    let kept = Array.make m true in
    let restricted () =
      let rows =
        List.filteri (fun i _ -> kept.(i)) (Array.to_list p.Problem.rows)
      in
      { p with Problem.rows = Array.of_list rows }
    in
    for i = 0 to m - 1 do
      kept.(i) <- false;
      if not (is_infeasible (restricted ())) then kept.(i) <- true
    done;
    let out = ref [] in
    for i = m - 1 downto 0 do
      if kept.(i) then out := i :: !out
    done;
    Some !out
  end
