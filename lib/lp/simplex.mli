(** Two-phase revised primal simplex for bounded-variable LPs, plus a
    bounded-variable dual simplex for warm restarts from a saved basis.

    Designed for the package-query regime: few rows (one per global
    predicate), many columns (one per tuple). The basis is a dense
    [m x m] inverse, refactorized periodically; pricing is Dantzig with
    a Bland fallback after a run of degenerate pivots.

    Each ranged row [lo <= a.x <= hi] becomes [a.x - s = 0] with a slack
    bounded in [lo, hi]; phase 1 drives artificial variables (one per
    initially violated row) to zero.

    {2 Warm starts}

    [Optimal] solutions carry an opaque {!Basis.t}. Feeding it back via
    {!resolve} on a problem with the same shape but different bounds or
    objective re-enters the solver at that basis: dual pivots restore
    primal feasibility, then primal phase 2 finishes. Every failure
    mode of the warm path (wrong dimensions, singular or inconsistent
    basis, stall, any non-optimal dual outcome) degrades to an internal
    cold {!solve}, so a stale basis can cost time but never change an
    answer.

    {2 Parallel pricing}

    When [PKGQ_PRICE_WORKERS > 1] (or {!set_price_workers}) and the
    problem is wide enough, the reduced-cost scan is striped over a
    persistent domain pool in fixed-size chunks. Candidate selection is
    a total order ((|d|) desc, column asc — and the dual analogue), so
    the chosen pivot is bit-identical at any worker count. *)

(** A saved simplex basis over the structural + slack columns. *)
module Basis : sig
  type t

  (** [(nvars, nrows)] of the problem the basis was saved from. *)
  val dims : t -> int * int

  (** Fault-injection helper: returns a structurally valid but singular
      basis, which {!resolve} must reject into a cold solve. *)
  val corrupt : t -> t
end

type solution = {
  x : float array;      (** structural variable values *)
  obj : float;          (** objective in the problem's own sense *)
  iterations : int;
  basis : Basis.t option;
      (** optimal basis for later {!resolve}; [None] when an artificial
          column was left basic *)
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit

(** Default pivot budget for a problem: [20_000 + 4 * (nvars + nrows)]. *)
val default_max_iters : Problem.t -> int

(** [solve ?max_iters ?tol ?deadline ?iterations p] solves the LP
    relaxation of [p] (integrality flags are ignored). [tol] is the
    feasibility/dual tolerance (default [1e-7]). [deadline] is an
    absolute wall-clock time ([Unix.gettimeofday] scale) polled every
    128 pivots; crossing it returns [Iter_limit]. [iterations], when
    given, is incremented by the number of pivots performed on {e
    every} exit path — including [Infeasible], [Unbounded] and
    [Iter_limit], which carry no solution record of their own. *)
val solve :
  ?max_iters:int ->
  ?tol:float ->
  ?deadline:float ->
  ?iterations:int ref ->
  Problem.t ->
  result

(** [resolve ?basis ...] is {!solve} that warm-starts from [basis] when
    one is given (and warm starts are enabled). Same budget semantics
    as {!solve}; dual pivots count against the same [max_iters] /
    [iterations] budget, and pivots burned by a rejected warm attempt
    are charged before the internal cold fallback runs. *)
val resolve :
  ?basis:Basis.t ->
  ?max_iters:int ->
  ?tol:float ->
  ?deadline:float ->
  ?iterations:int ref ->
  Problem.t ->
  result

val pp_result : Format.formatter -> result -> unit

(** {2 Knobs} *)

(** Master switch for warm starts (env [PKGQ_WARM], default on). With
    warm starts off, {!resolve} ignores its basis and solves cold. *)
val warm_enabled : unit -> bool

val set_warm_enabled : bool -> unit

(** Pricing worker count (env [PKGQ_PRICE_WORKERS], default 1).
    {!set_price_workers} tears down and re-sizes the shared pricing
    pool; call it only between solves. *)
val price_workers : unit -> int

val set_price_workers : int -> unit

(** {2 Counters}

    Process-wide, monotonic, thread-safe. *)

type counters = {
  pivots : int;  (** primal pivots (both phases) *)
  dual_pivots : int;
  refactorizations : int;
  cold_solves : int;  (** [solve] entries, including warm fallbacks *)
  warm_attempts : int;  (** [resolve] entries that had a usable basis *)
  warm_hits : int;  (** warm attempts that finished without falling cold *)
}

val counters : unit -> counters
val reset_counters : unit -> unit
