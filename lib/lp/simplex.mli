(** Two-phase revised primal simplex for bounded-variable LPs.

    Designed for the package-query regime: few rows (one per global
    predicate), many columns (one per tuple). The basis is a dense
    [m x m] inverse, refactorized periodically; pricing is Dantzig with
    a Bland fallback after a run of degenerate pivots.

    Each ranged row [lo <= a.x <= hi] becomes [a.x - s = 0] with a slack
    bounded in [lo, hi]; phase 1 drives artificial variables (one per
    initially violated row) to zero. *)

type solution = {
  x : float array;      (** structural variable values *)
  obj : float;          (** objective in the problem's own sense *)
  iterations : int;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit

(** Default pivot budget for a problem: [20_000 + 4 * (nvars + nrows)]. *)
val default_max_iters : Problem.t -> int

(** [solve ?max_iters ?tol ?deadline ?iterations p] solves the LP
    relaxation of [p] (integrality flags are ignored). [tol] is the
    feasibility/dual tolerance (default [1e-7]). [deadline] is an
    absolute wall-clock time ([Unix.gettimeofday] scale) polled every
    128 pivots; crossing it returns [Iter_limit]. [iterations], when
    given, is incremented by the number of pivots performed on {e
    every} exit path — including [Infeasible], [Unbounded] and
    [Iter_limit], which carry no solution record of their own. *)
val solve :
  ?max_iters:int ->
  ?tol:float ->
  ?deadline:float ->
  ?iterations:int ref ->
  Problem.t ->
  result

val pp_result : Format.formatter -> result -> unit
