type solution = { x : float array; obj : float; iterations : int }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit

type nb_kind = At_lower | At_upper | Free_zero

type vstat = Basic | Nonbasic of nb_kind

(* Mutable solver state over the augmented column set:
   [0, n)          structural variables
   [n, n + m)      slacks (column -e_i, bounds = row range)
   [n + m, ncols)  phase-1 artificials (column +/- e_i, bounds [0, 0+]) *)
type state = {
  m : int;
  ncols : int;
  cols : (int * float) array array;
  lo : float array;
  hi : float array;
  cost : float array; (* phase-dependent *)
  status : vstat array;
  xval : float array;
  basis : int array;
  binv : float array array;
  y : float array; (* scratch: duals *)
  w : float array; (* scratch: B^-1 A_q *)
  tol : float;
}

let pp_result ppf = function
  | Optimal s -> Format.fprintf ppf "optimal obj=%g iters=%d" s.obj s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iter_limit -> Format.pp_print_string ppf "iteration limit"

exception Singular_basis

(* Rebuild binv = B^-1 from scratch by Gauss-Jordan with partial
   pivoting. The basis matrix has the columns [basis.(i)]. *)
let refactorize st =
  let m = st.m in
  let b = Array.make_matrix m m 0. in
  for i = 0 to m - 1 do
    Array.iter (fun (r, a) -> b.(r).(i) <- a) st.cols.(st.basis.(i))
  done;
  (* initialize binv to identity *)
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      st.binv.(i).(j) <- (if i = j then 1. else 0.)
    done
  done;
  for col = 0 to m - 1 do
    (* partial pivot *)
    let piv = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs b.(r).(col) > Float.abs b.(!piv).(col) then piv := r
    done;
    if Float.abs b.(!piv).(col) < 1e-12 then raise Singular_basis;
    if !piv <> col then begin
      let tmp = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tmp;
      let tmp = st.binv.(col) in
      st.binv.(col) <- st.binv.(!piv);
      st.binv.(!piv) <- tmp
    end;
    let d = b.(col).(col) in
    for j = 0 to m - 1 do
      b.(col).(j) <- b.(col).(j) /. d;
      st.binv.(col).(j) <- st.binv.(col).(j) /. d
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = b.(r).(col) in
        if f <> 0. then
          for j = 0 to m - 1 do
            b.(r).(j) <- b.(r).(j) -. (f *. b.(col).(j));
            st.binv.(r).(j) <- st.binv.(r).(j) -. (f *. st.binv.(col).(j))
          done
      end
    done
  done

(* Recompute basic variable values: B x_B = -N x_N (all row RHS are 0
   in the slack formulation). *)
let recompute_basics st =
  let m = st.m in
  let rhs = Array.make m 0. in
  for j = 0 to st.ncols - 1 do
    match st.status.(j) with
    | Basic -> ()
    | Nonbasic _ ->
      let v = st.xval.(j) in
      if v <> 0. then
        Array.iter (fun (r, a) -> rhs.(r) <- rhs.(r) -. (a *. v)) st.cols.(j)
  done;
  for i = 0 to m - 1 do
    let acc = ref 0. in
    for k = 0 to m - 1 do
      acc := !acc +. (st.binv.(i).(k) *. rhs.(k))
    done;
    st.xval.(st.basis.(i)) <- !acc
  done

let compute_duals st =
  let m = st.m in
  for k = 0 to m - 1 do
    let acc = ref 0. in
    for i = 0 to m - 1 do
      let c = st.cost.(st.basis.(i)) in
      if c <> 0. then acc := !acc +. (c *. st.binv.(i).(k))
    done;
    st.y.(k) <- !acc
  done

let reduced_cost st j =
  let acc = ref st.cost.(j) in
  Array.iter (fun (r, a) -> acc := !acc -. (st.y.(r) *. a)) st.cols.(j);
  !acc

(* Price nonbasic columns; return the entering column and its direction
   (+1. increase / -1. decrease), or None at optimality. *)
let price st ~bland =
  let best = ref None and best_score = ref st.tol in
  let consider j d dir =
    if bland then begin
      if !best = None then best := Some (j, dir)
    end
    else begin
      let score = Float.abs d in
      if score > !best_score then begin
        best_score := score;
        best := Some (j, dir)
      end
    end
  in
  (try
     for j = 0 to st.ncols - 1 do
       match st.status.(j) with
       | Basic -> ()
       | Nonbasic kind ->
         if st.hi.(j) -. st.lo.(j) > st.tol then begin
           let d = reduced_cost st j in
           (match kind with
           | At_lower -> if d < -.st.tol then consider j d 1.
           | At_upper -> if d > st.tol then consider j d (-1.)
           | Free_zero ->
             if d < -.st.tol then consider j d 1.
             else if d > st.tol then consider j d (-1.));
           if bland && !best <> None then raise Exit
         end
     done
   with Exit -> ());
  !best

(* w := B^-1 A_q *)
let ftran st q =
  let m = st.m in
  for i = 0 to m - 1 do
    st.w.(i) <- 0.
  done;
  Array.iter
    (fun (r, a) ->
      for i = 0 to m - 1 do
        st.w.(i) <- st.w.(i) +. (st.binv.(i).(r) *. a)
      done)
    st.cols.(q)

type step =
  | Bound_flip of float
  | Pivot of int * float * nb_kind (* leaving row, step, leaving status *)
  | Ray (* unbounded direction *)

(* Ratio test: entering q moves by [t >= 0] in direction [dir]; basic i
   changes by [-dir * w_i * t]. *)
let ratio_test st q dir =
  let span = st.hi.(q) -. st.lo.(q) in
  let t = ref (if span < infinity then span else infinity) in
  let leaving = ref (-1) and leave_to = ref At_lower and leave_g = ref 0. in
  for i = 0 to st.m - 1 do
    let g = dir *. st.w.(i) in
    let b = st.basis.(i) in
    if g > st.tol then begin
      let slack = st.xval.(b) -. st.lo.(b) in
      if st.lo.(b) > neg_infinity then begin
        let limit = Float.max 0. (slack /. g) in
        if
          limit < !t -. st.tol
          || (limit < !t +. st.tol && Float.abs g > Float.abs !leave_g)
        then begin
          t := limit;
          leaving := i;
          leave_to := At_lower;
          leave_g := g
        end
      end
    end
    else if g < -.st.tol then begin
      if st.hi.(b) < infinity then begin
        let slack = st.hi.(b) -. st.xval.(b) in
        let limit = Float.max 0. (slack /. -.g) in
        if
          limit < !t -. st.tol
          || (limit < !t +. st.tol && Float.abs g > Float.abs !leave_g)
        then begin
          t := limit;
          leaving := i;
          leave_to := At_upper;
          leave_g := g
        end
      end
    end
  done;
  if !t = infinity then Ray
  else if !leaving = -1 then Bound_flip !t
  else Pivot (!leaving, !t, !leave_to)

let apply_step st q dir t =
  (* move entering variable and update basics *)
  st.xval.(q) <- st.xval.(q) +. (dir *. t);
  if t <> 0. then
    for i = 0 to st.m - 1 do
      let b = st.basis.(i) in
      st.xval.(b) <- st.xval.(b) -. (dir *. st.w.(i) *. t)
    done

(* Replace basis.(r) by q and update binv with an eta transformation. *)
let update_basis st r q =
  let m = st.m in
  let wr = st.w.(r) in
  let br = st.binv.(r) in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) /. wr
  done;
  for i = 0 to m - 1 do
    if i <> r then begin
      let f = st.w.(i) in
      if f <> 0. then begin
        let bi = st.binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done
      end
    end
  done;
  st.basis.(r) <- q

type loop_outcome = L_optimal | L_unbounded | L_iter_limit

(* Core iteration loop shared by both phases. The wall-clock deadline is
   polled every 128 iterations so a single LP solve cannot overshoot a
   propagated budget by more than a handful of pivots. *)
let iterate st ~max_iters ?deadline iters_ref =
  let degen = ref 0 in
  let bland = ref false in
  let since_refactor = ref 0 in
  let outcome = ref None in
  let past_deadline () =
    match deadline with
    | None -> false
    | Some d -> !iters_ref land 127 = 0 && Unix.gettimeofday () > d
  in
  while !outcome = None do
    if !iters_ref >= max_iters || past_deadline () then
      outcome := Some L_iter_limit
    else begin
      incr iters_ref;
      if !since_refactor >= 100 then begin
        refactorize st;
        recompute_basics st;
        since_refactor := 0
      end;
      compute_duals st;
      match price st ~bland:!bland with
      | None -> outcome := Some L_optimal
      | Some (q, dir) -> (
        ftran st q;
        match ratio_test st q dir with
        | Ray -> outcome := Some L_unbounded
        | Bound_flip t ->
          apply_step st q dir t;
          st.status.(q) <-
            (match st.status.(q) with
            | Nonbasic At_lower -> Nonbasic At_upper
            | Nonbasic At_upper -> Nonbasic At_lower
            | Nonbasic Free_zero | Basic ->
              (* a free column cannot bound-flip: its span is infinite *)
              assert false);
          (* snap to the exact bound to avoid drift *)
          st.xval.(q) <-
            (match st.status.(q) with
            | Nonbasic At_lower -> st.lo.(q)
            | Nonbasic At_upper -> st.hi.(q)
            | _ -> st.xval.(q));
          degen := 0;
          bland := false
        | Pivot (r, t, leave_to) ->
          let leaver = st.basis.(r) in
          apply_step st q dir t;
          st.status.(q) <- Basic;
          st.status.(leaver) <- Nonbasic leave_to;
          st.xval.(leaver) <-
            (match leave_to with
            | At_lower -> st.lo.(leaver)
            | At_upper -> st.hi.(leaver)
            | Free_zero -> 0.);
          update_basis st r q;
          incr since_refactor;
          if t <= st.tol then begin
            incr degen;
            if !degen > 64 then bland := true
          end
          else begin
            degen := 0;
            bland := false
          end)
    end
  done;
  match !outcome with Some o -> o | None -> assert false

let current_cost st =
  let acc = ref 0. in
  for j = 0 to st.ncols - 1 do
    if st.cost.(j) <> 0. then acc := !acc +. (st.cost.(j) *. st.xval.(j))
  done;
  !acc

let default_max_iters (p : Problem.t) =
  20_000 + (4 * (Problem.nvars p + Problem.nrows p))

let solve ?max_iters ?(tol = 1e-7) ?deadline ?iterations (p : Problem.t) =
  (match Problem.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Simplex.solve: " ^ msg));
  let n = Problem.nvars p and m = Problem.nrows p in
  let max_iters =
    match max_iters with Some k -> k | None -> default_max_iters p
  in
  let maxcols = n + m + m in
  let cols = Array.make maxcols [||] in
  let lo = Array.make maxcols 0. and hi = Array.make maxcols 0. in
  let cost = Array.make maxcols 0. in
  let status = Array.make maxcols (Nonbasic At_lower) in
  let xval = Array.make maxcols 0. in
  let sense_sign =
    match p.Problem.sense with Problem.Minimize -> 1. | Problem.Maximize -> -1.
  in
  (* transpose rows into structural columns *)
  let per_col : (int * float) list array = Array.make n [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      List.iter
        (fun (j, a) -> if a <> 0. then per_col.(j) <- (i, a) :: per_col.(j))
        r.Problem.coeffs)
    p.Problem.rows;
  for j = 0 to n - 1 do
    let v = p.Problem.vars.(j) in
    cols.(j) <- Array.of_list (List.rev per_col.(j));
    lo.(j) <- v.Problem.lo;
    hi.(j) <- v.Problem.hi;
    cost.(j) <- sense_sign *. v.Problem.obj;
    (* initial nonbasic position: nearest finite bound, else free at 0 *)
    if v.Problem.lo > neg_infinity then begin
      status.(j) <- Nonbasic At_lower;
      xval.(j) <- v.Problem.lo
    end
    else if v.Problem.hi < infinity then begin
      status.(j) <- Nonbasic At_upper;
      xval.(j) <- v.Problem.hi
    end
    else begin
      status.(j) <- Nonbasic Free_zero;
      xval.(j) <- 0.
    end
  done;
  (* slacks *)
  for i = 0 to m - 1 do
    let r = p.Problem.rows.(i) in
    let j = n + i in
    cols.(j) <- [| (i, -1.) |];
    lo.(j) <- r.Problem.rlo;
    hi.(j) <- r.Problem.rhi;
    cost.(j) <- 0.
  done;
  (* initial row activities under the nonbasic point *)
  let activity = Array.make m 0. in
  Array.iteri
    (fun i (r : Problem.row) ->
      activity.(i) <-
        List.fold_left (fun acc (j, a) -> acc +. (a *. xval.(j))) 0.
          r.Problem.coeffs)
    p.Problem.rows;
  let basis = Array.make (max m 1) 0 in
  let nart = ref 0 in
  for i = 0 to m - 1 do
    let sj = n + i in
    let act = activity.(i) in
    if act >= lo.(sj) -. tol && act <= hi.(sj) +. tol then begin
      (* slack can absorb the activity: make it basic *)
      basis.(i) <- sj;
      status.(sj) <- Basic;
      xval.(sj) <- act
    end
    else begin
      (* clamp the slack at its nearest bound and cover the violation
         with an artificial *)
      let bound, kind =
        if act < lo.(sj) then lo.(sj), At_lower else hi.(sj), At_upper
      in
      status.(sj) <- Nonbasic kind;
      xval.(sj) <- bound;
      let resid = act -. bound in
      (* row equation: a.x - s + g*z = 0, want z = |resid| >= 0 *)
      let g = if resid > 0. then -1. else 1. in
      let zj = n + m + !nart in
      incr nart;
      cols.(zj) <- [| (i, g) |];
      lo.(zj) <- 0.;
      hi.(zj) <- infinity;
      cost.(zj) <- 0.;
      status.(zj) <- Basic;
      xval.(zj) <- Float.abs resid;
      basis.(i) <- zj
    end
  done;
  let ncols = n + m + !nart in
  let st =
    {
      m;
      ncols;
      cols;
      lo;
      hi;
      cost;
      status;
      xval;
      basis;
      binv = Array.make_matrix (max m 1) (max m 1) 0.;
      y = Array.make (max m 1) 0.;
      w = Array.make (max m 1) 0.;
      tol;
    }
  in
  let iters = ref 0 in
  let record result =
    (match iterations with Some acc -> acc := !acc + !iters | None -> ());
    result
  in
  let finish () =
    let x = Array.sub st.xval 0 n in
    Optimal { x; obj = Problem.objective p x; iterations = !iters }
  in
  record
  @@
  if m = 0 then begin
    (* No rows: each variable sits at the bound its cost prefers. *)
    let unbounded = ref false in
    for j = 0 to n - 1 do
      let c = st.cost.(j) in
      if c > 0. then
        if st.lo.(j) > neg_infinity then st.xval.(j) <- st.lo.(j)
        else unbounded := true
      else if c < 0. then
        if st.hi.(j) < infinity then st.xval.(j) <- st.hi.(j)
        else unbounded := true
    done;
    if !unbounded then Unbounded else finish ()
  end
  else begin
    refactorize st;
    (* Phase 1: minimize the sum of artificials. *)
    let result =
      if !nart > 0 then begin
        (* phase-1 objective: artificials only *)
        let saved_costs = Array.sub st.cost 0 n in
        for j = 0 to n - 1 do
          st.cost.(j) <- 0.
        done;
        for z = n + m to ncols - 1 do
          st.cost.(z) <- 1.
        done;
        let restore () = Array.blit saved_costs 0 st.cost 0 n in
        match iterate st ~max_iters ?deadline iters with
        | L_iter_limit -> Some Iter_limit
        | L_unbounded ->
          (* phase-1 objective is bounded below by zero *)
          Some Infeasible
        | L_optimal ->
          if current_cost st > Float.max 1e-7 (tol *. 10.) then Some Infeasible
          else begin
            (* pin artificials at zero and restore true costs *)
            restore ();
            for z = n + m to ncols - 1 do
              st.cost.(z) <- 0.;
              st.hi.(z) <- 0.;
              if st.status.(z) <> Basic then begin
                st.status.(z) <- Nonbasic At_lower;
                st.xval.(z) <- 0.
              end
            done;
            None
          end
      end
      else None
    in
    match result with
    | Some r -> r
    | None -> (
      (* Phase 2 with the real costs. *)
      match iterate st ~max_iters ?deadline iters with
      | L_iter_limit -> Iter_limit
      | L_unbounded -> Unbounded
      | L_optimal ->
        refactorize st;
        recompute_basics st;
        finish ())
  end
