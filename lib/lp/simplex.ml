type nb_kind = At_lower | At_upper | Free_zero

type vstat = Basic | Nonbasic of nb_kind

module Basis = struct
  (* Snapshot of a simplex basis over the structural + slack columns:
     which column occupies each basis row, plus the resting side of
     every nonbasic column. Opaque to callers; [resolve] validates it
     against the problem it is applied to and degrades to a cold solve
     whenever it does not fit. *)
  type t = {
    bn : int; (* structural variables *)
    bm : int; (* rows *)
    vstat : vstat array; (* length bn + bm *)
    rows : int array; (* length bm: column occupying each basis row *)
  }

  let dims b = (b.bn, b.bm)

  (* Fault-injection helper: name the same column on every basis row,
     which makes the basis matrix singular and forces the warm path
     through its rejection branch. *)
  let corrupt b =
    if b.bm = 0 then b else { b with rows = Array.make b.bm b.rows.(0) }
end

type solution = {
  x : float array;
  obj : float;
  iterations : int;
  basis : Basis.t option;
}

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iter_limit

let pp_result ppf = function
  | Optimal s -> Format.fprintf ppf "optimal obj=%g iters=%d" s.obj s.iterations
  | Infeasible -> Format.pp_print_string ppf "infeasible"
  | Unbounded -> Format.pp_print_string ppf "unbounded"
  | Iter_limit -> Format.pp_print_string ppf "iteration limit"

(* ------------------------------------------------------------------ *)
(* Global solver counters (process-wide, thread-safe).                 *)

let c_pivots = Atomic.make 0
let c_dual_pivots = Atomic.make 0
let c_refactorizations = Atomic.make 0
let c_cold_solves = Atomic.make 0
let c_warm_attempts = Atomic.make 0
let c_warm_hits = Atomic.make 0

type counters = {
  pivots : int;
  dual_pivots : int;
  refactorizations : int;
  cold_solves : int;
  warm_attempts : int;
  warm_hits : int;
}

let counters () =
  {
    pivots = Atomic.get c_pivots;
    dual_pivots = Atomic.get c_dual_pivots;
    refactorizations = Atomic.get c_refactorizations;
    cold_solves = Atomic.get c_cold_solves;
    warm_attempts = Atomic.get c_warm_attempts;
    warm_hits = Atomic.get c_warm_hits;
  }

let reset_counters () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      c_pivots;
      c_dual_pivots;
      c_refactorizations;
      c_cold_solves;
      c_warm_attempts;
      c_warm_hits;
    ]

(* ------------------------------------------------------------------ *)
(* Knobs: warm-start master switch and pricing worker count.           *)

let truthy s =
  match String.lowercase_ascii (String.trim s) with
  | "0" | "off" | "false" | "no" -> false
  | _ -> true

let warm_flag =
  Atomic.make
    (match Sys.getenv_opt "PKGQ_WARM" with Some s -> truthy s | None -> true)

let warm_enabled () = Atomic.get warm_flag
let set_warm_enabled b = Atomic.set warm_flag b

let workers_flag =
  Atomic.make
    (match Sys.getenv_opt "PKGQ_PRICE_WORKERS" with
    | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> 1)
    | None -> 1)

let price_workers () = Atomic.get workers_flag

(* Columns are priced in fixed-size chunks; the chunk size is
   deliberately independent of the worker count (same idiom as
   Relalg.Scan) and selection is a total order, so any execution
   schedule returns the same entering column. *)
let price_chunk = 4096

(* Parallel pricing only pays for itself on wide problems: below this
   many columns the scan is cheaper than a pool round-trip. *)
let parallel_threshold = 8192

(* ------------------------------------------------------------------ *)
(* A small persistent worker pool for pricing scans. Workers idle on a
   condition variable between solves; one solve at a time may hold the
   pool (concurrent solves fall back to serial pricing, which returns
   identical results). *)

module Pool = struct
  type t = {
    mu : Mutex.t;
    work : Condition.t;
    idle : Condition.t;
    mutable job : (int -> unit) option;
    mutable gen : int;
    mutable next : int;
    mutable nchunks : int;
    mutable pending : int;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
  }

  (* Claim and run chunks until none remain. Called (and returns) with
     [t.mu] held. *)
  let rec drain t f =
    if t.next < t.nchunks then begin
      let i = t.next in
      t.next <- t.next + 1;
      Mutex.unlock t.mu;
      f i;
      Mutex.lock t.mu;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      drain t f
    end

  let worker t =
    let seen = ref 0 in
    Mutex.lock t.mu;
    let rec loop () =
      if t.stop then Mutex.unlock t.mu
      else begin
        (match t.job with
        | Some f when t.gen <> !seen ->
          seen := t.gen;
          drain t f
        | _ -> Condition.wait t.work t.mu);
        loop ()
      end
    in
    loop ()

  let create size =
    let t =
      {
        mu = Mutex.create ();
        work = Condition.create ();
        idle = Condition.create ();
        job = None;
        gen = 0;
        next = 0;
        nchunks = 0;
        pending = 0;
        stop = false;
        domains = [];
      }
    in
    t.domains <- List.init size (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let run t nchunks f =
    Mutex.lock t.mu;
    t.job <- Some f;
    t.gen <- t.gen + 1;
    t.next <- 0;
    t.nchunks <- nchunks;
    t.pending <- nchunks;
    Condition.broadcast t.work;
    drain t f;
    while t.pending > 0 do
      Condition.wait t.idle t.mu
    done;
    t.job <- None;
    Mutex.unlock t.mu

  let shutdown t =
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    List.iter Domain.join t.domains;
    t.domains <- []
end

let pool_mu = Mutex.create ()
let global_pool : Pool.t option ref = ref None
let pool_busy = ref false

let set_price_workers n =
  let n = max 1 n in
  let old =
    Mutex.protect pool_mu (fun () ->
        Atomic.set workers_flag n;
        let p = !global_pool in
        global_pool := None;
        p)
  in
  match old with Some p -> Pool.shutdown p | None -> ()

(* Borrow the shared pricing pool for the duration of one solve.
   [f] receives [None] when the problem is too narrow, the knob is off,
   or another solve already holds the pool. *)
let with_pool ncols f =
  let w = price_workers () in
  if w <= 1 || ncols < parallel_threshold then f None
  else begin
    let p =
      Mutex.protect pool_mu (fun () ->
          if !pool_busy then None
          else begin
            let p =
              match !global_pool with
              | Some p -> p
              | None ->
                let p = Pool.create (w - 1) in
                global_pool := Some p;
                p
            in
            pool_busy := true;
            Some p
          end)
    in
    match p with
    | None -> f None
    | Some p ->
      Fun.protect
        ~finally:(fun () -> Mutex.protect pool_mu (fun () -> pool_busy := false))
        (fun () -> f (Some p))
  end

(* ------------------------------------------------------------------ *)

(* Mutable solver state over the augmented column set:
   [0, n)          structural variables
   [n, n + m)      slacks (column -e_i, bounds = row range)
   [n + m, ncols)  phase-1 artificials (column +/- e_i, bounds [0, 0+]) *)
type state = {
  m : int;
  ncols : int;
  cols : (int * float) array array;
  lo : float array;
  hi : float array;
  cost : float array; (* phase-dependent *)
  status : vstat array;
  xval : float array;
  basis : int array;
  binv : float array array;
  y : float array; (* scratch: duals *)
  w : float array; (* scratch: B^-1 A_q *)
  tol : float;
}

exception Singular_basis

(* Rebuild binv = B^-1 from scratch by Gauss-Jordan with partial
   pivoting. The basis matrix has the columns [basis.(i)]. *)
let refactorize st =
  Atomic.incr c_refactorizations;
  let m = st.m in
  let b = Array.make_matrix m m 0. in
  for i = 0 to m - 1 do
    Array.iter (fun (r, a) -> b.(r).(i) <- a) st.cols.(st.basis.(i))
  done;
  (* initialize binv to identity *)
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      st.binv.(i).(j) <- (if i = j then 1. else 0.)
    done
  done;
  for col = 0 to m - 1 do
    (* partial pivot *)
    let piv = ref col in
    for r = col + 1 to m - 1 do
      if Float.abs b.(r).(col) > Float.abs b.(!piv).(col) then piv := r
    done;
    if Float.abs b.(!piv).(col) < 1e-12 then raise Singular_basis;
    if !piv <> col then begin
      let tmp = b.(col) in
      b.(col) <- b.(!piv);
      b.(!piv) <- tmp;
      let tmp = st.binv.(col) in
      st.binv.(col) <- st.binv.(!piv);
      st.binv.(!piv) <- tmp
    end;
    let d = b.(col).(col) in
    for j = 0 to m - 1 do
      b.(col).(j) <- b.(col).(j) /. d;
      st.binv.(col).(j) <- st.binv.(col).(j) /. d
    done;
    for r = 0 to m - 1 do
      if r <> col then begin
        let f = b.(r).(col) in
        if f <> 0. then
          for j = 0 to m - 1 do
            b.(r).(j) <- b.(r).(j) -. (f *. b.(col).(j));
            st.binv.(r).(j) <- st.binv.(r).(j) -. (f *. st.binv.(col).(j))
          done
      end
    done
  done

(* Recompute basic variable values: B x_B = -N x_N (all row RHS are 0
   in the slack formulation). *)
let recompute_basics st =
  let m = st.m in
  let rhs = Array.make m 0. in
  for j = 0 to st.ncols - 1 do
    match st.status.(j) with
    | Basic -> ()
    | Nonbasic _ ->
      let v = st.xval.(j) in
      if v <> 0. then
        Array.iter (fun (r, a) -> rhs.(r) <- rhs.(r) -. (a *. v)) st.cols.(j)
  done;
  for i = 0 to m - 1 do
    let acc = ref 0. in
    for k = 0 to m - 1 do
      acc := !acc +. (st.binv.(i).(k) *. rhs.(k))
    done;
    st.xval.(st.basis.(i)) <- !acc
  done

let compute_duals st =
  let m = st.m in
  for k = 0 to m - 1 do
    let acc = ref 0. in
    for i = 0 to m - 1 do
      let c = st.cost.(st.basis.(i)) in
      if c <> 0. then acc := !acc +. (c *. st.binv.(i).(k))
    done;
    st.y.(k) <- !acc
  done

let reduced_cost st j =
  let acc = ref st.cost.(j) in
  Array.iter (fun (r, a) -> acc := !acc -. (st.y.(r) *. a)) st.cols.(j);
  !acc

(* Dantzig pricing over one chunk of columns. Selection is the maximum
   under the total order (|d| desc, column asc), so the global winner
   is independent of how the column range is chunked — parallel and
   serial pricing agree bit-for-bit at any worker count. Returns
   (column, direction, score) with column = -1 when the chunk has no
   eligible candidate. *)
let price_range st ~jlo ~jhi =
  let best = ref (-1) and best_dir = ref 0. and best_score = ref st.tol in
  for j = jlo to jhi - 1 do
    match st.status.(j) with
    | Basic -> ()
    | Nonbasic kind ->
      if st.hi.(j) -. st.lo.(j) > st.tol then begin
        let d = reduced_cost st j in
        let dir =
          match kind with
          | At_lower -> if d < -.st.tol then 1. else 0.
          | At_upper -> if d > st.tol then -1. else 0.
          | Free_zero ->
            if d < -.st.tol then 1. else if d > st.tol then -1. else 0.
        in
        if dir <> 0. then begin
          let score = Float.abs d in
          if score > !best_score then begin
            best := j;
            best_dir := dir;
            best_score := score
          end
        end
      end
  done;
  (!best, !best_dir, !best_score)

(* Bland's rule: the first eligible column. Always serial — the result
   is index-minimal, hence trivially schedule-independent. *)
let price_bland st =
  let found = ref None in
  (try
     for j = 0 to st.ncols - 1 do
       match st.status.(j) with
       | Basic -> ()
       | Nonbasic kind ->
         if st.hi.(j) -. st.lo.(j) > st.tol then begin
           let d = reduced_cost st j in
           let dir =
             match kind with
             | At_lower -> if d < -.st.tol then 1. else 0.
             | At_upper -> if d > st.tol then -1. else 0.
             | Free_zero ->
               if d < -.st.tol then 1. else if d > st.tol then -1. else 0.
           in
           if dir <> 0. then begin
             found := Some (j, dir);
             raise Exit
           end
         end
     done
   with Exit -> ());
  !found

(* Price nonbasic columns; return the entering column and its direction
   (+1. increase / -1. decrease), or None at optimality. *)
let price ?pool st ~bland =
  if bland then price_bland st
  else begin
    match pool with
    | Some p ->
      let nchunks = (st.ncols + price_chunk - 1) / price_chunk in
      let res = Array.make nchunks (-1, 0., 0.) in
      Pool.run p nchunks (fun ci ->
          let jlo = ci * price_chunk in
          let jhi = min st.ncols (jlo + price_chunk) in
          res.(ci) <- price_range st ~jlo ~jhi);
      let best = ref (-1) and best_dir = ref 0. and best_score = ref st.tol in
      Array.iter
        (fun (j, dir, score) ->
          if j >= 0 && score > !best_score then begin
            best := j;
            best_dir := dir;
            best_score := score
          end)
        res;
      if !best >= 0 then Some (!best, !best_dir) else None
    | None ->
      let j, dir, _ = price_range st ~jlo:0 ~jhi:st.ncols in
      if j >= 0 then Some (j, dir) else None
  end

(* w := B^-1 A_q *)
let ftran st q =
  let m = st.m in
  for i = 0 to m - 1 do
    st.w.(i) <- 0.
  done;
  Array.iter
    (fun (r, a) ->
      for i = 0 to m - 1 do
        st.w.(i) <- st.w.(i) +. (st.binv.(i).(r) *. a)
      done)
    st.cols.(q)

type step =
  | Bound_flip of float
  | Pivot of int * float * nb_kind (* leaving row, step, leaving status *)
  | Ray (* unbounded direction *)

(* Ratio test: entering q moves by [t >= 0] in direction [dir]; basic i
   changes by [-dir * w_i * t]. *)
let ratio_test st q dir =
  let span = st.hi.(q) -. st.lo.(q) in
  let t = ref (if span < infinity then span else infinity) in
  let leaving = ref (-1) and leave_to = ref At_lower and leave_g = ref 0. in
  for i = 0 to st.m - 1 do
    let g = dir *. st.w.(i) in
    let b = st.basis.(i) in
    if g > st.tol then begin
      let slack = st.xval.(b) -. st.lo.(b) in
      if st.lo.(b) > neg_infinity then begin
        let limit = Float.max 0. (slack /. g) in
        if
          limit < !t -. st.tol
          || (limit < !t +. st.tol && Float.abs g > Float.abs !leave_g)
        then begin
          t := limit;
          leaving := i;
          leave_to := At_lower;
          leave_g := g
        end
      end
    end
    else if g < -.st.tol then begin
      if st.hi.(b) < infinity then begin
        let slack = st.hi.(b) -. st.xval.(b) in
        let limit = Float.max 0. (slack /. -.g) in
        if
          limit < !t -. st.tol
          || (limit < !t +. st.tol && Float.abs g > Float.abs !leave_g)
        then begin
          t := limit;
          leaving := i;
          leave_to := At_upper;
          leave_g := g
        end
      end
    end
  done;
  if !t = infinity then Ray
  else if !leaving = -1 then Bound_flip !t
  else Pivot (!leaving, !t, !leave_to)

let apply_step st q dir t =
  (* move entering variable and update basics *)
  st.xval.(q) <- st.xval.(q) +. (dir *. t);
  if t <> 0. then
    for i = 0 to st.m - 1 do
      let b = st.basis.(i) in
      st.xval.(b) <- st.xval.(b) -. (dir *. st.w.(i) *. t)
    done

(* Replace basis.(r) by q and update binv with an eta transformation. *)
let update_basis st r q =
  let m = st.m in
  let wr = st.w.(r) in
  let br = st.binv.(r) in
  for k = 0 to m - 1 do
    br.(k) <- br.(k) /. wr
  done;
  for i = 0 to m - 1 do
    if i <> r then begin
      let f = st.w.(i) in
      if f <> 0. then begin
        let bi = st.binv.(i) in
        for k = 0 to m - 1 do
          bi.(k) <- bi.(k) -. (f *. br.(k))
        done
      end
    end
  done;
  st.basis.(r) <- q

type loop_outcome = L_optimal | L_unbounded | L_iter_limit

(* Core iteration loop shared by both phases. The wall-clock deadline is
   polled every 128 iterations so a single LP solve cannot overshoot a
   propagated budget by more than a handful of pivots. *)
let iterate ?pool st ~max_iters ?deadline iters_ref =
  let degen = ref 0 in
  let bland = ref false in
  let since_refactor = ref 0 in
  let outcome = ref None in
  let past_deadline () =
    match deadline with
    | None -> false
    | Some d -> !iters_ref land 127 = 0 && Unix.gettimeofday () > d
  in
  while !outcome = None do
    if !iters_ref >= max_iters || past_deadline () then
      outcome := Some L_iter_limit
    else begin
      incr iters_ref;
      Atomic.incr c_pivots;
      if !since_refactor >= 100 then begin
        refactorize st;
        recompute_basics st;
        since_refactor := 0
      end;
      compute_duals st;
      match price ?pool st ~bland:!bland with
      | None -> outcome := Some L_optimal
      | Some (q, dir) -> (
        ftran st q;
        match ratio_test st q dir with
        | Ray -> outcome := Some L_unbounded
        | Bound_flip t ->
          apply_step st q dir t;
          st.status.(q) <-
            (match st.status.(q) with
            | Nonbasic At_lower -> Nonbasic At_upper
            | Nonbasic At_upper -> Nonbasic At_lower
            | Nonbasic Free_zero | Basic ->
              (* a free column cannot bound-flip: its span is infinite *)
              assert false);
          (* snap to the exact bound to avoid drift *)
          st.xval.(q) <-
            (match st.status.(q) with
            | Nonbasic At_lower -> st.lo.(q)
            | Nonbasic At_upper -> st.hi.(q)
            | _ -> st.xval.(q));
          degen := 0;
          bland := false
        | Pivot (r, t, leave_to) ->
          let leaver = st.basis.(r) in
          apply_step st q dir t;
          st.status.(q) <- Basic;
          st.status.(leaver) <- Nonbasic leave_to;
          st.xval.(leaver) <-
            (match leave_to with
            | At_lower -> st.lo.(leaver)
            | At_upper -> st.hi.(leaver)
            | Free_zero -> 0.);
          update_basis st r q;
          incr since_refactor;
          if t <= st.tol then begin
            incr degen;
            if !degen > 64 then bland := true
          end
          else begin
            degen := 0;
            bland := false
          end)
    end
  done;
  match !outcome with Some o -> o | None -> assert false

(* ------------------------------------------------------------------ *)
(* Dual simplex: drives a primal-infeasible but (near) dual-feasible
   basis back to primal feasibility after bounds changed under it.      *)

(* Dual ratio test over one chunk of columns for leaving row [rho]
   (row r of B^-1). [upward] is true when the leaving basic variable
   must increase (it sits below its lower bound). Selection is the
   minimum under the total order (|d|/|alpha| asc, |alpha| desc,
   column asc) — chunk-independent, like primal pricing. Returns
   (column, direction, ratio, |alpha|, |d|), column = -1 when the
   chunk has no eligible candidate. *)
let dual_range st rho ~upward ~jlo ~jhi =
  let bj = ref (-1)
  and bdir = ref 0.
  and bratio = ref infinity
  and babs = ref 0.
  and babsd = ref 0. in
  for j = jlo to jhi - 1 do
    match st.status.(j) with
    | Basic -> ()
    | Nonbasic kind ->
      if st.hi.(j) -. st.lo.(j) > st.tol then begin
        let alpha = ref 0. in
        Array.iter
          (fun (r, a) -> alpha := !alpha +. (rho.(r) *. a))
          st.cols.(j);
        let alpha = !alpha in
        (* entering j by [dir] changes the leaving basic by
           [-dir * alpha]; keep only moves pushing it toward the
           violated bound while respecting j's own resting side *)
        let dir =
          match kind with
          | At_lower ->
            if (upward && alpha < -.st.tol) || ((not upward) && alpha > st.tol)
            then 1.
            else 0.
          | At_upper ->
            if (upward && alpha > st.tol) || ((not upward) && alpha < -.st.tol)
            then -1.
            else 0.
          | Free_zero ->
            if Float.abs alpha > st.tol then
              if upward = (alpha < 0.) then 1. else -1.
            else 0.
        in
        if dir <> 0. then begin
          let aabs = Float.abs alpha in
          let dabs = Float.abs (reduced_cost st j) in
          let ratio = dabs /. aabs in
          if
            ratio < !bratio
            || (ratio = !bratio
               && (aabs > !babs || (aabs = !babs && j < !bj)))
          then begin
            bj := j;
            bdir := dir;
            bratio := ratio;
            babs := aabs;
            babsd := dabs
          end
        end
      end
  done;
  (!bj, !bdir, !bratio, !babs, !babsd)

(* Entering-column selection for the dual pivot; same chunk-merge
   discipline as [price]. *)
let dual_select ?pool st rho ~upward =
  match pool with
  | Some p ->
    let nchunks = (st.ncols + price_chunk - 1) / price_chunk in
    let res = Array.make nchunks (-1, 0., infinity, 0., 0.) in
    Pool.run p nchunks (fun ci ->
        let jlo = ci * price_chunk in
        let jhi = min st.ncols (jlo + price_chunk) in
        res.(ci) <- dual_range st rho ~upward ~jlo ~jhi);
    let bj = ref (-1)
    and bdir = ref 0.
    and bratio = ref infinity
    and babs = ref 0.
    and babsd = ref 0. in
    Array.iter
      (fun (j, dir, ratio, aabs, dabs) ->
        if
          j >= 0
          && (ratio < !bratio
             || (ratio = !bratio
                && (aabs > !babs || (aabs = !babs && j < !bj))))
        then begin
          bj := j;
          bdir := dir;
          bratio := ratio;
          babs := aabs;
          babsd := dabs
        end)
      res;
    if !bj >= 0 then Some (!bj, !bdir, !babsd) else None
  | None ->
    let j, dir, _, _, dabs = dual_range st rho ~upward ~jlo:0 ~jhi:st.ncols in
    if j >= 0 then Some (j, dir, dabs) else None

type dual_outcome = D_feasible | D_infeasible | D_stalled | D_iter_limit

(* Dual iteration: repeatedly pivot out the most-violated basic
   variable until the point is primal feasible. [D_infeasible] and
   [D_stalled] are advisory — callers confirm with a cold solve rather
   than trusting a warm-start certificate. *)
let dual_iterate ?pool st ~max_iters ?deadline iters_ref =
  let since_refactor = ref 0 in
  let stall = ref 0 in
  let outcome = ref None in
  let past_deadline () =
    match deadline with
    | None -> false
    | Some d -> !iters_ref land 127 = 0 && Unix.gettimeofday () > d
  in
  while !outcome = None do
    (* leaving row: largest bound violation among basic variables *)
    let r = ref (-1) and viol = ref (10. *. st.tol) and upward = ref false in
    for i = 0 to st.m - 1 do
      let b = st.basis.(i) in
      let x = st.xval.(b) in
      let below = st.lo.(b) -. x in
      let above = x -. st.hi.(b) in
      if below > !viol then begin
        r := i;
        viol := below;
        upward := true
      end
      else if above > !viol then begin
        r := i;
        viol := above;
        upward := false
      end
    done;
    if !r = -1 then outcome := Some D_feasible
    else if !iters_ref >= max_iters || past_deadline () then
      outcome := Some D_iter_limit
    else begin
      incr iters_ref;
      Atomic.incr c_dual_pivots;
      if !since_refactor >= 100 then begin
        refactorize st;
        recompute_basics st;
        since_refactor := 0
      end;
      compute_duals st;
      let rho = st.binv.(!r) in
      match dual_select ?pool st rho ~upward:!upward with
      | None -> outcome := Some D_infeasible
      | Some (q, dir, dabs) ->
        ftran st q;
        let alpha_r = st.w.(!r) in
        if Float.abs alpha_r <= st.tol then
          (* the recomputed pivot element disagrees with the pricing
             scan: numerical trouble, bail to a cold solve *)
          outcome := Some D_stalled
        else begin
          let t = !viol /. Float.abs alpha_r in
          let leaver = st.basis.(!r) in
          apply_step st q dir t;
          st.status.(q) <- Basic;
          let leave_to = if !upward then At_lower else At_upper in
          st.status.(leaver) <- Nonbasic leave_to;
          st.xval.(leaver) <-
            (if !upward then st.lo.(leaver) else st.hi.(leaver));
          update_basis st !r q;
          incr since_refactor;
          if dabs <= st.tol then begin
            incr stall;
            if !stall > 256 then outcome := Some D_stalled
          end
          else stall := 0
        end
    end
  done;
  match !outcome with Some o -> o | None -> assert false

let current_cost st =
  let acc = ref 0. in
  for j = 0 to st.ncols - 1 do
    if st.cost.(j) <> 0. then acc := !acc +. (st.cost.(j) *. st.xval.(j))
  done;
  !acc

let default_max_iters (p : Problem.t) =
  20_000 + (4 * (Problem.nvars p + Problem.nrows p))

(* Shared column construction: structural columns [0, n) and slack
   columns [n, n + m), into arrays sized for the cold path's
   artificials ([n + m, n + 2m)). *)
let structural_arrays (p : Problem.t) =
  let n = Problem.nvars p and m = Problem.nrows p in
  let maxcols = n + m + m in
  let cols = Array.make maxcols [||] in
  let lo = Array.make maxcols 0. and hi = Array.make maxcols 0. in
  let cost = Array.make maxcols 0. in
  let sense_sign =
    match p.Problem.sense with Problem.Minimize -> 1. | Problem.Maximize -> -1.
  in
  (* transpose rows into structural columns *)
  let per_col : (int * float) list array = Array.make n [] in
  Array.iteri
    (fun i (r : Problem.row) ->
      List.iter
        (fun (j, a) -> if a <> 0. then per_col.(j) <- (i, a) :: per_col.(j))
        r.Problem.coeffs)
    p.Problem.rows;
  for j = 0 to n - 1 do
    let v = p.Problem.vars.(j) in
    cols.(j) <- Array.of_list (List.rev per_col.(j));
    lo.(j) <- v.Problem.lo;
    hi.(j) <- v.Problem.hi;
    cost.(j) <- sense_sign *. v.Problem.obj
  done;
  (* slacks *)
  for i = 0 to m - 1 do
    let r = p.Problem.rows.(i) in
    let j = n + i in
    cols.(j) <- [| (i, -1.) |];
    lo.(j) <- r.Problem.rlo;
    hi.(j) <- r.Problem.rhi;
    cost.(j) <- 0.
  done;
  (n, m, cols, lo, hi, cost)

(* Export the final basis for reuse by a later [resolve]. Declined when
   an artificial column is still basic (degenerate phase-1 leftovers):
   such a basis has no meaning for the structural + slack column set. *)
let extract_basis st n =
  let m = st.m in
  let ok = ref true in
  for i = 0 to m - 1 do
    if st.basis.(i) >= n + m then ok := false
  done;
  if not !ok then None
  else
    Some
      {
        Basis.bn = n;
        bm = m;
        vstat = Array.sub st.status 0 (n + m);
        rows = Array.sub st.basis 0 m;
      }

let solve ?max_iters ?(tol = 1e-7) ?deadline ?iterations (p : Problem.t) =
  (match Problem.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Simplex.solve: " ^ msg));
  Atomic.incr c_cold_solves;
  let max_iters =
    match max_iters with Some k -> k | None -> default_max_iters p
  in
  let n, m, cols, lo, hi, cost = structural_arrays p in
  let maxcols = n + m + m in
  let status = Array.make maxcols (Nonbasic At_lower) in
  let xval = Array.make maxcols 0. in
  (* initial nonbasic position: nearest finite bound, else free at 0 *)
  for j = 0 to n - 1 do
    if lo.(j) > neg_infinity then begin
      status.(j) <- Nonbasic At_lower;
      xval.(j) <- lo.(j)
    end
    else if hi.(j) < infinity then begin
      status.(j) <- Nonbasic At_upper;
      xval.(j) <- hi.(j)
    end
    else begin
      status.(j) <- Nonbasic Free_zero;
      xval.(j) <- 0.
    end
  done;
  (* initial row activities under the nonbasic point *)
  let activity = Array.make m 0. in
  Array.iteri
    (fun i (r : Problem.row) ->
      activity.(i) <-
        List.fold_left (fun acc (j, a) -> acc +. (a *. xval.(j))) 0.
          r.Problem.coeffs)
    p.Problem.rows;
  let basis = Array.make (max m 1) 0 in
  let nart = ref 0 in
  for i = 0 to m - 1 do
    let sj = n + i in
    let act = activity.(i) in
    if act >= lo.(sj) -. tol && act <= hi.(sj) +. tol then begin
      (* slack can absorb the activity: make it basic *)
      basis.(i) <- sj;
      status.(sj) <- Basic;
      xval.(sj) <- act
    end
    else begin
      (* clamp the slack at its nearest bound and cover the violation
         with an artificial *)
      let bound, kind =
        if act < lo.(sj) then lo.(sj), At_lower else hi.(sj), At_upper
      in
      status.(sj) <- Nonbasic kind;
      xval.(sj) <- bound;
      let resid = act -. bound in
      (* row equation: a.x - s + g*z = 0, want z = |resid| >= 0 *)
      let g = if resid > 0. then -1. else 1. in
      let zj = n + m + !nart in
      incr nart;
      cols.(zj) <- [| (i, g) |];
      lo.(zj) <- 0.;
      hi.(zj) <- infinity;
      cost.(zj) <- 0.;
      status.(zj) <- Basic;
      xval.(zj) <- Float.abs resid;
      basis.(i) <- zj
    end
  done;
  let ncols = n + m + !nart in
  let st =
    {
      m;
      ncols;
      cols;
      lo;
      hi;
      cost;
      status;
      xval;
      basis;
      binv = Array.make_matrix (max m 1) (max m 1) 0.;
      y = Array.make (max m 1) 0.;
      w = Array.make (max m 1) 0.;
      tol;
    }
  in
  let iters = ref 0 in
  let record result =
    (match iterations with Some acc -> acc := !acc + !iters | None -> ());
    result
  in
  let finish () =
    let x = Array.sub st.xval 0 n in
    Optimal
      { x; obj = Problem.objective p x; iterations = !iters;
        basis = extract_basis st n }
  in
  record
  @@
  if m = 0 then begin
    (* No rows: each variable sits at the bound its cost prefers. *)
    let unbounded = ref false in
    for j = 0 to n - 1 do
      let c = st.cost.(j) in
      if c > 0. then
        if st.lo.(j) > neg_infinity then st.xval.(j) <- st.lo.(j)
        else unbounded := true
      else if c < 0. then
        if st.hi.(j) < infinity then st.xval.(j) <- st.hi.(j)
        else unbounded := true
    done;
    if !unbounded then Unbounded else finish ()
  end
  else
    with_pool ncols @@ fun pool ->
    begin
      refactorize st;
      (* Phase 1: minimize the sum of artificials. *)
      let result =
        if !nart > 0 then begin
          (* phase-1 objective: artificials only *)
          let saved_costs = Array.sub st.cost 0 n in
          for j = 0 to n - 1 do
            st.cost.(j) <- 0.
          done;
          for z = n + m to ncols - 1 do
            st.cost.(z) <- 1.
          done;
          let restore () = Array.blit saved_costs 0 st.cost 0 n in
          match iterate ?pool st ~max_iters ?deadline iters with
          | L_iter_limit -> Some Iter_limit
          | L_unbounded ->
            (* phase-1 objective is bounded below by zero *)
            Some Infeasible
          | L_optimal ->
            if current_cost st > Float.max 1e-7 (tol *. 10.) then
              Some Infeasible
            else begin
              (* pin artificials at zero and restore true costs *)
              restore ();
              for z = n + m to ncols - 1 do
                st.cost.(z) <- 0.;
                st.hi.(z) <- 0.;
                if st.status.(z) <> Basic then begin
                  st.status.(z) <- Nonbasic At_lower;
                  st.xval.(z) <- 0.
                end
              done;
              None
            end
        end
        else None
      in
      match result with
      | Some r -> r
      | None -> (
        (* Phase 2 with the real costs. *)
        match iterate ?pool st ~max_iters ?deadline iters with
        | L_iter_limit -> Iter_limit
        | L_unbounded -> Unbounded
        | L_optimal ->
          refactorize st;
          recompute_basics st;
          finish ())
    end

(* ------------------------------------------------------------------ *)
(* Warm restart from a saved basis.                                    *)

exception Warm_reject

(* Install a saved basis into a freshly built state: restore statuses
   and basis rows, then re-seat every nonbasic column on a bound of the
   *new* problem (bounds may have moved or become infinite since the
   basis was saved). Raises [Warm_reject] on any inconsistency. *)
let install_basis st (b : Basis.t) n =
  let m = st.m in
  let total = n + m in
  if Array.length b.Basis.vstat <> total || Array.length b.Basis.rows <> m then
    raise Warm_reject;
  let nbasic = ref 0 in
  Array.iter (fun s -> if s = Basic then incr nbasic) b.Basis.vstat;
  if !nbasic <> m then raise Warm_reject;
  let seen = Array.make total false in
  Array.iteri
    (fun i j ->
      if j < 0 || j >= total || seen.(j) || b.Basis.vstat.(j) <> Basic then
        raise Warm_reject;
      seen.(j) <- true;
      st.basis.(i) <- j)
    b.Basis.rows;
  Array.blit b.Basis.vstat 0 st.status 0 total;
  for j = 0 to total - 1 do
    match st.status.(j) with
    | Basic -> ()
    | Nonbasic kind ->
      let lo = st.lo.(j) and hi = st.hi.(j) in
      let kind', v =
        match kind with
        | At_lower ->
          if lo > neg_infinity then At_lower, lo
          else if hi < infinity then At_upper, hi
          else Free_zero, 0.
        | At_upper ->
          if hi < infinity then At_upper, hi
          else if lo > neg_infinity then At_lower, lo
          else Free_zero, 0.
        | Free_zero ->
          if lo <= 0. && 0. <= hi then Free_zero, 0.
          else if lo > 0. then At_lower, lo
          else At_upper, hi
      in
      st.status.(j) <- Nonbasic kind';
      st.xval.(j) <- v
  done

(* [resolve ?basis p] solves [p] starting from a previously saved
   optimal basis: dual pivots restore primal feasibility after bound
   changes, then the ordinary primal phase 2 finishes off any dual
   infeasibility left by objective changes. Every failure mode of the
   warm path — wrong dimensions, singular or inconsistent basis, dual
   infeasibility, stalls — degrades to an internal cold [solve] of the
   same problem, so a stale or corrupt basis can cost time but never
   change an answer. *)
let resolve ?basis ?max_iters ?(tol = 1e-7) ?deadline ?iterations
    (p : Problem.t) =
  match basis with
  | None -> solve ?max_iters ~tol ?deadline ?iterations p
  | Some _ when not (warm_enabled ()) ->
    solve ?max_iters ~tol ?deadline ?iterations p
  | Some b -> (
    (match Problem.validate p with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Simplex.resolve: " ^ msg));
    let n = Problem.nvars p and m = Problem.nrows p in
    let max_iters =
      match max_iters with Some k -> k | None -> default_max_iters p
    in
    Atomic.incr c_warm_attempts;
    let iters = ref 0 in
    let record result =
      (match iterations with Some acc -> acc := !acc + !iters | None -> ());
      result
    in
    let cold () =
      (* pivots burned by the failed warm attempt still count against
         the caller's budget *)
      let sub = ref 0 in
      let r =
        solve ~max_iters:(max 1 (max_iters - !iters)) ~tol ?deadline
          ~iterations:sub p
      in
      iters := !iters + !sub;
      record r
    in
    let bn, bm = Basis.dims b in
    if m = 0 || bn <> n || bm <> m then cold ()
    else
      let built =
        match
          let _, _, cols, lo, hi, cost = structural_arrays p in
          let maxcols = n + m + m in
          let st =
            {
              m;
              ncols = n + m;
              cols;
              lo;
              hi;
              cost;
              status = Array.make maxcols (Nonbasic At_lower);
              xval = Array.make maxcols 0.;
              basis = Array.make (max m 1) 0;
              binv = Array.make_matrix (max m 1) (max m 1) 0.;
              y = Array.make (max m 1) 0.;
              w = Array.make (max m 1) 0.;
              tol;
            }
          in
          install_basis st b n;
          (try refactorize st with Singular_basis -> raise Warm_reject);
          recompute_basics st;
          st
        with
        | st -> Some st
        | exception Warm_reject -> None
      in
      match built with
      | None -> cold ()
      | Some st -> (
        with_pool st.ncols @@ fun pool ->
        match dual_iterate ?pool st ~max_iters ?deadline iters with
        | D_infeasible | D_stalled ->
          (* never certify infeasibility (or give up) from a warm
             start: confirm with a cold solve *)
          cold ()
        | D_iter_limit -> record Iter_limit
        | D_feasible -> (
          match iterate ?pool st ~max_iters ?deadline iters with
          | L_iter_limit -> record Iter_limit
          | L_unbounded -> cold ()
          | L_optimal ->
            refactorize st;
            recompute_basics st;
            Atomic.incr c_warm_hits;
            let x = Array.sub st.xval 0 n in
            record
              (Optimal
                 {
                   x;
                   obj = Problem.objective p x;
                   iterations = !iters;
                   basis = extract_basis st n;
                 }))))
