(** Monte-Carlo scenario generation for stochastic package queries
    (arXiv:2103.06784).

    A scenario is one joint realization of the designated noisy
    attributes: per (scenario, row) the generator draws an additive
    Gaussian perturbation, with a shared standard-normal factor per
    (scenario, row) coupling the attributes — the same correlated-noise
    shape as the Galaxy generator's shared base brightness across
    photometric bands.

    Determinism: every scenario draws from its own PRNG stream derived
    from the user seed and the scenario index, so scenario [s] is
    bitwise-identical regardless of how many scenarios are generated
    alongside it. Optimization and validation sets can therefore be
    carved out of disjoint index ranges of one logical stream. *)

(** One noisy attribute: additive noise [sigma * z] where
    [z = corr * shared + sqrt(1 - corr^2) * own] and [shared]/[own] are
    standard normals. [corr = 0] makes the attribute independent,
    [corr = 1] fully coupled to the shared factor. *)
type spec = { attr : string; sigma : float; corr : float }

val default_corr : float

(** [parse_specs s] parses ["attr:sigma"] or ["attr:sigma@corr"]
    entries, comma-separated — e.g. ["u:0.3,g:0.2@0.5"]. Rejects
    duplicates, negative sigma, and corr outside [0, 1]. *)
val parse_specs : string -> (spec list, string) result

(** Inverse of {!parse_specs} (omits [@corr] at the default). *)
val render_specs : spec list -> string

(** [default_specs rel attrs] derives a spec per attribute with
    [sigma = 0.25 * stddev] of the column (0.1 for constant columns)
    and the default correlation — the driver's fallback when a
    stochastic query names no explicit noise model. *)
val default_specs : Relalg.Relation.t -> string list -> spec list

(** [check_specs specs rel] validates attributes exist and are float
    columns. *)
val check_specs : spec list -> Relalg.Relation.t -> (unit, string) result

type t

(** [generate ?seed ~scenarios specs rel] draws the perturbation
    matrices. Errors on [scenarios <= 0], empty specs, or attributes
    that are missing / non-float. *)
val generate :
  ?seed:int ->
  scenarios:int ->
  spec list ->
  Relalg.Relation.t ->
  (t, string) result

val generate_exn :
  ?seed:int -> scenarios:int -> spec list -> Relalg.Relation.t -> t

val num_scenarios : t -> int

(** Noisy attribute names, in spec order. *)
val attrs : t -> string list

val specs : t -> spec list

(** [deltas t attr] is the perturbation matrix for [attr], indexed
    [scenario][row]; [None] if [attr] is not a noisy attribute. *)
val deltas : t -> string -> float array array option

(** [realize t s] materializes scenario [s] as a full relation: the
    base relation with each noisy column shifted by its perturbations.
    This is what [pkgq_gen --noise] emits.
    @raise Invalid_argument if [s] is out of range. *)
val realize : t -> int -> Relalg.Relation.t
