let numeric_attrs =
  [ "ra"; "dec"; "u"; "g"; "r"; "i"; "z"; "redshift"; "petro_rad"; "exp_ab";
    "rowc" ]

let schema =
  Relalg.Schema.make
    ({ Relalg.Schema.name = "objid"; ty = Relalg.Value.TInt }
     :: List.map
          (fun a -> { Relalg.Schema.name = a; ty = Relalg.Value.TFloat })
          numeric_attrs)

(* Sky patches: cluster centers in (ra, dec) with per-patch brightness
   offsets, mimicking survey stripes and galaxy clusters. *)
let num_patches = 24

(* Heavy-skew transform for a uniform draw on [lo, hi]: a power map
   concentrates the mass near [lo] and leaves a thin tail to [hi].
   Applied to an already-drawn value, so the PRNG stream is untouched
   and [skew = 0.] stays byte-identical to the unskewed generator. *)
let concentrate ~skew ~lo ~hi v =
  if skew <= 0. then v
  else lo +. ((hi -. lo) *. (((v -. lo) /. (hi -. lo)) ** (1. +. (4. *. skew))))

let generate ?(seed = 1) ?(skew = 0.) n =
  let rng = Prng.create seed in
  let patches =
    Array.init num_patches (fun _ ->
        let ra = Prng.uniform rng 0. 360. in
        let dec = Prng.uniform rng (-10.) 70. in
        let spread = Prng.uniform rng 0.5 6. in
        let brightness = Prng.normal rng ~mean:18. ~stddev:1.2 in
        (ra, dec, spread, brightness))
  in
  let b = Relalg.Relation.builder schema in
  for objid = 0 to n - 1 do
    let pra, pdec, spread, pbright = Prng.choice rng patches in
    let ra = Float.rem (pra +. (Prng.gaussian rng *. spread) +. 360.) 360. in
    let dec = pdec +. (Prng.gaussian rng *. spread *. 0.6) in
    (* shared base brightness drives the five correlated bands *)
    let base = pbright +. (Prng.gaussian rng *. 1.5) in
    let band offset jitter = base +. offset +. (Prng.gaussian rng *. jitter) in
    let u = band 1.8 0.5 in
    let g = band 0.7 0.3 in
    let r = band 0.0 0.25 in
    let i = band (-0.3) 0.3 in
    let z = band (-0.5) 0.4 in
    (* distribution parameters vary continuously in [skew]; at 0 they
       are exactly the historical ones (same draw count either way) *)
    let redshift =
      Float.min 1.2 (Prng.exponential rng ~rate:(8. /. (1. +. (3. *. skew))))
    in
    let petro_rad =
      Prng.pareto rng ~xm:1.5 ~alpha:(2.5 /. (1. +. (2. *. skew)))
    in
    let exp_ab = concentrate ~skew ~lo:0.05 ~hi:1.0 (Prng.uniform rng 0.05 1.0) in
    let rowc = concentrate ~skew ~lo:0. ~hi:2048. (Prng.uniform rng 0. 2048.) in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int objid;
        Relalg.Value.Float ra;
        Relalg.Value.Float dec;
        Relalg.Value.Float u;
        Relalg.Value.Float g;
        Relalg.Value.Float r;
        Relalg.Value.Float i;
        Relalg.Value.Float z;
        Relalg.Value.Float redshift;
        Relalg.Value.Float petro_rad;
        Relalg.Value.Float exp_ab;
        Relalg.Value.Float rowc;
      |]
  done;
  Relalg.Relation.seal b
