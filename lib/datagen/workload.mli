(** The benchmark workloads: seven package queries per dataset, adapted
    the way the paper adapts SDSS sample queries and TPC-H templates —
    aggregates become global predicates or objectives, and global
    constraint bounds are synthesized by multiplying per-tuple
    statistics by the expected package size (Section 5.1), so every
    query stays feasible across dataset scales. *)

type def = {
  name : string;         (** "Q1" .. "Q7" *)
  paql : string;         (** instantiated query text *)
  attrs : string list;   (** numeric query attributes *)
  maximize : bool;       (** objective sense (for ratio reporting) *)
}

(** [galaxy_queries rel] instantiates the Galaxy workload against the
    statistics of [rel]. *)
val galaxy_queries : Relalg.Relation.t -> def list

(** [tpch_queries rel] instantiates the TPC-H workload. *)
val tpch_queries : Relalg.Relation.t -> def list

(** [query_relation ~dataset rel def] is the relation the query runs
    over: the full relation for Galaxy; the non-NULL extraction on the
    query attributes for TPC-H (Figure 3). *)
val query_relation :
  dataset:[ `Galaxy | `Tpch ] -> Relalg.Relation.t -> def -> Relalg.Relation.t

(** Union of all query attributes — the paper's "workload attributes"
    used for offline partitioning. *)
val workload_attrs : def list -> string list

(** Parse+compile a workload query against a relation's schema.
    @raise Invalid_argument on parse/analysis errors (workload queries
    are trusted). *)
val compile : Relalg.Relation.t -> def -> Paql.Translate.spec

(** {1 Mixed workloads}

    Reproducible query streams for the service layer: [n] entries,
    each either a {e fresh} query (a synthesized small cardinality
    constraint + one linear global constraint + an objective, with
    bounds from the relation's statistics so it stays feasible) or a
    verbatim {e repeat} of an earlier entry. Repeats are what exercise
    the server's plan and result caches; [repeat_rate] is the expected
    fraction of them (default [0.5]). [stochastic_rate] (default [0])
    is the expected fraction of fresh entries synthesized as
    {e stochastic} queries — a [>=] constraint qualified
    [WITH PROBABILITY] plus an [EXPECTED] objective — which round-trip
    through {!render_workload}/{!parse_workload} like any other entry
    and route servers to the SummarySearch driver. Rate [0] reproduces
    the historical streams byte-for-byte. Same [seed], same stream. *)

val mixed :
  ?seed:int ->
  ?repeat_rate:float ->
  ?stochastic_rate:float ->
  dataset:[ `Galaxy | `Tpch ] ->
  n:int ->
  Relalg.Relation.t ->
  def list

(** {1 Mutation mixes}

    The durability benches and chaos runs draw appends from the same
    reproducible generator as queries: an op stream interleaves the
    {!mixed} query stream with [appends] evenly spread append entries,
    each naming only a batch size and a derived seed — the actual rows
    come from {!append_batch}, so a reference run and a crash/restart
    run replay bit-for-bit identical mutation histories. *)

type op =
  | Op_query of def
  | Op_append of { aname : string; rows : int; aseed : int }
      (** regenerate via {!append_batch} with these parameters *)

(** [append_batch ~dataset ~rows ~seed] — the rows an [Op_append] with
    these parameters denotes (dataset generator, fixed seed). *)
val append_batch :
  dataset:[ `Galaxy | `Tpch ] -> rows:int -> seed:int -> Relalg.Relation.t

(** [mixed_ops ?seed ?repeat_rate ?appends ~dataset ~n rel] — the
    {!mixed} stream with [appends] (default 0) append ops interleaved.
    Same [seed], same stream — including the appended rows. *)
val mixed_ops :
  ?seed:int ->
  ?repeat_rate:float ->
  ?stochastic_rate:float ->
  ?appends:int ->
  dataset:[ `Galaxy | `Tpch ] ->
  n:int ->
  Relalg.Relation.t ->
  op list

(** Render/parse the op-stream file format: [NAME<TAB>QUERY] per query
    line, [NAME<TAB>@APPEND rows=R seed=S] per append line. *)
val render_ops : op list -> string

val parse_ops :
  string ->
  [ `Query of string * string | `Append of string * int * int ] list

(** One [NAME<TAB>QUERY] line per entry, with a leading [#] comment
    header — the workload file format of [pkgq_gen workload]. *)
val render_workload : def list -> string

(** Inverse of {!render_workload}: [(name, paql)] pairs. Blank lines
    and [#] comments are skipped; a line without a tab is a bare query
    named ["?"]. *)
val parse_workload : string -> (string * string) list
