(** Mini TPC-H dbgen producing the paper's pre-joined benchmark table
    directly.

    The paper full-outer-joins the TPC-H relations into one wide table
    of ~17.5M rows, then extracts, per package query, the subset of
    rows that are non-NULL on that query's attributes (Figure 3). This
    generator emits the wide table with TPC-H-like marginal
    distributions (uniform prices, discrete quantities/discounts,
    date offsets, account balances) and per-"source-relation" NULL
    blocks: a row may lack its part/supplier block or its order/
    customer block, mirroring the unmatched sides of the full outer
    join, so per-query non-NULL subsets differ in size exactly as in
    Figure 3. *)

(** Numeric attribute names:
    [l_quantity, l_extendedprice, l_discount, l_tax, p_retailprice,
     p_size, ps_supplycost, s_acctbal, o_totalprice, o_shippriority,
     c_acctbal]. The first four form the lineitem block (always
    present); [p_*, ps_*, s_*] form the part/supplier block; [o_*,
    c_*] the order/customer block. *)
val numeric_attrs : string list

val lineitem_attrs : string list
val part_supplier_attrs : string list
val order_customer_attrs : string list

(** [generate ?seed ?skew n] produces the pre-joined table with [n]
    rows. [skew] (default 0) concentrates the price/cost columns
    (retail price, supply cost, order total): most rows cheap, a thin
    expensive tail. [skew = 0.] is byte-identical to the generator
    before the knob existed (the transform never draws from the
    PRNG). *)
val generate : ?seed:int -> ?skew:float -> int -> Relalg.Relation.t

(** [non_null_subset rel attrs] keeps the rows that are non-NULL on all
    the given attributes — the paper's per-query table extraction. *)
val non_null_subset : Relalg.Relation.t -> string list -> Relalg.Relation.t
