let lineitem_attrs = [ "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax" ]
let part_supplier_attrs = [ "p_retailprice"; "p_size"; "ps_supplycost"; "s_acctbal" ]
let order_customer_attrs = [ "o_totalprice"; "o_shippriority"; "c_acctbal" ]

let numeric_attrs = lineitem_attrs @ part_supplier_attrs @ order_customer_attrs

let schema =
  Relalg.Schema.make
    ({ Relalg.Schema.name = "rowid"; ty = Relalg.Value.TInt }
     :: List.map
          (fun a -> { Relalg.Schema.name = a; ty = Relalg.Value.TFloat })
          numeric_attrs)

let generate ?(seed = 2) ?(skew = 0.) n =
  let rng = Prng.create seed in
  let b = Relalg.Relation.builder schema in
  let f v = Relalg.Value.Float v in
  (* heavy-skew knob: a power map over already-drawn uniforms
     concentrates price/cost mass near the low end with a thin
     expensive tail; no extra PRNG draws, so [skew = 0.] is
     byte-identical to the unskewed generator *)
  let concentrate ~lo ~hi v =
    if skew <= 0. then v
    else
      lo +. ((hi -. lo) *. (((v -. lo) /. (hi -. lo)) ** (1. +. (4. *. skew))))
  in
  for rowid = 0 to n - 1 do
    (* lineitem block: always present (lineitem drives the join) *)
    let quantity = float_of_int (1 + Prng.int rng 50) in
    let retail_base =
      concentrate ~lo:900. ~hi:2100. (900. +. (Prng.float rng *. 1200.))
    in
    let extendedprice = quantity *. retail_base /. 10. in
    let discount = float_of_int (Prng.int rng 11) /. 100. in
    let tax = float_of_int (Prng.int rng 9) /. 100. in
    (* part/supplier block present ~34% of the time (unmatched rows of
       the full outer join have NULLs here) *)
    let has_ps = Prng.bool rng ~p:0.34 in
    let p_retailprice = if has_ps then f retail_base else Relalg.Value.Null in
    let p_size =
      if has_ps then f (float_of_int (1 + Prng.int rng 50))
      else Relalg.Value.Null
    in
    let ps_supplycost =
      if has_ps then f (concentrate ~lo:1. ~hi:1000. (Prng.uniform rng 1. 1000.))
      else Relalg.Value.Null
    in
    let s_acctbal =
      if has_ps then f (Prng.uniform rng (-999.99) 9999.99)
      else Relalg.Value.Null
    in
    (* order/customer block present ~34% of the time *)
    let has_oc = Prng.bool rng ~p:0.34 in
    let o_totalprice =
      if has_oc then
        f (concentrate ~lo:800. ~hi:500_000. (Prng.uniform rng 800. 500_000.))
      else Relalg.Value.Null
    in
    let o_shippriority =
      if has_oc then f (float_of_int (Prng.int rng 5)) else Relalg.Value.Null
    in
    let c_acctbal =
      if has_oc then f (Prng.uniform rng (-999.99) 9999.99)
      else Relalg.Value.Null
    in
    Relalg.Relation.add b
      [|
        Relalg.Value.Int rowid;
        f quantity;
        f extendedprice;
        f discount;
        f tax;
        p_retailprice;
        p_size;
        ps_supplycost;
        s_acctbal;
        o_totalprice;
        o_shippriority;
        c_acctbal;
      |]
  done;
  Relalg.Relation.seal b

let non_null_subset rel attrs =
  match attrs with
  | [] -> rel
  | first :: rest ->
    let pred =
      List.fold_left
        (fun acc a -> Relalg.Expr.And (acc, Relalg.Expr.IsNotNull (Relalg.Expr.Attr a)))
        (Relalg.Expr.IsNotNull (Relalg.Expr.Attr first))
        rest
    in
    Relalg.Relation.select rel pred
