(** Synthetic stand-in for the SDSS Galaxy view (data release 12) used
    in the paper's real-world experiments.

    The generator reproduces the structural properties the experiments
    rely on, rather than astronomical fidelity:
    - many numeric attributes (11), enabling high partitioning
      coverage (Figure 9 sweeps up to 13x on Galaxy);
    - spatial clustering: positions drawn from a mixture of Gaussian
      "sky patches", so quad-tree partitions are non-uniform;
    - correlated magnitudes across the five photometric bands
      (u, g, r, i, z), driven by a shared base brightness;
    - skewed, heavy-tailed distributions for redshift and radius.

    Deterministic for a fixed seed. *)

(** Attribute names, in schema order:
    [objid, ra, dec, u, g, r, i, z, redshift, petro_rad, exp_ab, rowc]. *)
val numeric_attrs : string list

(** [generate ?seed ?skew n] produces [n] tuples. [skew] (default 0)
    concentrates the redshift / radius / shape / position-in-row
    distributions: larger values mean heavier tails and more mass
    piled near the low end — the regime where variance-driven DLV
    splits beat equal-width quad-tree cells. [skew = 0.] is
    byte-identical to the generator before the knob existed (the
    transform never draws from the PRNG). *)
val generate : ?seed:int -> ?skew:float -> int -> Relalg.Relation.t
