type spec = { attr : string; sigma : float; corr : float }

let default_corr = 0.5

(* "attr:sigma" or "attr:sigma@corr", comma-separated. *)
let parse_spec_one s =
  let s = String.trim s in
  match String.index_opt s ':' with
  | None ->
    Error
      (Printf.sprintf "noise spec %S: expected attr:sigma or attr:sigma@corr" s)
  | Some i -> (
    let attr = String.trim (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let sigma_s, corr_s =
      match String.index_opt rest '@' with
      | None -> String.trim rest, None
      | Some j ->
        ( String.trim (String.sub rest 0 j),
          Some
            (String.trim (String.sub rest (j + 1) (String.length rest - j - 1)))
        )
    in
    if attr = "" then Error (Printf.sprintf "noise spec %S: empty attribute" s)
    else
      match float_of_string_opt sigma_s with
      | None -> Error (Printf.sprintf "noise spec %S: bad sigma %S" s sigma_s)
      | Some sigma when not (sigma >= 0.) ->
        Error (Printf.sprintf "noise spec %S: sigma must be >= 0" s)
      | Some sigma -> (
        match corr_s with
        | None -> Ok { attr; sigma; corr = default_corr }
        | Some cs -> (
          match float_of_string_opt cs with
          | None -> Error (Printf.sprintf "noise spec %S: bad corr %S" s cs)
          | Some corr when not (corr >= 0. && corr <= 1.) ->
            Error (Printf.sprintf "noise spec %S: corr must be in [0, 1]" s)
          | Some corr -> Ok { attr; sigma; corr })))

let parse_specs s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty noise spec"
  else
    let rec go acc seen = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
        match parse_spec_one p with
        | Error _ as e -> e
        | Ok sp ->
          if List.mem sp.attr seen then
            Error (Printf.sprintf "duplicate noise attribute %S" sp.attr)
          else go (sp :: acc) (sp.attr :: seen) rest)
    in
    go [] [] parts

let render_spec sp =
  if sp.corr = default_corr then Printf.sprintf "%s:%g" sp.attr sp.sigma
  else Printf.sprintf "%s:%g@%g" sp.attr sp.sigma sp.corr

let render_specs sps = String.concat "," (List.map render_spec sps)

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let mean = Array.fold_left ( +. ) 0. xs /. float_of_int n in
    let ss =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. xs
    in
    sqrt (ss /. float_of_int n)
  end

let default_specs rel attrs =
  List.map
    (fun attr ->
      let sd = stddev (Relalg.Relation.column_float rel attr) in
      (* a quarter of the column's spread: visible noise without
         drowning the signal *)
      let sigma = if sd > 0. then 0.25 *. sd else 0.1 in
      { attr; sigma; corr = default_corr })
    attrs

type t = {
  rel : Relalg.Relation.t;
  specs : spec list;
  scenarios : int;
  deltas : (string * float array array) list;
      (* attr -> [scenario][row] additive perturbation *)
}

let num_scenarios t = t.scenarios

let attrs t = List.map (fun sp -> sp.attr) t.specs

let specs t = t.specs

let deltas t attr = List.assoc_opt attr t.deltas

(* Each scenario draws from its own PRNG stream derived from the user
   seed and the scenario index, so scenario [s] is bitwise-identical no
   matter how many scenarios are generated alongside it (optimization
   and validation sets can be split freely). The golden-ratio odd
   multiplier decorrelates neighbouring streams. *)
let scenario_seed seed s = seed lxor ((s + 1) * 0x1E3779B97F4A7C15)

let check_specs specs rel =
  let schema = Relalg.Relation.schema rel in
  let rec go = function
    | [] -> Ok ()
    | sp :: rest -> (
      match Relalg.Schema.index_of_opt schema sp.attr with
      | None -> Error (Printf.sprintf "unknown noise attribute %S" sp.attr)
      | Some i -> (
        match (Relalg.Schema.attr_at schema i).ty with
        | Relalg.Value.TFloat -> go rest
        | Relalg.Value.TInt | Relalg.Value.TStr | Relalg.Value.TBool ->
          (* continuous perturbations only; realized scenarios must
             stay schema-typed *)
          Error
            (Printf.sprintf "noise attribute %S is not a float column" sp.attr)))
  in
  go specs

let generate ?(seed = 1) ~scenarios specs rel =
  if scenarios <= 0 then Error "scenario count must be positive"
  else if specs = [] then Error "empty noise spec"
  else
    match check_specs specs rel with
    | Error _ as e -> e
    | Ok () ->
      let n = Relalg.Relation.cardinality rel in
      let deltas =
        List.map (fun sp -> sp.attr, Array.make_matrix scenarios n 0.) specs
      in
      let bufs =
        List.map2 (fun sp (_, m) -> sp, m) specs deltas
      in
      for s = 0 to scenarios - 1 do
        let rng = Prng.create (scenario_seed seed s) in
        for row = 0 to n - 1 do
          (* one shared standard-normal factor per (scenario, row)
             couples the attributes — the Galaxy band model's shared
             base brightness, applied to perturbations *)
          let shared = Prng.gaussian rng in
          List.iter
            (fun (sp, m) ->
              let own = Prng.gaussian rng in
              let z =
                (sp.corr *. shared)
                +. (sqrt (1. -. (sp.corr *. sp.corr)) *. own)
              in
              m.(s).(row) <- sp.sigma *. z)
            bufs
        done
      done;
      Ok { rel; specs; scenarios; deltas }

let generate_exn ?seed ~scenarios specs rel =
  match generate ?seed ~scenarios specs rel with
  | Ok t -> t
  | Error msg -> invalid_arg ("Scenario.generate: " ^ msg)

let realize t s =
  if s < 0 || s >= t.scenarios then
    invalid_arg "Scenario.realize: scenario index out of range";
  let schema = Relalg.Relation.schema t.rel in
  let noisy =
    List.map
      (fun (attr, m) -> Relalg.Schema.index_of schema attr, m.(s))
      t.deltas
  in
  let b = Relalg.Relation.builder schema in
  Relalg.Relation.iter
    (fun row tuple ->
      let tuple = Array.copy tuple in
      List.iter
        (fun (i, ds) ->
          match Relalg.Value.to_float_opt tuple.(i) with
          | Some v -> tuple.(i) <- Relalg.Value.Float (v +. ds.(row))
          | None -> ())
        noisy;
      Relalg.Relation.add b tuple)
    t.rel;
  Relalg.Relation.seal b
