type def = {
  name : string;
  paql : string;
  attrs : string list;
  maximize : bool;
}

let mean rel attr =
  match Relalg.Aggregate.over rel (Relalg.Aggregate.Avg attr) with
  | Relalg.Value.Null -> 0.
  | v -> Relalg.Value.to_float v

(* The query texts interpolate bounds of the form
   [expected package size * per-tuple mean], following Section 5.1. *)

let galaxy_queries rel =
  let m a = mean rel a in
  let mu_red = m "redshift" and mu_u = m "u" and mu_g = m "g" in
  let mu_r = m "r" and mu_i = m "i" and mu_dec = m "dec" in
  [
    {
      name = "Q1";
      (* bright-region search: bounded total redshift, biggest radii *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) = 10 AND SUM(P.redshift) <= %g MAXIMIZE \
           SUM(P.petro_rad)"
          (10. *. mu_red);
      attrs = [ "redshift"; "petro_rad" ];
      maximize = true;
    };
    {
      name = "Q2";
      (* two razor-thin photometric windows; proving optimality over a
         sea of near-ties defeats the solver's budget (the paper's Q2
         defeats CPLEX outright) *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) BETWEEN 8 AND 12 AND SUM(P.u) BETWEEN %g AND %g AND \
           SUM(P.g) BETWEEN %g AND %g MINIMIZE SUM(P.exp_ab)"
          (9.995 *. mu_u) (10.005 *. mu_u) (9.995 *. mu_g) (10.005 *. mu_g);
      attrs = [ "u"; "g"; "exp_ab" ];
      maximize = false;
    };
    {
      name = "Q3";
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) = 15 AND AVG(P.redshift) <= %g MAXIMIZE \
           SUM(P.petro_rad)"
          (0.8 *. mu_red);
      attrs = [ "redshift"; "petro_rad" ];
      maximize = true;
    };
    {
      name = "Q4";
      (* balanced high/low redshift membership via conditional counts *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) = 12 AND (SELECT COUNT(*) FROM P WHERE redshift > %g) \
           >= (SELECT COUNT(*) FROM P WHERE redshift <= %g) MINIMIZE \
           SUM(P.exp_ab)"
          mu_red mu_red;
      attrs = [ "redshift"; "exp_ab" ];
      maximize = false;
    };
    {
      name = "Q5";
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) = 5 AND SUM(P.dec) >= %g MAXIMIZE SUM(P.z)"
          (5. *. mu_dec);
      attrs = [ "dec"; "z" ];
      maximize = true;
    };
    {
      name = "Q6";
      (* repetition allowed; thin i-band window, minimize u *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 1 SUCH THAT \
           COUNT(P.*) = 12 AND SUM(P.i) BETWEEN %g AND %g MINIMIZE SUM(P.u)"
          (11.99 *. mu_i) (12.01 *. mu_i);
      attrs = [ "i"; "u" ];
      maximize = false;
    };
    {
      name = "Q7";
      paql =
        Printf.sprintf
          "SELECT PACKAGE(G) AS P FROM Galaxy G REPEAT 0 SUCH THAT \
           COUNT(P.*) BETWEEN 8 AND 15 AND SUM(P.u) <= %g AND SUM(P.g) <= \
           %g AND SUM(P.r) >= %g MAXIMIZE SUM(P.i)"
          (15.5 *. mu_u) (15.5 *. mu_g) (7.5 *. mu_r);
      attrs = [ "u"; "g"; "r"; "i" ];
      maximize = true;
    };
  ]

let tpch_queries rel =
  let m a = mean rel a in
  let mu_qty = m "l_quantity" and mu_price = m "p_retailprice" in
  let mu_sacct = m "s_acctbal" and mu_ototal = m "o_totalprice" in
  let mu_cacct = m "c_acctbal" and mu_disc = m "l_discount" in
  let mu_psize = m "p_size" in
  [
    {
      name = "Q1";
      (* pricing summary flavour: bounded quantity, max revenue *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           = 20 AND SUM(P.l_quantity) <= %g MAXIMIZE SUM(P.l_extendedprice)"
          (20. *. mu_qty);
      attrs = [ "l_quantity"; "l_extendedprice" ];
      maximize = true;
    };
    {
      name = "Q2";
      (* minimum-cost supplier flavour; thin retail-price window makes
         the minimization tight *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           = 10 AND SUM(P.s_acctbal) >= %g AND SUM(P.p_retailprice) BETWEEN \
           %g AND %g MINIMIZE SUM(P.ps_supplycost)"
          (10. *. mu_sacct) (9.95 *. mu_price) (10.05 *. mu_price);
      attrs = [ "s_acctbal"; "p_retailprice"; "ps_supplycost" ];
      maximize = false;
    };
    {
      name = "Q3";
      (* shipping priority flavour *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           BETWEEN 5 AND 15 AND SUM(P.o_totalprice) <= %g MAXIMIZE \
           SUM(P.l_extendedprice)"
          (12. *. mu_ototal);
      attrs = [ "o_totalprice"; "l_extendedprice" ];
      maximize = true;
    };
    {
      name = "Q4";
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           = 8 AND AVG(P.l_discount) <= %g MAXIMIZE SUM(P.o_totalprice)"
          mu_disc;
      attrs = [ "l_discount"; "o_totalprice" ];
      maximize = true;
    };
    {
      name = "Q5";
      (* touches both optional join blocks: smallest non-NULL subset *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           = 5 AND SUM(P.c_acctbal) >= %g MAXIMIZE SUM(P.s_acctbal)"
          (5. *. mu_cacct);
      attrs = [ "c_acctbal"; "s_acctbal" ];
      maximize = true;
    };
    {
      name = "Q6";
      (* lineitem-only: the largest table (Figure 3's 11.8M analogue) *)
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           BETWEEN 10 AND 20 AND SUM(P.l_discount) <= %g MAXIMIZE \
           SUM(P.l_extendedprice)"
          (16. *. mu_disc);
      attrs = [ "l_discount"; "l_extendedprice" ];
      maximize = true;
    };
    {
      name = "Q7";
      paql =
        Printf.sprintf
          "SELECT PACKAGE(T) AS P FROM Tpch T REPEAT 0 SUCH THAT COUNT(P.*) \
           = 12 AND (SELECT COUNT(*) FROM P WHERE p_size > %g) >= 6 \
           MINIMIZE SUM(P.l_quantity)"
          mu_psize;
      attrs = [ "p_size"; "l_quantity" ];
      maximize = false;
    };
  ]

let query_relation ~dataset rel def =
  match dataset with
  | `Galaxy -> rel
  | `Tpch -> Tpch.non_null_subset rel def.attrs

let workload_attrs defs =
  let seen = Hashtbl.create 16 and out = ref [] in
  List.iter
    (fun d ->
      List.iter
        (fun a ->
          if not (Hashtbl.mem seen a) then begin
            Hashtbl.add seen a ();
            out := a :: !out
          end)
        d.attrs)
    defs;
  List.rev !out

let compile rel def =
  let ast =
    match Paql.Parser.parse def.paql with
    | Ok q -> q
    | Error msg -> invalid_arg (def.name ^ ": " ^ msg)
  in
  Paql.Translate.compile_exn (Relalg.Relation.schema rel) ast

(* ------------------------------------------------------------------ *)
(* Mixed workloads (service layer)                                    *)
(* ------------------------------------------------------------------ *)

let mixed ?(seed = 1) ?(repeat_rate = 0.5) ?(stochastic_rate = 0.) ~dataset ~n
    rel =
  let rng = Random.State.make [| seed; 0x5ca1ab1e |] in
  let table, alias =
    match dataset with `Galaxy -> ("Galaxy", "G") | `Tpch -> ("Tpch", "T")
  in
  let pool =
    match dataset with
    | `Galaxy -> Galaxy.numeric_attrs
    (* lineitem block only: always non-NULL, so every synthesized
       query is well-defined over the whole pre-joined relation *)
    | `Tpch -> [ "l_quantity"; "l_extendedprice"; "l_discount"; "l_tax" ]
  in
  let means = List.map (fun a -> (a, mean rel a)) pool in
  let pick l = List.nth l (Random.State.int rng (List.length l)) in
  let fresh i =
    let a1 = pick pool in
    let a2 = pick (List.filter (fun a -> a <> a1) pool) in
    let k = 2 + Random.State.int rng 5 in
    let mu = List.assoc a1 means in
    (* generous Section 5.1-style bound, perturbed per entry so fresh
       queries are semantically distinct (token-level variation alone
       would not defeat a fingerprint cache) *)
    let slack = 1. +. (0.03 *. float_of_int (i mod 29)) in
    let kf = float_of_int k in
    let maximize = Random.State.bool rng in
    (* the && short-circuit keeps rate-0 streams byte-identical to the
       historical generator (no rng draw is consumed) *)
    let stochastic =
      stochastic_rate > 0. && Random.State.float rng 1. < stochastic_rate
    in
    if stochastic then begin
      (* a generously low >= bound the package clears with high
         empirical probability, qualified WITH PROBABILITY, plus an
         EXPECTED objective — both stochastic grammar forms in one
         entry. REPEAT 0 keeps the naive big-M baseline applicable. *)
      let bound = ((kf *. mu) -. (kf *. (Float.abs mu +. 1.))) *. slack in
      let p = List.nth [ 0.8; 0.9; 0.95 ] (Random.State.int rng 3) in
      {
        name = Printf.sprintf "W%d" i;
        paql =
          Printf.sprintf
            "SELECT PACKAGE(%s) AS P FROM %s %s REPEAT 0 SUCH THAT \
             COUNT(P.*) = %d AND SUM(P.%s) >= %.6g WITH PROBABILITY %g %s \
             EXPECTED SUM(P.%s)"
            alias table alias k a1 bound p
            (if maximize then "MAXIMIZE" else "MINIMIZE")
            a2;
        attrs = [ a1; a2 ];
        maximize;
      }
    end
    else
      let bound = ((kf *. mu) +. (kf *. (Float.abs mu +. 1.))) *. slack in
      {
        name = Printf.sprintf "W%d" i;
        paql =
          Printf.sprintf
            "SELECT PACKAGE(%s) AS P FROM %s %s REPEAT 0 SUCH THAT COUNT(P.*) \
             = %d AND SUM(P.%s) <= %.6g %s SUM(P.%s)"
            alias table alias k a1 bound
            (if maximize then "MAXIMIZE" else "MINIMIZE")
            a2;
        attrs = [ a1; a2 ];
        maximize;
      }
  in
  let rec build i acc emitted =
    if i > n then List.rev acc
    else
      let repeat =
        emitted <> [] && Random.State.float rng 1. < repeat_rate
      in
      let d =
        if repeat then List.nth emitted (Random.State.int rng (List.length emitted))
        else fresh i
      in
      build (i + 1) (d :: acc) (if repeat then emitted else d :: emitted)
  in
  build 1 [] []

(* ------------------------------------------------------------------ *)
(* Mutation mixes (durability layer)                                  *)
(* ------------------------------------------------------------------ *)

type op =
  | Op_query of def
  | Op_append of { aname : string; rows : int; aseed : int }

let append_batch ~dataset ~rows ~seed =
  match dataset with
  | `Galaxy -> Galaxy.generate ~seed rows
  | `Tpch -> Tpch.generate ~seed rows

let mixed_ops ?(seed = 1) ?(repeat_rate = 0.5) ?(stochastic_rate = 0.)
    ?(appends = 0) ~dataset ~n rel =
  let queries = mixed ~seed ~repeat_rate ~stochastic_rate ~dataset ~n rel in
  if appends <= 0 then List.map (fun d -> Op_query d) queries
  else begin
    (* deterministic interleave: appends are spread evenly through the
       query stream, each with a batch size and seed derived from the
       workload seed so the whole mutation history replays bit-for-bit *)
    let every = max 1 (n / appends) in
    let out = ref [] in
    let made = ref 0 in
    List.iteri
      (fun i d ->
        out := Op_query d :: !out;
        if (i + 1) mod every = 0 && !made < appends then begin
          incr made;
          out :=
            Op_append
              {
                aname = Printf.sprintf "A%d" !made;
                rows = 1 + ((seed + !made) mod 5);
                aseed = (seed * 1009) + !made;
              }
            :: !out
        end)
      queries;
    (* any leftovers (n not divisible) trail the stream *)
    while !made < appends do
      incr made;
      out :=
        Op_append
          {
            aname = Printf.sprintf "A%d" !made;
            rows = 1 + ((seed + !made) mod 5);
            aseed = (seed * 1009) + !made;
          }
        :: !out
    done;
    List.rev !out
  end

let render_ops ops =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# pkgq workload: NAME<TAB>QUERY per line; append entries are \
     NAME<TAB>@APPEND rows=R seed=S\n";
  List.iter
    (function
      | Op_query d ->
        Buffer.add_string b d.name;
        Buffer.add_char b '\t';
        Buffer.add_string b d.paql;
        Buffer.add_char b '\n'
      | Op_append { aname; rows; aseed } ->
        Buffer.add_string b
          (Printf.sprintf "%s\t@APPEND rows=%d seed=%d\n" aname rows aseed))
    ops;
  Buffer.contents b

let parse_ops text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           let name, body =
             match String.index_opt line '\t' with
             | Some i ->
               ( String.sub line 0 i,
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)) )
             | None -> ("?", line)
           in
           if String.length body >= 7 && String.sub body 0 7 = "@APPEND" then
             let rest = String.sub body 7 (String.length body - 7) in
             let kvs =
               String.split_on_char ' ' rest
               |> List.filter (fun s -> s <> "")
               |> List.filter_map (fun s ->
                      match String.index_opt s '=' with
                      | Some j ->
                        Some
                          ( String.sub s 0 j,
                            String.sub s (j + 1) (String.length s - j - 1) )
                      | None -> None)
             in
             let geti k default =
               match List.assoc_opt k kvs with
               | Some v -> ( match int_of_string_opt v with
                 | Some n -> n
                 | None -> default)
               | None -> default
             in
             Some (`Append (name, geti "rows" 1, geti "seed" 1))
           else Some (`Query (name, body)))

let render_workload defs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "# pkgq workload: one NAME<TAB>QUERY per line; repeats share the exact \
     text\n";
  List.iter
    (fun d ->
      Buffer.add_string b d.name;
      Buffer.add_char b '\t';
      Buffer.add_string b d.paql;
      Buffer.add_char b '\n')
    defs;
  Buffer.contents b

let parse_workload text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '\t' with
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.trim
                   (String.sub line (i + 1) (String.length line - i - 1)) )
           | None -> Some ("?", line))
