let src = Logs.Src.create "pkgq.server" ~doc:"package-query server"

module Log = (val Logs.src_log src : Logs.LOG)

type method_ = Direct | Sketch_refine | Parallel_refine | Progressive | Stochastic

type config = {
  host : string;
  port : int;
  workers : int;
  queue : int;
  result_cache : int;
  plan_cache : int;
  basis_cache : int;
  method_ : method_;
  attrs : string list;
  tau : int option;
  epsilon : float option;
  limits : Ilp.Branch_bound.limits;
  request_seconds : float;
  log_every : float;
  wal_dir : string option;
  wal_checkpoint : int;
}

let int_env name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default)

(* PKGQ_RESULT_CACHE accepts a capacity, or "off"/"0" to disable. *)
let cache_env name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match String.lowercase_ascii (String.trim s) with
    | "off" | "none" | "0" -> 0
    | s -> (
      match int_of_string_opt s with Some n when n > 0 -> n | _ -> default))

let default_config () =
  {
    host = "127.0.0.1";
    port = 0;
    workers = max 1 (int_env "PKGQ_SERVE_WORKERS" 4);
    queue = max 1 (int_env "PKGQ_SERVE_QUEUE" 32);
    result_cache = cache_env "PKGQ_RESULT_CACHE" 256;
    plan_cache = 64;
    basis_cache = cache_env "PKGQ_BASIS_CACHE" 128;
    method_ = Direct;
    attrs = [];
    tau = None;
    epsilon = None;
    limits = Ilp.Branch_bound.default_limits;
    request_seconds = 60.;
    log_every = 0.;
    wal_dir = None;
    (* PKGQ_WAL_CHECKPOINT: records between checkpoints; off/0 = never *)
    wal_checkpoint = cache_env "PKGQ_WAL_CHECKPOINT" 64;
  }

(* ------------------------------------------------------------------ *)
(* State snapshots                                                    *)
(* ------------------------------------------------------------------ *)

type part_entry = {
  pe_attrs : string list;
  pe_tau : int;
  pe_radius : Pkg.Partition.radius_spec;
  pe_part : Pkg.Partition.t;
}

(* One immutable view of the served table. Appends swap in a whole new
   snapshot under [state_mu]; a request holds on to the snapshot it
   started with, so it never sees a half-updated table. *)
type snapshot = {
  rel : Relalg.Relation.t;
  fp : string;  (* content fingerprint *)
  parts : (string, part_entry) Hashtbl.t;
  (* progressive-shading hierarchies, same keying discipline as
     [parts]; shared with the catalog (one entry per level) *)
  hiers : (string, Pkg.Hierarchy.t) Hashtbl.t;
  parts_mu : Mutex.t;
}

type t = {
  cfg : config;
  catalog : Store.Catalog.t option;
  metrics : Metrics.t;
  sched : Scheduler.t;
  plan_cache : (string, Paql.Ast.query * Paql.Translate.spec) Cache.t;
  result_cache : (string, Protocol.response) Cache.t;
  basis_cache : (string, Lp.Simplex.Basis.t) Cache.t;
  (* Sketch/refine contexts for the shard verbs, keyed by query
     fingerprint @ table fingerprint: one candidate scan per (query,
     snapshot) instead of one per REFINE call. *)
  ctx_cache : (string, Pkg.Sketch.ctx) Cache.t;
  (* The coordinator-installed group assignment: which partition groups
     this process serves, with their expected member row ids (checked
     against the locally derived partitioning — divergence is a typed
     error, not a wrong answer). *)
  mutable shard_groups : (int * int array) list option;
  shard_mu : Mutex.t;
  (* Membership fencing: [srv_epoch] is the highest epoch ever
     installed here (via LEASE, or recovered from the WAL's stamps);
     [lease_deadline] is when this node must stop acking writes (None =
     never leased: the standalone write contract, always writable).
     The server demotes itself at 90% of the granted ttl, forfeiting a
     skew margin so it is read-only strictly before the coordinator —
     which waits out the full ttl — can grant the next epoch. *)
  mutable srv_epoch : int;
  mutable lease_deadline : float option;
  mutable demoted : bool;
  fence_mu : Mutex.t;
  mutable state : snapshot;
  state_mu : Mutex.t;
  wal : Store.Wal.t option;
  recovery : Store.Recovery.stats option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable accept_thread : Thread.t option;
  mutable log_thread : Thread.t option;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  conns_mu : Mutex.t;
  mutable stopped : bool;
  mutable finished : bool;
  stop_mu : Mutex.t;
  stop_cond : Condition.t;
}

let port t = t.bound_port
let metrics t = t.metrics
let config t = t.cfg
let solve_count t = Metrics.get t.metrics "solves"
let table_fingerprint t = Mutex.protect t.state_mu (fun () -> t.state.fp)

let table_rows t =
  Mutex.protect t.state_mu (fun () ->
      Relalg.Relation.cardinality t.state.rel)

let last_recovery t = t.recovery

let current_epoch t = Mutex.protect t.fence_mu (fun () -> t.srv_epoch)

(* Numeric columns are materialized lazily into a per-attribute slot;
   forcing them before any worker runs keeps the hot path free of
   same-column races and duplicate extraction work. *)
let prewarm rel =
  let schema = Relalg.Relation.schema rel in
  List.iter
    (fun (a : Relalg.Schema.attr) ->
      match a.ty with
      | Relalg.Value.TInt | Relalg.Value.TFloat ->
        ignore (Relalg.Relation.column rel a.name)
      | Relalg.Value.TStr | Relalg.Value.TBool -> ())
    (Relalg.Schema.attrs schema)

let fresh_snapshot rel =
  prewarm rel;
  {
    rel;
    fp = Store.Segment.fingerprint rel;
    parts = Hashtbl.create 4;
    hiers = Hashtbl.create 4;
    parts_mu = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let status_line (r : Pkg.Eval.report) =
  Format.asprintf "%a%s" Pkg.Eval.pp_status r.status
    (match r.objective with
    | Some o -> Format.asprintf ", obj=%g" o
    | None -> "")

let plan t snap qfp query =
  match Cache.find_opt t.plan_cache qfp with
  | Some p ->
    Metrics.incr t.metrics "plan_hits";
    Ok p
  | None ->
    Metrics.incr t.metrics "plan_misses";
    Metrics.time t.metrics "plan" (fun () ->
        let parsed =
          Metrics.time t.metrics "parse" (fun () ->
              try Paql.Parser.parse query with
              | Paql.Lexer.Lex_error (msg, pos) ->
                Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
              | Paql.Parser.Parse_error (msg, pos) ->
                Error (Printf.sprintf "parse error at offset %d: %s" pos msg))
        in
        match parsed with
        | Error msg -> Error (Protocol.Resp_err (Protocol.Parse_error, msg))
        | Ok ast -> (
          let schema = Relalg.Relation.schema snap.rel in
          match Paql.Analyze.check schema ast with
          | Error errs ->
            Error (Protocol.Resp_err (Protocol.Analysis_error, String.concat "\n" errs))
          | Ok () -> (
            match Paql.Translate.compile_exn schema ast with
            | exception Failure msg ->
              Error (Protocol.Resp_err (Protocol.Analysis_error, msg))
            | spec ->
              Cache.add t.plan_cache qfp (ast, spec);
              Ok (ast, spec))))

let numeric_query_attrs schema ast =
  List.filter
    (fun a ->
      match Relalg.Schema.index_of_opt schema a with
      | Some i -> (
        match (Relalg.Schema.attr_at schema i).Relalg.Schema.ty with
        | Relalg.Value.TInt | Relalg.Value.TFloat -> true
        | Relalg.Value.TStr | Relalg.Value.TBool -> false)
      | None -> false)
    (Paql.Ast.all_attrs ast)

(* Partitionings are shared per snapshot (and with the catalog, when
   one is attached). Built under [parts_mu]: concurrent requests for
   the same key wait for the one build instead of duplicating it. *)
let partition_for t snap ast spec =
  let schema = Relalg.Relation.schema snap.rel in
  let attrs =
    match t.cfg.attrs with [] -> numeric_query_attrs schema ast | attrs -> attrs
  in
  if attrs = [] then
    Error
      (Protocol.Resp_err
         ( Protocol.Analysis_error,
           "sketchrefine needs numeric partitioning attributes" ))
  else begin
    let tau =
      match t.cfg.tau with
      | Some tau -> tau
      | None -> max 1 (Relalg.Relation.cardinality snap.rel / 10)
    in
    let radius =
      match t.cfg.epsilon with
      | None -> Pkg.Partition.No_radius
      | Some epsilon ->
        let maximize =
          match Paql.Translate.objective_sense spec with
          | Lp.Problem.Maximize -> true
          | Lp.Problem.Minimize -> false
        in
        Pkg.Partition.Theorem { epsilon; maximize }
    in
    let id =
      Printf.sprintf "%s|%d|%s" (String.concat "," attrs) tau
        (Store.Catalog.radius_string radius)
    in
    Ok
      (Mutex.protect snap.parts_mu (fun () ->
           match Hashtbl.find_opt snap.parts id with
           | Some e -> e.pe_part
           | None ->
             let part =
               Metrics.time t.metrics "partition" (fun () ->
                   let build () =
                     Pkg.Partition.create ~radius ~tau ~attrs snap.rel
                   in
                   match t.catalog with
                   | Some cat ->
                     let key =
                       { Store.Catalog.fingerprint = snap.fp; attrs; tau; radius;
                         level = None }
                     in
                     fst (Store.Catalog.lookup_or_build cat key ~build)
                   | None -> build ())
             in
             Hashtbl.replace snap.parts id
               { pe_attrs = attrs; pe_tau = tau; pe_radius = radius;
                 pe_part = part };
             part))
  end

(* Progressive hierarchies follow the same sharing discipline as
   [partition_for]: per-snapshot cache under [parts_mu], catalog-backed
   (one entry per level) when a store is attached. The injected
   [partition=build:fail] fault surfaces as a typed error response. *)
let hierarchy_for t snap ast spec =
  let schema = Relalg.Relation.schema snap.rel in
  let attrs =
    match t.cfg.attrs with [] -> numeric_query_attrs schema ast | attrs -> attrs
  in
  if attrs = [] then
    Error
      (Protocol.Resp_err
         ( Protocol.Analysis_error,
           "progressive needs numeric partitioning attributes" ))
  else begin
    let radius =
      match t.cfg.epsilon with
      | None -> Pkg.Partition.No_radius
      | Some epsilon ->
        let maximize =
          match Paql.Translate.objective_sense spec with
          | Lp.Problem.Maximize -> true
          | Lp.Problem.Minimize -> false
        in
        Pkg.Partition.Theorem { epsilon; maximize }
    in
    let id =
      Printf.sprintf "hier|%s|%s|%s" (String.concat "," attrs)
        (match t.cfg.tau with Some tau -> string_of_int tau | None -> "-")
        (Store.Catalog.radius_string radius)
    in
    Mutex.protect snap.parts_mu (fun () ->
        match Hashtbl.find_opt snap.hiers id with
        | Some h -> Ok h
        | None -> (
          match
            Metrics.time t.metrics "partition" (fun () ->
                match t.catalog with
                | Some cat ->
                  fst
                    (Store.Catalog.lookup_or_build_hierarchy cat
                       ~fingerprint:snap.fp ~radius ?leaf_tau:t.cfg.tau ~attrs
                       snap.rel)
                | None ->
                  Pkg.Hierarchy.build ~radius ?leaf_tau:t.cfg.tau ~attrs
                    snap.rel)
          with
          | h ->
            Hashtbl.replace snap.hiers id h;
            Ok h
          | exception Pkg.Faults.Injected msg ->
            Error (Protocol.Resp_err (Protocol.Failed, msg))))
  end

(* Per-level descent telemetry for STATS: one latency histogram and two
   gauges per level, plus a widened-retry counter. *)
let record_level_stats metrics stats =
  List.iter
    (fun (s : Pkg.Progressive.level_stat) ->
      let l = string_of_int s.ls_level in
      Metrics.observe metrics ("progressive_level" ^ l) s.ls_seconds;
      Metrics.set_gauge metrics ("progressive_level" ^ l ^ "_groups")
        s.ls_groups;
      Metrics.set_gauge metrics ("progressive_level" ^ l ^ "_active")
        s.ls_active;
      if s.ls_widened then Metrics.incr metrics "progressive_widened")
    stats

(* SummarySearch telemetry for STATS: how many scenarios the last
   stochastic evaluation drew, how finely it summarized, how many
   solve/validate rounds it took, and the out-of-sample probability it
   certified (per-mille — gauges are integers). Stage latencies land
   through the [Eval] observer under [scenario]/[summary]/[validate]. *)
let record_stoch_stats metrics (st : Pkg.Stochastic.stats) =
  if st.Pkg.Stochastic.st_scenarios > 0 then begin
    Metrics.set_gauge metrics "stoch_scenarios" st.Pkg.Stochastic.st_scenarios;
    Metrics.set_gauge metrics "stoch_validation" st.Pkg.Stochastic.st_validation;
    Metrics.set_gauge metrics "stoch_summaries" st.Pkg.Stochastic.st_summaries;
    Metrics.set_gauge metrics "stoch_rounds" st.Pkg.Stochastic.st_rounds;
    Metrics.set_gauge metrics "stoch_validated_pm"
      (int_of_float (Float.round (st.Pkg.Stochastic.st_validated *. 1000.)))
  end

let response_of_report (r : Pkg.Eval.report) =
  match r.status with
  | Pkg.Eval.Infeasible -> Protocol.Resp_err (Protocol.Infeasible, status_line r)
  | Pkg.Eval.Degraded _ ->
    (* Single-node evaluation never degrades; the coordinator renders
       its own Degraded bodies. Mapped anyway so the taxonomy stays
       total. *)
    Protocol.Resp_err (Protocol.Degraded, status_line r)
  | Pkg.Eval.Failed f ->
    let code =
      match f.kind with
      | Pkg.Eval.Deadline_exceeded -> Protocol.Deadline
      | Pkg.Eval.Rejected _ -> Protocol.Rejected
      | _ -> Protocol.Failed
    in
    Protocol.Resp_err (code, Format.asprintf "%a" Pkg.Eval.pp_failure f)
  | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> (
    match r.package with
    | None -> Protocol.Resp_err (Protocol.Failed, "no package produced")
    | Some p ->
      let csv = Relalg.Csv.to_string (Pkg.Package.materialize p) in
      Protocol.Resp_ok
        (Protocol.render_result ~status_line:(status_line r) ~wall:r.wall_time
           ~csv))

(* Only proven outcomes are safe to replay: a Feasible gap depends on
   the budget the original request happened to have left, and failures
   should retry. *)
let cacheable (r : Pkg.Eval.report) =
  match r.status with
  | Pkg.Eval.Optimal | Pkg.Eval.Infeasible -> true
  | Pkg.Eval.Feasible _ | Pkg.Eval.Failed _ | Pkg.Eval.Degraded _ -> false

(* The STATS verb reports the process-wide simplex counters as gauges:
   they are cumulative totals read from [Lp.Simplex.counters], so a
   re-sync after every solve is idempotent under concurrency (no
   delta-accounting to double count). *)
let sync_solver_gauges metrics =
  let c = Lp.Simplex.counters () in
  Metrics.set_gauge metrics "solver_pivots" c.Lp.Simplex.pivots;
  Metrics.set_gauge metrics "solver_dual_pivots" c.Lp.Simplex.dual_pivots;
  Metrics.set_gauge metrics "solver_refactorizations"
    c.Lp.Simplex.refactorizations;
  Metrics.set_gauge metrics "solver_cold_solves" c.Lp.Simplex.cold_solves;
  Metrics.set_gauge metrics "solver_warm_attempts" c.Lp.Simplex.warm_attempts;
  Metrics.set_gauge metrics "solver_warm_hits" c.Lp.Simplex.warm_hits

let eval_query t ~deadline query =
  let snap = Mutex.protect t.state_mu (fun () -> t.state) in
  let qfp = Paql.Fingerprint.of_query query in
  (* Planning happens before the result-cache probe: a stochastic
     query's answer depends on the scenario knobs (PKGQ_SCENARIOS /
     PKGQ_VALIDATE / PKGQ_SUMMARIES and the seed), so its cache key
     must carry them — the same query text under a re-tuned
     environment is a different result. The plan cache makes the extra
     parse on a repeat hit free. Keys still end with the table
     fingerprint, which append/delete invalidation matches on. *)
  match plan t snap qfp query with
  | Error resp -> resp
  | Ok (ast, spec) -> (
    let stochastic =
      Paql.Translate.is_stochastic spec || t.cfg.method_ = Stochastic
    in
    let stoch_opts = if stochastic then Some (Pkg.Stochastic.default_options ()) else None in
    let rkey =
      match stoch_opts with
      | Some o ->
        Printf.sprintf "%s#stoch:%d:%d:%d:%d@%s" qfp o.Pkg.Stochastic.scenarios
          o.Pkg.Stochastic.validation o.Pkg.Stochastic.summaries
          o.Pkg.Stochastic.seed snap.fp
      | None -> qfp ^ "@" ^ snap.fp
    in
    match Cache.find_opt t.result_cache rkey with
    | Some resp ->
      Metrics.incr t.metrics "result_hits";
      resp
    | None ->
      Metrics.incr t.metrics "result_misses";
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then
        Protocol.Resp_err
          ( Protocol.Deadline,
            "deadline exceeded: request budget ran out before evaluation" )
      else begin
        let limits =
          {
            t.cfg.limits with
            Ilp.Branch_bound.max_seconds =
              Float.min t.cfg.limits.Ilp.Branch_bound.max_seconds remaining;
          }
        in
        let run () =
          Metrics.incr t.metrics "solves";
          Metrics.time t.metrics "solve" (fun () ->
              match stoch_opts with
              | Some o ->
                (* WITH PROBABILITY / EXPECTED queries route to the
                   SummarySearch driver whatever the configured method;
                   --method stochastic also sends deterministic queries
                   here (they delegate to DIRECT inside). *)
                let options =
                  { o with Pkg.Stochastic.limits; max_seconds = remaining }
                in
                let report, stats = Pkg.Stochastic.run ~options spec snap.rel in
                record_stoch_stats t.metrics stats;
                Ok report
              | None ->
              match t.cfg.method_ with
              | Stochastic -> assert false (* stoch_opts is Some above *)
              | Direct ->
                (* Basis cache: keyed by the query's *structure*
                   fingerprint (numeric literals abstracted) plus the
                   table fingerprint. Parameter-tweaked variants of one
                   query build ILPs over identical columns, so the
                   optimal root basis of one warm-starts the next. *)
                let bkey =
                  Paql.Fingerprint.structure_of_query query ^ "@" ^ snap.fp
                in
                let warm_basis = Cache.find_opt t.basis_cache bkey in
                Metrics.incr t.metrics
                  (match warm_basis with
                  | Some _ -> "basis_hits"
                  | None -> "basis_misses");
                let basis_out = ref None in
                let report =
                  Pkg.Direct.run ~limits ?warm_basis ~basis_out spec snap.rel
                in
                (match !basis_out with
                | Some b -> Cache.add t.basis_cache bkey b
                | None -> ());
                Ok report
              | Progressive -> (
                match hierarchy_for t snap ast spec with
                | Error resp -> Error resp
                | Ok hier ->
                  let options =
                    {
                      Pkg.Progressive.default_options with
                      limits;
                      max_seconds = remaining;
                    }
                  in
                  let report, stats =
                    Pkg.Progressive.run ~options spec snap.rel hier
                  in
                  record_level_stats t.metrics stats;
                  Ok report)
              | Sketch_refine | Parallel_refine -> (
                match partition_for t snap ast spec with
                | Error resp -> Error resp
                | Ok part ->
                  let options =
                    {
                      Pkg.Sketch_refine.default_options with
                      limits;
                      max_seconds = remaining;
                    }
                  in
                  Ok
                    (match t.cfg.method_ with
                    | Parallel_refine ->
                      Pkg.Parallel.run ~options spec snap.rel part
                    | _ -> Pkg.Sketch_refine.run ~options spec snap.rel part)))
        in
        match run () with
        | Error resp -> resp
        | Ok report ->
          sync_solver_gauges t.metrics;
          let resp = response_of_report report in
          if cacheable report then Cache.add t.result_cache rkey resp;
          resp
      end)

(* ------------------------------------------------------------------ *)
(* Appends                                                            *)
(* ------------------------------------------------------------------ *)

let concat_rows a b =
  let sa = Relalg.Relation.schema a in
  if not (Relalg.Schema.equal sa (Relalg.Relation.schema b)) then
    invalid_arg "append: schemas differ";
  Relalg.Relation.of_rows sa
    (Relalg.Relation.to_list a @ Relalg.Relation.to_list b)

(* The write path makes the op durable first: under [state_mu] the WAL
   record is written and synced (when a log is attached), and only then
   is the op applied to the snapshot — so an acknowledgement always
   names bytes that survive a crash, and a failed sync (rolled back by
   [Wal.append]) leaves the state untouched. *)

(* Returns the durable record's sequence number (None without a log):
   acks carry it so a coordinator can tell which WAL prefix it has
   actually acknowledged — the catch-up ship at promotion must not
   replicate records whose ack never left this process. *)
let wal_log t ~epoch op =
  match t.wal with
  | None -> None
  | Some wal -> (
    match Store.Wal.append ~epoch wal op with
    | seq ->
      Metrics.incr t.metrics "wal_records";
      (* published so a coordinator can read replica lag (primary seq
         minus shipped seq) straight off two STATS snapshots *)
      Metrics.set_gauge t.metrics "wal_last_seq" (Store.Wal.last_seq wal);
      Some seq
    | exception (Store.Wal.Sync_failed _ as e) ->
      Metrics.incr t.metrics "wal_sync_failures";
      raise e)

exception Fenced_write of string

(* The write gate: called (under [state_mu]) after validation and
   before the WAL write, so a fenced op never becomes durable here.
   [epoch] is the coordinator's stamp ([None] for a direct, unstamped
   client — the standalone contract, always admitted at the installed
   epoch). Returns the epoch to stamp into the WAL record. *)
let fence_check t ~epoch =
  Mutex.protect t.fence_mu (fun () ->
      let refuse msg =
        Metrics.incr t.metrics "fence_rejections";
        raise (Fenced_write msg)
      in
      (match epoch with
      | Some e when e < t.srv_epoch ->
        refuse
          (Printf.sprintf "write epoch %d predates promotion epoch %d" e
             t.srv_epoch)
      | _ -> ());
      if Pkg.Faults.fence_epoch_stale () then
        refuse
          (Printf.sprintf
             "fault: write epoch predates promotion epoch %d" t.srv_epoch);
      let lease_expired =
        Pkg.Faults.fence_lease_expires ()
        ||
        match t.lease_deadline with
        | Some deadline -> Unix.gettimeofday () > deadline
        | None -> false
      in
      if lease_expired then begin
        if not t.demoted then begin
          t.demoted <- true;
          Metrics.incr t.metrics "demotions";
          Log.info (fun k ->
              k "lease expired; self-demoted read-only at epoch %d"
                t.srv_epoch)
        end;
        refuse
          (Printf.sprintf "lease expired; read-only at epoch %d" t.srv_epoch)
      end;
      max t.srv_epoch (Option.value epoch ~default:0))

(* LEASE install/renewal from the coordinator. The server keeps only
   90% of the granted ttl — it self-demotes strictly before the
   coordinator (which waits out the full nominal ttl since its last
   successful grant) can hand the next epoch to a replacement. *)
let handle_lease t ~epoch ~ttl_ms =
  Mutex.protect t.fence_mu (fun () ->
      (* Expiry is judged at arrival, before the grant can take effect: a
         grant buffered in the kernel while this process was stalled is
         delivered ahead of any reset (Linux drains received data before
         reporting the error), so it can surface long after the
         coordinator gave up on it. By then the old lease has lapsed and
         the node has lost authority — a same-epoch grant must not
         restore it. Reviving a node whose lease ever expired requires a
         strictly higher epoch, which only a deliberate re-lease by the
         coordinator can carry. *)
      (match t.lease_deadline with
      | Some deadline when Unix.gettimeofday () > deadline && not t.demoted ->
        t.demoted <- true;
        Metrics.incr t.metrics "demotions";
        Log.info (fun k ->
            k "lease expired; self-demoted read-only at epoch %d" t.srv_epoch)
      | _ -> ());
      if epoch < t.srv_epoch || (t.demoted && epoch = t.srv_epoch) then begin
        Metrics.incr t.metrics "fence_rejections";
        Protocol.Resp_err
          ( Protocol.Fenced,
            if epoch < t.srv_epoch then
              Printf.sprintf "lease epoch %d predates installed epoch %d" epoch
                t.srv_epoch
            else
              Printf.sprintf
                "lease expired at epoch %d; re-grant requires a higher epoch"
                t.srv_epoch )
      end
      else begin
        t.srv_epoch <- epoch;
        t.lease_deadline <-
          Some (Unix.gettimeofday () +. (float_of_int ttl_ms /. 1000. *. 0.9));
        t.demoted <- false;
        Metrics.incr t.metrics "lease_grants";
        Metrics.set_gauge t.metrics "epoch" epoch;
        Protocol.Resp_ok (Printf.sprintf "granted %d" epoch)
      end)

let maybe_checkpoint_locked t =
  match (t.wal, t.cfg.wal_dir) with
  | Some wal, Some dir
    when t.cfg.wal_checkpoint > 0
         && Store.Wal.records wal >= t.cfg.wal_checkpoint ->
    Metrics.time t.metrics "checkpoint" (fun () ->
        Store.Recovery.checkpoint ~dir wal t.state.rel);
    Metrics.incr t.metrics "checkpoints";
    Log.info (fun k ->
        k "checkpointed %d rows at seq %d; wal truncated"
          (Relalg.Relation.cardinality t.state.rel)
          (Store.Wal.last_seq wal))
  | _ -> ()

(* Swap [rel'] (with its maintained partitionings) in as the new
   snapshot, re-key the partitionings in the catalog under the new
   fingerprint so later cold starts hit too, and invalidate the
   superseded result-cache entries. Returns the invalidation count. *)
let publish_locked t ~old_fp ~verb rel' parts =
  let snap' =
    { rel = rel';
      fp = Store.Segment.fingerprint rel';
      parts;
      (* hierarchies are not incrementally maintained: a mutated table
         invalidates every level, so the next progressive query
         rebuilds (or re-finds via the catalog under the new fp) *)
      hiers = Hashtbl.create 4;
      parts_mu = Mutex.create () }
  in
  prewarm rel';
  Option.iter
    (fun cat ->
      Hashtbl.iter
        (fun _ e ->
          Store.Catalog.store cat
            { Store.Catalog.fingerprint = snap'.fp; attrs = e.pe_attrs;
              tau = e.pe_tau; radius = e.pe_radius; level = None }
            e.pe_part)
        parts)
    t.catalog;
  t.state <- snap';
  Metrics.incr t.metrics verb;
  let superseded k =
    String.length k >= String.length old_fp
    && String.sub k (String.length k - String.length old_fp)
         (String.length old_fp)
       = old_fp
  in
  let dropped = Cache.remove_if t.result_cache superseded in
  Metrics.incr ~by:dropped t.metrics "result_invalidated";
  (* A saved basis indexes rows of the superseded table; warm-starting
     the new one from it would be rejected (or worse, mislead the dual
     pass), so drop those too. *)
  ignore (Cache.remove_if t.basis_cache superseded);
  dropped

let append_locked t extra =
  let snap = t.state in
  (* Maintain every cached partitioning incrementally; they all
     derive the same appended relation. *)
  let parts = Hashtbl.create 4 in
  let appended = ref None in
  Mutex.protect snap.parts_mu (fun () ->
      Hashtbl.iter
        (fun id e ->
          let rel', part', stats =
            Store.Maintain.append ~tau:e.pe_tau ~radius:e.pe_radius
              e.pe_part snap.rel extra
          in
          Log.info (fun k ->
              k "append maintained %s: %a" id Store.Maintain.pp_stats stats);
          appended := Some rel';
          Hashtbl.replace parts id { e with pe_part = part' })
        snap.parts);
  let rel' =
    match !appended with
    | Some rel' -> rel'
    | None -> concat_rows snap.rel extra
  in
  let dropped = publish_locked t ~old_fp:snap.fp ~verb:"appends" rel' parts in
  Log.info (fun k ->
      k "appended %d rows: table now %d rows, fingerprint %s (%d cached \
         results invalidated)"
        (Relalg.Relation.cardinality extra)
        (Relalg.Relation.cardinality rel')
        t.state.fp dropped)

let append ?epoch t extra =
  Mutex.protect t.state_mu (fun () ->
      (* validate before the WAL write: a record that cannot apply must
         never reach the log, or replay would fail where the live
         process refused *)
      if
        not
          (Relalg.Schema.equal
             (Relalg.Relation.schema t.state.rel)
             (Relalg.Relation.schema extra))
      then invalid_arg "append: schemas differ";
      let stamp = fence_check t ~epoch in
      let seq = wal_log t ~epoch:stamp (Store.Wal.Append extra) in
      append_locked t extra;
      maybe_checkpoint_locked t;
      seq)

let delete_locked t ids =
  let snap = t.state in
  let dead = Array.of_list ids in
  let parts = Hashtbl.create 4 in
  let result = ref None in
  Mutex.protect snap.parts_mu (fun () ->
      Hashtbl.iter
        (fun id e ->
          let rel', part', stats =
            Store.Maintain.delete e.pe_part snap.rel dead
          in
          Log.info (fun k ->
              k "delete maintained %s: %a" id Store.Maintain.pp_stats stats);
          result := Some rel';
          Hashtbl.replace parts id { e with pe_part = part' })
        snap.parts);
  let rel' =
    match !result with
    | Some rel' -> rel'
    | None ->
      (* same compaction semantics as [Maintain.delete] and WAL replay *)
      Store.Recovery.apply snap.rel (Store.Wal.Delete ids)
  in
  let dropped = publish_locked t ~old_fp:snap.fp ~verb:"deletes" rel' parts in
  Log.info (fun k ->
      k "deleted %d rows: table now %d rows, fingerprint %s (%d cached \
         results invalidated)"
        (List.length ids)
        (Relalg.Relation.cardinality rel')
        t.state.fp dropped)

let delete ?epoch t ids =
  Mutex.protect t.state_mu (fun () ->
      let n = Relalg.Relation.cardinality t.state.rel in
      List.iter
        (fun id ->
          if id < 0 || id >= n then
            invalid_arg
              (Printf.sprintf "delete: row id %d out of range (%d rows)" id n))
        ids;
      let stamp = fence_check t ~epoch in
      let seq = wal_log t ~epoch:stamp (Store.Wal.Delete ids) in
      delete_locked t ids;
      maybe_checkpoint_locked t;
      seq)

(* ------------------------------------------------------------------ *)
(* Request handling                                                   *)
(* ------------------------------------------------------------------ *)

let handle_query t query =
  Metrics.incr t.metrics "requests";
  let deadline = Unix.gettimeofday () +. t.cfg.request_seconds in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let slot = ref None in
  let job () =
    let resp =
      Metrics.time t.metrics "total" (fun () ->
          try eval_query t ~deadline query
          with e ->
            Protocol.Resp_err (Protocol.Internal, Printexc.to_string e))
    in
    Mutex.protect mu (fun () ->
        slot := Some resp;
        Condition.signal cond)
  in
  let resp =
    match Scheduler.submit t.sched job with
    | `Rejected ->
      let f =
        Pkg.Eval.failure
          (Pkg.Eval.Rejected
             (Printf.sprintf "queue full (capacity %d)"
                (Scheduler.capacity t.sched)))
      in
      Protocol.Resp_err (Protocol.Rejected, Format.asprintf "%a" Pkg.Eval.pp_failure f)
    | `Accepted ->
      Mutex.protect mu (fun () ->
          while !slot = None do
            Condition.wait cond mu
          done;
          Option.get !slot)
  in
  (match resp with
  | Protocol.Resp_ok _ -> Metrics.incr t.metrics "ok"
  | Protocol.Resp_err _ -> Metrics.incr t.metrics "failed");
  resp

let handle_append t ~epoch csv =
  match Relalg.Csv.of_string csv with
  | exception Relalg.Csv.Error (line, msg) ->
    Protocol.Resp_err
      (Protocol.Data_error, Printf.sprintf "csv error at line %d: %s" line msg)
  | extra -> (
    match append ?epoch t extra with
    | seq ->
      Protocol.Resp_ok
        (Printf.sprintf "appended %d rows; table now %d rows, fingerprint %s%s"
           (Relalg.Relation.cardinality extra)
           (Mutex.protect t.state_mu (fun () ->
                Relalg.Relation.cardinality t.state.rel))
           (table_fingerprint t)
           (match seq with
           | Some s -> Printf.sprintf "; seq %d" s
           | None -> ""))
    | exception Invalid_argument msg ->
      Protocol.Resp_err (Protocol.Data_error, msg)
    | exception Fenced_write msg -> Protocol.Resp_err (Protocol.Fenced, msg)
    | exception Store.Wal.Sync_failed msg ->
      Protocol.Resp_err
        (Protocol.Internal, Printf.sprintf "append not durable: %s" msg))

let handle_delete t ~epoch ids =
  match delete ?epoch t ids with
  | seq ->
    Protocol.Resp_ok
      (Printf.sprintf "deleted %d rows; table now %d rows, fingerprint %s%s"
         (List.length ids)
         (Mutex.protect t.state_mu (fun () ->
              Relalg.Relation.cardinality t.state.rel))
         (table_fingerprint t)
         (match seq with
         | Some s -> Printf.sprintf "; seq %d" s
         | None -> ""))
  | exception Invalid_argument msg ->
    Protocol.Resp_err (Protocol.Data_error, msg)
  | exception Fenced_write msg -> Protocol.Resp_err (Protocol.Fenced, msg)
  | exception Store.Wal.Sync_failed msg ->
    Protocol.Resp_err
      (Protocol.Internal, Printf.sprintf "delete not durable: %s" msg)

let handle_fingerprint t =
  let fp, rows =
    Mutex.protect t.state_mu (fun () ->
        (t.state.fp, Relalg.Relation.cardinality t.state.rel))
  in
  Protocol.Resp_ok (Printf.sprintf "%s %d" fp rows)

(* ------------------------------------------------------------------ *)
(* Shard verbs (scatter/gather substrate for the coordinator)         *)
(* ------------------------------------------------------------------ *)

(* The coordinator and every shard derive the partitioning
   independently from the same table and config, so group ids and
   member sets must agree bit-for-bit; ASSIGN records what the
   coordinator expects and the check below turns any divergence into a
   typed data error instead of a silently wrong package. *)
let verify_assignment (part : Pkg.Partition.t) groups =
  let m = Pkg.Partition.num_groups part in
  List.iter
    (fun (gid, members) ->
      if gid < 0 || gid >= m then
        invalid_arg
          (Printf.sprintf "assignment gid %d out of range (%d groups)" gid m);
      if part.Pkg.Partition.groups.(gid).Pkg.Partition.members <> members then
        invalid_arg
          (Printf.sprintf
             "partition divergence: group %d member set does not match" gid))
    groups

let shard_ctx t snap query =
  let qfp = Paql.Fingerprint.of_query query in
  match plan t snap qfp query with
  | Error resp -> Error resp
  | Ok (ast, spec) -> (
    (* a progressive shard derives the DLV hierarchy leaf — the same
       grouping a progressive coordinator deals out — so the ASSIGN
       divergence check passes iff both sides agree on method too *)
    let part_result =
      match t.cfg.method_ with
      | Progressive -> (
        match hierarchy_for t snap ast spec with
        | Ok h -> Ok (Pkg.Hierarchy.leaf h)
        | Error resp -> Error resp)
      | Direct | Sketch_refine | Parallel_refine | Stochastic ->
        partition_for t snap ast spec
    in
    match part_result with
    | Error resp -> Error resp
    | Ok part -> (
      let key = qfp ^ "@" ^ snap.fp in
      match Cache.find_opt t.ctx_cache key with
      | Some ctx -> Ok ctx
      | None ->
        let ctx =
          Metrics.time t.metrics "shard_ctx" (fun () ->
              Pkg.Sketch.make_ctx spec snap.rel part)
        in
        Cache.add t.ctx_cache key ctx;
        Ok ctx))

let handle_assign t body =
  Metrics.incr t.metrics "assigns";
  match Protocol.parse_assign body with
  | exception Protocol.Protocol_error msg ->
    Protocol.Resp_err (Protocol.Data_error, msg)
  | groups -> (
    let snap = Mutex.protect t.state_mu (fun () -> t.state) in
    let n = Relalg.Relation.cardinality snap.rel in
    match
      List.iter
        (fun (gid, members) ->
          if gid < 0 then
            invalid_arg (Printf.sprintf "assign: bad group id %d" gid);
          if Array.length members = 0 then
            invalid_arg (Printf.sprintf "assign: group %d is empty" gid);
          Array.iter
            (fun id ->
              if id < 0 || id >= n then
                invalid_arg
                  (Printf.sprintf "assign: row id %d out of range (%d rows)"
                     id n))
            members)
        groups
    with
    | exception Invalid_argument msg ->
      Protocol.Resp_err (Protocol.Data_error, msg)
    | () ->
      let schema = Relalg.Relation.schema snap.rel in
      let reps =
        Relalg.Relation.of_rows schema
          (List.map
             (fun (_, members) -> Pkg.Partition.rep_row snap.rel members)
             groups)
      in
      Mutex.protect t.shard_mu (fun () -> t.shard_groups <- Some groups);
      Log.info (fun k ->
          k "assigned %d groups (%d rows owned)" (List.length groups)
            (List.fold_left (fun a (_, m) -> a + Array.length m) 0 groups));
      Protocol.Resp_ok (Relalg.Csv.to_string reps))

let with_assignment t f =
  match Mutex.protect t.shard_mu (fun () -> t.shard_groups) with
  | None ->
    Protocol.Resp_err (Protocol.Data_error, "no shard assignment installed")
  | Some groups -> f groups

let handle_sketch t query =
  Metrics.incr t.metrics "shard_sketches";
  with_assignment t (fun groups ->
      let snap = Mutex.protect t.state_mu (fun () -> t.state) in
      match shard_ctx t snap query with
      | Error resp -> resp
      | Ok ctx -> (
        match verify_assignment ctx.Pkg.Sketch.part groups with
        | exception Invalid_argument msg ->
          Protocol.Resp_err (Protocol.Data_error, msg)
        | () ->
          let counts =
            List.map
              (fun (gid, _) ->
                (gid, Array.length ctx.Pkg.Sketch.cand.(gid)))
              groups
          in
          Protocol.Resp_ok (Protocol.render_counts counts)))

(* One refine ILP, mirroring [Refine.refine_query] exactly — same
   problem construction, same fault/deadline choke point — minus the
   warm-start basis: a cold solve is position-independent, so a
   failover or hedged duplicate of this request computes the identical
   answer on either the primary or its replica. *)
let handle_refine t body =
  Metrics.incr t.metrics "shard_refines";
  match Protocol.parse_refine body with
  | exception Protocol.Protocol_error msg ->
    Protocol.Resp_err (Protocol.Data_error, msg)
  | gid, budget_ms, offsets, query ->
    with_assignment t (fun groups ->
        if not (List.mem_assoc gid groups) then
          Protocol.Resp_err
            ( Protocol.Data_error,
              Printf.sprintf "group %d is not owned by this shard" gid )
        else
          let snap = Mutex.protect t.state_mu (fun () -> t.state) in
          match shard_ctx t snap query with
          | Error resp -> resp
          | Ok ctx ->
            let spec = ctx.Pkg.Sketch.spec in
            if
              Array.length offsets
              <> List.length spec.Paql.Translate.constraints
            then
              Protocol.Resp_err
                ( Protocol.Data_error,
                  Printf.sprintf "offset arity %d does not match %d constraints"
                    (Array.length offsets)
                    (List.length spec.Paql.Translate.constraints) )
            else begin
              let budget = float_of_int budget_ms /. 1000. in
              let deadline = Unix.gettimeofday () +. budget in
              let limits =
                {
                  t.cfg.limits with
                  Ilp.Branch_bound.max_seconds =
                    Float.min t.cfg.limits.Ilp.Branch_bound.max_seconds budget;
                }
              in
              let candidates = ctx.Pkg.Sketch.cand.(gid) in
              let problem =
                Paql.Translate.to_problem ~offsets
                  { spec with Paql.Translate.where = None }
                  ctx.Pkg.Sketch.rel ~candidates
              in
              let outcome =
                Metrics.time t.metrics "shard_refine" (fun () ->
                    try
                      Ok
                        (Pkg.Faults.solve ~limits ~deadline
                           ~stage:Pkg.Eval.Refine ~group:gid problem)
                    with Pkg.Faults.Injected msg -> Error msg)
              in
              sync_solver_gauges t.metrics;
              let render r =
                Protocol.Resp_ok (Protocol.render_refine_result r)
              in
              match outcome with
              | Error msg ->
                render (Protocol.Refine_failed ("injected: " ^ msg))
              | Ok
                  ( Ilp.Branch_bound.Optimal (sol, _)
                  | Ilp.Branch_bound.Feasible (sol, _, _) ) ->
                let entries = ref [] in
                Array.iteri
                  (fun k row ->
                    let c =
                      int_of_float (Float.round sol.Ilp.Branch_bound.x.(k))
                    in
                    if c > 0 then entries := (row, c) :: !entries)
                  candidates;
                render (Protocol.Refine_feasible (List.rev !entries))
              | Ok (Ilp.Branch_bound.Infeasible _) ->
                render Protocol.Refine_infeasible
              | Ok (Ilp.Branch_bound.Unbounded _) ->
                render (Protocol.Refine_failed "refine query unbounded")
              | Ok (Ilp.Branch_bound.Limit st) ->
                let f =
                  Pkg.Eval.limit_failure ~stage:Pkg.Eval.Refine ~group:gid st
                in
                render
                  (Protocol.Refine_failed
                     (Format.asprintf "%a" Pkg.Eval.pp_failure f))
            end)

let handle_conn t fd =
  Metrics.incr t.metrics "connections";
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond r = Protocol.write_response oc r in
  let rec loop () =
    if Pkg.Faults.take_net_fault Pkg.Faults.Net_read then begin
      Metrics.incr t.metrics "net_errors";
      Log.warn (fun k -> k "injected net=read fault: dropping connection");
      try respond (Protocol.Resp_err (Protocol.Internal, "injected read fault"))
      with _ -> ()
    end
    else
      match Protocol.read_request ic with
      | None -> ()
      | Some Protocol.Quit -> ( try respond (Protocol.Resp_ok "bye") with _ -> ())
      | Some Protocol.Ping ->
        respond (Protocol.Resp_ok "pong");
        loop ()
      | Some Protocol.Stats ->
        respond (Protocol.Resp_ok (Metrics.render t.metrics));
        loop ()
      | Some (Protocol.Append { csv; epoch }) ->
        respond (handle_append t ~epoch csv);
        loop ()
      | Some (Protocol.Delete { ids; epoch }) ->
        respond (handle_delete t ~epoch ids);
        loop ()
      | Some (Protocol.Lease { epoch; ttl_ms }) ->
        respond (handle_lease t ~epoch ~ttl_ms);
        loop ()
      | Some Protocol.Fingerprint ->
        respond (handle_fingerprint t);
        loop ()
      | Some (Protocol.Assign body) ->
        respond (handle_assign t body);
        loop ()
      | Some (Protocol.Sketch q) ->
        respond (handle_sketch t q);
        loop ()
      | Some (Protocol.Refine body) ->
        (* refine ILPs run on the connection thread, not the query
           worker pool: the coordinator bounds its own fan-out, and a
           queued refine behind a long QUERY would blow the per-group
           budget it was sent with *)
        respond (handle_refine t body);
        loop ()
      | Some (Protocol.Query q) ->
        respond (handle_query t q);
        loop ()
  in
  try loop () with
  | End_of_file -> ()
  | Protocol.Protocol_error msg ->
    Metrics.incr t.metrics "net_errors";
    Log.warn (fun k -> k "protocol error: %s" msg);
    (try respond (Protocol.Resp_err (Protocol.Internal, msg)) with _ -> ())
  | Sys_error _ | Unix.Unix_error _ -> Metrics.incr t.metrics "net_errors"

let conn_main t id fd =
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.conns_mu (fun () -> Hashtbl.remove t.conns id);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> handle_conn t fd)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
      if not t.stopped then Log.err (fun k -> k "accept failed; stopping")
    | exception Unix.Unix_error _ when t.stopped -> ()
    | fd, _ ->
      if t.stopped then (try Unix.close fd with Unix.Unix_error _ -> ())
      else if Pkg.Faults.take_net_fault Pkg.Faults.Net_accept then begin
        Metrics.incr t.metrics "net_errors";
        Log.warn (fun k -> k "injected net=accept fault: closing connection");
        (try Unix.close fd with Unix.Unix_error _ -> ());
        loop ()
      end
      else begin
        Mutex.protect t.conns_mu (fun () ->
            let id = t.next_conn in
            t.next_conn <- id + 1;
            Hashtbl.replace t.conns id fd;
            t.conn_threads <-
              Thread.create (fun () -> conn_main t id fd) () :: t.conn_threads);
        loop ()
      end
  in
  loop ()

let log_loop t =
  let rec loop since =
    if t.stopped then ()
    else begin
      Thread.delay 0.05;
      let now = Unix.gettimeofday () in
      if now -. since >= t.cfg.log_every then begin
        Log.app (fun k -> k "%s" (Metrics.summary_line t.metrics));
        loop now
      end
      else loop since
    end
  in
  loop (Unix.gettimeofday ())

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let start ?catalog cfg rel =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let metrics = Metrics.create () in
  (* Durability: with a WAL dir, the served state is whatever recovery
     rebuilds — checkpoint plus replayed log — not the caller's [rel],
     which only seeds a log that has never checkpointed. *)
  let rel, wal, recovery =
    match cfg.wal_dir with
    | None -> (rel, None, None)
    | Some dir ->
      let rel', wal, stats =
        Metrics.time metrics "recovery" (fun () ->
            Store.Recovery.recover ~dir ~base:(fun () -> rel) ())
      in
      Metrics.incr ~by:stats.records_replayed metrics "recovery_replayed";
      Metrics.incr ~by:stats.records_skipped metrics "recovery_skipped";
      Metrics.incr ~by:stats.torn_bytes metrics "recovery_torn_bytes";
      Metrics.incr ~by:stats.fenced_bytes metrics "recovery_fenced_bytes";
      Log.info (fun k ->
          k "recovered %d rows from %s: %a"
            (Relalg.Relation.cardinality rel')
            dir Store.Recovery.pp_stats stats);
      (rel', Some wal, Some stats)
  in
  let sched = Scheduler.create ~workers:cfg.workers ~capacity:cfg.queue ~metrics in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (resolve_host cfg.host, cfg.port));
      Unix.listen listen_fd 64;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> cfg.port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Scheduler.shutdown sched;
      raise e
  in
  let t =
    {
      cfg;
      catalog;
      metrics;
      sched;
      plan_cache = Cache.create ~capacity:cfg.plan_cache;
      result_cache = Cache.create ~capacity:cfg.result_cache;
      basis_cache = Cache.create ~capacity:cfg.basis_cache;
      ctx_cache = Cache.create ~capacity:16;
      shard_groups = None;
      shard_mu = Mutex.create ();
      (* a restarted node remembers the highest epoch its WAL was acked
         under, so a stale stamp is refused even before the first LEASE *)
      srv_epoch =
        (match recovery with Some s -> s.Store.Recovery.last_epoch | None -> 0);
      lease_deadline = None;
      demoted = false;
      fence_mu = Mutex.create ();
      state = fresh_snapshot rel;
      state_mu = Mutex.create ();
      wal;
      recovery;
      listen_fd;
      bound_port;
      accept_thread = None;
      log_thread = None;
      conns = Hashtbl.create 16;
      conn_threads = [];
      next_conn = 0;
      conns_mu = Mutex.create ();
      stopped = false;
      finished = false;
      stop_mu = Mutex.create ();
      stop_cond = Condition.create ();
    }
  in
  Pkg.Eval.set_observer
    (Some (fun stage dt -> Metrics.observe metrics (Pkg.Eval.stage_name stage) dt));
  Option.iter
    (fun wal -> Metrics.set_gauge metrics "wal_last_seq" (Store.Wal.last_seq wal))
    t.wal;
  Metrics.set_gauge metrics "epoch" t.srv_epoch;
  t.accept_thread <- Some (Thread.create accept_loop t);
  if cfg.log_every > 0. then t.log_thread <- Some (Thread.create log_loop t);
  Log.info (fun k ->
      k "serving %d rows on %s:%d (%d workers, queue %d, result cache %d)"
        (Relalg.Relation.cardinality rel)
        cfg.host bound_port cfg.workers cfg.queue cfg.result_cache);
  t

let wait t =
  Mutex.protect t.stop_mu (fun () ->
      while not t.finished do
        Condition.wait t.stop_cond t.stop_mu
      done)

let stop t =
  let first =
    Mutex.protect t.stop_mu (fun () ->
        let first = not t.stopped in
        t.stopped <- true;
        first)
  in
  if first then begin
    (* shutdown (not close) wakes the blocked accept; close only after
       the accept thread is joined, so the fd cannot be recycled under
       it. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let fds =
      Mutex.protect t.conns_mu (fun () ->
          Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    let conn_threads =
      Mutex.protect t.conns_mu (fun () ->
          let ts = t.conn_threads in
          t.conn_threads <- [];
          ts)
    in
    List.iter Thread.join conn_threads;
    Scheduler.shutdown t.sched;
    Option.iter Thread.join t.log_thread;
    Option.iter Store.Wal.close t.wal;
    Pkg.Eval.set_observer None;
    Mutex.protect t.stop_mu (fun () ->
        t.finished <- true;
        Condition.broadcast t.stop_cond)
  end
