(** Bounded, thread-safe LRU cache — the shape shared by the plan cache
    (query fingerprint → compiled plan) and the result cache
    ((query fingerprint, table fingerprint) → rendered answer).

    Capacity 0 disables the cache: every lookup misses, every insert is
    dropped — one code path for the cache-off knobs. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int

(** Bumps the entry's recency on a hit. *)
val find_opt : ('k, 'v) t -> 'k -> 'v option

(** Inserts or replaces; evicts the least-recently-used entry when over
    capacity. *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** [remove_if t p] drops every entry whose key satisfies [p] and
    returns how many were dropped — the explicit-invalidation hook
    (e.g. all results for a superseded table fingerprint). *)
val remove_if : ('k, 'v) t -> ('k -> bool) -> int

val clear : ('k, 'v) t -> unit
