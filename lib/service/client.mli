(** Blocking client for the {!Protocol} wire format — the engine behind
    [paql --connect], the REPL's remote mode, the service tests and the
    serve benchmark. One {!t} is one connection; requests on it are
    serial (run one client per concurrent stream). *)

type t

(** ["HOST:PORT"] → [(host, port)]. *)
val parse_endpoint : string -> (string * int, string) result

(** [connect ~host ~port] — raises [Unix.Unix_error] when the server
    is unreachable. *)
val connect : host:string -> port:int -> t

(** One request, one response.
    @raise Protocol.Protocol_error on a malformed or truncated reply. *)
val roundtrip : t -> Protocol.request -> Protocol.response

val query : t -> string -> Protocol.response

val append : t -> csv:string -> Protocol.response

val stats : t -> Protocol.response

val ping : t -> Protocol.response

(** Send [QUIT] (best-effort) and close the socket. Idempotent. *)
val close : t -> unit
