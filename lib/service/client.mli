(** Blocking client for the {!Protocol} wire format — the engine behind
    [paql --connect], the REPL's remote mode, the service tests, the
    chaos harness and the serve benchmark. One {!t} is one logical
    connection; requests on it are serial (run one client per
    concurrent stream).

    With [~retries:n] (off by default) the client survives a server
    restart window: connection establishment and {e idempotent}
    requests (QUERY, PING, STATS, FPRINT) are retried up to [n] times
    with capped exponential backoff and +/-25% jitter (50ms, 100ms,
    200ms, ... capped at 800ms), transparently reconnecting. APPEND and
    DELETE are {e never} resent — an ack lost in flight may cover rows
    the server already made durable, and resending would double them;
    the caller sees the connection error and decides. Once the budget
    is spent, {!Gave_up} carries the attempt count and last error. *)

type t

(** The retry budget is exhausted. [attempts] counts tries made; [last]
    is the final connection error. *)
exception Gave_up of { attempts : int; last : exn }

(** A configured timeout expired — distinct from {!Gave_up}: the peer
    may be perfectly healthy but slow (or SIGSTOPped), and the caller
    promised itself an answer within [seconds]. Timeouts are never
    retried internally: the budget is a latency contract, and a silent
    retry loop would multiply it. Raised from [connect] ([`Connect],
    via [connect_timeout]) and from {!roundtrip} ([`Read], via
    [timeout] / {!set_timeout}). *)
exception Timed_out of { phase : [ `Connect | `Read ]; seconds : float }

(** ["HOST:PORT"] → [(host, port)]. *)
val parse_endpoint : string -> (string * int, string) result

(** [connect ?retries ?connect_timeout ?timeout ~host ~port] — with
    [retries = 0] (the default) raises [Unix.Unix_error] when the
    server is unreachable; with a budget, retries with backoff and
    raises {!Gave_up} when it is spent. [connect_timeout] bounds each
    TCP connection attempt; [timeout] bounds every response read
    (SO_RCVTIMEO); both raise {!Timed_out} on expiry. Without them the
    calls block indefinitely (the pre-existing behaviour). *)
val connect :
  ?retries:int -> ?connect_timeout:float -> ?timeout:float ->
  host:string -> port:int -> unit -> t

(** Replace the read timeout for subsequent requests (and the live
    socket): the coordinator re-carves per-shard budgets per query.
    [None] restores unbounded reads. *)
val set_timeout : t -> float option -> unit

(** One request, one response. Retries idempotent requests per the
    client's budget.
    @raise Protocol.Protocol_error on a malformed or truncated reply.
    @raise Gave_up when the retry budget is exhausted. *)
val roundtrip : t -> Protocol.request -> Protocol.response

val query : t -> string -> Protocol.response

(** [append ?epoch t ~csv] — [epoch] stamps the write with the caller's
    membership epoch; a fenced server refuses stale stamps with
    [ERR fenced]. Unstamped appends preserve the standalone contract. *)
val append : ?epoch:int -> t -> csv:string -> Protocol.response

(** [delete ?epoch t ids] — the DELETE verb (0-based row ids). *)
val delete : ?epoch:int -> t -> int list -> Protocol.response

(** [lease t ~epoch ~ttl_ms] — the LEASE verb: install [epoch] on the
    server and grant it the right to ack writes for [ttl_ms]. *)
val lease : t -> epoch:int -> ttl_ms:int -> Protocol.response

(** [fingerprint t] — the FPRINT verb; the [OK] body is
    ["<fingerprint> <rows>"]. *)
val fingerprint : t -> Protocol.response

val stats : t -> Protocol.response

val ping : t -> Protocol.response

(** Send [QUIT] (best-effort) and close the socket. Idempotent. *)
val close : t -> unit

(** Abortive close: SO_LINGER 0 + close, so the peer sees a TCP RST
    instead of an orderly FIN. The peer's {e kernel} processes the RST
    even while the process is SIGSTOPped, discarding any bytes it had
    buffered but not yet read. The coordinator aborts failed LEASE
    grants this way, so a stale grant can never be consumed by a
    resumed zombie primary. Idempotent; never raises. *)
val abort : t -> unit
