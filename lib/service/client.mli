(** Blocking client for the {!Protocol} wire format — the engine behind
    [paql --connect], the REPL's remote mode, the service tests, the
    chaos harness and the serve benchmark. One {!t} is one logical
    connection; requests on it are serial (run one client per
    concurrent stream).

    With [~retries:n] (off by default) the client survives a server
    restart window: connection establishment and {e idempotent}
    requests (QUERY, PING, STATS, FPRINT) are retried up to [n] times
    with capped exponential backoff and +/-25% jitter (50ms, 100ms,
    200ms, ... capped at 800ms), transparently reconnecting. APPEND and
    DELETE are {e never} resent — an ack lost in flight may cover rows
    the server already made durable, and resending would double them;
    the caller sees the connection error and decides. Once the budget
    is spent, {!Gave_up} carries the attempt count and last error. *)

type t

(** The retry budget is exhausted. [attempts] counts tries made; [last]
    is the final connection error. *)
exception Gave_up of { attempts : int; last : exn }

(** ["HOST:PORT"] → [(host, port)]. *)
val parse_endpoint : string -> (string * int, string) result

(** [connect ?retries ~host ~port] — with [retries = 0] (the default)
    raises [Unix.Unix_error] when the server is unreachable; with a
    budget, retries with backoff and raises {!Gave_up} when it is
    spent. *)
val connect : ?retries:int -> host:string -> port:int -> unit -> t

(** One request, one response. Retries idempotent requests per the
    client's budget.
    @raise Protocol.Protocol_error on a malformed or truncated reply.
    @raise Gave_up when the retry budget is exhausted. *)
val roundtrip : t -> Protocol.request -> Protocol.response

val query : t -> string -> Protocol.response

val append : t -> csv:string -> Protocol.response

(** [delete t ids] — the DELETE verb (0-based row ids). *)
val delete : t -> int list -> Protocol.response

(** [fingerprint t] — the FPRINT verb; the [OK] body is
    ["<fingerprint> <rows>"]. *)
val fingerprint : t -> Protocol.response

val stats : t -> Protocol.response

val ping : t -> Protocol.response

(** Send [QUIT] (best-effort) and close the socket. Idempotent. *)
val close : t -> unit
