(* LRU as a Hashtbl plus a monotone recency stamp per entry; eviction
   scans for the minimum stamp. Capacities here are small (hundreds),
   so the O(n) evict scan is noise next to a solver call — and it keeps
   the structure a dozen lines instead of an intrusive list. *)

type ('k, 'v) entry = { value : 'v; mutable stamp : int }

type ('k, 'v) t = {
  mu : Mutex.t;
  tbl : ('k, ('k, 'v) entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;
}

let create ~capacity =
  {
    mu = Mutex.create ();
    tbl = Hashtbl.create (max 8 capacity);
    capacity = max 0 capacity;
    tick = 0;
  }

let capacity t = t.capacity

let length t = Mutex.protect t.mu (fun () -> Hashtbl.length t.tbl)

let find_opt t k =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.tbl k with
      | None -> None
      | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        Some e.value)

let evict_oldest t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.tbl;
  match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()

let add t k v =
  if t.capacity > 0 then
    Mutex.protect t.mu (fun () ->
        t.tick <- t.tick + 1;
        Hashtbl.replace t.tbl k { value = v; stamp = t.tick };
        while Hashtbl.length t.tbl > t.capacity do
          evict_oldest t
        done)

let remove_if t p =
  Mutex.protect t.mu (fun () ->
      let doomed =
        Hashtbl.fold (fun k _ acc -> if p k then k :: acc else acc) t.tbl []
      in
      List.iter (Hashtbl.remove t.tbl) doomed;
      List.length doomed)

let clear t = Mutex.protect t.mu (fun () -> Hashtbl.reset t.tbl)
