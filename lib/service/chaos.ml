(* Kill/restart harness for the durability tests and benches.

   One experiment = one scratch directory holding the seed segment, the
   WAL directory, and the child server's captured stdout. We spawn a
   real [pkgq_server] child (crashes must kill a *process*, not a
   thread — fsync-durability is only observable across a process
   boundary), drive appends over TCP counting acknowledgements, let the
   injected fault SIGKILL it (or deliver the SIGKILL ourselves),
   restart it on the same WAL directory, and compare the recovered
   fingerprint against the locally-computed prefix fingerprints. *)

type crash_point =
  | Torn of int
  | Crash of int
  | Kill_after of int

let pp_point ppf = function
  | Torn k -> Format.fprintf ppf "torn:%d" k
  | Crash k -> Format.fprintf ppf "crash:%d" k
  | Kill_after n -> Format.fprintf ppf "kill_after:%d" n

let point_name p = Format.asprintf "%a" pp_point p

type result = {
  point : crash_point;
  acked : int;
  died : bool;
  recovered_fp : string;
  recovered_rows : int;
  recovery_seconds : float;
  refs : (string * int) array;
}

(* ---- reference prefixes ------------------------------------------- *)

(* refs.(i) = (fingerprint, rows) after the first [i] batches, computed
   with the exact apply semantics recovery uses — byte-equivalence is
   the whole point. *)
let reference_prefixes base batches =
  let n = List.length batches in
  let refs = Array.make (n + 1) ("", 0) in
  let rel = ref base in
  refs.(0) <- (Store.Segment.fingerprint base, Relalg.Relation.cardinality base);
  List.iteri
    (fun i batch ->
      rel := Store.Recovery.apply !rel (Store.Wal.Append batch);
      refs.(i + 1) <-
        (Store.Segment.fingerprint !rel, Relalg.Relation.cardinality !rel))
    batches;
  refs

(* ---- child server ------------------------------------------------- *)

type server = { pid : int; port : int; out_file : string }

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  if not (Sys.file_exists path) then ""
  else In_channel.with_open_bin path In_channel.input_all

(* The boot banner ends "... on HOST:PORT"; with --port 0 it is the only
   way to learn the bound port. *)
let parse_port out =
  let rx_prefix = "pkgq_server: serving " in
  String.split_on_char '\n' out
  |> List.find_map (fun line ->
         if String.length line > String.length rx_prefix
            && String.sub line 0 (String.length rx_prefix) = rx_prefix
         then
           match String.rindex_opt line ':' with
           | None -> None
           | Some i ->
             int_of_string_opt
               (String.sub line (i + 1) (String.length line - i - 1))
         else None)

exception Harness_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Harness_error s)) fmt

(* Every spawned child pid, so an aborting run (uncaught exception,
   failed assertion, harness bug) cannot leak server processes: an
   [at_exit] hook SIGKILLs whatever is still registered. SIGKILL also
   collects SIGSTOPped children, which the shard chaos matrix leaves
   behind on a failed test. *)
let registry : (int, unit) Hashtbl.t = Hashtbl.create 8
let registry_mu = Mutex.create ()
let registry_hook = ref false

let register pid =
  Mutex.protect registry_mu (fun () ->
      if not !registry_hook then begin
        registry_hook := true;
        at_exit (fun () ->
            let pids =
              Mutex.protect registry_mu (fun () ->
                  Hashtbl.fold (fun pid () acc -> pid :: acc) registry [])
            in
            List.iter
              (fun pid ->
                (* SIGCONT first: a SIGKILL does collect a stopped
                   child, but the wake keeps the exit path uniform with
                   [kill_and_reap] and lets the child's own teardown
                   (atexit WAL flush) run if SIGKILL loses the race *)
                (try Unix.kill pid Sys.sigcont
                 with Unix.Unix_error (_, _, _) -> ());
                (try Unix.kill pid Sys.sigkill
                 with Unix.Unix_error (_, _, _) -> ());
                try ignore (Unix.waitpid [ Unix.WNOHANG ] pid)
                with Unix.Unix_error (_, _, _) -> ())
              pids)
      end;
      Hashtbl.replace registry pid ())

let unregister pid =
  Mutex.protect registry_mu (fun () -> Hashtbl.remove registry pid)

let child_alive pid =
  match Unix.waitpid [ Unix.WNOHANG ] pid with
  | 0, _ -> true
  | _ ->
    unregister pid;
    false
  | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
    unregister pid;
    false

(* Collect the child, whatever state it is in. *)
let reap pid =
  unregister pid;
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()

(* A SIGSTOPped child never delivers a pending SIGTERM — the signal
   stays queued until a SIGCONT, so the blocking [waitpid] in [reap]
   would hang the whole test run on a paused server. Always SIGCONT
   first; it is a no-op on a running child. *)
let kill_and_reap pid signal =
  (try Unix.kill pid Sys.sigcont with Unix.Unix_error (_, _, _) -> ());
  (try Unix.kill pid signal with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  reap pid

let start_server ~exe ~data ~wal ?faults ?checkpoint ?sync ?(extra_args = [])
    ~out_file () =
  let args =
    [ exe; "--data"; data; "--wal"; wal; "--port"; "0"; "--log-every"; "0";
      "--workers"; "2"; "--queue"; "16"; "--no-store" ]
    @ (match faults with Some s -> [ "--faults"; s ] | None -> [])
    @ (match checkpoint with
      | Some n -> [ "--wal-checkpoint"; string_of_int n ]
      | None -> [])
    @ extra_args
  in
  let env =
    let keep =
      Array.to_list (Unix.environment ())
      |> List.filter (fun kv ->
             not (String.length kv >= 14 && String.sub kv 0 14 = "PKGQ_WAL_SYNC="))
    in
    let extra =
      match sync with Some s -> [ "PKGQ_WAL_SYNC=" ^ s ] | None -> []
    in
    Array.of_list (keep @ extra)
  in
  let out_fd =
    Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close out_fd)
      (fun () ->
        Unix.create_process_env exe (Array.of_list args) env Unix.stdin out_fd
          Unix.stderr)
  in
  register pid;
  (* Poll the captured stdout for the banner; the child prints it only
     after recovery finished and the accept loop is live. *)
  let deadline = Unix.gettimeofday () +. 30. in
  let rec wait_port () =
    match parse_port (read_file out_file) with
    | Some port -> { pid; port; out_file }
    | None ->
      if not (child_alive pid) then
        fail "server %s died before binding; stdout: %s" exe
          (read_file out_file)
      else if Unix.gettimeofday () > deadline then begin
        kill_and_reap pid Sys.sigkill;
        fail "server %s did not bind within 30s" exe
      end
      else begin
        Thread.delay 0.01;
        wait_port ()
      end
  in
  wait_port ()

(* ---- driving the workload ----------------------------------------- *)

(* Append batches serially, counting acks, until the child dies under
   us (injected faults SIGKILL it mid-WAL-write) or the list is done.
   [kill_after n] delivers our own SIGKILL once [n] acks are in. *)
let drive_appends server ~kill_after batches =
  let client =
    Client.connect ~host:"127.0.0.1" ~port:server.port ()
  in
  let acked = ref 0 in
  let died = ref false in
  (try
     List.iter
       (fun batch ->
         (match kill_after with
         | Some n when !acked >= n ->
           kill_and_reap server.pid Sys.sigkill;
           raise Exit
         | _ -> ());
         match
           Client.append client ~csv:(Relalg.Csv.to_string batch)
         with
         | Protocol.Resp_ok _ -> incr acked
         | Protocol.Resp_err (_, msg) -> fail "append refused: %s" msg)
       batches;
     match kill_after with
     | Some n when !acked >= n ->
       kill_and_reap server.pid Sys.sigkill;
       died := true
     | _ -> ()
   with
  | Exit -> died := true
  | End_of_file | Sys_error _
  | Unix.Unix_error (_, _, _)
  | Protocol.Protocol_error _ ->
    died := true);
  (try Client.close client with _ -> ());
  (!acked, !died)

let fprint client =
  match Client.fingerprint client with
  | Protocol.Resp_ok body -> (
    match String.split_on_char ' ' (String.trim body) with
    | [ fp; rows ] -> (fp, int_of_string rows)
    | _ -> fail "malformed FPRINT body %S" body)
  | Protocol.Resp_err (_, msg) -> fail "FPRINT refused: %s" msg

(* ---- the experiment ----------------------------------------------- *)

let faults_of_point = function
  | Torn k -> Some (Printf.sprintf "wal=torn:%d" k)
  | Crash k -> Some (Printf.sprintf "wal=crash:%d" k)
  | Kill_after _ -> None

let kill_after_of_point = function Kill_after n -> Some n | _ -> None

let fresh_dir dir =
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  mkdir_p dir

let run_crash ~exe ~dir ~base ~batches ~point ?checkpoint ?sync () =
  fresh_dir dir;
  let data = Filename.concat dir "base.seg" in
  Store.Segment.write data base;
  let wal = Filename.concat dir "wal" in
  let refs = reference_prefixes base batches in
  (* phase 1: run into the crash *)
  let s1 =
    start_server ~exe ~data ~wal
      ?faults:(faults_of_point point)
      ?checkpoint ?sync
      ~out_file:(Filename.concat dir "server1.out")
      ()
  in
  let acked, died =
    match
      drive_appends s1 ~kill_after:(kill_after_of_point point) batches
    with
    | r -> r
    | exception e ->
      kill_and_reap s1.pid Sys.sigkill;
      raise e
  in
  if died then reap s1.pid else kill_and_reap s1.pid Sys.sigkill;
  (* phase 2: restart on the same WAL dir, time recovery to first
     answered request *)
  let t0 = Unix.gettimeofday () in
  let s2 =
    start_server ~exe ~data ~wal ?checkpoint ?sync
      ~out_file:(Filename.concat dir "server2.out")
      ()
  in
  Fun.protect
    ~finally:(fun () -> kill_and_reap s2.pid Sys.sigterm)
    (fun () ->
      let client =
        Client.connect ~retries:4 ~host:"127.0.0.1" ~port:s2.port ()
      in
      Fun.protect
        ~finally:(fun () -> try Client.close client with _ -> ())
        (fun () ->
          let recovered_fp, recovered_rows = fprint client in
          let recovery_seconds = Unix.gettimeofday () -. t0 in
          { point; acked; died; recovered_fp; recovered_rows;
            recovery_seconds; refs }))

(* ---- the verdict --------------------------------------------------- *)

(* Zero acknowledged-write loss: the recovered state covers at least
   the acked prefix. Zero phantoms: at most one unacknowledged write
   (the in-doubt one durable at the instant of death) beyond it, and
   only for crash points that die *after* the WAL frame is complete.
   Everything else — a state matching no prefix at all — is
   corruption. *)
let check r =
  let matching =
    let found = ref None in
    Array.iteri
      (fun i (fp, _) -> if fp = r.recovered_fp then found := Some i)
      r.refs;
    !found
  in
  match matching with
  | None ->
    Error
      (Printf.sprintf
         "%s: recovered state (%d rows) matches no acknowledged prefix"
         (point_name r.point) r.recovered_rows)
  | Some i ->
    let in_doubt_ok =
      match r.point with Crash _ -> 1 | Torn _ | Kill_after _ -> 0
    in
    if i < r.acked then
      Error
        (Printf.sprintf "%s: lost %d acknowledged write(s) (recovered %d/%d)"
           (point_name r.point) (r.acked - i) i r.acked)
    else if i > r.acked + in_doubt_ok then
      Error
        (Printf.sprintf "%s: phantom write(s): recovered %d, acked %d"
           (point_name r.point) i r.acked)
    else Ok i

(* A never-crashed run: start once, append everything, read the live
   fingerprint, shut down cleanly. Its result must equal refs.(n) —
   proving the harness's locally-computed references describe the same
   bytes a real server reaches. *)
let run_reference ~exe ~dir ~base ~batches ?checkpoint ?sync () =
  fresh_dir dir;
  let data = Filename.concat dir "base.seg" in
  Store.Segment.write data base;
  let wal = Filename.concat dir "wal" in
  let refs = reference_prefixes base batches in
  let s =
    start_server ~exe ~data ~wal ?checkpoint ?sync
      ~out_file:(Filename.concat dir "server.out")
      ()
  in
  Fun.protect
    ~finally:(fun () -> kill_and_reap s.pid Sys.sigterm)
    (fun () ->
      let client =
        Client.connect ~host:"127.0.0.1" ~port:s.port ()
      in
      Fun.protect
        ~finally:(fun () -> try Client.close client with _ -> ())
        (fun () ->
          let acked, died = (List.length batches, false) in
          List.iter
            (fun batch ->
              match
                Client.append client
                  ~csv:(Relalg.Csv.to_string batch)
              with
              | Protocol.Resp_ok _ -> ()
              | Protocol.Resp_err (_, msg) ->
                fail "append refused: %s" msg)
            batches;
          let recovered_fp, recovered_rows = fprint client in
          { point = Kill_after acked; acked; died; recovered_fp;
            recovered_rows; recovery_seconds = 0.; refs }))

(* ---- shard fleets --------------------------------------------------- *)

(* Signal-level chaos for whole shards: SIGSTOP models a stalled-but-
   alive process (connections stay open, nothing answers — only
   timeouts can detect it), SIGKILL a dead one. *)
let pause s =
  try Unix.kill s.pid Sys.sigstop with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let resume s =
  try Unix.kill s.pid Sys.sigcont with Unix.Unix_error (Unix.ESRCH, _, _) -> ()

let kill_server s = kill_and_reap s.pid Sys.sigkill
let stop_server s = kill_and_reap s.pid Sys.sigterm

type fleet_member = {
  fm_primary : server;
  fm_replica : server option;
  fm_wal : string;
}

(* Shared-storage fleet: every node boots from the same base segment;
   primaries keep their full WAL (checkpointing folds records away,
   which would starve the coordinator's shipper) in per-node
   subdirectories of [dir]. [extra_args] must carry the partitioning
   config (--attrs/--tau/--epsilon) identical to the coordinator's, or
   ASSIGN reports divergence by design. *)
let start_fleet ~exe ~dir ~base ~shards ~replicas ?(extra_args = []) () =
  if shards < 1 then fail "start_fleet: need at least one shard";
  fresh_dir dir;
  let data = Filename.concat dir "base.seg" in
  Store.Segment.write data base;
  let spawn name =
    let sub = Filename.concat dir name in
    mkdir_p sub;
    let wal = Filename.concat sub "wal" in
    let srv =
      start_server ~exe ~data ~wal ~checkpoint:0 ~extra_args
        ~out_file:(Filename.concat sub "server.out")
        ()
    in
    (srv, wal)
  in
  List.init shards (fun i ->
      let primary, pwal = spawn (Printf.sprintf "shard%d" i) in
      let replica =
        if replicas > 0 then begin
          match spawn (Printf.sprintf "shard%d-replica" i) with
          | srv, _ -> Some srv
          | exception e ->
            kill_server primary;
            raise e
        end
        else None
      in
      { fm_primary = primary; fm_replica = replica;
        fm_wal = Store.Recovery.wal_path pwal })

let fleet_specs fleet =
  List.map
    (fun m ->
      {
        Coordinator.primary =
          { Coordinator.ep_host = "127.0.0.1"; ep_port = m.fm_primary.port };
        replica =
          Option.map
            (fun (r : server) ->
              { Coordinator.ep_host = "127.0.0.1"; ep_port = r.port })
            m.fm_replica;
        wal = Some m.fm_wal;
      })
    fleet

let stop_fleet fleet =
  List.iter
    (fun m ->
      kill_server m.fm_primary;
      Option.iter kill_server m.fm_replica)
    fleet

(* ---- zombie split-brain --------------------------------------------- *)

(* The classic split-brain experiment: SIGSTOP the primary (it holds a
   lease and believes itself writable), let the coordinator fence it
   out and promote the replica, then SIGCONT the zombie and drive the
   same writes at BOTH sides. The fleet is correct iff the zombie acks
   nothing (it self-demoted when its lease expired and answers the
   typed fence), every write acked through the coordinator survives on
   the active node, and a stale epoch stamp at the new primary is
   refused the same way. *)
type zombie_result = {
  z_acked : int;
  z_failover_acks : int;
  z_dual_acks : int;
  z_zombie_fenced : int;
  z_zombie_other : int;
  z_stale_fenced : bool;
  z_epoch : int;
  z_promotions : int;
  z_lost_acks : int;
  z_recovered_fp : string;
  z_recovered_rows : int;
}

let run_zombie ~exe ~dir ~base ~pre ~during ~post ?(lease_ms = 400) ~attrs
    ?tau () =
  if during = [] then fail "run_zombie: need at least one failover batch";
  if post = [] then fail "run_zombie: need at least one post-resume batch";
  let extra_args =
    (match attrs with [] -> [] | l -> [ "--attrs"; String.concat "," l ])
    @ match tau with Some n -> [ "--tau"; string_of_int n ] | None -> []
  in
  let fleet =
    start_fleet ~exe ~dir ~base ~shards:1 ~replicas:1 ~extra_args ()
  in
  Fun.protect ~finally:(fun () -> stop_fleet fleet) @@ fun () ->
  let member = List.hd fleet in
  let zombie = member.fm_primary in
  let standby =
    match member.fm_replica with
    | Some r -> r
    | None -> fail "run_zombie: fleet came up without a replica"
  in
  let cfg =
    {
      (Coordinator.default_config ()) with
      Coordinator.attrs;
      tau;
      request_seconds = 20.;
      connect_timeout = 0.5;
      rpc_seconds = 0.5;
      retries = 0;
      hedge_ms = 0;
      ship_every = 0.02;
      lease_ms = Some lease_ms;
      epoch_dir = None;
    }
  in
  let t = Coordinator.start cfg (fleet_specs fleet) base in
  Fun.protect ~finally:(fun () -> Coordinator.stop t) @@ fun () ->
  let coord = Client.connect ~host:"127.0.0.1" ~port:(Coordinator.port t) () in
  Fun.protect ~finally:(fun () -> try Client.close coord with _ -> ())
  @@ fun () ->
  let acked = ref [] in
  let ack_phase what batches =
    List.iter
      (fun batch ->
        match Client.append coord ~csv:(Relalg.Csv.to_string batch) with
        | Protocol.Resp_ok _ -> acked := batch :: !acked
        | Protocol.Resp_err (_, msg) ->
          fail "run_zombie: %s append refused by the coordinator: %s" what msg)
      batches;
    List.length batches
  in
  let old_epoch = Coordinator.shard_epoch t 0 in
  let _pre_acks = ack_phase "pre-pause" pre in
  pause zombie;
  (* every write now times out at the paused primary, forcing the
     fencing promotion; the quarantine inside it waits out the zombie's
     lease before the epoch bumps *)
  let z_failover_acks = ack_phase "failover" during in
  resume zombie;
  (* the zombie runs again with open sockets and a warm table — but its
     lease expired mid-pause, so it must have self-demoted read-only;
     give its threads a beat to wake *)
  Thread.delay 0.05;
  let z_dual = ref 0 and z_fenced = ref 0 and z_other = ref 0 in
  let zc =
    try
      Some
        (Client.connect ~connect_timeout:2. ~timeout:2. ~host:"127.0.0.1"
           ~port:zombie.port ())
    with _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (fun c -> try Client.close c with _ -> ()) zc)
  @@ fun () ->
  (* drive the same batches at BOTH sides: the zombie first (a Resp_ok
     there is a dual-primary ack — a write the fleet loses), then the
     fleet through the coordinator, which must ack *)
  List.iter
    (fun batch ->
      (match zc with
      | None -> incr z_other
      | Some zc -> (
        match Client.append zc ~csv:(Relalg.Csv.to_string batch) with
        | Protocol.Resp_ok _ -> incr z_dual
        | Protocol.Resp_err (Protocol.Fenced, _) -> incr z_fenced
        | Protocol.Resp_err (_, _) -> incr z_other
        | exception _ -> incr z_other));
      match Client.append coord ~csv:(Relalg.Csv.to_string batch) with
      | Protocol.Resp_ok _ -> acked := batch :: !acked
      | Protocol.Resp_err (_, msg) ->
        fail "run_zombie: post-resume append refused by the coordinator: %s"
          msg)
    post;
  (* a stale stamp at the NEW primary must answer the typed fence too *)
  let z_stale_fenced =
    match
      let c =
        Client.connect ~connect_timeout:2. ~timeout:2. ~host:"127.0.0.1"
          ~port:standby.port ()
      in
      Fun.protect ~finally:(fun () -> try Client.close c with _ -> ())
      @@ fun () ->
      Client.append ~epoch:old_epoch c
        ~csv:(Relalg.Csv.to_string (List.hd post))
    with
    | Protocol.Resp_err (Protocol.Fenced, _) -> true
    | Protocol.Resp_ok _ | Protocol.Resp_err (_, _) -> false
    | exception _ -> false
  in
  let batches = List.rev !acked in
  let n_acked = List.length batches in
  let refs = reference_prefixes base batches in
  let recovered_fp, recovered_rows =
    let c =
      Client.connect ~connect_timeout:2. ~timeout:5. ~host:"127.0.0.1"
        ~port:standby.port ()
    in
    Fun.protect ~finally:(fun () -> try Client.close c with _ -> ())
    @@ fun () -> fprint c
  in
  let matched =
    let found = ref None in
    Array.iteri
      (fun i (fp, _) -> if fp = recovered_fp then found := Some i)
      refs;
    !found
  in
  let z_lost_acks =
    match matched with Some i -> n_acked - i | None -> n_acked
  in
  {
    z_acked = n_acked;
    z_failover_acks;
    z_dual_acks = !z_dual;
    z_zombie_fenced = !z_fenced;
    z_zombie_other = !z_other;
    z_stale_fenced;
    z_epoch = Coordinator.shard_epoch t 0;
    z_promotions = Metrics.get (Coordinator.metrics t) "shard_promotions";
    z_lost_acks;
    z_recovered_fp = recovered_fp;
    z_recovered_rows = recovered_rows;
  }
