(** The package-query server: a long-running TCP service evaluating
    PaQL queries over one shared, warm table.

    Request flow: a connection thread reads a framed {!Protocol}
    request, stamps its deadline ([arrival + request_seconds] — the
    budget the resilience layer then propagates into every ILP call),
    and submits an evaluation job to the {!Scheduler}. Admission
    control answers over-capacity requests immediately with a typed
    [rejected] failure ({!Pkg.Eval.Rejected}); admitted jobs run on the
    worker pool against an immutable snapshot of the table state.

    Work is shared across requests at three levels:

    - {b plan cache} — parse/analyze/compile once per query
      fingerprint ({!Paql.Fingerprint});
    - {b partitions} — sketchrefine partitionings are kept per
      (attrs, tau, radius) in memory (and in the {!Store.Catalog} when
      one is attached), so they are built once and reused by every
      request — the across-query reuse the billion-tuple follow-up
      work gets its wins from;
    - {b result cache} — keyed by (query fingerprint, table
      fingerprint): a repeated query against an unchanged table
      returns the rendered answer without touching the solver. Only
      {e proven} outcomes (Optimal / Infeasible) are cached — budget-
      dependent [Feasible] gaps and failures are recomputed. [APPEND]
      explicitly invalidates every result for the superseded table
      fingerprint.

    [APPEND] routes through {!Store.Maintain.append}: cached
    partitionings are maintained incrementally (local re-splits only),
    the table fingerprint is recomputed, and in-flight requests keep
    their pre-append snapshot. *)

type method_ = Direct | Sketch_refine | Parallel_refine

type config = {
  host : string;
  port : int;          (** 0 picks an ephemeral port; see {!port} *)
  workers : int;       (** worker pool size *)
  queue : int;         (** admission queue capacity *)
  result_cache : int;  (** result cache capacity; 0 disables *)
  plan_cache : int;    (** plan cache capacity; 0 disables *)
  method_ : method_;
  attrs : string list; (** partitioning attrs; [] = query's numeric attrs *)
  tau : int option;    (** [None] = 10% of the table *)
  epsilon : float option;
  limits : Ilp.Branch_bound.limits;  (** per-ILP budget *)
  request_seconds : float;  (** per-request wall budget (deadline) *)
  log_every : float;   (** seconds between metrics log lines; 0 = off *)
}

(** Defaults: localhost, ephemeral port, DIRECT, 60s request budget —
    with [workers], [queue] and [result_cache] read from
    [PKGQ_SERVE_WORKERS] (default 4), [PKGQ_SERVE_QUEUE] (default 32)
    and [PKGQ_RESULT_CACHE] (capacity, or [off]; default 256). *)
val default_config : unit -> config

type t

(** [start ?catalog config rel] binds, pre-warms the numeric column
    cache, starts the worker pool and accept thread, and returns.
    @raise Unix.Unix_error when the address cannot be bound. *)
val start : ?catalog:Store.Catalog.t -> config -> Relalg.Relation.t -> t

(** The bound port (the actual one when the config asked for 0). *)
val port : t -> int

val metrics : t -> Metrics.t

val config : t -> config

(** Current table content fingerprint (changes on append). *)
val table_fingerprint : t -> string

(** Evaluations that actually invoked a solver (cache hits don't). *)
val solve_count : t -> int

(** [append t extra] appends [extra]'s rows to the served table:
    maintains cached partitionings incrementally, recomputes the
    fingerprint, and invalidates the superseded result-cache entries.
    Also the implementation of the [APPEND] verb.
    @raise Invalid_argument when schemas differ. *)
val append : t -> Relalg.Relation.t -> unit

(** Block until the server is stopped (for the server binary). *)
val wait : t -> unit

(** Stop accepting, drain admitted work, close connections, join every
    thread. Idempotent. *)
val stop : t -> unit
