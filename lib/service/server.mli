(** The package-query server: a long-running TCP service evaluating
    PaQL queries over one shared, warm table.

    Request flow: a connection thread reads a framed {!Protocol}
    request, stamps its deadline ([arrival + request_seconds] — the
    budget the resilience layer then propagates into every ILP call),
    and submits an evaluation job to the {!Scheduler}. Admission
    control answers over-capacity requests immediately with a typed
    [rejected] failure ({!Pkg.Eval.Rejected}); admitted jobs run on the
    worker pool against an immutable snapshot of the table state.

    Work is shared across requests at three levels:

    - {b plan cache} — parse/analyze/compile once per query
      fingerprint ({!Paql.Fingerprint});
    - {b partitions} — sketchrefine partitionings are kept per
      (attrs, tau, radius) in memory (and in the {!Store.Catalog} when
      one is attached), so they are built once and reused by every
      request — the across-query reuse the billion-tuple follow-up
      work gets its wins from;
    - {b result cache} — keyed by (query fingerprint, table
      fingerprint): a repeated query against an unchanged table
      returns the rendered answer without touching the solver. Only
      {e proven} outcomes (Optimal / Infeasible) are cached — budget-
      dependent [Feasible] gaps and failures are recomputed. [APPEND]
      explicitly invalidates every result for the superseded table
      fingerprint;
    - {b basis cache} — keyed by (query {e structure} fingerprint,
      table fingerprint): the optimal root-LP basis of a DIRECT solve
      is saved and warm-starts the dual simplex for the next
      parameter-tweaked variant of the same query
      ({!Paql.Fingerprint.structure_of_query} abstracts numeric
      literals, so [... <= 150] and [... <= 160] share a key).
      Capacity comes from [PKGQ_BASIS_CACHE] (default 128; [off]
      disables); entries for a superseded table fingerprint are
      invalidated alongside results.

    [APPEND] routes through {!Store.Maintain.append}: cached
    partitionings are maintained incrementally (local re-splits only),
    the table fingerprint is recomputed, and in-flight requests keep
    their pre-append snapshot. *)

type method_ =
  | Direct
  | Sketch_refine
  | Parallel_refine
  | Progressive
      (** coarse-to-fine shading over a DLV hierarchy; hierarchies are
          cached per snapshot and persisted per level in the catalog.
          Per-level descent telemetry lands in STATS
          ([progressive_level<l>*] gauges and histograms). *)
  | Stochastic
      (** SummarySearch over Monte-Carlo scenarios
          ({!Pkg.Stochastic.run}); deterministic queries delegate to
          DIRECT inside. Queries using [WITH PROBABILITY] or [EXPECTED]
          route here {e whatever} the configured method. Telemetry
          lands in STATS ([stoch_scenarios], [stoch_validation],
          [stoch_summaries], [stoch_rounds], [stoch_validated_pm]
          gauges plus [scenario]/[summary]/[validate] stage
          histograms). Result-cache keys for stochastic queries embed
          the scenario knobs (PKGQ_SCENARIOS / PKGQ_VALIDATE /
          PKGQ_SUMMARIES and the seed), so re-tuning the environment
          never replays a stale answer. *)

type config = {
  host : string;
  port : int;          (** 0 picks an ephemeral port; see {!port} *)
  workers : int;       (** worker pool size *)
  queue : int;         (** admission queue capacity *)
  result_cache : int;  (** result cache capacity; 0 disables *)
  plan_cache : int;    (** plan cache capacity; 0 disables *)
  basis_cache : int;   (** solver basis cache capacity; 0 disables *)
  method_ : method_;
  attrs : string list; (** partitioning attrs; [] = query's numeric attrs *)
  tau : int option;    (** [None] = 10% of the table *)
  epsilon : float option;
  limits : Ilp.Branch_bound.limits;  (** per-ILP budget *)
  request_seconds : float;  (** per-request wall budget (deadline) *)
  log_every : float;   (** seconds between metrics log lines; 0 = off *)
  wal_dir : string option;
      (** durability directory (WAL + checkpoint); [None] = volatile *)
  wal_checkpoint : int;
      (** records between checkpoints; 0 = never checkpoint *)
}

(** Defaults: localhost, ephemeral port, DIRECT, 60s request budget —
    with [workers], [queue] and [result_cache] read from
    [PKGQ_SERVE_WORKERS] (default 4), [PKGQ_SERVE_QUEUE] (default 32),
    [PKGQ_RESULT_CACHE] (capacity, or [off]; default 256) and
    [PKGQ_BASIS_CACHE] (capacity, or [off]; default 128), no WAL,
    and the checkpoint threshold from [PKGQ_WAL_CHECKPOINT] (records
    between checkpoints, or [off]; default 64). *)
val default_config : unit -> config

type t

(** [start ?catalog config rel] binds, pre-warms the numeric column
    cache, starts the worker pool and accept thread, and returns. With
    [config.wal_dir] set, the served state is what
    {!Store.Recovery.recover} rebuilds — checkpoint + replayed WAL —
    and [rel] only seeds a directory that has never checkpointed; every
    write is then logged durably before it is applied or acknowledged
    ([PKGQ_WAL_SYNC] controls the fsync), and the log is folded into a
    fresh checkpoint every [wal_checkpoint] records.
    @raise Unix.Unix_error when the address cannot be bound.
    @raise Store.Wire.Error when the durability directory is corrupt. *)
val start : ?catalog:Store.Catalog.t -> config -> Relalg.Relation.t -> t

(** The bound port (the actual one when the config asked for 0). *)
val port : t -> int

val metrics : t -> Metrics.t

val config : t -> config

(** Current table content fingerprint (changes on append/delete). *)
val table_fingerprint : t -> string

(** Current table row count (after recovery, when a WAL is attached). *)
val table_rows : t -> int

(** Evaluations that actually invoked a solver (cache hits don't). *)
val solve_count : t -> int

(** Raised by {!append}/{!delete} when the write is refused by the
    membership fence: its epoch stamp predates this node's installed
    epoch, or the node's lease has expired and it has self-demoted
    read-only. Surfaces over the wire as the typed [fenced] error. *)
exception Fenced_write of string

(** The highest membership epoch installed here — by a [LEASE] from the
    coordinator, or recovered from the WAL's epoch stamps at startup.
    0 until either happens. *)
val current_epoch : t -> int

(** [append t extra] appends [extra]'s rows to the served table:
    maintains cached partitionings incrementally, recomputes the
    fingerprint, and invalidates the superseded result-cache entries.
    Also the implementation of the [APPEND] verb. With a WAL attached
    the rows are durable before the call returns, stamped with [epoch]
    (raised to the installed epoch; default the installed epoch), and
    the durable record's sequence number is returned ([None] without a
    log) — acks carry it so a coordinator knows exactly which WAL
    prefix it has acknowledged.
    @raise Invalid_argument when schemas differ.
    @raise Fenced_write when the membership fence refuses the write.
    @raise Store.Wal.Sync_failed when the record could not be made
    durable (the state is untouched). *)
val append : ?epoch:int -> t -> Relalg.Relation.t -> int option

(** [delete t ids] removes the given row ids (0-based, into the current
    table; duplicates allowed), compacting the remaining rows in order
    via {!Store.Maintain.delete} for every cached partitioning. Also
    the implementation of the [DELETE] verb; same durability, fencing,
    and returned-sequence contract as {!append}.
    @raise Invalid_argument on an out-of-range id. *)
val delete : ?epoch:int -> t -> int list -> int option

(** Recovery statistics from startup, when [wal_dir] was set. *)
val last_recovery : t -> Store.Recovery.stats option

(** Block until the server is stopped (for the server binary). *)
val wait : t -> unit

(** Stop accepting, drain admitted work, close connections, join every
    thread. Idempotent. *)
val stop : t -> unit
