(* Counters, gauges and log-bucketed latency histograms behind one
   mutex. Updates are a few arithmetic ops; rendering walks every
   table, so it stays off the per-request path (STATS verb / periodic
   log only). *)

(* Bucket [i] holds durations in [base * 2^i, base * 2^(i+1)); 34
   buckets span 1us .. ~2.4h, far past any request budget. *)
let base = 1e-6
let nbuckets = 34

type histogram = {
  mutable count : int;
  mutable sum : float;
  mutable max_v : float;
  buckets : int array;
}

type t = {
  mu : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  stages : (string, histogram) Hashtbl.t;
}

let create () =
  {
    mu = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    stages = Hashtbl.create 16;
  }

let cell tbl name =
  match Hashtbl.find_opt tbl name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl name r;
    r

let incr ?(by = 1) t name =
  Mutex.protect t.mu (fun () ->
      let r = cell t.counters name in
      r := !r + by)

let get t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let set_gauge t name v =
  Mutex.protect t.mu (fun () -> cell t.gauges name := v)

let get_gauge t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0)

let bucket_of dt =
  if dt <= base then 0
  else
    let i = int_of_float (Float.log2 (dt /. base)) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

(* upper bound of bucket [i] *)
let bucket_hi i = base *. Float.pow 2. (float_of_int (i + 1))

let hist t name =
  match Hashtbl.find_opt t.stages name with
  | Some h -> h
  | None ->
    let h = { count = 0; sum = 0.; max_v = 0.; buckets = Array.make nbuckets 0 } in
    Hashtbl.add t.stages name h;
    h

let observe t name dt =
  let dt = if Float.is_nan dt || dt < 0. then 0. else dt in
  Mutex.protect t.mu (fun () ->
      let h = hist t name in
      h.count <- h.count + 1;
      h.sum <- h.sum +. dt;
      if dt > h.max_v then h.max_v <- dt;
      let b = bucket_of dt in
      h.buckets.(b) <- h.buckets.(b) + 1)

let time t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0)) f

let stage_count t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.stages name with Some h -> h.count | None -> 0)

(* Resolve a quantile to its bucket's upper bound, clamped by the true
   max — exact for the extremes, <= 2x relative error in between. *)
let quantile_of h q =
  if h.count = 0 then None
  else begin
    let target =
      let r = int_of_float (Float.round (q *. float_of_int h.count)) in
      if r < 1 then 1 else if r > h.count then h.count else r
    in
    let acc = ref 0 and ans = ref h.max_v and found = ref false in
    Array.iteri
      (fun i n ->
        if not !found then begin
          acc := !acc + n;
          if !acc >= target then begin
            ans := Float.min (bucket_hi i) h.max_v;
            found := true
          end
        end)
      h.buckets;
    Some !ans
  end

let quantile t name q =
  Mutex.protect t.mu (fun () ->
      Option.bind (Hashtbl.find_opt t.stages name) (fun h -> quantile_of h q))

let mean t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.stages name with
      | Some h when h.count > 0 -> Some (h.sum /. float_of_int h.count)
      | _ -> None)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let ms v = 1000. *. v

let render t =
  Mutex.protect t.mu (fun () ->
      let buf = Buffer.create 512 in
      List.iter
        (fun (k, r) -> Buffer.add_string buf (Printf.sprintf "%s %d\n" k !r))
        (sorted_bindings t.counters);
      List.iter
        (fun (k, r) ->
          Buffer.add_string buf (Printf.sprintf "gauge %s %d\n" k !r))
        (sorted_bindings t.gauges);
      List.iter
        (fun (k, h) ->
          if h.count > 0 then
            let q p = Option.value ~default:0. (quantile_of h p) in
            Buffer.add_string buf
              (Printf.sprintf
                 "stage %s count %d mean_ms %.3f p50_ms %.3f p99_ms %.3f \
                  max_ms %.3f\n"
                 k h.count
                 (ms (h.sum /. float_of_int h.count))
                 (ms (q 0.5)) (ms (q 0.99)) (ms h.max_v)))
        (sorted_bindings t.stages);
      Buffer.contents buf)

let summary_line t =
  Mutex.protect t.mu (fun () ->
      let c name =
        match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0
      in
      let g name =
        match Hashtbl.find_opt t.gauges name with Some r -> !r | None -> 0
      in
      let total =
        match Hashtbl.find_opt t.stages "total" with
        | Some h when h.count > 0 ->
          Printf.sprintf "p50 %.1fms p99 %.1fms"
            (ms (Option.value ~default:0. (quantile_of h 0.5)))
            (ms (Option.value ~default:0. (quantile_of h 0.99)))
        | _ -> "p50 - p99 -"
      in
      Printf.sprintf
        "req %d ok %d failed %d shed %d depth %d plan %d/%d result %d/%d %s"
        (c "requests") (c "ok") (c "failed") (c "shed") (g "queue_depth")
        (c "plan_hits")
        (c "plan_hits" + c "plan_misses")
        (c "result_hits")
        (c "result_hits" + c "result_misses")
        total)
