(** The [pkgq_shard] coordinator: scatter/gather SketchRefine over a
    fleet of [pkgq_server] shards, with robustness as the design
    center — never a hang, never a silently wrong answer.

    {2 Topology}

    Shared-storage sharding: the coordinator and every shard load the
    {e same} table (same file, or the same base plus the same WAL op
    sequence), so global row ids are shard-local row ids and no row
    data ever travels for a query. The table is partitioned once
    (coordinator-side, the ordinary {!Pkg.Partition}) and the partition
    {e groups} are dealt round-robin across shards. ASSIGN installs
    each shard's groups and returns the shard's own representative
    tuples, which the coordinator diffs against its local partitioning:
    any divergence (a shard serving different bytes) is a typed data
    error, not a wrong package.

    {2 Per-query flow}

    plan locally -> SKETCH scatter (per-group WHERE-filtered candidate
    counts -> sketch ILP caps) -> solve the sketch ILP locally over the
    representative relation -> mirror the sequential greedy-backtracking
    refine loop (Algorithm 2), with each group's refine ILP dispatched
    to its owning shard as a REFINE RPC carrying the partial package's
    constraint-bound offsets as hex floats (bit-identical on both
    sides). Shards solve refine ILPs {e cold} (no warm-start), so a
    failover or hedged duplicate computes the identical answer on the
    primary or its replica — and a fully healthy run is byte-identical
    to a single [pkgq_server --method sketchrefine] for queries that
    need no fallback ladder. The distributed path has no hybrid-sketch
    fallback: a refine-infeasible query answers [infeasible] where a
    single node might still find a package (documented limitation).

    {2 Robustness}

    Every RPC gets a deadline carved from the query budget. Primary
    exchanges are retried with capped backoff behind a per-shard
    circuit breaker ({!config.breaker_trips} consecutive failures trip
    it; a PING probe after {!config.breaker_probe_seconds} readmits).
    On primary exhaustion the coordinator fails over to the replica,
    first promoting it: the dead primary's on-disk WAL is shipped from
    the last {e sent} record (never re-shipped — APPEND is not
    idempotent). Refine RPCs are hedged: if the primary has not
    answered within {!config.hedge_ms}, the same request is raced
    against the replica and the first answer wins (the loser is
    abandoned and its connection dies with it). A replica answer whose
    ship-acknowledgement cursor lags the primary's WAL tail marks its
    groups {e stale}; a group whose shard and replica are both
    unreachable is {e omitted} and the query degrades into a typed
    {!Protocol.Degraded} error naming exactly which groups were stale
    or omitted, instead of hanging or lying.

    {2 Membership & fencing}

    Replica-bearing shards live under a write-lease regime
    ({!Membership}): the active node may only ack writes while holding
    an unexpired lease, renewed over the shipping thread's cadence, and
    every write is stamped with the shard's current epoch. Failover for
    {e writes} is a fencing handshake ([fence_promote]): catch-up ship
    while the fence is down, wait out the deposed primary's lease,
    durably bump the epoch, raise the ship fence, grant the replica the
    new epoch's lease, and only then follow it — so a zombie primary
    (paused, deposed, resumed) can never ack a write the fleet loses:
    it self-demoted when its lease expired, its stale stamps answer the
    typed {!Protocol.Fenced} error, and its unshipped old-epoch WAL
    suffix is dropped at the fence. Reads also follow the active node;
    a deposed primary is never consulted again. *)

type endpoint = { ep_host : string; ep_port : int }

(** One shard: a primary, an optional read replica, and optionally the
    primary's on-disk WAL file ({!Store.Recovery.wal_path}) for
    shipping and promotion — the coordinator runs on the same
    filesystem as its local fleet. *)
type shard_spec = {
  primary : endpoint;
  replica : endpoint option;
  wal : string option;
}

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port *)
  method_ : [ `Sketch_refine | `Progressive ];
      (** [`Progressive] partitions with the DLV hierarchy leaf instead
          of the flat quad-tree and shades the leaf sketch through a
          local coarse-to-fine descent before the distributed refine;
          the fleet must be launched with [--method progressive] so the
          shards derive the identical leaf (ASSIGN divergence check).
          A shaded sketch that comes back infeasible is retried
          unshaded, so answers never get {e worse} than flat
          scatter/gather. *)
  attrs : string list;
      (** partitioning attributes; required non-empty, and the fleet
          must be launched with the identical [--attrs] (and [--tau],
          [--epsilon]) or ASSIGN reports divergence *)
  tau : int option;
  epsilon : float option;
  limits : Ilp.Branch_bound.limits;
  request_seconds : float;  (** per-query budget; RPC deadlines are carved from it *)
  connect_timeout : float;
  rpc_seconds : float;
      (** cap on scatter-phase (ASSIGN/SKETCH) read timeouts, so a
          stalled shard is detected long before the query budget *)
  retries : int;  (** primary attempts per exchange before failover *)
  hedge_ms : int;
      (** refine hedging delay; 0 disables (default
          [$PKGQ_HEDGE_MS] or 50) *)
  breaker_trips : int;
      (** consecutive primary failures that trip the breaker (default
          [$PKGQ_BREAKER_TRIPS] or 3) *)
  breaker_probe_seconds : float;  (** open time before a PING probe readmits *)
  probe_timeout : float;
      (** the half-open probe's own connect/read deadline (default
          0.25s) — independent of [rpc_seconds], so a probe against a
          stalled node answers "still sick" in bounded time; probe
          timeouts are typed and counted ([shard_probe_timeouts]) *)
  ship_every : float;  (** WAL shipper cycle, seconds *)
  lease_ms : int option;
      (** write-lease duration for replica-bearing shards; [None] reads
          [PKGQ_LEASE_MS] (default 1500) *)
  epoch_dir : string option;
      (** where per-shard fencing epochs are persisted ([epochs.bin]);
          [None] reads [PKGQ_EPOCH_DIR], and epochs are
          coordinator-local when that is unset too *)
}

val default_config : unit -> config

type t

(** [start cfg specs rel] — serve [rel] (the coordinator's own copy of
    the fleet's table) across [specs]. Binds the front-end socket,
    starts the accept loop and the WAL shipper thread.
    @raise Failure when [cfg.attrs] is empty. *)
val start : config -> shard_spec list -> Relalg.Relation.t -> t

val port : t -> int

val metrics : t -> Metrics.t

(** Shard [i]'s current fencing epoch (see {!Membership}). Starts at 1
    (raised by a persisted [epoch_dir]) and bumps durably on every
    fencing promotion. *)
val shard_epoch : t -> int -> int

(** One query through the full scatter/gather path (the same code the
    QUERY verb runs) — for in-process tests and the bench. *)
val eval : t -> string -> Protocol.response

(** Block until {!stop} completes (for the binary's signal loop). *)
val wait : t -> unit

val stop : t -> unit
