(** Live metrics for the package-query service: named counters, gauges
    and per-stage latency histograms, cheap enough to update on every
    request and rendered on demand for the [STATS] protocol verb and
    the periodic server log line.

    All operations are thread-safe. Counter/gauge/stage names are free
    strings; the server uses (counters) [requests], [ok], [failed],
    [shed], [connections], [net_errors], [appends], [solves],
    [plan_hits], [plan_misses], [result_hits], [result_misses],
    [result_invalidated], (gauge) [queue_depth], and (stages) [parse],
    [plan], [partition], [sketch], [hybrid], [refine], [solve],
    [queue_wait], [total]. *)

type t

val create : unit -> t

(** {1 Counters and gauges} *)

val incr : ?by:int -> t -> string -> unit

(** Current value of a counter ([0] when never incremented). *)
val get : t -> string -> int

val set_gauge : t -> string -> int -> unit

val get_gauge : t -> string -> int

(** {1 Latency histograms}

    Log-scale buckets from 1 microsecond up; quantiles are resolved to
    a bucket upper bound (≤ 2x relative error), exact count/sum/max. *)

val observe : t -> string -> float -> unit

(** [time t stage f] runs [f ()] and records its wall-clock seconds
    under [stage] (also on exception). *)
val time : t -> string -> (unit -> 'a) -> 'a

val stage_count : t -> string -> int

(** [quantile t stage q] for [q] in [0,1]; [None] when the stage has no
    observations. *)
val quantile : t -> string -> float -> float option

val mean : t -> string -> float option

(** {1 Rendering}

    One [key value] pair per line: every counter, [gauge <name>
    <value>], and per stage a
    [stage <name> count <n> mean_ms <m> p50_ms <m> p99_ms <m> max_ms
    <m>] line. Deterministically ordered (sorted by name). *)

val render : t -> string

(** Compact single-line summary for the periodic server log. *)
val summary_line : t -> string
