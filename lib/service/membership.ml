(* Epoch-fenced membership: the coordinator's source of truth for "who
   may ack writes for shard i, and under which epoch".

   One epoch per shard, monotonically increasing, bumped durably
   *before* a replica is installed as the new primary — the classic
   fencing-token discipline. Epochs are persisted through a [Store.Wire]
   envelope (atomic tempfile + fsync + rename), so a restarted
   coordinator can never re-issue an epoch an earlier incarnation
   already granted.

   Leases are the liveness half: a primary may only ack writes while it
   holds an unexpired lease, renewed by the coordinator over the
   ordinary PING/LEASE traffic. The clock-skew contract is split
   asymmetrically: the server forfeits the last fraction of its lease
   (demoting itself strictly before the nominal expiry), while the
   coordinator waits out the *full* nominal lease since its last
   successful grant before bumping the epoch ([quarantine_remaining]).
   With both sides honoring their half, a deposed primary has always
   demoted itself read-only before the next epoch can ack a write. *)

let magic = "PKGQMBR1"
let version = 1
let file_name = "epochs.bin"

let env_lease_ms = "PKGQ_LEASE_MS"
let env_epoch_dir = "PKGQ_EPOCH_DIR"

type t = {
  dir : string option;
  lease : float;  (* seconds *)
  epochs : int array;
  grants : float array;  (* last successful grant per shard, 0. = never *)
  mu : Mutex.t;
}

let path dir = Filename.concat dir file_name

let encode epochs =
  let b = Buffer.create 64 in
  Store.Wire.put_i32 b (Array.length epochs);
  Array.iter (Store.Wire.put_i64 b) epochs;
  Store.Wire.seal ~magic ~version b

(* A persisted file for a different shard count (a resized fleet) keeps
   what overlaps: surviving shards keep their fenced history, new ones
   start at epoch 1. *)
let load dir epochs =
  let p = path dir in
  if Sys.file_exists p then begin
    let r = Store.Wire.verify ~magic ~version (Store.Wire.read_file p) in
    let n = Store.Wire.get_i32 r in
    if n < 0 then Store.Wire.error "bad membership shard count %d" n;
    for i = 0 to n - 1 do
      let e = Store.Wire.get_i64 r in
      if e < 0 then Store.Wire.error "bad membership epoch %d" e;
      if i < Array.length epochs then epochs.(i) <- max epochs.(i) e
    done
  end

let rec mkdir_p d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ()
  end

let persist t =
  match t.dir with
  | None -> ()
  | Some dir ->
    mkdir_p dir;
    Store.Wire.write_string_file (path dir) (encode t.epochs)

let create ?dir ?lease_ms ~shards () =
  let dir =
    match dir with Some _ -> dir | None -> Sys.getenv_opt env_epoch_dir
  in
  let lease_ms =
    match lease_ms with
    | Some ms -> ms
    | None -> (
      match Option.bind (Sys.getenv_opt env_lease_ms) int_of_string_opt with
      | Some ms -> ms
      | None -> 1500)
  in
  let epochs = Array.make (max 1 shards) 1 in
  Option.iter (fun d -> load d epochs) dir;
  {
    dir;
    lease = float_of_int (max 1 lease_ms) /. 1000.;
    epochs;
    grants = Array.make (max 1 shards) 0.;
    mu = Mutex.create ();
  }

let shards t = Array.length t.epochs

let epoch t i = Mutex.protect t.mu (fun () -> t.epochs.(i))

let lease_seconds t = t.lease

let lease_ms t = int_of_float (Float.round (t.lease *. 1000.))

(* Durably advance shard [i]'s epoch and return the new value. The file
   hits disk before the new epoch is revealed to the caller — a
   coordinator crash right after [bump] can only lose the *use* of the
   epoch, never resurrect the old one. *)
let bump t i =
  Mutex.protect t.mu (fun () ->
      t.epochs.(i) <- t.epochs.(i) + 1;
      persist t;
      t.epochs.(i))

let note_grant t i =
  Mutex.protect t.mu (fun () -> t.grants.(i) <- Unix.gettimeofday ())

let grant_age t i =
  Mutex.protect t.mu (fun () ->
      let g = t.grants.(i) in
      if g = 0. then Float.infinity else Unix.gettimeofday () -. g)

let quarantine_remaining t i =
  let age = grant_age t i in
  if age = Float.infinity then 0. else Float.max 0. (t.lease -. age)
