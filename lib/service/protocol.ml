type request =
  | Query of string
  | Append of { csv : string; epoch : int option }
  | Delete of { ids : int list; epoch : int option }
  | Lease of { epoch : int; ttl_ms : int }
  | Assign of string
  | Sketch of string
  | Refine of string
  | Fingerprint
  | Stats
  | Ping
  | Quit

type error_code =
  | Rejected
  | Deadline
  | Infeasible
  | Degraded
  | Failed
  | Fenced
  | Parse_error
  | Analysis_error
  | Data_error
  | Internal

type response = Resp_ok of string | Resp_err of error_code * string

exception Protocol_error of string

let code_name = function
  | Rejected -> "rejected"
  | Deadline -> "deadline"
  | Infeasible -> "infeasible"
  | Degraded -> "degraded"
  | Failed -> "failed"
  | Fenced -> "fenced"
  | Parse_error -> "parse"
  | Analysis_error -> "analysis"
  | Data_error -> "data"
  | Internal -> "internal"

let code_of_name = function
  | "rejected" -> Some Rejected
  | "deadline" -> Some Deadline
  | "infeasible" -> Some Infeasible
  | "degraded" -> Some Degraded
  | "failed" -> Some Failed
  | "fenced" -> Some Fenced
  | "parse" -> Some Parse_error
  | "analysis" -> Some Analysis_error
  | "data" -> Some Data_error
  | "internal" -> Some Internal
  | _ -> None

let exit_code = function
  | Infeasible -> 1
  | Deadline | Failed | Internal -> 2
  | Data_error -> 3
  | Parse_error -> 4
  | Analysis_error -> 5
  | Rejected -> 7
  | Degraded -> 8
  | Fenced -> 9

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

(* A body cap keeps a corrupt length prefix from allocating the moon. *)
let max_body = 64 * 1024 * 1024

let write_body oc body =
  output_string oc body;
  output_char oc '\n';
  flush oc

let read_len what s =
  match int_of_string_opt s with
  | Some n when n >= 0 && n <= max_body -> n
  | _ -> raise (Protocol_error (Printf.sprintf "%s: bad length %S" what s))

(* The optional trailing token of an APPEND/DELETE request line: the
   membership epoch the write was issued under (absent on unfenced
   writes, so pre-epoch clients keep working verbatim). *)
let read_epoch what = function
  | [] -> None
  | [ e ] -> (
    match int_of_string_opt e with
    | Some n when n >= 0 -> Some n
    | _ -> raise (Protocol_error (Printf.sprintf "%s: bad epoch %S" what e)))
  | _ -> raise (Protocol_error (Printf.sprintf "%s: bad request line" what))

let read_body ic len =
  let body = really_input_string ic len in
  (match input_char ic with
  | '\n' -> ()
  | c ->
    raise (Protocol_error (Printf.sprintf "missing frame terminator, got %C" c)));
  body

let write_request oc = function
  | Query q ->
    Printf.fprintf oc "QUERY %d\n" (String.length q);
    write_body oc q
  | Append { csv; epoch } ->
    (match epoch with
    | None -> Printf.fprintf oc "APPEND %d\n" (String.length csv)
    | Some e -> Printf.fprintf oc "APPEND %d %d\n" (String.length csv) e);
    write_body oc csv
  | Delete { ids; epoch } ->
    let body = String.concat " " (List.map string_of_int ids) in
    (match epoch with
    | None -> Printf.fprintf oc "DELETE %d\n" (String.length body)
    | Some e -> Printf.fprintf oc "DELETE %d %d\n" (String.length body) e);
    write_body oc body
  | Lease { epoch; ttl_ms } ->
    Printf.fprintf oc "LEASE %d %d\n" epoch ttl_ms;
    flush oc
  | Assign body ->
    Printf.fprintf oc "ASSIGN %d\n" (String.length body);
    write_body oc body
  | Sketch body ->
    Printf.fprintf oc "SKETCH %d\n" (String.length body);
    write_body oc body
  | Refine body ->
    Printf.fprintf oc "REFINE %d\n" (String.length body);
    write_body oc body
  | Fingerprint ->
    output_string oc "FPRINT\n";
    flush oc
  | Stats ->
    output_string oc "STATS\n";
    flush oc
  | Ping ->
    output_string oc "PING\n";
    flush oc
  | Quit ->
    output_string oc "QUIT\n";
    flush oc

let read_request ic =
  match input_line ic with
  | exception End_of_file -> None
  | line -> (
    match String.split_on_char ' ' (String.trim line) with
    | [ "QUERY"; len ] ->
      Some (Query (read_body ic (read_len "QUERY" len)))
    | "APPEND" :: len :: epoch ->
      let epoch = read_epoch "APPEND" epoch in
      Some (Append { csv = read_body ic (read_len "APPEND" len); epoch })
    | "DELETE" :: len :: epoch ->
      let epoch = read_epoch "DELETE" epoch in
      let body = read_body ic (read_len "DELETE" len) in
      let ids =
        String.split_on_char ' ' (String.trim body)
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match int_of_string_opt s with
               | Some id -> id
               | None ->
                 raise
                   (Protocol_error
                      (Printf.sprintf "DELETE: bad row id %S" s)))
      in
      Some (Delete { ids; epoch })
    | [ "LEASE"; epoch; ttl_ms ] -> (
      match (int_of_string_opt epoch, int_of_string_opt ttl_ms) with
      | Some e, Some ttl when e >= 0 && ttl >= 0 ->
        Some (Lease { epoch = e; ttl_ms = ttl })
      | _ ->
        raise (Protocol_error (Printf.sprintf "bad request line %S" line)))
    | [ "ASSIGN"; len ] ->
      Some (Assign (read_body ic (read_len "ASSIGN" len)))
    | [ "SKETCH"; len ] ->
      Some (Sketch (read_body ic (read_len "SKETCH" len)))
    | [ "REFINE"; len ] ->
      Some (Refine (read_body ic (read_len "REFINE" len)))
    | [ "FPRINT" ] -> Some Fingerprint
    | [ "STATS" ] -> Some Stats
    | [ "PING" ] -> Some Ping
    | [ "QUIT" ] -> Some Quit
    | _ -> raise (Protocol_error (Printf.sprintf "bad request line %S" line)))

let write_response oc = function
  | Resp_ok body ->
    Printf.fprintf oc "OK %d\n" (String.length body);
    write_body oc body
  | Resp_err (code, body) ->
    Printf.fprintf oc "ERR %s %d\n" (code_name code) (String.length body);
    write_body oc body

let read_response ic =
  match input_line ic with
  | exception End_of_file -> raise (Protocol_error "connection closed")
  | line -> (
    match String.split_on_char ' ' (String.trim line) with
    | [ "OK"; len ] -> Resp_ok (read_body ic (read_len "OK" len))
    | [ "ERR"; code; len ] -> (
      match code_of_name code with
      | Some c -> Resp_err (c, read_body ic (read_len "ERR" len))
      | None ->
        raise (Protocol_error (Printf.sprintf "unknown error code %S" code)))
    | _ -> raise (Protocol_error (Printf.sprintf "bad response line %S" line)))

(* ------------------------------------------------------------------ *)
(* Query result bodies                                                *)
(* ------------------------------------------------------------------ *)

(* The wall line sits outside the cacheable prefix conceptually, but
   keeping the whole body one string makes the result cache trivial;
   the cached copy simply reports the original run's wall time, which
   is itself informative (it is the time the cache is saving). *)
let render_result ~status_line ~wall ~csv =
  Printf.sprintf "status %s\nwall %.6f\n%s" status_line wall csv

let parse_result body =
  match String.index_opt body '\n' with
  | None -> Error "result body: missing status line"
  | Some i -> (
    let status_line = String.sub body 0 i in
    let rest = String.sub body (i + 1) (String.length body - i - 1) in
    match String.index_opt rest '\n' with
    | None -> Error "result body: missing wall line"
    | Some j ->
      let wall_line = String.sub rest 0 j in
      let csv = String.sub rest (j + 1) (String.length rest - j - 1) in
      if not (String.length status_line >= 7
              && String.sub status_line 0 7 = "status ")
      then Error "result body: bad status line"
      else
        let status =
          String.sub status_line 7 (String.length status_line - 7)
        in
        match String.split_on_char ' ' wall_line with
        | [ "wall"; w ] -> (
          match float_of_string_opt w with
          | Some wall -> Ok (status, wall, csv)
          | None -> Error "result body: bad wall value")
        | _ -> Error "result body: bad wall line")

(* ------------------------------------------------------------------ *)
(* Shard verb bodies                                                  *)
(* ------------------------------------------------------------------ *)

let bad what s =
  raise (Protocol_error (Printf.sprintf "%s: bad field %S" what s))

let int_field what s =
  match int_of_string_opt s with Some n -> n | None -> bad what s

let nonempty_lines body =
  String.split_on_char '\n' body |> List.filter (fun l -> String.trim l <> "")

let render_assign groups =
  groups
  |> List.map (fun (gid, ids) ->
         let ids = Array.to_list ids |> List.map string_of_int in
         String.concat " " (string_of_int gid :: ids))
  |> String.concat "\n"

let parse_assign body =
  nonempty_lines body
  |> List.map (fun line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | gid :: ids ->
           ( int_field "ASSIGN gid" gid,
             Array.of_list (List.map (int_field "ASSIGN id") ids) )
         | [] -> bad "ASSIGN" line)

let render_counts counts =
  counts
  |> List.map (fun (gid, n) -> Printf.sprintf "%d %d" gid n)
  |> String.concat "\n"

let parse_counts body =
  nonempty_lines body
  |> List.map (fun line ->
         match
           String.split_on_char ' ' (String.trim line)
           |> List.filter (fun s -> s <> "")
         with
         | [ gid; n ] -> (int_field "counts gid" gid, int_field "counts n" n)
         | _ -> bad "counts" line)

(* Hex float literals round-trip exactly, so the shard's refine ILP sees
   bit-identical offsets to the ones the coordinator computed. *)
let render_refine ~gid ~budget_ms ~offsets ~query =
  let offs =
    Array.to_list offsets
    |> List.map (fun v -> Printf.sprintf "%h" v)
    |> String.concat " "
  in
  Printf.sprintf "%d %d\n%s\n%s" gid budget_ms offs query

let parse_refine body =
  match String.index_opt body '\n' with
  | None -> bad "REFINE" body
  | Some i -> (
    let head = String.sub body 0 i in
    let rest = String.sub body (i + 1) (String.length body - i - 1) in
    match String.index_opt rest '\n' with
    | None -> bad "REFINE" rest
    | Some j ->
      let offs_line = String.sub rest 0 j in
      let query = String.sub rest (j + 1) (String.length rest - j - 1) in
      let gid, budget_ms =
        match
          String.split_on_char ' ' (String.trim head)
          |> List.filter (fun s -> s <> "")
        with
        | [ gid; ms ] ->
          (int_field "REFINE gid" gid, int_field "REFINE budget" ms)
        | _ -> bad "REFINE header" head
      in
      let offsets =
        String.split_on_char ' ' (String.trim offs_line)
        |> List.filter (fun s -> s <> "")
        |> List.map (fun s ->
               match float_of_string_opt s with
               | Some v -> v
               | None -> bad "REFINE offset" s)
        |> Array.of_list
      in
      (gid, budget_ms, offsets, query))

type refine_result =
  | Refine_feasible of (int * int) list
  | Refine_infeasible
  | Refine_failed of string

let render_refine_result = function
  | Refine_infeasible -> "infeasible"
  | Refine_failed msg -> "failed " ^ msg
  | Refine_feasible entries ->
    let entries =
      entries
      |> List.map (fun (row, cnt) -> Printf.sprintf "%d:%d" row cnt)
      |> String.concat " "
    in
    Printf.sprintf "feasible\n%s" entries

let parse_refine_result body =
  let line, rest =
    match String.index_opt body '\n' with
    | None -> (body, "")
    | Some i ->
      ( String.sub body 0 i,
        String.sub body (i + 1) (String.length body - i - 1) )
  in
  match String.trim line with
  | "infeasible" -> Refine_infeasible
  | l when String.length l >= 6 && String.sub l 0 6 = "failed" ->
    Refine_failed (String.trim (String.sub l 6 (String.length l - 6)))
  | "feasible" ->
    let entries =
      String.split_on_char ' ' (String.trim rest)
      |> List.filter (fun s -> s <> "")
      |> List.map (fun pair ->
             match String.split_on_char ':' pair with
             | [ row; cnt ] ->
               (int_field "refine row" row, int_field "refine count" cnt)
             | _ -> bad "refine entry" pair)
    in
    Refine_feasible entries
  | l -> bad "refine result" l
