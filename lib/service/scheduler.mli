(** Bounded request scheduler: a fixed pool of worker threads draining
    a bounded FIFO queue, with admission control at the front door.

    Load is bounded twice over: at most [workers] evaluations run at
    once, and at most [capacity] admitted requests wait. A request
    arriving beyond that is {e shed} — {!submit} returns [`Rejected]
    immediately and nothing is queued — so an overloaded server answers
    every connection with a typed [rejected] failure instead of
    accumulating unbounded latency. An installed [queue=full] fault
    ({!Pkg.Faults.queue_full}) makes the admission check shed
    deterministically regardless of real depth.

    Queue depth is mirrored into the metrics gauge [queue_depth], shed
    requests into the [shed] counter, and each job's time-in-queue into
    the [queue_wait] stage histogram. *)

type t

(** [create ~workers ~capacity ~metrics] starts the worker threads.
    [workers] and [capacity] are clamped to at least 1. *)
val create : workers:int -> capacity:int -> metrics:Metrics.t -> t

val workers : t -> int

val capacity : t -> int

(** Admitted requests currently waiting (excludes running jobs). *)
val depth : t -> int

(** [submit t job] enqueues [job] to run on a worker thread. The job
    must not raise (a raise is caught and logged, the worker
    survives). Returns [`Rejected] without queueing when the queue is
    at capacity, a [queue=full] fault is installed, or the scheduler
    is shutting down. *)
val submit : t -> (unit -> unit) -> [ `Accepted | `Rejected ]

(** Stop accepting work, drain already-admitted jobs, join the
    workers. Idempotent. *)
val shutdown : t -> unit
