exception Gave_up of { attempts : int; last : exn }

exception Timed_out of { phase : [ `Connect | `Read ]; seconds : float }

let () =
  Printexc.register_printer (function
    | Gave_up { attempts; last } ->
      Some
        (Printf.sprintf "gave up after %d attempts (last: %s)" attempts
           (Printexc.to_string last))
    | Timed_out { phase; seconds } ->
      Some
        (Printf.sprintf "timed out after %.3fs (%s)" seconds
           (match phase with `Connect -> "connect" | `Read -> "read"))
    | _ -> None)

type conn = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

type t = {
  host : string;
  port : int;
  retries : int;
  connect_timeout : float option;
  mutable timeout : float option;
  jitter : Random.State.t;
  mutable conn : conn option;
  mutable closed : bool;
}

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok ((if host = "" then "127.0.0.1" else host), p)
    | _ -> Error (Printf.sprintf "bad port %S in %S" port s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

(* SO_RCVTIMEO bounds every read(2) under the input channel; an expiry
   surfaces as EAGAIN (wrapped in [Sys_error] by the channel layer) and
   is reclassified as {!Timed_out} in [roundtrip]. *)
let apply_read_timeout fd = function
  | None -> ()
  | Some seconds ->
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds
     with Unix.Unix_error _ -> ())

let raw_connect ?connect_timeout ?timeout ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     let addr = Unix.ADDR_INET (resolve host, port) in
     (match connect_timeout with
     | None -> Unix.connect fd addr
     | Some seconds -> (
       (* non-blocking connect + select: a black-holed or SIGSTOPped
          endpoint yields a typed timeout instead of a hung caller *)
       Unix.set_nonblock fd;
       (try Unix.connect fd addr with
       | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
         let _, writable, _ = Unix.select [] [ fd ] [] seconds in
         if writable = [] then raise (Timed_out { phase = `Connect; seconds });
         match Unix.getsockopt_error fd with
         | None -> ()
         | Some err -> raise (Unix.Unix_error (err, "connect", ""))));
       Unix.clear_nonblock fd));
     apply_read_timeout fd timeout
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
  }

(* Capped exponential backoff with +/-25% jitter: 50ms, 100ms, 200ms,
   ... capped at 800ms — a retry budget of 5 rides out roughly a
   two-second restart window without hammering the listen queue. *)
let backoff_delay jitter attempt =
  let base = Float.min 0.8 (0.05 *. (2. ** float_of_int attempt)) in
  base *. (0.75 +. (0.5 *. Random.State.float jitter 1.))

let connection_error = function
  | Unix.Unix_error _ | Sys_error _ | End_of_file | Failure _ -> true
  | Protocol.Protocol_error msg -> msg = "connection closed"
  | _ -> false

(* Establish with the client's retry budget; raises [Gave_up] once it
   is spent (or the original error when retries are off). A connect
   {!Timed_out} is never retried: the timeout is a latency promise to
   the caller, and a retry loop would multiply it. *)
let establish t =
  let rec go attempt =
    match
      raw_connect ?connect_timeout:t.connect_timeout ?timeout:t.timeout
        ~host:t.host ~port:t.port ()
    with
    | conn -> conn
    | exception (Timed_out _ as e) -> raise e
    | exception e when connection_error e ->
      if t.retries = 0 then raise e
      else if attempt >= t.retries then
        raise (Gave_up { attempts = attempt + 1; last = e })
      else begin
        Thread.delay (backoff_delay t.jitter attempt);
        go (attempt + 1)
      end
  in
  go 0

let connect ?(retries = 0) ?connect_timeout ?timeout ~host ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      host;
      port;
      retries;
      connect_timeout;
      timeout;
      jitter = Random.State.make_self_init ();
      conn = None;
      closed = false;
    }
  in
  t.conn <- Some (establish t);
  t

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    t.conn <- None;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

(* SO_LINGER 0 turns close into a TCP RST, and the peer's kernel
   processes an RST even while the process is SIGSTOPped: a connection
   still sitting in the accept backlog is purged outright, and a
   half-sent request stream is torn down rather than half-delivered
   over an orderly FIN. The RST is best-effort, not a purge guarantee:
   Linux delivers data the peer's kernel has already received before it
   reports the reset, so a request fully buffered at a stalled peer CAN
   still be consumed after it resumes. Timed-out requests are dropped
   abortively anyway — it shrinks the window — but anything whose
   late consumption would confer authority (LEASE grants) must also be
   safe temporally: the server judges lease expiry at arrival and
   refuses same-epoch re-grants once expired, and the coordinator's
   lease RPC waits out most of the lease before abandoning a grant
   (see Coordinator.lease_node). *)
let abort_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    t.conn <- None;
    (try Unix.setsockopt_optint c.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    (try Unix.close c.fd with Unix.Unix_error _ -> ())

let conn_of t =
  match t.conn with
  | Some c -> c
  | None ->
    let c = establish t in
    t.conn <- Some c;
    c

let set_timeout t timeout =
  t.timeout <- timeout;
  match t.conn with
  | None -> ()
  | Some c ->
    apply_read_timeout c.fd
      (match timeout with None -> Some 0. (* 0 disables SO_RCVTIMEO *)
                        | some -> some)

(* Only requests whose replay cannot change state twice are resent on a
   dropped connection: an APPEND/DELETE whose ack was lost may already
   be applied (and with a WAL, durable), so resending could double it. *)
let idempotent = function
  | Protocol.Query _ | Protocol.Ping | Protocol.Stats | Protocol.Fingerprint
  | Protocol.Assign _ | Protocol.Sketch _ | Protocol.Refine _
  | Protocol.Lease _ ->
    (* the shard verbs are pure reads / idempotent installs: replaying
       an ASSIGN re-derives the same state, SKETCH and REFINE compute
       without mutating; re-granting a LEASE at the same epoch merely
       extends the same lease *)
    true
  | Protocol.Append _ | Protocol.Delete _ | Protocol.Quit -> false

let roundtrip t req =
  if t.closed then raise (Protocol.Protocol_error "client is closed");
  let once () =
    let c = conn_of t in
    let started = Unix.gettimeofday () in
    try
      Protocol.write_request c.oc req;
      Protocol.read_response c.ic
    with (Sys_error _ | Unix.Unix_error _ | End_of_file) as e -> (
      (* With a read timeout armed, an expired SO_RCVTIMEO surfaces as a
         channel error indistinguishable from a peer reset by type
         alone; the elapsed clock tells them apart. Either way the
         stream is desynchronized, so the connection is dropped. *)
      match t.timeout with
      | Some seconds when Unix.gettimeofday () -. started >= seconds *. 0.9 ->
        (* abortive: the unanswered request may be buffered at a
           stalled peer, and it must die with the connection *)
        abort_conn t;
        raise (Timed_out { phase = `Read; seconds })
      | _ -> raise e)
  in
  let rec go attempt =
    match once () with
    | resp -> resp
    | exception ((Gave_up _ | Timed_out _) as e) -> raise e
    | exception e when connection_error e ->
      drop_conn t;
      if t.retries = 0 || not (idempotent req) then raise e
      else if attempt >= t.retries then
        raise (Gave_up { attempts = attempt + 1; last = e })
      else begin
        Thread.delay (backoff_delay t.jitter attempt);
        go (attempt + 1)
      end
  in
  go 0

let query t q = roundtrip t (Protocol.Query q)
let append ?epoch t ~csv = roundtrip t (Protocol.Append { csv; epoch })
let delete ?epoch t ids = roundtrip t (Protocol.Delete { ids; epoch })
let lease t ~epoch ~ttl_ms = roundtrip t (Protocol.Lease { epoch; ttl_ms })
let fingerprint t = roundtrip t Protocol.Fingerprint
let stats t = roundtrip t Protocol.Stats
let ping t = roundtrip t Protocol.Ping

let abort t =
  t.closed <- true;
  abort_conn t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.conn with
    | None -> ()
    | Some c -> (
      (try Protocol.write_request c.oc Protocol.Quit with _ -> ());
      t.conn <- None;
      try Unix.close c.fd with Unix.Unix_error _ -> ()))
  end
