type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable closed : bool;
}

let parse_endpoint s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "expected HOST:PORT, got %S" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port with
    | Some p when p > 0 && p < 65536 ->
      Ok ((if host = "" then "127.0.0.1" else host), p)
    | _ -> Error (Printf.sprintf "bad port %S in %S" port s))

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let connect ~host ~port =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (resolve host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  {
    fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd;
    closed = false;
  }

let roundtrip t req =
  if t.closed then raise (Protocol.Protocol_error "client is closed");
  Protocol.write_request t.oc req;
  Protocol.read_response t.ic

let query t q = roundtrip t (Protocol.Query q)
let append t ~csv = roundtrip t (Protocol.Append csv)
let stats t = roundtrip t Protocol.Stats
let ping t = roundtrip t Protocol.Ping

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Protocol.write_request t.oc Protocol.Quit with _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
