let src = Logs.Src.create "pkgq.coordinator" ~doc:"sharded package-query coordinator"

module Log = (val Logs.src_log src : Logs.LOG)

type endpoint = { ep_host : string; ep_port : int }

type shard_spec = {
  primary : endpoint;
  replica : endpoint option;
  wal : string option;
}

type config = {
  host : string;
  port : int;
  method_ : [ `Sketch_refine | `Progressive ];
  attrs : string list;
  tau : int option;
  epsilon : float option;
  limits : Ilp.Branch_bound.limits;
  request_seconds : float;
  connect_timeout : float;
  rpc_seconds : float;
  retries : int;
  hedge_ms : int;
  breaker_trips : int;
  breaker_probe_seconds : float;
  probe_timeout : float;
  ship_every : float;
  lease_ms : int option;
  epoch_dir : string option;
}

let int_env name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> n
    | _ -> default)

let default_config () =
  {
    host = "127.0.0.1";
    port = 0;
    method_ = `Sketch_refine;
    attrs = [];
    tau = None;
    epsilon = None;
    limits = Ilp.Branch_bound.default_limits;
    request_seconds = 60.;
    connect_timeout = 1.;
    rpc_seconds = 2.;
    retries = 2;
    hedge_ms = int_env "PKGQ_HEDGE_MS" 50;
    breaker_trips = max 1 (int_env "PKGQ_BREAKER_TRIPS" 3);
    breaker_probe_seconds = 0.25;
    probe_timeout = 0.25;
    ship_every = 0.05;
    lease_ms = None;
    epoch_dir = None;
  }

(* ------------------------------------------------------------------ *)
(* Connection pools                                                   *)
(* ------------------------------------------------------------------ *)

(* One pool per endpoint: concurrent queries (and a hedge racing its
   primary) each borrow their own connection; broken ones are discarded
   rather than returned, so a pool never caches a desynchronized
   stream. *)
type node = {
  ep : endpoint;
  mutable idle : Client.t list;
  pool_mu : Mutex.t;
}

let node_of ep = { ep; idle = []; pool_mu = Mutex.create () }

let borrow ~connect_timeout node =
  match
    Mutex.protect node.pool_mu (fun () ->
        match node.idle with
        | c :: rest ->
          node.idle <- rest;
          Some c
        | [] -> None)
  with
  | Some c -> c
  | None ->
    Client.connect ~connect_timeout ~host:node.ep.ep_host ~port:node.ep.ep_port
      ()

let give_back node c =
  let kept =
    Mutex.protect node.pool_mu (fun () ->
        if List.length node.idle < 4 then begin
          node.idle <- c :: node.idle;
          true
        end
        else false)
  in
  if not kept then try Client.close c with _ -> ()

let discard c = try Client.close c with _ -> ()

(* Sever every pooled connection (the shard=K:drop fault): the next
   exchange reconnects from scratch. *)
let sever node =
  let dropped =
    Mutex.protect node.pool_mu (fun () ->
        let cs = node.idle in
        node.idle <- [];
        cs)
  in
  List.iter discard dropped

(* ------------------------------------------------------------------ *)
(* Shard runtime state                                                *)
(* ------------------------------------------------------------------ *)

type breaker_state = Closed | Open of float | Probing

type shard = {
  s_idx : int;
  s_spec : shard_spec;
  s_primary : node;
  s_replica : node option;
  (* Replication bookkeeping: [s_cursor] is the *acknowledged* ship
     position (drives the lag gauge and stale marking); [s_shipped]
     what was actually sent. They diverge when acks are withheld
     (repl=lag faults model lost acks: data flows, certainty does
     not). Promotion resumes from [s_shipped] — re-shipping an APPEND
     would double its rows. *)
  s_cursor : Store.Ship.cursor option;
  mutable s_shipped : int;
  (* Highest primary WAL sequence whose write THIS coordinator has
     acknowledged (seeded with the log's tail at startup). Shipping
     never runs past it: a record beyond it is a write whose ack never
     left the primary — its client saw a timeout, and the failover path
     will re-apply it at the new primary, so shipping it too would
     double it. The fence installed at promotion then drops it for
     good. *)
  mutable s_acked_seq : int;
  (* which node currently holds the shard's write lease: [`Primary]
     until a fencing promotion installs the replica. Writes and reads
     follow the active node; the deposed primary is never consulted
     again (it may be a zombie serving a pre-promotion table). *)
  mutable s_active : [ `Primary | `Replica ];
  (* Lease-grant vs promotion interlock. A renewal in flight at a
     stalled primary can be consumed — and granted — whenever that
     process resumes, so the fencing handshake must not bump the epoch
     while one is outstanding. [s_fencing] stops new renewals for the
     shard; [s_lease_inflight] is set (atomically with the [s_fencing]
     check) around each grant RPC so the handshake can wait the current
     one out: it either completes (note_grant pushes the quarantine
     accordingly) or its read timeout aborts the connection with an
     RST, which the stalled peer's kernel processes immediately —
     purging the un-consumed grant before the epoch moves past it. *)
  mutable s_fencing : bool;
  mutable s_lease_inflight : bool;
  mutable s_breaker : breaker_state;
  mutable s_failures : int;
  mutable s_primary_layout : string option;
  mutable s_replica_layout : string option;
  s_mu : Mutex.t;
}

(* The group assignment for one table state: gids dealt round-robin
   across shards, with the expected ASSIGN reply (each shard's
   representative tuples) precomputed for the divergence check. *)
type layout = {
  l_key : string;
  l_part : Pkg.Partition.t;
  (* progressive only: the DLV hierarchy whose leaf is [l_part]; the
     coarse levels drive the local shading descent *)
  l_hier : Pkg.Hierarchy.t option;
  l_owner : int array;
  l_groups : (int * int array) list array;
  l_reps_csv : string array;
}

type t = {
  cfg : config;
  metrics : Metrics.t;
  membership : Membership.t;
  shards : shard array;
  plan_cache : (string, Paql.Ast.query * Paql.Translate.spec) Cache.t;
  mutable rel : Relalg.Relation.t;
  mutable fp : string;
  layouts : (string, layout) Hashtbl.t;
  state_mu : Mutex.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable accept_thread : Thread.t option;
  mutable ship_thread : Thread.t option;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mutable conn_threads : Thread.t list;
  mutable next_conn : int;
  conns_mu : Mutex.t;
  mutable stopped : bool;
  mutable finished : bool;
  stop_mu : Mutex.t;
  stop_cond : Condition.t;
}

let port t = t.bound_port
let metrics t = t.metrics

let shard_epoch t i = Membership.epoch t.membership i

(* The node currently holding the write lease, with the role to book
   its layout under; and the node a failed exchange may fall back to.
   Once the replica is active there is no standby — the deposed primary
   may be a resumed zombie whose table predates the promotion, and an
   answer from it would be silently stale, not merely lagging. *)
let active_node shard =
  match shard.s_active with
  | `Primary -> (shard.s_primary, `Primary)
  | `Replica -> (
    match shard.s_replica with
    | Some r -> (r, `Replica)
    | None -> (shard.s_primary, `Primary))

let has_standby shard =
  shard.s_active = `Primary && shard.s_replica <> None

(* Both the owning shard and its replica are out of reach: the group
   degrades to [omitted] rather than failing the whole query. *)
exception Shard_down of int * string

let replica_lag shard =
  match (shard.s_cursor, shard.s_spec.wal) with
  | Some c, Some path ->
    max 0 (Store.Ship.last_seq path - Store.Ship.position c)
  | _ -> 0

let refresh_shard_gauges t shard =
  let name k = Printf.sprintf "shard%d_%s" shard.s_idx k in
  let breaker, failures =
    Mutex.protect shard.s_mu (fun () -> (shard.s_breaker, shard.s_failures))
  in
  Metrics.set_gauge t.metrics (name "breaker")
    (match breaker with Closed -> 0 | Open _ -> 1 | Probing -> 2);
  Metrics.set_gauge t.metrics (name "failures") failures;
  Metrics.set_gauge t.metrics (name "epoch")
    (Membership.epoch t.membership shard.s_idx);
  Metrics.set_gauge t.metrics (name "active")
    (match shard.s_active with `Primary -> 0 | `Replica -> 1);
  if shard.s_replica <> None then
    Metrics.set_gauge t.metrics (name "repl_lag") (replica_lag shard)

(* ------------------------------------------------------------------ *)
(* Circuit breaker                                                    *)
(* ------------------------------------------------------------------ *)

let breaker_gate t shard =
  let gate =
    Mutex.protect shard.s_mu (fun () ->
        match shard.s_breaker with
        | Closed -> `Allow
        | Probing -> `Deny
        | Open since ->
          if Unix.gettimeofday () -. since >= t.cfg.breaker_probe_seconds
          then begin
            shard.s_breaker <- Probing;
            `Probe
          end
          else `Deny)
  in
  refresh_shard_gauges t shard;
  gate

let record_primary_failure t shard =
  Mutex.protect shard.s_mu (fun () ->
      shard.s_failures <- shard.s_failures + 1;
      match shard.s_breaker with
      | Probing ->
        (* the probe itself failed: back to fully open *)
        shard.s_breaker <- Open (Unix.gettimeofday ())
      | Closed when shard.s_failures >= t.cfg.breaker_trips ->
        Metrics.incr t.metrics "shard_breaker_trips";
        Log.warn (fun k ->
            k "shard %d breaker tripped after %d consecutive failures"
              shard.s_idx shard.s_failures);
        shard.s_breaker <- Open (Unix.gettimeofday ())
      | Closed | Open _ -> ());
  refresh_shard_gauges t shard

let record_primary_success t shard =
  Mutex.protect shard.s_mu (fun () ->
      (match shard.s_breaker with
      | Open _ | Probing ->
        Metrics.incr t.metrics "shard_breaker_closes";
        Log.info (fun k -> k "shard %d breaker closed" shard.s_idx)
      | Closed -> ());
      shard.s_breaker <- Closed;
      shard.s_failures <- 0);
  refresh_shard_gauges t shard

(* A breaker probe is a fresh PING on a fresh connection — pooled
   streams of a sick shard are not to be trusted. The probe carries its
   own (short) connect/read deadline, [probe_timeout], independent of
   the general RPC budget: a half-open probe against a stalled node
   must answer "still sick" in bounded time, not hang for the full
   [rpc_seconds]. The outcome is typed so a timeout is distinguishable
   from a refused/unreachable node in metrics. *)
let probe t shard =
  Metrics.incr t.metrics "shard_probes";
  let node, _ = active_node shard in
  let timed_out () =
    Metrics.incr t.metrics "shard_probe_timeouts";
    `Timeout
  in
  match
    Client.connect ~connect_timeout:t.cfg.probe_timeout
      ~timeout:t.cfg.probe_timeout ~host:node.ep.ep_host
      ~port:node.ep.ep_port ()
  with
  | exception Client.Timed_out _ -> timed_out ()
  | exception _ -> `Down
  | c ->
    let outcome =
      match Client.ping c with
      | Protocol.Resp_ok _ -> `Ok
      | Protocol.Resp_err _ -> `Down
      | exception Client.Timed_out _ -> timed_out ()
      | exception _ -> `Down
    in
    discard c;
    outcome

(* ------------------------------------------------------------------ *)
(* Exchanges                                                          *)
(* ------------------------------------------------------------------ *)

let role_name = function `Primary -> "primary" | `Replica -> "replica"

(* Install the layout on [shard]'s [role] node over connection [c]
   (once per layout key), and diff the returned representative tuples
   against the locally computed ones: a shard serving different bytes
   must fail typed here, before it can contribute to a package. *)
let ensure_assigned t shard ~role ~(layout : layout) c =
  let installed =
    Mutex.protect shard.s_mu (fun () ->
        match role with
        | `Primary -> shard.s_primary_layout
        | `Replica -> shard.s_replica_layout)
  in
  if installed <> Some layout.l_key then begin
    Metrics.incr t.metrics "shard_assigns";
    let body = Protocol.render_assign layout.l_groups.(shard.s_idx) in
    match Client.roundtrip c (Protocol.Assign body) with
    | Protocol.Resp_ok reps ->
      if String.trim reps <> String.trim layout.l_reps_csv.(shard.s_idx) then
        failwith
          (Printf.sprintf
             "shard %d %s: partition divergence (representative tuples \
              differ)"
             shard.s_idx (role_name role));
      Mutex.protect shard.s_mu (fun () ->
          match role with
          | `Primary -> shard.s_primary_layout <- Some layout.l_key
          | `Replica -> shard.s_replica_layout <- Some layout.l_key)
    | Protocol.Resp_err (code, msg) ->
      failwith
        (Printf.sprintf "shard %d %s: assign refused (%s): %s" shard.s_idx
           (role_name role) (Protocol.code_name code) msg)
  end

(* One request/response through the pool, assignment included. Any
   error reply is a node failure: the shard verbs only refuse a
   request for node-local reasons (divergence, missing assignment),
   which the failover path may cure on the sibling. *)
let node_exchange t shard node ~role ~layout ~timeout req =
  let c = borrow ~connect_timeout:t.cfg.connect_timeout node in
  match
    Client.set_timeout c (Some timeout);
    ensure_assigned t shard ~role ~layout c;
    Client.roundtrip c req
  with
  | Protocol.Resp_ok body ->
    give_back node c;
    body
  | Protocol.Resp_err (code, msg) ->
    give_back node c;
    failwith
      (Printf.sprintf "shard %d %s: %s: %s" shard.s_idx (role_name role)
         (Protocol.code_name code) msg)
  | exception e ->
    discard c;
    raise e

(* Consume a one-shot shard=K fault before touching the wire: crash
   fails the exchange outright, stall delays it (letting hedges and
   timeouts fire deterministically), drop severs the pooled
   connections so the exchange reconnects. *)
let apply_shard_fault t shard =
  match Pkg.Faults.take_shard_fault shard.s_idx with
  | None -> ()
  | Some Pkg.Faults.Shard_crash ->
    Metrics.incr t.metrics "shard_injected";
    failwith (Printf.sprintf "injected crash for shard %d" shard.s_idx)
  | Some (Pkg.Faults.Shard_stall ms) ->
    Metrics.incr t.metrics "shard_injected";
    Thread.delay (float_of_int ms /. 1000.)
  | Some Pkg.Faults.Shard_drop ->
    Metrics.incr t.metrics "shard_injected";
    sever shard.s_primary

(* Primary exchange behind the breaker, with capped-backoff retries.
   Timeouts are never retried (the latency contract already spent);
   the breaker denies outright when open, sending the caller straight
   to the replica. *)
let call_primary t shard ~layout ~timeout req =
  (match breaker_gate t shard with
  | `Allow -> ()
  | `Deny -> failwith (Printf.sprintf "shard %d breaker open" shard.s_idx)
  | `Probe -> (
    match probe t shard with
    | `Ok -> record_primary_success t shard
    | (`Timeout | `Down) as bad ->
      record_primary_failure t shard;
      failwith
        (Printf.sprintf "shard %d probe %s" shard.s_idx
           (match bad with `Timeout -> "timed out" | `Down -> "failed"))));
  let node, role = active_node shard in
  let rec go attempt =
    match
      apply_shard_fault t shard;
      node_exchange t shard node ~role ~layout ~timeout req
    with
    | body ->
      record_primary_success t shard;
      body
    | exception (Client.Timed_out _ as e) ->
      record_primary_failure t shard;
      raise e
    | exception e ->
      record_primary_failure t shard;
      let open_now =
        Mutex.protect shard.s_mu (fun () -> shard.s_breaker <> Closed)
      in
      if attempt >= t.cfg.retries || open_now then raise e
      else begin
        Metrics.incr t.metrics "shard_retries";
        Thread.delay (Float.min 0.2 (0.025 *. (2. ** float_of_int attempt)));
        go (attempt + 1)
      end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* WAL shipping and promotion                                         *)
(* ------------------------------------------------------------------ *)

(* Ship everything past [s_shipped] — up to the acknowledged prefix —
   from the primary's on-disk log to the replica, advancing the ack
   cursor except for the newest [repl_lag] records (the injected
   lost-ack window). Reading the file directly is the point: promotion
   must work when the primary is dead. Caller holds [s_mu]. *)
let ship_locked t shard =
  match (shard.s_spec.wal, shard.s_replica, shard.s_cursor) with
  | Some path, Some replica, Some cursor -> (
    match Store.Ship.pending cursor with
    | exception Sys_error _ -> ()
    | [] -> ()
    | records ->
      (* Never ship past [s_acked_seq]. A record beyond it is durable at
         the primary but its ack never came back here — the classic
         torn write at the instant a primary stalls: the coordinator
         timed it out and (after promoting) re-applies it at the new
         primary, so shipping it as well would apply it twice. Held
         records are either acked next cycle (the RPC was merely slow)
         or fenced for good once a promotion moves the epoch past
         them. *)
      let records =
        List.filter
          (fun (r : Store.Wal.record) ->
            r.Store.Wal.seq <= shard.s_acked_seq)
          records
      in
      let tail = Store.Ship.last_seq path in
      let hold = Pkg.Faults.repl_lag () in
      List.iter
        (fun (r : Store.Wal.record) ->
          if r.Store.Wal.seq > shard.s_shipped then begin
            let c = borrow ~connect_timeout:t.cfg.connect_timeout replica in
            let resp =
              match
                Client.set_timeout c (Some t.cfg.rpc_seconds);
                (* forward the record's own epoch stamp: the replica's
                   log then carries the provenance a restart recovers
                   its fence from *)
                match r.Store.Wal.op with
                | Store.Wal.Append rows ->
                  Client.append ~epoch:r.Store.Wal.epoch c
                    ~csv:(Relalg.Csv.to_string rows)
                | Store.Wal.Delete ids ->
                  Client.delete ~epoch:r.Store.Wal.epoch c ids
              with
              | resp ->
                give_back replica c;
                resp
              | exception e ->
                discard c;
                raise e
            in
            match resp with
            | Protocol.Resp_ok _ ->
              shard.s_shipped <- r.Store.Wal.seq;
              Metrics.incr t.metrics "shard_shipped";
              (* shipping invalidates the replica's installed layout:
                 its table fingerprint moved *)
              shard.s_replica_layout <- None
            | Protocol.Resp_err (_, msg) ->
              failwith (Printf.sprintf "ship refused: %s" msg)
          end;
          if r.Store.Wal.seq <= tail - hold then
            Store.Ship.advance cursor r.Store.Wal.seq)
        records)
  | _ -> ()

(* Read-path promotion: catch the replica up from the (possibly dead)
   primary's log. Best-effort — an unreachable log or replica leaves
   the lag standing, and the caller marks the served groups stale. *)
let promote t shard =
  Mutex.protect shard.s_mu (fun () ->
      try ship_locked t shard with _ -> ());
  refresh_shard_gauges t shard

(* Grant (or renew) a write lease at [epoch] to [node]. *)
(* Lease grants ride their own dedicated connection, never the pool,
   and a grant that is not acknowledged within the RPC deadline is
   closed {e abortively} ({!Client.abort} — SO_LINGER 0). A LEASE
   written to a SIGSTOPped primary sits unread in its kernel receive
   buffer until the process resumes, and Linux delivers already-queued
   bytes {e before} reporting a reset — so the abort alone cannot
   guarantee the zombie never reads the grant. The safety argument is
   temporal instead: this RPC waits at least 90% of the lease (the
   holder's self-demotion horizon) before abandoning a grant, and any
   grant is sent no earlier than the last {e acknowledged} one. An
   abandoned grant therefore cannot be consumed until after the
   holder's previous lease has lapsed — and a server whose lease
   expired refuses same-epoch grants (see [Server.handle_lease]), so
   the stale grant confers nothing. Acknowledged grants are covered by
   [Membership.note_grant] + the quarantine wait in [fence_promote]. *)
let lease_rpc_seconds t =
  Float.max t.cfg.rpc_seconds
    (0.9 *. (float_of_int (Membership.lease_ms t.membership) /. 1000.))

let lease_node t node ~epoch =
  match
    Client.connect ~connect_timeout:t.cfg.connect_timeout
      ~timeout:(lease_rpc_seconds t) ~host:node.ep.ep_host
      ~port:node.ep.ep_port ()
  with
  | exception e -> Error (Printexc.to_string e)
  | c -> (
    match Client.lease c ~epoch ~ttl_ms:(Membership.lease_ms t.membership) with
    | Protocol.Resp_ok _ ->
      Client.close c;
      Ok ()
    | Protocol.Resp_err (code, msg) ->
      Client.close c;
      Error (Printf.sprintf "%s: %s" (Protocol.code_name code) msg)
    | exception e ->
      Client.abort c;
      Error (Printexc.to_string e))

(* The fencing handshake — the write path's failover. Ordering is the
   whole point:

   1. catch-up ship while the fence is still down: records the old
      primary acked {e before} losing its lease are legitimate and must
      reach the replica, or an acked write is lost. If catch-up fails
      the promotion aborts — correctness over availability.
   2. wait out the deposed primary's lease ([quarantine_remaining]): it
      self-demotes at 90% of its ttl, the coordinator waits the full
      ttl since its last successful grant, so by the time the new epoch
      exists the zombie is already read-only.
   3. durably bump the epoch ({!Membership.bump} persists before
      revealing) and raise the ship fence: anything still dribbling out
      of the old log below the new epoch is a zombie write, dropped.
   4. install the replica: grant it the new epoch's lease, then flip
      [s_active] so reads and writes follow it.

   Step 2 also waits out any lease renewal still {e in flight} at the
   shard ([s_fencing] stops new ones first): a grant buffered at a
   stalled primary would otherwise be consumed whenever it resumes —
   minting a fresh lease for a node the fleet has moved past. The
   renewal either completes before the epoch bumps (its note_grant
   extends the quarantine, covering it) or its read timeout aborts the
   connection with an RST, which the stalled peer's kernel processes
   immediately, destroying the un-consumed grant.

   A crash between 3 and 4 is safe — the epoch is spent, the replica is
   simply leased by the restarted coordinator at a yet-higher epoch. *)
let fence_promote t shard =
  match shard.s_replica with
  | None -> Error "no replica to promote"
  | Some replica ->
    if Mutex.protect shard.s_mu (fun () -> shard.s_active = `Replica) then
      Ok () (* already promoted by a concurrent write *)
    else begin
      Mutex.protect shard.s_mu (fun () -> shard.s_fencing <- true);
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect shard.s_mu (fun () -> shard.s_fencing <- false))
      @@ fun () ->
      match Mutex.protect shard.s_mu (fun () -> ship_locked t shard) with
      | exception e ->
        Error
          (Printf.sprintf "promotion aborted: catch-up ship failed: %s"
             (Printexc.to_string e))
      | () -> (
        (* wait out the in-flight renewal, if any: bounded by its own
           connect + read deadlines, after which it has self-aborted *)
        let inflight_deadline =
          Unix.gettimeofday () +. t.cfg.connect_timeout +. lease_rpc_seconds t
          +. 1.
        in
        while
          Mutex.protect shard.s_mu (fun () -> shard.s_lease_inflight)
          && Unix.gettimeofday () < inflight_deadline
        do
          Thread.delay 0.01
        done;
        let wait = Membership.quarantine_remaining t.membership shard.s_idx in
        if wait > 0. then Thread.delay wait;
        let epoch = Membership.bump t.membership shard.s_idx in
        Metrics.incr t.metrics "epoch_bumps";
        Option.iter
          (fun c -> Mutex.protect shard.s_mu (fun () ->
               Store.Ship.set_fence c epoch))
          shard.s_cursor;
        match lease_node t replica ~epoch with
        | Error msg ->
          Error (Printf.sprintf "replica refused lease at epoch %d: %s" epoch msg)
        | Ok () ->
          Membership.note_grant t.membership shard.s_idx;
          Mutex.protect shard.s_mu (fun () ->
              shard.s_active <- `Replica;
              (* the breaker guarded the deposed node; the new active
                 starts with a clean slate *)
              shard.s_breaker <- Closed;
              shard.s_failures <- 0);
          Metrics.incr t.metrics "shard_promotions";
          Log.info (fun k ->
              k "shard %d: replica promoted at epoch %d" shard.s_idx epoch);
          refresh_shard_gauges t shard;
          Ok ())
    end

(* Renew the active node's lease over the shipping thread's cadence;
   only replica-bearing shards live under the lease regime (standalone
   servers keep the always-writable contract). Failures are left to the
   write path: fencing out a primary is a write-availability decision,
   not a background one. *)
let renew_leases t =
  Array.iter
    (fun shard ->
      (* the in-flight flag is taken atomically with the fencing check,
         so once a promotion has raised [s_fencing] no new grant can
         slip out toward a node it is about to fence *)
      let proceed =
        Mutex.protect shard.s_mu (fun () ->
            if shard.s_replica = None || shard.s_fencing then false
            else begin
              shard.s_lease_inflight <- true;
              true
            end)
      in
      if proceed then begin
        let node, _ = active_node shard in
        let epoch = Membership.epoch t.membership shard.s_idx in
        let r = lease_node t node ~epoch in
        Mutex.protect shard.s_mu (fun () -> shard.s_lease_inflight <- false);
        match r with
        | Ok () ->
          Membership.note_grant t.membership shard.s_idx;
          Metrics.incr t.metrics "lease_renewals"
        | Error msg ->
          Metrics.incr t.metrics "lease_renew_failures";
          Log.debug (fun k ->
              k "shard %d: lease renewal failed: %s" shard.s_idx msg)
      end)
    t.shards

let ship_loop t =
  let renew_every =
    Float.max t.cfg.ship_every (Membership.lease_seconds t.membership /. 3.)
  in
  let last_renew = ref 0. in
  let rec loop () =
    if t.stopped then ()
    else begin
      Thread.delay t.cfg.ship_every;
      Array.iter
        (fun shard ->
          if shard.s_replica <> None then begin
            Mutex.protect shard.s_mu (fun () ->
                try ship_locked t shard with _ -> ());
            refresh_shard_gauges t shard
          end)
        t.shards;
      let now = Unix.gettimeofday () in
      if now -. !last_renew >= renew_every then begin
        last_renew := now;
        renew_leases t
      end;
      loop ()
    end
  in
  loop ()

let call_replica t shard ~layout ~timeout req =
  match shard.s_replica with
  | None -> failwith (Printf.sprintf "shard %d has no replica" shard.s_idx)
  | Some replica ->
    node_exchange t shard replica ~role:`Replica ~layout ~timeout req

(* Scatter-phase exchange (ASSIGN/SKETCH): primary with retries, then
   promote-and-failover. Returns the reply body and whether a lagging
   replica served it. *)
let shard_exchange t ~layout ~timeout shard req =
  match call_primary t shard ~layout ~timeout req with
  | body -> (body, false)
  | exception e when not (has_standby shard) ->
    (* no fallback: either no replica, or the replica already IS the
       active node — the deposed primary is never consulted again *)
    raise (Shard_down (shard.s_idx, Printexc.to_string e))
  | exception _ -> (
    Metrics.incr t.metrics "shard_failovers";
    let t0 = Unix.gettimeofday () in
    promote t shard;
    match call_replica t shard ~layout ~timeout req with
    | body ->
      Metrics.observe t.metrics "failover" (Unix.gettimeofday () -. t0);
      (body, replica_lag shard > 0)
    | exception e -> raise (Shard_down (shard.s_idx, Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Hedged refine dispatch                                             *)
(* ------------------------------------------------------------------ *)

(* REFINE races the primary against a hedge fired after [hedge_ms]; a
   primary that fails fast converts the hedge into an immediate
   failover (with promotion). First answer wins; the loser is
   abandoned and its connection dies with it. Cold shard solves make
   either answer byte-identical when the replica is caught up. *)
let hedged_refine t ~layout ~timeout shard req =
  if (not (has_standby shard)) || t.cfg.hedge_ms <= 0 then
    shard_exchange t ~layout ~timeout shard req
  else begin
    let mu = Mutex.create () in
    let cond = Condition.create () in
    let winner = ref None in
    let failures = ref [] in
    let launched = ref 1 in
    let timer_done = ref false in
    let hedged = ref false in
    let spawn_replica ~promote:do_promote =
      ignore
        (Thread.create
           (fun () ->
             let t0 = Unix.gettimeofday () in
             if do_promote then begin
               Metrics.incr t.metrics "shard_failovers";
               promote t shard
             end;
             let r =
               try Ok (call_replica t shard ~layout ~timeout req)
               with e -> Error e
             in
             Mutex.protect mu (fun () ->
                 (match r with
                 | Ok body ->
                   if !winner = None then begin
                     if do_promote then
                       Metrics.observe t.metrics "failover"
                         (Unix.gettimeofday () -. t0);
                     winner := Some (`Replica, body)
                   end
                 | Error e -> failures := e :: !failures);
                 Condition.broadcast cond))
           ())
    in
    ignore
      (Thread.create
         (fun () ->
           let r =
             try Ok (call_primary t shard ~layout ~timeout req)
             with e -> Error e
           in
           Mutex.protect mu (fun () ->
               (match r with
               | Ok body -> if !winner = None then winner := Some (`Primary, body)
               | Error e ->
                 failures := e :: !failures;
                 (* primary lost with nothing else in flight: the
                    hedge becomes an immediate failover *)
                 if !winner = None && !launched = 1 then begin
                   launched := 2;
                   spawn_replica ~promote:true
                 end);
               Condition.broadcast cond))
         ());
    ignore
      (Thread.create
         (fun () ->
           Thread.delay (float_of_int t.cfg.hedge_ms /. 1000.);
           Mutex.protect mu (fun () ->
               timer_done := true;
               if !winner = None && !failures = [] && !launched = 1 then begin
                 launched := 2;
                 hedged := true;
                 Metrics.incr t.metrics "shard_hedges";
                 spawn_replica ~promote:false
               end;
               Condition.broadcast cond))
         ());
    let outcome =
      Mutex.protect mu (fun () ->
          let finished () =
            !winner <> None
            || (!timer_done && List.length !failures >= !launched)
          in
          while not (finished ()) do
            Condition.wait cond mu
          done;
          match !winner with
          | Some (who, body) ->
            if who = `Replica && !hedged then
              Metrics.incr t.metrics "shard_hedge_wins";
            Ok (who, body)
          | None ->
            Error (match !failures with e :: _ -> e | [] -> assert false))
    in
    match outcome with
    | Ok (`Primary, body) -> (body, false)
    | Ok (`Replica, body) -> (body, replica_lag shard > 0)
    | Error e -> raise (Shard_down (shard.s_idx, Printexc.to_string e))
  end

(* ------------------------------------------------------------------ *)
(* Planning and layout                                                *)
(* ------------------------------------------------------------------ *)

let status_line (r : Pkg.Eval.report) =
  Format.asprintf "%a%s" Pkg.Eval.pp_status r.status
    (match r.objective with
    | Some o -> Format.asprintf ", obj=%g" o
    | None -> "")

let plan t rel qfp query =
  match Cache.find_opt t.plan_cache qfp with
  | Some p ->
    Metrics.incr t.metrics "plan_hits";
    Ok p
  | None -> (
    Metrics.incr t.metrics "plan_misses";
    let parsed =
      try Paql.Parser.parse query with
      | Paql.Lexer.Lex_error (msg, pos) ->
        Error (Printf.sprintf "lex error at offset %d: %s" pos msg)
      | Paql.Parser.Parse_error (msg, pos) ->
        Error (Printf.sprintf "parse error at offset %d: %s" pos msg)
    in
    match parsed with
    | Error msg -> Error (Protocol.Resp_err (Protocol.Parse_error, msg))
    | Ok ast -> (
      let schema = Relalg.Relation.schema rel in
      match Paql.Analyze.check schema ast with
      | Error errs ->
        Error
          (Protocol.Resp_err (Protocol.Analysis_error, String.concat "\n" errs))
      | Ok () -> (
        match Paql.Translate.compile_exn schema ast with
        | exception Failure msg ->
          Error (Protocol.Resp_err (Protocol.Analysis_error, msg))
        | spec ->
          if Paql.Translate.is_stochastic spec then
            (* Scatter/gather distributes deterministic sketch/refine
               work; SummarySearch's scenario matrices and validation
               rounds are not shard-decomposable (yet). A typed
               rejection beats a wrong or hanging scatter. *)
            Error
              (Protocol.Resp_err
                 ( Protocol.Rejected,
                   "stochastic queries (WITH PROBABILITY / EXPECTED) are not \
                    supported by the shard coordinator; use pkgq_server or \
                    paql --method stochastic" ))
          else begin
            Cache.add t.plan_cache qfp (ast, spec);
            Ok (ast, spec)
          end)))

(* The partitioning derivation mirrors the server's [partition_for]
   bit for bit (attrs, tau default, Theorem-3 radius from epsilon and
   the objective sense): every shard re-derives the identical
   partition from its own copy of the same config and data, which is
   what the ASSIGN divergence check enforces. *)
let layout_for t rel fp spec =
  let attrs = t.cfg.attrs in
  let progressive = t.cfg.method_ = `Progressive in
  let tau =
    match t.cfg.tau with
    | Some tau -> tau
    | None ->
      if progressive then Pkg.Hierarchy.default_leaf_tau rel
      else max 1 (Relalg.Relation.cardinality rel / 10)
  in
  let radius =
    match t.cfg.epsilon with
    | None -> Pkg.Partition.No_radius
    | Some epsilon ->
      let maximize =
        match Paql.Translate.objective_sense spec with
        | Lp.Problem.Maximize -> true
        | Lp.Problem.Minimize -> false
      in
      Pkg.Partition.Theorem { epsilon; maximize }
  in
  let key =
    Printf.sprintf "%s|%s|%d|%s@%s"
      (if progressive then "prog" else "flat")
      (String.concat "," attrs) tau
      (Store.Catalog.radius_string radius)
      fp
  in
  Mutex.protect t.state_mu (fun () ->
      match Hashtbl.find_opt t.layouts key with
      | Some l -> l
      | None ->
        (* the shards derive the identical partitioning from their own
           config ([--method progressive] must match), so the leaf of
           the hierarchy — not some coordinator-private grouping — is
           what gets dealt out *)
        let hier =
          if progressive then
            Some
              (Metrics.time t.metrics "partition" (fun () ->
                   Pkg.Hierarchy.build ~radius ?leaf_tau:t.cfg.tau ~attrs rel))
          else None
        in
        let part =
          match hier with
          | Some h -> Pkg.Hierarchy.leaf h
          | None ->
            Metrics.time t.metrics "partition" (fun () ->
                Pkg.Partition.create ~radius ~tau ~attrs rel)
        in
        let m = Pkg.Partition.num_groups part in
        let nshards = Array.length t.shards in
        let owner = Array.init m (fun gid -> gid mod nshards) in
        let groups = Array.make nshards [] in
        for gid = m - 1 downto 0 do
          groups.(owner.(gid)) <-
            (gid, part.Pkg.Partition.groups.(gid).Pkg.Partition.members)
            :: groups.(owner.(gid))
        done;
        let schema = Relalg.Relation.schema rel in
        let reps_csv =
          Array.map
            (fun gs ->
              String.trim
                (Relalg.Csv.to_string
                   (Relalg.Relation.of_rows schema
                      (List.map
                         (fun (_, members) ->
                           Pkg.Partition.rep_row rel members)
                         gs))))
            groups
        in
        let l =
          { l_key = key; l_part = part; l_hier = hier; l_owner = owner;
            l_groups = groups; l_reps_csv = reps_csv }
        in
        Hashtbl.replace t.layouts key l;
        l)

(* ------------------------------------------------------------------ *)
(* The mirrored refine loop                                           *)
(* ------------------------------------------------------------------ *)

(* Coordinator-side copy of [Refine]'s partial-package state: groups
   still carry [rep_counts] representatives or are fixed to original
   tuples. The aggregation below reproduces [Refine.group_contribution]
   / [offsets_excluding] exactly — same iteration order, same float
   summation — so the offsets a shard receives are bit-identical to
   the ones a single node would compute. *)
type rstate = {
  r_ctx : Pkg.Sketch.ctx;
  r_rep_counts : float array;
  r_refined : (int * int) list option array;
}

let group_contribution st j ci =
  match st.r_refined.(j) with
  | Some entries ->
    let f = st.r_ctx.Pkg.Sketch.coeff_rel.(ci) in
    List.fold_left
      (fun acc (row, cnt) -> acc +. (float_of_int cnt *. f row))
      0. entries
  | None ->
    if st.r_rep_counts.(j) = 0. then 0.
    else st.r_rep_counts.(j) *. st.r_ctx.Pkg.Sketch.coeff_reps.(ci) j

let offsets_excluding st j =
  let m = Pkg.Partition.num_groups st.r_ctx.Pkg.Sketch.part in
  let n = Array.length st.r_ctx.Pkg.Sketch.coeff_rel in
  Array.init n (fun ci ->
      let acc = ref 0. in
      for i = 0 to m - 1 do
        if i <> j then acc := !acc +. group_contribution st i ci
      done;
      !acc)

exception Mirror_deadline
exception Mirror_budget
exception Mirror_solver of Pkg.Eval.failure
exception Omit of int * string

(* One refine RPC for group [j]: [Refine.refine_query] with the solve
   on the owning shard. The deadline check, entry decoding and failure
   taxonomy match the local path; unreachability raises [Omit] so the
   driver can restart without the group. *)
let rpc_refine t ~layout ~deadline ~stale query st counters j =
  if Unix.gettimeofday () > deadline then raise Mirror_deadline;
  let offsets = offsets_excluding st j in
  let remaining = deadline -. Unix.gettimeofday () in
  let budget_ms = max 1 (int_of_float (remaining *. 1000.)) in
  let body = Protocol.render_refine ~gid:j ~budget_ms ~offsets ~query in
  let shard = t.shards.(layout.l_owner.(j)) in
  let timeout = Float.max 0.05 remaining in
  match hedged_refine t ~layout ~timeout shard (Protocol.Refine body) with
  | exception Shard_down (k, msg) ->
    raise
      (Omit
         ( j,
           Printf.sprintf "group %d: shard %d and replica unreachable (%s)" j
             k msg ))
  | reply, was_stale -> (
    if was_stale && not (List.mem j !stale) then stale := j :: !stale;
    counters.Pkg.Eval.ilp_calls <- counters.Pkg.Eval.ilp_calls + 1;
    match Protocol.parse_refine_result reply with
    | Protocol.Refine_feasible entries -> `Feasible entries
    | Protocol.Refine_infeasible -> `Infeasible
    | Protocol.Refine_failed msg ->
      `Failed
        (Pkg.Eval.failure ~stage:Pkg.Eval.Refine ~group:j
           (Pkg.Eval.Solver_error msg)))

(* [Refine.refine_level] verbatim, with the ILP replaced by the RPC:
   same speculative refine/undo, same greedy reprioritization of
   failed groups, same root-level retry semantics and backtrack
   budget — the healthy distributed search visits the same groups in
   the same order as a single node. *)
let rec mirror_level t ~layout ~deadline ~stale ~budget ~at_root query st
    counters todo =
  match todo with
  | [] -> Ok ()
  | _ ->
    let failed = ref [] in
    let queue = ref todo in
    let result = ref None in
    while !result = None && !queue <> [] do
      let j, rest =
        match !queue with j :: rest -> (j, rest) | [] -> assert false
      in
      queue := rest;
      match rpc_refine t ~layout ~deadline ~stale query st counters j with
      | `Failed f -> raise (Mirror_solver f)
      | `Infeasible ->
        counters.Pkg.Eval.backtracks <- counters.Pkg.Eval.backtracks + 1;
        if counters.Pkg.Eval.backtracks > budget then raise Mirror_budget;
        failed := j :: !failed;
        if not at_root then result := Some (Error !failed)
      | `Feasible entries -> (
        let saved_rep = st.r_rep_counts.(j) in
        st.r_refined.(j) <- Some entries;
        st.r_rep_counts.(j) <- 0.;
        let child_todo = List.filter (fun g -> g <> j) todo in
        match
          mirror_level t ~layout ~deadline ~stale ~budget ~at_root:false query
            st counters child_todo
        with
        | Ok () -> result := Some (Ok ())
        | Error f ->
          st.r_refined.(j) <- None;
          st.r_rep_counts.(j) <- saved_rep;
          failed := f @ !failed;
          let prioritized, others =
            List.partition (fun g -> List.mem g f) !queue
          in
          queue := prioritized @ others)
    done;
    (match !result with Some r -> r | None -> Error !failed)

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let response_of_report (r : Pkg.Eval.report) =
  match r.status with
  | Pkg.Eval.Infeasible ->
    Protocol.Resp_err (Protocol.Infeasible, status_line r)
  | Pkg.Eval.Degraded _ ->
    Protocol.Resp_err (Protocol.Degraded, status_line r)
  | Pkg.Eval.Failed f ->
    let code =
      match f.Pkg.Eval.kind with
      | Pkg.Eval.Deadline_exceeded -> Protocol.Deadline
      | Pkg.Eval.Rejected _ -> Protocol.Rejected
      | Pkg.Eval.Fenced _ -> Protocol.Fenced
      | _ -> Protocol.Failed
    in
    Protocol.Resp_err (code, Format.asprintf "%a" Pkg.Eval.pp_failure f)
  | Pkg.Eval.Optimal | Pkg.Eval.Feasible _ -> (
    match r.package with
    | None -> Protocol.Resp_err (Protocol.Failed, "no package produced")
    | Some p ->
      let csv = Relalg.Csv.to_string (Pkg.Package.materialize p) in
      Protocol.Resp_ok
        (Protocol.render_result ~status_line:(status_line r) ~wall:r.wall_time
           ~csv))

let eval_query t ~deadline query =
  let rel, fp = Mutex.protect t.state_mu (fun () -> (t.rel, t.fp)) in
  let qfp = Paql.Fingerprint.of_query query in
  match plan t rel qfp query with
  | Error resp -> resp
  | Ok (_ast, spec) ->
    let layout = layout_for t rel fp spec in
    let part = layout.l_part in
    let m = Pkg.Partition.num_groups part in
    let start = Unix.gettimeofday () in
    let counters = Pkg.Eval.fresh_counters () in
    let stale = ref [] in
    let omitted = ref [] in
    let details = ref [] in
    let finish status package objective =
      Pkg.Eval.report ~status ~package ~objective
        ~wall_time:(Unix.gettimeofday () -. start)
        ~counters
    in
    (* degradation dominates a nominal status, failure dominates both *)
    let degrade status =
      if !stale = [] && !omitted = [] then status
      else
        Pkg.Eval.Degraded
          {
            Pkg.Eval.stale_groups = List.sort_uniq compare !stale;
            omitted_groups = List.sort_uniq compare !omitted;
            detail = String.concat "; " (List.rev !details);
          }
    in
    let scatter_timeout () =
      Float.max 0.05
        (Float.min t.cfg.rpc_seconds (deadline -. Unix.gettimeofday ()))
    in
    (* SKETCH scatter: per-group candidate counts from every owning
       shard, in parallel. An unreachable shard (and replica) zeroes
       its groups' caps: they are omitted from the package rather than
       sinking the query. *)
    let caps = Array.make m 0. in
    let active =
      Array.to_list t.shards
      |> List.filter (fun s -> layout.l_groups.(s.s_idx) <> [])
    in
    let sketch_one shard =
      match
        shard_exchange t ~layout ~timeout:(scatter_timeout ()) shard
          (Protocol.Sketch query)
      with
      | body, was_stale ->
        let counts = Protocol.parse_counts body in
        Mutex.protect t.state_mu (fun () ->
            List.iter
              (fun (gid, n) ->
                caps.(gid) <-
                  (if n = 0 then 0.
                   else float_of_int n *. spec.Paql.Translate.max_count);
                if was_stale && not (List.mem gid !stale) then
                  stale := gid :: !stale)
              counts)
      | exception e ->
        let gids = List.map fst layout.l_groups.(shard.s_idx) in
        Mutex.protect t.state_mu (fun () ->
            omitted := gids @ !omitted;
            details :=
              Printf.sprintf "shard %d unreachable at sketch (%s)"
                shard.s_idx (Printexc.to_string e)
              :: !details)
    in
    let threads = List.map (fun s -> Thread.create sketch_one s) active in
    List.iter Thread.join threads;
    (* The light context: candidate arrays stay empty (refines run on
       the shards), but the caps, representative relation and
       row-coefficient accessors feed the local sketch ILP and the
       offset aggregation — identical inputs to a single node's. *)
    let coeff_of r =
      Array.of_list
        (List.map
           (fun (c : Paql.Translate.compiled_constraint) ->
             c.Paql.Translate.coeff_rows r)
           spec.Paql.Translate.constraints)
    in
    let ctx =
      {
        Pkg.Sketch.spec;
        rel;
        part;
        cand = Array.make m [||];
        caps;
        coeff_rel = coeff_of rel;
        coeff_reps = coeff_of part.Pkg.Partition.reps;
      }
    in
    let limits =
      {
        t.cfg.limits with
        Ilp.Branch_bound.max_seconds =
          Float.min t.cfg.limits.Ilp.Branch_bound.max_seconds
            (Float.max 0.01 (deadline -. Unix.gettimeofday ()));
      }
    in
    (* Progressive shading: aggregate the scatter-derived leaf caps up
       the hierarchy (a coarse group's cap is the sum of its leaf
       descendants', so shard omissions propagate), solve the coarse
       levels locally, and zero the caps of leaf groups outside the
       active cone. A coarse-level infeasibility or failure abandons
       the shading (flat behaviour); a shaded leaf sketch that comes
       back infeasible or failed is retried unshaded below — answers
       never get worse than flat scatter/gather. *)
    let m_leaf = m in
    let pristine_caps = Array.copy caps in
    let shaded = ref false in
    (match layout.l_hier with
    | Some hier when Pkg.Hierarchy.num_levels hier > 1 ->
      let nl = Pkg.Hierarchy.num_levels hier in
      let level_caps = Array.make nl [||] in
      level_caps.(nl - 1) <- Array.copy caps;
      for l = nl - 2 downto 0 do
        let kids = Pkg.Hierarchy.children hier l in
        level_caps.(l) <-
          Array.map
            (fun cs ->
              List.fold_left (fun a c -> a +. level_caps.(l + 1).(c)) 0. cs)
            kids
      done;
      let exception Unshaded in
      (try
         let allowed = ref None in
         for l = 0 to nl - 2 do
           let part_l = Pkg.Hierarchy.level hier l in
           let caps_l =
             match !allowed with
             | None -> level_caps.(l)
             | Some ok ->
               Array.mapi
                 (fun g c -> if List.mem g ok then c else 0.)
                 level_caps.(l)
           in
           let ctx_l =
             {
               Pkg.Sketch.spec;
               rel;
               part = part_l;
               cand = Array.make (Pkg.Partition.num_groups part_l) [||];
               caps = caps_l;
               coeff_rel = ctx.Pkg.Sketch.coeff_rel;
               coeff_reps = coeff_of part_l.Pkg.Partition.reps;
             }
           in
           match
             Pkg.Eval.observe_stage Pkg.Eval.Progressive (fun () ->
                 Pkg.Sketch.run ~limits ~deadline ~stage:Pkg.Eval.Progressive
                   ctx_l counters)
           with
           | Pkg.Sketch.Sketched cnts ->
             let active =
               List.filter
                 (fun g -> cnts.(g) > 0.5)
                 (List.init (Array.length cnts) Fun.id)
             in
             if active = [] then raise Unshaded;
             Metrics.set_gauge t.metrics
               (Printf.sprintf "progressive_level%d_active" l)
               (List.length active);
             let kids = Pkg.Hierarchy.children hier l in
             allowed := Some (List.concat_map (fun g -> kids.(g)) active)
           | Pkg.Sketch.Sketch_infeasible | Pkg.Sketch.Sketch_failed _ ->
             raise Unshaded
         done;
         match !allowed with
         | Some ok ->
           shaded := true;
           Metrics.incr t.metrics "progressive_descents";
           let keep = Array.make m_leaf false in
           List.iter (fun g -> keep.(g) <- true) ok;
           Array.iteri (fun g k -> if not k then caps.(g) <- 0.) keep
         | None -> ()
       with Unshaded -> Array.blit pristine_caps 0 caps 0 m_leaf)
    | _ -> ());
    let leaf_sketch () =
      Pkg.Eval.observe_stage Pkg.Eval.Sketch (fun () ->
          Pkg.Sketch.run ~limits ~deadline ctx counters)
    in
    let sketch_result =
      match leaf_sketch () with
      | (Pkg.Sketch.Sketch_infeasible | Pkg.Sketch.Sketch_failed _)
        when !shaded ->
        (* shading was too aggressive — widen to the full leaf *)
        Metrics.incr t.metrics "progressive_widened";
        Array.blit pristine_caps 0 caps 0 m_leaf;
        leaf_sketch ()
      | r -> r
    in
    let report =
      match sketch_result with
      | Pkg.Sketch.Sketch_failed f -> finish (Pkg.Eval.Failed f) None None
      | Pkg.Sketch.Sketch_infeasible ->
        (* no distributed hybrid-sketch fallback: with every group
           reachable this is a genuine [infeasible]; with omissions it
           degrades, because the missing caps may be what sank it *)
        (match degrade Pkg.Eval.Infeasible with
        | Pkg.Eval.Degraded d ->
          finish
            (Pkg.Eval.Degraded
               { d with Pkg.Eval.detail = d.Pkg.Eval.detail
                        ^ "; sketch infeasible over remaining groups" })
            None None
        | status -> finish status None None)
      | Pkg.Sketch.Sketched rep_counts0 -> (
        (* The refine driver restarts from the sketch solution when a
           group becomes unreachable mid-refine: the group is omitted
           (zero representatives, no entries) and the sequential search
           re-runs without it. Bounded by the group count. *)
        let rec drive () =
          let rep_counts = Array.copy rep_counts0 in
          List.iter (fun g -> rep_counts.(g) <- 0.) !omitted;
          stale := List.filter (fun g -> not (List.mem g !omitted)) !stale;
          let refined = Array.make m None in
          let st = { r_ctx = ctx; r_rep_counts = rep_counts;
                     r_refined = refined } in
          let budget = counters.Pkg.Eval.backtracks + 256 in
          let todo =
            List.filter
              (fun j -> refined.(j) = None && rep_counts.(j) > 0.)
              (List.init m Fun.id)
            |> List.sort (fun a b -> compare rep_counts.(b) rep_counts.(a))
          in
          match
            Pkg.Eval.observe_stage Pkg.Eval.Refine (fun () ->
                mirror_level t ~layout ~deadline ~stale ~budget ~at_root:true
                  query st counters todo)
          with
          | Ok () ->
            let entries =
              Array.to_list refined
              |> List.concat_map (function Some e -> e | None -> [])
            in
            let p = Pkg.Package.make rel entries in
            finish (degrade Pkg.Eval.Optimal) (Some p)
              (Some (Pkg.Package.objective spec p))
          | Error _ -> (
            match degrade Pkg.Eval.Infeasible with
            | Pkg.Eval.Degraded d ->
              finish
                (Pkg.Eval.Degraded
                   { d with Pkg.Eval.detail = d.Pkg.Eval.detail
                            ^ "; refine infeasible over remaining groups" })
                None None
            | status -> finish status None None)
          | exception Omit (j, msg) ->
            Metrics.incr t.metrics "shard_omitted_groups";
            Log.warn (fun k -> k "%s" msg);
            omitted := j :: !omitted;
            details := msg :: !details;
            drive ()
          | exception Mirror_deadline ->
            finish
              (Pkg.Eval.failed ~stage:Pkg.Eval.Refine
                 Pkg.Eval.Deadline_exceeded)
              None None
          | exception Mirror_budget -> finish (degrade Pkg.Eval.Infeasible) None None
          | exception Mirror_solver f -> finish (Pkg.Eval.Failed f) None None
        in
        try drive ()
        with e ->
          finish
            (Pkg.Eval.failed (Pkg.Eval.Solver_error (Printexc.to_string e)))
            None None)
    in
    response_of_report report

(* ------------------------------------------------------------------ *)
(* Writes                                                             *)
(* ------------------------------------------------------------------ *)

(* One write attempt against [shard]'s current active node, stamped
   with the shard's current epoch when it lives under the lease regime
   (a replica exists). A [`Fenced] outcome is the active node telling
   us it lost its lease (or the stamp went stale mid-flight) — the
   typed signal that a fencing promotion, not a retry, is the cure. *)
(* The write ack names the durable record ("...; seq N"); when the
   write landed on the node whose log we ship from, that seq extends
   the acknowledged prefix shipping is allowed to cover. *)
let acked_seq_of_body body =
  match String.rindex_opt body ' ' with
  | None -> None
  | Some i -> (
    let tag_start = String.length "; seq " in
    match
      int_of_string_opt (String.sub body (i + 1) (String.length body - i - 1))
    with
    | Some seq
      when i >= tag_start - 1
           && String.sub body (i - tag_start + 1) tag_start = "; seq " ->
      Some seq
    | _ -> None)

let write_shard_once t shard op =
  let node, side = active_node shard in
  let epoch =
    if shard.s_replica <> None then
      Some (Membership.epoch t.membership shard.s_idx)
    else None
  in
  match borrow ~connect_timeout:t.cfg.connect_timeout node with
  | exception e -> Error (`Conn, Printexc.to_string e)
  | c -> (
    match
      Client.set_timeout c (Some t.cfg.rpc_seconds);
      Client.roundtrip c
        (match op with
        | Store.Wal.Append rows ->
          Protocol.Append { csv = Relalg.Csv.to_string rows; epoch }
        | Store.Wal.Delete ids -> Protocol.Delete { ids; epoch })
    with
    | Protocol.Resp_ok body ->
      give_back node c;
      (if side = `Primary then
         match acked_seq_of_body body with
         | Some seq ->
           Mutex.protect shard.s_mu (fun () ->
               if seq > shard.s_acked_seq then shard.s_acked_seq <- seq)
         | None -> ());
      Ok ()
    | Protocol.Resp_err (Protocol.Fenced, msg) ->
      give_back node c;
      Metrics.incr t.metrics "fence_rejections";
      Error (`Fenced, msg)
    | Protocol.Resp_err (_, msg) ->
      give_back node c;
      Error (`Refused, msg)
    | exception e ->
      discard c;
      Error (`Conn, Printexc.to_string e))

(* A write goes to every shard's active node (its replica gets it via
   WAL shipping) and then applies locally with the exact recovery
   semantics, keeping the coordinator's partitioning authority aligned
   with the fleet. An unreachable or fenced active triggers the fencing
   handshake — epoch bump, quarantine, replica install — and one retry
   against the new primary; an aborted promotion (catch-up failed)
   fails the write instead of risking an acked-write loss. A
   mid-broadcast failure leaves the fleet divergent until the failed
   shard is restored — subsequent ASSIGNs report it typed, so a
   partial write can degrade queries but never corrupt them. *)
let broadcast_write t op ~render_ok =
  Mutex.protect t.state_mu (fun () ->
      let failed = ref [] in
      Array.iter
        (fun shard ->
          let fail fmt =
            Printf.ksprintf (fun m ->
                failed := Printf.sprintf "shard %d %s" shard.s_idx m :: !failed)
              fmt
          in
          match write_shard_once t shard op with
          | Ok () -> ()
          | Error (`Refused, msg) -> fail "refused: %s" msg
          | Error ((`Conn | `Fenced), why) when has_standby shard -> (
            match fence_promote t shard with
            | Error pmsg -> fail "%s; %s" why pmsg
            | Ok () -> (
              Metrics.incr t.metrics "write_failovers";
              match write_shard_once t shard op with
              | Ok () -> ()
              | Error (_, msg) -> fail "after promotion: %s" msg))
          | Error (`Fenced, msg) -> fail "fenced: %s" msg
          | Error (`Conn, msg) -> fail ": %s" msg)
        t.shards;
      match !failed with
      | _ :: _ ->
        Protocol.Resp_err
          ( Protocol.Internal,
            "write not applied fleet-wide: " ^ String.concat "; " !failed )
      | [] ->
        t.rel <- Store.Recovery.apply t.rel op;
        t.fp <- Store.Segment.fingerprint t.rel;
        Hashtbl.reset t.layouts;
        Array.iter
          (fun shard ->
            Mutex.protect shard.s_mu (fun () ->
                shard.s_primary_layout <- None;
                shard.s_replica_layout <- None))
          t.shards;
        (match op with
        | Store.Wal.Append _ -> Metrics.incr t.metrics "appends"
        | Store.Wal.Delete _ -> Metrics.incr t.metrics "deletes");
        Protocol.Resp_ok (render_ok ()))

let handle_append t csv =
  match Relalg.Csv.of_string csv with
  | exception Relalg.Csv.Error (line, msg) ->
    Protocol.Resp_err
      (Protocol.Data_error, Printf.sprintf "csv error at line %d: %s" line msg)
  | extra ->
    if
      not
        (Relalg.Schema.equal
           (Relalg.Relation.schema t.rel)
           (Relalg.Relation.schema extra))
    then Protocol.Resp_err (Protocol.Data_error, "append: schemas differ")
    else
      broadcast_write t (Store.Wal.Append extra) ~render_ok:(fun () ->
          Printf.sprintf "appended %d rows; table now %d rows, fingerprint %s"
            (Relalg.Relation.cardinality extra)
            (Relalg.Relation.cardinality t.rel)
            t.fp)

let handle_delete t ids =
  let n = Relalg.Relation.cardinality t.rel in
  match
    List.iter
      (fun id ->
        if id < 0 || id >= n then
          invalid_arg
            (Printf.sprintf "delete: row id %d out of range (%d rows)" id n))
      ids
  with
  | exception Invalid_argument msg ->
    Protocol.Resp_err (Protocol.Data_error, msg)
  | () ->
    broadcast_write t (Store.Wal.Delete ids) ~render_ok:(fun () ->
        Printf.sprintf "deleted %d rows; table now %d rows, fingerprint %s"
          (List.length ids)
          (Relalg.Relation.cardinality t.rel)
          t.fp)

(* ------------------------------------------------------------------ *)
(* Front end                                                          *)
(* ------------------------------------------------------------------ *)

let handle_query t query =
  Metrics.incr t.metrics "requests";
  let deadline = Unix.gettimeofday () +. t.cfg.request_seconds in
  let resp =
    Metrics.time t.metrics "total" (fun () ->
        try eval_query t ~deadline query
        with e -> Protocol.Resp_err (Protocol.Internal, Printexc.to_string e))
  in
  (match resp with
  | Protocol.Resp_ok _ -> Metrics.incr t.metrics "ok"
  | Protocol.Resp_err _ -> Metrics.incr t.metrics "failed");
  resp

let eval t query = handle_query t query

let handle_conn t fd =
  Metrics.incr t.metrics "connections";
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond r = Protocol.write_response oc r in
  let rec loop () =
    match Protocol.read_request ic with
    | None -> ()
    | Some Protocol.Quit -> (
      try respond (Protocol.Resp_ok "bye") with _ -> ())
    | Some Protocol.Ping ->
      respond (Protocol.Resp_ok "pong");
      loop ()
    | Some Protocol.Stats ->
      Array.iter (fun s -> refresh_shard_gauges t s) t.shards;
      respond (Protocol.Resp_ok (Metrics.render t.metrics));
      loop ()
    | Some Protocol.Fingerprint ->
      let fp, rows =
        Mutex.protect t.state_mu (fun () ->
            (t.fp, Relalg.Relation.cardinality t.rel))
      in
      respond (Protocol.Resp_ok (Printf.sprintf "%s %d" fp rows));
      loop ()
    | Some (Protocol.Append { csv; epoch = _ }) ->
      respond (handle_append t csv);
      loop ()
    | Some (Protocol.Delete { ids; epoch = _ }) ->
      respond (handle_delete t ids);
      loop ()
    | Some (Protocol.Query q) ->
      respond (handle_query t q);
      loop ()
    | Some (Protocol.Assign _ | Protocol.Sketch _ | Protocol.Refine _
           | Protocol.Lease _) ->
      (* the coordinator fronts a fleet; it is not itself a shard *)
      respond
        (Protocol.Resp_err
           (Protocol.Data_error, "shard verbs are not served here"));
      loop ()
  in
  try loop () with
  | End_of_file -> ()
  | Protocol.Protocol_error msg ->
    Metrics.incr t.metrics "net_errors";
    (try respond (Protocol.Resp_err (Protocol.Internal, msg)) with _ -> ())
  | Sys_error _ | Unix.Unix_error _ -> Metrics.incr t.metrics "net_errors"

let conn_main t id fd =
  Fun.protect
    ~finally:(fun () ->
      Mutex.protect t.conns_mu (fun () -> Hashtbl.remove t.conns id);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> handle_conn t fd)

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
      if not t.stopped then Log.err (fun k -> k "accept failed; stopping")
    | exception Unix.Unix_error _ when t.stopped -> ()
    | fd, _ ->
      if t.stopped then (try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        Mutex.protect t.conns_mu (fun () ->
            let id = t.next_conn in
            t.next_conn <- id + 1;
            Hashtbl.replace t.conns id fd;
            t.conn_threads <-
              Thread.create (fun () -> conn_main t id fd) ()
              :: t.conn_threads);
        loop ()
      end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let prewarm rel =
  let schema = Relalg.Relation.schema rel in
  List.iter
    (fun (a : Relalg.Schema.attr) ->
      match a.ty with
      | Relalg.Value.TInt | Relalg.Value.TFloat ->
        ignore (Relalg.Relation.column rel a.name)
      | Relalg.Value.TStr | Relalg.Value.TBool -> ())
    (Relalg.Schema.attrs schema)

let start cfg specs rel =
  if cfg.attrs = [] then
    failwith "coordinator: partitioning attributes are required (--attrs)";
  if specs = [] then failwith "coordinator: at least one shard is required";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let metrics = Metrics.create () in
  let shards =
    Array.of_list
      (List.mapi
         (fun i spec ->
           {
             s_idx = i;
             s_spec = spec;
             s_primary = node_of spec.primary;
             s_replica = Option.map node_of spec.replica;
             s_cursor = Option.map (fun p -> Store.Ship.make p) spec.wal;
             s_shipped = 0;
             (* everything already in the log predates this coordinator:
                treat it as acknowledged, or shipping could never start *)
             s_acked_seq =
               (match spec.wal with
               | Some p -> (try Store.Ship.last_seq p with _ -> 0)
               | None -> 0);
             s_active = `Primary;
             s_fencing = false;
             s_lease_inflight = false;
             s_breaker = Closed;
             s_failures = 0;
             s_primary_layout = None;
             s_replica_layout = None;
             s_mu = Mutex.create ();
           })
         specs)
  in
  prewarm rel;
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let bound_port =
    try
      Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
      Unix.bind listen_fd (Unix.ADDR_INET (resolve_host cfg.host, cfg.port));
      Unix.listen listen_fd 64;
      match Unix.getsockname listen_fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> cfg.port
    with e ->
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      raise e
  in
  let t =
    {
      cfg;
      metrics;
      membership =
        Membership.create ?dir:cfg.epoch_dir ?lease_ms:cfg.lease_ms
          ~shards:(List.length specs) ();
      shards;
      plan_cache = Cache.create ~capacity:64;
      rel;
      fp = Store.Segment.fingerprint rel;
      layouts = Hashtbl.create 4;
      state_mu = Mutex.create ();
      listen_fd;
      bound_port;
      accept_thread = None;
      ship_thread = None;
      conns = Hashtbl.create 16;
      conn_threads = [];
      next_conn = 0;
      conns_mu = Mutex.create ();
      stopped = false;
      finished = false;
      stop_mu = Mutex.create ();
      stop_cond = Condition.create ();
    }
  in
  Pkg.Eval.set_observer
    (Some
       (fun stage dt ->
         Metrics.observe metrics (Pkg.Eval.stage_name stage) dt));
  (* Replica-bearing shards enter the lease regime now: grant the
     primary its first lease at the current (possibly restart-recovered)
     epoch. Best-effort — a node that is not up yet is simply leased by
     the first renewal that reaches it. *)
  Array.iter
    (fun shard ->
      if shard.s_replica <> None then
        match
          lease_node t shard.s_primary
            ~epoch:(Membership.epoch t.membership shard.s_idx)
        with
        | Ok () -> Membership.note_grant t.membership shard.s_idx
        | Error msg ->
          Log.warn (fun k ->
              k "shard %d: initial lease grant failed: %s" shard.s_idx msg))
    shards;
  Array.iter (fun s -> refresh_shard_gauges t s) shards;
  t.accept_thread <- Some (Thread.create accept_loop t);
  if Array.exists (fun s -> s.s_replica <> None) shards then
    t.ship_thread <- Some (Thread.create ship_loop t);
  Log.info (fun k ->
      k "coordinating %d shards (%d with replicas) on %s:%d"
        (Array.length shards)
        (Array.fold_left
           (fun a s -> if s.s_replica <> None then a + 1 else a)
           0 shards)
        cfg.host bound_port);
  t

let wait t =
  Mutex.protect t.stop_mu (fun () ->
      while not t.finished do
        Condition.wait t.stop_cond t.stop_mu
      done)

let stop t =
  let first =
    Mutex.protect t.stop_mu (fun () ->
        let first = not t.stopped in
        t.stopped <- true;
        first)
  in
  if first then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    let fds =
      Mutex.protect t.conns_mu (fun () ->
          Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [])
    in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds;
    let conn_threads =
      Mutex.protect t.conns_mu (fun () ->
          let ts = t.conn_threads in
          t.conn_threads <- [];
          ts)
    in
    List.iter Thread.join conn_threads;
    Option.iter Thread.join t.ship_thread;
    Array.iter
      (fun shard ->
        sever shard.s_primary;
        Option.iter sever shard.s_replica)
      t.shards;
    Pkg.Eval.set_observer None;
    Mutex.protect t.stop_mu (fun () ->
        t.finished <- true;
        Condition.broadcast t.stop_cond)
  end
