(** Epoch-fenced membership for the sharded fleet: per-shard fencing
    tokens (epochs) plus write leases.

    {b Invariants.}
    - Exactly one epoch per shard is "current"; it only ever increases,
      and {!bump} persists the increment (atomic tempfile + fsync +
      rename through a {!Store.Wire} envelope) {e before} revealing the
      new value — so epochs survive coordinator restart and an old
      incarnation can never re-grant a spent epoch.
    - A node may ack writes only while it holds an unexpired lease at
      the current epoch. The server demotes itself read-only strictly
      before its lease's nominal expiry (it forfeits a skew margin);
      the coordinator waits out the {e full} nominal lease since its
      last successful grant ({!quarantine_remaining}) before bumping
      the epoch for a promotion. Together: by the time epoch [e+1] can
      ack its first write, every epoch-[e] holder has already refused
      writes — no instant with two acking primaries.

    Leases alone cannot close split-brain (a paused process's clock of
    "now" is frozen exactly while it matters); epochs alone cannot
    detect silence. The lease detects the dead/stalled primary, the
    epoch fences its unsent past: WAL records are stamped with the
    epoch they were acked under, {!Store.Ship} refuses to ship records
    older than the promotion fence, and replay truncates an
    epoch-regressing suffix. *)

type t

(** [PKGQ_LEASE_MS] — default lease duration in milliseconds (1500 when
    unset). *)
val env_lease_ms : string

(** [PKGQ_EPOCH_DIR] — default directory for the persisted epoch file
    ([epochs.bin]); epochs are coordinator-local (not persisted) when
    neither the env var nor [?dir] is given. *)
val env_epoch_dir : string

(** [create ?dir ?lease_ms ~shards ()] — epochs start at 1 (epoch 0 is
    reserved for "never fenced" records) and are raised to any higher
    persisted value found in [dir]. [dir] defaults to [PKGQ_EPOCH_DIR],
    [lease_ms] to [PKGQ_LEASE_MS]. A persisted file for a different
    shard count keeps the overlapping shards' epochs. *)
val create : ?dir:string -> ?lease_ms:int -> shards:int -> unit -> t

val shards : t -> int

(** Current epoch of shard [i]. *)
val epoch : t -> int -> int

val lease_seconds : t -> float

val lease_ms : t -> int

(** [bump t i] durably advances shard [i]'s epoch and returns the new
    value. The persisted file hits disk before the value is revealed. *)
val bump : t -> int -> int

(** Record a successful lease grant/renewal for shard [i] (a LEASE the
    holder acknowledged). *)
val note_grant : t -> int -> unit

(** Seconds since shard [i]'s last successful grant ([infinity] when
    never granted). *)
val grant_age : t -> int -> float

(** How long a promotion must still wait before bumping shard [i]'s
    epoch: the unexpired remainder of the last lease this coordinator
    granted (0 when never granted or already expired). Waiting this out
    guarantees the old primary has self-demoted first. *)
val quarantine_remaining : t -> int -> float
