let src = Logs.Src.create "pkgq.scheduler" ~doc:"service request scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  jobs : (float * (unit -> unit)) Queue.t;  (* enqueue time, job *)
  workers_n : int;
  capacity : int;
  metrics : Metrics.t;
  mutable stopping : bool;
  mutable threads : Thread.t list;
}

let depth_locked t = Queue.length t.jobs

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.nonempty t.mu
    done;
    if Queue.is_empty t.jobs && t.stopping then Mutex.unlock t.mu
    else begin
      let enq_at, job = Queue.pop t.jobs in
      Metrics.set_gauge t.metrics "queue_depth" (depth_locked t);
      Mutex.unlock t.mu;
      Metrics.observe t.metrics "queue_wait" (Unix.gettimeofday () -. enq_at);
      (try job ()
       with e ->
         Log.err (fun k ->
             k "job raised (worker survives): %s" (Printexc.to_string e)));
      loop ()
    end
  in
  loop ()

let create ~workers ~capacity ~metrics =
  let workers_n = max 1 workers in
  let t =
    {
      mu = Mutex.create ();
      nonempty = Condition.create ();
      jobs = Queue.create ();
      workers_n;
      capacity = max 1 capacity;
      metrics;
      stopping = false;
      threads = [];
    }
  in
  t.threads <- List.init workers_n (fun _ -> Thread.create worker_loop t);
  t

let workers t = t.workers_n
let capacity t = t.capacity

let depth t = Mutex.protect t.mu (fun () -> depth_locked t)

let submit t job =
  Mutex.lock t.mu;
  if t.stopping || depth_locked t >= t.capacity || Pkg.Faults.queue_full ()
  then begin
    Mutex.unlock t.mu;
    Metrics.incr t.metrics "shed";
    `Rejected
  end
  else begin
    Queue.push (Unix.gettimeofday (), job) t.jobs;
    Metrics.set_gauge t.metrics "queue_depth" (depth_locked t);
    Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    `Accepted
  end

let shutdown t =
  let threads =
    Mutex.protect t.mu (fun () ->
        let ts = t.threads in
        t.stopping <- true;
        t.threads <- [];
        Condition.broadcast t.nonempty;
        ts)
  in
  List.iter Thread.join threads
