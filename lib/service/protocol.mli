(** The service wire protocol: line-framed verbs with length-prefixed
    bodies, shared verbatim by server and client (and by the
    [--connect] modes of the CLI and REPL).

    {2 Requests}

    {v
    QUERY <len>\n<len bytes>\n    evaluate a PaQL query
    APPEND <len> [epoch]\n<len bytes>\n   append CSV rows (with header)
    DELETE <len> [epoch]\n<len bytes>\n   delete rows (space-separated ids)
    LEASE <epoch> <ttl_ms>\n      grant/renew a write lease at an epoch
    ASSIGN <len>\n<len bytes>\n   install a shard group assignment
    SKETCH <len>\n<len bytes>\n   per-group candidate counts for a query
    REFINE <len>\n<len bytes>\n   solve one group's refine ILP
    FPRINT\n                      table content fingerprint + row count
    STATS\n                       metrics snapshot
    PING\n                        liveness probe
    QUIT\n                       close the connection
    v}

    The three shard verbs are the scatter/gather substrate of
    [pkgq_shard]: the coordinator installs each shard's partition
    groups once (ASSIGN, local row ids; the OK body is the
    representative tuples as CSV, one row per group in request order),
    asks for each group's WHERE-filtered candidate count per query
    (SKETCH, so the coordinator can derive the sketch ILP's caps), and
    dispatches per-group refine ILPs with the partial package's
    constraint offsets (REFINE). Floats in shard bodies travel as hex
    float literals, so both sides compute on bit-identical values.

    {2 Responses}

    {v
    OK <len>\n<len bytes>\n
    ERR <code> <len>\n<len bytes>\n
    v}

    A [QUERY]'s [OK] body is three parts: a [status ...] line (the
    report's status and objective), a [wall ...] line, then the
    package as CSV — byte-identical to what a single-shot [paql --out]
    run writes, which is what the service tests diff against.

    Error codes mirror the CLI's exit-code taxonomy so a remote failure
    degrades into the same scripting contract as a local one (see
    {!exit_code}). *)

type request =
  | Query of string
  | Append of { csv : string; epoch : int option }
      (** [epoch] is the membership epoch the writer holds, when the
          table is served by a fenced fleet; [None] preserves the
          pre-membership wire format (standalone servers accept it) *)
  | Delete of { ids : int list; epoch : int option }
  | Lease of { epoch : int; ttl_ms : int }
      (** the coordinator's fencing verb: install [epoch] (monotone per
          shard) and grant the right to ack writes for [ttl_ms]. A
          server refuses a LEASE below its installed epoch with
          {!Fenced}; a lease that expires un-renewed demotes the server
          to read-only until the next grant *)
  | Assign of string
  | Sketch of string
  | Refine of string
  | Fingerprint
  | Stats
  | Ping
  | Quit

type error_code =
  | Rejected           (** admission control shed the request *)
  | Deadline           (** the per-request budget expired *)
  | Infeasible
  | Degraded
      (** a sharded answer with reduced fidelity: some groups stale or
          omitted (shard and replica unreachable) — typed, never a
          silently wrong package *)
  | Failed             (** solver gave up: no package *)
  | Fenced
      (** the node is not (or no longer) the shard's primary: its write
          lease expired or the request's epoch predates the node's
          promotion epoch. The write was {e not} applied; retry against
          the current primary *)
  | Parse_error
  | Analysis_error
  | Data_error
  | Internal

type response = Resp_ok of string | Resp_err of error_code * string

(** Raised by the readers on a malformed frame. *)
exception Protocol_error of string

val code_name : error_code -> string

val code_of_name : string -> error_code option

(** The paql CLI exit code for a remote failure: 1 infeasible, 2
    failed/deadline/internal, 3 data, 4 parse, 5 analysis, 7
    rejected, 8 degraded, 9 fenced. *)
val exit_code : error_code -> int

(** {1 Framing} *)

val write_request : out_channel -> request -> unit

(** [None] on a clean EOF before any byte of a frame.
    @raise Protocol_error on a malformed frame. *)
val read_request : in_channel -> request option

val write_response : out_channel -> response -> unit

(** @raise Protocol_error on a malformed frame or EOF mid-response. *)
val read_response : in_channel -> response

(** {1 Query result bodies} *)

(** [render_result ~status_line ~wall body] / its inverse
    {!parse_result}: the [OK] body of a [QUERY]. [csv] is [""] when the
    evaluation produced no package (pure status answers are still
    cacheable). *)
val render_result : status_line:string -> wall:float -> csv:string -> string

val parse_result : string -> (string * float * string, string) result

(** {1 Shard verb bodies}

    Structured codecs for the ASSIGN/SKETCH/REFINE bodies, shared by
    the coordinator and the server so neither reimplements the format.
    The [parse_*] functions raise {!Protocol_error} on malformed input
    (they sit behind the framing layer, which already promises a
    complete body). *)

(** ASSIGN body: one line per group, ["<gid> <id> <id> ..."] with
    shard-local row ids. *)
val render_assign : (int * int array) list -> string

val parse_assign : string -> (int * int array) list

(** SKETCH response body: one line per group, ["<gid> <count>"]. *)
val render_counts : (int * int) list -> string

val parse_counts : string -> (int * int) list

(** REFINE body: line 1 is ["<gid> <budget_ms>"], line 2 the
    per-constraint offsets as hex floats, the rest the query text. *)
val render_refine : gid:int -> budget_ms:int -> offsets:float array ->
  query:string -> string

val parse_refine : string -> int * int * float array * string

(** REFINE response body: line 1 is [feasible] / [infeasible] /
    [failed <msg>]; for [feasible], line 2 holds the chosen
    [(row, count)] entries as space-separated [row:count] pairs, in
    candidate order (coordinator and shard share the table, so row ids
    are a complete answer). *)
type refine_result =
  | Refine_feasible of (int * int) list
  | Refine_infeasible
  | Refine_failed of string

val render_refine_result : refine_result -> string

val parse_refine_result : string -> refine_result
