(** The service wire protocol: line-framed verbs with length-prefixed
    bodies, shared verbatim by server and client (and by the
    [--connect] modes of the CLI and REPL).

    {2 Requests}

    {v
    QUERY <len>\n<len bytes>\n    evaluate a PaQL query
    APPEND <len>\n<len bytes>\n   append CSV rows (with header) to the table
    DELETE <len>\n<len bytes>\n   delete rows; body is space-separated row ids
    FPRINT\n                      table content fingerprint + row count
    STATS\n                       metrics snapshot
    PING\n                        liveness probe
    QUIT\n                       close the connection
    v}

    {2 Responses}

    {v
    OK <len>\n<len bytes>\n
    ERR <code> <len>\n<len bytes>\n
    v}

    A [QUERY]'s [OK] body is three parts: a [status ...] line (the
    report's status and objective), a [wall ...] line, then the
    package as CSV — byte-identical to what a single-shot [paql --out]
    run writes, which is what the service tests diff against.

    Error codes mirror the CLI's exit-code taxonomy so a remote failure
    degrades into the same scripting contract as a local one (see
    {!exit_code}). *)

type request =
  | Query of string
  | Append of string
  | Delete of int list
  | Fingerprint
  | Stats
  | Ping
  | Quit

type error_code =
  | Rejected           (** admission control shed the request *)
  | Deadline           (** the per-request budget expired *)
  | Infeasible
  | Failed             (** solver gave up: no package *)
  | Parse_error
  | Analysis_error
  | Data_error
  | Internal

type response = Resp_ok of string | Resp_err of error_code * string

(** Raised by the readers on a malformed frame. *)
exception Protocol_error of string

val code_name : error_code -> string

val code_of_name : string -> error_code option

(** The paql CLI exit code for a remote failure: 1 infeasible, 2
    failed/deadline/internal, 3 data, 4 parse, 5 analysis, 7
    rejected. *)
val exit_code : error_code -> int

(** {1 Framing} *)

val write_request : out_channel -> request -> unit

(** [None] on a clean EOF before any byte of a frame.
    @raise Protocol_error on a malformed frame. *)
val read_request : in_channel -> request option

val write_response : out_channel -> response -> unit

(** @raise Protocol_error on a malformed frame or EOF mid-response. *)
val read_response : in_channel -> response

(** {1 Query result bodies} *)

(** [render_result ~status_line ~wall body] / its inverse
    {!parse_result}: the [OK] body of a [QUERY]. [csv] is [""] when the
    evaluation produced no package (pure status answers are still
    cacheable). *)
val render_result : status_line:string -> wall:float -> csv:string -> string

val parse_result : string -> (string * float * string, string) result
