(** Kill/restart harness for the durability tests and benches.

    Each experiment spawns a real [pkgq_server] child process on a
    fresh scratch directory (fsync durability is only observable across
    a process boundary), drives APPEND batches over TCP counting
    acknowledgements, crashes the child at an injected point, restarts
    it on the same WAL directory, and compares the recovered table
    fingerprint against locally-computed prefix fingerprints built with
    the exact apply semantics recovery uses. *)

(** Where the child dies:
    - [Torn k]: the [k]-th WAL record is half-written (then SIGKILL) —
      the classic torn tail; recovery must truncate it.
    - [Crash k]: the [k]-th record is fully durable but the child dies
      before acknowledging — the in-doubt write; recovery may replay
      it.
    - [Kill_after n]: external SIGKILL once [n] appends are
      acknowledged — no fault injection inside the server at all. *)
type crash_point =
  | Torn of int
  | Crash of int
  | Kill_after of int

val pp_point : Format.formatter -> crash_point -> unit

val point_name : crash_point -> string

type result = {
  point : crash_point;
  acked : int;              (** appends acknowledged before death *)
  died : bool;              (** the child actually died mid-run *)
  recovered_fp : string;    (** table fingerprint after restart *)
  recovered_rows : int;
  recovery_seconds : float; (** restart spawn → first answered request *)
  refs : (string * int) array;
      (** [(fingerprint, rows)] after each prefix of the batches;
          [refs.(i)] is the state when exactly [i] appends applied *)
}

(** The harness itself failed (child would not boot, refused an append,
    malformed reply) — distinct from a durability violation, which
    {!check} reports as [Error]. *)
exception Harness_error of string

(** [run_crash ~exe ~dir ~base ~batches ~point ()] — one full
    kill/restart cycle in scratch directory [dir] (recreated). [exe] is
    the [pkgq_server] binary; [sync] sets the child's [PKGQ_WAL_SYNC];
    [checkpoint] its [--wal-checkpoint]. *)
val run_crash :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  batches:Relalg.Relation.t list ->
  point:crash_point ->
  ?checkpoint:int ->
  ?sync:string ->
  unit ->
  result

(** Never-crashed control run: one server, all batches, live
    fingerprint, clean shutdown. Its [recovered_fp] must equal the last
    [refs] entry — it validates that the harness's locally-computed
    references describe the same bytes a real server reaches. *)
val run_reference :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  batches:Relalg.Relation.t list ->
  ?checkpoint:int ->
  ?sync:string ->
  unit ->
  result

(** The durability verdict: [Ok i] when the recovered state is exactly
    the [i]-th reference prefix with [acked <= i], allowing [i = acked
    + 1] only for [Crash] points (the in-doubt write). [Error] spells
    out the violation: lost acknowledged writes, phantom writes, or a
    state matching no prefix at all. *)
val check : result -> (int, string) Stdlib.result

(** {2 Child servers}

    Every child spawned through {!start_server} lands in a global pid
    registry; an [at_exit] hook SIGKILLs whatever is still registered,
    so an aborting test run (uncaught exception, failed assertion)
    cannot leak server processes — SIGSTOPped ones included. *)

type server = { pid : int; port : int; out_file : string }

(** Spawn one [pkgq_server] child ([--port 0], banner-polled for the
    bound port; raises {!Harness_error} after 30s without one).
    [extra_args] is appended verbatim — the fleet helpers use it for
    the partitioning config. *)
val start_server :
  exe:string ->
  data:string ->
  wal:string ->
  ?faults:string ->
  ?checkpoint:int ->
  ?sync:string ->
  ?extra_args:string list ->
  out_file:string ->
  unit ->
  server

(** SIGSTOP: the process stalls but its sockets stay open — only
    timeouts can tell. *)
val pause : server -> unit

(** SIGCONT a {!pause}d server. *)
val resume : server -> unit

(** SIGKILL and collect. *)
val kill_server : server -> unit

(** SIGTERM (clean shutdown) and collect. *)
val stop_server : server -> unit

(** {2 Shard fleets} *)

type fleet_member = {
  fm_primary : server;
  fm_replica : server option;
  fm_wal : string;  (** the primary's on-disk WAL log, for shipping *)
}

(** [start_fleet ~exe ~dir ~base ~shards ~replicas ()] — a
    shared-storage fleet under scratch directory [dir] (recreated):
    every node boots from the same base segment, primaries keep their
    full WAL (checkpointing disabled — the coordinator's shipper reads
    it), [replicas > 0] pairs each primary with one replica.
    [extra_args] must carry the same [--attrs]/[--tau]/[--epsilon] the
    coordinator uses. Partially-started fleets are killed on spawn
    failure. *)
val start_fleet :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  shards:int ->
  replicas:int ->
  ?extra_args:string list ->
  unit ->
  fleet_member list

(** The fleet as coordinator shard specs (localhost endpoints, primary
    WAL paths attached). *)
val fleet_specs : fleet_member list -> Coordinator.shard_spec list

(** SIGKILL every member. *)
val stop_fleet : fleet_member list -> unit

(** {2 Zombie split-brain}

    The classic fencing experiment: SIGSTOP the leased primary, let the
    coordinator fence it out and promote the replica, SIGCONT the
    zombie, then drive the same writes at {e both} sides. A correct
    fleet acks every write exactly once — through the coordinator — and
    the zombie answers everything with the typed [fenced] error. *)

type zombie_result = {
  z_acked : int;        (** writes acked through the coordinator, all phases *)
  z_failover_acks : int;
      (** writes acked while the old primary was paused — these crossed
          the fencing promotion *)
  z_dual_acks : int;
      (** MUST be 0: writes the deposed zombie acknowledged *)
  z_zombie_fenced : int;
      (** zombie refusals carrying the typed [fenced] code *)
  z_zombie_other : int;
      (** zombie refusals that were anything else (untyped / connection
          errors) — they don't break the safety invariant but weaken
          the typed-error contract *)
  z_stale_fenced : bool;
      (** the pre-promotion epoch stamp, replayed at the {e new}
          primary, answered the typed [fenced] error *)
  z_epoch : int;        (** the shard's epoch after promotion *)
  z_promotions : int;   (** coordinator [shard_promotions] counter *)
  z_lost_acks : int;
      (** MUST be 0: coordinator-acked writes missing from the active
          node's final state *)
  z_recovered_fp : string;   (** the active node's final fingerprint *)
  z_recovered_rows : int;
}

(** [run_zombie ~exe ~dir ~base ~pre ~during ~post ~attrs ()] — one
    shard + replica fleet and an in-process coordinator with a short
    write lease ([lease_ms], default 400). [pre] batches are acked
    normally, the primary is SIGSTOPped, [during] batches force the
    fencing promotion, the zombie is SIGCONTed, and each [post] batch
    is attempted directly at the zombie before being acked through the
    coordinator. [attrs]/[tau] must describe the fleet partitioning as
    usual. [during] and [post] must be non-empty.
    @raise Harness_error when the harness itself fails (fleet won't
    boot, coordinator refuses an append). *)
val run_zombie :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  pre:Relalg.Relation.t list ->
  during:Relalg.Relation.t list ->
  post:Relalg.Relation.t list ->
  ?lease_ms:int ->
  attrs:string list ->
  ?tau:int ->
  unit ->
  zombie_result
