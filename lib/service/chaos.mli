(** Kill/restart harness for the durability tests and benches.

    Each experiment spawns a real [pkgq_server] child process on a
    fresh scratch directory (fsync durability is only observable across
    a process boundary), drives APPEND batches over TCP counting
    acknowledgements, crashes the child at an injected point, restarts
    it on the same WAL directory, and compares the recovered table
    fingerprint against locally-computed prefix fingerprints built with
    the exact apply semantics recovery uses. *)

(** Where the child dies:
    - [Torn k]: the [k]-th WAL record is half-written (then SIGKILL) —
      the classic torn tail; recovery must truncate it.
    - [Crash k]: the [k]-th record is fully durable but the child dies
      before acknowledging — the in-doubt write; recovery may replay
      it.
    - [Kill_after n]: external SIGKILL once [n] appends are
      acknowledged — no fault injection inside the server at all. *)
type crash_point =
  | Torn of int
  | Crash of int
  | Kill_after of int

val pp_point : Format.formatter -> crash_point -> unit

val point_name : crash_point -> string

type result = {
  point : crash_point;
  acked : int;              (** appends acknowledged before death *)
  died : bool;              (** the child actually died mid-run *)
  recovered_fp : string;    (** table fingerprint after restart *)
  recovered_rows : int;
  recovery_seconds : float; (** restart spawn → first answered request *)
  refs : (string * int) array;
      (** [(fingerprint, rows)] after each prefix of the batches;
          [refs.(i)] is the state when exactly [i] appends applied *)
}

(** The harness itself failed (child would not boot, refused an append,
    malformed reply) — distinct from a durability violation, which
    {!check} reports as [Error]. *)
exception Harness_error of string

(** [run_crash ~exe ~dir ~base ~batches ~point ()] — one full
    kill/restart cycle in scratch directory [dir] (recreated). [exe] is
    the [pkgq_server] binary; [sync] sets the child's [PKGQ_WAL_SYNC];
    [checkpoint] its [--wal-checkpoint]. *)
val run_crash :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  batches:Relalg.Relation.t list ->
  point:crash_point ->
  ?checkpoint:int ->
  ?sync:string ->
  unit ->
  result

(** Never-crashed control run: one server, all batches, live
    fingerprint, clean shutdown. Its [recovered_fp] must equal the last
    [refs] entry — it validates that the harness's locally-computed
    references describe the same bytes a real server reaches. *)
val run_reference :
  exe:string ->
  dir:string ->
  base:Relalg.Relation.t ->
  batches:Relalg.Relation.t list ->
  ?checkpoint:int ->
  ?sync:string ->
  unit ->
  result

(** The durability verdict: [Ok i] when the recovered state is exactly
    the [i]-th reference prefix with [acked <= i], allowing [i = acked
    + 1] only for [Crash] points (the in-doubt write). [Error] spells
    out the violation: lost acknowledged writes, phantom writes, or a
    state matching no prefix at all. *)
val check : result -> (int, string) Stdlib.result
