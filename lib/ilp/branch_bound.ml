open Lp

type sol = { x : float array; obj : float }

type limits = { max_nodes : int; max_seconds : float; max_simplex_iters : int }

let default_limits =
  { max_nodes = 200_000; max_seconds = 3600.; max_simplex_iters = max_int }

type stop_reason = Stop_nodes | Stop_time | Stop_iterations

type stats = {
  nodes : int;
  simplex_iterations : int;
  elapsed : float;
  stopped : stop_reason option;
}

let pp_stop_reason ppf = function
  | Stop_nodes -> Format.pp_print_string ppf "node limit"
  | Stop_time -> Format.pp_print_string ppf "time limit"
  | Stop_iterations -> Format.pp_print_string ppf "simplex iteration limit"

type result =
  | Optimal of sol * stats
  | Feasible of sol * stats * float
  | Infeasible of stats
  | Unbounded of stats
  | Limit of stats

let stats_of = function
  | Optimal (_, s) | Feasible (_, s, _) | Infeasible s | Unbounded s | Limit s
    -> s

let solution_of = function
  | Optimal (s, _) | Feasible (s, _, _) -> Some s
  | Infeasible _ | Unbounded _ | Limit _ -> None

let pp_result ppf = function
  | Optimal (s, st) ->
    Format.fprintf ppf "optimal obj=%g (nodes=%d, %.3fs)" s.obj st.nodes
      st.elapsed
  | Feasible (s, st, gap) ->
    Format.fprintf ppf "feasible obj=%g gap=%.2f%% (nodes=%d, %.3fs)" s.obj
      (gap *. 100.) st.nodes st.elapsed
  | Infeasible st -> Format.fprintf ppf "infeasible (nodes=%d)" st.nodes
  | Unbounded st -> Format.fprintf ppf "unbounded (nodes=%d)" st.nodes
  | Limit st ->
    let reason ppf = function
      | Some r -> Format.fprintf ppf "%a" pp_stop_reason r
      | None -> Format.pp_print_string ppf "limit"
    in
    Format.fprintf ppf "%a reached with no incumbent (nodes=%d, %.3fs)" reason
      st.stopped st.nodes st.elapsed

(* A node is a set of bound overrides relative to the root problem,
   plus the LP bound of its parent (used for best-first ordering), the
   branching step that created it (variable, direction 0=down / 1=up,
   fractional distance, parent bound — the inputs of the pseudo-cost
   update), and the parent's optimal basis: the child differs by one
   tightened bound, so that basis is dual-feasible for the child LP and
   the dual simplex restarts from it in a handful of pivots. *)
type node = {
  overrides : (int * float * float) list;
  bound : float;
  branched : (int * int * float * float) option;
  nbasis : Simplex.Basis.t option;
}

(* Minimal binary heap on node bound (internal minimization). *)
module Heap = struct
  type t = { mutable data : node array; mutable size : int }

  let create () =
    {
      data =
        Array.make 64
          { overrides = []; bound = 0.; branched = None; nbasis = None };
      size = 0;
    }

  let is_empty h = h.size = 0

  let push h node =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) node in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- node;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0 && h.data.((!i - 1) / 2).bound > h.data.(!i).bound
    do
      let parent = (!i - 1) / 2 in
      let tmp = h.data.(parent) in
      h.data.(parent) <- h.data.(!i);
      h.data.(!i) <- tmp;
      i := parent
    done

  let pop h =
    if h.size = 0 then invalid_arg "Heap.pop: empty";
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.data.(l).bound < h.data.(!smallest).bound then
        smallest := l;
      if r < h.size && h.data.(r).bound < h.data.(!smallest).bound then
        smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = h.data.(!smallest) in
        h.data.(!smallest) <- h.data.(!i);
        h.data.(!i) <- tmp;
        i := !smallest
      end
    done;
    top

  (* Best (lowest) bound among open nodes, for gap reporting. *)
  let best_bound h = if h.size = 0 then None else Some h.data.(0).bound
end

(* Root cutting-plane loop: solve the LP relaxation, separate violated
   cover inequalities at the fractional point, append them and repeat.
   Cuts are valid for every integer point, so the strengthened problem
   has the same integer optima; the tightened relaxation shrinks the
   branch-and-bound tree (branch-and-cut, as in the paper's CPLEX).

   Cut-round LP solves draw on the same wall-clock deadline and pivot
   budget as the node solves ([iters] accumulates into the caller's
   counter), so a pathological separation loop cannot overshoot the
   propagated budget — it just stops strengthening. *)
let strengthen_with_cuts ~rounds ~deadline ~iter_budget iters (p : Problem.t) =
  let rec go k (p : Problem.t) =
    if
      k >= rounds
      || iter_budget - !iters <= 0
      || Unix.gettimeofday () > deadline
    then p
    else
      let max_iters =
        min (Simplex.default_max_iters p) (iter_budget - !iters)
      in
      match Simplex.solve ~max_iters ~deadline ~iterations:iters p with
      | Simplex.Optimal s -> (
        let fractional =
          Array.exists2
            (fun (v : Problem.var) xj ->
              v.Problem.integer && Float.abs (xj -. Float.round xj) > 1e-6)
            p.Problem.vars s.Simplex.x
        in
        if not fractional then p
        else
          match Cuts.cover_cuts p s.Simplex.x with
          | [] -> p
          | cuts ->
            go (k + 1)
              { p with Problem.rows = Array.append p.Problem.rows
                                        (Array.of_list cuts) })
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit -> p
  in
  go 0 p

type branching = Most_fractional | Pseudo_cost

let solve ?(limits = default_limits) ?(int_tol = 1e-6) ?(cut_rounds = 0)
    ?(branching = Most_fractional) ?(rel_gap = 0.) ?(diving = false)
    ?warm_start ?basis_out (p : Problem.t) =
  (* Internal objective is minimized: internal = sense_sign * external. *)
  let start = Unix.gettimeofday () in
  let deadline = start +. limits.max_seconds in
  let nodes = ref 0 and lp_iters = ref 0 in
  let p =
    if cut_rounds > 0 then
      strengthen_with_cuts ~rounds:cut_rounds ~deadline
        ~iter_budget:limits.max_simplex_iters lp_iters p
    else p
  in
  (* a saved basis only fits the uncut root problem: adding cut rows
     changes the row dimension, so the warm start is dropped (resolve
     would reject it anyway — this just skips the attempt) *)
  let warm_start = if cut_rounds > 0 then None else warm_start in
  let sense_sign =
    match p.Problem.sense with Problem.Minimize -> 1. | Problem.Maximize -> -1.
  in
  let stop = ref None in
  (* first stop reason wins; later triggers are consequences of it *)
  let note reason = if !stop = None then stop := Some reason in
  (* an LP that came back [Iter_limit] either crossed the wall-clock
     deadline (polled inside the simplex) or exhausted the pivot budget *)
  let classify_iter_limit () =
    if Unix.gettimeofday () -. start > limits.max_seconds then note Stop_time
    else note Stop_iterations
  in
  let stats () =
    {
      nodes = !nodes;
      simplex_iterations = !lp_iters;
      elapsed = Unix.gettimeofday () -. start;
      stopped = !stop;
    }
  in
  let base_lo = Array.map (fun v -> v.Problem.lo) p.Problem.vars in
  let base_hi = Array.map (fun v -> v.Problem.hi) p.Problem.vars in
  let cur_lo = Array.copy base_lo and cur_hi = Array.copy base_hi in
  let with_overrides overrides f =
    List.iter
      (fun (j, lo, hi) ->
        cur_lo.(j) <- Float.max cur_lo.(j) lo;
        cur_hi.(j) <- Float.min cur_hi.(j) hi)
      overrides;
    let r = f () in
    List.iter
      (fun (j, _, _) ->
        cur_lo.(j) <- base_lo.(j);
        cur_hi.(j) <- base_hi.(j))
      overrides;
    r
  in
  let solve_lp ?basis overrides =
    let iter_budget = limits.max_simplex_iters - !lp_iters in
    if iter_budget <= 0 then begin
      note Stop_iterations;
      Simplex.Iter_limit
    end
    else
      with_overrides overrides (fun () ->
          let vars =
            Array.mapi
              (fun j v -> { v with Problem.lo = cur_lo.(j); hi = cur_hi.(j) })
              p.Problem.vars
          in
          let sub = { p with Problem.vars } in
          let max_iters = min (Simplex.default_max_iters sub) iter_budget in
          Simplex.resolve ?basis ~max_iters ~deadline ~iterations:lp_iters sub)
  in
  let incumbent = ref None in
  let incumbent_internal () =
    match !incumbent with
    | None -> infinity
    | Some s -> sense_sign *. s.obj
  in
  (* A node is worth expanding only if it can improve the incumbent by
     more than the relative MIP gap (CPLEX's default stopping rule is
     1e-4; ours defaults to 0 = prove exact optimality). *)
  let gap_slack () =
    match !incumbent with
    | None -> 0.
    | Some s -> rel_gap *. Float.max 1e-9 (Float.abs (sense_sign *. s.obj))
  in
  (* Pseudo-cost bookkeeping: the average objective degradation per
     fractional unit observed when branching down/up on each variable.
     A classic estimate that steers branching toward the variables that
     actually move the bound (used when [branching = Pseudo_cost]). *)
  let n = Problem.nvars p in
  let pc_sum = Array.make_matrix 2 n 0. in
  let pc_cnt = Array.make_matrix 2 n 0 in
  let pc_estimate j frac =
    let avg dir fallback =
      if pc_cnt.(dir).(j) > 0 then
        pc_sum.(dir).(j) /. float_of_int pc_cnt.(dir).(j)
      else fallback
    in
    (* untried variables get an optimistic unit cost so they are
       explored at least once *)
    let down = avg 0 1. *. frac and up = avg 1 1. *. (1. -. frac) in
    Float.min down up
  in
  let pc_record ~dir j ~frac_move ~degradation =
    if frac_move > 1e-9 then begin
      pc_sum.(dir).(j) <- pc_sum.(dir).(j) +. (degradation /. frac_move);
      pc_cnt.(dir).(j) <- pc_cnt.(dir).(j) + 1
    end
  in
  let fractional_var x =
    (* branching variable, or None when the point is integral *)
    let best = ref None and best_score = ref 0. in
    Array.iteri
      (fun j v ->
        if v.Problem.integer then begin
          let f = Float.abs (x.(j) -. Float.round x.(j)) in
          if f > int_tol then begin
            let score =
              match branching with
              | Most_fractional -> f
              | Pseudo_cost -> pc_estimate j (x.(j) -. Float.floor x.(j))
            in
            match !best with
            | None ->
              best := Some j;
              best_score := score
            | Some _ ->
              if score > !best_score then begin
                best := Some j;
                best_score := score
              end
          end
        end)
      p.Problem.vars;
    !best
  in
  let try_incumbent x =
    let obj = Problem.objective p x in
    let internal = sense_sign *. obj in
    if internal < incumbent_internal () -. 1e-9 then
      incumbent := Some { x = Array.copy x; obj }
  in
  (* Nearest-rounding heuristic: round integer vars of an LP point and
     keep the result when it happens to be feasible. *)
  let rounding_heuristic x =
    let y = Array.copy x in
    Array.iteri
      (fun j v ->
        if v.Problem.integer then
          y.(j) <-
            Float.min v.Problem.hi (Float.max v.Problem.lo (Float.round y.(j))))
      p.Problem.vars;
    if Problem.feasible ~tol:1e-6 p y then try_incumbent y
  in
  (* Diving heuristic: from an LP point, repeatedly pin the *least*
     fractional integer variable to its nearest integer and re-solve,
     hoping to reach an integer-feasible leaf quickly. A classic primal
     heuristic for strong early incumbents. *)
  let dive x0 basis0 =
    let rec go overrides x basis depth =
      if depth > 64 then ()
      else begin
        (* least fractional, still-fractional variable *)
        let best = ref None and best_frac = ref infinity in
        Array.iteri
          (fun j v ->
            if v.Problem.integer then begin
              let f = Float.abs (x.(j) -. Float.round x.(j)) in
              if f > int_tol && f < !best_frac then begin
                best_frac := f;
                best := Some j
              end
            end)
          p.Problem.vars;
        match !best with
        | None -> try_incumbent x
        | Some j ->
          let target = Float.round x.(j) in
          let overrides = (j, target, target) :: overrides in
          (match solve_lp ?basis overrides with
          | Simplex.Optimal lp ->
            go overrides lp.Simplex.x lp.Simplex.basis (depth + 1)
          | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iter_limit -> ())
      end
    in
    go [] x0 basis0 0
  in
  let heap = Heap.create () in
  match solve_lp ?basis:warm_start [] with
  | Simplex.Infeasible -> Infeasible (stats ())
  | Simplex.Unbounded -> Unbounded (stats ())
  | Simplex.Iter_limit ->
    classify_iter_limit ();
    Limit (stats ())
  | Simplex.Optimal root ->
    (match basis_out with
    | Some out -> out := root.Simplex.basis
    | None -> ());
    let root_bound = sense_sign *. root.Simplex.obj in
    (match fractional_var root.Simplex.x with
    | None -> Optimal ({ x = root.Simplex.x; obj = root.Simplex.obj }, stats ())
    | Some _ ->
      rounding_heuristic root.Simplex.x;
      if diving then dive root.Simplex.x root.Simplex.basis;
      Heap.push heap
        {
          overrides = [];
          bound = root_bound;
          branched = None;
          nbasis = root.Simplex.basis;
        };
      let best_open = ref root_bound in
      let limit_hit = ref false in
      while (not (Heap.is_empty heap)) && not !limit_hit do
        if !nodes >= limits.max_nodes then begin
          note Stop_nodes;
          limit_hit := true
        end
        else if Unix.gettimeofday () -. start > limits.max_seconds then begin
          note Stop_time;
          limit_hit := true
        end
        else begin
          let node = Heap.pop heap in
          best_open :=
            (match Heap.best_bound heap with
            | Some b -> Float.min node.bound b
            | None -> node.bound);
          (* prune against the incumbent (with the MIP-gap slack) *)
          if node.bound < incumbent_internal () -. 1e-9 -. gap_slack () then begin
            incr nodes;
            match solve_lp ?basis:node.nbasis node.overrides with
            | Simplex.Infeasible -> ()
            | Simplex.Iter_limit ->
              classify_iter_limit ();
              limit_hit := true
            | Simplex.Unbounded ->
              (* cannot happen below an optimal root with added bounds,
                 except through numerical trouble; treat as a dead end *)
              ()
            | Simplex.Optimal lp ->
              let bound = sense_sign *. lp.Simplex.obj in
              (* account the parent's branching step for pseudo-costs *)
              (match node.branched with
              | Some (j, dir, frac_move, parent_bound) ->
                pc_record ~dir j ~frac_move
                  ~degradation:(Float.max 0. (bound -. parent_bound))
              | None -> ());
              if bound < incumbent_internal () -. 1e-9 -. gap_slack () then begin
                match fractional_var lp.Simplex.x with
                | None ->
                  try_incumbent lp.Simplex.x
                | Some j ->
                  rounding_heuristic lp.Simplex.x;
                  let xj = lp.Simplex.x.(j) in
                  let fl = Float.of_int (int_of_float (floor (xj +. int_tol))) in
                  let frac = xj -. fl in
                  Heap.push heap
                    {
                      overrides = (j, neg_infinity, fl) :: node.overrides;
                      bound;
                      branched = Some (j, 0, frac, bound);
                      nbasis = lp.Simplex.basis;
                    };
                  Heap.push heap
                    {
                      overrides = (j, fl +. 1., infinity) :: node.overrides;
                      bound;
                      branched = Some (j, 1, 1. -. frac, bound);
                      nbasis = lp.Simplex.basis;
                    }
              end
          end
        end
      done;
      let st = stats () in
      (match !incumbent with
      | None -> if !limit_hit then Limit st else Infeasible st
      | Some s ->
        if !limit_hit || not (Heap.is_empty heap) then begin
          let open_bound =
            match Heap.best_bound heap with
            | Some b -> Float.min !best_open b
            | None -> !best_open
          in
          let inc = sense_sign *. s.obj in
          let gap =
            if Float.abs inc < 1e-12 then Float.abs (inc -. open_bound)
            else Float.abs (inc -. open_bound) /. Float.abs inc
          in
          if gap <= Float.max 1e-9 rel_gap then Optimal (s, st)
          else Feasible (s, st, gap)
        end
        else Optimal (s, st)))
