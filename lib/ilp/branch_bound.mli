(** Branch-and-bound integer linear programming on top of {!Lp.Simplex}.

    Best-first search on the LP relaxation bound, most-fractional
    branching, a nearest-rounding heuristic for an initial incumbent,
    and node/time limits mirroring the paper's CPLEX configuration
    (1-hour cap, kill on resource exhaustion). A search that hits a
    limit reports [Feasible] (with the optimality gap) when an
    incumbent exists and [Limit] otherwise — the latter is what the
    benchmarks treat as a Direct failure. *)

type sol = { x : float array; obj : float }

type limits = {
  max_nodes : int;       (** branch-and-bound node budget *)
  max_seconds : float;   (** wall-clock budget *)
  max_simplex_iters : int;
      (** total simplex pivot budget across all LP solves of the search
          (default [max_int]); each LP is handed the remainder *)
}

val default_limits : limits

(** Which limit stopped a search that came back [Limit]/[Feasible].
    The {e first} limit crossed is recorded; later triggers are
    consequences of it. *)
type stop_reason = Stop_nodes | Stop_time | Stop_iterations

val pp_stop_reason : Format.formatter -> stop_reason -> unit

type stats = {
  nodes : int;
  simplex_iterations : int;
  elapsed : float;       (** seconds *)
  stopped : stop_reason option;
      (** [None] when the search ran to natural completion *)
}

type result =
  | Optimal of sol * stats
  | Feasible of sol * stats * float
      (** best incumbent when a limit was hit; the float is the relative
          optimality gap *)
  | Infeasible of stats
  | Unbounded of stats
  | Limit of stats  (** limit hit before any feasible point was found *)

(** Branching-variable selection: [Most_fractional] (default) picks
    the variable closest to half-integrality; [Pseudo_cost] picks by
    the historical objective degradation per fractional unit, learned
    as the search branches — the classic strategy commercial solvers
    blend in. *)
type branching = Most_fractional | Pseudo_cost

(** [solve ?limits ?int_tol ?cut_rounds ?branching ?rel_gap p] honours
    the [integer] flags in [p].

    [cut_rounds > 0] (default 0) runs that many rounds of root-node
    cover-cut separation ({!Cuts}) before branching — branch-and-cut,
    as the paper's CPLEX does.

    [rel_gap] (default [0.] = prove exact optimality) stops the search
    once no open node can improve the incumbent by more than this
    relative amount; CPLEX's default is [1e-4]. A search stopped by the
    gap reports [Optimal].

    [diving] (default false) runs a root diving pass — iteratively
    pinning the least-fractional variable and re-solving the LP — to
    seed a strong incumbent before the search, reducing the chance of
    a [Limit] outcome on tightly budgeted runs.

    [warm_start] seeds the root LP with a previously saved basis (see
    {!Lp.Simplex.resolve}); it is ignored when [cut_rounds > 0], since
    cut rows change the basis dimension. Child nodes always warm-start
    from their parent's optimal basis internally. [basis_out], when
    given, receives the root relaxation's optimal basis — the handle a
    caller caches to warm-start the next search over the same columns. *)
val solve :
  ?limits:limits -> ?int_tol:float -> ?cut_rounds:int ->
  ?branching:branching -> ?rel_gap:float -> ?diving:bool ->
  ?warm_start:Lp.Simplex.Basis.t ->
  ?basis_out:Lp.Simplex.Basis.t option ref -> Lp.Problem.t ->
  result

val stats_of : result -> stats
val solution_of : result -> sol option
val pp_result : Format.formatter -> result -> unit
