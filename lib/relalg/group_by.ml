type group = { key : int; members : int array }

let by_key r key_of =
  let tbl : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun i t ->
      let k = key_of i t in
      match Hashtbl.find_opt tbl k with
      | Some l -> l := i :: !l
      | None -> Hashtbl.add tbl k (ref [ i ]))
    r;
  Hashtbl.fold
    (fun key l acc ->
      { key; members = Array.of_list (List.rev !l) } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.key b.key)

(* Per-attribute float accessors over the relation's cached columns
   (NULL and non-numeric cells read as nan), so centroid/radius loops
   run over unboxed floats instead of boxed tuples. *)
let accessors r attrs =
  let schema = Relation.schema r in
  Array.of_list
    (List.map
       (fun a ->
         let i = Schema.index_of schema a in
         match Relation.column_at r i with
         | Some c ->
           let d = Column.data c in
           fun row -> Array.unsafe_get d row
         | None ->
           fun row -> (
             match Value.to_float_opt (Tuple.get (Relation.row r row) i) with
             | Some v -> v
             | None -> nan))
       attrs)

let centroid r attrs members =
  let cols = accessors r attrs in
  let k = Array.length cols in
  Array.init k (fun j ->
      let get = cols.(j) in
      let sum = ref 0. and count = ref 0 in
      Array.iter
        (fun row ->
          let v = get row in
          if not (Float.is_nan v) then begin
            sum := !sum +. v;
            incr count
          end)
        members;
      if !count = 0 then 0. else !sum /. float_of_int !count)

let radius r attrs members centroid =
  let cols = accessors r attrs in
  let worst = ref 0. in
  Array.iteri
    (fun j get ->
      let c = centroid.(j) in
      Array.iter
        (fun row ->
          let v = get row in
          if not (Float.is_nan v) then begin
            let d = Float.abs (c -. v) in
            if d > !worst then worst := d
          end)
        members)
    cols;
  !worst
