type binop = Add | Sub | Mul | Div

type cmp = Eq | Neq | Lt | Le | Gt | Ge

type t =
  | Const of Value.t
  | Attr of string
  | Binop of binop * t * t
  | Neg of t
  | Cmp of cmp * t * t
  | Between of t * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t

let arith op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
    match op with
    | Add -> Value.Int (x + y)
    | Sub -> Value.Int (x - y)
    | Mul -> Value.Int (x * y)
    | Div -> Value.Float (float_of_int x /. float_of_int y))
  | _ ->
    let x = Value.to_float a and y = Value.to_float b in
    let r =
      match op with
      | Add -> x +. y
      | Sub -> x -. y
      | Mul -> x *. y
      | Div -> x /. y
    in
    Value.Float r

(* SQL equality: strings and booleans compare with =, numerics numerically;
   comparing a string to a number is a type error surfaced by [check]. *)
let compare_values cmp a b =
  match Value.compare_sql a b with
  | None -> Value.Null
  | Some c ->
    let r =
      match cmp with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    Value.Bool r

(* Three-valued logic for AND/OR/NOT. *)
let tv_and a b =
  match a, b with
  | Value.Bool false, _ | _, Value.Bool false -> Value.Bool false
  | Value.Bool true, Value.Bool true -> Value.Bool true
  | _ -> Value.Null

let tv_or a b =
  match a, b with
  | Value.Bool true, _ | _, Value.Bool true -> Value.Bool true
  | Value.Bool false, Value.Bool false -> Value.Bool false
  | _ -> Value.Null

let tv_not = function
  | Value.Bool b -> Value.Bool (not b)
  | _ -> Value.Null

let rec eval schema tuple e =
  match e with
  | Const v -> v
  | Attr name -> Tuple.field schema tuple name
  | Binop (op, a, b) -> arith op (eval schema tuple a) (eval schema tuple b)
  | Neg a -> arith Sub (Value.Int 0) (eval schema tuple a)
  | Cmp (c, a, b) -> compare_values c (eval schema tuple a) (eval schema tuple b)
  | Between (e, lo, hi) ->
    let v = eval schema tuple e in
    tv_and
      (compare_values Ge v (eval schema tuple lo))
      (compare_values Le v (eval schema tuple hi))
  | And (a, b) -> tv_and (eval schema tuple a) (eval schema tuple b)
  | Or (a, b) -> tv_or (eval schema tuple a) (eval schema tuple b)
  | Not a -> tv_not (eval schema tuple a)
  | IsNull a -> Value.Bool (Value.is_null (eval schema tuple a))
  | IsNotNull a -> Value.Bool (not (Value.is_null (eval schema tuple a)))

let eval_bool schema tuple e =
  match eval schema tuple e with Value.Bool true -> true | _ -> false

let attrs e =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let rec go = function
    | Const _ -> ()
    | Attr n ->
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.add seen n ();
        out := n :: !out
      end
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Between (a, b, c) ->
      go a;
      go b;
      go c
    | Neg a | Not a | IsNull a | IsNotNull a -> go a
  in
  go e;
  List.rev !out

(* Static kinds for type checking. [KNum] covers int and float. *)
type kind = KNum | KStr | KBool

let kind_of_ty = function
  | Value.TInt | Value.TFloat -> KNum
  | Value.TStr -> KStr
  | Value.TBool -> KBool

let check schema e =
  let ( let* ) = Result.bind in
  let rec infer = function
    | Const Value.Null -> Ok KNum (* null is acceptable anywhere numeric *)
    | Const v -> (
      match Value.type_of v with
      | Some ty -> Ok (kind_of_ty ty)
      | None -> Ok KNum)
    | Attr n -> (
      match Schema.index_of_opt schema n with
      | Some i -> Ok (kind_of_ty (Schema.attr_at schema i).ty)
      | None -> Error (Printf.sprintf "unknown attribute %S" n))
    | Binop (_, a, b) ->
      let* ka = infer a in
      let* kb = infer b in
      if ka = KNum && kb = KNum then Ok KNum
      else Error "arithmetic requires numeric operands"
    | Neg a ->
      let* k = infer a in
      if k = KNum then Ok KNum else Error "negation requires numeric operand"
    | Cmp (_, a, b) ->
      let* ka = infer a in
      let* kb = infer b in
      if ka = kb then Ok KBool else Error "comparison of incompatible types"
    | Between (x, lo, hi) ->
      let* kx = infer x in
      let* kl = infer lo in
      let* kh = infer hi in
      if kx = KNum && kl = KNum && kh = KNum then Ok KBool
      else Error "BETWEEN requires numeric operands"
    | And (a, b) | Or (a, b) ->
      let* ka = infer a in
      let* kb = infer b in
      if ka = KBool && kb = KBool then Ok KBool
      else Error "boolean connective requires boolean operands"
    | Not a ->
      let* k = infer a in
      if k = KBool then Ok KBool else Error "NOT requires a boolean operand"
    | IsNull a | IsNotNull a ->
      let* _ = infer a in
      Ok KBool
  in
  let* _ = infer e in
  Ok ()

(* ------------------------------------------------------------------ *)
(* Vectorized lowering                                                *)
(* ------------------------------------------------------------------ *)

(* [compile] lowers a predicate into a closure over unboxed float
   columns, indexed by row id: numeric sub-expressions become
   [int -> float] (NULL encoded as nan, which arithmetic propagates
   exactly like SQL NULL), boolean sub-expressions become [int -> int]
   over the three-valued lattice 0 = false, 1 = true, 2 = unknown.
   Expressions that touch non-numeric attributes (string/bool columns)
   or non-numeric constants do not lower; callers fall back to the
   interpreted [eval], which stays the semantic reference. *)

let tri_false = 0
let tri_true = 1
let tri_null = 2

let rec compile_num schema ~columns e =
  let num e = compile_num schema ~columns e in
  match e with
  | Const Value.Null -> Some (fun _ -> nan)
  | Const (Value.Int x) ->
    let f = float_of_int x in
    Some (fun _ -> f)
  | Const (Value.Float f) -> Some (fun _ -> f)
  | Const (Value.Str _ | Value.Bool _) -> None
  | Attr n -> (
    match Schema.index_of_opt schema n with
    | None -> None
    | Some i -> (
      match columns i with
      | None -> None
      | Some c ->
        let d = Column.data c in
        Some (fun row -> Array.unsafe_get d row)))
  | Binop (op, a, b) -> (
    match num a, num b with
    | Some fa, Some fb ->
      Some
        (match op with
        | Add -> fun row -> fa row +. fb row
        | Sub -> fun row -> fa row -. fb row
        | Mul -> fun row -> fa row *. fb row
        | Div -> fun row -> fa row /. fb row)
    | _ -> None)
  | Neg a -> (
    match num a with
    | Some fa -> Some (fun row -> -.(fa row))
    | None -> None)
  | Cmp _ | Between _ | And _ | Or _ | Not _ | IsNull _ | IsNotNull _ -> None

let compile schema ~columns e =
  let num e = compile_num schema ~columns e in
  let cmp_fn c fa fb =
    (* nan operands mean NULL: the comparison is unknown, not false. *)
    match c with
    | Eq ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x = y then tri_true
        else tri_false
    | Neq ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x <> y then tri_true
        else tri_false
    | Lt ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x < y then tri_true
        else tri_false
    | Le ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x <= y then tri_true
        else tri_false
    | Gt ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x > y then tri_true
        else tri_false
    | Ge ->
      fun row ->
        let x = fa row and y = fb row in
        if Float.is_nan x || Float.is_nan y then tri_null
        else if x >= y then tri_true
        else tri_false
  in
  let rec bexpr = function
    | Const (Value.Bool b) ->
      let v = if b then tri_true else tri_false in
      Some (fun _ -> v)
    | Const Value.Null -> Some (fun _ -> tri_null)
    | Const (Value.Int _ | Value.Float _ | Value.Str _) -> None
    | Cmp (c, a, b) -> (
      match num a, num b with
      | Some fa, Some fb -> Some (cmp_fn c fa fb)
      | _ -> None)
    | Between (x, lo, hi) -> (
      (* tv_and (x >= lo) (x <= hi), as the interpreter does *)
      match num x, num lo, num hi with
      | Some fx, Some flo, Some fhi ->
        let ge = cmp_fn Ge fx flo and le = cmp_fn Le fx fhi in
        Some
          (fun row ->
            let a = ge row in
            if a = tri_false then tri_false
            else
              let b = le row in
              if b = tri_false then tri_false
              else if a = tri_true && b = tri_true then tri_true
              else tri_null)
      | _ -> None)
    | And (a, b) -> (
      match bexpr a, bexpr b with
      | Some fa, Some fb ->
        Some
          (fun row ->
            let x = fa row in
            if x = tri_false then tri_false
            else
              let y = fb row in
              if y = tri_false then tri_false
              else if x = tri_true && y = tri_true then tri_true
              else tri_null)
      | _ -> None)
    | Or (a, b) -> (
      match bexpr a, bexpr b with
      | Some fa, Some fb ->
        Some
          (fun row ->
            let x = fa row in
            if x = tri_true then tri_true
            else
              let y = fb row in
              if y = tri_true then tri_true
              else if x = tri_false && y = tri_false then tri_false
              else tri_null)
      | _ -> None)
    | Not a -> (
      match bexpr a with
      | Some fa ->
        Some
          (fun row ->
            let x = fa row in
            if x = tri_null then tri_null
            else if x = tri_true then tri_false
            else tri_true)
      | None -> None)
    | IsNull a -> (
      match num a with
      | Some fa ->
        Some (fun row -> if Float.is_nan (fa row) then tri_true else tri_false)
      | None -> None)
    | IsNotNull a -> (
      match num a with
      | Some fa ->
        Some (fun row -> if Float.is_nan (fa row) then tri_false else tri_true)
      | None -> None)
    | Attr _ | Binop _ | Neg _ -> None
  in
  bexpr e

let cmp_name = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let binop_name = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp ppf = function
  | Const (Value.Str s) -> Format.fprintf ppf "'%s'" s
  | Const v -> Value.pp ppf v
  | Attr n -> Format.pp_print_string ppf n
  | Binop (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Neg a -> Format.fprintf ppf "(-%a)" pp a
  | Cmp (c, a, b) -> Format.fprintf ppf "%a %s %a" pp a (cmp_name c) pp b
  | Between (e, lo, hi) ->
    Format.fprintf ppf "%a BETWEEN %a AND %a" pp e pp lo pp hi
  | And (a, b) -> Format.fprintf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a OR %a)" pp a pp b
  | Not a -> Format.fprintf ppf "(NOT %a)" pp a
  | IsNull a -> Format.fprintf ppf "%a IS NULL" pp a
  | IsNotNull a -> Format.fprintf ppf "%a IS NOT NULL" pp a
