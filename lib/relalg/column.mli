(** Unboxed columnar storage for numeric attributes.

    A column is the float image of one numeric (int or float) attribute
    of a relation: an unboxed [float array] with NULLs encoded as [nan],
    plus an explicit null bitmap so three-valued logic does not depend
    on NaN propagation alone. Columns are built once per relation and
    memoized in a {!cache} attached to the relation, so repeated
    [column_float]/[numeric_columns]-style consumers stop
    re-materializing boxed tuples.

    Columns are logically immutable after construction: consumers
    receive {e shared} arrays and must not write to them. *)

type t

(** [of_rows rows i] extracts attribute position [i] of every row as a
    column. Cells that are not [Int]/[Float] (NULLs, and ill-typed
    cells) become [nan] with the null bit set. *)
val of_rows : Tuple.t array -> int -> t

(** [of_raw ~data ~nulls] wraps pre-materialized storage (the binary
    segment loader's path, bypassing row extraction). [nulls] holds one
    byte per cell, ['\001'] marking NULL; NULL cells of [data] are
    normalized to [nan]. The arrays are taken over by the column — the
    caller must not mutate them afterwards.
    @raise Invalid_argument when lengths differ. *)
val of_raw : data:float array -> nulls:Bytes.t -> t

val length : t -> int

(** Shared backing array; NULL cells hold [nan]. Do not mutate. *)
val data : t -> float array

(** Shared backing array with NULL cells replaced by [0.] (the form the
    partitioners consume). Built lazily, memoized. Do not mutate. *)
val zeroed : t -> float array

(** [is_null c i] — whether row [i] is NULL in this column. *)
val is_null : t -> int -> bool

(** Number of NULL cells; [has_nulls] is [n_nulls c > 0]. *)
val n_nulls : t -> int

val has_nulls : t -> bool

(** {1 Per-relation cache}

    One slot per schema attribute. Slots materialize on first access;
    non-numeric attributes are remembered as such. The cache is guarded
    by a mutex so concurrent domains may share a relation, but the
    intended pattern is to materialize on the main domain before
    spawning scan workers. *)

type cache

val cache_create : int -> cache

(** [cached cache rows ~numeric i] returns the memoized column for
    attribute position [i], materializing it on first use. [numeric]
    says whether the schema types the attribute as [TInt]/[TFloat];
    non-numeric attributes yield [None]. *)
val cached : cache -> Tuple.t array -> numeric:bool -> int -> t option

(** [cache_seed cache i c] pre-populates slot [i] with an
    already-materialized column (the segment loader's warm path).
    @raise Invalid_argument when the slot is already materialized. *)
val cache_seed : cache -> int -> t -> unit
