(** In-memory relations: a schema plus an array of rows.

    Relations are immutable once built; builders accumulate rows and
    seal them. Row indices (0-based) are stable and are used as tuple
    identifiers throughout the package-query engine. *)

type t

(** {1 Construction} *)

val of_rows : Schema.t -> Tuple.t list -> t
val of_array : Schema.t -> Tuple.t array -> t

(** [of_array_columns schema rows cols] builds a relation whose column
    cache is pre-seeded with the given [(attribute position, column)]
    pairs — the binary segment loader's path, which already holds the
    unboxed arrays and skips re-extraction from rows. Every column must
    have one cell per row and belong to a numeric attribute.
    @raise Invalid_argument otherwise. *)
val of_array_columns : Schema.t -> Tuple.t array -> (int * Column.t) list -> t

(** Incremental builder. *)
type builder

val builder : Schema.t -> builder
val add : builder -> Tuple.t -> unit
val seal : builder -> t

(** {1 Access} *)

val schema : t -> Schema.t
val cardinality : t -> int

(** [row r i] is the [i]-th tuple. @raise Invalid_argument out of range. *)
val row : t -> int -> Tuple.t

val iter : (int -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> int -> Tuple.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Tuple.t list

(** {1 Operators} *)

(** [select r pred] keeps rows satisfying the predicate. *)
val select : t -> Expr.t -> t

(** [select_indices r pred] returns the original indices of matching rows. *)
val select_indices : t -> Expr.t -> int array

(** [project r names] column projection. *)
val project : t -> string list -> t

(** [take r ids] builds a relation from the given row ids, preserving
    order and multiplicity. *)
val take : t -> int array -> t

(** [prefix r n] keeps the first [n] rows (used for scaled-down runs). *)
val prefix : t -> int -> t

(** {1 Columnar access}

    Numeric columns are materialized once per relation and memoized;
    repeated access returns the same shared arrays (see {!Column}). *)

(** [column r name] is the cached column for a numeric attribute;
    [None] for unknown or non-numeric attributes. *)
val column : t -> string -> Column.t option

(** [column_at r i] — same, by attribute position. *)
val column_at : t -> int -> Column.t option

(** @raise Invalid_argument when the attribute is not numeric. *)
val column_exn : t -> string -> Column.t

(** [column_float r name] extracts a numeric column as a {e fresh}
    float array; NULLs become [nan]. Prefer {!column} for shared,
    cache-backed access. *)
val column_float : t -> string -> float array

(** [compile_pred r pred] lowers [pred] onto the relation's cached
    columns (see {!Expr.compile}); [None] when not vectorizable. *)
val compile_pred : t -> Expr.t -> (int -> int) option

(** [compile_num r e] lowers a numeric expression similarly. *)
val compile_num : t -> Expr.t -> (int -> float) option

(** [append_column r attr values] adds a column (e.g. the partitioner's
    gid). [values] must have one entry per row. *)
val append_column : t -> Schema.attr -> Value.t array -> t

val pp : Format.formatter -> t -> unit
