let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let field_to_string v =
  match v with
  | Value.Null -> ""
  | Value.Str s -> if needs_quoting s then quote s else s
  (* floats must round-trip exactly; the display printer (%g) is lossy *)
  | Value.Float f -> Printf.sprintf "%.17g" f
  | v -> Value.to_string v

exception Error of int * string

let error line msg = raise (Error (line, msg))

let ty_of_string ~line = function
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "str" -> Value.TStr
  | "bool" -> Value.TBool
  | s -> error line (Printf.sprintf "unknown type %S in header" s)

let to_buffer buf r =
  let schema = Relation.schema r in
  let header =
    String.concat ","
      (List.map
         (fun (a : Schema.attr) ->
           Printf.sprintf "%s:%s" a.name (Value.ty_name a.ty))
         (Schema.attrs schema))
  in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Relation.iter
    (fun _ t ->
      let n = Tuple.arity t in
      for i = 0 to n - 1 do
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (field_to_string (Tuple.get t i))
      done;
      Buffer.add_char buf '\n')
    r

let to_string r =
  let buf = Buffer.create 4096 in
  to_buffer buf r;
  Buffer.contents buf

let write path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string r))

(* A small state machine handling quoted fields with embedded commas,
   doubled quotes and newlines. Each record carries the 1-based input
   line it started on, so parse errors can point at the offender. *)
let split_records s =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let rec_start = ref 1 in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let push_record () =
    push_field ();
    records := (!rec_start, List.rev !fields) :: !records;
    fields := []
  in
  let n = String.length s in
  let rec plain i =
    if i >= n then (if !fields <> [] || Buffer.length buf > 0 then push_record ())
    else
      match s.[i] with
      | ',' ->
        push_field ();
        plain (i + 1)
      | '\n' ->
        push_record ();
        incr line;
        rec_start := !line;
        plain (i + 1)
      | '\r' -> plain (i + 1)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
        Buffer.add_char buf c;
        plain (i + 1)
  and quoted i =
    if i >= n then error !rec_start "unterminated quoted field"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
        Buffer.add_char buf '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c ->
        if c = '\n' then incr line;
        Buffer.add_char buf c;
        quoted (i + 1)
  in
  plain 0;
  List.rev !records

let of_string s =
  match split_records s with
  | [] -> error 1 "empty input"
  | (header_line, header) :: rows ->
    let attrs =
      List.map
        (fun f ->
          match String.index_opt f ':' with
          | Some i ->
            {
              Schema.name = String.sub f 0 i;
              ty =
                ty_of_string ~line:header_line
                  (String.sub f (i + 1) (String.length f - i - 1));
            }
          | None -> { Schema.name = f; ty = Value.TStr })
        header
    in
    let schema = Schema.make attrs in
    let tys = Array.of_list (List.map (fun (a : Schema.attr) -> a.ty) attrs) in
    let names =
      Array.of_list (List.map (fun (a : Schema.attr) -> a.name) attrs)
    in
    let parse_row (line, fields) =
      let fields = Array.of_list fields in
      if Array.length fields <> Array.length tys then
        error line
          (Printf.sprintf "row has %d field(s), header has %d"
             (Array.length fields) (Array.length tys));
      Array.mapi
        (fun i f ->
          try Value.of_string tys.(i) f
          with _ ->
            error line
              (Printf.sprintf "cannot parse %S as %s (column %s)" f
                 (Value.ty_name tys.(i)) names.(i)))
        fields
    in
    Relation.of_rows schema (List.map parse_row rows)

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      of_string (really_input_string ic len))
