(** Minimal CSV persistence for relations. The first line is a header of
    [name:type] fields (types: int, float, str, bool); empty fields read
    back as NULL (consequently an empty string value also reads back
    as NULL — the one lossy case of this encoding). Fields containing commas/quotes/newlines are quoted. *)

(** Raised on malformed input: the 1-based line number of the offending
    record (for an unterminated quote, the line it opened on) and a
    human-readable message. *)
exception Error of int * string

val write : string -> Relation.t -> unit

(** Raises {!Error} on malformed content and [Sys_error] on I/O
    failure. *)
val read : string -> Relation.t

(** String-based variants used by tests. *)
val to_string : Relation.t -> string

(** Raises {!Error} on malformed content. *)
val of_string : string -> Relation.t
