(** Chunked (optionally parallel) scans over a relation.

    The row space is cut into fixed-size chunks; workers stripe over
    chunks ([Domain.spawn], the same idiom as the parallel refiner) and
    per-chunk results are merged in chunk order, so the result is
    bitwise identical for {e any} worker count — including the
    sequential [workers = 1] path. Chunk size is a constant (overridable
    via [PKGQ_SCAN_CHUNK]) and deliberately independent of the worker
    count.

    Predicates and columns are materialized on the calling domain
    before any worker spawns; workers only read immutable arrays. *)

(** Default worker count: [PKGQ_SCAN_WORKERS] if set, otherwise
    [Domain.recommended_domain_count ()]. *)
val default_workers : unit -> int

(** Chunk size in rows ([PKGQ_SCAN_CHUNK], default 16384). *)
val chunk_size : unit -> int

(** [mask r pred] evaluates [pred] over every row: byte [i] is [1] iff
    row [i] satisfies it (NULL counts as false). Also returns the
    number of matches. *)
val mask : ?workers:int -> Relation.t -> Expr.t -> Bytes.t * int

(** Parallel [Relation.select_indices]: indices ascending. *)
val select_indices : ?workers:int -> Relation.t -> Expr.t -> int array

(** Parallel [Relation.select]. *)
val select : ?workers:int -> Relation.t -> Expr.t -> Relation.t

(** [count r pred] — number of rows matching [pred]. *)
val count : ?workers:int -> Relation.t -> Expr.t -> int

(** Streaming statistics over the non-NULL values of a numeric column,
    optionally restricted by a predicate. [n] is the number of non-NULL
    values seen; [rows] the number of rows scanned (post-predicate). *)
type stats = { sum : float; n : int; rows : int; mn : float; mx : float }

(** [float_stats ?where r name] — [None] when [name] is not a numeric
    attribute of [r]. *)
val float_stats :
  ?workers:int -> ?where:Expr.t -> Relation.t -> string -> stats option
